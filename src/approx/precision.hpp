// Precision scaling: the paper's quantization knob (FP32 / FP16 / INT8).
//
// Precision scaling in the paper operates on *values*: weights are rounded
// to the representable set of the target format and computation proceeds in
// float — i.e. quantize-dequantize emulation, the same methodology as
// QuSecNets [12] which the paper builds on. FP16 uses IEEE-754 half with
// round-to-nearest-even; INT8 uses symmetric per-tensor scaling.
//
// The emulation is the *reference* semantics of each precision. For kInt8
// there is additionally a true integer execution backend (int8 weights with
// per-output-channel scales, int32 accumulation — see approx/int8_backend.*
// and DESIGN.md); ApplyApproximation selects it by default for kInt8
// variants, and it reproduces this emulation to accumulation rounding.
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.hpp"

namespace axsnn::approx {

/// Weight precision scales evaluated in the paper (Figs. 4–6, Table I).
enum class Precision {
  kFp32,  ///< native float — the accurate baseline
  kFp16,  ///< IEEE-754 binary16 emulation
  kInt8,  ///< symmetric per-tensor 8-bit integers
};

/// "FP32" / "FP16" / "INT8".
std::string PrecisionName(Precision p);

/// Rounds one float to IEEE-754 binary16 and back (round-to-nearest-even,
/// with overflow to ±inf clamped to ±65504 and denormal support).
float Fp16Round(float v);

/// The binary16 bit pattern of `v` under the same rounding rules as
/// Fp16Round (Fp16FromBits(Fp16Bits(v)) == Fp16Round(v) for all finite v).
/// Exposed so the fault injector can flip bits of the *stored* half-word of
/// an FP16 variant instead of approximating on fp32 patterns.
std::uint16_t Fp16Bits(float v);

/// Decodes a binary16 bit pattern (sign/exponent/mantissa, including
/// denormals, ±inf and NaN) back to float.
float Fp16FromBits(std::uint16_t h);

/// Quantizes `t` in place to the target precision. For kInt8 the symmetric
/// per-tensor scale is max|t| / 127 (a zero tensor stays zero). Returns the
/// INT8 scale used (1.0 for float formats) so callers can report it.
float QuantizeTensor(Tensor& t, Precision p);

/// Returns a quantized copy.
Tensor Quantized(const Tensor& t, Precision p);

/// Relative MAC energy of each format, normalized to FP32 = 1. Derived from
/// the 45 nm operation energies in Horowitz, "Computing's energy problem"
/// (ISSCC 2014): FP32 MAC ≈ 4.6 pJ, FP16 ≈ 1.5 pJ, INT8 ≈ 0.23 pJ.
double RelativeMacEnergy(Precision p);

}  // namespace axsnn::approx
