#include "approx/energy.hpp"

#include <cmath>

#include "snn/conv2d.hpp"
#include "snn/dense.hpp"
#include "tensor/check.hpp"

namespace axsnn::approx {

EnergyReport EstimateEnergy(snn::Network& net, const Tensor& input_tb,
                            Precision precision) {
  AXSNN_CHECK(input_tb.rank() >= 3, "energy input must be [T, B, ...]");
  const long batch = input_tb.dim(1);
  const double mac_energy = RelativeMacEnergy(precision);

  EnergyReport report;
  Tensor activation = input_tb;

  for (std::size_t i = 0; i < net.size(); ++i) {
    snn::Layer& layer = net.layer(i);

    // Spike-driven MAC count: every active input element triggers one MAC
    // per surviving outgoing connection.
    double total_in_activity = 0.0;  // sum of activation (spike count)
    for (float v : activation.flat()) total_in_activity += std::fabs(v);

    if (auto* conv = dynamic_cast<snn::Conv2d*>(&layer)) {
      LayerEnergy le;
      le.layer = conv->Name();
      const long total_w = conv->weight().numel();
      const long nnz = conv->weight().CountGreater(0.0f) +
                       Tensor(conv->weight()).Scale(-1.0f).CountGreater(0.0f);
      le.nnz_fraction = total_w == 0 ? 0.0
                                     : static_cast<double>(nnz) /
                                           static_cast<double>(total_w);
      // Fan-out of one input element (ignoring borders): Cout * K * K.
      const double fanout = static_cast<double>(
          conv->out_channels() * conv->kernel() * conv->kernel());
      le.input_rate =
          total_in_activity / static_cast<double>(activation.numel());
      le.synaptic_ops =
          total_in_activity * fanout * le.nnz_fraction / batch;
      le.energy = le.synaptic_ops * mac_energy;
      report.layers.push_back(le);
    } else if (auto* dense = dynamic_cast<snn::Dense*>(&layer)) {
      LayerEnergy le;
      le.layer = dense->Name();
      const long total_w = dense->weight().numel();
      const long nnz = dense->weight().CountGreater(0.0f) +
                       Tensor(dense->weight()).Scale(-1.0f).CountGreater(0.0f);
      le.nnz_fraction = total_w == 0 ? 0.0
                                     : static_cast<double>(nnz) /
                                           static_cast<double>(total_w);
      const double fanout = static_cast<double>(dense->out_features());
      le.input_rate =
          total_in_activity / static_cast<double>(activation.numel());
      le.synaptic_ops =
          total_in_activity * fanout * le.nnz_fraction / batch;
      le.energy = le.synaptic_ops * mac_energy;
      report.layers.push_back(le);
    }

    activation = layer.Forward(activation, /*train=*/false);
  }

  for (const LayerEnergy& le : report.layers) {
    report.total_ops += le.synaptic_ops;
    report.total_energy += le.energy;
  }
  return report;
}

}  // namespace axsnn::approx
