#include "approx/approximation.hpp"

#include <algorithm>
#include <cmath>

#include "snn/conv2d.hpp"
#include "snn/dense.hpp"
#include "snn/lif_layer.hpp"
#include "tensor/check.hpp"

namespace axsnn::approx {

CalibrationStats Calibrate(snn::Network& net, const Tensor& input_tb) {
  AXSNN_CHECK(input_tb.rank() >= 2, "calibration input must be [T, B, ...]");
  net.Forward(input_tb, /*train=*/false);
  CalibrationStats stats;
  for (const snn::LifLayer* lif : net.LifLayers()) {
    LayerCalibration c;
    c.lif_name = lif->Name();
    c.mean_rate = lif->last_mean_rate();
    c.mean_membrane = lif->last_mean_membrane();
    c.mean_drive = lif->last_mean_drive();
    c.v_threshold = lif->params().v_threshold;
    stats.lif.push_back(c);
  }
  return stats;
}

namespace {

/// Weight layer metadata the pruning pass needs.
struct WeightLayerRef {
  Tensor* weight = nullptr;
  Tensor* bias = nullptr;
  std::string name;
  long fan_in = 0;           // c in Eq. (1)
  int following_lif = -1;    // index into CalibrationStats::lif
  int preceding_lif = -1;
  snn::Conv2d* conv = nullptr;   // exactly one of conv/dense is set,
  snn::Dense* dense = nullptr;   // for int8-backend activation
};

/// Walks the network and pairs every Conv2d/Dense with the LIF layer whose
/// activity drives its Eq. (1) threshold (the LIF it feeds; for the readout
/// layer, the LIF feeding it).
std::vector<WeightLayerRef> CollectWeightLayers(snn::Network& net) {
  std::vector<WeightLayerRef> out;
  int lif_seen = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    snn::Layer& layer = net.layer(i);
    if (auto* conv = dynamic_cast<snn::Conv2d*>(&layer)) {
      WeightLayerRef ref;
      ref.weight = &conv->weight();
      ref.bias = &conv->bias();
      ref.name = conv->Name();
      ref.fan_in = conv->in_channels() * conv->kernel() * conv->kernel();
      ref.preceding_lif = lif_seen - 1;
      ref.conv = conv;
      out.push_back(ref);
    } else if (auto* dense = dynamic_cast<snn::Dense*>(&layer)) {
      WeightLayerRef ref;
      ref.weight = &dense->weight();
      ref.bias = &dense->bias();
      ref.name = dense->Name();
      ref.fan_in = dense->in_features();
      ref.preceding_lif = lif_seen - 1;
      ref.dense = dense;
      out.push_back(ref);
    } else if (dynamic_cast<snn::LifLayer*>(&layer) != nullptr) {
      // The most recent weight layer without a LIF yet feeds this one.
      for (auto it = out.rbegin(); it != out.rend(); ++it) {
        if (it->following_lif >= 0) break;
        it->following_lif = lif_seen;
      }
      ++lif_seen;
    }
  }
  return out;
}

}  // namespace

ApproxReport ApplyApproximation(snn::Network& net, const ApproxConfig& cfg,
                                const CalibrationStats& calibration) {
  AXSNN_CHECK(cfg.level >= 0.0, "approximation level must be non-negative");
  AXSNN_CHECK(cfg.time_steps > 0, "time_steps must be positive");
  AXSNN_CHECK(cfg.threshold_gain > 0.0, "threshold_gain must be positive");

  ApproxReport report;
  long pruned_total = 0;
  long conn_total = 0;

  // Temporal-path knob: like kernel_mode, a pure performance preference.
  net.set_event_path(cfg.event_path);

  for (WeightLayerRef& ref : CollectWeightLayers(net)) {
    // Kernel-path knob: applies to fp32 and int8 execution alike.
    if (ref.conv != nullptr) ref.conv->set_kernel_mode(cfg.kernel_mode);
    if (ref.dense != nullptr) ref.dense->set_kernel_mode(cfg.kernel_mode);

    // Precision scaling always applies (it is the wp in Eq. (1)).
    const float weight_scale = QuantizeTensor(*ref.weight, cfg.precision);
    QuantizeTensor(*ref.bias, cfg.precision);

    LayerApproxReport lr;
    lr.layer = ref.name;
    lr.total = ref.weight->numel();
    conn_total += lr.total;

    if (cfg.level > 0.0) {
      // Pick the LIF whose activity gauges this layer's significance.
      const int lif_idx =
          ref.following_lif >= 0 ? ref.following_lif : ref.preceding_lif;
      AXSNN_CHECK(lif_idx >= 0 &&
                      lif_idx < static_cast<int>(calibration.lif.size()),
                  "no calibration stats for layer " << ref.name);
      const LayerCalibration& cal =
          calibration.lif[static_cast<std::size_t>(lif_idx)];

      // Eq. (1): ath = (Ns/T) * min(1, Vm/Vth) * mean_o|Σ_i wp_oi|.
      // mean_rate already is Ns / (T * neurons). The spike-probability term
      // uses the rectified membrane mean (excitatory drive): the signed mean
      // is typically negative in trained networks, which would degenerate
      // min(1, Vm/Vth) to zero for every layer. The weight term is the
      // Algorithm 1 line 9 connection sum per output neuron (see header for
      // why the fan-in enters through it rather than as a second factor).
      const float spike_prob =
          std::min(1.0f, cal.mean_drive / cal.v_threshold);
      const long outputs = ref.weight->numel() / ref.fan_in;
      double sum_of_abs_rowsums = 0.0;
      for (long o = 0; o < outputs; ++o) {
        double row = 0.0;
        for (long i = 0; i < ref.fan_in; ++i)
          row += (*ref.weight)[o * ref.fan_in + i];
        sum_of_abs_rowsums += std::fabs(row);
      }
      const float mean_connection_sum =
          static_cast<float>(sum_of_abs_rowsums / std::max(1L, outputs));
      const float ath_base = cal.mean_rate * spike_prob * mean_connection_sum;
      lr.ath = static_cast<float>(cfg.level * cfg.threshold_gain) * ath_base;

      for (float& w : ref.weight->flat()) {
        if (std::fabs(w) < lr.ath && w != 0.0f) {
          w = 0.0f;
          ++lr.pruned;
        }
      }
      pruned_total += lr.pruned;
    }

    // kInt8 deployment path: hand the layer its weights as real int8 after
    // the last weight edit (pruned zeros quantize to zero). The per-row
    // scales are all the per-tensor lattice scale, so the int8 codes are
    // exactly the fake-quantization integers and the integer forward pass
    // reproduces the reference emulation to accumulation rounding. True
    // rowwise scales (EnableInt8Kernel with no argument) trade that
    // bit-alignment for finer per-channel resolution on raw float weights.
    if (cfg.precision == Precision::kInt8 && cfg.int8_kernels) {
      const std::vector<float> lattice(
          static_cast<std::size_t>(ref.weight->dim(0)), weight_scale);
      if (ref.conv != nullptr) ref.conv->EnableInt8Kernel(lattice);
      if (ref.dense != nullptr) ref.dense->EnableInt8Kernel(lattice);
    } else {
      // Float emulation path (and stale-backend guard when re-approximating
      // a network that previously ran int8).
      if (ref.conv != nullptr) ref.conv->DisableInt8Kernel();
      if (ref.dense != nullptr) ref.dense->DisableInt8Kernel();
    }
    report.layers.push_back(lr);
  }

  report.pruned_fraction =
      conn_total == 0
          ? 0.0
          : static_cast<double>(pruned_total) / static_cast<double>(conn_total);
  return report;
}

std::pair<snn::Network, ApproxReport> MakeApproximate(
    const snn::Network& net, const ApproxConfig& cfg,
    const CalibrationStats& calibration) {
  snn::Network copy = net.Clone();
  ApproxReport report = ApplyApproximation(copy, cfg, calibration);
  return {std::move(copy), std::move(report)};
}

}  // namespace axsnn::approx
