// True INT8 execution backend for Conv2d / Dense forward passes.
//
// The paper's precision-scaling knob (approx/precision.*) is a value-level
// emulation: weights are rounded onto an int8 lattice but every MAC still
// runs in float. This backend is the deployment-shaped counterpart: weights
// live as int8 with per-output-channel scales (tensor/quantized.hpp),
// activations are quantized on entry with a dynamic per-tensor scale,
// kernels accumulate in int32, and each output is requantized with the
// combined activation x channel scale before the bias is added — the same
// structure as MXNet's quantized_conv / TFLite integer kernels.
//
// Activation scale choice: SNN activations are spike-derived dyadic
// rationals — rate-encoded inputs and LIF outputs are {0, 1}, and 2^k-sized
// average-pool windows only ever divide by powers of two. The activation
// scale is therefore snapped to a power of two, 2^ceil(log2(max|x|)) / 64,
// which represents every such value *exactly* (6 significand bits, range
// headroom of one bit). Quantizing the activations then loses nothing, and
// the integer path reproduces the float fake-quantization reference to
// within accumulation rounding — the property the determinism tests pin.
//
// Accumulator headroom: |q_a| <= 64 and |q_w| <= 127, so int32 holds exact
// sums for fan-ins up to 2^31 / (64 * 127) ≈ 264k — far above any layer in
// this repo. The ASan/UBSan CI job would flag an overflow regression.
//
// Execution itself lives in src/kernels/ (naive / gemm / sparse, selected
// by the sparsity-aware dispatcher — kernels/dispatch.hpp): this module
// quantizes the activations and forwards to kernels::Int8Conv2dForward /
// kernels::Int8DenseForward. Integer accumulation is exact, so every mode
// produces identical results.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/conv2d_kernels.hpp"
#include "kernels/dense_kernels.hpp"
#include "runtime/workspace.hpp"
#include "tensor/quantized.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::approx {

/// Power-of-two symmetric activation scale for values in [-max_abs, max_abs]:
/// 2^ceil(log2(max_abs)) / 64. Exact for dyadic rationals with denominator
/// up to 64 / 2^ceil(log2(max_abs)); returns 1/64 for max_abs == 0.
float Int8ActivationScale(float max_abs);

namespace detail {
/// Raw-pointer quantization core: writes x.numel() codes to `qd` and
/// returns the activation scale. The codes clamp to [-127, 127]; -128 is
/// never produced (the SIMD int8 kernels' |q| precondition).
float Int8QuantizeInto(const Tensor& x, std::int8_t* qd);
float Int8QuantizeInto(const Tensor& x, std::int32_t* qd);
}  // namespace detail

/// Quantizes `x` into `qact` (resized) with the power-of-two scheme above;
/// returns the activation scale. `VecT` is any contiguous resizable
/// container of int8 or int32 codes — std::vector in tests,
/// runtime::AlignedVector for the workspace arenas. The element type is the
/// *storage* type of the codes (their values always fit int8): the dense
/// kernels keep int8 rows — their contiguous dot products feed the SIMD
/// tier's 32-MAC instructions directly — while the conv kernels stage int32
/// rows, which keep the naive reference's scalar-weight-times-row inner
/// loops on full-width integer lanes (the SIMD conv path narrows them to
/// int8 while packing its panels).
template <typename VecT>
float Int8QuantizeActivations(const Tensor& x, VecT& qact) {
  qact.resize(static_cast<std::size_t>(x.numel()));  // no-op in steady state
  return detail::Int8QuantizeInto(x, qact.data());
}

/// Conv2d geometry (stride 1, symmetric zero padding — mirrors snn::Conv2d).
using Conv2dGeom = kernels::Conv2dGeom;

/// Integer-accumulating convolution forward pass over [*, C_in, H, W].
/// `weight` is the int8 [C_out, C_in, K, K] kernel with per-C_out scales,
/// `bias` a float [C_out] tensor added after requantization. `out` must
/// already be sized to the output shape. `mode` picks the kernel flavour
/// (kAuto probes spike density); `scratch` owns the activation-code,
/// accumulator and packing buffers (grown on demand, allocation-free in
/// steady state). `packed` optionally forwards pre-built spike words of the
/// *float* activations to the kernel dispatcher (kernels::PackedWords) —
/// valid because on the binary activations the event path carries, the
/// float and quantized-code nonzero masks coincide.
void Int8Conv2dForward(const QuantizedTensor& weight, const Tensor& bias,
                       const Tensor& x, Tensor& out, const Conv2dGeom& geom,
                       kernels::KernelMode mode, runtime::Workspace& scratch,
                       const kernels::PackedWords* packed = nullptr);

/// Integer-accumulating dense forward pass over [*, F_in]. Same contract as
/// Int8Conv2dForward; `weight` is int8 [F_out, F_in] with per-F_out scales.
void Int8DenseForward(const QuantizedTensor& weight, const Tensor& bias,
                      const Tensor& x, Tensor& out, kernels::KernelMode mode,
                      runtime::Workspace& scratch,
                      const kernels::PackedWords* packed = nullptr);

}  // namespace axsnn::approx
