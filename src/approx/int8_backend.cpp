#include "approx/int8_backend.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "kernels/dispatch.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::approx {

float Int8ActivationScale(float max_abs) {
  if (max_abs <= 0.0f) return 1.0f / 64.0f;
  int e = 0;
  const float m = std::frexp(max_abs, &e);  // max_abs = m * 2^e, m in [0.5, 1)
  if (m == 0.5f) --e;                       // exactly a power of two
  return std::ldexp(1.0f, e - 6);           // 2^ceil(log2(max_abs)) / 64
}

namespace {

/// Parallel max|x| with the fixed-chunk reduction shape: per-chunk partial
/// maxima combined in chunk order (max is order-independent anyway, but the
/// shape keeps the runtime's determinism contract self-evident).
float MaxAbs(const Tensor& x) {
  const long n = x.numel();
  const float* xd = x.data();
  const long grain = runtime::DefaultGrain(n);
  // Default-grained loops produce at most kMaxChunks chunks, so the partials
  // fit a stack array and the reduction stays allocation-free.
  std::array<float, runtime::kMaxChunks> partials{};
  const long chunks = runtime::NumChunks(n, grain);
  runtime::ParallelForChunks(
      0, n,
      [&](long chunk, long lo, long hi) {
        float m = 0.0f;
        for (long i = lo; i < hi; ++i) m = std::max(m, std::fabs(xd[i]));
        partials[static_cast<std::size_t>(chunk)] = m;
      },
      grain);
  float max_abs = 0.0f;
  for (long c = 0; c < chunks; ++c)
    max_abs = std::max(max_abs, partials[static_cast<std::size_t>(c)]);
  return max_abs;
}

}  // namespace

namespace detail {

namespace {

template <typename CodeT>
float QuantizeInto(const Tensor& x, CodeT* qd) {
  const long n = x.numel();
  const float* xd = x.data();
  const float scale = Int8ActivationScale(MaxAbs(x));
  const float inv = 1.0f / scale;
  runtime::ParallelFor(0, n, [&](long i) {
    const float q = std::nearbyint(xd[i] * inv);
    qd[i] = static_cast<CodeT>(std::clamp(q, -127.0f, 127.0f));
  });
  return scale;
}

}  // namespace

float Int8QuantizeInto(const Tensor& x, std::int8_t* qd) {
  return QuantizeInto(x, qd);
}
float Int8QuantizeInto(const Tensor& x, std::int32_t* qd) {
  return QuantizeInto(x, qd);
}

}  // namespace detail

void Int8Conv2dForward(const QuantizedTensor& weight, const Tensor& bias,
                       const Tensor& x, Tensor& out, const Conv2dGeom& geom,
                       kernels::KernelMode mode, runtime::Workspace& scratch,
                       const kernels::PackedWords* packed) {
  const std::size_t r = x.rank();
  AXSNN_CHECK(r >= 3, "Int8Conv2dForward expects [*, C, H, W]");
  const long c_in = x.dim(r - 3);
  const long h = x.dim(r - 2);
  const long w = x.dim(r - 1);
  const long n = x.numel() / (c_in * h * w);
  AXSNN_CHECK(c_in == geom.in_channels && weight.rows() == geom.out_channels,
              "Int8Conv2dForward geometry mismatch");

  // Activation codes live in the scratch workspace (slots::kQAct, which the
  // kernels never touch) so the layer carries no typed members of its own.
  auto& qact = scratch.AcquireI32(kernels::slots::kQAct,
                                  static_cast<std::size_t>(x.numel()));
  const float act_scale = Int8QuantizeActivations(x, qact);
  kernels::Int8Conv2dForward(weight, bias, qact.data(), act_scale, n, h, w,
                             out, geom, mode, scratch, packed);
}

void Int8DenseForward(const QuantizedTensor& weight, const Tensor& bias,
                      const Tensor& x, Tensor& out, kernels::KernelMode mode,
                      runtime::Workspace& scratch,
                      const kernels::PackedWords* packed) {
  const long f_in = weight.row_size();
  AXSNN_CHECK(x.numel() % f_in == 0, "Int8DenseForward feature mismatch");
  const long n = x.numel() / f_in;

  auto& qact = scratch.AcquireI8(kernels::slots::kQActI8,
                                 static_cast<std::size_t>(x.numel()));
  const float act_scale = Int8QuantizeActivations(x, qact);
  kernels::Int8DenseForward(weight, bias, qact.data(), act_scale, n, out,
                            mode, scratch, packed);
}

}  // namespace axsnn::approx
