#include "approx/int8_backend.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::approx {

float Int8ActivationScale(float max_abs) {
  if (max_abs <= 0.0f) return 1.0f / 64.0f;
  int e = 0;
  const float m = std::frexp(max_abs, &e);  // max_abs = m * 2^e, m in [0.5, 1)
  if (m == 0.5f) --e;                       // exactly a power of two
  return std::ldexp(1.0f, e - 6);           // 2^ceil(log2(max_abs)) / 64
}

namespace {

/// Parallel max|x| with the fixed-chunk reduction shape: per-chunk partial
/// maxima combined in chunk order (max is order-independent anyway, but the
/// shape keeps the runtime's determinism contract self-evident).
float MaxAbs(const Tensor& x) {
  const long n = x.numel();
  const float* xd = x.data();
  const long grain = runtime::DefaultGrain(n);
  // Default-grained loops produce at most kMaxChunks chunks, so the partials
  // fit a stack array and the reduction stays allocation-free.
  std::array<float, runtime::kMaxChunks> partials{};
  const long chunks = runtime::NumChunks(n, grain);
  runtime::ParallelForChunks(
      0, n,
      [&](long chunk, long lo, long hi) {
        float m = 0.0f;
        for (long i = lo; i < hi; ++i) m = std::max(m, std::fabs(xd[i]));
        partials[static_cast<std::size_t>(chunk)] = m;
      },
      grain);
  float max_abs = 0.0f;
  for (long c = 0; c < chunks; ++c)
    max_abs = std::max(max_abs, partials[static_cast<std::size_t>(c)]);
  return max_abs;
}

}  // namespace

template <typename CodeT>
float Int8QuantizeActivations(const Tensor& x, std::vector<CodeT>& qact) {
  const long n = x.numel();
  qact.resize(static_cast<std::size_t>(n));  // no-op in steady state
  const float* xd = x.data();
  const float scale = Int8ActivationScale(MaxAbs(x));
  const float inv = 1.0f / scale;
  CodeT* qd = qact.data();
  runtime::ParallelFor(0, n, [&](long i) {
    const float q = std::nearbyint(xd[i] * inv);
    qd[i] = static_cast<CodeT>(std::clamp(q, -127.0f, 127.0f));
  });
  return scale;
}

template float Int8QuantizeActivations(const Tensor&,
                                       std::vector<std::int8_t>&);
template float Int8QuantizeActivations(const Tensor&,
                                       std::vector<std::int32_t>&);

namespace {

/// Raw-argument core of the int8 convolution: one (sample, out-channel)
/// output plane per `idx` in [idx_lo, idx_hi), accumulated in `plane` — a
/// single h_out*w_out int32 buffer owned by this chunk and reused across
/// its planes (only one plane is live at a time). The noinline raw-pointer
/// boundary and the __restrict qualifiers both matter: inlined into the
/// pool lambda (where every pointer derives from Tensor/vector members)
/// GCC 12 stops hoisting across the plane loops, and without __restrict it
/// guards the vectorized MAC loop with per-row overlap checks whose cost
/// rivals the 4-lane SSE body at these row lengths. Together they are worth
/// ~25% kernel throughput at -O3 without -march.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
void Conv2dPlanes(long idx_lo, long idx_hi,
                  const std::int32_t* __restrict xd,
                  const std::int8_t* __restrict wd,
                  const float* __restrict scales,
                  const float* __restrict bd, float act_scale,
                  std::int32_t* __restrict plane, float* __restrict od,
                  long c_in, long h, long w, long co_n,
                  long kernel, long pad) {
  const long h_out = h + 2 * pad - kernel + 1;
  const long w_out = w + 2 * pad - kernel + 1;
  const long x_plane = h * w;
  const long x_sample = c_in * x_plane;
  const long o_plane = h_out * w_out;
  const long o_sample = co_n * o_plane;
  const long w_per_out = c_in * kernel * kernel;
  for (long idx = idx_lo; idx < idx_hi; ++idx) {
    const long s = idx / co_n;
    const long co = idx % co_n;
    const std::int32_t* xs = xd + s * x_sample;
    const std::int8_t* wf = wd + co * w_per_out;
    std::int32_t* ap = plane;
    for (long i = 0; i < o_plane; ++i) ap[i] = 0;
    for (long ci = 0; ci < c_in; ++ci) {
      const std::int32_t* xp = xs + ci * x_plane;
      const std::int8_t* wp = wf + ci * kernel * kernel;
      for (long ky = 0; ky < kernel; ++ky) {
        for (long kx = 0; kx < kernel; ++kx) {
          const std::int32_t wv = wp[ky * kernel + kx];
          if (wv == 0) continue;  // pruned connection: no work
          const long ox_lo = std::max(0L, pad - kx);
          const long ox_hi = std::min(w_out, w + pad - kx);
          // Index as xrow[ox + kx - pad] instead of pre-offsetting xrow:
          // ox >= ox_lo keeps the index non-negative, and a pre-start
          // pointer must not even be formed ([expr.add]).
          const long x_off = kx - pad;
          for (long oy = 0; oy < h_out; ++oy) {
            const long iy = oy + ky - pad;
            if (iy < 0 || iy >= h) continue;
            const std::int32_t* xrow = xp + iy * w;
            std::int32_t* arow = ap + oy * w_out;
            for (long ox = ox_lo; ox < ox_hi; ++ox)
              arow[ox] += wv * xrow[ox + x_off];
          }
        }
      }
    }
    // Requantize: accumulator counts are exact, the output lives at
    // act_scale * weight_scale[co]; bias stays float.
    const float requant = act_scale * scales[co];
    const float b = bd[co];
    float* op = od + s * o_sample + co * o_plane;
    for (long i = 0; i < o_plane; ++i)
      op[i] = static_cast<float>(ap[i]) * requant + b;
  }
}

}  // namespace

void Int8Conv2dForward(const QuantizedTensor& weight, const Tensor& bias,
                       const Tensor& x, Tensor& out, const Conv2dGeom& geom,
                       std::vector<std::int32_t>& qact,
                       std::vector<std::int32_t>& acc) {
  const std::size_t r = x.rank();
  AXSNN_CHECK(r >= 3, "Int8Conv2dForward expects [*, C, H, W]");
  const long c_in = x.dim(r - 3);
  const long h = x.dim(r - 2);
  const long w = x.dim(r - 1);
  const long n = x.numel() / (c_in * h * w);
  const long h_out = h + 2 * geom.pad - geom.kernel + 1;
  const long w_out = w + 2 * geom.pad - geom.kernel + 1;
  AXSNN_CHECK(c_in == geom.in_channels && weight.rows() == geom.out_channels,
              "Int8Conv2dForward geometry mismatch");
  AXSNN_CHECK(out.numel() == n * geom.out_channels * h_out * w_out,
              "Int8Conv2dForward output not sized");

  const float act_scale = Int8QuantizeActivations(x, qact);

  const long c_out = geom.out_channels;
  const long o_plane = h_out * w_out;
  const long total = n * c_out;
  const long grain = runtime::DefaultGrain(total);
  // One plane-sized accumulator per chunk (each chunk's planes are
  // processed one at a time) instead of a full output-sized scratch.
  acc.resize(static_cast<std::size_t>(runtime::NumChunks(total, grain) *
                                      o_plane));

  const std::int32_t* xd = qact.data();
  const std::int8_t* wd = weight.data();
  const float* scales = weight.scales().data();
  const float* bd = bias.data();
  float* od = out.data();
  std::int32_t* ad = acc.data();
  const long kernel = geom.kernel;
  const long pad = geom.pad;

  // Same loop nest as the float Conv2d::ForwardInto: one disjoint output
  // plane per (sample, out-channel) index, contiguous inner loop over ox,
  // chunks fanned out on the runtime pool.
  runtime::ParallelForChunks(
      0, total,
      [&](long chunk, long lo, long hi) {
        Conv2dPlanes(lo, hi, xd, wd, scales, bd, act_scale,
                     ad + chunk * o_plane, od, c_in, h, w, c_out, kernel,
                     pad);
      },
      grain);
}

void Int8DenseForward(const QuantizedTensor& weight, const Tensor& bias,
                      const Tensor& x, Tensor& out,
                      std::vector<std::int8_t>& qact) {
  const long f_in = weight.row_size();
  const long f_out = weight.rows();
  const long n = x.numel() / f_in;
  AXSNN_CHECK(x.numel() % f_in == 0, "Int8DenseForward feature mismatch");
  AXSNN_CHECK(out.numel() == n * f_out, "Int8DenseForward output not sized");

  const float act_scale = Int8QuantizeActivations(x, qact);

  const std::int8_t* xd = qact.data();
  const std::int8_t* wd = weight.data();
  const float* bd = bias.data();
  const std::span<const float> ws = weight.scales();
  float* od = out.data();

  runtime::ParallelFor(0, n, [&](long s) {
    const std::int8_t* xs = xd + s * f_in;
    float* os = od + s * f_out;
    for (long o = 0; o < f_out; ++o) {
      const std::int8_t* wr = wd + o * f_in;
      std::int32_t acc = 0;
      for (long i = 0; i < f_in; ++i)
        acc += static_cast<std::int32_t>(wr[i]) *
               static_cast<std::int32_t>(xs[i]);
      os[o] = static_cast<float>(acc) * (act_scale * ws[o]) + bd[o];
    }
  });
}

}  // namespace axsnn::approx
