// Approximate SNN construction: Eq. (1) thresholds + connection pruning.
//
// The paper derives a per-layer approximation threshold
//
//     ath = (c * Ns / T) * min(1, Vm / Vth) * mean(|wp|)        (Eq. 1)
//
// where c is the number of connections per output neuron (fan-in), Ns/T the
// mean spiking activity of the layer's neurons over the observation window,
// Vm the mean membrane potential, Vth the threshold voltage, and wp the
// precision-scaled weights. Connections whose quantized weight magnitude
// falls below `level * ath` are removed (zeroed) — level is the paper's
// "approximation level" knob (0 = accurate network, 1 ≈ everything pruned).
//
// Ns, Vm are measured by a calibration pass over clean inputs: the LIF layer
// following each weight layer reports its spike statistics.
//
// Reading of the weight term: Algorithm 1 line 9 computes the *signed* per-
// output-neuron connection sum m_c = Σ_j wp_j and calls it "the mean of all
// connections in layer l". We implement exactly that — the mean over output
// neurons of |Σ_j wp_j| — and absorb the leading c of Eq. (1) into it: for
// zero-mean trained weights the signed sum grows like σ·√c, and multiplying
// by c *again* (fan-in twice) makes ath exceed every weight magnitude at any
// nonzero level, i.e. the doubly-scaled reading is degenerate. With this
// reading the published level bands reproduce: level 0.001 prunes ≈1% of
// connections, 0.01 a few percent, 0.1 tens of percent, 1.0 nearly all.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "approx/precision.hpp"
#include "kernels/dispatch.hpp"
#include "snn/network.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::approx {

/// Spike statistics of one LIF layer measured on calibration data.
struct LayerCalibration {
  std::string lif_name;
  float mean_rate = 0.0f;      ///< Ns / (T * neurons): spikes per neuron-step
  float mean_membrane = 0.0f;  ///< signed mean membrane potential
  float mean_drive = 0.0f;     ///< Vm for Eq. (1): mean(max(0, u))
  float v_threshold = 1.0f;    ///< Vth of that layer
};

/// Calibration result for a whole network, in LIF-layer order.
struct CalibrationStats {
  std::vector<LayerCalibration> lif;
};

/// Runs a forward pass on time-major calibration input [T, B, ...] and
/// collects each LIF layer's spike statistics.
CalibrationStats Calibrate(snn::Network& net, const Tensor& input_tb);

/// AxSNN construction parameters.
struct ApproxConfig {
  /// The paper's approximation level a_th knob; 0 disables approximation.
  double level = 0.0;
  /// Weight precision scale (applied before thresholding, as in Alg. 1).
  Precision precision = Precision::kFp32;
  /// Observation window T used in the Ns/T activity term.
  long time_steps = 32;
  /// Calibration constant aligning our Eq. (1) reading with the paper's
  /// published level bands (level 0.001 ≈ 1% pruned, 0.01 a few %, 0.1
  /// prunes most of the network to ≈50% accuracy, 1.0 ≈ chance). Measured
  /// once on the reference static classifier; see DESIGN.md.
  double threshold_gain = 3.0;
  /// kInt8 only: execute the variant on the integer backend
  /// (approx/int8_backend.*) — int8 weight storage with per-output-channel
  /// scales, int32 accumulation, requantized outputs. When false, kInt8
  /// stays the paper's float fake-quantization emulation; that reference
  /// path is what the int8 backend is pinned against in the determinism
  /// tests. See DESIGN.md ("INT8 backend").
  bool int8_kernels = true;
  /// Kernel-implementation knob applied to every Conv2d/Dense of the
  /// variant (naive | gemm | sparse; kAuto probes spike density per call).
  /// Every path is bit-identical — this is a performance/debugging knob,
  /// never an accuracy one. A non-auto AXSNN_KERNEL_MODE overrides it.
  kernels::KernelMode kernel_mode = kernels::KernelMode::kAuto;
  /// Temporal-execution knob applied to the variant's Network: dense frame
  /// tensors vs the compressed spike-stream event path (skip-on-silent,
  /// packed gather). Bit-identical inference either way — a performance
  /// knob like kernel_mode, with the same precedence: a non-auto
  /// AXSNN_EVENT_PATH overrides it; kAuto resolves to dense.
  snn::EventPathMode event_path = snn::EventPathMode::kAuto;
};

/// Per weight-layer outcome of the approximation pass.
struct LayerApproxReport {
  std::string layer;
  float ath = 0.0f;     ///< effective threshold (level already applied)
  long pruned = 0;      ///< connections removed
  long total = 0;       ///< connections in the layer
};

/// Whole-network outcome.
struct ApproxReport {
  std::vector<LayerApproxReport> layers;
  /// Fraction of all synaptic connections removed, in [0, 1].
  double pruned_fraction = 0.0;
};

/// Transforms `net` into its approximate counterpart in place:
/// 1. quantizes every weight tensor to cfg.precision;
/// 2. computes Eq. (1) per weight layer from `calibration`;
/// 3. zeroes connections with |w| below the level-scaled threshold.
/// The calibration must come from the same (or an identically structured)
/// network. Biases are quantized but never pruned.
ApproxReport ApplyApproximation(snn::Network& net, const ApproxConfig& cfg,
                                const CalibrationStats& calibration);

/// Convenience: deep-copies `net` and approximates the copy.
std::pair<snn::Network, ApproxReport> MakeApproximate(
    const snn::Network& net, const ApproxConfig& cfg,
    const CalibrationStats& calibration);

}  // namespace axsnn::approx
