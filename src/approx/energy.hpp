// Event-driven energy model for (approximate) spiking networks.
//
// SNN inference energy is dominated by synaptic operations: every input
// spike triggers one MAC per surviving (non-pruned) outgoing connection.
// The model walks the network on real data, counts spike-driven MACs per
// weight layer, and weights them by the relative MAC energy of the active
// precision scale (Horowitz, ISSCC 2014 — see precision.hpp). This
// reproduces the headline motivation of the paper (approximating SNN weights
// buys ~4x energy, ref [2] Sen et al., DATE 2017) as a measurable quantity.
#pragma once

#include <string>
#include <vector>

#include "approx/precision.hpp"
#include "snn/network.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::approx {

/// Per weight-layer energy accounting.
struct LayerEnergy {
  std::string layer;
  double synaptic_ops = 0.0;   ///< spike-driven MACs over the presentation
  double energy = 0.0;         ///< ops x relative MAC energy
  double nnz_fraction = 1.0;   ///< surviving connection fraction
  double input_rate = 0.0;     ///< mean input activity feeding the layer
};

/// Whole-network energy accounting for one input presentation.
struct EnergyReport {
  std::vector<LayerEnergy> layers;
  double total_ops = 0.0;
  double total_energy = 0.0;  ///< FP32-MAC-equivalent units
};

/// Runs `input_tb` ([T, B, ...]) through the network, counting spike-driven
/// synaptic operations per weight layer. `precision` selects the MAC energy
/// weight. The report is normalized per sample (divided by the batch size).
EnergyReport EstimateEnergy(snn::Network& net, const Tensor& input_tb,
                            Precision precision);

}  // namespace axsnn::approx
