#include "approx/precision.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "tensor/check.hpp"

namespace axsnn::approx {

std::string PrecisionName(Precision p) {
  switch (p) {
    case Precision::kFp32:
      return "FP32";
    case Precision::kFp16:
      return "FP16";
    case Precision::kInt8:
      return "INT8";
  }
  return "?";
}

float Fp16Round(float v) {
  // Bit-exact float -> half -> float conversion with round-to-nearest-even.
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
  const std::uint32_t sign = bits & 0x80000000u;
  std::uint32_t mag = bits & 0x7fffffffu;

  if (mag >= 0x7f800000u) {            // inf / NaN pass through
    return std::bit_cast<float>(sign | mag);
  }
  if (mag >= 0x477ff000u) {            // overflows half: clamp to max finite
    return sign ? -65504.0f : 65504.0f;
  }
  if (mag < 0x33000001u) {             // underflows even half denormals
    return std::bit_cast<float>(sign); // signed zero
  }

  int exp = static_cast<int>(mag >> 23) - 127;
  if (exp < -14) {
    // Half denormal: quantum is 2^-24.
    const float scaled = std::ldexp(std::bit_cast<float>(mag), 24);
    const float rounded = std::nearbyint(scaled);
    float out = std::ldexp(rounded, -24);
    return sign ? -out : out;
  }
  // Normal range: keep 10 mantissa bits, round-to-nearest-even on bit 13.
  const std::uint32_t mant = mag & 0x007fffffu;
  const std::uint32_t shift = 13;
  std::uint32_t half_mant = mant >> shift;
  const std::uint32_t rem = mant & ((1u << shift) - 1);
  const std::uint32_t halfway = 1u << (shift - 1);
  if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
  // Rebuild a float with the truncated mantissa (carry may bump the
  // exponent; that is exactly the rounding we want).
  const std::uint32_t out_mag =
      ((static_cast<std::uint32_t>(exp + 127) << 23) & 0x7f800000u) +
      (half_mant << shift);
  return std::bit_cast<float>(sign | out_mag);
}

std::uint16_t Fp16Bits(float v) {
  // Mirrors Fp16Round case by case so the encoded half-word decodes to
  // exactly the value Fp16Round would produce (pinned by test_faults).
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
  const std::uint16_t sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000u);
  const std::uint32_t mag = bits & 0x7fffffffu;

  if (mag >= 0x7f800000u) {            // inf / NaN
    const std::uint16_t mant =
        static_cast<std::uint16_t>((mag & 0x007fffffu) >> 13);
    if (mag == 0x7f800000u) return sign | 0x7c00u;
    return sign | 0x7c00u | (mant != 0 ? mant : std::uint16_t{1});
  }
  if (mag >= 0x477ff000u) return sign | 0x7bffu;  // clamp to max finite
  if (mag < 0x33000001u) return sign;             // signed zero

  const int exp = static_cast<int>(mag >> 23) - 127;
  if (exp < -14) {
    // Half denormal: the stored mantissa counts quanta of 2^-24. A carry
    // into bit 10 (rounding up to the smallest normal) is exactly right.
    const float scaled = std::ldexp(std::bit_cast<float>(mag), 24);
    const std::uint32_t mant16 =
        static_cast<std::uint32_t>(std::nearbyint(scaled));
    return sign | static_cast<std::uint16_t>(mant16);
  }
  // Normal range: keep 10 mantissa bits, round-to-nearest-even on bit 13.
  const std::uint32_t mant = mag & 0x007fffffu;
  std::uint32_t half_mant = mant >> 13;
  const std::uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1u))) ++half_mant;
  const std::uint32_t out =
      (static_cast<std::uint32_t>(exp + 15) << 10) + half_mant;
  return sign | static_cast<std::uint16_t>(out);
}

float Fp16FromBits(std::uint16_t h) {
  const bool neg = (h & 0x8000u) != 0;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;
  float out;
  if (exp == 0x1fu) {
    out = mant == 0 ? std::numeric_limits<float>::infinity()
                    : std::numeric_limits<float>::quiet_NaN();
  } else if (exp == 0) {
    out = std::ldexp(static_cast<float>(mant), -24);  // denormal (or zero)
  } else {
    out = std::ldexp(1.0f + static_cast<float>(mant) * (1.0f / 1024.0f),
                     static_cast<int>(exp) - 15);
  }
  return neg ? -out : out;
}

float QuantizeTensor(Tensor& t, Precision p) {
  switch (p) {
    case Precision::kFp32:
      return 1.0f;
    case Precision::kFp16: {
      for (float& v : t.flat()) v = Fp16Round(v);
      return 1.0f;
    }
    case Precision::kInt8: {
      if (t.empty()) return 1.0f;
      float max_abs = 0.0f;
      for (float v : t.flat()) max_abs = std::max(max_abs, std::fabs(v));
      if (max_abs == 0.0f) return 1.0f;
      const float scale = max_abs / 127.0f;
      const float inv = 1.0f / scale;
      for (float& v : t.flat()) {
        const float q = std::nearbyint(v * inv);
        v = std::clamp(q, -127.0f, 127.0f) * scale;
      }
      return scale;
    }
  }
  AXSNN_CHECK(false, "unknown precision");
  return 1.0f;
}

Tensor Quantized(const Tensor& t, Precision p) {
  Tensor out = t;
  QuantizeTensor(out, p);
  return out;
}

double RelativeMacEnergy(Precision p) {
  switch (p) {
    case Precision::kFp32:
      return 1.0;
    case Precision::kFp16:
      return 1.5 / 4.6;
    case Precision::kInt8:
      return 0.23 / 4.6;
  }
  return 1.0;
}

}  // namespace axsnn::approx
