#include "approx/precision.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "tensor/check.hpp"

namespace axsnn::approx {

std::string PrecisionName(Precision p) {
  switch (p) {
    case Precision::kFp32:
      return "FP32";
    case Precision::kFp16:
      return "FP16";
    case Precision::kInt8:
      return "INT8";
  }
  return "?";
}

float Fp16Round(float v) {
  // Bit-exact float -> half -> float conversion with round-to-nearest-even.
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
  const std::uint32_t sign = bits & 0x80000000u;
  std::uint32_t mag = bits & 0x7fffffffu;

  if (mag >= 0x7f800000u) {            // inf / NaN pass through
    return std::bit_cast<float>(sign | mag);
  }
  if (mag >= 0x477ff000u) {            // overflows half: clamp to max finite
    return sign ? -65504.0f : 65504.0f;
  }
  if (mag < 0x33000001u) {             // underflows even half denormals
    return std::bit_cast<float>(sign); // signed zero
  }

  int exp = static_cast<int>(mag >> 23) - 127;
  if (exp < -14) {
    // Half denormal: quantum is 2^-24.
    const float scaled = std::ldexp(std::bit_cast<float>(mag), 24);
    const float rounded = std::nearbyint(scaled);
    float out = std::ldexp(rounded, -24);
    return sign ? -out : out;
  }
  // Normal range: keep 10 mantissa bits, round-to-nearest-even on bit 13.
  const std::uint32_t mant = mag & 0x007fffffu;
  const std::uint32_t shift = 13;
  std::uint32_t half_mant = mant >> shift;
  const std::uint32_t rem = mant & ((1u << shift) - 1);
  const std::uint32_t halfway = 1u << (shift - 1);
  if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
  // Rebuild a float with the truncated mantissa (carry may bump the
  // exponent; that is exactly the rounding we want).
  const std::uint32_t out_mag =
      ((static_cast<std::uint32_t>(exp + 127) << 23) & 0x7f800000u) +
      (half_mant << shift);
  return std::bit_cast<float>(sign | out_mag);
}

float QuantizeTensor(Tensor& t, Precision p) {
  switch (p) {
    case Precision::kFp32:
      return 1.0f;
    case Precision::kFp16: {
      for (float& v : t.flat()) v = Fp16Round(v);
      return 1.0f;
    }
    case Precision::kInt8: {
      if (t.empty()) return 1.0f;
      float max_abs = 0.0f;
      for (float v : t.flat()) max_abs = std::max(max_abs, std::fabs(v));
      if (max_abs == 0.0f) return 1.0f;
      const float scale = max_abs / 127.0f;
      const float inv = 1.0f / scale;
      for (float& v : t.flat()) {
        const float q = std::nearbyint(v * inv);
        v = std::clamp(q, -127.0f, 127.0f) * scale;
      }
      return scale;
    }
  }
  AXSNN_CHECK(false, "unknown precision");
  return 1.0f;
}

Tensor Quantized(const Tensor& t, Precision p) {
  Tensor out = t;
  QuantizeTensor(out, p);
  return out;
}

double RelativeMacEnergy(Precision p) {
  switch (p) {
    case Precision::kFp32:
      return 1.0;
    case Precision::kFp16:
      return 1.5 / 4.6;
    case Precision::kInt8:
      return 0.23 / 4.6;
  }
  return 1.0;
}

}  // namespace axsnn::approx
