// Fully-connected kernels behind the sparsity-aware dispatcher — fp32 and
// int8, each naive / gemm / sparse (see kernels/dispatch.hpp).
//
// Equivalence contract: every mode accumulates each output element
// bias-first, then the in-feature contributions in ascending-index order —
// the naive loop order. The gemm tiles keep the i loop sequential per
// element, and the sparse gather scans each sample row left to right, so
// fp32 results are bit-identical across modes (skipped/extra zero-activation
// terms are exact ±0 no-ops) and int8 results are identical outright.
#pragma once

#include <cstdint>

#include "kernels/dispatch.hpp"
#include "runtime/workspace.hpp"
#include "tensor/quantized.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::kernels {

/// fp32 dense forward over [*, F_in] -> [*, F_out]. `weight` is
/// [F_out, F_in], `bias` [F_out]; `out` must already be sized. `scratch`
/// owns the transposed packing buffer and gather lists. `packed`
/// optionally supplies pre-built spike words (one row per sample, row
/// length F_in) — see kernels::PackedWords.
void DenseForward(const Tensor& weight, const Tensor& bias, const Tensor& x,
                  Tensor& out, KernelMode mode, runtime::Workspace& scratch,
                  const PackedWords* packed = nullptr);

/// int8 dense forward. `qact` holds n * F_in activation codes already
/// quantized by the caller at `act_scale` (typically scratch slot
/// slots::kQActI8, untouched by the kernels here). `packed` as above.
void Int8DenseForward(const QuantizedTensor& weight, const Tensor& bias,
                      const std::int8_t* qact, float act_scale, long n,
                      Tensor& out, KernelMode mode,
                      runtime::Workspace& scratch,
                      const PackedWords* packed = nullptr);

}  // namespace axsnn::kernels
