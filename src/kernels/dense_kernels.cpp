#include "kernels/dense_kernels.hpp"

#include <algorithm>

#include "kernels/cpu_features.hpp"
#include "kernels/simd_kernels.hpp"
#include "kernels/spike_words.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::kernels {

namespace {

/// Register tile: kMr output features x kNr samples.
constexpr long kMr = 4;
constexpr long kNr = 8;

// --- naive fp32 (reference; the seed repo's loops, retained verbatim) --------

void DenseNaive(const float* xd, const float* wd, const float* bd, float* od,
                long n, long f_in, long f_out) {
  runtime::ParallelFor(0, n, [&](long s) {
    const float* xs = xd + s * f_in;
    float* os = od + s * f_out;
    for (long o = 0; o < f_out; ++o) {
      const float* wr = wd + o * f_in;
      float acc = bd[o];
      for (long i = 0; i < f_in; ++i) acc += wr[i] * xs[i];
      os[o] = acc;
    }
  });
}

// --- register-blocked GEMM ---------------------------------------------------

/// Packs a block of up to kNr sample rows transposed: xt[i * kNr + j] =
/// x[(s0 + j)][i]. The tail of a partial block is zero-filled so the
/// micro-kernel can keep fixed trip counts (extra ±0 terms accumulate into
/// lanes that are never written back).
template <typename SrcT, typename DstT>
void PackTransposed(const SrcT* xs, long nr, long f_in, DstT* xt) {
  for (long i = 0; i < f_in; ++i) {
    DstT* row = xt + i * kNr;
    for (long j = 0; j < nr; ++j)
      row[j] = static_cast<DstT>(xs[j * f_in + i]);
    for (long j = nr; j < kNr; ++j) row[j] = DstT{0};
  }
}

/// One sample-block GEMM: out[s0+j][o] = bias[o] + sum_i W[o][i] * x[s0+j][i],
/// i ascending — the naive accumulation order per output element.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
void GemmBlockF32(const float* __restrict wd, const float* __restrict bd,
                  const float* __restrict xt, float* __restrict os, long nr,
                  long f_in, long f_out) {
  for (long o0 = 0; o0 < f_out; o0 += kMr) {
    const long mr = std::min(kMr, f_out - o0);
    float acc[kMr][kNr];
    for (long i = 0; i < mr; ++i)
      for (long j = 0; j < kNr; ++j) acc[i][j] = bd[o0 + i];
    for (long k = 0; k < f_in; ++k) {
      const float* brow = xt + k * kNr;
      for (long i = 0; i < mr; ++i) {
        const float av = wd[(o0 + i) * f_in + k];
        for (long j = 0; j < kNr; ++j) acc[i][j] += av * brow[j];
      }
    }
    for (long i = 0; i < mr; ++i)
      for (long j = 0; j < nr; ++j) os[j * f_out + o0 + i] = acc[i][j];
  }
}

/// Integer sibling of GemmBlockF32 with requantized write-out. ColT is the
/// packed code type — int8 since the packing-traffic fix
/// (kernels/dispatch.hpp); the int32 instantiation remains valid.
template <typename ColT>
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
void GemmBlockI32(const std::int8_t* __restrict wd,
                  const float* __restrict scales, float act_scale,
                  const float* __restrict bd, const ColT* __restrict xt,
                  float* __restrict os, long nr, long f_in, long f_out) {
  for (long o0 = 0; o0 < f_out; o0 += kMr) {
    const long mr = std::min(kMr, f_out - o0);
    std::int32_t acc[kMr][kNr] = {};
    for (long k = 0; k < f_in; ++k) {
      const ColT* brow = xt + k * kNr;
      for (long i = 0; i < mr; ++i) {
        const std::int32_t av = wd[(o0 + i) * f_in + k];
        for (long j = 0; j < kNr; ++j)
          acc[i][j] += av * static_cast<std::int32_t>(brow[j]);
      }
    }
    for (long i = 0; i < mr; ++i) {
      const float requant = act_scale * scales[o0 + i];
      const float b = bd[o0 + i];
      for (long j = 0; j < nr; ++j)
        os[j * f_out + o0 + i] =
            static_cast<float>(acc[i][j]) * requant + b;
    }
  }
}

// --- sparse gather -----------------------------------------------------------

/// Gathers one sample row's nonzeros from its bit-packed spike words
/// (ascending index — the ctz scan order equals the naive accumulation
/// order); returns the count. VT widens int8 codes to the int32 vals the
/// sparse kernels consume.
template <typename T, typename VT>
long GatherRowWords(const T* xs, const std::uint64_t* words, long f_in,
                    std::int32_t* idx, VT* vals) {
  long m = 0;
  ForEachSetBit(words, SpikeWordCount(f_in), [&](long i) {
    idx[m] = static_cast<std::int32_t>(i);
    vals[m] = static_cast<VT>(xs[i]);
    ++m;
  });
  return m;
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
void SparseRowF32(const float* __restrict wd, const float* __restrict bd,
                  const std::int32_t* __restrict idx,
                  const float* __restrict vals, long m, float* __restrict os,
                  long f_in, long f_out) {
  for (long o = 0; o < f_out; ++o) {
    const float* wr = wd + o * f_in;
    float acc = bd[o];
    for (long j = 0; j < m; ++j) acc += wr[idx[j]] * vals[j];
    os[o] = acc;
  }
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
void SparseRowI32(const std::int8_t* __restrict wd,
                  const float* __restrict scales, float act_scale,
                  const float* __restrict bd,
                  const std::int32_t* __restrict idx,
                  const std::int32_t* __restrict vals, long m,
                  float* __restrict os, long f_in, long f_out) {
  for (long o = 0; o < f_out; ++o) {
    const std::int8_t* wr = wd + o * f_in;
    std::int32_t acc = 0;
    for (long j = 0; j < m; ++j)
      acc += static_cast<std::int32_t>(wr[idx[j]]) * vals[j];
    os[o] = static_cast<float>(acc) * (act_scale * scales[o]) + bd[o];
  }
}

// --- naive int8 (reference; moved verbatim from approx/int8_backend.cpp) -----

void Int8DenseNaive(const std::int8_t* xd, const std::int8_t* wd,
                    const float* ws, float act_scale, const float* bd,
                    float* od, long n, long f_in, long f_out) {
  runtime::ParallelFor(0, n, [&](long s) {
    const std::int8_t* xs = xd + s * f_in;
    float* os = od + s * f_out;
    for (long o = 0; o < f_out; ++o) {
      const std::int8_t* wr = wd + o * f_in;
      std::int32_t acc = 0;
      for (long i = 0; i < f_in; ++i)
        acc += static_cast<std::int32_t>(wr[i]) *
               static_cast<std::int32_t>(xs[i]);
      os[o] = static_cast<float>(acc) * (act_scale * ws[o]) + bd[o];
    }
  });
}

}  // namespace

// --- fp32 dispatcher ---------------------------------------------------------

void DenseForward(const Tensor& weight, const Tensor& bias, const Tensor& x,
                  Tensor& out, KernelMode mode, runtime::Workspace& scratch,
                  const PackedWords* packed) {
  const long f_out = weight.dim(0);
  const long f_in = weight.numel() / f_out;
  AXSNN_CHECK(x.numel() % f_in == 0, "DenseForward feature mismatch");
  const long n = x.numel() / f_in;
  AXSNN_CHECK(out.numel() == n * f_out, "DenseForward output not sized");

  const float* xd = x.data();
  const float* wd = weight.data();
  const float* bd = bias.data();
  float* od = out.data();

  mode = ResolveKernelMode(mode);
  const long wps = SpikeWordCount(f_in);
  const std::uint64_t* words_d = nullptr;
  if (mode == KernelMode::kAuto || mode == KernelMode::kSparse) {
    long nonzero;
    if (packed != nullptr) {
      words_d = packed->words;
      nonzero = packed->nonzero;
    } else {
      auto& words =
          scratch.AcquireU64(slots::kWords, static_cast<std::size_t>(n * wps));
      nonzero = ParallelPackSpikeWords(xd, n, f_in, words.data());
      words_d = words.data();
    }
    // Dense fallback gemm: the one family where the register-blocked tiles
    // beat the reference loops outright, and auto never picks the
    // tolerance-gated fp32 simd path (see kernels/dispatch.hpp).
    mode = ChooseByDensity(mode,
                           static_cast<float>(nonzero) /
                               static_cast<float>(x.numel()),
                           kDenseSparseDensityMax, KernelMode::kGemm);
  }
  if (mode == KernelMode::kSimd &&
      ActiveSimdTier() == SimdTier::kScalar)
    mode = KernelMode::kNaive;  // forced simd without the tier: scalar ref

  if (mode == KernelMode::kNaive) {
    DenseNaive(xd, wd, bd, od, n, f_in, f_out);
    return;
  }

  const long grain = runtime::DefaultGrain(n);
  const long chunks = runtime::NumChunks(n, grain);

  if (mode == KernelMode::kSimd) {
    // Contiguous rows in, contiguous rows out: the FMA microkernel needs
    // no packing scratch at all.
    runtime::ParallelForChunks(
        0, n,
        [&](long chunk, long lo, long hi) {
          (void)chunk;
          simd::DenseRowsF32(wd, bd, xd, od, lo, hi, f_in, f_out);
        },
        grain);
    return;
  }

  if (mode == KernelMode::kGemm) {
    Tensor& pack = scratch.Acquire(slots::kPack, chunks * f_in * kNr);
    float* pd = pack.data();
    runtime::ParallelForChunks(
        0, n,
        [&](long chunk, long lo, long hi) {
          float* xt = pd + chunk * f_in * kNr;
          for (long s0 = lo; s0 < hi; s0 += kNr) {
            const long nr = std::min(kNr, hi - s0);
            PackTransposed(xd + s0 * f_in, nr, f_in, xt);
            GemmBlockF32(wd, bd, xt, od + s0 * f_out, nr, f_in, f_out);
          }
        },
        grain);
    return;
  }

  // kSparse
  auto& idx =
      scratch.AcquireI32(slots::kRows, static_cast<std::size_t>(chunks * f_in));
  Tensor& vals = scratch.Acquire(slots::kSparseVals, chunks * f_in);
  std::int32_t* idx_d = idx.data();
  float* vals_d = vals.data();
  runtime::ParallelForChunks(
      0, n,
      [&](long chunk, long lo, long hi) {
        std::int32_t* c_idx = idx_d + chunk * f_in;
        float* c_vals = vals_d + chunk * f_in;
        for (long s = lo; s < hi; ++s) {
          const long m = GatherRowWords(xd + s * f_in, words_d + s * wps,
                                        f_in, c_idx, c_vals);
          SparseRowF32(wd, bd, c_idx, c_vals, m, od + s * f_out, f_in, f_out);
        }
      },
      grain);
}

// --- int8 dispatcher ---------------------------------------------------------

void Int8DenseForward(const QuantizedTensor& weight, const Tensor& bias,
                      const std::int8_t* qact, float act_scale, long n,
                      Tensor& out, KernelMode mode,
                      runtime::Workspace& scratch,
                      const PackedWords* packed) {
  const long f_in = weight.row_size();
  const long f_out = weight.rows();
  AXSNN_CHECK(out.numel() == n * f_out, "Int8DenseForward output not sized");

  const std::int8_t* wd = weight.data();
  const float* ws = weight.scales().data();
  const float* bd = bias.data();
  float* od = out.data();

  mode = ResolveKernelMode(mode);
  const SimdTier tier = ActiveSimdTier();
  const long wps = SpikeWordCount(f_in);
  const std::uint64_t* words_d = nullptr;
  long nonzero = 0;
  if (mode == KernelMode::kAuto || mode == KernelMode::kSparse) {
    if (packed != nullptr) {
      words_d = packed->words;
      nonzero = packed->nonzero;
    } else {
      auto& words =
          scratch.AcquireU64(slots::kWords, static_cast<std::size_t>(n * wps));
      nonzero = ParallelPackSpikeWords(qact, n, f_in, words.data());
      words_d = words.data();
    }
    // ISA probe (dispatch rule 4): the 32-MAC SIMD dot products replace
    // naive as the int8 dense fallback when the tier is active, and the
    // sparse crossover drops accordingly. All candidates are bit-identical,
    // so this never changes results.
    const bool simd_ok = tier != SimdTier::kScalar;
    mode = ChooseByDensity(
        mode, static_cast<float>(nonzero) / static_cast<float>(n * f_in),
        simd_ok ? kDenseSparseDensityMaxI8Simd : kDenseSparseDensityMax,
        simd_ok ? KernelMode::kSimd : KernelMode::kNaive);
  }
  if (mode == KernelMode::kSimd && tier == SimdTier::kScalar)
    mode = KernelMode::kNaive;  // forced simd without the tier: scalar ref

  if (mode == KernelMode::kNaive) {
    Int8DenseNaive(qact, wd, ws, act_scale, bd, od, n, f_in, f_out);
    return;
  }

  const long grain = runtime::DefaultGrain(n);
  const long chunks = runtime::NumChunks(n, grain);

  if (mode == KernelMode::kSimd) {
    // Activation codes and weight rows are already contiguous int8: the
    // microkernel runs straight over them, no packing scratch.
    const bool vnni = tier == SimdTier::kVnni;
    runtime::ParallelForChunks(
        0, n,
        [&](long chunk, long lo, long hi) {
          (void)chunk;
          simd::DenseRowsI8(wd, ws, act_scale, bd, qact, od, lo, hi, f_in,
                            f_out, vnni);
        },
        grain);
    return;
  }

  if (mode == KernelMode::kGemm) {
    // int8 transposed pack (was int32 — the packing-traffic regression,
    // see kernels/dispatch.hpp).
    auto& pack = scratch.AcquireI8(
        slots::kColI8, static_cast<std::size_t>(chunks * f_in * kNr));
    std::int8_t* pd = pack.data();
    runtime::ParallelForChunks(
        0, n,
        [&](long chunk, long lo, long hi) {
          std::int8_t* xt = pd + chunk * f_in * kNr;
          for (long s0 = lo; s0 < hi; s0 += kNr) {
            const long nr = std::min(kNr, hi - s0);
            PackTransposed(qact + s0 * f_in, nr, f_in, xt);
            GemmBlockI32(wd, ws, act_scale, bd, xt, od + s0 * f_out, nr, f_in,
                         f_out);
          }
        },
        grain);
    return;
  }

  // kSparse
  auto& idx =
      scratch.AcquireI32(slots::kRows, static_cast<std::size_t>(chunks * f_in));
  auto& vals = scratch.AcquireI32(slots::kQVals,
                                  static_cast<std::size_t>(chunks * f_in));
  std::int32_t* idx_d = idx.data();
  std::int32_t* vals_d = vals.data();
  runtime::ParallelForChunks(
      0, n,
      [&](long chunk, long lo, long hi) {
        std::int32_t* c_idx = idx_d + chunk * f_in;
        std::int32_t* c_vals = vals_d + chunk * f_in;
        for (long s = lo; s < hi; ++s) {
          const long m = GatherRowWords(qact + s * f_in, words_d + s * wps,
                                        f_in, c_idx, c_vals);
          SparseRowI32(wd, ws, act_scale, bd, c_idx, c_vals, m,
                       od + s * f_out, f_in, f_out);
        }
      },
      grain);
}

}  // namespace axsnn::kernels
