// Runtime CPU feature detection + SIMD tier selection for the kernel
// subsystem.
//
// The SIMD kernel tier (kernels/simd_kernels.*) ships hand-vectorized
// microkernels — AVX2 maddubs / AVX-VNNI vpdpbusd int8 dot products and
// 8-wide FMA fp32 tiles — that only exist when both the *compiler* emitted
// them (the TU is built with -mavx2 -mfma, guarded in CMakeLists) and the
// *CPU* executes them (CPUID + XGETBV at runtime). This module owns that
// double gate and exposes the result as a SimdTier, the last stage of the
// kernel-dispatch precedence chain (kernels/dispatch.hpp):
//
//   env/global mode > layer/config mode > density probe > ISA probe
//
// Tier semantics:
//   kScalar — no SIMD path; KernelMode::kSimd degrades to the naive
//             reference loops (bit-identical, so forcing "simd" on any
//             machine is always safe).
//   kAvx2   — 256-bit int8 dot products via maddubs+madd, fp32 FMA tiles.
//   kVnni   — same layouts, int8 inner loop uses vpdpbusd (AVX-VNNI).
//
// The AXSNN_SIMD environment variable caps the tier below what the hardware
// supports: "off"/"scalar"/"0" force kScalar (the CI scalar-fallback leg),
// "avx2" masks VNNI, anything else / unset means full auto-detection.
// ScopedSimdTier overrides the cap in-process for tests and benchmarks.
#pragma once

#include <string_view>

namespace axsnn::kernels {

/// SIMD instruction tiers in ascending capability order.
enum class SimdTier { kScalar = 0, kAvx2 = 1, kVnni = 2 };

/// "scalar" / "avx2" / "avx2-vnni".
const char* SimdTierName(SimdTier tier);

/// Raw CPU capability bits (x86 CPUID leaves 1 and 7, with the XGETBV
/// OS-support check for the ymm state; all false on non-x86 builds).
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx_vnni = false;     // leaf 7.1 eax[4] (VEX-encoded vpdpbusd)
  bool avx512_vnni = false;  // leaf 7.0 ecx[11] (reported, not yet targeted)
};

/// Detected capabilities of the executing CPU (cached after the first call).
const CpuFeatures& DetectCpuFeatures();

/// True when kernels/simd_kernels.cpp was compiled with AVX2+FMA codegen
/// (false when the compiler rejected the flags — e.g. a non-x86 target).
bool SimdKernelsCompiled();
/// True when the vpdpbusd microkernels were compiled (AVX-VNNI support).
bool SimdVnniCompiled();

/// The tier the process actually dispatches to:
///   min(compiled tier, CPUID tier, AXSNN_SIMD cap, scoped override).
SimdTier ActiveSimdTier();

/// Overrides the AXSNN_SIMD cap at runtime (tests, benchmarks). Pass the
/// cap to apply; the hardware/compiler gates still bound the result. Not
/// thread-safe against concurrent kernel calls.
void SetSimdTierCap(SimdTier cap);

/// The current cap (from AXSNN_SIMD at startup, or the last SetSimdTierCap).
SimdTier SimdTierCap();

/// Parses an AXSNN_SIMD-style value: "off"/"scalar"/"0" -> kScalar,
/// "avx2" -> kAvx2, "vnni"/"avx2-vnni"/"on"/"auto" -> kVnni (i.e. no cap).
/// Unrecognized values mean "no cap" so a typo never silently disables
/// detection below the full tier.
SimdTier ParseSimdCap(std::string_view value);

/// Scoped tier cap: forces at most `cap` for the scope's duration and
/// restores the prior cap on exit. The differential equivalence tests pin
/// the scalar-fallback path with ScopedSimdTier(SimdTier::kScalar).
class ScopedSimdTier {
 public:
  explicit ScopedSimdTier(SimdTier cap) : saved_(SimdTierCap()) {
    SetSimdTierCap(cap);
  }
  ~ScopedSimdTier() { SetSimdTierCap(saved_); }
  ScopedSimdTier(const ScopedSimdTier&) = delete;
  ScopedSimdTier& operator=(const ScopedSimdTier&) = delete;

 private:
  SimdTier saved_;
};

}  // namespace axsnn::kernels
