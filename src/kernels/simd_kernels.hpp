// SIMD microkernels: AVX2/AVX-VNNI int8 dot products and 8-wide FMA fp32
// tiles. This header is intrinsic-free — every vector instruction lives in
// simd_kernels.cpp, the one translation unit built with -mavx2 -mfma
// (CMakeLists guards the flags, cpu_features.hpp gates execution at
// runtime), so including it never leaks ISA requirements into other TUs.
//
// Numerics contract (see DESIGN.md "SIMD kernel tier"):
//  * int8 kernels are EXACT — bit-identical to the naive reference. The
//    product a*w is computed as |a| * (w * sign(a)) so vpdpbusd/vpmaddubsw
//    get their unsigned operand without any +128 shift or compensation
//    term, and with |a| <= 127, |w| <= 127 the maddubs pair sums stay below
//    int16 saturation. The int32 accumulator value is therefore identical
//    to the naive loop's regardless of summation order, and the single
//    requantization multiply matches the naive write-out bit for bit.
//  * fp32 kernels are TOLERANCE-GATED — FMA fuses the multiply-add rounding
//    and the dense row dots split the accumulation across 8 lanes, so
//    results differ from the naive order by normal accumulation rounding.
//    The auto-dispatch probe therefore never selects the fp32 SIMD path
//    (it would break the byte-identical-across-modes rail); it runs only
//    when KernelMode::kSimd is requested explicitly.
//
// int8 conv panel layout ("panel" arguments): output pixels are grouped in
// blocks of 8 and the im2col k axis in groups of 4, matching one vpdpbusd:
// byte (block, k4, pix, t) lives at ((block * kk4/4 + k4) * 8 + pix) * 4 + t
// and holds im2col code (k = 4*k4 + t, j = 8*block + pix), zero-padded past
// kk and o_plane. Weight rows are staged zero-padded to kk4 so the kernel
// broadcasts whole dwords. kernels/conv2d_kernels.cpp packs both.
#pragma once

#include <cstdint>

namespace axsnn::kernels::simd {

/// Round up to the panel granularities.
inline long RoundUp4(long v) { return (v + 3) & ~3L; }
inline long RoundUp8(long v) { return (v + 7) & ~7L; }

// --- fp32 (FMA tiles; tolerance-gated) ---------------------------------------

/// One sample's conv GEMM over a row-major im2col matrix col[kk][o_plane]:
/// op[co][j] = bd[co] + sum_k wd[co*kk+k] * col[k][j], FMA-tiled 8 pixels
/// wide with 4 tiles in flight; trailing pixels (o_plane % 8) accumulate
/// scalar in the naive k order.
void ConvGemmF32(const float* wd, const float* bd, const float* col,
                 float* op, long c_out, long kk, long o_plane);

/// Dense rows [lo, hi): od[s][o] = bd[o] + dot(wd[o], xd[s]) with the dot
/// split across 8 FMA lanes and reduced horizontally; f_in tail scalar.
void DenseRowsF32(const float* wd, const float* bd, const float* xd,
                  float* od, long lo, long hi, long f_in, long f_out);

// --- int8 (exact) ------------------------------------------------------------

/// One sample's int8 conv over a packed panel (layout above): for each
/// (co, pixel), acc = sum_k w[k] * code[k][j] in int32, then
/// op[co][j] = float(acc) * (act_scale * scales[co]) + bd[co].
/// `wpad` is the [c_out][kk4] zero-padded weight matrix. `vnni` selects the
/// vpdpbusd inner loop (caller passes ActiveSimdTier() == kVnni).
void ConvPanelI8(const std::int8_t* wpad, const float* scales,
                 float act_scale, const float* bd, const std::int8_t* panel,
                 float* op, long c_out, long kk4, long o_plane, bool vnni);

/// Packs one sample's int32 activation codes into the int8 conv panel
/// (layout above) for a conv over [c_in, h, w] -> [h_out, w_out = o_plane /
/// h_out]. Vectorized: for an 8-pixel block on one output row, the 8 source
/// codes of an in-bounds k are contiguous, so four k rows assemble a
/// 32-byte dword group via masked shifts OR-merged in int32 lanes; k rows
/// with out-of-range columns are patched scalar, and blocks touching the
/// o_plane tail or a w_out row break fall back to the scalar reference
/// loop. Lives in the AVX2 TU but needs no VNNI — both tiers share it.
void PackConvPanelI8(const std::int32_t* xs, std::int8_t* panel, long c_in,
                     long h, long w, long w_out, long kernel, long pad,
                     long o_plane, long kk4);

/// Dense rows [lo, hi) on raw int8 codes: 32 MACs per instruction over the
/// contiguous activation/weight rows, 4 output features in flight sharing
/// each activation load; f_in tail scalar. Exact (int32 accumulation).
void DenseRowsI8(const std::int8_t* wd, const float* scales, float act_scale,
                 const float* bd, const std::int8_t* qact, float* od,
                 long lo, long hi, long f_in, long f_out, bool vnni);

}  // namespace axsnn::kernels::simd
