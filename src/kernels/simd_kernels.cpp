// AVX2/FMA microkernels — with simd_kernels_vnni.cpp, the only translation
// units built with vector ISA flags (see CMakeLists: -mavx2 -mfma
// -ffp-contract=off on exactly these sources, gated on a compiler probe).
// -ffp-contract=off matters: the int8 requantization must round multiply
// and add separately to stay bit-identical to the naive kernels, and GCC
// would otherwise be free to contract the mul+add intrinsic pair into an
// FMA. Where fusion is wanted (fp32 tiles) it is spelled explicitly with
// _mm256_fmadd_ps, which contract=off does not touch.
//
// Without AVX2+FMA compiler support every entry point compiles to an
// aborting stub; that is safe because SimdKernelsCompiled() then returns
// false, ActiveSimdTier() pins to kScalar, and dispatch degrades
// KernelMode::kSimd to the naive kernels before ever reaching here.

#include "kernels/simd_kernels.hpp"

#include <cstdlib>
#include <cstring>

#include "kernels/simd_detail.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#define AXSNN_SIMD_COMPILED 1
#include <immintrin.h>
#else
#define AXSNN_SIMD_COMPILED 0
#endif

namespace axsnn::kernels {

bool SimdKernelsCompiled() { return AXSNN_SIMD_COMPILED != 0; }
bool SimdVnniCompiled() { return simd::detail::VnniCompiled(); }

}  // namespace axsnn::kernels

#if AXSNN_SIMD_COMPILED

#define AXSNN_SIMD_FN(f) f##_avx2
// Plain-AVX2 8x(4-way) int8 dot step: vpmaddubsw pairs u8*s8 into int16
// (bounded by 2*127*127 < 2^15 — see simd_int8_body.inl), vpmaddwd widens
// the pair sums to int32, vpaddd accumulates.
#define AXSNN_DP4(acc, ua, ws)                                       \
  _mm256_add_epi32((acc),                                            \
                   _mm256_madd_epi16(_mm256_maddubs_epi16((ua), (ws)), \
                                     _mm256_set1_epi16(1)))

#include "kernels/simd_int8_body.inl"

namespace axsnn::kernels::simd {

namespace {

/// Horizontal sum of the 8 float lanes (lane order fixed; the dense fp32
/// path is tolerance-gated, so cross-lane order just needs determinism).
inline float HsumF32(__m256 v) {
  __m128 s =
      _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

}  // namespace

void ConvGemmF32(const float* wd, const float* bd, const float* col,
                 float* op, long c_out, long kk, long o_plane) {
  const long vend32 = o_plane & ~31L;
  for (long co = 0; co < c_out; ++co) {
    const float* wrow = wd + co * kk;
    const __m256 vbias = _mm256_set1_ps(bd[co]);
    float* orow = op + co * o_plane;
    long j = 0;
    for (; j < vend32; j += 32) {
      // Four 8-pixel tiles in flight: enough independent FMA chains to
      // cover the 4-cycle latency while streaming one col row per k.
      __m256 a0 = vbias, a1 = vbias, a2 = vbias, a3 = vbias;
      for (long k = 0; k < kk; ++k) {
        const float w = wrow[k];
        if (w == 0.0f) continue;  // pruned weight: whole row of no-ops
        const __m256 vw = _mm256_set1_ps(w);
        const float* c = col + k * o_plane + j;
        a0 = _mm256_fmadd_ps(vw, _mm256_loadu_ps(c), a0);
        a1 = _mm256_fmadd_ps(vw, _mm256_loadu_ps(c + 8), a1);
        a2 = _mm256_fmadd_ps(vw, _mm256_loadu_ps(c + 16), a2);
        a3 = _mm256_fmadd_ps(vw, _mm256_loadu_ps(c + 24), a3);
      }
      _mm256_storeu_ps(orow + j, a0);
      _mm256_storeu_ps(orow + j + 8, a1);
      _mm256_storeu_ps(orow + j + 16, a2);
      _mm256_storeu_ps(orow + j + 24, a3);
    }
    for (; j + 8 <= o_plane; j += 8) {
      __m256 acc = vbias;
      for (long k = 0; k < kk; ++k) {
        const float w = wrow[k];
        if (w == 0.0f) continue;
        acc = _mm256_fmadd_ps(_mm256_set1_ps(w),
                              _mm256_loadu_ps(col + k * o_plane + j), acc);
      }
      _mm256_storeu_ps(orow + j, acc);
    }
    for (; j < o_plane; ++j) {
      float acc = bd[co];
      for (long k = 0; k < kk; ++k)
        acc += wrow[k] * col[k * o_plane + j];
      orow[j] = acc;
    }
  }
}

void DenseRowsF32(const float* wd, const float* bd, const float* xd,
                  float* od, long lo, long hi, long f_in, long f_out) {
  const long vend = f_in & ~7L;
  for (long s = lo; s < hi; ++s) {
    const float* xs = xd + s * f_in;
    float* os = od + s * f_out;
    long o = 0;
    for (; o + 4 <= f_out; o += 4) {
      // Four output features share every 8-lane activation load.
      const float* w0 = wd + o * f_in;
      const float* w1 = w0 + f_in;
      const float* w2 = w1 + f_in;
      const float* w3 = w2 + f_in;
      __m256 a0 = _mm256_setzero_ps();
      __m256 a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps();
      __m256 a3 = _mm256_setzero_ps();
      for (long i = 0; i < vend; i += 8) {
        const __m256 xv = _mm256_loadu_ps(xs + i);
        a0 = _mm256_fmadd_ps(_mm256_loadu_ps(w0 + i), xv, a0);
        a1 = _mm256_fmadd_ps(_mm256_loadu_ps(w1 + i), xv, a1);
        a2 = _mm256_fmadd_ps(_mm256_loadu_ps(w2 + i), xv, a2);
        a3 = _mm256_fmadd_ps(_mm256_loadu_ps(w3 + i), xv, a3);
      }
      float sum[4] = {HsumF32(a0), HsumF32(a1), HsumF32(a2), HsumF32(a3)};
      for (long i = vend; i < f_in; ++i) {
        const float xv = xs[i];
        sum[0] += w0[i] * xv;
        sum[1] += w1[i] * xv;
        sum[2] += w2[i] * xv;
        sum[3] += w3[i] * xv;
      }
      for (int r = 0; r < 4; ++r) os[o + r] = bd[o + r] + sum[r];
    }
    for (; o < f_out; ++o) {
      const float* wr = wd + o * f_in;
      __m256 acc = _mm256_setzero_ps();
      for (long i = 0; i < vend; i += 8)
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(wr + i),
                              _mm256_loadu_ps(xs + i), acc);
      float sum = HsumF32(acc);
      for (long i = vend; i < f_in; ++i) sum += wr[i] * xs[i];
      os[o] = bd[o] + sum;
    }
  }
}

void ConvPanelI8(const std::int8_t* wpad, const float* scales,
                 float act_scale, const float* bd, const std::int8_t* panel,
                 float* op, long c_out, long kk4, long o_plane, bool vnni) {
  if (vnni)
    detail::ConvPanelI8_vnni(wpad, scales, act_scale, bd, panel, op, c_out,
                             kk4, o_plane);
  else
    detail::ConvPanelI8_avx2(wpad, scales, act_scale, bd, panel, op, c_out,
                             kk4, o_plane);
}

void DenseRowsI8(const std::int8_t* wd, const float* scales, float act_scale,
                 const float* bd, const std::int8_t* qact, float* od,
                 long lo, long hi, long f_in, long f_out, bool vnni) {
  if (vnni)
    detail::DenseRowsI8_vnni(wd, scales, act_scale, bd, qact, od, lo, hi,
                             f_in, f_out);
  else
    detail::DenseRowsI8_avx2(wd, scales, act_scale, bd, qact, od, lo, hi,
                             f_in, f_out);
}

namespace {

/// Scalar reference pack for blocks the vector path cannot take: pixels
/// past o_plane or an output-row break inside the block. Byte-for-byte the
/// layout contract from the header.
void PackPanelBlockScalar(const std::int32_t* xs, std::int8_t* pb, long j0,
                          long c_in, long h, long w, long w_out, long kernel,
                          long pad, long o_plane, long kk4) {
  long oy[8] = {};
  long ox[8] = {};
  int live = 0;
  for (int pix = 0; pix < 8; ++pix) {
    const long j = j0 + pix;
    if (j >= o_plane) break;
    oy[pix] = j / w_out;
    ox[pix] = j - oy[pix] * w_out;
    live = pix + 1;
  }
  const long x_plane = h * w;
  long k = 0;
  for (long ci = 0; ci < c_in; ++ci) {
    const std::int32_t* xp = xs + ci * x_plane;
    for (long ky = 0; ky < kernel; ++ky) {
      for (long kx = 0; kx < kernel; ++kx, ++k) {
        std::int8_t* dst = pb + (k / 4) * 32 + (k % 4);
        for (int pix = 0; pix < live; ++pix) {
          const long iy = oy[pix] + ky - pad;
          const long ix = ox[pix] + kx - pad;
          const bool in = iy >= 0 && iy < h && ix >= 0 && ix < w;
          dst[pix * 4] = in ? static_cast<std::int8_t>(xp[iy * w + ix])
                            : std::int8_t{0};
        }
        for (int pix = live; pix < 8; ++pix) dst[pix * 4] = 0;
      }
    }
  }
  for (; k < kk4; ++k) {
    std::int8_t* dst = pb + (k / 4) * 32 + (k % 4);
    for (int pix = 0; pix < 8; ++pix) dst[pix * 4] = 0;
  }
}

}  // namespace

void PackConvPanelI8(const std::int32_t* xs, std::int8_t* panel, long c_in,
                     long h, long w, long w_out, long kernel, long pad,
                     long o_plane, long kk4) {
  const long rows = kk4 / 4;
  const long x_plane = h * w;
  const long kk = c_in * kernel * kernel;
  const long blocks = (o_plane + 7) / 8;
  const __m256i byte_mask = _mm256_set1_epi32(0xff);
  for (long block = 0; block < blocks; ++block) {
    std::int8_t* pb = panel + block * rows * 32;
    const long j0 = block * 8;
    const long oy0 = j0 / w_out;
    const long ox0 = j0 - oy0 * w_out;
    if (j0 + 8 > o_plane || ox0 + 8 > w_out) {
      PackPanelBlockScalar(xs, pb, j0, c_in, h, w, w_out, kernel, pad,
                           o_plane, kk4);
      continue;
    }
    // Fast path: the block's 8 pixels sit on one output row, so for any k
    // with its whole source column range in bounds the 8 codes are the
    // contiguous int32s xrow[ix .. ix+7]. Four such k rows build one dword
    // group: lane j of the group, viewed as int32, is
    //   (v0 & 0xff) | (v1 & 0xff) << 8 | (v2 & 0xff) << 16 | (v3 & 0xff) << 24
    // (the low byte of an int32 code IS its int8 value). k rows with
    // columns off the edge skip the OR — their bytes stay zero — and the
    // in-bounds pixels are patched scalar after the group store.
    struct Patch {
      int t;
      const std::int32_t* xrow;
      long ix;
    };
    Patch patches[4];
    int n_patches = 0;
    __m256i acc = _mm256_setzero_si256();
    long k = 0;
    for (long ci = 0; ci < c_in; ++ci) {
      const std::int32_t* xp = xs + ci * x_plane;
      for (long ky = 0; ky < kernel; ++ky) {
        const long iy = oy0 + ky - pad;
        const bool row_ok = iy >= 0 && iy < h;
        const std::int32_t* xrow = row_ok ? xp + iy * w : nullptr;
        for (long kx = 0; kx < kernel; ++kx, ++k) {
          const int t = static_cast<int>(k & 3);
          const long ix = ox0 + kx - pad;
          if (row_ok && ix >= 0 && ix + 8 <= w) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(xrow + ix));
            acc = _mm256_or_si256(
                acc,
                _mm256_slli_epi32(_mm256_and_si256(v, byte_mask), 8 * t));
          } else if (row_ok && ix < w && ix + 8 > 0) {
            patches[n_patches++] = {t, xrow, ix};
          }
          if (t == 3) {
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(pb + (k / 4) * 32),
                                acc);
            for (int pi = 0; pi < n_patches; ++pi) {
              std::int8_t* dst = pb + (k / 4) * 32 + patches[pi].t;
              for (int pix = 0; pix < 8; ++pix) {
                const long ixp = patches[pi].ix + pix;
                if (ixp >= 0 && ixp < w)
                  dst[pix * 4] =
                      static_cast<std::int8_t>(patches[pi].xrow[ixp]);
              }
            }
            n_patches = 0;
            acc = _mm256_setzero_si256();
          }
        }
      }
    }
    if ((k & 3) != 0) {  // kk % 4 tail group (high lanes stay zero)
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(pb + (k / 4) * 32), acc);
      for (int pi = 0; pi < n_patches; ++pi) {
        std::int8_t* dst = pb + (k / 4) * 32 + patches[pi].t;
        for (int pix = 0; pix < 8; ++pix) {
          const long ixp = patches[pi].ix + pix;
          if (ixp >= 0 && ixp < w)
            dst[pix * 4] = static_cast<std::int8_t>(patches[pi].xrow[ixp]);
        }
      }
      n_patches = 0;
      acc = _mm256_setzero_si256();
    }
    for (long g = (kk + 3) / 4; g < rows; ++g)
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(pb + g * 32),
                          _mm256_setzero_si256());
  }
}

}  // namespace axsnn::kernels::simd

#else  // !AXSNN_SIMD_COMPILED — stubs, unreachable behind ActiveSimdTier()

namespace axsnn::kernels::simd {

void ConvGemmF32(const float*, const float*, const float*, float*, long,
                 long, long) {
  std::abort();
}
void DenseRowsF32(const float*, const float*, const float*, float*, long,
                  long, long, long) {
  std::abort();
}
void ConvPanelI8(const std::int8_t*, const float*, float, const float*,
                 const std::int8_t*, float*, long, long, long, bool) {
  std::abort();
}
void DenseRowsI8(const std::int8_t*, const float*, float, const float*,
                 const std::int8_t*, float*, long, long, long, long, bool) {
  std::abort();
}
void PackConvPanelI8(const std::int32_t*, std::int8_t*, long, long, long,
                     long, long, long, long, long) {
  std::abort();
}

}  // namespace axsnn::kernels::simd

#endif
