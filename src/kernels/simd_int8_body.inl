// Shared int8 microkernel bodies, included exactly twice:
//   simd_kernels.cpp       with AXSNN_SIMD_FN(f) = f##_avx2 and AXSNN_DP4
//                          built from vpmaddubsw + vpmaddwd,
//   simd_kernels_vnni.cpp  with AXSNN_SIMD_FN(f) = f##_vnni and AXSNN_DP4
//                          = vpdpbusd (AVX-VNNI),
// so both ISA variants stay line-for-line identical except for the one
// 8x(4-way) dot-product step. Requires <immintrin.h> and at least -mavx2.
//
// Exactness: AXSNN_DP4(acc, ua, ws) adds sum_{t<4} ua[4i+t]*ws[4i+t] to
// int32 lane i, with ua unsigned. Callers pass ua = |q|, ws = w * sign(q)
// (vpabsb / vpsignb), so every partial product equals q*w exactly and the
// maddubs pair sums are bounded by 2*127*127 < 2^15 (codes never hit -128:
// the activation quantizer clamps to ±127 and QuantizedTensor's symmetric
// scheme leaves -128 unused) — no saturation, no compensation term, and
// the int32 accumulator is bit-equal to the naive reference's.
//
// Requantization rounds exactly like the naive kernels: separate multiply
// then add (never fused — this TU builds with -ffp-contract=off), so the
// float write-out is bit-identical too.

namespace axsnn::kernels::simd::detail {

namespace {

/// Horizontal sum of the 8 int32 lanes.
inline std::int32_t AXSNN_SIMD_FN(HsumI32)(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

}  // namespace

void AXSNN_SIMD_FN(ConvPanelI8)(const std::int8_t* wpad, const float* scales,
                                float act_scale, const float* bd,
                                const std::int8_t* panel, float* op,
                                long c_out, long kk4, long o_plane) {
  const long rows = kk4 / 4;            // 32-byte panel rows per pixel block
  const long full_blocks = o_plane / 8;
  const long j_tail = o_plane - full_blocks * 8;
  for (long co = 0; co < c_out; ++co) {
    const std::int8_t* wrow = wpad + co * kk4;
    const float requant = act_scale * scales[co];
    const __m256 vreq = _mm256_set1_ps(requant);
    const __m256 vbias = _mm256_set1_ps(bd[co]);
    float* orow = op + co * o_plane;

    long block = 0;
    for (; block + 2 <= full_blocks; block += 2) {
      // Two pixel blocks in flight: independent accumulator chains hide the
      // dot-product latency, and the weight dword broadcast is shared.
      const std::int8_t* p0 = panel + (block * rows) * 32;
      const std::int8_t* p1 = p0 + rows * 32;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      for (long k4 = 0; k4 < rows; ++k4) {
        std::int32_t wdw;
        std::memcpy(&wdw, wrow + 4 * k4, 4);
        if (wdw == 0) continue;  // pruned / padded weight dword: no work
        const __m256i wb = _mm256_set1_epi32(wdw);
        const __m256i q0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(p0 + k4 * 32));
        const __m256i q1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(p1 + k4 * 32));
        acc0 = AXSNN_DP4(acc0, _mm256_abs_epi8(q0), _mm256_sign_epi8(wb, q0));
        acc1 = AXSNN_DP4(acc1, _mm256_abs_epi8(q1), _mm256_sign_epi8(wb, q1));
      }
      _mm256_storeu_ps(orow + block * 8,
                       _mm256_add_ps(_mm256_mul_ps(_mm256_cvtepi32_ps(acc0),
                                                   vreq),
                                     vbias));
      _mm256_storeu_ps(orow + block * 8 + 8,
                       _mm256_add_ps(_mm256_mul_ps(_mm256_cvtepi32_ps(acc1),
                                                   vreq),
                                     vbias));
    }
    for (; block < full_blocks; ++block) {
      const std::int8_t* p0 = panel + (block * rows) * 32;
      __m256i acc = _mm256_setzero_si256();
      for (long k4 = 0; k4 < rows; ++k4) {
        std::int32_t wdw;
        std::memcpy(&wdw, wrow + 4 * k4, 4);
        if (wdw == 0) continue;
        const __m256i wb = _mm256_set1_epi32(wdw);
        const __m256i q = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(p0 + k4 * 32));
        acc = AXSNN_DP4(acc, _mm256_abs_epi8(q), _mm256_sign_epi8(wb, q));
      }
      _mm256_storeu_ps(orow + block * 8,
                       _mm256_add_ps(_mm256_mul_ps(_mm256_cvtepi32_ps(acc),
                                                   vreq),
                                     vbias));
    }
    if (j_tail > 0) {
      // Last partial block: the panel's pixel padding is zero, so the
      // vector math is valid for all 8 lanes; only j_tail are stored.
      const std::int8_t* p0 = panel + (full_blocks * rows) * 32;
      __m256i acc = _mm256_setzero_si256();
      for (long k4 = 0; k4 < rows; ++k4) {
        std::int32_t wdw;
        std::memcpy(&wdw, wrow + 4 * k4, 4);
        if (wdw == 0) continue;
        const __m256i wb = _mm256_set1_epi32(wdw);
        const __m256i q = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(p0 + k4 * 32));
        acc = AXSNN_DP4(acc, _mm256_abs_epi8(q), _mm256_sign_epi8(wb, q));
      }
      alignas(32) std::int32_t lanes[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
      const float b = bd[co];
      for (long j = 0; j < j_tail; ++j)
        orow[full_blocks * 8 + j] =
            static_cast<float>(lanes[j]) * requant + b;
    }
  }
}

void AXSNN_SIMD_FN(DenseRowsI8)(const std::int8_t* wd, const float* scales,
                                float act_scale, const float* bd,
                                const std::int8_t* qact, float* od, long lo,
                                long hi, long f_in, long f_out) {
  const long vend = f_in & ~31L;
  for (long s = lo; s < hi; ++s) {
    const std::int8_t* xs = qact + s * f_in;
    float* os = od + s * f_out;
    long o = 0;
    for (; o + 4 <= f_out; o += 4) {
      // Four output features share every activation load (and its |q|).
      const std::int8_t* w0 = wd + o * f_in;
      const std::int8_t* w1 = w0 + f_in;
      const std::int8_t* w2 = w1 + f_in;
      const std::int8_t* w3 = w2 + f_in;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (long i = 0; i < vend; i += 32) {
        const __m256i q = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(xs + i));
        const __m256i ua = _mm256_abs_epi8(q);
        acc0 = AXSNN_DP4(
            acc0, ua,
            _mm256_sign_epi8(_mm256_loadu_si256(
                                 reinterpret_cast<const __m256i*>(w0 + i)),
                             q));
        acc1 = AXSNN_DP4(
            acc1, ua,
            _mm256_sign_epi8(_mm256_loadu_si256(
                                 reinterpret_cast<const __m256i*>(w1 + i)),
                             q));
        acc2 = AXSNN_DP4(
            acc2, ua,
            _mm256_sign_epi8(_mm256_loadu_si256(
                                 reinterpret_cast<const __m256i*>(w2 + i)),
                             q));
        acc3 = AXSNN_DP4(
            acc3, ua,
            _mm256_sign_epi8(_mm256_loadu_si256(
                                 reinterpret_cast<const __m256i*>(w3 + i)),
                             q));
      }
      std::int32_t sum[4] = {AXSNN_SIMD_FN(HsumI32)(acc0),
                             AXSNN_SIMD_FN(HsumI32)(acc1),
                             AXSNN_SIMD_FN(HsumI32)(acc2),
                             AXSNN_SIMD_FN(HsumI32)(acc3)};
      for (long i = vend; i < f_in; ++i) {
        const std::int32_t xv = xs[i];
        sum[0] += static_cast<std::int32_t>(w0[i]) * xv;
        sum[1] += static_cast<std::int32_t>(w1[i]) * xv;
        sum[2] += static_cast<std::int32_t>(w2[i]) * xv;
        sum[3] += static_cast<std::int32_t>(w3[i]) * xv;
      }
      for (int r = 0; r < 4; ++r)
        os[o + r] = static_cast<float>(sum[r]) *
                        (act_scale * scales[o + r]) +
                    bd[o + r];
    }
    for (; o < f_out; ++o) {
      const std::int8_t* wr = wd + o * f_in;
      __m256i acc = _mm256_setzero_si256();
      for (long i = 0; i < vend; i += 32) {
        const __m256i q = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(xs + i));
        acc = AXSNN_DP4(
            acc, _mm256_abs_epi8(q),
            _mm256_sign_epi8(_mm256_loadu_si256(
                                 reinterpret_cast<const __m256i*>(wr + i)),
                             q));
      }
      std::int32_t sum = AXSNN_SIMD_FN(HsumI32)(acc);
      for (long i = vend; i < f_in; ++i)
        sum += static_cast<std::int32_t>(wr[i]) *
               static_cast<std::int32_t>(xs[i]);
      os[o] = static_cast<float>(sum) * (act_scale * scales[o]) + bd[o];
    }
  }
}

}  // namespace axsnn::kernels::simd::detail
