// AVX-VNNI variants of the int8 microkernels — the ONLY translation unit
// built with -mavxvnni (CMake probes the compiler; without support this
// file compiles aborting stubs and VnniCompiled() reports false, capping
// ActiveSimdTier() at kAvx2). Keeping vpdpbusd in its own TU means no other
// object file can pick it up via auto-vectorization and fault on
// AVX2-only CPUs.

#include "kernels/simd_detail.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__AVX2__) && defined(__AVXVNNI__)
#define AXSNN_VNNI_COMPILED 1
#include <immintrin.h>
#else
#define AXSNN_VNNI_COMPILED 0
#endif

namespace axsnn::kernels::simd::detail {
bool VnniCompiled() { return AXSNN_VNNI_COMPILED != 0; }
}  // namespace axsnn::kernels::simd::detail

#if AXSNN_VNNI_COMPILED

#define AXSNN_SIMD_FN(f) f##_vnni
// GCC names the 256-bit AVX-VNNI intrinsic _mm256_dpbusd_avx_epi32 (the
// plain name is the AVX-512VL form); clang accepts the plain name.
#if defined(__clang__)
#define AXSNN_DP4(acc, ua, ws) _mm256_dpbusd_epi32((acc), (ua), (ws))
#else
#define AXSNN_DP4(acc, ua, ws) _mm256_dpbusd_avx_epi32((acc), (ua), (ws))
#endif

#include "kernels/simd_int8_body.inl"

#else  // stubs — unreachable: ActiveSimdTier() never reports kVnni here

namespace axsnn::kernels::simd::detail {

void ConvPanelI8_vnni(const std::int8_t*, const float*, float, const float*,
                      const std::int8_t*, float*, long, long, long) {
  std::abort();
}

void DenseRowsI8_vnni(const std::int8_t*, const float*, float, const float*,
                      const std::int8_t*, float*, long, long, long, long) {
  std::abort();
}

}  // namespace axsnn::kernels::simd::detail

#endif
