// Convolution kernels (stride 1, symmetric zero padding) behind the
// sparsity-aware dispatcher — fp32 and int8, each in three flavours
// (naive / gemm / sparse; see kernels/dispatch.hpp for the taxonomy).
//
// Equivalence contract: for every mode the per-output-element accumulation
// runs bias-first, then the (ci, ky, kx) contributions in the naive loop
// order — gemm walks the im2col k axis in exactly that order, and the
// sparse scatter visits nonzeros in (ci, iy, ix) scan order, which for any
// fixed output element is the same (ci, ky, kx) order. fp32 results are
// therefore bit-identical across modes (terms the other modes add for
// zero activations / padding are exact ±0 no-ops), and int8 results are
// identical outright (int32 accumulation is exact). The differential suite
// in tests/test_kernels.cpp pins this.
#pragma once

#include <cstdint>

#include "kernels/dispatch.hpp"
#include "runtime/workspace.hpp"
#include "tensor/quantized.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::kernels {

/// Conv2d geometry (stride 1, symmetric zero padding — mirrors snn::Conv2d).
struct Conv2dGeom {
  long in_channels = 0;
  long out_channels = 0;
  long kernel = 0;
  long pad = 0;
};

/// fp32 convolution forward over [*, C_in, H, W] -> [*, C_out, H', W'].
/// `weight` is [C_out, C_in, K, K], `bias` [C_out]; `out` must already be
/// sized. `mode` selects the implementation after the global-override and
/// density-probe rules of kernels/dispatch.hpp; `scratch` owns the packing
/// buffers and gather lists (allocation-free in steady state). `packed`
/// optionally supplies pre-built spike words (one row per sample, row
/// length C_in * H * W) — see kernels::PackedWords.
void Conv2dForward(const Tensor& weight, const Tensor& bias, const Tensor& x,
                   Tensor& out, const Conv2dGeom& geom, KernelMode mode,
                   runtime::Workspace& scratch,
                   const PackedWords* packed = nullptr);

/// int8 convolution forward. `qact` holds the activation codes (int8 values
/// staged in int32 lanes, length n * C_in * h * w) already quantized by the
/// caller at `act_scale` — typically living in `scratch` slot
/// slots::kQAct, which the kernels below never touch. Accumulates in int32
/// and requantizes with act_scale * weight.scale(channel) + bias.
void Int8Conv2dForward(const QuantizedTensor& weight, const Tensor& bias,
                       const std::int32_t* qact, float act_scale, long n,
                       long h, long w, Tensor& out, const Conv2dGeom& geom,
                       KernelMode mode, runtime::Workspace& scratch,
                       const PackedWords* packed = nullptr);

}  // namespace axsnn::kernels
