// Compressed spike-stream representation: per-timestep bit-packed planes.
//
// The dense temporal path materializes a [N, T, C, H, W] float tensor even
// though DVS activations are binary and overwhelmingly zero — a 20-step
// 2x32x32 stream spends 160 KiB per sample on what is, informationally,
// 5 KiB of bits. SpikeStream is the compressed lingua franca of the
// event-driven path: for each timestep and each sample it stores one
// bit-packed word row (spike_words.hpp layout — element i at bit i%64 of
// word i/64, rows padded to whole words) plus its population count, so
//
//   * ingestion (data/event.*) bins events straight into bits, one chunk
//     of samples at a time, never building the T-step dense buffer;
//   * the per-timestep runner (snn/event_runner.*) reads StepTotal(t) once
//     to decide skip-on-silent for the whole step — no per-kernel density
//     probe — and hands SampleWords to the sparse gather unchanged;
//   * densification back to floats (DensifyStepInto) exists only for the
//     kernel calls that want a float view, and reproduces exactly the 0/1
//     planes the dense path would have built (the equivalence contract).
//
// Word layout: step t, sample i owns words_per_plane() consecutive words at
// words() + (t * batch + i) * words_per_plane(). Counts are per (t, i);
// per-step totals are the sums the skip decision reads.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/aligned.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::kernels {

class SpikeStream {
 public:
  SpikeStream() = default;

  /// Shapes the stream for `time_steps` x `batch` samples whose per-sample
  /// plane has shape `sample_shape` (e.g. {2, 32, 32}), zero-filling all
  /// words and counts. Storage is reused across calls (never shrinks), so
  /// a stream reconfigured per evaluation batch is allocation-free in
  /// steady state.
  void Configure(long time_steps, long batch, Shape sample_shape);

  long time_steps() const { return time_steps_; }
  long batch() const { return batch_; }
  /// Elements per sample plane (product of sample_shape()).
  long plane() const { return plane_; }
  long words_per_plane() const { return words_per_plane_; }
  const Shape& sample_shape() const { return sample_shape_; }
  bool empty() const { return time_steps_ == 0 || batch_ == 0; }

  /// Word row of sample `i` at step `t` (words_per_plane() words).
  std::uint64_t* SampleWords(long t, long i) {
    return words_.data() + (t * batch_ + i) * words_per_plane_;
  }
  const std::uint64_t* SampleWords(long t, long i) const {
    return words_.data() + (t * batch_ + i) * words_per_plane_;
  }
  /// All of step `t`'s word rows (batch() * words_per_plane() words).
  std::uint64_t* StepWords(long t) { return SampleWords(t, 0); }
  const std::uint64_t* StepWords(long t) const { return SampleWords(t, 0); }

  /// Per-sample population counts of step `t` (batch() entries).
  const std::int32_t* StepCounts(long t) const {
    return counts_.data() + t * batch_;
  }
  /// Total spikes in step `t`; 0 means the step is silent.
  long StepTotal(long t) const { return step_totals_[std::size_t(t)]; }
  /// Total spikes across all steps.
  long TotalSpikes() const;
  /// Number of steps with StepTotal == 0.
  long SilentSteps() const;

  /// Recomputes every per-sample count and per-step total from the words.
  /// Callers that write bits directly (the event binner) finish with this.
  void FinalizeCounts();

  /// Packs a time-major dense tensor [T, B, <sample_shape>] into the
  /// stream. Returns false (leaving the stream configured but invalid) if
  /// any element is neither 0.0f nor 1.0f — the event path only represents
  /// binary activations; callers fall back to the dense path then.
  bool PackTimeMajor(const Tensor& frames_tbx);

  /// Writes step `t` back to floats: out[0 .. batch*plane) gets exactly the
  /// 0.0f / 1.0f values the dense path's frame tensor holds for this step.
  void DensifyStepInto(long t, float* out) const;

 private:
  long time_steps_ = 0;
  long batch_ = 0;
  long plane_ = 0;
  long words_per_plane_ = 0;
  Shape sample_shape_;
  runtime::AlignedVector<std::uint64_t> words_;
  std::vector<std::int32_t> counts_;
  std::vector<long> step_totals_;
};

}  // namespace axsnn::kernels
