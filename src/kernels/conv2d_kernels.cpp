#include "kernels/conv2d_kernels.hpp"

#include <algorithm>
#include <cstring>

#include "kernels/cpu_features.hpp"
#include "kernels/simd_kernels.hpp"
#include "kernels/spike_words.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::kernels {

namespace {

/// Derived sizes shared by every implementation.
struct Dims {
  long n = 0;      // flattened [T, B] prefix
  long c_in = 0;
  long h = 0;
  long w = 0;
  long c_out = 0;
  long kernel = 0;
  long pad = 0;
  long h_out = 0;
  long w_out = 0;
  long x_plane = 0;
  long x_sample = 0;
  long o_plane = 0;
  long o_sample = 0;
  long w_per_out = 0;  // im2col K axis: c_in * kernel * kernel
};

Dims MakeDims(long n, long h, long w, const Conv2dGeom& geom) {
  Dims d;
  d.c_in = geom.in_channels;
  d.h = h;
  d.w = w;
  d.n = n;
  d.c_out = geom.out_channels;
  d.kernel = geom.kernel;
  d.pad = geom.pad;
  d.h_out = d.h + 2 * d.pad - d.kernel + 1;
  d.w_out = d.w + 2 * d.pad - d.kernel + 1;
  d.x_plane = d.h * d.w;
  d.x_sample = d.c_in * d.x_plane;
  d.o_plane = d.h_out * d.w_out;
  d.o_sample = d.c_out * d.o_plane;
  d.w_per_out = d.c_in * d.kernel * d.kernel;
  AXSNN_CHECK(d.h_out > 0 && d.w_out > 0, "Conv2d kernel: empty output");
  return d;
}

/// Shape-tensor entry point: validates the trailing [C, H, W] dims against
/// the geometry, then delegates. The int8 dispatcher bypasses this (it is
/// handed bare extents — building a Shape would allocate on the hot path).
Dims MakeDims(long numel, const Shape& shape, const Conv2dGeom& geom) {
  const std::size_t r = shape.size();
  AXSNN_CHECK(r >= 3 && shape[r - 3] == geom.in_channels,
              "Conv2d kernel: channel mismatch");
  const long h = shape[r - 2];
  const long w = shape[r - 1];
  return MakeDims(numel / (geom.in_channels * h * w), h, w, geom);
}

// --- naive fp32 (reference; the seed repo's loops, retained verbatim) --------

/// Row-accumulation layout: the inner loop over ox is contiguous in both
/// input and output, so it auto-vectorizes. Border handling is hoisted into
/// the per-(ky, kx) column bounds. Parallelism runs over the flattened
/// (sample, out-channel) grid; each iteration owns one disjoint out plane.
void Conv2dNaive(const float* xd, const float* wd, const float* bd, float* od,
                 const Dims& d) {
  runtime::ParallelFor(0, d.n * d.c_out, [&](long idx) {
    const long s = idx / d.c_out;
    const long co = idx % d.c_out;
    const float* xs = xd + s * d.x_sample;
    const float* wf = wd + co * d.w_per_out;
    float* op = od + s * d.o_sample + co * d.o_plane;
    const float b = bd[co];
    for (long i = 0; i < d.o_plane; ++i) op[i] = b;
    for (long ci = 0; ci < d.c_in; ++ci) {
      const float* xp = xs + ci * d.x_plane;
      const float* wp = wf + ci * d.kernel * d.kernel;
      for (long ky = 0; ky < d.kernel; ++ky) {
        for (long kx = 0; kx < d.kernel; ++kx) {
          const float wv = wp[ky * d.kernel + kx];
          if (wv == 0.0f) continue;  // pruned connection: no work
          const long ox_lo = std::max(0L, d.pad - kx);
          const long ox_hi = std::min(d.w_out, d.w + d.pad - kx);
          for (long oy = 0; oy < d.h_out; ++oy) {
            const long iy = oy + ky - d.pad;
            if (iy < 0 || iy >= d.h) continue;
            const float* xrow = xp + iy * d.w + (kx - d.pad);
            float* orow = op + oy * d.w_out;
            for (long ox = ox_lo; ox < ox_hi; ++ox) orow[ox] += wv * xrow[ox];
          }
        }
      }
    }
  });
}

// --- im2col + register-blocked GEMM ------------------------------------------

/// Register tile: kMr out-channels x kNr output pixels of fp32/int32
/// accumulators — 8 SSE lanes' worth, small enough to stay in registers
/// across the whole k loop.
constexpr long kMr = 4;
constexpr long kNr = 8;

/// Writes one sample's im2col matrix: col[k][o] with k walking (ci, ky, kx)
/// in the naive loop order and o = oy * w_out + ox. Padding / out-of-range
/// positions pack as exact zeros, so the GEMM's extra terms are ±0 no-ops
/// on the accumulation (the bit-identity argument in the header). DstT may
/// narrow (int32 codes -> int8 col): conv activation codes are quantized
/// to |q| <= 127 by construction, and narrowing during the pack is what
/// removed the int8 gemm path's 4x packing-traffic penalty.
template <typename SrcT, typename DstT>
void PackIm2col(const SrcT* xs, DstT* col, const Dims& d) {
  long k = 0;
  for (long ci = 0; ci < d.c_in; ++ci) {
    const SrcT* xp = xs + ci * d.x_plane;
    for (long ky = 0; ky < d.kernel; ++ky) {
      for (long kx = 0; kx < d.kernel; ++kx, ++k) {
        DstT* crow = col + k * d.o_plane;
        const long ox_lo = std::max(0L, d.pad - kx);
        const long ox_hi = std::min(d.w_out, d.w + d.pad - kx);
        const long x_off = kx - d.pad;
        for (long oy = 0; oy < d.h_out; ++oy) {
          const long iy = oy + ky - d.pad;
          DstT* dst = crow + oy * d.w_out;
          if (iy < 0 || iy >= d.h) {
            for (long ox = 0; ox < d.w_out; ++ox) dst[ox] = DstT{0};
            continue;
          }
          const SrcT* xrow = xp + iy * d.w;
          for (long ox = 0; ox < ox_lo; ++ox) dst[ox] = DstT{0};
          for (long ox = ox_lo; ox < ox_hi; ++ox)
            dst[ox] = static_cast<DstT>(xrow[ox + x_off]);
          for (long ox = ox_hi; ox < d.w_out; ++ox) dst[ox] = DstT{0};
        }
      }
    }
  }
}

/// Writes one sample's SIMD conv panel (layout in simd_kernels.hpp): 8
/// output pixels per block, im2col k in dword groups of 4, byte
/// (block, k4, pix, t) at ((block * kk4/4 + k4) * 8 + pix) * 4 + t holding
/// the narrowed code for (k = 4*k4 + t, j = 8*block + pix). Out-of-range
/// pixels (j >= o_plane), padded input positions, and the k tail up to kk4
/// all pack as exact zeros, so the microkernel's extra MACs are no-ops.
/// One sample's GEMM: out[co][o] = bias[co] + sum_k W[co][k] * col[k][o],
/// k ascending — the naive accumulation order per output element. The
/// noinline raw-pointer boundary and __restrict follow the int8 kernel's
/// lesson (see DESIGN.md kernel notes): inlined into the pool lambda GCC
/// stops keeping the accumulator tile in registers.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
void GemmSampleF32(const float* __restrict wd, const float* __restrict bd,
                   const float* __restrict col, float* __restrict op,
                   long c_out, long kk, long o_plane) {
  for (long i0 = 0; i0 < c_out; i0 += kMr) {
    const long mr = std::min(kMr, c_out - i0);
    for (long j0 = 0; j0 < o_plane; j0 += kNr) {
      const long nr = std::min(kNr, o_plane - j0);
      if (mr == kMr && nr == kNr) {  // full tile: fixed trip counts vectorize
        float acc[kMr][kNr];
        for (long i = 0; i < kMr; ++i)
          for (long j = 0; j < kNr; ++j) acc[i][j] = bd[i0 + i];
        for (long k = 0; k < kk; ++k) {
          const float* brow = col + k * o_plane + j0;
          for (long i = 0; i < kMr; ++i) {
            const float av = wd[(i0 + i) * kk + k];
            for (long j = 0; j < kNr; ++j) acc[i][j] += av * brow[j];
          }
        }
        for (long i = 0; i < kMr; ++i) {
          float* crow = op + (i0 + i) * o_plane + j0;
          for (long j = 0; j < kNr; ++j) crow[j] = acc[i][j];
        }
      } else {  // ragged edge tile
        float acc[kMr][kNr];
        for (long i = 0; i < mr; ++i)
          for (long j = 0; j < nr; ++j) acc[i][j] = bd[i0 + i];
        for (long k = 0; k < kk; ++k) {
          const float* brow = col + k * o_plane + j0;
          for (long i = 0; i < mr; ++i) {
            const float av = wd[(i0 + i) * kk + k];
            for (long j = 0; j < nr; ++j) acc[i][j] += av * brow[j];
          }
        }
        for (long i = 0; i < mr; ++i) {
          float* crow = op + (i0 + i) * o_plane + j0;
          for (long j = 0; j < nr; ++j) crow[j] = acc[i][j];
        }
      }
    }
  }
}

/// Integer sibling of GemmSampleF32: exact int32 accumulation, requantized
/// on write-out with act_scale * weight_scale[co] before the float bias.
/// ColT is the packed code type — int8 since the packing-traffic fix
/// (kernels/dispatch.hpp); the int32 instantiation remains valid.
template <typename ColT>
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
void GemmSampleI32(const std::int8_t* __restrict wd,
                   const float* __restrict scales, float act_scale,
                   const float* __restrict bd,
                   const ColT* __restrict col, float* __restrict op,
                   long c_out, long kk, long o_plane) {
  for (long i0 = 0; i0 < c_out; i0 += kMr) {
    const long mr = std::min(kMr, c_out - i0);
    for (long j0 = 0; j0 < o_plane; j0 += kNr) {
      const long nr = std::min(kNr, o_plane - j0);
      std::int32_t acc[kMr][kNr] = {};
      if (mr == kMr && nr == kNr) {
        for (long k = 0; k < kk; ++k) {
          const ColT* brow = col + k * o_plane + j0;
          for (long i = 0; i < kMr; ++i) {
            const std::int32_t av = wd[(i0 + i) * kk + k];
            for (long j = 0; j < kNr; ++j)
              acc[i][j] += av * static_cast<std::int32_t>(brow[j]);
          }
        }
      } else {
        for (long k = 0; k < kk; ++k) {
          const ColT* brow = col + k * o_plane + j0;
          for (long i = 0; i < mr; ++i) {
            const std::int32_t av = wd[(i0 + i) * kk + k];
            for (long j = 0; j < nr; ++j)
              acc[i][j] += av * static_cast<std::int32_t>(brow[j]);
          }
        }
      }
      for (long i = 0; i < mr; ++i) {
        const float requant = act_scale * scales[i0 + i];
        const float b = bd[i0 + i];
        float* crow = op + (i0 + i) * o_plane + j0;
        for (long j = 0; j < nr; ++j)
          crow[j] = static_cast<float>(acc[i][j]) * requant + b;
      }
    }
  }
}

// --- sparse-spike gather/scatter ---------------------------------------------

/// Gathers one sample's nonzeros from its bit-packed spike words
/// (spike_words.hpp): coordinates in rows/cols, values in vals, per-plane
/// boundaries in offs[0..c_in]. Returns the count. The ctz scan visits set
/// bits in ascending flat-index (row-major) order — exactly the old scalar
/// scan's order — so the scatter's per-output-element term order stays
/// equal to the naive (ci, ky, kx) order (header contract). An all-zero
/// 64-activation span now costs one 8-byte compare instead of 64 loads.
template <typename T>
long GatherNonzerosWords(const T* xs, const std::uint64_t* words,
                         const Dims& d, std::int32_t* offs,
                         std::int32_t* rows, std::int32_t* cols, T* vals) {
  long m = 0;
  long done = 0;  // planes whose end offset is already recorded
  offs[0] = 0;
  ForEachSetBit(words, SpikeWordCount(d.x_sample), [&](long i) {
    const long ci = i / d.x_plane;
    while (done < ci) {
      offs[done + 1] = static_cast<std::int32_t>(m);
      ++done;
    }
    const long rem = i - ci * d.x_plane;
    const long iy = rem / d.w;
    rows[m] = static_cast<std::int32_t>(iy);
    cols[m] = static_cast<std::int32_t>(rem - iy * d.w);
    vals[m] = xs[i];
    ++m;
  });
  while (done < d.c_in) {
    offs[done + 1] = static_cast<std::int32_t>(m);
    ++done;
  }
  return m;
}

/// Scatters one sample's nonzeros through one output channel's weight
/// block into `op` (already bias-initialized, o_plane floats). The (ky, kx)
/// bounds clamp the scatter to in-range output pixels, so no out-of-range
/// pointer is ever formed.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
void ScatterChannelF32(const float* __restrict wf,
                       const std::int32_t* __restrict offs,
                       const std::int32_t* __restrict rows,
                       const std::int32_t* __restrict cols,
                       const float* __restrict vals, float* __restrict op,
                       const Dims& d) {
  for (long ci = 0; ci < d.c_in; ++ci) {
    const float* wp = wf + ci * d.kernel * d.kernel;
    for (long j = offs[ci]; j < offs[ci + 1]; ++j) {
      const long iy = rows[j];
      const long ix = cols[j];
      const float v = vals[j];
      const long ky_lo = std::max(0L, iy + d.pad - d.h_out + 1);
      const long ky_hi = std::min(d.kernel - 1, iy + d.pad);
      const long kx_lo = std::max(0L, ix + d.pad - d.w_out + 1);
      const long kx_hi = std::min(d.kernel - 1, ix + d.pad);
      for (long ky = ky_lo; ky <= ky_hi; ++ky) {
        float* orow = op + (iy + d.pad - ky) * d.w_out;
        const float* wrow = wp + ky * d.kernel;
        const long obase = ix + d.pad;
        for (long kx = kx_lo; kx <= kx_hi; ++kx)
          orow[obase - kx] += wrow[kx] * v;
      }
    }
  }
}

/// Int32 sibling of ScatterChannelF32, accumulating into an int32 plane.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
void ScatterChannelI32(const std::int8_t* __restrict wf,
                       const std::int32_t* __restrict offs,
                       const std::int32_t* __restrict rows,
                       const std::int32_t* __restrict cols,
                       const std::int32_t* __restrict vals,
                       std::int32_t* __restrict ap, const Dims& d) {
  for (long ci = 0; ci < d.c_in; ++ci) {
    const std::int8_t* wp = wf + ci * d.kernel * d.kernel;
    for (long j = offs[ci]; j < offs[ci + 1]; ++j) {
      const long iy = rows[j];
      const long ix = cols[j];
      const std::int32_t v = vals[j];
      const long ky_lo = std::max(0L, iy + d.pad - d.h_out + 1);
      const long ky_hi = std::min(d.kernel - 1, iy + d.pad);
      const long kx_lo = std::max(0L, ix + d.pad - d.w_out + 1);
      const long kx_hi = std::min(d.kernel - 1, ix + d.pad);
      for (long ky = ky_lo; ky <= ky_hi; ++ky) {
        std::int32_t* arow = ap + (iy + d.pad - ky) * d.w_out;
        const std::int8_t* wrow = wp + ky * d.kernel;
        const long obase = ix + d.pad;
        for (long kx = kx_lo; kx <= kx_hi; ++kx)
          arow[obase - kx] += static_cast<std::int32_t>(wrow[kx]) * v;
      }
    }
  }
}

// --- naive int8 (reference; moved verbatim from approx/int8_backend.cpp) -----

/// Raw-argument core of the int8 convolution: one (sample, out-channel)
/// output plane per `idx` in [idx_lo, idx_hi), accumulated in `plane` — a
/// single h_out*w_out int32 buffer owned by this chunk and reused across
/// its planes (only one plane is live at a time). The noinline raw-pointer
/// boundary and the __restrict qualifiers both matter: inlined into the
/// pool lambda (where every pointer derives from Tensor/vector members)
/// GCC 12 stops hoisting across the plane loops, and without __restrict it
/// guards the vectorized MAC loop with per-row overlap checks whose cost
/// rivals the 4-lane SSE body at these row lengths. Together they are worth
/// ~25% kernel throughput at -O3 without -march.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
void Conv2dPlanes(long idx_lo, long idx_hi,
                  const std::int32_t* __restrict xd,
                  const std::int8_t* __restrict wd,
                  const float* __restrict scales,
                  const float* __restrict bd, float act_scale,
                  std::int32_t* __restrict plane, float* __restrict od,
                  long c_in, long h, long w, long co_n,
                  long kernel, long pad) {
  const long h_out = h + 2 * pad - kernel + 1;
  const long w_out = w + 2 * pad - kernel + 1;
  const long x_plane = h * w;
  const long x_sample = c_in * x_plane;
  const long o_plane = h_out * w_out;
  const long o_sample = co_n * o_plane;
  const long w_per_out = c_in * kernel * kernel;
  for (long idx = idx_lo; idx < idx_hi; ++idx) {
    const long s = idx / co_n;
    const long co = idx % co_n;
    const std::int32_t* xs = xd + s * x_sample;
    const std::int8_t* wf = wd + co * w_per_out;
    std::int32_t* ap = plane;
    for (long i = 0; i < o_plane; ++i) ap[i] = 0;
    for (long ci = 0; ci < c_in; ++ci) {
      const std::int32_t* xp = xs + ci * x_plane;
      const std::int8_t* wp = wf + ci * kernel * kernel;
      for (long ky = 0; ky < kernel; ++ky) {
        for (long kx = 0; kx < kernel; ++kx) {
          const std::int32_t wv = wp[ky * kernel + kx];
          if (wv == 0) continue;  // pruned connection: no work
          const long ox_lo = std::max(0L, pad - kx);
          const long ox_hi = std::min(w_out, w + pad - kx);
          // Index as xrow[ox + kx - pad] instead of pre-offsetting xrow:
          // ox >= ox_lo keeps the index non-negative, and a pre-start
          // pointer must not even be formed ([expr.add]).
          const long x_off = kx - pad;
          for (long oy = 0; oy < h_out; ++oy) {
            const long iy = oy + ky - pad;
            if (iy < 0 || iy >= h) continue;
            const std::int32_t* xrow = xp + iy * w;
            std::int32_t* arow = ap + oy * w_out;
            for (long ox = ox_lo; ox < ox_hi; ++ox)
              arow[ox] += wv * xrow[ox + x_off];
          }
        }
      }
    }
    // Requantize: accumulator counts are exact, the output lives at
    // act_scale * weight_scale[co]; bias stays float.
    const float requant = act_scale * scales[co];
    const float b = bd[co];
    float* op = od + s * o_sample + co * o_plane;
    for (long i = 0; i < o_plane; ++i)
      op[i] = static_cast<float>(ap[i]) * requant + b;
  }
}

}  // namespace

// --- fp32 dispatcher ---------------------------------------------------------

void Conv2dForward(const Tensor& weight, const Tensor& bias, const Tensor& x,
                   Tensor& out, const Conv2dGeom& geom, KernelMode mode,
                   runtime::Workspace& scratch, const PackedWords* packed) {
  AXSNN_CHECK(x.rank() >= 3, "Conv2dForward expects [*, C, H, W]");
  const Dims d = MakeDims(x.numel(), x.shape(), geom);
  AXSNN_CHECK(weight.numel() == d.c_out * d.w_per_out,
              "Conv2dForward weight shape mismatch");
  AXSNN_CHECK(out.numel() == d.n * d.o_sample, "Conv2dForward output not sized");

  const float* xd = x.data();
  const float* wd = weight.data();
  const float* bd = bias.data();
  float* od = out.data();

  mode = ResolveKernelMode(mode);
  const long wps = SpikeWordCount(d.x_sample);
  const std::uint64_t* words_d = nullptr;
  if (mode == KernelMode::kAuto || mode == KernelMode::kSparse) {
    // Spike words serve the density probe (popcount — the exact same count
    // as the old elementwise probe) and, below, the sparse gather.
    long nonzero;
    if (packed != nullptr) {
      words_d = packed->words;
      nonzero = packed->nonzero;
    } else {
      auto& words = scratch.AcquireU64(slots::kWords,
                                       static_cast<std::size_t>(d.n * wps));
      nonzero = ParallelPackSpikeWords(xd, d.n, d.x_sample, words.data());
      words_d = words.data();
    }
    // Dense fallback naive: the reference loops vectorize their contiguous
    // row MACs and skip pruned weights, and auto never picks the
    // tolerance-gated fp32 simd path (see kernels/dispatch.hpp).
    mode = ChooseByDensity(mode,
                           static_cast<float>(nonzero) /
                               static_cast<float>(x.numel()),
                           kConvSparseDensityMax, KernelMode::kNaive);
  }
  if (mode == KernelMode::kSimd &&
      ActiveSimdTier() == SimdTier::kScalar)
    mode = KernelMode::kNaive;  // forced simd without the tier: scalar ref

  if (mode == KernelMode::kNaive) {
    Conv2dNaive(xd, wd, bd, od, d);
    return;
  }

  const long grain = runtime::DefaultGrain(d.n);
  const long chunks = runtime::NumChunks(d.n, grain);

  if (mode == KernelMode::kGemm || mode == KernelMode::kSimd) {
    // One im2col matrix per chunk; a chunk's samples reuse it in turn.
    // simd swaps the scalar-tiled GEMM for the 8-wide FMA microkernel over
    // the same packed matrix.
    Tensor& pack =
        scratch.Acquire(slots::kPack, chunks * d.w_per_out * d.o_plane);
    float* pd = pack.data();
    const bool use_simd = mode == KernelMode::kSimd;
    runtime::ParallelForChunks(
        0, d.n,
        [&](long chunk, long lo, long hi) {
          float* col = pd + chunk * d.w_per_out * d.o_plane;
          for (long s = lo; s < hi; ++s) {
            PackIm2col(xd + s * d.x_sample, col, d);
            if (use_simd)
              simd::ConvGemmF32(wd, bd, col, od + s * d.o_sample, d.c_out,
                                d.w_per_out, d.o_plane);
            else
              GemmSampleF32(wd, bd, col, od + s * d.o_sample, d.c_out,
                            d.w_per_out, d.o_plane);
          }
        },
        grain);
    return;
  }

  // kSparse: per-chunk gather lists sized for one sample at a time.
  auto& offs = scratch.AcquireI32(
      slots::kOffsets, static_cast<std::size_t>(chunks * (d.c_in + 1)));
  auto& rows = scratch.AcquireI32(slots::kRows,
                                  static_cast<std::size_t>(chunks * d.x_sample));
  auto& cols = scratch.AcquireI32(slots::kCols,
                                  static_cast<std::size_t>(chunks * d.x_sample));
  Tensor& vals = scratch.Acquire(slots::kSparseVals, chunks * d.x_sample);
  std::int32_t* offs_d = offs.data();
  std::int32_t* rows_d = rows.data();
  std::int32_t* cols_d = cols.data();
  float* vals_d = vals.data();
  runtime::ParallelForChunks(
      0, d.n,
      [&](long chunk, long lo, long hi) {
        std::int32_t* c_offs = offs_d + chunk * (d.c_in + 1);
        std::int32_t* c_rows = rows_d + chunk * d.x_sample;
        std::int32_t* c_cols = cols_d + chunk * d.x_sample;
        float* c_vals = vals_d + chunk * d.x_sample;
        for (long s = lo; s < hi; ++s) {
          GatherNonzerosWords(xd + s * d.x_sample, words_d + s * wps, d,
                              c_offs, c_rows, c_cols, c_vals);
          float* os = od + s * d.o_sample;
          for (long co = 0; co < d.c_out; ++co) {
            float* op = os + co * d.o_plane;
            const float b = bd[co];
            for (long i = 0; i < d.o_plane; ++i) op[i] = b;
            ScatterChannelF32(wd + co * d.w_per_out, c_offs, c_rows, c_cols,
                              c_vals, op, d);
          }
        }
      },
      grain);
}

// --- int8 dispatcher ---------------------------------------------------------

void Int8Conv2dForward(const QuantizedTensor& weight, const Tensor& bias,
                       const std::int32_t* qact, float act_scale, long n,
                       long h, long w, Tensor& out, const Conv2dGeom& geom,
                       KernelMode mode, runtime::Workspace& scratch,
                       const PackedWords* packed) {
  const long x_numel = n * geom.in_channels * h * w;
  const Dims d = MakeDims(n, h, w, geom);
  AXSNN_CHECK(weight.rows() == d.c_out && weight.row_size() == d.w_per_out,
              "Int8Conv2dForward weight shape mismatch");
  AXSNN_CHECK(out.numel() == d.n * d.o_sample,
              "Int8Conv2dForward output not sized");

  const std::int8_t* wd = weight.data();
  const float* scales = weight.scales().data();
  const float* bd = bias.data();
  float* od = out.data();

  mode = ResolveKernelMode(mode);
  const SimdTier tier = ActiveSimdTier();
  const long wps = SpikeWordCount(d.x_sample);
  const std::uint64_t* words_d = nullptr;
  if (mode == KernelMode::kAuto || mode == KernelMode::kSparse) {
    long nonzero;
    if (packed != nullptr) {
      words_d = packed->words;
      nonzero = packed->nonzero;
    } else {
      auto& words = scratch.AcquireU64(slots::kWords,
                                       static_cast<std::size_t>(d.n * wps));
      nonzero = ParallelPackSpikeWords(qact, d.n, d.x_sample, words.data());
      words_d = words.data();
    }
    // ISA probe (dispatch rule 4): with the SIMD tier active the dense
    // fallback is the exact int8 panel microkernel and the sparse
    // crossover drops (32-MAC instructions raise the dense work rate);
    // scalar machines keep the original naive fallback and threshold. All
    // candidates are bit-identical, so this never changes results.
    const bool simd_ok = tier != SimdTier::kScalar;
    mode = ChooseByDensity(
        mode,
        static_cast<float>(nonzero) / static_cast<float>(x_numel),
        simd_ok ? kConvSparseDensityMaxI8Simd : kConvSparseDensityMax,
        simd_ok ? KernelMode::kSimd : KernelMode::kNaive);
  }
  if (mode == KernelMode::kSimd && tier == SimdTier::kScalar)
    mode = KernelMode::kNaive;  // forced simd without the tier: scalar ref

  if (mode == KernelMode::kNaive) {
    // Same loop nest as the float Conv2dNaive: one disjoint output plane per
    // (sample, out-channel) index, contiguous inner loop over ox, chunks
    // fanned out on the runtime pool. One plane-sized accumulator per chunk
    // (each chunk's planes are processed one at a time) instead of a full
    // output-sized scratch.
    const long total = d.n * d.c_out;
    const long grain = runtime::DefaultGrain(total);
    auto& acc = scratch.AcquireI32(
        slots::kAcc, static_cast<std::size_t>(
                         runtime::NumChunks(total, grain) * d.o_plane));
    std::int32_t* ad = acc.data();
    runtime::ParallelForChunks(
        0, total,
        [&](long chunk, long lo, long hi) {
          Conv2dPlanes(lo, hi, qact, wd, scales, bd, act_scale,
                       ad + chunk * d.o_plane, od, d.c_in, d.h, d.w, d.c_out,
                       d.kernel, d.pad);
        },
        grain);
    return;
  }

  const long grain = runtime::DefaultGrain(d.n);
  const long chunks = runtime::NumChunks(d.n, grain);

  if (mode == KernelMode::kSimd) {
    // Weight rows staged once, zero-padded to the dword-group width; one
    // panel per chunk, rebuilt per sample (panels are pixel-blocked im2col,
    // so this is the same O(kk * o_plane) pack as gemm's, int8-narrow).
    const long kk4 = simd::RoundUp4(d.w_per_out);
    const long panel_bytes = kk4 * simd::RoundUp8(d.o_plane);
    auto& wpad = scratch.AcquireI8(slots::kWpad,
                                   static_cast<std::size_t>(d.c_out * kk4));
    std::int8_t* wpad_d = wpad.data();
    for (long co = 0; co < d.c_out; ++co) {
      std::memcpy(wpad_d + co * kk4, wd + co * d.w_per_out,
                  static_cast<std::size_t>(d.w_per_out));
      for (long k = d.w_per_out; k < kk4; ++k) wpad_d[co * kk4 + k] = 0;
    }
    auto& panel = scratch.AcquireI8(
        slots::kPanel, static_cast<std::size_t>(chunks * panel_bytes));
    std::int8_t* panel_d = panel.data();
    const bool vnni = tier == SimdTier::kVnni;
    runtime::ParallelForChunks(
        0, d.n,
        [&](long chunk, long lo, long hi) {
          std::int8_t* p = panel_d + chunk * panel_bytes;
          for (long s = lo; s < hi; ++s) {
            simd::PackConvPanelI8(qact + s * d.x_sample, p, d.c_in, d.h, d.w,
                                  d.w_out, d.kernel, d.pad, d.o_plane, kk4);
            simd::ConvPanelI8(wpad_d, scales, act_scale, bd, p,
                              od + s * d.o_sample, d.c_out, kk4, d.o_plane,
                              vnni);
          }
        },
        grain);
    return;
  }

  if (mode == KernelMode::kGemm) {
    // int8 col (narrowed during packing) — the int32 im2col this replaced
    // was the whole regression: 4x the packing write+reread traffic with
    // the same inner loop (see kernels/dispatch.hpp).
    auto& pack = scratch.AcquireI8(
        slots::kColI8,
        static_cast<std::size_t>(chunks * d.w_per_out * d.o_plane));
    std::int8_t* pd = pack.data();
    runtime::ParallelForChunks(
        0, d.n,
        [&](long chunk, long lo, long hi) {
          std::int8_t* col = pd + chunk * d.w_per_out * d.o_plane;
          for (long s = lo; s < hi; ++s) {
            PackIm2col(qact + s * d.x_sample, col, d);
            GemmSampleI32(wd, scales, act_scale, bd, col, od + s * d.o_sample,
                          d.c_out, d.w_per_out, d.o_plane);
          }
        },
        grain);
    return;
  }

  // kSparse: gather nonzero codes once per sample, scatter per channel into
  // a chunk-owned int32 plane, requantize on write-out.
  auto& offs = scratch.AcquireI32(
      slots::kOffsets, static_cast<std::size_t>(chunks * (d.c_in + 1)));
  auto& rows = scratch.AcquireI32(slots::kRows,
                                  static_cast<std::size_t>(chunks * d.x_sample));
  auto& cols = scratch.AcquireI32(slots::kCols,
                                  static_cast<std::size_t>(chunks * d.x_sample));
  auto& vals = scratch.AcquireI32(slots::kQVals,
                                  static_cast<std::size_t>(chunks * d.x_sample));
  auto& acc = scratch.AcquireI32(slots::kAcc,
                                 static_cast<std::size_t>(chunks * d.o_plane));
  std::int32_t* offs_d = offs.data();
  std::int32_t* rows_d = rows.data();
  std::int32_t* cols_d = cols.data();
  std::int32_t* vals_d = vals.data();
  std::int32_t* acc_d = acc.data();
  runtime::ParallelForChunks(
      0, d.n,
      [&](long chunk, long lo, long hi) {
        std::int32_t* c_offs = offs_d + chunk * (d.c_in + 1);
        std::int32_t* c_rows = rows_d + chunk * d.x_sample;
        std::int32_t* c_cols = cols_d + chunk * d.x_sample;
        std::int32_t* c_vals = vals_d + chunk * d.x_sample;
        std::int32_t* ap = acc_d + chunk * d.o_plane;
        for (long s = lo; s < hi; ++s) {
          GatherNonzerosWords(qact + s * d.x_sample, words_d + s * wps, d,
                              c_offs, c_rows, c_cols, c_vals);
          float* os = od + s * d.o_sample;
          for (long co = 0; co < d.c_out; ++co) {
            for (long i = 0; i < d.o_plane; ++i) ap[i] = 0;
            ScatterChannelI32(wd + co * d.w_per_out, c_offs, c_rows, c_cols,
                              c_vals, ap, d);
            const float requant = act_scale * scales[co];
            const float b = bd[co];
            float* op = os + co * d.o_plane;
            for (long i = 0; i < d.o_plane; ++i)
              op[i] = static_cast<float>(ap[i]) * requant + b;
          }
        }
      },
      grain);
}

}  // namespace axsnn::kernels
