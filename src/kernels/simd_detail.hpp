// Internal linkage between the two SIMD translation units. The public
// ConvPanelI8/DenseRowsI8 entry points (simd_kernels.cpp, built -mavx2
// -mfma) select between these per-ISA variants; the _vnni pair lives in
// simd_kernels_vnni.cpp, the only TU built with -mavxvnni, so the
// auto-vectorizer can never leak vpdpbusd into AVX2-only code. Both TUs
// must see identical declarations — include this, don't redeclare.
#pragma once

#include <cstdint>

namespace axsnn::kernels::simd::detail {

void ConvPanelI8_avx2(const std::int8_t* wpad, const float* scales,
                      float act_scale, const float* bd,
                      const std::int8_t* panel, float* op, long c_out,
                      long kk4, long o_plane);
void ConvPanelI8_vnni(const std::int8_t* wpad, const float* scales,
                      float act_scale, const float* bd,
                      const std::int8_t* panel, float* op, long c_out,
                      long kk4, long o_plane);

void DenseRowsI8_avx2(const std::int8_t* wd, const float* scales,
                      float act_scale, const float* bd,
                      const std::int8_t* qact, float* od, long lo, long hi,
                      long f_in, long f_out);
void DenseRowsI8_vnni(const std::int8_t* wd, const float* scales,
                      float act_scale, const float* bd,
                      const std::int8_t* qact, float* od, long lo, long hi,
                      long f_in, long f_out);

/// True iff simd_kernels_vnni.cpp was built with AVX-VNNI support (the
/// _vnni variants above are real kernels, not aborting stubs).
bool VnniCompiled();

}  // namespace axsnn::kernels::simd::detail
