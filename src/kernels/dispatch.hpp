// Sparsity-aware kernel dispatch: mode knob, density probe, slot map.
//
// SNN workloads guarantee one thing dense-ML kernels cannot assume: the
// activations flowing through Conv2d/Dense are overwhelmingly zero (binary
// spike trains, rate-encoded inputs, binned event frames), and Eq.-(1)
// pruning adds weight sparsity on top. The kernel subsystem therefore ships
// three implementations per (layer, precision) pair:
//
//   naive  — the original reference loops, retained verbatim. Every other
//            path is pinned against it by the differential equivalence
//            suite (tests/test_kernels.cpp).
//   gemm   — im2col + register-blocked GEMM over packed buffers, for
//            dense (mostly-nonzero) inputs.
//   sparse — scans each input plane's nonzeros once and scatters weight
//            rows. Work is proportional to the *nonzero* count, so it wins
//            whenever spike density is below the thresholds here.
//
// Above the sparse threshold the auto probe falls back to the *measured*
// best dense path per kernel family, not unconditionally to gemm: on the
// bench shapes (BENCH_runtime.json "kernel_dispatch") gemm beats naive
// only for fp32 dense layers — the conv naive loops already vectorize
// their contiguous row MACs and skip pruned weights, and the int8 variants
// pay im2col's int32 packing traffic without a wider inner loop. Each
// dispatcher therefore passes its own dense-regime fallback to
// ChooseByDensity; re-calibrate with bench_micro_runtime when the kernels
// or target hardware change.
//
// Every path produces bit-identical fp32 results (identical per-element
// accumulation order — see DESIGN.md "Kernel dispatch") and identical int8
// results (integer accumulation is exact), so the dispatch decision can
// never change an experiment outcome; the golden determinism test pins
// that end to end.
//
// Mode precedence for one kernel call:
//   1. a non-auto *global* mode (AXSNN_KERNEL_MODE env var, or
//      SetGlobalKernelMode) forces that path everywhere — the CI matrix and
//      the differential tests use this to pin each path;
//   2. otherwise a non-auto *layer/config* mode
//      (ApproxConfig::kernel_mode -> Conv2d/Dense::set_kernel_mode);
//   3. otherwise (auto) a per-call density probe picks sparse at or below
//      the density thresholds, the family's dense fallback above them
//      (per-family, see the paragraph above — gemm only for fp32 dense).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace axsnn::kernels {

/// Kernel implementation selector; kAuto defers to the density probe.
enum class KernelMode { kAuto, kNaive, kGemm, kSparse };

/// "auto" / "naive" / "gemm" / "sparse".
const char* KernelModeName(KernelMode mode);

/// Inverse of KernelModeName; nullopt for unknown names.
std::optional<KernelMode> ParseKernelMode(std::string_view name);

/// Process-global mode, initialized once from the AXSNN_KERNEL_MODE
/// environment variable (unset / unparsable -> kAuto). A non-auto global
/// mode overrides every per-layer setting (precedence rule 1 above).
KernelMode GlobalKernelMode();

/// Overrides the global mode at runtime (tests, benchmarks). Not
/// thread-safe against concurrent kernel calls.
void SetGlobalKernelMode(KernelMode mode);

/// Scoped global-mode override: forces one path for the scope's duration
/// (winning over a CI-exported AXSNN_KERNEL_MODE too — precedence rule 1)
/// and restores the prior mode on exit. The differential equivalence
/// tests and the dispatch benchmarks pin each path with this.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(KernelMode mode) : saved_(GlobalKernelMode()) {
    SetGlobalKernelMode(mode);
  }
  ~ScopedKernelMode() { SetGlobalKernelMode(saved_); }
  ScopedKernelMode(const ScopedKernelMode&) = delete;
  ScopedKernelMode& operator=(const ScopedKernelMode&) = delete;

 private:
  KernelMode saved_;
};

/// Density thresholds for the auto probe: the sparse path runs scalar MACs
/// on gathered nonzeros while gemm runs vectorized MACs on everything, so
/// sparse wins once the nonzero fraction is below roughly 1/vector-width
/// with headroom. Measured on the bench_micro_runtime shapes; see
/// DESIGN.md "Kernel dispatch".
inline constexpr float kConvSparseDensityMax = 0.15f;
inline constexpr float kDenseSparseDensityMax = 0.15f;

/// Fraction of nonzero elements in [0, 1] (0 for n <= 0). Deterministic
/// chunked parallel count (exact — counting is order-independent).
float Density(const float* x, long n);
float Density(const std::int32_t* x, long n);
float Density(const std::int8_t* x, long n);

/// Applies precedence rule 1: a non-auto global mode wins over `requested`.
KernelMode ResolveKernelMode(KernelMode requested);

/// Applies precedence rule 3: maps kAuto to kSparse below `sparse_max`, to
/// `dense_fallback` (the family's measured-best dense path — see the file
/// comment) at or above it. Non-auto modes pass through unchanged.
KernelMode ChooseByDensity(KernelMode mode, float density, float sparse_max,
                           KernelMode dense_fallback);

/// Workspace slot map shared by the kernel implementations. Each Conv2d /
/// Dense layer owns one scratch Workspace (runtime::LocalScratch), so slot
/// indices only need to be unique within one layer's kernel calls.
namespace slots {
// float slots (Workspace::Acquire)
inline constexpr std::size_t kPack = 0;        ///< im2col / transposed packs
inline constexpr std::size_t kSparseVals = 1;  ///< gathered nonzero values
// int32 slots (Workspace::AcquireI32)
inline constexpr std::size_t kOffsets = 0;  ///< per-plane nonzero offsets
inline constexpr std::size_t kRows = 1;     ///< nonzero row coords / indices
inline constexpr std::size_t kCols = 2;     ///< nonzero col coords
inline constexpr std::size_t kQAct = 3;     ///< conv activation codes
inline constexpr std::size_t kAcc = 4;      ///< int8 accumulator planes
inline constexpr std::size_t kQVals = 5;    ///< gathered / packed codes
// int8 slots (Workspace::AcquireI8)
inline constexpr std::size_t kQActI8 = 0;  ///< dense activation codes
}  // namespace slots

}  // namespace axsnn::kernels
