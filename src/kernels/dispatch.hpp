// Sparsity-aware kernel dispatch: mode knob, density probe, slot map.
//
// SNN workloads guarantee one thing dense-ML kernels cannot assume: the
// activations flowing through Conv2d/Dense are overwhelmingly zero (binary
// spike trains, rate-encoded inputs, binned event frames), and Eq.-(1)
// pruning adds weight sparsity on top. The kernel subsystem therefore ships
// four implementations per (layer, precision) pair:
//
//   naive  — the original reference loops, retained verbatim. Every other
//            path is pinned against it by the differential equivalence
//            suite (tests/test_kernels.cpp).
//   gemm   — im2col + register-blocked GEMM over packed buffers, for
//            dense (mostly-nonzero) inputs. The int8 flavor packs int8
//            codes (narrowed during im2col), not int32 — the int32 packing
//            traffic was what made the original int8 gemm slower than
//            naive.
//   sparse — scans each input's bit-packed spike words (spike_words.hpp)
//            and scatters weight rows per nonzero. Work is proportional to
//            the *nonzero* count, so it wins whenever spike density is
//            below the thresholds here.
//   simd   — explicit AVX2/AVX-VNNI microkernels (simd_kernels.hpp) behind
//            runtime CPUID detection (cpu_features.hpp). int8 simd is
//            bit-identical to naive; fp32 simd is tolerance-gated and runs
//            only when requested explicitly — see the numerics contract in
//            simd_kernels.hpp.
//
// Above the sparse threshold the auto probe falls back to the *measured*
// best dense path per kernel family, not unconditionally to one mode: on
// the bench shapes (BENCH_runtime.json "kernel_dispatch") the int8
// families pick simd when the ISA probe reports an active tier (naive
// otherwise), fp32 dense picks gemm, and fp32 conv picks naive — auto
// never selects fp32 simd because its FMA accumulation differs from the
// naive order, and dispatch decisions must never change an experiment
// outcome (the golden determinism test pins that end to end; every path
// auto can select is bit-identical to naive). Re-calibrate with
// bench_micro_runtime when the kernels or target hardware change.
//
// Mode precedence for one kernel call:
//   1. a non-auto *global* mode (AXSNN_KERNEL_MODE env var, or
//      SetGlobalKernelMode) forces that path everywhere — the CI matrix and
//      the differential tests use this to pin each path;
//   2. otherwise a non-auto *layer/config* mode
//      (ApproxConfig::kernel_mode -> Conv2d/Dense::set_kernel_mode);
//   3. otherwise (auto) a per-call density probe (a popcount over the
//      spike words) picks sparse at or below the density thresholds;
//   4. above them the family's dense fallback applies, consulting
//      ActiveSimdTier() for the int8 families (the ISA probe).
// A forced simd mode (rule 1 or 2) on a machine or build without the SIMD
// tier degrades to naive — always safe because int8 simd is bit-identical
// and fp32 simd is opt-in; AXSNN_SIMD=off therefore exercises the scalar
// fallback everywhere without touching results.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace axsnn::kernels {

/// Kernel implementation selector; kAuto defers to the density probe.
enum class KernelMode { kAuto, kNaive, kGemm, kSparse, kSimd };

/// "auto" / "naive" / "gemm" / "sparse" / "simd".
const char* KernelModeName(KernelMode mode);

/// Inverse of KernelModeName; nullopt for unknown names.
std::optional<KernelMode> ParseKernelMode(std::string_view name);

/// Process-global mode, initialized once from the AXSNN_KERNEL_MODE
/// environment variable (unset / unparsable -> kAuto). A non-auto global
/// mode overrides every per-layer setting (precedence rule 1 above).
KernelMode GlobalKernelMode();

/// Overrides the global mode at runtime (tests, benchmarks). Not
/// thread-safe against concurrent kernel calls.
void SetGlobalKernelMode(KernelMode mode);

/// Scoped global-mode override: forces one path for the scope's duration
/// (winning over a CI-exported AXSNN_KERNEL_MODE too — precedence rule 1)
/// and restores the prior mode on exit. The differential equivalence
/// tests and the dispatch benchmarks pin each path with this.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(KernelMode mode) : saved_(GlobalKernelMode()) {
    SetGlobalKernelMode(mode);
  }
  ~ScopedKernelMode() { SetGlobalKernelMode(saved_); }
  ScopedKernelMode(const ScopedKernelMode&) = delete;
  ScopedKernelMode& operator=(const ScopedKernelMode&) = delete;

 private:
  KernelMode saved_;
};

/// Density thresholds for the auto probe: the sparse path runs scalar MACs
/// on gathered nonzeros while the dense paths run vectorized MACs on
/// everything, so sparse wins once the nonzero fraction is below roughly
/// 1/vector-width with headroom. Measured on the bench_micro_runtime
/// shapes; see DESIGN.md "Kernel dispatch". The int8 thresholds are lower
/// than fp32's: the SIMD tier's 32-MAC int8 instructions raise the dense
/// paths' work rate ~4x over fp32, moving the crossover down. Calibrated
/// against the panel/dense microkernels on the bench shapes: conv sparse
/// stops winning near 4% nonzeros, dense near 1.5% (the dense simd path
/// has no packing cost, so its crossover sits much lower).
inline constexpr float kConvSparseDensityMax = 0.15f;
inline constexpr float kDenseSparseDensityMax = 0.15f;
inline constexpr float kConvSparseDensityMaxI8Simd = 0.04f;
inline constexpr float kDenseSparseDensityMaxI8Simd = 0.015f;

/// Fraction of nonzero elements in [0, 1] (0 for n <= 0). Deterministic
/// chunked parallel count (exact — counting is order-independent).
float Density(const float* x, long n);
float Density(const std::int32_t* x, long n);
float Density(const std::int8_t* x, long n);

/// Packs per-sample spike-word rows (spike_words.hpp layout: sample i's
/// words at words + i * SpikeWordCount(sample_len)) for all n_samples
/// samples, parallel over sample chunks, and returns the total nonzero
/// count — exactly the count the scalar Density probe would produce, so
/// auto decisions are unchanged by the representation. The dispatchers
/// build this once per input (slot slots::kWords) and share it between the
/// density probe and the sparse gather.
long ParallelPackSpikeWords(const float* x, long n_samples, long sample_len,
                            std::uint64_t* words);
long ParallelPackSpikeWords(const std::int32_t* x, long n_samples,
                            long sample_len, std::uint64_t* words);
long ParallelPackSpikeWords(const std::int8_t* x, long n_samples,
                            long sample_len, std::uint64_t* words);

/// Pre-packed spike words handed to a dispatcher by a caller that already
/// owns the bit-packed representation (the event-driven temporal path:
/// SpikeStream step planes and the per-layer spike lanes). `words` holds
/// n_samples rows of SpikeWordCount(sample_len) words in the spike_words
/// layout; `nonzero` is their total popcount. When supplied, the
/// dispatchers skip their own AcquireU64 + ParallelPackSpikeWords pass and
/// feed these words to both the density decision and the sparse gather —
/// same counts, same scan order, so dispatch decisions and results are
/// unchanged; only the re-derivation cost disappears. For the int8
/// families the caller's words come from the *float* activations; on the
/// binary (spike) inputs the event path carries, the float and code
/// nonzero masks coincide, and any extra zero-code gather entries would be
/// exact int32 no-ops anyway.
struct PackedWords {
  const std::uint64_t* words = nullptr;
  long nonzero = 0;
};

/// Applies precedence rule 1: a non-auto global mode wins over `requested`.
KernelMode ResolveKernelMode(KernelMode requested);

/// Applies precedence rules 3-4: maps kAuto to kSparse below `sparse_max`,
/// to `dense_fallback` (the family's measured-best dense path — see the
/// file comment) at or above it. Non-auto modes pass through unchanged.
KernelMode ChooseByDensity(KernelMode mode, float density, float sparse_max,
                           KernelMode dense_fallback);

/// Workspace slot map shared by the kernel implementations. Each Conv2d /
/// Dense layer owns one scratch Workspace (runtime::LocalScratch), so slot
/// indices only need to be unique within one layer's kernel calls.
namespace slots {
// float slots (Workspace::Acquire)
inline constexpr std::size_t kPack = 0;        ///< im2col / transposed packs
inline constexpr std::size_t kSparseVals = 1;  ///< gathered nonzero values
// int32 slots (Workspace::AcquireI32)
inline constexpr std::size_t kOffsets = 0;  ///< per-plane nonzero offsets
inline constexpr std::size_t kRows = 1;     ///< nonzero row coords / indices
inline constexpr std::size_t kCols = 2;     ///< nonzero col coords
inline constexpr std::size_t kQAct = 3;     ///< conv activation codes
inline constexpr std::size_t kAcc = 4;      ///< int8 accumulator planes
inline constexpr std::size_t kQVals = 5;    ///< gathered / packed codes
// int8 slots (Workspace::AcquireI8)
inline constexpr std::size_t kQActI8 = 0;  ///< dense activation codes
inline constexpr std::size_t kColI8 = 1;   ///< int8 im2col (gemm path)
inline constexpr std::size_t kPanel = 2;   ///< SIMD conv int8 panels
inline constexpr std::size_t kWpad = 3;    ///< kk4-padded int8 weight rows
// uint64 slots (Workspace::AcquireU64)
inline constexpr std::size_t kWords = 0;  ///< bit-packed spike words
}  // namespace slots

}  // namespace axsnn::kernels
