#include "kernels/spike_stream.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

#include "kernels/spike_words.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::kernels {

void SpikeStream::Configure(long time_steps, long batch, Shape sample_shape) {
  AXSNN_CHECK(time_steps > 0, "SpikeStream: time_steps must be positive");
  AXSNN_CHECK(batch > 0, "SpikeStream: batch must be positive");
  const long plane = NumElements(sample_shape);
  AXSNN_CHECK(plane > 0, "SpikeStream: sample plane must be non-empty");
  time_steps_ = time_steps;
  batch_ = batch;
  plane_ = plane;
  words_per_plane_ = SpikeWordCount(plane);
  sample_shape_ = std::move(sample_shape);
  const std::size_t n_words =
      std::size_t(time_steps_) * std::size_t(batch_) *
      std::size_t(words_per_plane_);
  if (words_.size() < n_words) words_.resize(n_words);
  std::fill(words_.begin(), words_.begin() + std::ptrdiff_t(n_words), 0);
  const std::size_t n_counts = std::size_t(time_steps_) * std::size_t(batch_);
  if (counts_.size() < n_counts) counts_.resize(n_counts);
  std::fill(counts_.begin(), counts_.begin() + std::ptrdiff_t(n_counts), 0);
  if (step_totals_.size() < std::size_t(time_steps_)) {
    step_totals_.resize(std::size_t(time_steps_));
  }
  std::fill(step_totals_.begin(), step_totals_.begin() + time_steps_, 0L);
}

long SpikeStream::TotalSpikes() const {
  return std::accumulate(step_totals_.begin(),
                         step_totals_.begin() + time_steps_, 0L);
}

long SpikeStream::SilentSteps() const {
  return std::count(step_totals_.begin(), step_totals_.begin() + time_steps_,
                    0L);
}

void SpikeStream::FinalizeCounts() {
  // Parallel over (t, i) rows; counting is order-independent, so the chunked
  // reduction is exact regardless of pool size.
  const long rows = time_steps_ * batch_;
  runtime::ParallelFor(0, rows, [&](long r) {
    const std::uint64_t* w = words_.data() + r * words_per_plane_;
    counts_[std::size_t(r)] =
        std::int32_t(CountSpikeWords(w, words_per_plane_));
  });
  for (long t = 0; t < time_steps_; ++t) {
    long total = 0;
    const std::int32_t* c = StepCounts(t);
    for (long i = 0; i < batch_; ++i) total += c[i];
    step_totals_[std::size_t(t)] = total;
  }
}

bool SpikeStream::PackTimeMajor(const Tensor& frames_tbx) {
  AXSNN_CHECK(frames_tbx.numel() == time_steps_ * batch_ * plane_,
              "SpikeStream::PackTimeMajor: tensor size does not match the "
              "configured stream");
  const float* src = frames_tbx.data();
  const long rows = time_steps_ * batch_;
  // One flag per possible chunk; a non-binary value anywhere in a chunk
  // poisons that chunk's flag. Deterministic regardless of pool size.
  bool binary[runtime::kMaxChunks] = {};
  std::fill(std::begin(binary), std::end(binary), true);
  runtime::ParallelForChunks(
      0, rows,
      [&](long chunk, long lo, long hi) {
        bool ok = true;
        for (long r = lo; r < hi; ++r) {
          const float* x = src + r * plane_;
          std::uint64_t* w = words_.data() + r * words_per_plane_;
          for (long v = 0; v < plane_; ++v) {
            ok = ok && (x[v] == 0.0f || x[v] == 1.0f);
          }
          counts_[std::size_t(r)] =
              std::int32_t(PackSpikeWords(x, plane_, w));
        }
        binary[chunk] = ok;
      },
      runtime::DefaultGrain(rows));
  for (long c = 0; c < runtime::kMaxChunks; ++c) {
    if (!binary[c]) return false;
  }
  for (long t = 0; t < time_steps_; ++t) {
    long total = 0;
    const std::int32_t* cnt = StepCounts(t);
    for (long i = 0; i < batch_; ++i) total += cnt[i];
    step_totals_[std::size_t(t)] = total;
  }
  return true;
}

void SpikeStream::DensifyStepInto(long t, float* out) const {
  const long n = batch_ * plane_;
  std::fill(out, out + n, 0.0f);
  for (long i = 0; i < batch_; ++i) {
    const std::uint64_t* w = SampleWords(t, i);
    float* dst = out + i * plane_;
    ForEachSetBit(w, words_per_plane_, [&](long v) { dst[v] = 1.0f; });
  }
}

}  // namespace axsnn::kernels
