#include "kernels/spike_words.hpp"

namespace axsnn::kernels {

namespace {

/// Shared packer: builds each word from its (up to) 64 elements. The inner
/// compare loop is branch-free and auto-vectorizes; the returned count is
/// the popcount of what was written, so callers get the density numerator
/// for free.
template <typename T>
long PackWords(const T* x, long n, std::uint64_t* words) {
  const long n_words = SpikeWordCount(n);
  long nonzero = 0;
  for (long w = 0; w < n_words; ++w) {
    const long base = w * 64;
    const int lanes = static_cast<int>(n - base < 64 ? n - base : 64);
    std::uint64_t word = 0;
    for (int b = 0; b < lanes; ++b)
      word |= static_cast<std::uint64_t>(x[base + b] != T{0}) << b;
    words[w] = word;
    nonzero += std::popcount(word);
  }
  return nonzero;
}

}  // namespace

long PackSpikeWords(const float* x, long n, std::uint64_t* words) {
  return PackWords(x, n, words);
}
long PackSpikeWords(const std::int32_t* x, long n, std::uint64_t* words) {
  return PackWords(x, n, words);
}
long PackSpikeWords(const std::int8_t* x, long n, std::uint64_t* words) {
  return PackWords(x, n, words);
}

long CountSpikeWords(const std::uint64_t* words, long n_words) {
  long count = 0;
  for (long w = 0; w < n_words; ++w) count += std::popcount(words[w]);
  return count;
}

}  // namespace axsnn::kernels
