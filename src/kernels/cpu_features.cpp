#include "kernels/cpu_features.hpp"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace axsnn::kernels {

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kVnni:
      return "avx2-vnni";
  }
  return "?";
}

namespace {

#if defined(__x86_64__) || defined(__i386__)

/// XCR0 via the xgetbv instruction directly — the _xgetbv intrinsic needs
/// -mxsave, and this TU deliberately builds without ISA flags. Only called
/// after CPUID reports OSXSAVE, so the instruction is always available.
unsigned long long ReadXcr0() {
  unsigned int eax = 0, edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<unsigned long long>(edx) << 32) | eax;
}

CpuFeatures DetectOnce() {
  CpuFeatures f;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  const bool fma = (ecx & (1u << 12)) != 0;
  if (!osxsave || !avx) return f;  // no AVX state or no XGETBV: scalar only
  // XCR0 bits 1|2: the OS saves/restores xmm+ymm state across context
  // switches — without this, executing AVX faults or corrupts state.
  const unsigned long long xcr0 = ReadXcr0();
  if ((xcr0 & 0x6) != 0x6) return f;

  unsigned max_leaf = __get_cpuid_max(0, nullptr);
  if (max_leaf < 7) return f;
  unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
  __cpuid_count(7, 0, eax7, ebx7, ecx7, edx7);
  f.avx2 = (ebx7 & (1u << 5)) != 0;
  f.fma = fma;
  f.avx512_vnni = (ecx7 & (1u << 11)) != 0;
  if (eax7 >= 1) {
    unsigned eax71 = 0, ebx71 = 0, ecx71 = 0, edx71 = 0;
    __cpuid_count(7, 1, eax71, ebx71, ecx71, edx71);
    f.avx_vnni = (eax71 & (1u << 4)) != 0;
  }
  return f;
}

#else

CpuFeatures DetectOnce() { return CpuFeatures{}; }

#endif

SimdTier CapFromEnv() {
  const char* env = std::getenv("AXSNN_SIMD");
  if (env == nullptr) return SimdTier::kVnni;  // no cap
  return ParseSimdCap(env);
}

std::atomic<SimdTier> g_cap{CapFromEnv()};

}  // namespace

const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = DetectOnce();
  return features;
}

SimdTier ParseSimdCap(std::string_view value) {
  if (value == "off" || value == "scalar" || value == "0")
    return SimdTier::kScalar;
  if (value == "avx2") return SimdTier::kAvx2;
  // "vnni", "avx2-vnni", "on", "auto", "" and anything unrecognized: no cap
  // — a typo must never silently pin the process below full detection.
  return SimdTier::kVnni;
}

SimdTier SimdTierCap() { return g_cap.load(std::memory_order_relaxed); }

void SetSimdTierCap(SimdTier cap) {
  g_cap.store(cap, std::memory_order_relaxed);
}

SimdTier ActiveSimdTier() {
  const SimdTier cap = SimdTierCap();
  if (cap == SimdTier::kScalar || !SimdKernelsCompiled())
    return SimdTier::kScalar;
  const CpuFeatures& f = DetectCpuFeatures();
  if (!f.avx2 || !f.fma) return SimdTier::kScalar;
  // AVX-VNNI wants compiler support on top of the CPU bit; AVX-512 VNNI is
  // detected but not targeted (256-bit kernels keep one panel layout — see
  // DESIGN.md "SIMD kernel tier").
  if (cap == SimdTier::kVnni && f.avx_vnni && SimdVnniCompiled())
    return SimdTier::kVnni;
  return SimdTier::kAvx2;
}

}  // namespace axsnn::kernels
