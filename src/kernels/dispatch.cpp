#include "kernels/dispatch.hpp"

#include <array>
#include <atomic>
#include <cstdlib>

#include "kernels/spike_words.hpp"
#include "runtime/parallel_for.hpp"

namespace axsnn::kernels {

const char* KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kAuto:
      return "auto";
    case KernelMode::kNaive:
      return "naive";
    case KernelMode::kGemm:
      return "gemm";
    case KernelMode::kSparse:
      return "sparse";
    case KernelMode::kSimd:
      return "simd";
  }
  return "?";
}

std::optional<KernelMode> ParseKernelMode(std::string_view name) {
  if (name == "auto") return KernelMode::kAuto;
  if (name == "naive") return KernelMode::kNaive;
  if (name == "gemm") return KernelMode::kGemm;
  if (name == "sparse") return KernelMode::kSparse;
  if (name == "simd") return KernelMode::kSimd;
  return std::nullopt;
}

namespace {

KernelMode ModeFromEnv() {
  const char* env = std::getenv("AXSNN_KERNEL_MODE");
  if (env == nullptr) return KernelMode::kAuto;
  return ParseKernelMode(env).value_or(KernelMode::kAuto);
}

std::atomic<KernelMode> g_mode{ModeFromEnv()};

/// Shared chunked nonzero count: exact at any pool size (integer counting
/// is order-independent; the fixed-chunk shape keeps that self-evident).
template <typename T>
float DensityOf(const T* x, long n) {
  if (n <= 0) return 0.0f;
  const long grain = runtime::DefaultGrain(n);
  std::array<long, runtime::kMaxChunks> partials{};
  const long chunks = runtime::NumChunks(n, grain);
  runtime::ParallelForChunks(
      0, n,
      [&](long chunk, long lo, long hi) {
        long count = 0;
        for (long i = lo; i < hi; ++i) count += (x[i] != T{0}) ? 1 : 0;
        partials[static_cast<std::size_t>(chunk)] = count;
      },
      grain);
  long nonzero = 0;
  for (long c = 0; c < chunks; ++c)
    nonzero += partials[static_cast<std::size_t>(c)];
  return static_cast<float>(nonzero) / static_cast<float>(n);
}

}  // namespace

KernelMode GlobalKernelMode() { return g_mode.load(std::memory_order_relaxed); }

void SetGlobalKernelMode(KernelMode mode) {
  g_mode.store(mode, std::memory_order_relaxed);
}

float Density(const float* x, long n) { return DensityOf(x, n); }
float Density(const std::int32_t* x, long n) { return DensityOf(x, n); }
float Density(const std::int8_t* x, long n) { return DensityOf(x, n); }

namespace {

/// Shared word packer: parallel over sample chunks (sample-padded word rows
/// make the chunks disjoint), per-chunk counts reduced deterministically.
template <typename T>
long PackWordsOf(const T* x, long n_samples, long sample_len,
                 std::uint64_t* words) {
  if (n_samples <= 0 || sample_len <= 0) return 0;
  const long wps = SpikeWordCount(sample_len);
  const long grain = runtime::DefaultGrain(n_samples);
  std::array<long, runtime::kMaxChunks> partials{};
  const long chunks = runtime::NumChunks(n_samples, grain);
  runtime::ParallelForChunks(
      0, n_samples,
      [&](long chunk, long lo, long hi) {
        long count = 0;
        for (long s = lo; s < hi; ++s)
          count += PackSpikeWords(x + s * sample_len, sample_len,
                                  words + s * wps);
        partials[static_cast<std::size_t>(chunk)] = count;
      },
      grain);
  long nonzero = 0;
  for (long c = 0; c < chunks; ++c)
    nonzero += partials[static_cast<std::size_t>(c)];
  return nonzero;
}

}  // namespace

long ParallelPackSpikeWords(const float* x, long n_samples, long sample_len,
                            std::uint64_t* words) {
  return PackWordsOf(x, n_samples, sample_len, words);
}
long ParallelPackSpikeWords(const std::int32_t* x, long n_samples,
                            long sample_len, std::uint64_t* words) {
  return PackWordsOf(x, n_samples, sample_len, words);
}
long ParallelPackSpikeWords(const std::int8_t* x, long n_samples,
                            long sample_len, std::uint64_t* words) {
  return PackWordsOf(x, n_samples, sample_len, words);
}

KernelMode ResolveKernelMode(KernelMode requested) {
  const KernelMode global = GlobalKernelMode();
  return global != KernelMode::kAuto ? global : requested;
}

KernelMode ChooseByDensity(KernelMode mode, float density, float sparse_max,
                           KernelMode dense_fallback) {
  if (mode != KernelMode::kAuto) return mode;
  return density <= sparse_max ? KernelMode::kSparse : dense_fallback;
}

}  // namespace axsnn::kernels
