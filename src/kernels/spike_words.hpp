// Bit-packed spike words: 64 events per uint64_t.
//
// SNN activations are overwhelmingly zero, and the sparse kernel path pays
// for that twice today: the density probe tests every element, and the
// gather scans every element again. Packing the nonzero mask into 64-bit
// words — one pass, trivially vectorizable — lets both run on whole words:
// density is a popcount sum, and the gather jumps straight from set bit to
// set bit with ctz, so an all-zero cache line of activations costs one
// 8-byte compare instead of 64 float tests. Built once per input into the
// layer's LocalScratch (slot kernels::slots::kWords) and shared by the
// probe and the gather; the layout (sample-padded word rows) is also the
// representation the future event-driven DVS pipeline streams end to end.
//
// Packing convention: element i of a row maps to bit (i % 64) of word
// (i / 64), rows are padded to whole words with zero bits, so iterating
// words ascending and bits low-to-high visits nonzeros in ascending element
// order — exactly the scan order of the scalar gathers, which is what keeps
// the sparse path inside the kernel equivalence contract.
#pragma once

#include <bit>
#include <cstdint>

namespace axsnn::kernels {

/// Number of 64-bit words covering `n` elements.
inline long SpikeWordCount(long n) { return (n + 63) / 64; }

/// Packs the nonzero mask of x[0..n) into words[0..SpikeWordCount(n)),
/// zero-filling the tail bits of the last word. Returns the nonzero count
/// (the popcount of the packed words). Overloads share one definition in
/// spike_words.cpp; "nonzero" means != 0 under the element type's equality
/// (so float -0.0 packs as zero, matching Density and the scalar gathers).
long PackSpikeWords(const float* x, long n, std::uint64_t* words);
long PackSpikeWords(const std::int32_t* x, long n, std::uint64_t* words);
long PackSpikeWords(const std::int8_t* x, long n, std::uint64_t* words);

/// Total set bits in words[0..n_words).
long CountSpikeWords(const std::uint64_t* words, long n_words);

/// Calls fn(i) for every set bit in words[0..n_words), i the element index
/// (word * 64 + bit), ascending. The ctz/clear-lowest-bit loop the sparse
/// gathers run per sample.
template <typename Fn>
inline void ForEachSetBit(const std::uint64_t* words, long n_words, Fn&& fn) {
  for (long w = 0; w < n_words; ++w) {
    std::uint64_t word = words[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      fn(w * 64 + bit);
      word &= word - 1;  // clear lowest set bit
    }
  }
}

}  // namespace axsnn::kernels
