#include "serve/request.hpp"

namespace axsnn::serve {

void InferRequest::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return state_ != State::kPending; });
}

bool InferRequest::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_ == State::kDone || state_ == State::kFailed;
}

bool InferRequest::ok() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_ == State::kDone;
}

void InferRequest::RethrowIfFailed() const {
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != State::kFailed) return;
    error = error_;
  }
  std::rethrow_exception(error);
}

void InferRequest::MarkPending() {
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = State::kPending;
  error_ = nullptr;
  model_epoch_ = 0;
}

// Complete/Fail notify while STILL HOLDING the latch mutex. The usual
// "unlock before notify" optimization is a lifetime bug here: the waiter
// owns the request and may destroy it the instant Wait() returns, and an
// unlocked notify_all could then touch a destroyed condition variable.
// Notifying under the lock sequences the cv access strictly before the
// waiter can re-acquire the mutex, observe the state, and return.

void InferRequest::Complete(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = State::kDone;
  model_epoch_ = epoch;
  cv_.notify_all();
}

void InferRequest::Fail(std::exception_ptr error, std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = State::kFailed;
  error_ = std::move(error);
  model_epoch_ = epoch;
  cv_.notify_all();
}

}  // namespace axsnn::serve
