// Reusable single-sample inference request for the serving front end.
//
// An InferRequest is the unit the batched server coalesces: one time-major
// frame stack in, one logits row out, with a tiny completion latch the
// submitting thread can block on. The object is designed for reuse — the
// input and output tensors never shrink their storage, and Wait/Submit
// perform no heap allocation — so a client that keeps a small pool of
// requests serves unlimited traffic at the library's steady-state
// zero-allocation property (DESIGN.md "Serving front end").
//
// Lifecycle: fill `frames`, Submit to an InferenceServer (which owns the
// request by pointer until completion), Wait, read `logits` or the error,
// then reuse. A request must stay alive and unmoved while pending.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>

#include "tensor/tensor.hpp"

namespace axsnn::serve {

class InferenceServer;

/// One in-flight single-sample inference.
class InferRequest {
 public:
  InferRequest() = default;

  // Neither copyable nor movable: the server holds a raw pointer to a
  // pending request, so its address must be stable.
  InferRequest(const InferRequest&) = delete;
  InferRequest& operator=(const InferRequest&) = delete;

  /// Input: one time-major frame stack [T, <sample dims...>] — for the
  /// static net [T, C, H, W]. Values may be spikes (0/1) or analog currents
  /// (direct encoding); the server feeds them to the model verbatim.
  Tensor frames;

  /// Output: the served logits [K]. Valid after Wait() when ok(). Storage
  /// is reused across submissions (never shrinks).
  Tensor logits;

  /// Epoch of the model snapshot that served this request (1 = the model
  /// the server was constructed with; each SwapModel increments it).
  std::uint64_t model_epoch() const { return model_epoch_; }

  /// Blocks until the request completes or fails. No-op when not pending.
  void Wait();

  /// True once the server has finished with the request (success or
  /// failure); a freshly constructed or re-submitted request is not done.
  bool done() const;

  /// True when the request completed successfully (implies done()).
  bool ok() const;

  /// Rethrows the server-side failure, if any. No-op when ok().
  void RethrowIfFailed() const;

 private:
  friend class InferenceServer;

  enum class State : std::uint8_t { kIdle, kPending, kDone, kFailed };

  /// Server-side transitions (request mutex only; never called while the
  /// server queue mutex order could invert — see server.cpp).
  void MarkPending();
  void Complete(std::uint64_t epoch);
  void Fail(std::exception_ptr error, std::uint64_t epoch);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  State state_ = State::kIdle;
  std::uint64_t model_epoch_ = 0;
  std::exception_ptr error_;
};

}  // namespace axsnn::serve
