#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "tensor/check.hpp"
#include "tensor/random.hpp"

namespace axsnn::serve {

// Lock order: server mutex_ -> request mutex (Submit marks the request
// pending while holding mutex_). Workers complete requests with NO server
// lock held, so the reverse order never occurs.

InferenceServer::InferenceServer(const snn::Network& model,
                                 ServerOptions options)
    : options_(options) {
  AXSNN_CHECK(options_.workers >= 1,
              "InferenceServer needs >= 1 worker, got " << options_.workers);
  AXSNN_CHECK(options_.max_batch >= 1,
              "max_batch must be >= 1, got " << options_.max_batch);
  AXSNN_CHECK(options_.queue_capacity >= 1, "queue_capacity must be >= 1");
  snapshot_ = std::make_shared<const Snapshot>(Snapshot{model.Clone(), 1});
  ring_.assign(options_.queue_capacity, nullptr);
  worker_states_.reserve(static_cast<std::size_t>(options_.workers));
  threads_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    auto state = std::make_unique<WorkerState>();
    state->pending.reserve(static_cast<std::size_t>(options_.max_batch));
    worker_states_.push_back(std::move(state));
  }
  // Start the threads only after every WorkerState exists: worker_states_
  // must not reallocate under a running thread's feet.
  for (auto& state : worker_states_)
    threads_.emplace_back([this, s = state.get()] { WorkerLoop(*s); });
}

InferenceServer::~InferenceServer() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  // Workers keep popping until the queue is empty (CollectBatch returns 0
  // only once stopping AND drained), so every admitted request completes.
  for (auto& thread : threads_) thread.join();
}

void InferenceServer::Submit(InferRequest& req) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock, [&] { return size_ < ring_.size() || stopping_; });
  AXSNN_CHECK(!stopping_, "Submit on a stopping InferenceServer");
  req.MarkPending();
  ring_[(head_ + size_) % ring_.size()] = &req;
  ++size_;
  ++stats_.submitted;
  lock.unlock();
  not_empty_.notify_one();
}

bool InferenceServer::TrySubmit(InferRequest& req) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_ || size_ >= ring_.size()) {
    ++stats_.rejected;
    return false;
  }
  req.MarkPending();
  ring_[(head_ + size_) % ring_.size()] = &req;
  ++size_;
  ++stats_.submitted;
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

void InferenceServer::SwapModel(const snn::Network& model) {
  // Clone BEFORE bumping visibility: the new snapshot must be fully built
  // when workers can first observe its epoch.
  const std::uint64_t epoch =
      epoch_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::shared_ptr<const Snapshot> fresh =
      std::make_shared<const Snapshot>(Snapshot{model.Clone(), epoch});
  std::shared_ptr<const Snapshot> retired;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    retired = std::exchange(snapshot_, std::move(fresh));
  }
  // `retired` dies here, outside the lock; workers mid-batch keep their own
  // reference so the old weights outlive any forward that started on them.
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.model_swaps;
}

std::uint64_t InferenceServer::model_epoch() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_->epoch;
}

void InferenceServer::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [&] { return size_ == 0 && in_flight_ == 0; });
}

ServerStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

long InferenceServer::CollectBatch(WorkerState& state) {
  state.pending.clear();
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [&] { return size_ > 0 || stopping_; });
  if (size_ == 0) return 0;  // stopping and fully drained
  const auto pop = [&] {
    state.pending.push_back(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --size_;
  };
  pop();
  // Adaptive coalescing: drain any backlog immediately; once the queue runs
  // empty, wait (up to max_delay past the first pop) for more arrivals. A
  // loaded server therefore batches at full depth with zero added latency,
  // an idle one serves after at most max_delay.
  const auto deadline = std::chrono::steady_clock::now() + options_.max_delay;
  while (static_cast<long>(state.pending.size()) < options_.max_batch) {
    if (size_ > 0) {
      pop();
      continue;
    }
    if (stopping_ || options_.max_delay.count() <= 0) break;
    if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout)
      break;
  }
  const long count = static_cast<long>(state.pending.size());
  in_flight_ += count;
  lock.unlock();
  not_full_.notify_all();
  return count;
}

void InferenceServer::WorkerLoop(WorkerState& state) {
  for (;;) {
    const long n = CollectBatch(state);
    if (n == 0) return;

    // Hot-swap pickup at the batch boundary: re-clone when the published
    // snapshot's epoch moved. The shared_ptr keeps the snapshot alive for
    // the Clone even if another SwapModel lands concurrently.
    std::shared_ptr<const Snapshot> snap;
    {
      std::lock_guard<std::mutex> snap_lock(snapshot_mutex_);
      snap = snapshot_;
    }
    if (state.epoch != snap->epoch) {
      state.net = snap->net.Clone();
      state.epoch = snap->epoch;
    }

    // Serve maximal runs of same-shaped requests together; a shape change
    // splits the micro-batch but preserves submission order.
    long groups = 0;
    long completed = 0;
    long start = 0;
    while (start < n) {
      const Shape& shape = state.pending[static_cast<std::size_t>(start)]
                               ->frames.shape();
      long end = start + 1;
      while (end < n &&
             state.pending[static_cast<std::size_t>(end)]->frames.shape() ==
                 shape)
        ++end;
      completed += ServeGroup(state, state.pending.data() + start, end - start,
                              &groups);
      start = end;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    in_flight_ -= n;
    stats_.batches += static_cast<std::uint64_t>(groups);
    stats_.batched_samples += static_cast<std::uint64_t>(n);
    stats_.completed += static_cast<std::uint64_t>(completed);
    stats_.failed += static_cast<std::uint64_t>(n - completed);
    if (size_ == 0 && in_flight_ == 0) idle_.notify_all();
  }
}

long InferenceServer::ServeGroup(WorkerState& state,
                                 InferRequest* const* requests, long count,
                                 long* groups) {
  try {
    const Tensor& first = requests[0]->frames;
    AXSNN_CHECK(first.rank() >= 2 && first.numel() > 0,
                "InferRequest.frames must be a non-empty time-major "
                "[T, <sample dims...>] stack, got shape "
                    << ShapeToString(first.shape()));
    const long t_steps = first.dim(0);
    const long rest = first.numel() / t_steps;

    // Pack [T, count, <sample dims>]: sample i's frame t lands at batch row
    // i of time slice t. The shape vector is reused (no allocation once
    // capacity exists), as is the workspace slot.
    Shape& in_shape = state.input_shape;
    in_shape.resize(first.rank() + 1);
    in_shape[0] = t_steps;
    in_shape[1] = count;
    for (std::size_t d = 1; d < first.rank(); ++d)
      in_shape[d + 1] = first.dim(d);
    Tensor& input = state.ws.Acquire(0, in_shape);
    float* dst = input.data();
    for (long i = 0; i < count; ++i) {
      const float* src = requests[i]->frames.data();
      for (long t = 0; t < t_steps; ++t)
        std::copy(src + t * rest, src + (t + 1) * rest,
                  dst + (t * count + i) * rest);
    }

    const Tensor& seq = state.net.ForwardShared(input, /*train=*/false);

    // Per-sample readout replicating ReadoutMean's accumulation order
    // (zero, += per time step, scale once) so the batched result is
    // bit-identical to serving each request alone.
    const long k = seq.dim(2);
    const float inv = 1.0f / static_cast<float>(t_steps);
    for (long i = 0; i < count; ++i) {
      Tensor& logits = requests[i]->logits;
      if (logits.rank() != 1 || logits.dim(0) != k) logits.ResizeTo({k});
      float* out = logits.data();
      for (long j = 0; j < k; ++j) out[j] = 0.0f;
      for (long t = 0; t < t_steps; ++t) {
        const float* row = seq.data() + (t * count + i) * k;
        for (long j = 0; j < k; ++j) out[j] += row[j];
      }
      for (long j = 0; j < k; ++j) out[j] *= inv;
    }

    ++*groups;
    for (long i = 0; i < count; ++i) requests[i]->Complete(state.epoch);
    return count;
  } catch (...) {
    // A malformed request (or a model/input mismatch) fails its whole
    // same-shape group but never the server: every request still gets a
    // completion, carrying the error.
    const std::exception_ptr error = std::current_exception();
    for (long i = 0; i < count; ++i) requests[i]->Fail(error, state.epoch);
    return 0;
  }
}

void EncodeStaticRequest(InferRequest& req, const Tensor& image,
                         long time_steps, snn::Encoding mode,
                         std::uint64_t seed) {
  AXSNN_CHECK(image.rank() == 3,
              "EncodeStaticRequest expects one image [C, H, W], got "
                  << ShapeToString(image.shape()));
  const long c = image.dim(0);
  const long h = image.dim(1);
  const long w = image.dim(2);
  // Stage the image as a batch of one; the encoder APIs are batch-shaped.
  // thread_local so repeated encodes on one thread reuse the staging block.
  thread_local Tensor staging;
  thread_local Shape staging_shape;
  staging_shape.resize(4);
  staging_shape[0] = 1;
  staging_shape[1] = c;
  staging_shape[2] = h;
  staging_shape[3] = w;
  staging.ResizeTo(staging_shape);
  std::copy(image.data(), image.data() + image.numel(), staging.data());
  // Per-request Rng: the spike draw depends only on (image, seed), never on
  // how the server later batches the request.
  Rng rng(seed);
  snn::EncodeInto(staging, time_steps, mode, rng, req.frames);
  req.frames.Reshape({time_steps, c, h, w});  // drop the size-1 batch axis
}

}  // namespace axsnn::serve
