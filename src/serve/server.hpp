// Batched serving front end: multi-producer request queue -> adaptive
// micro-batcher -> batched forward -> per-request completion.
//
// Architecture (DESIGN.md "Serving front end" has the full protocol):
//  * Producers Submit() InferRequests into a bounded ring (multi-producer,
//    blocking; TrySubmit is the non-blocking admission-control variant).
//  * A fixed set of serving workers pops requests and coalesces them into
//    micro-batches: a worker drains any backlog immediately up to
//    max_batch, and only when the queue runs empty does it wait up to
//    max_delay for more arrivals — so a loaded server never trades latency
//    for batching it already has, and an idle one pays at most max_delay.
//  * Each worker owns a private clone of the model (Network workspaces are
//    single-threaded by contract) plus a packing Workspace; a batch of N
//    same-shaped requests is packed into one time-major [T, N, ...] tensor
//    and served by ONE ForwardShared call, so the batch dimension flows
//    through the im2col/GEMM/SIMD kernel tiles. Requests whose sample
//    shape differs are served as separate sub-batches, in order.
//  * Determinism contract: a batch-of-N result is bit-identical to N
//    sequential single-sample forwards at every kernel mode and pool size —
//    every kernel treats samples independently and the readout accumulates
//    per sample in ReadoutMean order (pinned by tests/test_serve.cpp and
//    the bench_serving CI smoke leg).
//  * Model hot-swap: the served weights live in an immutable snapshot
//    behind a mutex-guarded shared_ptr. SwapModel
//    publishes a new snapshot with a bumped epoch; workers notice the epoch
//    change at their next batch boundary and re-clone. In-flight batches
//    finish on the epoch they started with — no torn reads, no dropped
//    responses; each request records the epoch that served it.
//  * Steady state performs no heap allocation: the ring is pre-sized,
//    batches pack into never-shrinking workspace tensors, request latches
//    reuse their storage. Allocations happen only on first use of a new
//    shape/batch size and when a swap makes a worker re-clone.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/workspace.hpp"
#include "serve/request.hpp"
#include "snn/encoding.hpp"
#include "snn/network.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::serve {

/// Serving configuration, fixed at server construction.
struct ServerOptions {
  /// Serving worker threads. Each owns a model clone; kernel-level
  /// parallelism inside one forward still fans out on the global pool, so
  /// 1-2 workers already saturate a machine on batched traffic.
  int workers = 1;
  /// Micro-batch size cap (requests coalesced into one forward).
  long max_batch = 8;
  /// How long an idle worker waits for more arrivals before serving a
  /// partial batch. 0 disables coalescing waits entirely (serve greedily).
  std::chrono::microseconds max_delay{100};
  /// Bounded request-queue capacity; Submit blocks (TrySubmit refuses)
  /// when full — the server's admission control.
  std::size_t queue_capacity = 1024;
};

/// Monotonic serving counters (snapshot via InferenceServer::stats).
struct ServerStats {
  std::uint64_t submitted = 0;        ///< requests admitted into the queue
  std::uint64_t completed = 0;        ///< requests served successfully
  std::uint64_t failed = 0;           ///< requests completed with an error
  std::uint64_t rejected = 0;         ///< TrySubmit refusals (queue full)
  std::uint64_t batches = 0;          ///< forward calls issued
  std::uint64_t batched_samples = 0;  ///< sum of forward batch sizes
  std::uint64_t model_swaps = 0;      ///< SwapModel calls
  double mean_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_samples) /
                              static_cast<double>(batches);
  }
};

/// Multi-producer batched inference server over one spiking network.
class InferenceServer {
 public:
  /// Snapshots `model` (deep clone) as epoch 1 and starts the workers.
  explicit InferenceServer(const snn::Network& model,
                           ServerOptions options = {});

  /// Drains every admitted request (zero dropped responses), then joins the
  /// workers. Must not race with concurrent Submit callers.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues `req` (which must outlive its completion and not be touched
  /// until done). Blocks while the queue is full; throws on a stopped
  /// server. Multi-producer safe.
  void Submit(InferRequest& req);

  /// Non-blocking Submit: returns false (and counts a rejection) when the
  /// queue is full or the server is stopping. The request is untouched on
  /// refusal and may be resubmitted.
  bool TrySubmit(InferRequest& req);

  /// Atomically publishes `model` (deep clone) as the new serving snapshot.
  /// Requests already being served finish on their old epoch; later batches
  /// pick the new one up at their next batch boundary. Safe under live
  /// traffic from any thread.
  void SwapModel(const snn::Network& model);

  /// Epoch of the currently published snapshot (1 = construction model).
  std::uint64_t model_epoch() const;

  /// Blocks until the queue is empty and no request is being served.
  void Drain();

  /// Counters land when a request's whole batch retires, which can be just
  /// after the request's own Wait() returns — Drain() first for an exact
  /// read over completed traffic.
  ServerStats stats() const;

  const ServerOptions& options() const { return options_; }

 private:
  /// Immutable served model + its epoch. Workers read the Network only to
  /// Clone() it (const), so one snapshot is safely shared by all workers.
  struct Snapshot {
    snn::Network net;
    std::uint64_t epoch;
  };

  /// Per-worker private state (each worker thread owns exactly one).
  struct WorkerState {
    snn::Network net;                     ///< private clone of the snapshot
    std::uint64_t epoch = 0;              ///< epoch `net` was cloned from
    runtime::Workspace ws;                ///< batch packing / readout arenas
    std::vector<InferRequest*> pending;   ///< coalesced batch (reused)
    Shape input_shape;                    ///< reused [T, B, ...] shape staging
  };

  void WorkerLoop(WorkerState& state);
  /// Pops one adaptive micro-batch into state.pending; returns its size
  /// (0 = stopping and fully drained).
  long CollectBatch(WorkerState& state);
  /// Serves `count` same-shaped requests with one batched forward; returns
  /// the number that completed successfully.
  long ServeGroup(WorkerState& state, InferRequest* const* requests,
                  long count, long* groups);

  ServerOptions options_;
  /// Published model snapshot. Guarded by its own mutex rather than
  /// std::atomic<std::shared_ptr> — libstdc++'s _Sp_atomic spin-bit
  /// protocol is opaque to ThreadSanitizer, and workers only reload once
  /// per batch, so the lock is off every hot path. SwapModel replaces the
  /// pointer under the lock; the old snapshot is retired by refcount when
  /// the last in-flight batch releases it.
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Snapshot> snapshot_;
  std::atomic<std::uint64_t> epoch_counter_{1};

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable idle_;
  std::vector<InferRequest*> ring_;  // fixed capacity, index arithmetic
  std::size_t head_ = 0;             // oldest pending request
  std::size_t size_ = 0;             // pending requests in the ring
  long in_flight_ = 0;               // popped but not yet completed
  bool stopping_ = false;
  ServerStats stats_;

  std::vector<std::unique_ptr<WorkerState>> worker_states_;
  std::vector<std::thread> threads_;
};

/// Encodes one static image [C, H, W] into `req.frames` [T, C, H, W] with a
/// per-request Rng(seed). Encoding a request independently of how it is
/// later batched is what extends the serving determinism contract to
/// stochastic (rate) encodings: the spike draw depends only on (image,
/// seed), never on batch composition. Reuses req.frames storage.
void EncodeStaticRequest(InferRequest& req, const Tensor& image,
                         long time_steps, snn::Encoding mode,
                         std::uint64_t seed);

}  // namespace axsnn::serve
