#include "runtime/workspace.hpp"

namespace axsnn::runtime {

Tensor& Workspace::Slot(std::size_t index) {
  while (slots_.size() <= index) slots_.emplace_back();
  return slots_[index];
}

Tensor& Workspace::Acquire(std::size_t index, const Shape& shape) {
  Tensor& t = Slot(index);
  t.ResizeTo(shape);
  return t;
}

Tensor& Workspace::Acquire(std::size_t index, long size) {
  Tensor& t = Slot(index);
  // Skip ResizeTo when the slot already matches: constructing the
  // temporary Shape would heap-allocate, and the kernel dispatchers call
  // this on every forward pass (one slot per layer would otherwise cost
  // one allocation per pass in steady state).
  if (t.rank() != 1 || t.dim(0) != size) t.ResizeTo({size});
  return t;
}

AlignedVector<std::int32_t>& Workspace::AcquireI32(std::size_t index,
                                                   std::size_t size) {
  while (i32_slots_.size() <= index) i32_slots_.emplace_back();
  AlignedVector<std::int32_t>& v = i32_slots_[index];
  v.resize(size);  // never shrinks capacity: allocation-free once warm
  return v;
}

AlignedVector<std::int8_t>& Workspace::AcquireI8(std::size_t index,
                                                 std::size_t size) {
  while (i8_slots_.size() <= index) i8_slots_.emplace_back();
  AlignedVector<std::int8_t>& v = i8_slots_[index];
  v.resize(size);
  return v;
}

AlignedVector<std::uint64_t>& Workspace::AcquireU64(std::size_t index,
                                                    std::size_t size) {
  while (u64_slots_.size() <= index) u64_slots_.emplace_back();
  AlignedVector<std::uint64_t>& v = u64_slots_[index];
  v.resize(size);
  return v;
}

}  // namespace axsnn::runtime
