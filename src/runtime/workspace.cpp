#include "runtime/workspace.hpp"

namespace axsnn::runtime {

Tensor& Workspace::Slot(std::size_t index) {
  while (slots_.size() <= index) slots_.emplace_back();
  return slots_[index];
}

Tensor& Workspace::Acquire(std::size_t index, const Shape& shape) {
  Tensor& t = Slot(index);
  t.ResizeTo(shape);
  return t;
}

}  // namespace axsnn::runtime
