// Reusable tensor arena for allocation-free steady-state execution.
//
// A Workspace owns a set of scratch tensors addressed by stable slot index.
// Acquire(slot, shape) resizes the slot's tensor to `shape` without
// shrinking its capacity, so after the first pass over a given problem size
// every subsequent pass reuses the same heap blocks — Network::ForwardShared
// ping-pongs activations between two slots, the inference helpers stage
// batches/encodings in further slots, and the kernel dispatch engine
// (src/kernels/) keeps its im2col packing buffers, nonzero gather lists and
// int8 code/accumulator scratch in the typed arenas (AcquireI32/AcquireI8).
//
// Ownership rules (see DESIGN.md "Runtime subsystem"):
//  * A Workspace belongs to exactly one execution context (one Network, one
//    inference loop); it is not thread-safe and must not be shared across
//    concurrent sweep cells — clone the Network instead, which brings a
//    fresh Workspace.
//  * References returned by Acquire/Slot stay valid for the Workspace's
//    lifetime (slots live in a deque), but their *contents* are overwritten
//    by the next pass; callers that need to keep a result must copy it out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "runtime/aligned.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::runtime {

/// Indexed arena of reusable scratch tensors.
class Workspace {
 public:
  Workspace() = default;

  // Movable (a Network owns one); copying a scratch arena is never wanted.
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Returns slot `index` resized to `shape`. Contents are unspecified (the
  /// caller is expected to overwrite them fully). Never shrinks capacity, so
  /// steady-state reuse performs no heap allocation.
  Tensor& Acquire(std::size_t index, const Shape& shape);

  /// Returns slot `index` as-is, creating it empty when absent.
  Tensor& Slot(std::size_t index);

  /// 1-D variant of Acquire that avoids constructing a temporary Shape
  /// (and its heap allocation) when the slot already holds `size` elements
  /// — the kernel dispatchers call this every forward pass.
  Tensor& Acquire(std::size_t index, long size);

  /// Integer scratch arenas with the same contract as Acquire: resized to
  /// `size` elements without shrinking capacity, contents unspecified. The
  /// kernel subsystem stages activation codes, accumulator planes and
  /// nonzero gather lists here; slot indices are independent of the float
  /// slots (see kernels::slots for the shared map). Storage is 64-byte
  /// aligned (runtime/aligned.hpp) so SIMD loads never split cache lines.
  AlignedVector<std::int32_t>& AcquireI32(std::size_t index, std::size_t size);
  AlignedVector<std::int8_t>& AcquireI8(std::size_t index, std::size_t size);

  /// Bit-packed spike-word arena (64 events per word — see
  /// kernels/spike_words.hpp). Same contract and alignment as the other
  /// typed arenas.
  AlignedVector<std::uint64_t>& AcquireU64(std::size_t index,
                                           std::size_t size);

  /// Number of materialized float slots.
  std::size_t slot_count() const { return slots_.size(); }

  /// Releases all slot storage (capacity included), typed arenas too.
  void Clear() {
    slots_.clear();
    i32_slots_.clear();
    i8_slots_.clear();
    u64_slots_.clear();
  }

 private:
  std::deque<Tensor> slots_;  // deque: references stay valid as slots grow
  std::deque<AlignedVector<std::int32_t>> i32_slots_;
  std::deque<AlignedVector<std::int8_t>> i8_slots_;
  std::deque<AlignedVector<std::uint64_t>> u64_slots_;
};

/// Workspace holder for layers that own per-layer kernel scratch but must
/// stay copyable (Layer::Clone copy-constructs the layer): copying yields a
/// fresh empty workspace — scratch contents are never meaningful across
/// copies, and a clone must not share buffers with its source.
class LocalScratch {
 public:
  LocalScratch() = default;
  LocalScratch(LocalScratch&&) = default;
  LocalScratch& operator=(LocalScratch&&) = default;
  LocalScratch(const LocalScratch& /*other*/) {}  // copy = fresh scratch
  LocalScratch& operator=(const LocalScratch& /*other*/) { return *this; }

  Workspace& operator*() { return ws_; }
  Workspace* operator->() { return &ws_; }

 private:
  Workspace ws_;
};

}  // namespace axsnn::runtime
