// Reusable tensor arena for allocation-free steady-state execution.
//
// A Workspace owns a set of scratch tensors addressed by stable slot index.
// Acquire(slot, shape) resizes the slot's tensor to `shape` without
// shrinking its capacity, so after the first pass over a given problem size
// every subsequent pass reuses the same heap blocks — Network::ForwardShared
// ping-pongs activations between two slots, and the inference helpers stage
// batches/encodings in further slots.
//
// Ownership rules (see DESIGN.md "Runtime subsystem"):
//  * A Workspace belongs to exactly one execution context (one Network, one
//    inference loop); it is not thread-safe and must not be shared across
//    concurrent sweep cells — clone the Network instead, which brings a
//    fresh Workspace.
//  * References returned by Acquire/Slot stay valid for the Workspace's
//    lifetime (slots live in a deque), but their *contents* are overwritten
//    by the next pass; callers that need to keep a result must copy it out.
#pragma once

#include <cstddef>
#include <deque>

#include "tensor/tensor.hpp"

namespace axsnn::runtime {

/// Indexed arena of reusable scratch tensors.
class Workspace {
 public:
  Workspace() = default;

  // Movable (a Network owns one); copying a scratch arena is never wanted.
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Returns slot `index` resized to `shape`. Contents are unspecified (the
  /// caller is expected to overwrite them fully). Never shrinks capacity, so
  /// steady-state reuse performs no heap allocation.
  Tensor& Acquire(std::size_t index, const Shape& shape);

  /// Returns slot `index` as-is, creating it empty when absent.
  Tensor& Slot(std::size_t index);

  /// Number of materialized slots.
  std::size_t slot_count() const { return slots_.size(); }

  /// Releases all slot storage (capacity included).
  void Clear() { slots_.clear(); }

 private:
  std::deque<Tensor> slots_;  // deque: references stay valid as slots grow
};

}  // namespace axsnn::runtime
