// Deterministic data-parallel loop primitives on top of runtime::ThreadPool.
//
// Determinism contract: the iteration range [begin, end) is split into fixed
// chunks whose boundaries depend only on the range size (and an optional
// explicit grain) — never on the thread count. Chunks are claimed by worker
// threads dynamically, but because each chunk's writes are disjoint (caller
// obligation) and reductions combine per-chunk partials sequentially in
// chunk order, results are bit-identical for any pool size, including 1.
//
// This replaces the seed repo's scattered OpenMP directives: parallelism is
// now guaranteed by the build (no compiler flag to forget) and thread-count
// independence is a testable property instead of a hope.
#pragma once

#include <algorithm>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace axsnn::runtime {

/// Upper bound on the number of chunks a default-grained loop produces.
/// Fixed (not derived from the thread count) so chunk boundaries — and thus
/// reduction orders — are identical on every machine and pool size.
inline constexpr long kMaxChunks = 64;

/// Chunk size for an n-iteration loop when the caller does not pick one:
/// the smallest grain that keeps the chunk count at or below kMaxChunks.
inline long DefaultGrain(long n) {
  return std::max<long>(1, (n + kMaxChunks - 1) / kMaxChunks);
}

/// Number of chunks a loop over n iterations with grain g produces.
inline long NumChunks(long n, long grain) {
  return n <= 0 ? 0 : (n + grain - 1) / grain;
}

/// Runs body(chunk_index, lo, hi) for every fixed chunk [lo, hi) of
/// [begin, end). `grain` <= 0 selects DefaultGrain. Blocks until done;
/// nested calls from inside pool work execute inline.
template <typename Body>
void ParallelForChunks(long begin, long end, Body&& body, long grain = 0,
                       ThreadPool* pool = nullptr) {
  const long n = end - begin;
  if (n <= 0) return;
  const long g = grain > 0 ? grain : DefaultGrain(n);
  const long chunks = NumChunks(n, g);
  auto task = [&](long c) {
    const long lo = begin + c * g;
    body(c, lo, std::min(end, lo + g));
  };
  if (pool != nullptr) {
    pool->Run(chunks, FunctionRef<void(long)>(task));
  } else {
    // Hold the shared_ptr for the whole Run: a concurrent SetGlobalThreads
    // then retires the pool instead of destroying it under our feet.
    GlobalPool()->Run(chunks, FunctionRef<void(long)>(task));
  }
}

/// Runs body(i) for every i in [begin, end), parallelized over fixed chunks.
/// The canonical replacement for an OpenMP parallel-for directive.
template <typename Body>
void ParallelFor(long begin, long end, Body&& body, long grain = 0,
                 ThreadPool* pool = nullptr) {
  ParallelForChunks(
      begin, end,
      [&](long /*chunk*/, long lo, long hi) {
        for (long i = lo; i < hi; ++i) body(i);
      },
      grain, pool);
}

/// Deterministic parallel sum: chunk_sum(lo, hi) returns the partial sum of
/// one fixed chunk; partials are combined sequentially in chunk order, so
/// the floating-point result is bit-identical at any thread count (and equal
/// to the serial left-to-right accumulation when chunk_sum accumulates
/// left-to-right).
template <typename ChunkSum>
double ParallelSum(long begin, long end, ChunkSum&& chunk_sum, long grain = 0,
                   ThreadPool* pool = nullptr) {
  const long n = end - begin;
  if (n <= 0) return 0.0;
  const long g = grain > 0 ? grain : DefaultGrain(n);
  std::vector<double> partials(static_cast<std::size_t>(NumChunks(n, g)));
  ParallelForChunks(
      begin, end,
      [&](long chunk, long lo, long hi) {
        partials[static_cast<std::size_t>(chunk)] = chunk_sum(lo, hi);
      },
      g, pool);
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

}  // namespace axsnn::runtime
