#include "runtime/thread_pool.hpp"

#include <cstdlib>

#include "tensor/check.hpp"

namespace axsnn::runtime {

namespace {

/// Set while the current thread is executing pool work; nested Run calls
/// observe it and degrade to inline execution.
thread_local bool tls_in_parallel_region = false;

/// RAII guard for tls_in_parallel_region.
struct RegionGuard {
  RegionGuard() : saved(tls_in_parallel_region) {
    tls_in_parallel_region = true;
  }
  ~RegionGuard() { tls_in_parallel_region = saved; }
  bool saved;
};

}  // namespace

struct ThreadPool::Batch {
  Batch(long n, FunctionRef<void(long)> t) : task(t), total(n), remaining(n) {}
  FunctionRef<void(long)> task;
  long total;
  std::atomic<long> next{0};
  std::atomic<long> remaining;
  std::mutex error_mutex;
  std::exception_ptr first_error;
};

bool ThreadPool::InParallelRegion() { return tls_in_parallel_region; }

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = DefaultThreadCount();
  thread_count_ = threads;
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::ProcessBatch(Batch& batch, std::mutex& state_mutex,
                              std::condition_variable& done_cv) {
  RegionGuard region;
  while (true) {
    const long i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.total) break;
    try {
      batch.task(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch.error_mutex);
      if (!batch.first_error) batch.first_error = std::current_exception();
    }
    if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task of the batch: wake the submitting thread. Taking the lock
      // (even empty) orders this notify after the waiter's predicate check.
      { std::lock_guard<std::mutex> lock(state_mutex); }
      done_cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t last_generation = 0;
  std::unique_lock<std::mutex> lock(state_mutex_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return stopping_ ||
             (current_ != nullptr && generation_ != last_generation);
    });
    if (stopping_) return;
    last_generation = generation_;
    Batch* batch = current_;
    ++active_workers_;  // Run cannot retire the batch until this drops to 0
    lock.unlock();
    ProcessBatch(*batch, state_mutex_, done_cv_);
    lock.lock();
    if (--active_workers_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::Run(long num_tasks, FunctionRef<void(long)> task) {
  if (num_tasks <= 0) return;
  if (!workers_.empty() && !tls_in_parallel_region && num_tasks > 1) {
    std::unique_lock<std::mutex> serial(run_mutex_, std::try_to_lock);
    if (serial.owns_lock()) {
      // The batch lives on this stack frame — dispatch performs no heap
      // allocation. Retirement below guarantees no worker still references
      // it when the frame unwinds.
      Batch batch(num_tasks, task);
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        current_ = &batch;
        ++generation_;
      }
      work_cv_.notify_all();
      ProcessBatch(batch, state_mutex_, done_cv_);  // caller works too
      {
        // Wait until the batch is drained AND every worker that entered it
        // has left ProcessBatch; only then is it safe to unpublish and let
        // the stack storage die. Workers can only enter while current_ is
        // published and they bump active_workers_ under this same mutex, so
        // no worker can slip in between the predicate holding and the
        // unpublish below.
        std::unique_lock<std::mutex> lock(state_mutex_);
        done_cv_.wait(lock, [&] {
          return active_workers_ == 0 &&
                 batch.remaining.load(std::memory_order_acquire) == 0;
        });
        current_ = nullptr;
      }
      if (batch.first_error) std::rethrow_exception(batch.first_error);
      return;
    }
    // Another thread owns the pool right now; stay deadlock-free by
    // degrading to inline execution.
  }
  RegionGuard region;
  for (long i = 0; i < num_tasks; ++i) task(i);
}

int DefaultThreadCount() {
  if (const char* env = std::getenv("AXSNN_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

// Lazy global-pool state: the atomic raw pointer serves the hot path
// lock-free; the mutex serializes creation/replacement so concurrent first
// calls from different threads cannot construct two pools.
std::atomic<ThreadPool*> g_global_pool{nullptr};
std::mutex g_global_pool_mutex;
std::unique_ptr<ThreadPool> g_global_pool_owner;

}  // namespace

ThreadPool& GlobalPool() {
  if (ThreadPool* pool = g_global_pool.load(std::memory_order_acquire))
    return *pool;
  std::lock_guard<std::mutex> lock(g_global_pool_mutex);
  if (!g_global_pool_owner) {
    g_global_pool_owner = std::make_unique<ThreadPool>(DefaultThreadCount());
    g_global_pool.store(g_global_pool_owner.get(), std::memory_order_release);
  }
  return *g_global_pool_owner;
}

void SetGlobalThreads(int threads) {
  AXSNN_CHECK(!ThreadPool::InParallelRegion(),
              "cannot resize the global pool from inside parallel work");
  std::unique_ptr<ThreadPool> fresh = std::make_unique<ThreadPool>(threads);
  std::lock_guard<std::mutex> lock(g_global_pool_mutex);
  g_global_pool.store(fresh.get(), std::memory_order_release);
  g_global_pool_owner = std::move(fresh);  // destroys the previous pool
}

}  // namespace axsnn::runtime
