#include "runtime/thread_pool.hpp"

#include <cerrno>
#include <cstdlib>
#include <utility>

#include "tensor/check.hpp"

namespace axsnn::runtime {

namespace {

/// Set while the current thread is executing pool work; nested Run calls
/// observe it and degrade to inline execution.
thread_local bool tls_in_parallel_region = false;

/// RAII guard for tls_in_parallel_region.
struct RegionGuard {
  RegionGuard() : saved(tls_in_parallel_region) {
    tls_in_parallel_region = true;
  }
  ~RegionGuard() { tls_in_parallel_region = saved; }
  bool saved;
};

}  // namespace

struct ThreadPool::Batch {
  Batch(long n, FunctionRef<void(long)> t) : task(t), total(n), remaining(n) {}
  FunctionRef<void(long)> task;
  long total;
  std::atomic<long> next{0};
  std::atomic<long> remaining;
  std::mutex error_mutex;
  std::exception_ptr first_error;
  // Queue linkage and retirement bookkeeping — all guarded by state_mutex_.
  Batch* next_queued = nullptr;
  bool linked = false;
  int active = 0;  // workers currently inside ProcessBatch for this batch
};

bool ThreadPool::InParallelRegion() { return tls_in_parallel_region; }

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = DefaultThreadCount();
  thread_count_ = threads;
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::ProcessBatch(Batch& batch, std::mutex& state_mutex,
                              std::condition_variable& done_cv) {
  RegionGuard region;
  while (true) {
    const long i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.total) break;
    try {
      batch.task(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch.error_mutex);
      if (!batch.first_error) batch.first_error = std::current_exception();
    }
    if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task of the batch: wake the submitting thread. Taking the lock
      // (even empty) orders this notify after the waiter's predicate check.
      { std::lock_guard<std::mutex> lock(state_mutex); }
      done_cv.notify_all();
    }
  }
}

void ThreadPool::UnlinkLocked(Batch* b) {
  if (!b->linked) return;
  Batch* prev = nullptr;
  Batch* cur = head_;
  while (cur != b) {
    prev = cur;
    cur = cur->next_queued;
  }
  (prev != nullptr ? prev->next_queued : head_) = b->next_queued;
  if (tail_ == b) tail_ = prev;
  b->next_queued = nullptr;
  b->linked = false;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  while (true) {
    work_cv_.wait(lock, [&] { return stopping_ || head_ != nullptr; });
    if (stopping_) return;
    Batch* batch = head_;
    if (batch->next.load(std::memory_order_relaxed) >= batch->total) {
      // Every task already claimed: retire from the queue so the next
      // pending batch (another producer's) becomes visible.
      UnlinkLocked(batch);
      continue;
    }
    ++batch->active;  // Run cannot retire the batch until this drops to 0
    lock.unlock();
    ProcessBatch(*batch, state_mutex_, done_cv_);
    lock.lock();
    --batch->active;
    if (batch->next.load(std::memory_order_relaxed) >= batch->total)
      UnlinkLocked(batch);
    if (batch->active == 0) done_cv_.notify_all();
  }
}

void ThreadPool::Run(long num_tasks, FunctionRef<void(long)> task) {
  if (num_tasks <= 0) return;
  if (workers_.empty() || tls_in_parallel_region || num_tasks == 1) {
    // Pool of one, nested submission, or nothing to fan out: run inline.
    RegionGuard region;
    for (long i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  // The batch lives on this stack frame — dispatch performs no heap
  // allocation. Concurrent producers each append their own batch; workers
  // drain the queue FIFO while every producer works on its own batch, so a
  // second submitter never degrades to inline single-threaded execution.
  Batch batch(num_tasks, task);
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    batch.linked = true;
    if (tail_ != nullptr)
      tail_->next_queued = &batch;
    else
      head_ = &batch;
    tail_ = &batch;
  }
  work_cv_.notify_all();
  ProcessBatch(batch, state_mutex_, done_cv_);  // caller works too
  {
    // Wait until the batch is drained AND every worker that entered it has
    // left ProcessBatch, then unlink it; only then is it safe to let the
    // stack storage die. Workers can only enter while the batch is linked
    // and they bump batch.active under this same mutex, so no worker can
    // slip in between the predicate holding and the unlink below.
    std::unique_lock<std::mutex> lock(state_mutex_);
    done_cv_.wait(lock, [&] {
      return batch.active == 0 &&
             batch.remaining.load(std::memory_order_acquire) == 0;
    });
    UnlinkLocked(&batch);
  }
  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

std::optional<long> ParseLongStrict(const char* s) {
  if (s == nullptr || *s == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return std::nullopt;
  return value;
}

int DefaultThreadCount() {
  if (const char* env = std::getenv("AXSNN_THREADS")) {
    const std::optional<long> n = ParseLongStrict(env);
    AXSNN_CHECK(n.has_value() && *n > 0 && *n <= 65536,
                "AXSNN_THREADS must be a positive integer, got \"" << env
                    << "\"");
    return static_cast<int>(*n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

// Global-pool state: a mutex-guarded shared_ptr so acquisition is safe
// against a concurrent SetGlobalThreads — a replaced pool is epoch-retired
// by refcount and destroyed (joining its workers) only when the last holder
// releases it, never under a live Run. A plain mutex rather than
// std::atomic<std::shared_ptr> because libstdc++'s lock-free-ish _Sp_atomic
// spin-bit protocol is opaque to ThreadSanitizer (false data-race reports on
// the guarded pointer swap); acquisition is once per Run, so the mutex is
// not on any hot path. The same mutex serializes lazy creation so
// concurrent first calls cannot construct two pools.
std::shared_ptr<ThreadPool> g_global_pool;
std::mutex g_global_pool_mutex;

}  // namespace

std::shared_ptr<ThreadPool> GlobalPool() {
  std::lock_guard<std::mutex> lock(g_global_pool_mutex);
  if (!g_global_pool)
    g_global_pool = std::make_shared<ThreadPool>(DefaultThreadCount());
  return g_global_pool;
}

void SetGlobalThreads(int threads) {
  AXSNN_CHECK(!ThreadPool::InParallelRegion(),
              "cannot resize the global pool from inside parallel work");
  std::shared_ptr<ThreadPool> fresh = std::make_shared<ThreadPool>(threads);
  std::shared_ptr<ThreadPool> retired;
  {
    std::lock_guard<std::mutex> lock(g_global_pool_mutex);
    retired = std::exchange(g_global_pool, std::move(fresh));
  }
  // The previous pool is now unreachable for new acquisitions; threads that
  // already hold it finish their Run and release it, and the last release
  // destroys it (joining its workers) — possibly right here if no Run is in
  // flight, outside the lock. No quiesce barrier is needed.
}

}  // namespace axsnn::runtime
