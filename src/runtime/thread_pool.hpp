// Shared worker-thread pool — the execution engine behind every parallel
// loop in the library.
//
// Design notes:
//  * One process-global pool (GlobalPool) executes all kernel- and
//    scenario-level parallelism. Parallelism is guaranteed by the build —
//    there is no dependence on an OpenMP flag — and the pool size is a
//    runtime knob (AXSNN_THREADS / SetGlobalThreads), not a compile option.
//  * The calling thread participates in every Run, so a pool of size N uses
//    N-1 background workers and a pool of size 1 owns no threads at all and
//    executes inline — handy for debugging and for determinism tests.
//  * Nested submissions are throttled: a task that itself calls Run (e.g. a
//    sweep cell whose conv kernels use ParallelFor) executes the nested work
//    inline on its own thread. This keeps scenario-level fan-out from
//    oversubscribing the machine and makes re-entrant use deadlock-free.
//  * Determinism contract: Run(n, task) executes task(0..n-1) exactly once
//    each, on unspecified threads. Callers that need bit-identical results at
//    any thread count must make task bodies independent (disjoint writes) —
//    see runtime::ParallelFor, which adds fixed chunk partitioning on top.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace axsnn::runtime {

/// Non-owning reference to a callable — like std::function without the
/// allocation, for hot-path task dispatch. The referenced callable must
/// outlive the FunctionRef (always true here: ThreadPool::Run blocks).
template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

/// Fixed-size worker pool executing indexed task batches.
class ThreadPool {
 public:
  /// Creates a pool of `threads` (0 = DefaultThreadCount()). The calling
  /// thread counts as one, so `threads - 1` workers are spawned.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that can execute tasks concurrently (workers + the
  /// calling thread). Always >= 1.
  int thread_count() const { return thread_count_; }

  /// Runs task(i) for every i in [0, num_tasks), blocking until all have
  /// completed. The calling thread participates. The first exception thrown
  /// by a task is rethrown here after the batch drains. Re-entrant calls
  /// (from inside a task) execute inline on the current thread.
  void Run(long num_tasks, FunctionRef<void(long)> task);

  /// True while the current thread is executing a pool task (used to
  /// throttle nested parallelism).
  static bool InParallelRegion();

 private:
  /// Per-batch control block. Lives on the submitting thread's stack —
  /// Run is allocation-free. Lifetime is safe because workers only obtain
  /// the pointer under state_mutex_ while it is published (current_ !=
  /// nullptr), each entry bumps active_workers_, and Run does not retire
  /// the batch (or return) until active_workers_ == 0 with the batch
  /// drained. Batches are identified by a generation counter, not by
  /// address, so stack reuse across Run calls cannot confuse a worker.
  struct Batch;

  void WorkerLoop();
  static void ProcessBatch(Batch& batch,
                           std::mutex& state_mutex,
                           std::condition_variable& done_cv);

  int thread_count_ = 1;
  std::vector<std::thread> workers_;

  // Serializes whole batches: concurrent Run calls from distinct threads
  // fall back to inline execution instead of queueing.
  std::mutex run_mutex_;

  std::mutex state_mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stopping_ = false;
  Batch* current_ = nullptr;       // guarded by state_mutex_
  std::uint64_t generation_ = 0;   // bumped per published batch
  int active_workers_ = 0;         // workers inside the current batch
};

/// Returns the pool size the global pool is created with: the AXSNN_THREADS
/// environment variable when set and positive, else hardware concurrency.
int DefaultThreadCount();

/// The process-wide shared pool. Created on first use.
ThreadPool& GlobalPool();

/// Replaces the global pool with one of `threads` threads (0 = default).
/// Not thread-safe against concurrent GlobalPool users; call it from the
/// top of main / a test fixture, not from inside parallel work.
void SetGlobalThreads(int threads);

}  // namespace axsnn::runtime
