// Shared worker-thread pool — the execution engine behind every parallel
// loop in the library.
//
// Design notes:
//  * One process-global pool (GlobalPool) executes all kernel-, scenario-
//    and serving-level parallelism. Parallelism is guaranteed by the build —
//    there is no dependence on an OpenMP flag — and the pool size is a
//    runtime knob (AXSNN_THREADS / SetGlobalThreads), not a compile option.
//  * The calling thread participates in every Run, so a pool of size N uses
//    N-1 background workers and a pool of size 1 owns no threads at all and
//    executes inline — handy for debugging and for determinism tests.
//  * Run is multi-producer: concurrent submissions from distinct threads
//    (e.g. several serving workers each fanning a batched forward out) are
//    queued FIFO and drained by the shared workers, each submitter helping
//    with its own batch. No submitter ever degrades to single-threaded
//    execution just because another batch is in flight.
//  * Nested submissions are throttled: a task that itself calls Run (e.g. a
//    sweep cell whose conv kernels use ParallelFor) executes the nested work
//    inline on its own thread. This keeps scenario-level fan-out from
//    oversubscribing the machine and makes re-entrant use deadlock-free.
//  * Determinism contract: Run(n, task) executes task(0..n-1) exactly once
//    each, on unspecified threads. Callers that need bit-identical results at
//    any thread count must make task bodies independent (disjoint writes) —
//    see runtime::ParallelFor, which adds fixed chunk partitioning on top.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace axsnn::runtime {

/// Non-owning reference to a callable — like std::function without the
/// allocation, for hot-path task dispatch. The referenced callable must
/// outlive the FunctionRef (always true here: ThreadPool::Run blocks).
template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

/// Fixed-size worker pool executing indexed task batches.
class ThreadPool {
 public:
  /// Creates a pool of `threads` (0 = DefaultThreadCount()). The calling
  /// thread counts as one, so `threads - 1` workers are spawned.
  explicit ThreadPool(int threads = 0);

  /// Joins the workers. Must not race with a Run still in flight on another
  /// thread — the global pool guarantees this by refcounting (GlobalPool
  /// hands out shared_ptr owners; destruction waits for the last holder).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that can execute tasks concurrently (workers + the
  /// calling thread). Always >= 1.
  int thread_count() const { return thread_count_; }

  /// Runs task(i) for every i in [0, num_tasks), blocking until all have
  /// completed. The calling thread participates. The first exception thrown
  /// by a task is rethrown here after the batch drains. Re-entrant calls
  /// (from inside a task) execute inline on the current thread. Concurrent
  /// calls from distinct threads are queued FIFO and share the workers —
  /// every submitter observes pool parallelism.
  void Run(long num_tasks, FunctionRef<void(long)> task);

  /// True while the current thread is executing a pool task (used to
  /// throttle nested parallelism).
  static bool InParallelRegion();

 private:
  /// Per-batch control block. Lives on the submitting thread's stack —
  /// Run is allocation-free. Lifetime is safe because workers only obtain
  /// the pointer under state_mutex_ while the batch is linked into the
  /// queue, each entry bumps the batch's active count, and Run unlinks the
  /// batch (under the same mutex) only after every task has finished and
  /// every worker that entered it has left — so no worker can reference
  /// the stack frame after Run returns.
  struct Batch;

  void WorkerLoop();
  static void ProcessBatch(Batch& batch,
                           std::mutex& state_mutex,
                           std::condition_variable& done_cv);
  /// Removes `b` from the FIFO queue if still linked. Requires state_mutex_.
  void UnlinkLocked(Batch* b);

  int thread_count_ = 1;
  std::vector<std::thread> workers_;

  std::mutex state_mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stopping_ = false;
  // FIFO queue of published batches (stack nodes, intrusively linked).
  // Workers always claim from the head; a submitter works on its own batch.
  Batch* head_ = nullptr;  // guarded by state_mutex_
  Batch* tail_ = nullptr;  // guarded by state_mutex_
};

/// Full-string strtol: the complete string must be one base-10 integer
/// (optionally signed, leading whitespace allowed as per strtol). Returns
/// nullopt on empty input, trailing garbage ("4abc") or overflow — the
/// validation the AXSNN_THREADS / bench repeat-count knobs parse with.
std::optional<long> ParseLongStrict(const char* s);

/// Returns the pool size the global pool is created with: the AXSNN_THREADS
/// environment variable when set, else hardware concurrency. A set but
/// malformed or non-positive AXSNN_THREADS throws std::invalid_argument —
/// garbage ("4abc") is rejected, never silently truncated.
int DefaultThreadCount();

/// The process-wide shared pool, created on first use. Returned as a
/// shared_ptr so a caller mid-Run keeps its pool alive across a concurrent
/// SetGlobalThreads — the old pool is epoch-retired by refcount, destroyed
/// only when the last in-flight user releases it. Hold the returned pointer
/// for the duration of use; do not cache the raw reference.
std::shared_ptr<ThreadPool> GlobalPool();

/// Replaces the global pool with one of `threads` threads (0 = default).
/// Safe against concurrent GlobalPool()/Run users: they finish on the pool
/// they acquired (which stays alive until they release it) and pick up the
/// new pool on their next acquisition. Must not be called from inside pool
/// work (checked).
void SetGlobalThreads(int threads);

}  // namespace axsnn::runtime
