// Cache-line-aligned storage for the kernel hot paths.
//
// Every buffer the SIMD kernel tier (src/kernels/simd_kernels.*) loads from
// — activation codes, im2col panels, packed weight rows, spike words — is
// allocated through this allocator so 32-byte vector loads never split a
// cache line and the panel layouts can assume 64-byte starts. Tensor
// storage and the Workspace arenas (runtime/workspace.hpp) both use it, so
// alignment holds for slot 0 of every arena and for every Tensor::data().
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace axsnn::runtime {

/// Alignment of every arena / tensor allocation: one cache line, which also
/// covers the widest vector width the SIMD tier uses (32-byte AVX2).
inline constexpr std::size_t kArenaAlignment = 64;

/// Minimal std::allocator replacement handing out kArenaAlignment-aligned
/// blocks via the C++17 aligned operator new.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kArenaAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kArenaAlignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept { return true; }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept { return false; }
};

/// Vector whose storage always starts on a cache-line boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace axsnn::runtime
