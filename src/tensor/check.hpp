// Lightweight runtime-check utilities shared by every axsnn module.
//
// The library follows the C++ Core Guidelines error-handling philosophy:
// precondition violations on public interfaces throw std::invalid_argument /
// std::out_of_range with a message describing the violated contract, so a
// misuse is diagnosable rather than silently corrupting a simulation.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace axsnn {

namespace detail {

/// Builds the exception message "<what> (at <file>:<line>)".
inline std::string FormatCheckMessage(const char* expr, const std::string& msg,
                                      const char* file, int line) {
  std::ostringstream os;
  os << "axsnn check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  os << " (at " << file << ':' << line << ')';
  return os.str();
}

}  // namespace detail

}  // namespace axsnn

/// Throws std::invalid_argument when `cond` does not hold. `msg` may use
/// stream syntax, e.g. AXSNN_CHECK(i < n, "index " << i << " out of range").
#define AXSNN_CHECK(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream axsnn_check_os_;                                   \
      axsnn_check_os_ << msg;                                               \
      throw std::invalid_argument(::axsnn::detail::FormatCheckMessage(      \
          #cond, axsnn_check_os_.str(), __FILE__, __LINE__));               \
    }                                                                       \
  } while (false)
