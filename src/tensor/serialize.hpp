// Minimal binary (de)serialization for tensors and named tensor maps.
//
// Used to persist trained SNN weights between benchmark phases (Algorithm 1
// trains one accurate model per (Vth, T) cell and all precision-scaled
// variants re-start from the same checkpoint). The format is a tiny tagged
// little-endian container — stable across runs on the same platform, which is
// all a reproduction harness needs.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "tensor/tensor.hpp"

namespace axsnn {

/// Writes a single tensor: rank, dims, raw float payload.
void WriteTensor(std::ostream& os, const Tensor& t);

/// Reads a tensor written by WriteTensor. Throws std::runtime_error on a
/// malformed stream.
Tensor ReadTensor(std::istream& is);

/// Writes a name -> tensor map (e.g. a network state dict).
void WriteTensorMap(std::ostream& os, const std::map<std::string, Tensor>& m);

/// Reads a map written by WriteTensorMap.
std::map<std::string, Tensor> ReadTensorMap(std::istream& is);

/// File-based conveniences; throw std::runtime_error when the file cannot be
/// opened.
void SaveTensorMap(const std::string& path,
                   const std::map<std::string, Tensor>& m);
std::map<std::string, Tensor> LoadTensorMap(const std::string& path);

}  // namespace axsnn
