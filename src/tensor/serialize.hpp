// Binary (de)serialization for tensors and named tensor maps.
//
// Used to persist trained SNN weights and crafted datasets between runs and
// across shard processes (scenario/store.hpp keys whole files by content;
// this layer owns the per-record layout). The format is a tiny tagged
// little-endian container — stable across runs on the same platform, which is
// all a reproduction harness needs — with a versioned magic header and
// validated shapes, so a truncated or garbage stream fails with an error
// naming the field and byte offset instead of allocating absurd tensors
// (the same Reader idiom as data/event_io.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "tensor/tensor.hpp"

namespace axsnn {

/// Format version shared by tensor and tensor-map records. Bump on any
/// layout change; readers reject other versions explicitly.
inline constexpr std::uint32_t kSerializeVersion = 2;

/// Writes a single tensor: magic, version, rank, dims, raw float payload.
void WriteTensor(std::ostream& os, const Tensor& t);

/// Reads a tensor written by WriteTensor. Throws std::runtime_error naming
/// the offending field and byte offset on a malformed or truncated stream
/// (bad magic, unsupported version, rank > 16, negative dims, implausible
/// element counts, short payload).
Tensor ReadTensor(std::istream& is);

/// Writes a name -> tensor map (e.g. a network state dict) under its own
/// magic, so a map stream can never be misread as a bare tensor.
void WriteTensorMap(std::ostream& os, const std::map<std::string, Tensor>& m);

/// Reads a map written by WriteTensorMap; same validation guarantees as
/// ReadTensor.
std::map<std::string, Tensor> ReadTensorMap(std::istream& is);

/// File-based conveniences; throw std::runtime_error when the file cannot be
/// opened.
void SaveTensorMap(const std::string& path,
                   const std::map<std::string, Tensor>& m);
std::map<std::string, Tensor> LoadTensorMap(const std::string& path);

}  // namespace axsnn
