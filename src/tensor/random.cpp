#include "tensor/random.hpp"

#include <cmath>

#include "tensor/check.hpp"

namespace axsnn {

namespace {

/// SplitMix64 step: used for seeding and stream derivation.
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  AXSNN_CHECK(n > 0, "UniformInt requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v = NextU64();
  while (v >= limit) v = NextU64();
  return v % n;
}

double Rng::Normal() {
  // Box–Muller; draw until u1 is nonzero so log() is finite.
  double u1 = Uniform();
  while (u1 <= 0.0) u1 = Uniform();
  const double u2 = Uniform();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

Rng Rng::Fork(std::uint64_t stream_id) const {
  // Mix the current state with the stream id through SplitMix64 so forks are
  // independent of both each other and the parent's future output.
  std::uint64_t s = state_[0] ^ Rotl(state_[2], 13) ^ (stream_id * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  return Rng(SplitMix64(s));
}

}  // namespace axsnn
