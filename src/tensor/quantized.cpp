#include "tensor/quantized.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/check.hpp"

namespace axsnn {

QuantizedTensor::QuantizedTensor(const Tensor& t, std::vector<float> scales)
    : shape_(t.shape()),
      data_(static_cast<std::size_t>(t.numel())),
      scales_(std::move(scales)) {
  const long n_rows = rows();
  const long rs = row_size();
  const float* src = t.data();
  for (long r = 0; r < n_rows; ++r) {
    const float inv = 1.0f / scales_[static_cast<std::size_t>(r)];
    std::int8_t* dst = data_.data() + r * rs;
    for (long i = 0; i < rs; ++i) {
      const float q = std::nearbyint(src[r * rs + i] * inv);
      dst[i] = static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
    }
  }
}

QuantizedTensor QuantizedTensor::QuantizeRowwise(const Tensor& t) {
  AXSNN_CHECK(t.rank() >= 1 && t.numel() > 0,
              "QuantizeRowwise needs a non-empty tensor of rank >= 1");
  const long rows = t.dim(0);
  const long row_size = t.numel() / rows;
  std::vector<float> scales(static_cast<std::size_t>(rows), 1.0f);
  const float* src = t.data();
  for (long r = 0; r < rows; ++r) {
    float max_abs = 0.0f;
    for (long i = 0; i < row_size; ++i)
      max_abs = std::max(max_abs, std::fabs(src[r * row_size + i]));
    if (max_abs > 0.0f)
      scales[static_cast<std::size_t>(r)] = max_abs / 127.0f;
  }
  return QuantizedTensor(t, std::move(scales));
}

QuantizedTensor QuantizedTensor::QuantizeWithScales(const Tensor& t,
                                                    std::vector<float> scales) {
  AXSNN_CHECK(t.rank() >= 1 && t.numel() > 0,
              "QuantizeWithScales needs a non-empty tensor of rank >= 1");
  AXSNN_CHECK(static_cast<long>(scales.size()) == t.dim(0),
              "QuantizeWithScales needs one scale per row: got "
                  << scales.size() << " for " << t.dim(0) << " rows");
  for (float s : scales)
    AXSNN_CHECK(s > 0.0f && std::isfinite(s),
                "row scales must be positive and finite");
  return QuantizedTensor(t, std::move(scales));
}

QuantizedTensor QuantizedTensor::FromWeights(const Tensor& t,
                                             std::span<const float> row_scales) {
  if (row_scales.empty()) return QuantizeRowwise(t);
  return QuantizeWithScales(
      t, std::vector<float>(row_scales.begin(), row_scales.end()));
}

Tensor QuantizedTensor::Dequantized() const {
  Tensor out(shape_);
  const long n_rows = rows();
  const long rs = row_size();
  float* dst = out.data();
  for (long r = 0; r < n_rows; ++r) {
    const float s = scales_[static_cast<std::size_t>(r)];
    const std::int8_t* src = data_.data() + r * rs;
    for (long i = 0; i < rs; ++i)
      dst[r * rs + i] = static_cast<float>(src[i]) * s;
  }
  return out;
}

}  // namespace axsnn
