// Dense row-major float tensor — the numeric substrate for the SNN stack.
//
// Design notes:
//  * float32 storage only: SNN activations are spike trains (0/1) and the
//    precision-scaling experiments (FP16/INT8) are value-level emulations on
//    top of float storage, exactly as the paper's "precision scale" knob
//    quantizes weights rather than changing the compute datatype.
//  * Shapes are std::vector<long> and tensors are row-major ("C order").
//    The SNN layers adopt the convention [T, B, C, H, W] for spiking
//    activations (time-major), and [B, ...] for static batches.
//  * The class is a regular value type (copy = deep copy) so networks can be
//    cloned for approximation experiments without aliasing surprises.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "runtime/aligned.hpp"
#include "tensor/random.hpp"

namespace axsnn {

/// Shape of a tensor; one extent per dimension.
using Shape = std::vector<long>;

/// Returns the number of elements implied by `shape` (1 for a scalar shape).
long NumElements(const Shape& shape);

/// Returns a human-readable rendering, e.g. "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

/// Dense row-major float tensor.
class Tensor {
 public:
  /// Creates an empty tensor (rank 0, zero elements).
  Tensor() = default;

  /// Creates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Creates a tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value);

  /// Creates a tensor of the given shape from existing data.
  /// Requires data.size() == NumElements(shape).
  Tensor(Shape shape, std::vector<float> data);

  /// Convenience factory: zeros of the given shape.
  static Tensor Zeros(Shape shape);

  /// Convenience factory: ones of the given shape.
  static Tensor Ones(Shape shape);

  /// Convenience factory: all elements equal to `value`.
  static Tensor Full(Shape shape, float value);

  /// Uniform random tensor in [lo, hi).
  static Tensor Uniform(Shape shape, float lo, float hi, Rng& rng);

  /// Normal random tensor with given mean and stddev.
  static Tensor Normal(Shape shape, float mean, float stddev, Rng& rng);

  // --- shape/metadata -------------------------------------------------------

  const Shape& shape() const { return shape_; }
  long dim(std::size_t axis) const;
  std::size_t rank() const { return shape_.size(); }
  long numel() const { return static_cast<long>(data_.size()); }
  bool empty() const { return data_.empty(); }

  /// Returns a tensor sharing no storage with this one but holding the same
  /// data reinterpreted with a new shape. Requires equal element counts.
  Tensor Reshaped(Shape new_shape) const;

  /// In-place reshape; requires equal element counts.
  void Reshape(Shape new_shape);

  /// Resizes to `new_shape`, changing the element count. Existing storage is
  /// reused when capacity allows (never shrinks), making this the primitive
  /// behind the allocation-free runtime::Workspace. A no-op when the shape
  /// already matches. Element values are unspecified afterwards; callers
  /// overwrite them.
  void ResizeTo(const Shape& new_shape);

  // --- element access -------------------------------------------------------

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  float& operator[](long i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](long i) const { return data_[static_cast<std::size_t>(i)]; }

  /// Bounds-checked linear access (throws std::out_of_range).
  float& at(long i);
  float at(long i) const;

  /// Multi-index access for up to 5 dimensions, unchecked in release hot
  /// paths but validated on rank mismatch.
  float& operator()(long i0);
  float& operator()(long i0, long i1);
  float& operator()(long i0, long i1, long i2);
  float& operator()(long i0, long i1, long i2, long i3);
  float& operator()(long i0, long i1, long i2, long i3, long i4);
  float operator()(long i0) const;
  float operator()(long i0, long i1) const;
  float operator()(long i0, long i1, long i2) const;
  float operator()(long i0, long i1, long i2, long i3) const;
  float operator()(long i0, long i1, long i2, long i3, long i4) const;

  /// Linear offset of a multi-index (row-major).
  long Offset(std::span<const long> index) const;

  // --- elementwise mutation -------------------------------------------------

  void Fill(float value);
  void Zero() { Fill(0.0f); }

  /// this += other (same shape required).
  Tensor& Add(const Tensor& other);
  /// this -= other (same shape required).
  Tensor& Sub(const Tensor& other);
  /// this *= other, elementwise (same shape required).
  Tensor& Mul(const Tensor& other);
  /// this += scale * other (same shape required).
  Tensor& Axpy(float scale, const Tensor& other);
  /// this *= scale.
  Tensor& Scale(float scale);
  /// Clamps every element into [lo, hi].
  Tensor& Clamp(float lo, float hi);

  // --- reductions -----------------------------------------------------------

  float Sum() const;
  float Mean() const;
  float Min() const;
  float Max() const;
  /// Mean of absolute values (used by the Eq. (1) weight term).
  float MeanAbs() const;
  /// Index of the maximum element (first on ties). Requires numel() > 0.
  long Argmax() const;
  /// Number of elements strictly greater than `threshold`.
  long CountGreater(float threshold) const;

  /// True when shapes match and elements differ by at most `tol`.
  bool AllClose(const Tensor& other, float tol = 1e-6f) const;

 private:
  /// Shared core of the elementwise binary mutators: shape-checks `other`
  /// and applies `op(mine, theirs)` to every element pair.
  template <typename Op>
  Tensor& ApplyBinary(const Tensor& other, const char* op_name, Op op);

  Shape shape_;
  // 64-byte-aligned storage (runtime/aligned.hpp): the SIMD kernel tier
  // loads activations and workspace packs with full-width vector loads that
  // must never split a cache line.
  runtime::AlignedVector<float> data_;
};

// --- free functions making new tensors --------------------------------------

/// Elementwise a + b.
Tensor Add(const Tensor& a, const Tensor& b);
/// Elementwise a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
/// Elementwise a * b.
Tensor Mul(const Tensor& a, const Tensor& b);
/// Elementwise sign (returns -1, 0, or +1 per element).
Tensor Sign(const Tensor& a);

/// Prints shape and (for small tensors) contents; for diagnostics and tests.
std::ostream& operator<<(std::ostream& os, const Tensor& t);

}  // namespace axsnn
