// Quantized tensor: int8 storage with per-output-channel float scales.
//
// The production INT8 pattern (cf. MXNet's quantized_conv / TFLite): weights
// are stored as 8-bit integers with one float scale per output channel
// (row of the [C_out, ...] weight layout), kernels accumulate in int32, and
// the accumulator is requantized to the output domain with the combined
// activation x weight scale. This class is the storage half of that
// contract; the integer kernels live in approx/int8_backend.*.
//
// Row r of a tensor shaped [R, ...] holds values  q[r][i] * scales[r]  with
// q in [-127, 127] (symmetric, -128 unused so negation is always exact).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace axsnn {

/// Int8 tensor with per-row (output-channel) float scales.
class QuantizedTensor {
 public:
  /// Empty quantized tensor (no rows, no data).
  QuantizedTensor() = default;

  /// Quantizes `t` with an independent symmetric scale per row, where a row
  /// is one slice along dimension 0 (the output-channel axis of Conv2d /
  /// Dense weights): scales[r] = max|t[r, :]| / 127. An all-zero row gets
  /// scale 1 and all-zero codes. Requires rank >= 1.
  static QuantizedTensor QuantizeRowwise(const Tensor& t);

  /// Quantizes `t` using caller-provided per-row scales (all positive,
  /// size == t.dim(0)). Used when the float values already live on a known
  /// lattice — e.g. the per-tensor fake-quantization grid of the paper's
  /// emulation, where passing that grid's scale for every row makes the
  /// int8 representation exact.
  static QuantizedTensor QuantizeWithScales(const Tensor& t,
                                            std::vector<float> scales);

  /// Convenience dispatcher for weight-layer int8 snapshots: an empty span
  /// selects QuantizeRowwise, otherwise the scales are copied and passed to
  /// QuantizeWithScales.
  static QuantizedTensor FromWeights(const Tensor& t,
                                     std::span<const float> row_scales);

  /// Float reconstruction: q[r][i] * scales[r]. The int8 kernels compute
  /// bit-aligned results to running this through the float kernels (modulo
  /// float summation rounding).
  Tensor Dequantized() const;

  const Shape& shape() const { return shape_; }
  long rows() const { return shape_.empty() ? 0 : shape_[0]; }
  long row_size() const { return rows() == 0 ? 0 : numel() / rows(); }
  long numel() const { return static_cast<long>(data_.size()); }
  bool empty() const { return data_.empty(); }

  const std::int8_t* data() const { return data_.data(); }
  std::span<const std::int8_t> flat() const { return {data_.data(),
                                                      data_.size()}; }
  std::span<const float> scales() const { return {scales_.data(),
                                                  scales_.size()}; }
  float scale(long row) const {
    return scales_[static_cast<std::size_t>(row)];
  }

  /// Mutable views over the raw storage, for the fault-injection subsystem
  /// (src/faults/): hardware bit-flips corrupt the stored codes and scale
  /// words directly, bypassing the quantization invariants above. Nothing
  /// else should write through these — kernels treat the storage as
  /// read-only and any code/scale value is well-defined arithmetic.
  std::span<std::int8_t> mutable_flat() { return {data_.data(),
                                                  data_.size()}; }
  std::span<float> mutable_scales() { return {scales_.data(),
                                              scales_.size()}; }

 private:
  /// Quantizes `t` row by row with the given (validated) scales.
  QuantizedTensor(const Tensor& t, std::vector<float> scales);

  Shape shape_;
  std::vector<std::int8_t> data_;
  std::vector<float> scales_;  // one per row (dimension-0 slice)
};

}  // namespace axsnn
