// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in the library (weight init, rate encoding,
// dataset synthesis, attack random starts) draws from an explicitly seeded
// Rng instance, so a whole experiment is reproducible from a single seed.
// The generator is xoshiro256** seeded through SplitMix64, which is fast,
// has a 2^256-1 period, and passes BigCrush — more than adequate for
// simulation workloads, and unlike std::mt19937 its output is identical
// across standard libraries.
#pragma once

#include <array>
#include <cstdint>

namespace axsnn {

/// Deterministic random number generator (xoshiro256** / SplitMix64 seeding).
///
/// Copyable and cheap to fork: `Fork(stream_id)` derives an independent
/// stream, which the data generators use to decorrelate per-sample noise
/// without sharing mutable state across threads.
class Rng {
 public:
  /// Constructs a generator whose entire sequence is determined by `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit value.
  std::uint64_t NextU64();

  /// Returns a uniformly distributed double in [0, 1).
  double Uniform();

  /// Returns a uniformly distributed double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns a uniformly distributed integer in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Returns a standard normal sample (Box–Muller, no cached spare so the
  /// stream position is a pure function of the call count).
  double Normal();

  /// Returns a normal sample with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Derives an independent generator for a parallel stream. Two forks with
  /// different `stream_id`s (or from different parents) do not correlate.
  Rng Fork(std::uint64_t stream_id) const;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace axsnn
