#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <sstream>

#include "tensor/check.hpp"

namespace axsnn {

long NumElements(const Shape& shape) {
  long n = 1;
  for (long d : shape) {
    AXSNN_CHECK(d >= 0, "negative dimension in shape " << ShapeToString(shape));
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(NumElements(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(NumElements(shape_)), value) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(data.begin(), data.end()) {
  // One copy into aligned storage: this convenience constructor only runs
  // on cold paths (dataset construction, tests), never in a forward pass.
  AXSNN_CHECK(static_cast<long>(data_.size()) == NumElements(shape_),
              "data size " << data_.size() << " does not match shape "
                           << ShapeToString(shape_));
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  return Tensor(std::move(shape), value);
}

Tensor Tensor::Uniform(Shape shape, float lo, float hi, Rng& rng) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.Uniform(lo, hi));
  return t;
}

Tensor Tensor::Normal(Shape shape, float mean, float stddev, Rng& rng) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.Normal(mean, stddev));
  return t;
}

long Tensor::dim(std::size_t axis) const {
  AXSNN_CHECK(axis < shape_.size(),
              "axis " << axis << " out of range for rank " << shape_.size());
  return shape_[axis];
}

Tensor Tensor::Reshaped(Shape new_shape) const {
  Tensor t = *this;
  t.Reshape(std::move(new_shape));
  return t;
}

void Tensor::Reshape(Shape new_shape) {
  AXSNN_CHECK(NumElements(new_shape) == numel(),
              "cannot reshape " << ShapeToString(shape_) << " ("
                                << numel() << " elements) to "
                                << ShapeToString(new_shape));
  shape_ = std::move(new_shape);
}

void Tensor::ResizeTo(const Shape& new_shape) {
  if (shape_ == new_shape) return;  // steady-state fast path: no work at all
  // std::vector::resize and copy-assign never release capacity, so repeated
  // ResizeTo over a steady problem size allocates exactly once.
  data_.resize(static_cast<std::size_t>(NumElements(new_shape)));
  shape_ = new_shape;
}

float& Tensor::at(long i) {
  AXSNN_CHECK(i >= 0 && i < numel(), "index " << i << " out of range");
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::at(long i) const {
  AXSNN_CHECK(i >= 0 && i < numel(), "index " << i << " out of range");
  return data_[static_cast<std::size_t>(i)];
}

float& Tensor::operator()(long i0) { return data_[static_cast<std::size_t>(i0)]; }

float& Tensor::operator()(long i0, long i1) {
  return data_[static_cast<std::size_t>(i0 * shape_[1] + i1)];
}

float& Tensor::operator()(long i0, long i1, long i2) {
  return data_[static_cast<std::size_t>((i0 * shape_[1] + i1) * shape_[2] + i2)];
}

float& Tensor::operator()(long i0, long i1, long i2, long i3) {
  return data_[static_cast<std::size_t>(
      ((i0 * shape_[1] + i1) * shape_[2] + i2) * shape_[3] + i3)];
}

float& Tensor::operator()(long i0, long i1, long i2, long i3, long i4) {
  return data_[static_cast<std::size_t>(
      (((i0 * shape_[1] + i1) * shape_[2] + i2) * shape_[3] + i3) * shape_[4] +
      i4)];
}

float Tensor::operator()(long i0) const {
  return data_[static_cast<std::size_t>(i0)];
}

float Tensor::operator()(long i0, long i1) const {
  return data_[static_cast<std::size_t>(i0 * shape_[1] + i1)];
}

float Tensor::operator()(long i0, long i1, long i2) const {
  return data_[static_cast<std::size_t>((i0 * shape_[1] + i1) * shape_[2] + i2)];
}

float Tensor::operator()(long i0, long i1, long i2, long i3) const {
  return data_[static_cast<std::size_t>(
      ((i0 * shape_[1] + i1) * shape_[2] + i2) * shape_[3] + i3)];
}

float Tensor::operator()(long i0, long i1, long i2, long i3, long i4) const {
  return data_[static_cast<std::size_t>(
      (((i0 * shape_[1] + i1) * shape_[2] + i2) * shape_[3] + i3) * shape_[4] +
      i4)];
}

long Tensor::Offset(std::span<const long> index) const {
  AXSNN_CHECK(index.size() == shape_.size(),
              "index rank " << index.size() << " vs tensor rank "
                            << shape_.size());
  long off = 0;
  for (std::size_t d = 0; d < shape_.size(); ++d) {
    AXSNN_CHECK(index[d] >= 0 && index[d] < shape_[d],
                "index " << index[d] << " out of range on axis " << d);
    off = off * shape_[d] + index[d];
  }
  return off;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

template <typename Op>
Tensor& Tensor::ApplyBinary(const Tensor& other, const char* op_name, Op op) {
  AXSNN_CHECK(shape_ == other.shape_, "shape mismatch in " << op_name);
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] = op(data_[i], other.data_[i]);
  return *this;
}

Tensor& Tensor::Add(const Tensor& other) {
  return ApplyBinary(other, "Add", [](float a, float b) { return a + b; });
}

Tensor& Tensor::Sub(const Tensor& other) {
  return ApplyBinary(other, "Sub", [](float a, float b) { return a - b; });
}

Tensor& Tensor::Mul(const Tensor& other) {
  return ApplyBinary(other, "Mul", [](float a, float b) { return a * b; });
}

Tensor& Tensor::Axpy(float scale, const Tensor& other) {
  return ApplyBinary(other, "Axpy",
                     [scale](float a, float b) { return a + scale * b; });
}

Tensor& Tensor::Scale(float scale) {
  for (float& v : data_) v *= scale;
  return *this;
}

Tensor& Tensor::Clamp(float lo, float hi) {
  AXSNN_CHECK(lo <= hi, "Clamp requires lo <= hi");
  for (float& v : data_) v = std::clamp(v, lo, hi);
  return *this;
}

float Tensor::Sum() const {
  // Double accumulator keeps long reductions (e.g. loss over a big batch)
  // stable.
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::Mean() const {
  AXSNN_CHECK(!data_.empty(), "Mean of empty tensor");
  return Sum() / static_cast<float>(data_.size());
}

float Tensor::Min() const {
  AXSNN_CHECK(!data_.empty(), "Min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::Max() const {
  AXSNN_CHECK(!data_.empty(), "Max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::MeanAbs() const {
  AXSNN_CHECK(!data_.empty(), "MeanAbs of empty tensor");
  double s = 0.0;
  for (float v : data_) s += std::fabs(v);
  return static_cast<float>(s / static_cast<double>(data_.size()));
}

long Tensor::Argmax() const {
  AXSNN_CHECK(!data_.empty(), "Argmax of empty tensor");
  return static_cast<long>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

long Tensor::CountGreater(float threshold) const {
  return static_cast<long>(
      std::count_if(data_.begin(), data_.end(),
                    [threshold](float v) { return v > threshold; }));
}

bool Tensor::AllClose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.Add(b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.Sub(b);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.Mul(b);
  return out;
}

Tensor Sign(const Tensor& a) {
  Tensor out = a;
  for (float& v : out.flat()) v = (v > 0.0f) ? 1.0f : (v < 0.0f ? -1.0f : 0.0f);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor" << ShapeToString(t.shape());
  if (t.numel() <= 32) {
    os << " {";
    for (long i = 0; i < t.numel(); ++i) {
      if (i != 0) os << ", ";
      os << t[i];
    }
    os << '}';
  }
  return os;
}

}  // namespace axsnn
