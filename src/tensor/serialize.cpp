#include "tensor/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace axsnn {

namespace {

constexpr std::uint32_t kMagic = 0x41585342;  // "AXSB"

void WriteU32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void WriteI64(std::ostream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t ReadU32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("axsnn: truncated tensor stream (u32)");
  return v;
}

std::int64_t ReadI64(std::istream& is) {
  std::int64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("axsnn: truncated tensor stream (i64)");
  return v;
}

void WriteString(std::ostream& os, const std::string& s) {
  WriteU32(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string ReadString(std::istream& is) {
  const std::uint32_t n = ReadU32(is);
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) throw std::runtime_error("axsnn: truncated tensor stream (string)");
  return s;
}

}  // namespace

void WriteTensor(std::ostream& os, const Tensor& t) {
  WriteU32(os, kMagic);
  WriteU32(os, static_cast<std::uint32_t>(t.rank()));
  for (std::size_t d = 0; d < t.rank(); ++d) WriteI64(os, t.dim(d));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

Tensor ReadTensor(std::istream& is) {
  if (ReadU32(is) != kMagic)
    throw std::runtime_error("axsnn: bad tensor magic");
  const std::uint32_t rank = ReadU32(is);
  if (rank > 16) throw std::runtime_error("axsnn: implausible tensor rank");
  Shape shape(rank);
  for (auto& d : shape) {
    d = static_cast<long>(ReadI64(is));
    if (d < 0) throw std::runtime_error("axsnn: negative tensor dim");
  }
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!is) throw std::runtime_error("axsnn: truncated tensor payload");
  return t;
}

void WriteTensorMap(std::ostream& os, const std::map<std::string, Tensor>& m) {
  WriteU32(os, kMagic);
  WriteU32(os, static_cast<std::uint32_t>(m.size()));
  for (const auto& [name, tensor] : m) {
    WriteString(os, name);
    WriteTensor(os, tensor);
  }
}

std::map<std::string, Tensor> ReadTensorMap(std::istream& is) {
  if (ReadU32(is) != kMagic)
    throw std::runtime_error("axsnn: bad tensor-map magic");
  const std::uint32_t n = ReadU32(is);
  std::map<std::string, Tensor> m;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = ReadString(is);
    m.emplace(std::move(name), ReadTensor(is));
  }
  return m;
}

void SaveTensorMap(const std::string& path,
                   const std::map<std::string, Tensor>& m) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("axsnn: cannot open for write: " + path);
  WriteTensorMap(os, m);
}

std::map<std::string, Tensor> LoadTensorMap(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("axsnn: cannot open for read: " + path);
  return ReadTensorMap(is);
}

}  // namespace axsnn
