#include "tensor/serialize.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace axsnn {

namespace {

constexpr std::uint32_t kTensorMagic = 0x41585342;  // "AXSB"
constexpr std::uint32_t kMapMagic = 0x4158534D;     // "AXSM"
constexpr std::uint32_t kMaxRank = 16;
constexpr std::uint32_t kMaxMapEntries = 1u << 20;
constexpr std::uint32_t kMaxNameLength = 1u << 16;
/// Per-tensor element cap: rejects the absurd allocations a few flipped
/// header bytes would otherwise request (2^40 floats = 4 TiB).
constexpr std::uint64_t kMaxElements = 1ull << 40;

void WriteU32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void WriteI64(std::ostream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void WriteString(std::ostream& os, const std::string& s) {
  WriteU32(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// Offset-tracking reader (mirrors data/event_io.cpp): every primitive read
/// knows what field it is deserializing, so truncation and malformed-value
/// errors name the field and the byte offset where the stream went wrong.
class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}

  std::uint64_t offset() const { return offset_; }

  [[noreturn]] void FailTruncated(const char* what) const {
    std::ostringstream os;
    os << "axsnn: truncated tensor stream: " << what << " at byte offset "
       << offset_;
    throw std::runtime_error(os.str());
  }

  [[noreturn]] void FailMalformed(const std::string& detail) const {
    std::ostringstream os;
    os << "axsnn: malformed tensor stream at byte offset " << offset_ << ": "
       << detail;
    throw std::runtime_error(os.str());
  }

  std::uint32_t ReadU32(const char* what) {
    std::uint32_t v = 0;
    ReadRaw(&v, sizeof v, what);
    return v;
  }

  std::int64_t ReadI64(const char* what) {
    std::int64_t v = 0;
    ReadRaw(&v, sizeof v, what);
    return v;
  }

  void ReadRaw(void* dst, std::size_t size, const char* what) {
    is_.read(static_cast<char*>(dst), static_cast<std::streamsize>(size));
    if (!is_) FailTruncated(what);
    offset_ += size;
  }

 private:
  std::istream& is_;
  std::uint64_t offset_ = 0;
};

Tensor ReadTensorRecord(Reader& reader) {
  const std::uint32_t magic = reader.ReadU32("tensor magic");
  if (magic != kTensorMagic) {
    std::ostringstream os;
    os << "bad tensor magic 0x" << std::hex << magic;
    reader.FailMalformed(os.str());
  }
  const std::uint32_t version = reader.ReadU32("tensor version");
  if (version != kSerializeVersion) {
    std::ostringstream os;
    os << "unsupported tensor format version " << version << " (expected "
       << kSerializeVersion << ")";
    reader.FailMalformed(os.str());
  }
  const std::uint32_t rank = reader.ReadU32("tensor rank");
  if (rank > kMaxRank) {
    std::ostringstream os;
    os << "implausible tensor rank " << rank << " (max " << kMaxRank << ")";
    reader.FailMalformed(os.str());
  }
  Shape shape(rank);
  std::uint64_t numel = 1;
  for (std::uint32_t d = 0; d < rank; ++d) {
    const std::int64_t dim = reader.ReadI64("tensor dim");
    if (dim < 0) {
      std::ostringstream os;
      os << "negative tensor dim " << dim;
      reader.FailMalformed(os.str());
    }
    shape[d] = static_cast<long>(dim);
    numel *= static_cast<std::uint64_t>(dim);
    if (numel > kMaxElements) {
      std::ostringstream os;
      os << "implausible tensor size (> " << kMaxElements << " elements)";
      reader.FailMalformed(os.str());
    }
  }
  Tensor t(shape);
  if (t.numel() > 0)
    reader.ReadRaw(t.data(),
                   static_cast<std::size_t>(t.numel()) * sizeof(float),
                   "tensor payload");
  return t;
}

}  // namespace

void WriteTensor(std::ostream& os, const Tensor& t) {
  WriteU32(os, kTensorMagic);
  WriteU32(os, kSerializeVersion);
  WriteU32(os, static_cast<std::uint32_t>(t.rank()));
  for (std::size_t d = 0; d < t.rank(); ++d) WriteI64(os, t.dim(d));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

Tensor ReadTensor(std::istream& is) {
  Reader reader(is);
  return ReadTensorRecord(reader);
}

void WriteTensorMap(std::ostream& os, const std::map<std::string, Tensor>& m) {
  WriteU32(os, kMapMagic);
  WriteU32(os, kSerializeVersion);
  WriteU32(os, static_cast<std::uint32_t>(m.size()));
  for (const auto& [name, tensor] : m) {
    WriteString(os, name);
    WriteTensor(os, tensor);
  }
}

std::map<std::string, Tensor> ReadTensorMap(std::istream& is) {
  Reader reader(is);
  const std::uint32_t magic = reader.ReadU32("tensor-map magic");
  if (magic != kMapMagic) {
    std::ostringstream os;
    os << "bad tensor-map magic 0x" << std::hex << magic;
    reader.FailMalformed(os.str());
  }
  const std::uint32_t version = reader.ReadU32("tensor-map version");
  if (version != kSerializeVersion) {
    std::ostringstream os;
    os << "unsupported tensor-map format version " << version << " (expected "
       << kSerializeVersion << ")";
    reader.FailMalformed(os.str());
  }
  const std::uint32_t count = reader.ReadU32("tensor-map entry count");
  if (count > kMaxMapEntries) {
    std::ostringstream os;
    os << "implausible tensor-map entry count " << count;
    reader.FailMalformed(os.str());
  }
  std::map<std::string, Tensor> m;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = reader.ReadU32("tensor-map name length");
    if (name_len > kMaxNameLength) {
      std::ostringstream os;
      os << "implausible tensor-map name length " << name_len;
      reader.FailMalformed(os.str());
    }
    std::string name(name_len, '\0');
    if (name_len > 0) reader.ReadRaw(name.data(), name_len, "tensor-map name");
    m.emplace(std::move(name), ReadTensorRecord(reader));
  }
  return m;
}

void SaveTensorMap(const std::string& path,
                   const std::map<std::string, Tensor>& m) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("axsnn: cannot open for write: " + path);
  WriteTensorMap(os, m);
}

std::map<std::string, Tensor> LoadTensorMap(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("axsnn: cannot open for read: " + path);
  return ReadTensorMap(is);
}

}  // namespace axsnn
