// Background Activity Filter (BAF) — the classical DVS denoising baseline
// AQF builds on (used, e.g., by R-SNN, the paper's ref. [3]).
//
// BAF keeps an event only when a neighbouring pixel fired within a temporal
// window — the plain spatio-temporal correlation test, with *no* timestamp
// quantization, *no* hyperactivity flagging and *no* polarity separation.
// It serves as the ablation baseline that isolates what AQF's additions buy
// (see bench/ablation_filter_baseline).
#pragma once

#include "data/event.hpp"

namespace axsnn::core {

/// BAF parameters.
struct BafConfig {
  /// Spatial window (Chebyshev radius) in pixels.
  int spatial_window = 2;
  /// Temporal support window in milliseconds.
  float temporal_threshold_ms = 50.0f;
};

/// Filters one stream with the classical background-activity test.
data::EventStream BafFilter(const data::EventStream& stream,
                            const BafConfig& cfg);

/// Filters every stream in a dataset (parallel over streams).
data::EventDataset BafFilterDataset(const data::EventDataset& dataset,
                                    const BafConfig& cfg);

}  // namespace axsnn::core
