#include "core/baf.hpp"

#include <algorithm>
#include <vector>

#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::core {

data::EventStream BafFilter(const data::EventStream& stream,
                            const BafConfig& cfg) {
  AXSNN_CHECK(cfg.spatial_window >= 1, "spatial window must be >= 1");
  AXSNN_CHECK(cfg.temporal_threshold_ms > 0.0f,
              "temporal threshold must be positive");
  const long w = stream.width;
  const long h = stream.height;
  AXSNN_CHECK(w > 0 && h > 0, "stream has no sensor geometry");

  std::vector<data::Event> events = stream.events;
  std::stable_sort(events.begin(), events.end(),
                   [](const data::Event& a, const data::Event& b) {
                     return a.t < b.t;
                   });

  constexpr float kNever = -1e30f;
  std::vector<float> last_time(static_cast<std::size_t>(w * h), kNever);

  data::EventStream out;
  out.width = stream.width;
  out.height = stream.height;
  out.duration_ms = stream.duration_ms;
  out.events.reserve(events.size());

  const int s = cfg.spatial_window;
  for (const data::Event& e : events) {
    if (e.x < 0 || e.x >= w || e.y < 0 || e.y >= h) continue;
    bool supported = false;
    for (long i = e.y - s; i <= e.y + s && !supported; ++i) {
      if (i < 0 || i >= h) continue;
      for (long j = e.x - s; j <= e.x + s; ++j) {
        if (j < 0 || j >= w) continue;
        if (i == e.y && j == e.x) continue;
        const float lt = last_time[static_cast<std::size_t>(i * w + j)];
        if (e.t - lt <= cfg.temporal_threshold_ms && lt <= e.t) {
          supported = true;
          break;
        }
      }
    }
    last_time[static_cast<std::size_t>(e.y * w + e.x)] = e.t;
    if (supported) out.events.push_back(e);
  }
  return out;
}

data::EventDataset BafFilterDataset(const data::EventDataset& dataset,
                                    const BafConfig& cfg) {
  data::EventDataset out = dataset;
  const long n = dataset.size();
  runtime::ParallelFor(0, n, [&](long i) {
    out.streams[static_cast<std::size_t>(i)] =
        BafFilter(dataset.streams[static_cast<std::size_t>(i)], cfg);
  });
  return out;
}

}  // namespace axsnn::core
