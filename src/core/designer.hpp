// One-call facade: design a security-aware approximate SNN.
//
// Wraps Algorithm 1 for users who want the end product rather than the
// search trace: runs the precision-scaling search and returns the chosen
// configuration together with a ready-to-deploy approximate network
// (retrained at the winning structural cell).
#pragma once

#include "core/search.hpp"

namespace axsnn::core {

/// A finished design: the winning configuration and the deployable AxSNN.
struct StaticDesign {
  SearchOutcome outcome;
  /// The accurate model trained at the winning (Vth, T).
  StaticWorkbench::TrainedModel accurate;
  /// The approximate, precision-scaled network at the winning level.
  snn::Network axsnn;
};

/// Runs Algorithm 1 and materializes the winning design. Throws
/// std::runtime_error when no candidate meets the quality constraint and
/// `config.return_first` is true; otherwise falls back to the best trace
/// entry.
StaticDesign DesignSecureAxsnn(const StaticWorkbench& bench,
                               const SearchSpace& space,
                               const SearchConfig& config);

/// Neuromorphic counterpart (Sparse/Frame threat, optional AQF).
struct DvsDesign {
  SearchOutcome outcome;
  DvsWorkbench::TrainedModel accurate;
  snn::Network axsnn;
};

DvsDesign DesignSecureAxsnn(const DvsWorkbench& bench,
                            const SearchSpace& space,
                            const SearchConfig& config);

}  // namespace axsnn::core
