#include "core/workbench.hpp"

#include <algorithm>

#include "runtime/parallel_for.hpp"
#include "snn/inference.hpp"
#include "tensor/check.hpp"

namespace axsnn::core {

std::string AttackName(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone:
      return "none";
    case AttackKind::kPgd:
      return "PGD";
    case AttackKind::kBim:
      return "BIM";
    case AttackKind::kSparse:
      return "Sparse";
    case AttackKind::kFrame:
      return "Frame";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// StaticWorkbench
// ---------------------------------------------------------------------------

StaticWorkbench::StaticWorkbench(data::StaticDataset train_set,
                                 data::StaticDataset test_set,
                                 Options options)
    : train_(std::move(train_set)),
      test_(std::move(test_set)),
      options_(std::move(options)) {
  AXSNN_CHECK(train_.size() > 0 && test_.size() > 0,
              "workbench needs non-empty train and test sets");
  AXSNN_CHECK(options_.train_time_steps_cap > 0 &&
                  options_.attack_time_steps_cap > 0,
              "time step caps must be positive");
}

StaticWorkbench::TrainedModel StaticWorkbench::Train(float vth,
                                                     long time_steps) const {
  AXSNN_CHECK(time_steps > 0, "time_steps must be positive");
  TrainedModel model;
  model.v_threshold = vth;
  model.time_steps = time_steps;

  snn::StaticNetOptions net_opts = options_.net;
  net_opts.lif.v_threshold = vth;
  model.net = snn::BuildStaticNet(net_opts);

  snn::TrainConfig cfg = options_.train;
  cfg.time_steps = std::min(time_steps, options_.train_time_steps_cap);
  snn::TrainResult result =
      snn::FitStatic(model.net, train_.images, train_.labels, cfg);
  model.train_accuracy_pct = result.final_accuracy * 100.0f;

  // Calibration on a clean test slice at the structural T: this measures the
  // Ns/T and Vm terms of Eq. (1) under deployment conditions.
  const long calib_count = std::min<long>(64, test_.size());
  Shape slice_shape = test_.images.shape();
  slice_shape[0] = calib_count;
  Tensor calib_images(slice_shape);
  std::copy(test_.images.data(),
            test_.images.data() + calib_images.numel(), calib_images.data());
  Rng calib_rng(options_.seed ^ 0xCA11B7ULL);
  Tensor calib_input = snn::EncodeRate(calib_images, time_steps, calib_rng);
  model.calibration = approx::Calibrate(model.net, calib_input);
  return model;
}

Tensor StaticWorkbench::Craft(TrainedModel& model, AttackKind kind,
                              float epsilon) const {
  attacks::GradientAttackConfig cfg;
  cfg.epsilon = epsilon;
  cfg.steps = options_.attack_steps;
  cfg.time_steps = std::min(model.time_steps, options_.attack_time_steps_cap);
  cfg.seed = options_.seed ^ 0xA77AC4ULL;
  cfg.batch_size = options_.eval_batch;
  switch (kind) {
    case AttackKind::kNone:
      return test_.images;
    case AttackKind::kPgd:
      return attacks::PgdAttack(model.net, test_.images, test_.labels, cfg);
    case AttackKind::kBim:
      return attacks::BimAttack(model.net, test_.images, test_.labels, cfg);
    case AttackKind::kSparse:
    case AttackKind::kFrame:
      AXSNN_CHECK(false, "neuromorphic attacks need the DvsWorkbench");
  }
  return test_.images;
}

snn::Network StaticWorkbench::MakeAx(const TrainedModel& model, double level,
                                     approx::Precision precision) const {
  approx::ApproxConfig cfg;
  cfg.level = level;
  cfg.precision = precision;
  cfg.time_steps = model.time_steps;
  cfg.threshold_gain = options_.threshold_gain;
  cfg.int8_kernels = options_.int8_kernels;
  cfg.kernel_mode = options_.kernel_mode;
  auto [ax, report] = approx::MakeApproximate(model.net, cfg,
                                              model.calibration);
  (void)report;
  return std::move(ax);
}

float StaticWorkbench::AccuracyPct(snn::Network& victim, const Tensor& images,
                                   long time_steps) const {
  return 100.0f * snn::AccuracyStatic(victim, images, test_.labels,
                                      time_steps, options_.eval_encoding,
                                      options_.seed ^ 0xE7A10ULL,
                                      options_.eval_batch);
}

std::vector<float> StaticWorkbench::EvaluateVariants(
    const TrainedModel& model, const Tensor& images,
    std::span<const VariantSpec> specs) const {
  std::vector<float> robustness(specs.size(), 0.0f);
  // grain 1: one sweep cell per pool task. Each cell owns its clone and its
  // output slot, and its evaluation RNG is freshly seeded inside
  // AccuracyPct, so the fan-out is bit-identical to the serial loop.
  runtime::ParallelFor(
      0, static_cast<long>(specs.size()),
      [&](long i) {
        const VariantSpec& spec = specs[static_cast<std::size_t>(i)];
        snn::Network ax = MakeAx(model, spec.level, spec.precision);
        robustness[static_cast<std::size_t>(i)] =
            AccuracyPct(ax, images, model.time_steps);
      },
      /*grain=*/1);
  return robustness;
}

// ---------------------------------------------------------------------------
// DvsWorkbench
// ---------------------------------------------------------------------------

DvsWorkbench::DvsWorkbench(data::EventDataset train_set,
                           data::EventDataset test_set, Options options)
    : train_(std::move(train_set)),
      test_(std::move(test_set)),
      options_(std::move(options)) {
  AXSNN_CHECK(train_.size() > 0 && test_.size() > 0,
              "workbench needs non-empty train and test sets");
  AXSNN_CHECK(options_.time_bins > 0, "time_bins must be positive");
  train_frames_ = data::BinDataset(train_, options_.time_bins);
}

DvsWorkbench::TrainedModel DvsWorkbench::Train(float vth) const {
  TrainedModel model;
  model.v_threshold = vth;
  model.time_bins = options_.time_bins;

  snn::DvsNetOptions net_opts = options_.net;
  net_opts.lif.v_threshold = vth;
  net_opts.height = train_.height;
  net_opts.width = train_.width;
  model.net = snn::BuildDvsNet(net_opts);

  snn::TrainConfig cfg = options_.train;
  cfg.time_steps = options_.time_bins;
  snn::TrainResult result =
      snn::FitTemporal(model.net, train_frames_, train_.labels, cfg);
  model.train_accuracy_pct = result.final_accuracy * 100.0f;

  // Calibrate on a clean test slice.
  const long calib_count = std::min<long>(32, test_.size());
  data::EventDataset calib;
  calib.width = test_.width;
  calib.height = test_.height;
  calib.duration_ms = test_.duration_ms;
  calib.streams.assign(test_.streams.begin(),
                       test_.streams.begin() + calib_count);
  calib.labels.assign(test_.labels.begin(),
                      test_.labels.begin() + calib_count);
  Tensor frames = data::BinDataset(calib, options_.time_bins);
  model.calibration =
      approx::Calibrate(model.net, snn::TimeMajor(frames));
  return model;
}

data::EventDataset DvsWorkbench::Craft(TrainedModel& model,
                                       AttackKind kind) const {
  switch (kind) {
    case AttackKind::kNone:
      return test_;
    case AttackKind::kSparse: {
      attacks::SparseAttackConfig cfg = options_.sparse;
      cfg.time_bins = options_.time_bins;
      return attacks::SparseAttackDataset(model.net, test_, cfg);
    }
    case AttackKind::kFrame:
      return attacks::FrameAttackDataset(test_, options_.frame);
    case AttackKind::kPgd:
    case AttackKind::kBim:
      AXSNN_CHECK(false, "gradient attacks need the StaticWorkbench");
  }
  return test_;
}

snn::Network DvsWorkbench::MakeAx(const TrainedModel& model, double level,
                                  approx::Precision precision) const {
  approx::ApproxConfig cfg;
  cfg.level = level;
  cfg.precision = precision;
  cfg.time_steps = model.time_bins;
  cfg.threshold_gain = options_.threshold_gain;
  cfg.int8_kernels = options_.int8_kernels;
  cfg.kernel_mode = options_.kernel_mode;
  auto [ax, report] = approx::MakeApproximate(model.net, cfg,
                                              model.calibration);
  (void)report;
  return std::move(ax);
}

float DvsWorkbench::AccuracyPct(snn::Network& victim,
                                const data::EventDataset& streams,
                                const std::optional<AqfConfig>& aqf) const {
  const data::EventDataset* eval_set = &streams;
  data::EventDataset filtered;
  if (aqf.has_value()) {
    filtered = AqfFilterDataset(streams, *aqf);
    eval_set = &filtered;
  }
  Tensor frames = data::BinDataset(*eval_set, options_.time_bins);
  return 100.0f * snn::AccuracyTemporal(victim, frames, eval_set->labels,
                                        options_.eval_batch);
}

std::vector<float> DvsWorkbench::EvaluateVariants(
    const TrainedModel& model, const data::EventDataset& streams,
    const std::optional<AqfConfig>& aqf,
    std::span<const VariantSpec> specs) const {
  // Filter and bin once, shared read-only by every cell — the serial path
  // repeats this per variant, so the fan-out also removes redundant work.
  const data::EventDataset* eval_set = &streams;
  data::EventDataset filtered;
  if (aqf.has_value()) {
    filtered = AqfFilterDataset(streams, *aqf);
    eval_set = &filtered;
  }
  Tensor frames = data::BinDataset(*eval_set, options_.time_bins);
  std::vector<float> robustness(specs.size(), 0.0f);
  runtime::ParallelFor(
      0, static_cast<long>(specs.size()),
      [&](long i) {
        const VariantSpec& spec = specs[static_cast<std::size_t>(i)];
        snn::Network ax = MakeAx(model, spec.level, spec.precision);
        robustness[static_cast<std::size_t>(i)] =
            100.0f * snn::AccuracyTemporal(ax, frames, eval_set->labels,
                                           options_.eval_batch);
      },
      /*grain=*/1);
  return robustness;
}

}  // namespace axsnn::core
