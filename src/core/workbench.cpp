#include "core/workbench.hpp"

#include <algorithm>

#include "kernels/spike_stream.hpp"
#include "runtime/parallel_for.hpp"
#include "snn/event_runner.hpp"
#include "snn/inference.hpp"
#include "tensor/check.hpp"

namespace axsnn::core {

namespace {

/// Event-path evaluation over an event dataset: bins one eval chunk at a
/// time straight into a packed spike stream (data::BinRangePacked — the
/// [N, T, 2, H, W] dense tensor never exists) and steps the runner over it.
/// Chunk boundaries match the dense AccuracyTemporal loop and the runner's
/// logits are bit-identical to the dense readout, so the predictions — and
/// therefore every rendered report — are identical across paths. Returns
/// accuracy in [0, 1].
float AccuracyEventStreams(snn::Network& net, const data::EventDataset& ds,
                           long time_bins, long batch) {
  const long n = ds.size();
  kernels::SpikeStream stream;
  snn::EventRunner runner(net);
  long correct = 0;
  for (long start = 0; start < n; start += batch) {
    const long count = std::min(batch, n - start);
    data::BinRangePacked(ds, start, start + count, time_bins, stream);
    const Tensor& logits = runner.Run(stream);
    const long k = logits.dim(1);
    for (long i = 0; i < count; ++i) {
      const float* row = logits.data() + i * k;
      const int pred =
          static_cast<int>(std::max_element(row, row + k) - row);
      if (pred == ds.labels[static_cast<std::size_t>(start + i)]) ++correct;
    }
  }
  return n == 0 ? 0.0f
               : static_cast<float>(correct) / static_cast<float>(n);
}

}  // namespace

std::string AttackName(AttackKind kind) {
  // Index-to-key table only; the canonical display name comes from the
  // registered attack object, so the registry stays the single source of
  // truth (a missing registration throws with the registered list).
  static constexpr std::string_view kRegistryKeys[] = {"none", "PGD", "BIM",
                                                       "Sparse", "Frame"};
  const auto index = static_cast<std::size_t>(kind);
  AXSNN_CHECK(index < std::size(kRegistryKeys),
              "unknown AttackKind " << static_cast<int>(kind));
  return attacks::GetAttack(kRegistryKeys[index]).name();
}

// ---------------------------------------------------------------------------
// StaticWorkbench
// ---------------------------------------------------------------------------

StaticWorkbench::StaticWorkbench(data::StaticDataset train_set,
                                 data::StaticDataset test_set,
                                 Options options)
    : train_(std::move(train_set)),
      test_(std::move(test_set)),
      options_(std::move(options)) {
  AXSNN_CHECK(train_.size() > 0 && test_.size() > 0,
              "workbench needs non-empty train and test sets");
  AXSNN_CHECK(options_.train_time_steps_cap > 0 &&
                  options_.attack_time_steps_cap > 0,
              "time step caps must be positive");
}

StaticWorkbench::TrainedModel StaticWorkbench::Train(float vth,
                                                     long time_steps) const {
  AXSNN_CHECK(time_steps > 0, "time_steps must be positive");
  TrainedModel model;
  model.v_threshold = vth;
  model.time_steps = time_steps;

  snn::StaticNetOptions net_opts = options_.net;
  net_opts.lif.v_threshold = vth;
  model.net = snn::BuildStaticNet(net_opts);

  snn::TrainConfig cfg = options_.train;
  cfg.time_steps = std::min(time_steps, options_.train_time_steps_cap);
  snn::TrainResult result =
      snn::FitStatic(model.net, train_.images, train_.labels, cfg);
  model.train_accuracy_pct = result.final_accuracy * 100.0f;

  // Calibration on a clean test slice at the structural T: this measures the
  // Ns/T and Vm terms of Eq. (1) under deployment conditions.
  const long calib_count = std::min<long>(64, test_.size());
  Shape slice_shape = test_.images.shape();
  slice_shape[0] = calib_count;
  Tensor calib_images(slice_shape);
  std::copy(test_.images.data(),
            test_.images.data() + calib_images.numel(), calib_images.data());
  Rng calib_rng(options_.seed ^ 0xCA11B7ULL);
  Tensor calib_input = snn::EncodeRate(calib_images, time_steps, calib_rng);
  model.calibration = approx::Calibrate(model.net, calib_input);
  return model;
}

Tensor StaticWorkbench::Craft(const TrainedModel& model,
                              std::string_view attack, float epsilon,
                              const attacks::ParamMap& params) const {
  const attacks::Attack& impl = attacks::GetAttack(attack);
  AXSNN_CHECK(impl.supports_static(),
              "attack '" << impl.name()
                         << "' does not apply to static image batches — "
                            "neuromorphic attacks need the DvsWorkbench");
  attacks::StaticCraftContext ctx;
  ctx.epsilon = epsilon;
  ctx.steps = options_.attack_steps;
  ctx.time_steps = std::min(model.time_steps, options_.attack_time_steps_cap);
  ctx.seed = options_.seed ^ 0xA77AC4ULL;
  ctx.batch_size = options_.eval_batch;
  return impl.CraftStatic(model.net, test_.images, test_.labels, ctx, params);
}

Tensor StaticWorkbench::Craft(const TrainedModel& model, AttackKind kind,
                              float epsilon) const {
  return Craft(model, AttackName(kind), epsilon);
}

snn::Network StaticWorkbench::MakeAx(const TrainedModel& model, double level,
                                     approx::Precision precision) const {
  return MakeAx(model, VariantSpec{precision, level, std::nullopt});
}

snn::Network StaticWorkbench::MakeAx(const TrainedModel& model,
                                     const VariantSpec& spec) const {
  approx::ApproxConfig cfg;
  cfg.level = spec.level;
  cfg.precision = spec.precision;
  cfg.time_steps = model.time_steps;
  cfg.threshold_gain = options_.threshold_gain;
  cfg.int8_kernels = options_.int8_kernels;
  cfg.kernel_mode = spec.kernel_mode.value_or(options_.kernel_mode);
  auto [ax, report] = approx::MakeApproximate(model.net, cfg,
                                              model.calibration);
  (void)report;
  return std::move(ax);
}

float StaticWorkbench::AccuracyPct(snn::Network& victim, const Tensor& images,
                                   long time_steps) const {
  return 100.0f * snn::AccuracyStatic(victim, images, test_.labels,
                                      time_steps, options_.eval_encoding,
                                      options_.seed ^ 0xE7A10ULL,
                                      options_.eval_batch);
}

std::vector<float> StaticWorkbench::EvaluateVariants(
    const TrainedModel& model, const Tensor& images,
    std::span<const VariantSpec> specs) const {
  std::vector<float> robustness(specs.size(), 0.0f);
  // grain 1: one sweep cell per pool task. Each cell owns its clone and its
  // output slot, and its evaluation RNG is freshly seeded inside
  // AccuracyPct, so the fan-out is bit-identical to the serial loop.
  runtime::ParallelFor(
      0, static_cast<long>(specs.size()),
      [&](long i) {
        const VariantSpec& spec = specs[static_cast<std::size_t>(i)];
        snn::Network ax = MakeAx(model, spec);
        robustness[static_cast<std::size_t>(i)] =
            AccuracyPct(ax, images, model.time_steps);
      },
      /*grain=*/1);
  return robustness;
}

// ---------------------------------------------------------------------------
// DvsWorkbench
// ---------------------------------------------------------------------------

DvsWorkbench::DvsWorkbench(data::EventDataset train_set,
                           data::EventDataset test_set, Options options)
    : train_(std::move(train_set)),
      test_(std::move(test_set)),
      options_(std::move(options)) {
  AXSNN_CHECK(train_.size() > 0 && test_.size() > 0,
              "workbench needs non-empty train and test sets");
  AXSNN_CHECK(options_.time_bins > 0, "time_bins must be positive");
  train_frames_ = data::BinDataset(train_, options_.time_bins);
}

DvsWorkbench::TrainedModel DvsWorkbench::Train(float vth) const {
  TrainedModel model;
  model.v_threshold = vth;
  model.time_bins = options_.time_bins;

  snn::DvsNetOptions net_opts = options_.net;
  net_opts.lif.v_threshold = vth;
  net_opts.height = train_.height;
  net_opts.width = train_.width;
  model.net = snn::BuildDvsNet(net_opts);

  snn::TrainConfig cfg = options_.train;
  cfg.time_steps = options_.time_bins;
  snn::TrainResult result =
      snn::FitTemporal(model.net, train_frames_, train_.labels, cfg);
  model.train_accuracy_pct = result.final_accuracy * 100.0f;

  // Calibrate on a clean test slice.
  const long calib_count = std::min<long>(32, test_.size());
  data::EventDataset calib;
  calib.width = test_.width;
  calib.height = test_.height;
  calib.duration_ms = test_.duration_ms;
  calib.streams.assign(test_.streams.begin(),
                       test_.streams.begin() + calib_count);
  calib.labels.assign(test_.labels.begin(),
                      test_.labels.begin() + calib_count);
  Tensor frames = data::BinDataset(calib, options_.time_bins);
  model.calibration =
      approx::Calibrate(model.net, snn::TimeMajor(frames));
  return model;
}

data::EventDataset DvsWorkbench::Craft(const TrainedModel& model,
                                       std::string_view attack,
                                       const attacks::ParamMap& params) const {
  const attacks::Attack& impl = attacks::GetAttack(attack);
  AXSNN_CHECK(impl.supports_events(),
              "attack '" << impl.name()
                         << "' does not apply to event datasets — "
                            "gradient attacks need the StaticWorkbench");
  // Workbench options seed the paper attacks' parameters; explicit caller
  // params win over both the options and the schema defaults.
  attacks::ParamMap merged = DefaultAttackParams(attack);
  for (const auto& [key, value] : params)
    merged.insert_or_assign(key, value);
  attacks::EventCraftContext ctx;
  ctx.time_bins = options_.time_bins;
  ctx.seed = options_.sparse.seed;
  return impl.CraftEvents(model.net, test_, ctx, merged);
}

data::EventDataset DvsWorkbench::Craft(const TrainedModel& model,
                                       AttackKind kind) const {
  return Craft(model, AttackName(kind));
}

attacks::ParamMap DvsWorkbench::DefaultAttackParams(
    std::string_view attack) const {
  attacks::ParamMap params;
  if (attack == "Sparse") {
    params.emplace("max_iterations",
                   static_cast<double>(options_.sparse.max_iterations));
    params.emplace("events_per_iteration",
                   static_cast<double>(options_.sparse.events_per_iteration));
    params.emplace("min_spacing",
                   static_cast<double>(options_.sparse.min_spacing));
  } else if (attack == "Frame") {
    params.emplace("period_ms",
                   static_cast<double>(options_.frame.period_ms));
    params.emplace("border", static_cast<double>(options_.frame.border));
    params.emplace("both_polarities",
                   options_.frame.both_polarities ? 1.0 : 0.0);
  }
  return params;
}

snn::Network DvsWorkbench::MakeAx(const TrainedModel& model, double level,
                                  approx::Precision precision) const {
  return MakeAx(model, VariantSpec{precision, level, std::nullopt});
}

snn::Network DvsWorkbench::MakeAx(const TrainedModel& model,
                                  const VariantSpec& spec) const {
  approx::ApproxConfig cfg;
  cfg.level = spec.level;
  cfg.precision = spec.precision;
  cfg.time_steps = model.time_bins;
  cfg.threshold_gain = options_.threshold_gain;
  cfg.int8_kernels = options_.int8_kernels;
  cfg.kernel_mode = spec.kernel_mode.value_or(options_.kernel_mode);
  cfg.event_path = options_.event_path;
  auto [ax, report] = approx::MakeApproximate(model.net, cfg,
                                              model.calibration);
  (void)report;
  return std::move(ax);
}

float DvsWorkbench::AccuracyPct(snn::Network& victim,
                                const data::EventDataset& streams,
                                const std::optional<AqfConfig>& aqf) const {
  const data::EventDataset* eval_set = &streams;
  data::EventDataset filtered;
  if (aqf.has_value()) {
    filtered = AqfFilterDataset(streams, *aqf);
    eval_set = &filtered;
  }
  if (!victim.has_post_layer_hook() &&  // fault hooks are dense-path only
      snn::ResolveEventPathMode(victim.event_path()) ==
          snn::EventPathMode::kEvent) {
    return 100.0f * AccuracyEventStreams(victim, *eval_set,
                                         options_.time_bins,
                                         options_.eval_batch);
  }
  Tensor frames = data::BinDataset(*eval_set, options_.time_bins);
  return 100.0f * snn::AccuracyTemporal(victim, frames, eval_set->labels,
                                        options_.eval_batch);
}

std::vector<float> DvsWorkbench::EvaluateVariants(
    const TrainedModel& model, const data::EventDataset& streams,
    const std::optional<AqfConfig>& aqf,
    std::span<const VariantSpec> specs) const {
  // Filter and bin once, shared read-only by every cell — the serial path
  // repeats this per variant, so the fan-out also removes redundant work.
  const data::EventDataset* eval_set = &streams;
  data::EventDataset filtered;
  if (aqf.has_value()) {
    filtered = AqfFilterDataset(streams, *aqf);
    eval_set = &filtered;
  }
  // Every cell shares the options-level event_path (MakeAx applies it), so
  // the routing decision is uniform: on the event path, skip the dense
  // binning entirely — each cell bins per-chunk packed streams instead.
  const bool event_path = snn::ResolveEventPathMode(options_.event_path) ==
                          snn::EventPathMode::kEvent;
  Tensor frames;
  if (!event_path) frames = data::BinDataset(*eval_set, options_.time_bins);
  std::vector<float> robustness(specs.size(), 0.0f);
  runtime::ParallelFor(
      0, static_cast<long>(specs.size()),
      [&](long i) {
        const VariantSpec& spec = specs[static_cast<std::size_t>(i)];
        snn::Network ax = MakeAx(model, spec);
        robustness[static_cast<std::size_t>(i)] =
            event_path
                ? 100.0f * AccuracyEventStreams(ax, *eval_set,
                                                options_.time_bins,
                                                options_.eval_batch)
                : 100.0f * snn::AccuracyTemporal(ax, frames,
                                                 eval_set->labels,
                                                 options_.eval_batch);
      },
      /*grain=*/1);
  return robustness;
}

}  // namespace axsnn::core
