#include "core/search.hpp"

#include "scenario/engine.hpp"
#include "tensor/check.hpp"

namespace axsnn::core {

namespace {

void ValidateSpace(const SearchSpace& space, bool need_time_steps) {
  AXSNN_CHECK(!space.v_thresholds.empty(), "empty Vth axis");
  AXSNN_CHECK(!need_time_steps || !space.time_steps.empty(),
              "empty time-step axis");
  AXSNN_CHECK(!space.precisions.empty(), "empty precision axis");
  AXSNN_CHECK(!space.approx_levels.empty(), "empty approximation-level axis");
}

/// The configured attack, resolved through the registry: the explicit
/// attack_name wins over the enum spelling, unknown names throw with the
/// registered list.
const attacks::Attack& ResolveAttack(const SearchConfig& config) {
  const std::string name = config.attack_name.empty()
                               ? AttackName(config.attack)
                               : config.attack_name;
  const attacks::Attack& attack = attacks::GetAttack(name);
  (void)attack.ResolveParams(config.attack_params);
  return attack;
}

/// Tracks the maximum-robustness candidate across the whole sweep,
/// independent of whether any candidate has met the quality constraint.
/// (The previous version keyed the overwrite on `outcome.found`, which made
/// every pre-`found` candidate clobber `best` — the best-effort fallback
/// then reported the *last* candidate instead of the strongest one.)
/// Strict `>` keeps the earliest candidate on ties, matching Algorithm 1's
/// grid-order preference.
struct BestTracker {
  bool has_best = false;

  void Offer(SearchOutcome& outcome, const CandidateResult& candidate) {
    if (!has_best ||
        candidate.robustness_pct > outcome.best.robustness_pct) {
      outcome.best = candidate;
      has_best = true;
    }
  }
};

/// The (precision, level) grid of one structural cell, in Algorithm 1's
/// iteration order.
std::vector<VariantSpec> GridSpecs(const SearchSpace& space) {
  std::vector<VariantSpec> specs;
  specs.reserve(space.precisions.size() * space.approx_levels.size());
  for (approx::Precision precision : space.precisions)
    for (double level : space.approx_levels)
      specs.push_back({precision, level, std::nullopt});
  return specs;
}

/// Folds the fan-out results of one structural cell back into the outcome in
/// grid order, reproducing Algorithm 1 lines 15-24 exactly: the trace stops
/// at the winning candidate under return_first, just like the serial loop.
/// Returns true when the search should stop.
bool AccumulateCell(SearchOutcome& outcome, BestTracker& best,
                    const SearchConfig& config, CandidateResult base,
                    std::span<const VariantSpec> specs,
                    std::span<const float> robustness) {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    CandidateResult candidate = base;
    candidate.precision = specs[i].precision;
    candidate.level = specs[i].level;
    candidate.robustness_pct = robustness[i];
    outcome.trace.push_back(candidate);
    // Every candidate competes for `best`: failing candidates all sit below
    // Q, so the max is still the first hit whenever one exists, and when
    // nothing meets Q the best-effort answer is the strongest candidate.
    best.Offer(outcome, candidate);
    if (candidate.robustness_pct >= config.quality_constraint_pct) {
      outcome.found = true;
      if (config.return_first) return true;
    }
  }
  return false;
}

/// The search grid as a declarative scenario: structural axes from the
/// space, one attack spec from the config, the training gate as
/// min_train_accuracy_pct (Algorithm 1 line 4).
scenario::ScenarioGrid MakeSearchGrid(const SearchSpace& space,
                                      const SearchConfig& config,
                                      const attacks::Attack& attack) {
  scenario::ScenarioGrid grid;
  grid.v_thresholds = space.v_thresholds;
  if (!space.time_steps.empty()) grid.time_steps = space.time_steps;
  grid.attacks = {
      scenario::AttackSpec{attack.name(), config.attack_params}};
  grid.epsilons = {static_cast<double>(config.epsilon)};
  grid.precisions = space.precisions;
  grid.levels = space.approx_levels;
  grid.min_train_accuracy_pct = config.quality_constraint_pct;
  return grid;
}

/// Folds a full-grid scenario outcome back into a SearchOutcome in grid
/// order; gated structural cells contribute nothing, exactly like the
/// serial walk's `continue` on the training gate.
SearchOutcome FoldGridOutcome(const scenario::ScenarioOutcome& grid_outcome,
                              const SearchConfig& config,
                              std::span<const VariantSpec> specs) {
  SearchOutcome outcome;
  BestTracker best;
  const scenario::ScenarioGrid& grid = grid_outcome.grid;
  const std::size_t block = specs.size();
  for (std::size_t iv = 0; iv < grid.v_thresholds.size(); ++iv) {
    for (std::size_t it = 0; it < grid.time_steps.size(); ++it) {
      const std::size_t base = grid.Index(iv, it, 0, 0, 0, 0, 0, 0);
      if (!grid_outcome.evaluated[base]) continue;  // line 4: gated cell
      CandidateResult cell;
      cell.v_threshold = grid.v_thresholds[iv];
      cell.time_steps = grid_outcome.cells[base].time_steps;
      cell.train_accuracy_pct = grid_outcome.train_accuracy_pct[base];
      (void)AccumulateCell(
          outcome, best, config, cell, specs,
          std::span<const float>(grid_outcome.robustness_pct)
              .subspan(base, block));
    }
  }
  return outcome;
}

}  // namespace

SearchOutcome PrecisionScalingSearch(const StaticWorkbench& bench,
                                     const SearchSpace& space,
                                     const SearchConfig& config,
                                     scenario::StaticScenarioEngine* engine) {
  ValidateSpace(space, /*need_time_steps=*/true);
  const attacks::Attack& attack = ResolveAttack(config);
  AXSNN_CHECK(attack.supports_static(),
              "static search needs a static-capable attack — '"
                  << attack.name() << "' applies to event datasets only");

  AXSNN_CHECK(engine == nullptr || &engine->bench() == &bench,
              "the supplied scenario engine wraps a different workbench");
  const std::vector<VariantSpec> specs = GridSpecs(space);

  if (!config.return_first) {
    // Whole-grid mode: one declarative scenario on the engine.
    scenario::StaticScenarioEngine local(bench);
    scenario::StaticScenarioEngine& exec = engine ? *engine : local;
    return FoldGridOutcome(exec.Run(MakeSearchGrid(space, config, attack)),
                           config, specs);
  }

  // First-hit mode: the paper's serial grid walk, stopping at the first
  // candidate meeting Q (so later structural cells never train). A provided
  // engine still shares its trained-model cache.
  SearchOutcome outcome;
  BestTracker best;
  for (float vth : space.v_thresholds) {
    for (long t : space.time_steps) {
      // Line 3: train the accurate SNN at this structural cell.
      StaticWorkbench::TrainedModel local_model;
      const StaticWorkbench::TrainedModel* model;
      if (engine != nullptr) {
        model = &engine->TrainCached(vth, t);
      } else {
        local_model = bench.Train(vth, t);
        model = &local_model;
      }
      // Line 4: quality gate on learning.
      if (model->train_accuracy_pct < config.quality_constraint_pct) continue;
      // Line 5: adversarial examples crafted on the accurate model.
      Tensor adversarial = bench.Craft(*model, attack.name(), config.epsilon,
                                       config.attack_params);

      // Lines 8-21 for the whole (precision, level) grid of this structural
      // cell: independent variants fan out on the runtime pool.
      const std::vector<float> robustness =
          bench.EvaluateVariants(*model, adversarial, specs);

      // Lines 22-24: fold back in grid order; accept on the quality
      // constraint exactly like the serial loop.
      CandidateResult base;
      base.v_threshold = vth;
      base.time_steps = t;
      base.train_accuracy_pct = model->train_accuracy_pct;
      if (AccumulateCell(outcome, best, config, base, specs, robustness))
        return outcome;
    }
  }
  // When nothing met Q, `best` already holds the strongest candidate seen
  // (found stays false) — the best-effort answer for any return_first mode.
  return outcome;
}

SearchOutcome PrecisionScalingSearch(const DvsWorkbench& bench,
                                     const SearchSpace& space,
                                     const SearchConfig& config,
                                     scenario::DvsScenarioEngine* engine) {
  ValidateSpace(space, /*need_time_steps=*/false);
  const attacks::Attack& attack = ResolveAttack(config);
  AXSNN_CHECK(attack.supports_events(),
              "neuromorphic search needs an event-capable attack — '"
                  << attack.name() << "' applies to static batches only");

  AXSNN_CHECK(engine == nullptr || &engine->bench() == &bench,
              "the supplied scenario engine wraps a different workbench");
  const std::optional<AqfConfig> aqf =
      config.neuromorphic ? std::optional<AqfConfig>(config.aqf)
                          : std::nullopt;
  const std::vector<VariantSpec> specs = GridSpecs(space);

  if (!config.return_first) {
    scenario::ScenarioGrid grid = MakeSearchGrid(space, config, attack);
    grid.time_steps = {bench.options().time_bins};  // binning fixes T
    grid.epsilons = {0.0};                          // no event epsilon
    grid.aqfs = {aqf};
    scenario::DvsScenarioEngine local(bench);
    scenario::DvsScenarioEngine& exec = engine ? *engine : local;
    return FoldGridOutcome(exec.Run(grid), config, specs);
  }

  SearchOutcome outcome;
  BestTracker best;
  for (float vth : space.v_thresholds) {
    DvsWorkbench::TrainedModel local_model;
    const DvsWorkbench::TrainedModel* model;
    if (engine != nullptr) {
      model = &engine->TrainCached(vth);
    } else {
      local_model = bench.Train(vth);
      model = &local_model;
    }
    if (model->train_accuracy_pct < config.quality_constraint_pct) continue;
    data::EventDataset adversarial =
        bench.Craft(*model, attack.name(), config.attack_params);

    const std::vector<float> robustness =
        bench.EvaluateVariants(*model, adversarial, aqf, specs);

    CandidateResult base;
    base.v_threshold = vth;
    base.time_steps = model->time_bins;
    base.train_accuracy_pct = model->train_accuracy_pct;
    if (AccumulateCell(outcome, best, config, base, specs, robustness))
      return outcome;
  }
  return outcome;
}

}  // namespace axsnn::core
