#include "core/search.hpp"

#include "tensor/check.hpp"

namespace axsnn::core {

namespace {

void ValidateSpace(const SearchSpace& space, bool need_time_steps) {
  AXSNN_CHECK(!space.v_thresholds.empty(), "empty Vth axis");
  AXSNN_CHECK(!need_time_steps || !space.time_steps.empty(),
              "empty time-step axis");
  AXSNN_CHECK(!space.precisions.empty(), "empty precision axis");
  AXSNN_CHECK(!space.approx_levels.empty(), "empty approximation-level axis");
}

/// Keeps the best-so-far candidate when not returning the first hit.
void UpdateBest(SearchOutcome& outcome, const CandidateResult& candidate) {
  if (!outcome.found || candidate.robustness_pct > outcome.best.robustness_pct)
    outcome.best = candidate;
}

}  // namespace

SearchOutcome PrecisionScalingSearch(const StaticWorkbench& bench,
                                     const SearchSpace& space,
                                     const SearchConfig& config) {
  ValidateSpace(space, /*need_time_steps=*/true);
  AXSNN_CHECK(config.attack == AttackKind::kPgd ||
                  config.attack == AttackKind::kBim ||
                  config.attack == AttackKind::kNone,
              "static search supports PGD/BIM/none attacks");

  SearchOutcome outcome;
  for (float vth : space.v_thresholds) {
    for (long t : space.time_steps) {
      // Line 3: train the accurate SNN at this structural cell.
      StaticWorkbench::TrainedModel model = bench.Train(vth, t);
      // Line 4: quality gate on learning.
      if (model.train_accuracy_pct < config.quality_constraint_pct) continue;
      // Line 5: adversarial examples crafted on the accurate model.
      Tensor adversarial = bench.Craft(model, config.attack, config.epsilon);

      for (approx::Precision precision : space.precisions) {
        for (double level : space.approx_levels) {
          // Lines 8-11: precision-scale, derive ath, approximate.
          snn::Network ax = bench.MakeAx(model, level, precision);
          // Lines 15-21: measure robustness on the attacked test set.
          CandidateResult candidate;
          candidate.v_threshold = vth;
          candidate.time_steps = t;
          candidate.precision = precision;
          candidate.level = level;
          candidate.train_accuracy_pct = model.train_accuracy_pct;
          candidate.robustness_pct = bench.AccuracyPct(ax, adversarial, t);
          outcome.trace.push_back(candidate);

          // Lines 22-24: accept when the quality constraint holds.
          if (candidate.robustness_pct >= config.quality_constraint_pct) {
            UpdateBest(outcome, candidate);
            outcome.found = true;
            if (config.return_first) return outcome;
          } else if (!config.return_first) {
            UpdateBest(outcome, candidate);
          }
        }
      }
    }
  }
  // When nothing met Q and we were asked for the best effort, report the
  // strongest candidate seen (found stays false).
  if (!outcome.found && !config.return_first && !outcome.trace.empty()) {
    outcome.best = outcome.trace.front();
    for (const CandidateResult& c : outcome.trace) UpdateBest(outcome, c);
  }
  return outcome;
}

SearchOutcome PrecisionScalingSearch(const DvsWorkbench& bench,
                                     const SearchSpace& space,
                                     const SearchConfig& config) {
  ValidateSpace(space, /*need_time_steps=*/false);
  AXSNN_CHECK(config.attack == AttackKind::kSparse ||
                  config.attack == AttackKind::kFrame ||
                  config.attack == AttackKind::kNone,
              "neuromorphic search supports Sparse/Frame/none attacks");

  SearchOutcome outcome;
  const std::optional<AqfConfig> aqf =
      config.neuromorphic ? std::optional<AqfConfig>(config.aqf)
                          : std::nullopt;

  for (float vth : space.v_thresholds) {
    DvsWorkbench::TrainedModel model = bench.Train(vth);
    if (model.train_accuracy_pct < config.quality_constraint_pct) continue;
    data::EventDataset adversarial = bench.Craft(model, config.attack);

    for (approx::Precision precision : space.precisions) {
      for (double level : space.approx_levels) {
        snn::Network ax = bench.MakeAx(model, level, precision);
        CandidateResult candidate;
        candidate.v_threshold = vth;
        candidate.time_steps = model.time_bins;
        candidate.precision = precision;
        candidate.level = level;
        candidate.train_accuracy_pct = model.train_accuracy_pct;
        candidate.robustness_pct = bench.AccuracyPct(ax, adversarial, aqf);
        outcome.trace.push_back(candidate);

        if (candidate.robustness_pct >= config.quality_constraint_pct) {
          UpdateBest(outcome, candidate);
          outcome.found = true;
          if (config.return_first) return outcome;
        } else if (!config.return_first) {
          UpdateBest(outcome, candidate);
        }
      }
    }
  }
  if (!outcome.found && !config.return_first && !outcome.trace.empty()) {
    outcome.best = outcome.trace.front();
    for (const CandidateResult& c : outcome.trace) UpdateBest(outcome, c);
  }
  return outcome;
}

}  // namespace axsnn::core
