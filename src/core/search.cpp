#include "core/search.hpp"

#include "tensor/check.hpp"

namespace axsnn::core {

namespace {

void ValidateSpace(const SearchSpace& space, bool need_time_steps) {
  AXSNN_CHECK(!space.v_thresholds.empty(), "empty Vth axis");
  AXSNN_CHECK(!need_time_steps || !space.time_steps.empty(),
              "empty time-step axis");
  AXSNN_CHECK(!space.precisions.empty(), "empty precision axis");
  AXSNN_CHECK(!space.approx_levels.empty(), "empty approximation-level axis");
}

/// Keeps the best-so-far candidate when not returning the first hit.
void UpdateBest(SearchOutcome& outcome, const CandidateResult& candidate) {
  if (!outcome.found || candidate.robustness_pct > outcome.best.robustness_pct)
    outcome.best = candidate;
}

/// The (precision, level) grid of one structural cell, in Algorithm 1's
/// iteration order.
std::vector<VariantSpec> GridSpecs(const SearchSpace& space) {
  std::vector<VariantSpec> specs;
  specs.reserve(space.precisions.size() * space.approx_levels.size());
  for (approx::Precision precision : space.precisions)
    for (double level : space.approx_levels)
      specs.push_back({precision, level});
  return specs;
}

/// Folds the fan-out results of one structural cell back into the outcome in
/// grid order, reproducing Algorithm 1 lines 15-24 exactly: the trace stops
/// at the winning candidate under return_first, just like the serial loop.
/// Returns true when the search should stop.
bool AccumulateCell(SearchOutcome& outcome, const SearchConfig& config,
                    CandidateResult base,
                    std::span<const VariantSpec> specs,
                    std::span<const float> robustness) {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    CandidateResult candidate = base;
    candidate.precision = specs[i].precision;
    candidate.level = specs[i].level;
    candidate.robustness_pct = robustness[i];
    outcome.trace.push_back(candidate);
    if (candidate.robustness_pct >= config.quality_constraint_pct) {
      UpdateBest(outcome, candidate);
      outcome.found = true;
      if (config.return_first) return true;
    } else if (!config.return_first) {
      UpdateBest(outcome, candidate);
    }
  }
  return false;
}

}  // namespace

SearchOutcome PrecisionScalingSearch(const StaticWorkbench& bench,
                                     const SearchSpace& space,
                                     const SearchConfig& config) {
  ValidateSpace(space, /*need_time_steps=*/true);
  AXSNN_CHECK(config.attack == AttackKind::kPgd ||
                  config.attack == AttackKind::kBim ||
                  config.attack == AttackKind::kNone,
              "static search supports PGD/BIM/none attacks");

  SearchOutcome outcome;
  const std::vector<VariantSpec> specs = GridSpecs(space);
  for (float vth : space.v_thresholds) {
    for (long t : space.time_steps) {
      // Line 3: train the accurate SNN at this structural cell.
      StaticWorkbench::TrainedModel model = bench.Train(vth, t);
      // Line 4: quality gate on learning.
      if (model.train_accuracy_pct < config.quality_constraint_pct) continue;
      // Line 5: adversarial examples crafted on the accurate model.
      Tensor adversarial = bench.Craft(model, config.attack, config.epsilon);

      // Lines 8-21 for the whole (precision, level) grid of this structural
      // cell: independent variants fan out on the runtime pool.
      const std::vector<float> robustness =
          bench.EvaluateVariants(model, adversarial, specs);

      // Lines 22-24: fold back in grid order; accept on the quality
      // constraint exactly like the serial loop.
      CandidateResult base;
      base.v_threshold = vth;
      base.time_steps = t;
      base.train_accuracy_pct = model.train_accuracy_pct;
      if (AccumulateCell(outcome, config, base, specs, robustness))
        return outcome;
    }
  }
  // When nothing met Q and we were asked for the best effort, report the
  // strongest candidate seen (found stays false).
  if (!outcome.found && !config.return_first && !outcome.trace.empty()) {
    outcome.best = outcome.trace.front();
    for (const CandidateResult& c : outcome.trace) UpdateBest(outcome, c);
  }
  return outcome;
}

SearchOutcome PrecisionScalingSearch(const DvsWorkbench& bench,
                                     const SearchSpace& space,
                                     const SearchConfig& config) {
  ValidateSpace(space, /*need_time_steps=*/false);
  AXSNN_CHECK(config.attack == AttackKind::kSparse ||
                  config.attack == AttackKind::kFrame ||
                  config.attack == AttackKind::kNone,
              "neuromorphic search supports Sparse/Frame/none attacks");

  SearchOutcome outcome;
  const std::optional<AqfConfig> aqf =
      config.neuromorphic ? std::optional<AqfConfig>(config.aqf)
                          : std::nullopt;
  const std::vector<VariantSpec> specs = GridSpecs(space);

  for (float vth : space.v_thresholds) {
    DvsWorkbench::TrainedModel model = bench.Train(vth);
    if (model.train_accuracy_pct < config.quality_constraint_pct) continue;
    data::EventDataset adversarial = bench.Craft(model, config.attack);

    const std::vector<float> robustness =
        bench.EvaluateVariants(model, adversarial, aqf, specs);

    CandidateResult base;
    base.v_threshold = vth;
    base.time_steps = model.time_bins;
    base.train_accuracy_pct = model.train_accuracy_pct;
    if (AccumulateCell(outcome, config, base, specs, robustness))
      return outcome;
  }
  if (!outcome.found && !config.return_first && !outcome.trace.empty()) {
    outcome.best = outcome.trace.front();
    for (const CandidateResult& c : outcome.trace) UpdateBest(outcome, c);
  }
  return outcome;
}

}  // namespace axsnn::core
