#include "core/search.hpp"

#include "tensor/check.hpp"

namespace axsnn::core {

namespace {

void ValidateSpace(const SearchSpace& space, bool need_time_steps) {
  AXSNN_CHECK(!space.v_thresholds.empty(), "empty Vth axis");
  AXSNN_CHECK(!need_time_steps || !space.time_steps.empty(),
              "empty time-step axis");
  AXSNN_CHECK(!space.precisions.empty(), "empty precision axis");
  AXSNN_CHECK(!space.approx_levels.empty(), "empty approximation-level axis");
}

/// Tracks the maximum-robustness candidate across the whole sweep,
/// independent of whether any candidate has met the quality constraint.
/// (The previous version keyed the overwrite on `outcome.found`, which made
/// every pre-`found` candidate clobber `best` — the best-effort fallback
/// then reported the *last* candidate instead of the strongest one.)
/// Strict `>` keeps the earliest candidate on ties, matching Algorithm 1's
/// grid-order preference.
struct BestTracker {
  bool has_best = false;

  void Offer(SearchOutcome& outcome, const CandidateResult& candidate) {
    if (!has_best ||
        candidate.robustness_pct > outcome.best.robustness_pct) {
      outcome.best = candidate;
      has_best = true;
    }
  }
};

/// The (precision, level) grid of one structural cell, in Algorithm 1's
/// iteration order.
std::vector<VariantSpec> GridSpecs(const SearchSpace& space) {
  std::vector<VariantSpec> specs;
  specs.reserve(space.precisions.size() * space.approx_levels.size());
  for (approx::Precision precision : space.precisions)
    for (double level : space.approx_levels)
      specs.push_back({precision, level});
  return specs;
}

/// Folds the fan-out results of one structural cell back into the outcome in
/// grid order, reproducing Algorithm 1 lines 15-24 exactly: the trace stops
/// at the winning candidate under return_first, just like the serial loop.
/// Returns true when the search should stop.
bool AccumulateCell(SearchOutcome& outcome, BestTracker& best,
                    const SearchConfig& config, CandidateResult base,
                    std::span<const VariantSpec> specs,
                    std::span<const float> robustness) {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    CandidateResult candidate = base;
    candidate.precision = specs[i].precision;
    candidate.level = specs[i].level;
    candidate.robustness_pct = robustness[i];
    outcome.trace.push_back(candidate);
    // Every candidate competes for `best`: failing candidates all sit below
    // Q, so the max is still the first hit whenever one exists, and when
    // nothing meets Q the best-effort answer is the strongest candidate.
    best.Offer(outcome, candidate);
    if (candidate.robustness_pct >= config.quality_constraint_pct) {
      outcome.found = true;
      if (config.return_first) return true;
    }
  }
  return false;
}

}  // namespace

SearchOutcome PrecisionScalingSearch(const StaticWorkbench& bench,
                                     const SearchSpace& space,
                                     const SearchConfig& config) {
  ValidateSpace(space, /*need_time_steps=*/true);
  AXSNN_CHECK(config.attack == AttackKind::kPgd ||
                  config.attack == AttackKind::kBim ||
                  config.attack == AttackKind::kNone,
              "static search supports PGD/BIM/none attacks");

  SearchOutcome outcome;
  BestTracker best;
  const std::vector<VariantSpec> specs = GridSpecs(space);
  for (float vth : space.v_thresholds) {
    for (long t : space.time_steps) {
      // Line 3: train the accurate SNN at this structural cell.
      StaticWorkbench::TrainedModel model = bench.Train(vth, t);
      // Line 4: quality gate on learning.
      if (model.train_accuracy_pct < config.quality_constraint_pct) continue;
      // Line 5: adversarial examples crafted on the accurate model.
      Tensor adversarial = bench.Craft(model, config.attack, config.epsilon);

      // Lines 8-21 for the whole (precision, level) grid of this structural
      // cell: independent variants fan out on the runtime pool.
      const std::vector<float> robustness =
          bench.EvaluateVariants(model, adversarial, specs);

      // Lines 22-24: fold back in grid order; accept on the quality
      // constraint exactly like the serial loop.
      CandidateResult base;
      base.v_threshold = vth;
      base.time_steps = t;
      base.train_accuracy_pct = model.train_accuracy_pct;
      if (AccumulateCell(outcome, best, config, base, specs, robustness))
        return outcome;
    }
  }
  // When nothing met Q, `best` already holds the strongest candidate seen
  // (found stays false) — the best-effort answer for any return_first mode.
  return outcome;
}

SearchOutcome PrecisionScalingSearch(const DvsWorkbench& bench,
                                     const SearchSpace& space,
                                     const SearchConfig& config) {
  ValidateSpace(space, /*need_time_steps=*/false);
  AXSNN_CHECK(config.attack == AttackKind::kSparse ||
                  config.attack == AttackKind::kFrame ||
                  config.attack == AttackKind::kNone,
              "neuromorphic search supports Sparse/Frame/none attacks");

  SearchOutcome outcome;
  BestTracker best;
  const std::optional<AqfConfig> aqf =
      config.neuromorphic ? std::optional<AqfConfig>(config.aqf)
                          : std::nullopt;
  const std::vector<VariantSpec> specs = GridSpecs(space);

  for (float vth : space.v_thresholds) {
    DvsWorkbench::TrainedModel model = bench.Train(vth);
    if (model.train_accuracy_pct < config.quality_constraint_pct) continue;
    data::EventDataset adversarial = bench.Craft(model, config.attack);

    const std::vector<float> robustness =
        bench.EvaluateVariants(model, adversarial, aqf, specs);

    CandidateResult base;
    base.v_threshold = vth;
    base.time_steps = model.time_bins;
    base.train_accuracy_pct = model.train_accuracy_pct;
    if (AccumulateCell(outcome, best, config, base, specs, robustness))
      return outcome;
  }
  return outcome;
}

}  // namespace axsnn::core
