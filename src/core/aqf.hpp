// Approximate Quantization-aware Filtering (AQF) — the paper's Algorithm 2.
//
// AQF defends event-driven (DVS) inputs, where pixel-space defenses do not
// apply. It exploits the fact that genuine DVS events are spatio-temporally
// correlated (a moving edge activates neighbouring pixels within a short
// window), whereas adversarial perturbation events are not:
//
//  1. Timestamps are quantized with step qt — the "approximate" part, which
//     also reduces downstream event-processing energy.
//  2. An event is kept only if a *neighbouring* pixel (within spatial window
//     s, excluding the pixel itself) fired within the temporal threshold T2
//     before it — uncorrelated events (sparse-attack injections, sensor
//     shot noise) fail this test and are removed.
//  3. Pixels that fire more than T1 times within a T2 window are flagged
//     hyperactive and all their events are removed — this is what defeats
//     the Frame Attack, whose boundary pixels fire continuously.
//
// Defaults (s = 2, T1 = 5, T2 = 50) follow Algorithm 2 line 2 verbatim.
#pragma once

#include "data/event.hpp"

namespace axsnn::core {

/// AQF parameters. Members mirror Algorithm 2's inputs/constants.
struct AqfConfig {
  /// Timestamp quantization step qt in *seconds* (the unit Table II uses:
  /// 0.015 s and 0.01 s). 0 disables quantization.
  float quantization_step_s = 0.015f;
  /// Spatial correlation window s (pixels, Chebyshev radius).
  int spatial_window = 2;
  /// Hyperactivity threshold T1 (events per pixel per T2 window).
  int activity_threshold = 5;
  /// Temporal correlation threshold T2 (ms).
  float temporal_threshold_ms = 50.0f;
};

/// Statistics of one filtering pass (useful for tests and reports).
struct AqfStats {
  long input_events = 0;
  long removed_uncorrelated = 0;  ///< failed the neighbour-support test
  long removed_hyperactive = 0;   ///< on a pixel flagged by the T1 rule
  long output_events = 0;
};

/// Filters one stream; optionally reports statistics via `stats`.
data::EventStream AqfFilter(const data::EventStream& stream,
                            const AqfConfig& cfg, AqfStats* stats = nullptr);

/// Filters every stream in a dataset (parallel over streams).
data::EventDataset AqfFilterDataset(const data::EventDataset& dataset,
                                    const AqfConfig& cfg);

}  // namespace axsnn::core
