#include "core/aqf.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::core {

data::EventStream AqfFilter(const data::EventStream& stream,
                            const AqfConfig& cfg, AqfStats* stats) {
  AXSNN_CHECK(cfg.spatial_window >= 1, "spatial window must be >= 1");
  AXSNN_CHECK(cfg.activity_threshold >= 1, "activity threshold must be >= 1");
  AXSNN_CHECK(cfg.temporal_threshold_ms > 0.0f,
              "temporal threshold must be positive");
  AXSNN_CHECK(cfg.quantization_step_s >= 0.0f,
              "quantization step must be non-negative");

  const long w = stream.width;
  const long h = stream.height;
  AXSNN_CHECK(w > 0 && h > 0, "stream has no sensor geometry");

  AqfStats local_stats;
  local_stats.input_events = stream.size();

  // --- Step 1: timestamp quantization (Algorithm 2, line 4). -------------
  std::vector<data::Event> events = stream.events;
  if (cfg.quantization_step_s > 0.0f) {
    const float qt_ms = cfg.quantization_step_s * 1000.0f;
    for (data::Event& e : events)
      e.t = std::nearbyint(e.t / qt_ms) * qt_ms;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const data::Event& a, const data::Event& b) {
                     return a.t < b.t;
                   });

  // --- Step 2: hyperactivity flags (Algorithm 2, lines 10-17). -----------
  // A pixel firing more than T1 times inside any sliding T2 window is
  // flagged; all its events are dropped (frame-attack border pixels).
  std::vector<std::vector<float>> per_pixel_times(
      static_cast<std::size_t>(w * h));
  for (const data::Event& e : events) {
    if (e.x < 0 || e.x >= w || e.y < 0 || e.y >= h) continue;
    per_pixel_times[static_cast<std::size_t>(e.y * w + e.x)].push_back(e.t);
  }
  std::vector<char> hyperactive(static_cast<std::size_t>(w * h), 0);
  for (std::size_t p = 0; p < per_pixel_times.size(); ++p) {
    const auto& times = per_pixel_times[p];  // sorted (events were sorted)
    const std::size_t t1 = static_cast<std::size_t>(cfg.activity_threshold);
    if (times.size() <= t1) continue;
    for (std::size_t i = 0; i + t1 < times.size(); ++i) {
      // More than T1 events within one T2 window?
      if (times[i + t1] - times[i] <= cfg.temporal_threshold_ms) {
        hyperactive[p] = 1;
        break;
      }
    }
  }

  // --- Step 3: spatio-temporal correlation test (lines 5-9, 18-20). ------
  // M[i][j] holds the last event timestamp seen at pixel (j, i), kept per
  // polarity: a genuine moving edge produces same-polarity activity in a
  // neighbourhood, whereas an injected event sitting on opposite-polarity
  // activity is still uncorrelated. An event survives only if some *other*
  // pixel within the s-window fired with the same polarity within T2
  // before it.
  constexpr float kNever = -1e30f;
  std::vector<float> last_time_on(static_cast<std::size_t>(w * h), kNever);
  std::vector<float> last_time_off(static_cast<std::size_t>(w * h), kNever);

  data::EventStream out;
  out.width = stream.width;
  out.height = stream.height;
  out.duration_ms = stream.duration_ms;
  out.events.reserve(events.size());

  const int s = cfg.spatial_window;
  for (const data::Event& e : events) {
    if (e.x < 0 || e.x >= w || e.y < 0 || e.y >= h) continue;
    const std::size_t p = static_cast<std::size_t>(e.y * w + e.x);
    std::vector<float>& same_polarity =
        e.polarity > 0 ? last_time_on : last_time_off;

    bool keep = true;
    if (hyperactive[p]) {
      keep = false;
      ++local_stats.removed_hyperactive;
    } else {
      bool supported = false;
      for (long i = e.y - s; i <= e.y + s && !supported; ++i) {
        if (i < 0 || i >= h) continue;
        for (long j = e.x - s; j <= e.x + s; ++j) {
          if (j < 0 || j >= w) continue;
          if (i == e.y && j == e.x) continue;  // the pixel itself (line 7)
          const std::size_t q = static_cast<std::size_t>(i * w + j);
          if (hyperactive[q]) continue;  // support from attacked pixels is void
          if (e.t - same_polarity[q] <= cfg.temporal_threshold_ms &&
              same_polarity[q] <= e.t) {
            supported = true;
            break;
          }
        }
      }
      if (!supported) {
        keep = false;
        ++local_stats.removed_uncorrelated;
      }
    }

    // Every observed event updates the support map (Algorithm 2 updates M
    // before the removal decision): genuine activity must be able to
    // bootstrap itself at stream start.
    same_polarity[p] = e.t;
    if (keep) out.events.push_back(e);
  }

  local_stats.output_events = out.size();
  if (stats != nullptr) *stats = local_stats;
  return out;
}

data::EventDataset AqfFilterDataset(const data::EventDataset& dataset,
                                    const AqfConfig& cfg) {
  data::EventDataset out = dataset;
  const long n = dataset.size();
  runtime::ParallelFor(0, n, [&](long i) {
    out.streams[static_cast<std::size_t>(i)] =
        AqfFilter(dataset.streams[static_cast<std::size_t>(i)], cfg);
  });
  return out;
}

}  // namespace axsnn::core
