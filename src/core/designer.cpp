#include "core/designer.hpp"

#include <stdexcept>

namespace axsnn::core {

StaticDesign DesignSecureAxsnn(const StaticWorkbench& bench,
                               const SearchSpace& space,
                               const SearchConfig& config) {
  SearchOutcome outcome = PrecisionScalingSearch(bench, space, config);
  if (!outcome.found && config.return_first) {
    throw std::runtime_error(
        "axsnn: no configuration met the quality constraint; widen the "
        "search space or lower Q");
  }
  StaticDesign design;
  design.accurate =
      bench.Train(outcome.best.v_threshold, outcome.best.time_steps);
  design.axsnn = bench.MakeAx(design.accurate, outcome.best.level,
                              outcome.best.precision);
  design.outcome = std::move(outcome);
  return design;
}

DvsDesign DesignSecureAxsnn(const DvsWorkbench& bench,
                            const SearchSpace& space,
                            const SearchConfig& config) {
  SearchOutcome outcome = PrecisionScalingSearch(bench, space, config);
  if (!outcome.found && config.return_first) {
    throw std::runtime_error(
        "axsnn: no configuration met the quality constraint; widen the "
        "search space or lower Q");
  }
  DvsDesign design;
  design.accurate = bench.Train(outcome.best.v_threshold);
  design.axsnn = bench.MakeAx(design.accurate, outcome.best.level,
                              outcome.best.precision);
  design.outcome = std::move(outcome);
  return design;
}

}  // namespace axsnn::core
