// Precision-Scaling search — the paper's Algorithm 1.
//
// Sweeps (threshold voltage, time steps) x (precision scale) x
// (approximation level): trains an accurate SNN per structural cell, gates
// it on the quality constraint Q, crafts adversarial examples on the
// accurate model, derives each approximate variant via Eq. (1), optionally
// AQF-filters neuromorphic inputs, and measures the robustness
//   R(eps) = (1 - adv_successes / |Dts|) * 100
// (line 21) — i.e. the accuracy on the attacked test set. The first
// configuration with R >= Q is returned (lines 22-24); the full trace of
// evaluated candidates is kept for reporting (Table I / Table II).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/workbench.hpp"

namespace axsnn::scenario {
class StaticScenarioEngine;
class DvsScenarioEngine;
}  // namespace axsnn::scenario

namespace axsnn::core {

/// The swept parameter grid (Algorithm 1 inputs).
struct SearchSpace {
  std::vector<float> v_thresholds;           // Vth = [v1 ... vn]
  std::vector<long> time_steps;              // T   = [t1 ... tn]
  std::vector<approx::Precision> precisions; // sl  = [s1 ... sn]
  std::vector<double> approx_levels;         // candidate ath levels
};

/// Non-grid inputs of Algorithm 1.
struct SearchConfig {
  AttackKind attack = AttackKind::kPgd;
  /// Registry attack overriding `attack` when non-empty: any registered
  /// attack applicable to the workbench works (attacks/registry.hpp), so
  /// searches cover registry-only attacks without an enum case.
  std::string attack_name;
  /// Parameter overrides for the attack (validated against its schema).
  attacks::ParamMap attack_params;
  /// Perturbation budget (gradient attacks only).
  float epsilon = 1.0f;
  /// Quality constraint Q [%]: minimum training accuracy for a structural
  /// cell to qualify (line 4) and minimum robustness to accept (line 22).
  float quality_constraint_pct = 85.0f;
  /// Neuromorphic dataset flag Fd: applies AQF before evaluation.
  bool neuromorphic = false;
  /// AQF settings used when `neuromorphic` (qt et al., Algorithm 2).
  AqfConfig aqf;
  /// Stop at the first candidate meeting Q (the paper's behaviour). When
  /// false, the whole grid is evaluated and the best candidate returned.
  bool return_first = true;
};

/// One evaluated (Vth, T, precision, level) candidate.
struct CandidateResult {
  float v_threshold = 0.0f;
  long time_steps = 0;
  approx::Precision precision = approx::Precision::kFp32;
  double level = 0.0;
  float train_accuracy_pct = 0.0f;  ///< accurate model, clean training data
  float robustness_pct = 0.0f;      ///< R(eps): accuracy on attacked test set
};

/// Search result: the chosen candidate (if any) plus the full trace.
struct SearchOutcome {
  /// True when some candidate met the quality constraint Q.
  bool found = false;
  /// The maximum-robustness candidate over the evaluated trace (earliest on
  /// ties, i.e. Algorithm 1's grid-order preference). When `found`, this is
  /// the winning candidate; otherwise it is the best-effort fallback —
  /// meaningful only when the trace is non-empty.
  CandidateResult best;
  std::vector<CandidateResult> trace;
};

/// Algorithm 1 over a static-image task (any static-capable registry
/// attack; the paper uses PGD/BIM).
///
/// Execution: with `return_first` the paper's serial grid walk runs, early-
/// exiting at the first candidate meeting Q; otherwise the whole grid is a
/// declarative ScenarioGrid executed on the scenario engine (training gate
/// included) and folded back in grid order — bit-identical to the serial
/// walk. Passing `engine` shares its trained-model and crafted-set caches
/// across searches (e.g. Table I's PGD and BIM searches of one structural
/// cell train it once); nullptr uses a search-local engine.
SearchOutcome PrecisionScalingSearch(
    const StaticWorkbench& bench, const SearchSpace& space,
    const SearchConfig& config,
    scenario::StaticScenarioEngine* engine = nullptr);

/// Algorithm 1 over an event-stream task (any event-capable registry
/// attack, optional AQF). Time steps are fixed by the workbench's binning,
/// so the time_steps axis of `space` is ignored here.
SearchOutcome PrecisionScalingSearch(
    const DvsWorkbench& bench, const SearchSpace& space,
    const SearchConfig& config,
    scenario::DvsScenarioEngine* engine = nullptr);

}  // namespace axsnn::core
