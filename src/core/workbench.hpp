// Experiment workbenches: one-stop train/attack/approximate/evaluate
// plumbing shared by Algorithm 1, the benchmark harnesses and the examples.
//
// A workbench owns a train/test split and the model-building options, and
// exposes the four primitives the paper's experiments compose:
//   Train(vth, T)      -> accurate SNN at given structural parameters
//   Craft(model, kind) -> adversarial test set (crafted on the *accurate*
//                         model, per the paper's threat model Section III)
//   MakeAx(...)        -> approximate variant (Eq. 1 + precision scaling)
//   AccuracyPct(...)   -> evaluation, rate-encoded like the paper's setup
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "approx/approximation.hpp"
#include "attacks/gradient_attacks.hpp"
#include "attacks/neuromorphic_attacks.hpp"
#include "attacks/registry.hpp"
#include "core/aqf.hpp"
#include "data/dvs_gesture.hpp"
#include "data/event.hpp"
#include "data/synthetic_mnist.hpp"
#include "snn/models.hpp"
#include "snn/trainer.hpp"

namespace axsnn::core {

/// The four attack families of the paper plus "no attack". Kept as a
/// convenience spelling of the common cases — every kind resolves to a
/// registry attack by name, and the registry (attacks/registry.hpp) is the
/// open set the scenario engine sweeps over.
enum class AttackKind { kNone, kPgd, kBim, kSparse, kFrame };

/// Canonical registry name of `kind` ("none" / "PGD" / "BIM" / "Sparse" /
/// "Frame"), sourced from the registered attack object.
std::string AttackName(AttackKind kind);

/// One approximate-variant cell of the paper's sweep grid: the (precision
/// scale, approximation level) pair derived from a trained accurate model,
/// plus an optional kernel-implementation override (bit-identical across
/// modes — a perf axis, never an accuracy one).
struct VariantSpec {
  approx::Precision precision = approx::Precision::kFp32;
  double level = 0.0;
  std::optional<kernels::KernelMode> kernel_mode;  ///< unset: Options value
};

// ---------------------------------------------------------------------------
// Static-dataset workbench (MNIST-class experiments)
// ---------------------------------------------------------------------------

/// Workbench over a static image dataset.
class StaticWorkbench {
 public:
  struct Options {
    snn::StaticNetOptions net;
    snn::TrainConfig train;
    /// Training unrolls at most this many time steps even when the
    /// structural T is larger (rate statistics are stationary in time; see
    /// DESIGN.md scale note). Evaluation always uses the full T.
    long train_time_steps_cap = 12;
    /// Attack unrolling cap, for the same reason.
    long attack_time_steps_cap = 12;
    /// PGD/BIM iteration count.
    long attack_steps = 10;
    snn::Encoding eval_encoding = snn::Encoding::kRate;
    long eval_batch = 128;
    /// Eq. (1) calibration constant for this architecture (see
    /// approx::ApproxConfig::threshold_gain).
    double threshold_gain = 3.0;
    /// Execute kInt8 variants on the integer backend (int8 weights,
    /// per-output-channel scales, int32 accumulation). False keeps the
    /// float fake-quantization emulation for every precision.
    bool int8_kernels = true;
    /// Kernel implementation for derived variants (src/kernels/ dispatch:
    /// auto | naive | gemm | sparse; all bit-identical). kAuto probes spike
    /// density per call; AXSNN_KERNEL_MODE overrides.
    kernels::KernelMode kernel_mode = kernels::KernelMode::kAuto;
    std::uint64_t seed = 5;
  };

  /// An accurate SNN trained at one (Vth, T) cell, plus everything needed
  /// to derive approximate variants from it.
  struct TrainedModel {
    snn::Network net;
    float v_threshold = 0.0f;
    long time_steps = 0;
    float train_accuracy_pct = 0.0f;
    approx::CalibrationStats calibration;
  };

  StaticWorkbench(data::StaticDataset train_set, data::StaticDataset test_set,
                  Options options);

  /// Trains an accurate SNN with threshold voltage `vth` and observation
  /// window `time_steps` (Algorithm 1, line 3).
  TrainedModel Train(float vth, long time_steps) const;

  /// Crafts adversarial test images on the accurate model (Alg. 1 line 5)
  /// via the attack registry: any registered attack with static support
  /// works, unknown names throw with the registered list. "none" returns
  /// the clean test images. `params` overrides the attack's schema
  /// defaults. The model is const: white-box attacks craft on a clone.
  Tensor Craft(const TrainedModel& model, std::string_view attack,
               float epsilon, const attacks::ParamMap& params = {}) const;

  /// Enum convenience overload: Craft(model, AttackName(kind), epsilon).
  Tensor Craft(const TrainedModel& model, AttackKind kind,
               float epsilon) const;

  /// Builds the approximate variant (Alg. 1 lines 8-11).
  snn::Network MakeAx(const TrainedModel& model, double level,
                      approx::Precision precision) const;

  /// Variant-spec overload; applies spec.kernel_mode when set.
  snn::Network MakeAx(const TrainedModel& model,
                      const VariantSpec& spec) const;

  /// Test accuracy [%] of `victim` on `images`, rate-encoded over the
  /// model's structural T. This equals the paper's robustness R(eps) when
  /// `images` are adversarial (Alg. 1 line 21).
  float AccuracyPct(snn::Network& victim, const Tensor& images,
                    long time_steps) const;

  /// Robustness [%] of every approximate variant of `model` on `images`.
  /// The cells are independent: each one derives its own network clone
  /// (MakeAx) and evaluates on the global runtime pool, with kernel-level
  /// parallelism inside a cell throttled to inline. Results align with
  /// `specs` and are identical at any pool size, including 1.
  std::vector<float> EvaluateVariants(const TrainedModel& model,
                                      const Tensor& images,
                                      std::span<const VariantSpec> specs) const;

  const data::StaticDataset& train_set() const { return train_; }
  const data::StaticDataset& test_set() const { return test_; }
  const Options& options() const { return options_; }

 private:
  data::StaticDataset train_;
  data::StaticDataset test_;
  Options options_;
};

// ---------------------------------------------------------------------------
// Neuromorphic workbench (DVS-Gesture-class experiments)
// ---------------------------------------------------------------------------

/// Workbench over an event-stream dataset.
class DvsWorkbench {
 public:
  struct Options {
    snn::DvsNetOptions net;
    snn::TrainConfig train;
    /// Frames per stream fed to the SNN (T time bins).
    long time_bins = 20;
    attacks::SparseAttackConfig sparse;
    attacks::FrameAttackConfig frame;
    long eval_batch = 64;
    /// Eq. (1) calibration constant for the DVS architecture: level 0.1
    /// keeps clean accuracy (Table II operating point).
    double threshold_gain = 0.3;
    /// Execute kInt8 variants on the integer backend (see
    /// StaticWorkbench::Options::int8_kernels).
    bool int8_kernels = true;
    /// Kernel implementation for derived variants (see
    /// StaticWorkbench::Options::kernel_mode).
    kernels::KernelMode kernel_mode = kernels::KernelMode::kAuto;
    /// Temporal execution path for derived variants and evaluation: dense
    /// [T, B, ...] frame tensors vs the compressed spike-stream event path
    /// (streaming per-chunk binning, skip-on-silent timesteps). Predictions
    /// are bit-identical either way; AXSNN_EVENT_PATH overrides, kAuto
    /// resolves to dense — the same precedence scheme as kernel_mode.
    snn::EventPathMode event_path = snn::EventPathMode::kAuto;
    std::uint64_t seed = 17;
  };

  struct TrainedModel {
    snn::Network net;
    float v_threshold = 0.0f;
    long time_bins = 0;
    float train_accuracy_pct = 0.0f;
    approx::CalibrationStats calibration;
  };

  DvsWorkbench(data::EventDataset train_set, data::EventDataset test_set,
               Options options);

  /// Trains an accurate SNN with the given threshold voltage.
  TrainedModel Train(float vth) const;

  /// Attacks the test streams via the attack registry: any registered
  /// attack with event support works (white-box attacks craft on a clone of
  /// the accurate model; model-free attacks ignore it; "none" returns the
  /// clean streams). `params` overrides DefaultAttackParams(attack).
  data::EventDataset Craft(const TrainedModel& model, std::string_view attack,
                           const attacks::ParamMap& params = {}) const;

  /// Enum convenience overload: Craft(model, AttackName(kind)).
  data::EventDataset Craft(const TrainedModel& model, AttackKind kind) const;

  /// The options-derived parameter overrides this workbench applies for
  /// `attack` before caller `params`: Options::sparse / Options::frame for
  /// the paper's two attacks, empty otherwise (schema defaults apply).
  attacks::ParamMap DefaultAttackParams(std::string_view attack) const;

  /// Builds the approximate variant.
  snn::Network MakeAx(const TrainedModel& model, double level,
                      approx::Precision precision) const;

  /// Variant-spec overload; applies spec.kernel_mode when set.
  snn::Network MakeAx(const TrainedModel& model,
                      const VariantSpec& spec) const;

  /// Test accuracy [%] of `victim` on `streams`, optionally AQF-filtered
  /// first (Alg. 1 lines 12-14 with the neuromorphic flag set).
  float AccuracyPct(snn::Network& victim, const data::EventDataset& streams,
                    const std::optional<AqfConfig>& aqf = std::nullopt) const;

  /// Robustness [%] of every approximate variant of `model` on `streams`
  /// (optionally AQF-filtered once, shared by all cells). Independent cells
  /// fan out on the global runtime pool; results align with `specs` and are
  /// identical at any pool size.
  std::vector<float> EvaluateVariants(
      const TrainedModel& model, const data::EventDataset& streams,
      const std::optional<AqfConfig>& aqf,
      std::span<const VariantSpec> specs) const;

  const data::EventDataset& train_set() const { return train_; }
  const data::EventDataset& test_set() const { return test_; }
  const Options& options() const { return options_; }

 private:
  data::EventDataset train_;
  data::EventDataset test_;
  Tensor train_frames_;  // pre-binned [N, T, 2, H, W]
  Options options_;
};

}  // namespace axsnn::core
