// Event-camera (DVS) data structures.
//
// A dynamic vision sensor emits an asynchronous stream of events
// (x, y, p, t): pixel coordinates, polarity (brightness increase/decrease)
// and timestamp. This mirrors the representation in the paper's Algorithm 2,
// which filters exactly these tuples. Timestamps are float milliseconds from
// stream start.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/spike_stream.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::data {

/// One DVS event. Polarity is +1 (ON, brightness increase) or -1 (OFF).
struct Event {
  std::int16_t x = 0;
  std::int16_t y = 0;
  std::int8_t polarity = 1;
  float t = 0.0f;  ///< milliseconds since stream start

  friend bool operator==(const Event&, const Event&) = default;
};

/// A recorded event stream with its sensor geometry.
struct EventStream {
  long width = 0;
  long height = 0;
  float duration_ms = 0.0f;
  std::vector<Event> events;  ///< sorted by timestamp (generators guarantee it)

  long size() const { return static_cast<long>(events.size()); }
};

/// A labelled set of event streams (all sharing one sensor geometry).
struct EventDataset {
  std::vector<EventStream> streams;
  std::vector<int> labels;
  long width = 0;
  long height = 0;
  float duration_ms = 0.0f;
  int num_classes = 0;

  long size() const { return static_cast<long>(streams.size()); }
};

/// Bins one stream into `time_bins` binary occupancy frames
/// [T, 2, H, W] — channel 0 holds OFF events, channel 1 ON events. Events
/// outside [0, duration_ms) or off-sensor are ignored (robust to attacked
/// streams that push events out of range).
Tensor BinEvents(const EventStream& stream, long time_bins);

/// Bins a whole dataset into [N, T, 2, H, W] frames.
Tensor BinDataset(const EventDataset& dataset, long time_bins);

/// Streaming ingestion for the event path: bins one stream straight into a
/// compressed spike stream (batch 1, sample shape {2, H, W}), setting
/// exactly the bits BinEvents would set to 1.0f — same bin rule, same
/// tolerance for out-of-range events. Never builds the dense [T, 2, H, W]
/// tensor.
void BinEventsPacked(const EventStream& stream, long time_bins,
                     kernels::SpikeStream& out);

/// Bins dataset streams [lo, hi) into a compressed spike stream whose
/// sample s corresponds to dataset stream lo + s. Chunk-at-a-time: callers
/// walk a large dataset one evaluation batch per call, so no [N, T, ...]
/// dense buffer ever exists. Bit-for-bit the packed form of the matching
/// BinDataset rows.
void BinRangePacked(const EventDataset& dataset, long lo, long hi,
                    long time_bins, kernels::SpikeStream& out);

}  // namespace axsnn::data
