#include "data/event.hpp"

#include <algorithm>

#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::data {

Tensor BinEvents(const EventStream& stream, long time_bins) {
  AXSNN_CHECK(time_bins > 0, "time_bins must be positive");
  AXSNN_CHECK(stream.width > 0 && stream.height > 0,
              "stream has no sensor geometry");
  AXSNN_CHECK(stream.duration_ms > 0.0f, "stream duration must be positive");
  Tensor frames({time_bins, 2, stream.height, stream.width});
  const float bin_ms = stream.duration_ms / static_cast<float>(time_bins);
  for (const Event& e : stream.events) {
    if (e.x < 0 || e.x >= stream.width || e.y < 0 || e.y >= stream.height)
      continue;
    if (e.t < 0.0f || e.t >= stream.duration_ms) continue;
    const long bin = std::min<long>(static_cast<long>(e.t / bin_ms),
                                    time_bins - 1);
    const long channel = e.polarity > 0 ? 1 : 0;
    frames(bin, channel, e.y, e.x) = 1.0f;
  }
  return frames;
}

Tensor BinDataset(const EventDataset& dataset, long time_bins) {
  AXSNN_CHECK(!dataset.streams.empty(), "empty event dataset");
  const long n = dataset.size();
  Tensor out({n, time_bins, 2, dataset.height, dataset.width});
  const long per_sample = out.numel() / n;
  runtime::ParallelFor(0, n, [&](long i) {
    Tensor frames = BinEvents(dataset.streams[static_cast<std::size_t>(i)],
                              time_bins);
    std::copy(frames.data(), frames.data() + per_sample,
              out.data() + i * per_sample);
  });
  return out;
}

}  // namespace axsnn::data
