#include "data/event.hpp"

#include <algorithm>
#include <cstdint>

#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::data {

namespace {

/// Maps an event to its (time bin, offset within the [2, H, W] sample
/// plane). Returns false for events the binning ignores — off-sensor or
/// outside [0, duration_ms) — so dense and packed binning share one rule
/// and stay tolerant of attacked streams that push events out of range.
inline bool BinIndex(const Event& e, long width, long height,
                     float duration_ms, float bin_ms, long time_bins,
                     long& bin, long& offset) {
  if (e.x < 0 || e.x >= width || e.y < 0 || e.y >= height) return false;
  if (e.t < 0.0f || e.t >= duration_ms) return false;
  bin = std::min<long>(static_cast<long>(e.t / bin_ms), time_bins - 1);
  const long channel = e.polarity > 0 ? 1 : 0;
  offset = (channel * height + e.y) * width + e.x;
  return true;
}

void CheckBinArgs(const EventStream& stream, long time_bins) {
  AXSNN_CHECK(time_bins > 0, "time_bins must be positive");
  AXSNN_CHECK(stream.width > 0 && stream.height > 0,
              "stream has no sensor geometry");
  AXSNN_CHECK(stream.duration_ms > 0.0f, "stream duration must be positive");
}

/// Sets sample `s` of `out` to the packed bits of `stream`'s binning.
/// `out` must already be configured (zero-filled) with {2, H, W} planes.
void BinStreamIntoSample(const EventStream& stream, long time_bins,
                         kernels::SpikeStream& out, long s) {
  const float bin_ms = stream.duration_ms / static_cast<float>(time_bins);
  for (const Event& e : stream.events) {
    long bin = 0, offset = 0;
    if (!BinIndex(e, stream.width, stream.height, stream.duration_ms, bin_ms,
                  time_bins, bin, offset))
      continue;
    out.SampleWords(bin, s)[offset >> 6] |=
        std::uint64_t{1} << (offset & 63);
  }
}

}  // namespace

Tensor BinEvents(const EventStream& stream, long time_bins) {
  CheckBinArgs(stream, time_bins);
  Tensor frames({time_bins, 2, stream.height, stream.width});
  const long plane = 2 * stream.height * stream.width;
  const float bin_ms = stream.duration_ms / static_cast<float>(time_bins);
  float* fd = frames.data();
  for (const Event& e : stream.events) {
    long bin = 0, offset = 0;
    if (!BinIndex(e, stream.width, stream.height, stream.duration_ms, bin_ms,
                  time_bins, bin, offset))
      continue;
    fd[bin * plane + offset] = 1.0f;
  }
  return frames;
}

Tensor BinDataset(const EventDataset& dataset, long time_bins) {
  AXSNN_CHECK(!dataset.streams.empty(), "empty event dataset");
  const long n = dataset.size();
  Tensor out({n, time_bins, 2, dataset.height, dataset.width});
  const long per_sample = out.numel() / n;
  runtime::ParallelFor(0, n, [&](long i) {
    Tensor frames = BinEvents(dataset.streams[static_cast<std::size_t>(i)],
                              time_bins);
    std::copy(frames.data(), frames.data() + per_sample,
              out.data() + i * per_sample);
  });
  return out;
}

void BinEventsPacked(const EventStream& stream, long time_bins,
                     kernels::SpikeStream& out) {
  CheckBinArgs(stream, time_bins);
  out.Configure(time_bins, 1, {2, stream.height, stream.width});
  BinStreamIntoSample(stream, time_bins, out, 0);
  out.FinalizeCounts();
}

void BinRangePacked(const EventDataset& dataset, long lo, long hi,
                    long time_bins, kernels::SpikeStream& out) {
  AXSNN_CHECK(time_bins > 0, "time_bins must be positive");
  AXSNN_CHECK(lo >= 0 && lo < hi && hi <= dataset.size(),
              "BinRangePacked: bad stream range [" << lo << ", " << hi
                                                   << ") of "
                                                   << dataset.size());
  AXSNN_CHECK(dataset.width > 0 && dataset.height > 0,
              "dataset has no sensor geometry");
  // Validate serially first: AXSNN_CHECK throws, and throwing from inside
  // a worker lambda must not happen.
  for (long s = lo; s < hi; ++s)
    CheckBinArgs(dataset.streams[static_cast<std::size_t>(s)], time_bins);
  out.Configure(time_bins, hi - lo, {2, dataset.height, dataset.width});
  runtime::ParallelFor(0, hi - lo, [&](long s) {
    BinStreamIntoSample(dataset.streams[static_cast<std::size_t>(lo + s)],
                        time_bins, out, s);
  });
  out.FinalizeCounts();
}

}  // namespace axsnn::data
