#include "data/synthetic_mnist.hpp"

#include <array>
#include <cmath>
#include <numeric>

#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::data {

namespace {

struct Point {
  float x;
  float y;
};

using Stroke = std::vector<Point>;

/// Closed/open arc helper: samples `n` points of an ellipse arc centred at
/// (cx, cy) with radii (rx, ry) from angle a0 to a1 (radians).
Stroke Arc(float cx, float cy, float rx, float ry, float a0, float a1,
           int n = 12) {
  Stroke s;
  s.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const float a = a0 + (a1 - a0) * static_cast<float>(i) /
                             static_cast<float>(n - 1);
    s.push_back({cx + rx * std::cos(a), cy + ry * std::sin(a)});
  }
  return s;
}

/// Canonical stroke sets per digit, coordinates in the unit square with the
/// y-axis pointing down (image convention).
std::vector<Stroke> DigitStrokes(int digit) {
  constexpr float kPi = 3.14159265358979323846f;
  switch (digit) {
    case 0:
      return {Arc(0.5f, 0.5f, 0.26f, 0.36f, 0.0f, 2.0f * kPi, 20)};
    case 1:
      return {{{0.38f, 0.28f}, {0.54f, 0.12f}, {0.54f, 0.88f}}};
    case 2:
      return {Arc(0.5f, 0.30f, 0.24f, 0.18f, -kPi, 0.0f, 10),
              {{0.74f, 0.30f}, {0.28f, 0.86f}, {0.76f, 0.86f}}};
    case 3:
      return {Arc(0.47f, 0.30f, 0.22f, 0.17f, -kPi * 0.9f, kPi * 0.5f, 10),
              Arc(0.47f, 0.68f, 0.24f, 0.19f, -kPi * 0.5f, kPi * 0.9f, 10)};
    case 4:
      return {{{0.62f, 0.10f}, {0.24f, 0.62f}, {0.82f, 0.62f}},
              {{0.62f, 0.10f}, {0.62f, 0.90f}}};
    case 5:
      return {{{0.74f, 0.14f}, {0.32f, 0.14f}, {0.30f, 0.48f}},
              Arc(0.48f, 0.66f, 0.24f, 0.21f, -kPi * 0.55f, kPi * 0.8f, 12)};
    case 6:
      return {{{0.66f, 0.10f}, {0.40f, 0.42f}, {0.32f, 0.62f}},
              Arc(0.50f, 0.68f, 0.20f, 0.20f, 0.0f, 2.0f * kPi, 14)};
    case 7:
      return {{{0.24f, 0.14f}, {0.78f, 0.14f}, {0.42f, 0.88f}}};
    case 8:
      return {Arc(0.5f, 0.30f, 0.20f, 0.17f, 0.0f, 2.0f * kPi, 14),
              Arc(0.5f, 0.68f, 0.23f, 0.20f, 0.0f, 2.0f * kPi, 14)};
    case 9:
      return {Arc(0.52f, 0.32f, 0.20f, 0.20f, 0.0f, 2.0f * kPi, 14),
              {{0.72f, 0.34f}, {0.66f, 0.88f}}};
    default:
      AXSNN_CHECK(false, "digit must be in [0, 9], got " << digit);
      return {};
  }
}

/// Stamps a Gaussian pen dab at floating-point position (px, py).
void StampPen(Tensor& image, float px, float py, float sigma) {
  const long h = image.dim(1);
  const long w = image.dim(2);
  const long radius = static_cast<long>(std::ceil(3.0f * sigma));
  const long cx = static_cast<long>(std::floor(px));
  const long cy = static_cast<long>(std::floor(py));
  const float inv2s2 = 1.0f / (2.0f * sigma * sigma);
  for (long y = cy - radius; y <= cy + radius; ++y) {
    if (y < 0 || y >= h) continue;
    for (long x = cx - radius; x <= cx + radius; ++x) {
      if (x < 0 || x >= w) continue;
      const float dx = static_cast<float>(x) + 0.5f - px;
      const float dy = static_cast<float>(y) + 0.5f - py;
      const float v = std::exp(-(dx * dx + dy * dy) * inv2s2);
      float& pixel = image(0, y, x);
      pixel = std::max(pixel, v);
    }
  }
}

}  // namespace

Tensor RenderDigit(int digit, const SyntheticMnistOptions& options, Rng& rng) {
  AXSNN_CHECK(options.height >= 8 && options.width >= 8,
              "image too small to render digits");
  Tensor image({1, options.height, options.width});

  // Per-sample jitter draw.
  const float angle = static_cast<float>(
      rng.Uniform(-options.max_rotation, options.max_rotation));
  const float scale = static_cast<float>(
      rng.Uniform(1.0 - options.scale_jitter, 1.0 + options.scale_jitter));
  const float shift_x = static_cast<float>(
      rng.Uniform(-options.max_shift, options.max_shift));
  const float shift_y = static_cast<float>(
      rng.Uniform(-options.max_shift, options.max_shift));
  const float sigma = options.pen_sigma *
                      static_cast<float>(rng.Uniform(0.85, 1.2));
  const float cos_a = std::cos(angle);
  const float sin_a = std::sin(angle);

  const float sx = static_cast<float>(options.width);
  const float sy = static_cast<float>(options.height);

  for (Stroke stroke : DigitStrokes(digit)) {
    // Handwriting wobble: independent per-vertex displacement.
    if (options.wobble > 0.0f) {
      for (Point& p : stroke) {
        p.x += static_cast<float>(rng.Uniform(-options.wobble, options.wobble));
        p.y += static_cast<float>(rng.Uniform(-options.wobble, options.wobble));
      }
    }
    for (std::size_t i = 0; i + 1 < stroke.size(); ++i) {
      const Point a = stroke[i];
      const Point b = stroke[i + 1];
      const float seg_len = std::hypot(b.x - a.x, b.y - a.y);
      const int steps = std::max(2, static_cast<int>(seg_len * sx * 2.0f));
      for (int s = 0; s <= steps; ++s) {
        const float u = static_cast<float>(s) / static_cast<float>(steps);
        // Point on the canonical stroke, centred for rotation/scale.
        const float ux = a.x + (b.x - a.x) * u - 0.5f;
        const float uy = a.y + (b.y - a.y) * u - 0.5f;
        const float rx = scale * (cos_a * ux - sin_a * uy) + 0.5f + shift_x;
        const float ry = scale * (sin_a * ux + cos_a * uy) + 0.5f + shift_y;
        StampPen(image, rx * sx, ry * sy, sigma);
      }
    }
  }

  if (options.noise > 0.0f) {
    for (float& v : image.flat())
      v = std::min(1.0f, v + static_cast<float>(
                                 rng.Uniform(0.0, options.noise)));
  }
  return image;
}

StaticDataset MakeSyntheticMnist(const SyntheticMnistOptions& options) {
  AXSNN_CHECK(options.count > 0, "count must be positive");
  StaticDataset ds;
  ds.num_classes = 10;
  ds.images = Tensor({options.count, 1, options.height, options.width});
  ds.labels.resize(static_cast<std::size_t>(options.count));

  Rng master(options.seed);
  // Balanced class sequence, then a deterministic shuffle.
  for (long i = 0; i < options.count; ++i)
    ds.labels[static_cast<std::size_t>(i)] = static_cast<int>(i % 10);
  for (long i = options.count - 1; i > 0; --i) {
    const long j = static_cast<long>(
        master.UniformInt(static_cast<std::uint64_t>(i + 1)));
    std::swap(ds.labels[static_cast<std::size_t>(i)],
              ds.labels[static_cast<std::size_t>(j)]);
  }

  const long per_sample = ds.images.numel() / options.count;
  // Per-sample forked RNGs keep each digit a pure function of (seed, i), so
  // the dataset is identical at any pool size.
  runtime::ParallelFor(0, options.count, [&](long i) {
    Rng rng = master.Fork(static_cast<std::uint64_t>(i) + 1);
    Tensor img =
        RenderDigit(ds.labels[static_cast<std::size_t>(i)], options, rng);
    std::copy(img.data(), img.data() + per_sample,
              ds.images.data() + i * per_sample);
  });
  return ds;
}

}  // namespace axsnn::data
