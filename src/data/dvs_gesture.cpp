#include "data/dvs_gesture.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::data {

namespace {

constexpr float kPi = 3.14159265358979323846f;

struct Blob {
  float x;  // normalized [0, 1]
  float y;
  float amplitude = 1.0f;
};

/// Per-sample randomized path parameters.
struct PathJitter {
  float phase;     // radians
  float speed;     // multiplier around 1
  float offset_x;  // normalized
  float offset_y;
  float radius;    // normalized orbit radius
};

/// Positions of the scene blobs at normalized time u in [0, 1).
/// Classes: 0 circle CW, 1 circle CCW, 2 swipe left, 3 swipe right,
/// 4 swipe up, 5 swipe down, 6 main diagonal, 7 anti diagonal,
/// 8 zoom in (two blobs converge), 9 zoom out (diverge), 10 figure eight.
void BlobsAt(int cls, float u, const PathJitter& j, Blob out[2],
             int& blob_count) {
  blob_count = 1;
  const float w = 2.0f * kPi * j.speed;  // one revolution per stream
  const float cx = 0.5f + j.offset_x;
  const float cy = 0.5f + j.offset_y;
  switch (cls) {
    case 0:  // circle clockwise
      out[0] = {cx + j.radius * std::cos(w * u + j.phase),
                cy + j.radius * std::sin(w * u + j.phase)};
      break;
    case 1:  // circle counter-clockwise
      out[0] = {cx + j.radius * std::cos(-w * u + j.phase),
                cy + j.radius * std::sin(-w * u + j.phase)};
      break;
    case 2: {  // swipe left (right edge -> left edge, repeats)
      const float p = std::fmod(u * j.speed * 2.0f + j.phase / (2.0f * kPi),
                                1.0f);
      out[0] = {1.05f - 1.1f * p, cy + 0.08f * std::sin(3.0f * w * u)};
      break;
    }
    case 3: {  // swipe right
      const float p = std::fmod(u * j.speed * 2.0f + j.phase / (2.0f * kPi),
                                1.0f);
      out[0] = {-0.05f + 1.1f * p, cy + 0.08f * std::sin(3.0f * w * u)};
      break;
    }
    case 4: {  // swipe up (bottom -> top)
      const float p = std::fmod(u * j.speed * 2.0f + j.phase / (2.0f * kPi),
                                1.0f);
      out[0] = {cx + 0.08f * std::sin(3.0f * w * u), 1.05f - 1.1f * p};
      break;
    }
    case 5: {  // swipe down
      const float p = std::fmod(u * j.speed * 2.0f + j.phase / (2.0f * kPi),
                                1.0f);
      out[0] = {cx + 0.08f * std::sin(3.0f * w * u), -0.05f + 1.1f * p};
      break;
    }
    case 6: {  // main diagonal, back and forth
      const float p = 0.5f + 0.5f * std::sin(w * u + j.phase);
      out[0] = {0.15f + 0.7f * p, 0.15f + 0.7f * p};
      break;
    }
    case 7: {  // anti diagonal
      const float p = 0.5f + 0.5f * std::sin(w * u + j.phase);
      out[0] = {0.85f - 0.7f * p, 0.15f + 0.7f * p};
      break;
    }
    case 8: {  // zoom in: two blobs converge to the centre, restart
      const float p = std::fmod(u * j.speed + j.phase / (2.0f * kPi), 1.0f);
      const float d = 0.38f * (1.0f - p);
      out[0] = {cx - d, cy - d};
      out[1] = {cx + d, cy + d};
      blob_count = 2;
      break;
    }
    case 9: {  // zoom out: two blobs diverge from the centre, restart
      const float p = std::fmod(u * j.speed + j.phase / (2.0f * kPi), 1.0f);
      const float d = 0.38f * p;
      out[0] = {cx - d, cy + d};
      out[1] = {cx + d, cy - d};
      blob_count = 2;
      break;
    }
    case 10:  // figure eight (Lissajous 1:2)
      out[0] = {cx + 1.2f * j.radius * std::sin(w * u + j.phase),
                cy + 0.8f * j.radius * std::sin(2.0f * (w * u + j.phase))};
      break;
    default:
      AXSNN_CHECK(false, "gesture class must be in [0, " << kGestureClasses
                                                         << "), got " << cls);
  }
}

}  // namespace

std::string GestureName(int cls) {
  static const char* kNames[kGestureClasses] = {
      "circle_cw",  "circle_ccw", "swipe_left", "swipe_right",
      "swipe_up",   "swipe_down", "diag_main",  "diag_anti",
      "zoom_in",    "zoom_out",   "figure_eight"};
  AXSNN_CHECK(cls >= 0 && cls < kGestureClasses, "bad gesture class " << cls);
  return kNames[cls];
}

EventStream SimulateGesture(int cls, const DvsGestureOptions& options,
                            Rng& rng) {
  AXSNN_CHECK(options.width > 0 && options.height > 0, "bad sensor geometry");
  AXSNN_CHECK(options.dt_ms > 0.0f && options.duration_ms > options.dt_ms,
              "bad timing options");
  AXSNN_CHECK(options.contrast_threshold > 0.0f,
              "contrast threshold must be positive");

  EventStream stream;
  stream.width = options.width;
  stream.height = options.height;
  stream.duration_ms = options.duration_ms;

  PathJitter jitter;
  jitter.phase = static_cast<float>(rng.Uniform(0.0, 2.0 * kPi));
  jitter.speed = static_cast<float>(rng.Uniform(0.85, 1.2));
  jitter.offset_x = static_cast<float>(rng.Uniform(-0.06, 0.06));
  jitter.offset_y = static_cast<float>(rng.Uniform(-0.06, 0.06));
  jitter.radius = static_cast<float>(rng.Uniform(0.22, 0.3));

  const long w = options.width;
  const long h = options.height;
  const float sigma_px = options.blob_sigma *
                         static_cast<float>(rng.Uniform(0.9, 1.15));
  const float inv2s2 = 1.0f / (2.0f * sigma_px * sigma_px);
  const long steps =
      static_cast<long>(options.duration_ms / options.dt_ms);

  // Per-pixel DVS reference level (initialized to the first frame so the
  // stream starts quiet, like a real sensor after settling).
  std::vector<float> reference(static_cast<std::size_t>(w * h), 0.0f);
  std::vector<float> intensity(static_cast<std::size_t>(w * h), 0.0f);

  Blob blobs[2];
  int blob_count = 0;

  auto render = [&](float u, std::vector<float>& out) {
    BlobsAt(cls, u, jitter, blobs, blob_count);
    for (long y = 0; y < h; ++y) {
      for (long x = 0; x < w; ++x) {
        float v = 0.0f;
        for (int b = 0; b < blob_count; ++b) {
          const float bx = blobs[b].x * static_cast<float>(w);
          const float by = blobs[b].y * static_cast<float>(h);
          const float dx = static_cast<float>(x) + 0.5f - bx;
          const float dy = static_cast<float>(y) + 0.5f - by;
          v += blobs[b].amplitude * std::exp(-(dx * dx + dy * dy) * inv2s2);
        }
        out[static_cast<std::size_t>(y * w + x)] = v;
      }
    }
  };

  render(0.0f, reference);

  const float threshold = options.contrast_threshold;
  const double noise_p =
      static_cast<double>(options.noise_rate_hz) * options.dt_ms * 1e-3;

  for (long step = 1; step <= steps; ++step) {
    const float t_ms = static_cast<float>(step) * options.dt_ms;
    const float u = static_cast<float>(step) / static_cast<float>(steps);
    render(u, intensity);

    for (long y = 0; y < h; ++y) {
      for (long x = 0; x < w; ++x) {
        const std::size_t p = static_cast<std::size_t>(y * w + x);
        // Emit one event per threshold crossing, stepping the reference —
        // the standard DVS pixel model.
        while (intensity[p] - reference[p] > threshold) {
          stream.events.push_back(
              {static_cast<std::int16_t>(x), static_cast<std::int16_t>(y),
               std::int8_t{1},
               t_ms - options.dt_ms *
                          static_cast<float>(rng.Uniform(0.0, 1.0))});
          reference[p] += threshold;
        }
        while (reference[p] - intensity[p] > threshold) {
          stream.events.push_back(
              {static_cast<std::int16_t>(x), static_cast<std::int16_t>(y),
               std::int8_t{-1},
               t_ms - options.dt_ms *
                          static_cast<float>(rng.Uniform(0.0, 1.0))});
          reference[p] -= threshold;
        }
        // Uncorrelated shot noise.
        if (noise_p > 0.0 && rng.Bernoulli(noise_p)) {
          stream.events.push_back(
              {static_cast<std::int16_t>(x), static_cast<std::int16_t>(y),
               rng.Bernoulli(0.5) ? std::int8_t{1} : std::int8_t{-1},
               t_ms - options.dt_ms *
                          static_cast<float>(rng.Uniform(0.0, 1.0))});
        }
      }
    }
  }

  std::sort(stream.events.begin(), stream.events.end(),
            [](const Event& a, const Event& b) { return a.t < b.t; });
  return stream;
}

EventDataset MakeSyntheticDvsGesture(const DvsGestureOptions& options) {
  AXSNN_CHECK(options.count > 0, "count must be positive");
  EventDataset ds;
  ds.width = options.width;
  ds.height = options.height;
  ds.duration_ms = options.duration_ms;
  ds.num_classes = kGestureClasses;
  ds.streams.resize(static_cast<std::size_t>(options.count));
  ds.labels.resize(static_cast<std::size_t>(options.count));

  Rng master(options.seed);
  for (long i = 0; i < options.count; ++i)
    ds.labels[static_cast<std::size_t>(i)] =
        static_cast<int>(i % kGestureClasses);
  for (long i = options.count - 1; i > 0; --i) {
    const long j = static_cast<long>(
        master.UniformInt(static_cast<std::uint64_t>(i + 1)));
    std::swap(ds.labels[static_cast<std::size_t>(i)],
              ds.labels[static_cast<std::size_t>(j)]);
  }

  runtime::ParallelFor(0, options.count, [&](long i) {
    Rng rng = master.Fork(static_cast<std::uint64_t>(i) + 1000);
    ds.streams[static_cast<std::size_t>(i)] = SimulateGesture(
        ds.labels[static_cast<std::size_t>(i)], options, rng);
  });
  return ds;
}

}  // namespace axsnn::data
