// Synthetic event-camera gesture dataset (DVS128-Gesture stand-in).
//
// The paper's neuromorphic experiments run on DVS128 Gesture (11 hand/arm
// gesture classes recorded by a 128x128 event camera). Offline, we simulate
// the sensor instead: a Gaussian "hand" blob follows a class-specific motion
// path over the sensor plane, and a per-pixel DVS model emits (x, y, p, t)
// events whenever the log-intensity change since the last event at that
// pixel crosses the contrast threshold — the standard DVS emission model.
// Background noise events are added at a configurable rate, so the AQF
// filter has realistic uncorrelated noise to remove even before an attack.
//
// The 11 classes are distinct motion patterns (circles, swipes, diagonals,
// zooms, figure-eight), preserving what the experiments need: an
// 11-class, spatio-temporally structured event stream classification task.
#pragma once

#include <cstdint>
#include <string>

#include "data/event.hpp"
#include "tensor/random.hpp"

namespace axsnn::data {

/// Number of gesture classes (matches DVS128 Gesture).
inline constexpr int kGestureClasses = 11;

/// Human-readable class name for diagnostics and example output.
std::string GestureName(int cls);

/// Simulator options.
struct DvsGestureOptions {
  long count = 256;
  long width = 32;
  long height = 32;
  float duration_ms = 200.0f;
  /// Scene integration step; events get sub-step timestamp jitter.
  float dt_ms = 1.0f;
  /// Gaussian blob radius in pixels.
  float blob_sigma = 2.4f;
  /// DVS contrast threshold (intensity units). Chosen so one blob pass over
  /// a pixel emits a handful of events — keeping genuine per-pixel rates
  /// below the AQF hyperactivity threshold (T1 = 5 per 50 ms), as with a
  /// real sensor's refractory behaviour.
  float contrast_threshold = 0.30f;
  /// Uncorrelated background noise, events per pixel per second.
  float noise_rate_hz = 1.0f;
  std::uint64_t seed = 321;
};

/// Simulates one gesture of class `cls` (in [0, kGestureClasses)).
EventStream SimulateGesture(int cls, const DvsGestureOptions& options,
                            Rng& rng);

/// Generates a balanced, shuffled dataset of `options.count` streams.
/// Deterministic in `options.seed`.
EventDataset MakeSyntheticDvsGesture(const DvsGestureOptions& options);

}  // namespace axsnn::data
