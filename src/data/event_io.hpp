// Binary (de)serialization for event streams and datasets.
//
// Lets benches/applications persist attacked or filtered event data (e.g.
// craft the expensive Sparse Attack once and reuse it across defense
// sweeps). Little-endian, versioned container; same portability contract as
// tensor/serialize.hpp.
#pragma once

#include <iosfwd>
#include <string>

#include "data/event.hpp"

namespace axsnn::data {

/// Writes one stream (geometry, duration, packed events).
void WriteEventStream(std::ostream& os, const EventStream& stream);

/// Reads a stream written by WriteEventStream; throws std::runtime_error on
/// malformed input.
EventStream ReadEventStream(std::istream& is);

/// Writes a full dataset (streams + labels + metadata).
void WriteEventDataset(std::ostream& os, const EventDataset& dataset);

/// Reads a dataset written by WriteEventDataset.
EventDataset ReadEventDataset(std::istream& is);

/// File conveniences; throw std::runtime_error when the file cannot be
/// opened.
void SaveEventDataset(const std::string& path, const EventDataset& dataset);
EventDataset LoadEventDataset(const std::string& path);

}  // namespace axsnn::data
