// Procedural stand-in for the MNIST handwritten-digit dataset.
//
// The repo has no network access, so the static-dataset experiments run on a
// synthetic, deterministic digit generator: each class is a set of stroke
// polylines in a unit square, rasterized with a Gaussian pen and randomly
// jittered (rotation, scale, translation, pen width, pixel noise). The
// generator preserves what the paper's experiments need from MNIST — a
// learnable 10-class static image task whose inputs live in [0, 1] — while
// keeping training CPU-fast (16x16 by default). See DESIGN.md
// "Substitutions".
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace axsnn::data {

/// A labelled static image set: images [N, 1, H, W] in [0, 1].
struct StaticDataset {
  Tensor images;
  std::vector<int> labels;
  int num_classes = 10;

  long size() const { return static_cast<long>(labels.size()); }
};

/// Generator options. The defaults are tuned so the paper's 7-layer SNN
/// reaches ≈96% test accuracy (matching the MNIST numbers the paper
/// reports), leaving visible headroom for approximation and attacks to bite.
struct SyntheticMnistOptions {
  long count = 1024;
  long height = 16;
  long width = 16;
  std::uint64_t seed = 123;
  /// Max additive uniform pixel noise.
  float noise = 0.20f;
  /// Random rotation bound, radians.
  float max_rotation = 0.30f;
  /// Random isotropic scale range around 1.
  float scale_jitter = 0.20f;
  /// Random translation bound, as a fraction of the image size.
  float max_shift = 0.12f;
  /// Gaussian pen radius in pixels (before jitter).
  float pen_sigma = 0.85f;
  /// Per-vertex random stroke wobble (fraction of the unit square) —
  /// emulates handwriting variation.
  float wobble = 0.05f;
};

/// Generates `count` digit images with balanced, shuffled classes.
/// Deterministic in `options.seed`.
StaticDataset MakeSyntheticMnist(const SyntheticMnistOptions& options);

/// Renders one digit (class id in [0, 9]) with the given jitter draw; exposed
/// separately so tests can check class geometry directly.
Tensor RenderDigit(int digit, const SyntheticMnistOptions& options, Rng& rng);

}  // namespace axsnn::data
