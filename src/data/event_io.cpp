#include "data/event_io.hpp"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace axsnn::data {

namespace {

constexpr std::uint32_t kStreamMagic = 0x41584556;   // "AXEV"
constexpr std::uint32_t kDatasetMagic = 0x41584544;  // "AXED"
constexpr std::uint32_t kVersion = 1;
// Coordinates are int16 on disk, so a sane sensor never exceeds this.
constexpr long kMaxSensorDim = 32768;

template <typename T>
void WritePod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

/// Byte-offset-tracking reader: every failure names the field being read
/// and the absolute file offset where the record starts going wrong, so a
/// corrupted multi-gigabyte capture is debuggable without a hex dump.
class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {
    const auto pos = is.tellg();
    base_ = pos == std::istream::pos_type(-1)
                ? -1
                : static_cast<std::int64_t>(pos);
  }

  /// Offset of the next unread byte: absolute when the stream is seekable,
  /// else relative to where this reader started.
  std::int64_t offset() const { return base_ < 0 ? read_ : base_ + read_; }

  template <typename T>
  T Read(const char* what) {
    T v{};
    is_.read(reinterpret_cast<char*>(&v), sizeof v);
    if (!is_) {
      std::ostringstream msg;
      msg << "axsnn: truncated event stream data: " << what
          << " at byte offset " << offset();
      throw std::runtime_error(msg.str());
    }
    read_ += static_cast<std::int64_t>(sizeof v);
    return v;
  }

  [[noreturn]] void Fail(std::int64_t record_offset,
                         const std::string& detail) const {
    std::ostringstream msg;
    msg << "axsnn: malformed event stream data at byte offset "
        << record_offset << ": " << detail;
    throw std::runtime_error(msg.str());
  }

 private:
  std::istream& is_;
  std::int64_t base_ = -1;
  std::int64_t read_ = 0;
};

EventStream ReadEventStreamTracked(Reader& r) {
  const std::int64_t header_off = r.offset();
  if (r.Read<std::uint32_t>("stream magic") != kStreamMagic)
    throw std::runtime_error("axsnn: bad event-stream magic");
  if (r.Read<std::uint32_t>("stream version") != kVersion)
    throw std::runtime_error("axsnn: unsupported event-stream version");
  EventStream s;
  s.width = static_cast<long>(r.Read<std::int64_t>("sensor width"));
  s.height = static_cast<long>(r.Read<std::int64_t>("sensor height"));
  s.duration_ms = r.Read<float>("stream duration");
  if (s.width <= 0 || s.width > kMaxSensorDim || s.height <= 0 ||
      s.height > kMaxSensorDim) {
    std::ostringstream d;
    d << "sensor geometry " << s.width << "x" << s.height
      << " outside (0, " << kMaxSensorDim << "]";
    r.Fail(header_off, d.str());
  }
  if (!(s.duration_ms > 0.0f) || !std::isfinite(s.duration_ms)) {
    std::ostringstream d;
    d << "stream duration " << s.duration_ms << " not positive and finite";
    r.Fail(header_off, d.str());
  }
  const std::int64_t count = r.Read<std::int64_t>("event count");
  if (count < 0 || count > (1LL << 32))
    throw std::runtime_error("axsnn: implausible event count");
  s.events.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t record_off = r.offset();
    Event e;
    e.x = r.Read<std::int16_t>("event x");
    e.y = r.Read<std::int16_t>("event y");
    e.polarity = r.Read<std::int8_t>("event polarity");
    e.t = r.Read<float>("event timestamp");
    std::ostringstream d;
    if (e.x < 0 || e.x >= s.width || e.y < 0 || e.y >= s.height) {
      d << "event " << i << " coordinates (" << e.x << ", " << e.y
        << ") outside sensor " << s.width << "x" << s.height;
      r.Fail(record_off, d.str());
    }
    if (e.polarity != 1 && e.polarity != -1) {
      d << "event " << i << " polarity " << static_cast<int>(e.polarity)
        << " not +1/-1";
      r.Fail(record_off, d.str());
    }
    if (!(e.t >= 0.0f && e.t <= s.duration_ms)) {  // also rejects NaN
      d << "event " << i << " timestamp " << e.t << " outside [0, "
        << s.duration_ms << "]";
      r.Fail(record_off, d.str());
    }
    s.events.push_back(e);
  }
  return s;
}

}  // namespace

void WriteEventStream(std::ostream& os, const EventStream& stream) {
  WritePod(os, kStreamMagic);
  WritePod(os, kVersion);
  WritePod(os, static_cast<std::int64_t>(stream.width));
  WritePod(os, static_cast<std::int64_t>(stream.height));
  WritePod(os, stream.duration_ms);
  WritePod(os, static_cast<std::int64_t>(stream.events.size()));
  for (const Event& e : stream.events) {
    WritePod(os, e.x);
    WritePod(os, e.y);
    WritePod(os, e.polarity);
    WritePod(os, e.t);
  }
}

EventStream ReadEventStream(std::istream& is) {
  Reader r(is);
  return ReadEventStreamTracked(r);
}

void WriteEventDataset(std::ostream& os, const EventDataset& dataset) {
  WritePod(os, kDatasetMagic);
  WritePod(os, kVersion);
  WritePod(os, static_cast<std::int64_t>(dataset.width));
  WritePod(os, static_cast<std::int64_t>(dataset.height));
  WritePod(os, dataset.duration_ms);
  WritePod(os, static_cast<std::int32_t>(dataset.num_classes));
  WritePod(os, static_cast<std::int64_t>(dataset.streams.size()));
  for (std::size_t i = 0; i < dataset.streams.size(); ++i) {
    WritePod(os, static_cast<std::int32_t>(dataset.labels.at(i)));
    WriteEventStream(os, dataset.streams[i]);
  }
}

EventDataset ReadEventDataset(std::istream& is) {
  Reader r(is);
  if (r.Read<std::uint32_t>("dataset magic") != kDatasetMagic)
    throw std::runtime_error("axsnn: bad event-dataset magic");
  if (r.Read<std::uint32_t>("dataset version") != kVersion)
    throw std::runtime_error("axsnn: unsupported event-dataset version");
  EventDataset ds;
  ds.width = static_cast<long>(r.Read<std::int64_t>("dataset width"));
  ds.height = static_cast<long>(r.Read<std::int64_t>("dataset height"));
  ds.duration_ms = r.Read<float>("dataset duration");
  ds.num_classes = r.Read<std::int32_t>("class count");
  if (ds.num_classes <= 0)
    r.Fail(0, "dataset class count must be positive");
  const std::int64_t count = r.Read<std::int64_t>("stream count");
  if (count < 0 || count > (1LL << 24))
    throw std::runtime_error("axsnn: implausible stream count");
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t label_off = r.offset();
    const std::int32_t label = r.Read<std::int32_t>("stream label");
    if (label < 0 || label >= ds.num_classes) {
      std::ostringstream d;
      d << "stream " << i << " label " << label << " outside [0, "
        << ds.num_classes << ")";
      r.Fail(label_off, d.str());
    }
    ds.labels.push_back(static_cast<int>(label));
    ds.streams.push_back(ReadEventStreamTracked(r));
  }
  return ds;
}

void SaveEventDataset(const std::string& path, const EventDataset& dataset) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("axsnn: cannot open for write: " + path);
  WriteEventDataset(os, dataset);
}

EventDataset LoadEventDataset(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("axsnn: cannot open for read: " + path);
  return ReadEventDataset(is);
}

}  // namespace axsnn::data
