#include "data/event_io.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace axsnn::data {

namespace {

constexpr std::uint32_t kStreamMagic = 0x41584556;   // "AXEV"
constexpr std::uint32_t kDatasetMagic = 0x41584544;  // "AXED"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T ReadPod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("axsnn: truncated event stream data");
  return v;
}

}  // namespace

void WriteEventStream(std::ostream& os, const EventStream& stream) {
  WritePod(os, kStreamMagic);
  WritePod(os, kVersion);
  WritePod(os, static_cast<std::int64_t>(stream.width));
  WritePod(os, static_cast<std::int64_t>(stream.height));
  WritePod(os, stream.duration_ms);
  WritePod(os, static_cast<std::int64_t>(stream.events.size()));
  for (const Event& e : stream.events) {
    WritePod(os, e.x);
    WritePod(os, e.y);
    WritePod(os, e.polarity);
    WritePod(os, e.t);
  }
}

EventStream ReadEventStream(std::istream& is) {
  if (ReadPod<std::uint32_t>(is) != kStreamMagic)
    throw std::runtime_error("axsnn: bad event-stream magic");
  if (ReadPod<std::uint32_t>(is) != kVersion)
    throw std::runtime_error("axsnn: unsupported event-stream version");
  EventStream s;
  s.width = static_cast<long>(ReadPod<std::int64_t>(is));
  s.height = static_cast<long>(ReadPod<std::int64_t>(is));
  s.duration_ms = ReadPod<float>(is);
  const std::int64_t count = ReadPod<std::int64_t>(is);
  if (count < 0 || count > (1LL << 32))
    throw std::runtime_error("axsnn: implausible event count");
  s.events.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    Event e;
    e.x = ReadPod<std::int16_t>(is);
    e.y = ReadPod<std::int16_t>(is);
    e.polarity = ReadPod<std::int8_t>(is);
    e.t = ReadPod<float>(is);
    s.events.push_back(e);
  }
  return s;
}

void WriteEventDataset(std::ostream& os, const EventDataset& dataset) {
  WritePod(os, kDatasetMagic);
  WritePod(os, kVersion);
  WritePod(os, static_cast<std::int64_t>(dataset.width));
  WritePod(os, static_cast<std::int64_t>(dataset.height));
  WritePod(os, dataset.duration_ms);
  WritePod(os, static_cast<std::int32_t>(dataset.num_classes));
  WritePod(os, static_cast<std::int64_t>(dataset.streams.size()));
  for (std::size_t i = 0; i < dataset.streams.size(); ++i) {
    WritePod(os, static_cast<std::int32_t>(dataset.labels.at(i)));
    WriteEventStream(os, dataset.streams[i]);
  }
}

EventDataset ReadEventDataset(std::istream& is) {
  if (ReadPod<std::uint32_t>(is) != kDatasetMagic)
    throw std::runtime_error("axsnn: bad event-dataset magic");
  if (ReadPod<std::uint32_t>(is) != kVersion)
    throw std::runtime_error("axsnn: unsupported event-dataset version");
  EventDataset ds;
  ds.width = static_cast<long>(ReadPod<std::int64_t>(is));
  ds.height = static_cast<long>(ReadPod<std::int64_t>(is));
  ds.duration_ms = ReadPod<float>(is);
  ds.num_classes = ReadPod<std::int32_t>(is);
  const std::int64_t count = ReadPod<std::int64_t>(is);
  if (count < 0 || count > (1LL << 24))
    throw std::runtime_error("axsnn: implausible stream count");
  for (std::int64_t i = 0; i < count; ++i) {
    ds.labels.push_back(ReadPod<std::int32_t>(is));
    ds.streams.push_back(ReadEventStream(is));
  }
  return ds;
}

void SaveEventDataset(const std::string& path, const EventDataset& dataset) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("axsnn: cannot open for write: " + path);
  WriteEventDataset(os, dataset);
}

EventDataset LoadEventDataset(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("axsnn: cannot open for read: " + path);
  return ReadEventDataset(is);
}

}  // namespace axsnn::data
