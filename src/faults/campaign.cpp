#include "faults/campaign.hpp"

#include <algorithm>

#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"
#include "tensor/random.hpp"

namespace axsnn::faults {
namespace {

/// Default probe bits per word width: exponent MSB / exponent LSB / mid
/// mantissa for the float formats (the NeuroAttack observation: exponent
/// bits dominate), sign / magnitude MSB / mid for int8 codes.
std::vector<int> DefaultBits(int word_bits) {
  if (word_bits >= 32) return {30, 23, 13};
  if (word_bits >= 16) return {14, 10, 5};
  return {7, 6, 3};
}

}  // namespace

CampaignResult RunCampaign(const snn::Network& model,
                           approx::Precision precision, const EvalFn& eval,
                           const CampaignOptions& options) {
  AXSNN_CHECK(eval != nullptr, "RunCampaign needs an evaluator");
  CampaignResult result;
  {
    snn::Network clean = model.Clone();
    result.clean_accuracy_pct = eval(clean);
  }
  struct PointSpec {
    double ber;
    long flips;
  };
  std::vector<PointSpec> grid;
  for (double b : options.bers) grid.push_back({b, 0});
  for (long f : options.flip_counts) grid.push_back({0.0, f});
  result.points.resize(grid.size());
  const long trials = std::max<long>(1, options.trials);
  runtime::ParallelFor(
      0, static_cast<long>(grid.size()),
      [&](long i) {
        const PointSpec& point = grid[static_cast<std::size_t>(i)];
        double acc_sum = 0.0;
        long sites = 0;
        for (long t = 0; t < trials; ++t) {
          FaultSpec spec = options.base;
          spec.ber = point.ber;
          spec.flips = point.flips;
          spec.seed = options.base.seed + static_cast<std::uint64_t>(t);
          snn::Network victim = model.Clone();
          if (spec.ber > 0.0 || spec.flips > 0) {
            sites = ApplyFault(victim, spec, precision).sites;
          }
          acc_sum += static_cast<double>(eval(victim));
        }
        result.points[static_cast<std::size_t>(i)] = {
            point.ber, point.flips, sites,
            static_cast<float>(acc_sum / static_cast<double>(trials))};
      },
      /*grain=*/1);
  return result;
}

std::vector<SensitivityStep> GreedySensitivitySearch(
    const snn::Network& model, approx::Precision precision,
    const EvalFn& eval, const SensitivityOptions& options) {
  AXSNN_CHECK(eval != nullptr, "GreedySensitivitySearch needs an evaluator");
  snn::Network current = model.Clone();
  float clean = 0.0f;
  {
    snn::Network probe = current.Clone();
    clean = eval(probe);
  }
  struct Candidate {
    long layer;
    WeightTarget target;
    long word;
    int bit;
  };
  std::vector<Candidate> committed;
  const Rng base_rng(options.seed);
  std::vector<SensitivityStep> steps;
  for (long round = 0; round < options.rounds; ++round) {
    const std::vector<SurfaceArray> surface =
        WeightSurface(current, precision);
    if (surface.empty()) break;
    std::vector<Candidate> cands;
    for (const SurfaceArray& arr : surface) {
      const std::vector<int> bits =
          options.bits.empty() ? DefaultBits(arr.word_bits) : options.bits;
      for (int b : bits) {
        const int bit = b % arr.word_bits;
        // Word draw is a pure function of (seed, round, candidate coords):
        // re-running the search replays the identical probe set.
        const std::uint64_t stream =
            (static_cast<std::uint64_t>(round) << 40) ^
            (static_cast<std::uint64_t>(arr.layer) << 24) ^
            (static_cast<std::uint64_t>(static_cast<int>(arr.target)) << 16) ^
            static_cast<std::uint64_t>(static_cast<unsigned>(bit));
        Rng draw = base_rng.Fork(stream);
        const long word = static_cast<long>(
            draw.UniformInt(static_cast<std::uint64_t>(arr.words)));
        const Candidate cand{arr.layer, arr.target, word, bit};
        const bool seen =
            std::any_of(committed.begin(), committed.end(),
                        [&](const Candidate& c) {
                          return c.layer == cand.layer &&
                                 c.target == cand.target &&
                                 c.word == cand.word && c.bit == cand.bit;
                        });
        if (!seen) cands.push_back(cand);  // never revert a committed flip
      }
    }
    if (cands.empty()) break;
    std::vector<float> acc(cands.size(), 0.0f);
    runtime::ParallelFor(
        0, static_cast<long>(cands.size()),
        [&](long i) {
          const Candidate& c = cands[static_cast<std::size_t>(i)];
          snn::Network probe = current.Clone();
          FlipBitAt(probe, c.layer, c.target, c.word, c.bit, precision);
          acc[static_cast<std::size_t>(i)] = eval(probe);
        },
        /*grain=*/1);
    std::size_t best = 0;
    for (std::size_t i = 1; i < cands.size(); ++i) {
      if (acc[i] < acc[best]) best = i;  // ties keep the earlier candidate
    }
    const Candidate& pick = cands[best];
    FlipBitAt(current, pick.layer, pick.target, pick.word, pick.bit,
              precision);
    committed.push_back(pick);
    steps.push_back({pick.layer, pick.target, pick.bit, pick.word,
                     acc[best], clean - acc[best]});
  }
  return steps;
}

}  // namespace axsnn::faults
