// Fault campaigns: sweeping fault grids and ranking the weakest bits.
//
// Two instruments on top of the injector:
//
//  * FaultCampaign (RunCampaign) — the BER/flip-count sweep behind the
//    fig8_bitflip report: clone the victim, inject one grid point, measure
//    robustness with a caller-supplied evaluator, repeat over seeds. Points
//    fan out on the thread pool; every point writes its own slot, so the
//    result is bit-identical at any pool size.
//
//  * GreedySensitivitySearch — the NeuroAttack-style ranking: per round,
//    probe a candidate set of (layer, target array, bit position) single
//    flips — each at a deterministically drawn word — on a clone of the
//    current (already-corrupted) model, commit the flip with the largest
//    robustness drop, repeat. The committed sequence IS the ranking: the
//    most damaging storage bits of this model, most damaging first.
//
// Both take the evaluator as a callback (accuracy-on-a-test-set in the
// drivers) so the subsystem stays independent of workbench/dataset types.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "approx/precision.hpp"
#include "faults/fault_model.hpp"
#include "faults/inject.hpp"
#include "snn/network.hpp"

namespace axsnn::faults {

/// Robustness probe: typically [&](snn::Network& n) { return accuracy(n); }.
/// Must be thread-safe for concurrent calls on distinct networks.
using EvalFn = std::function<float(snn::Network&)>;

struct CampaignOptions {
  /// Template for every point: kind/domain/target/bit/layer come from here;
  /// ber/flips are overwritten per grid point and seed per trial.
  FaultSpec base;
  std::vector<double> bers;      ///< one campaign point per BER value
  std::vector<long> flip_counts; ///< one campaign point per flip count
  long trials = 1;               ///< seeds base.seed + t, accuracy averaged
};

struct CampaignPoint {
  double ber = 0.0;   ///< 0 for flip-count points
  long flips = 0;     ///< 0 for BER points
  long sites = 0;     ///< corruption sites of the last trial
  float accuracy_pct = 0.0f;  ///< mean over trials
};

struct CampaignResult {
  float clean_accuracy_pct = 0.0f;
  std::vector<CampaignPoint> points;  ///< bers order, then flip_counts order
};

/// Clone-inject-evaluate over the options grid. `model` is never mutated.
CampaignResult RunCampaign(const snn::Network& model,
                           approx::Precision precision, const EvalFn& eval,
                           const CampaignOptions& options);

struct SensitivityOptions {
  long rounds = 3;          ///< committed flips == ranking length
  std::vector<int> bits;    ///< candidate bit positions; empty = per-format
                            ///  defaults (sign/exponent/mantissa probes)
  std::uint64_t seed = 1;   ///< word-draw seed
};

struct SensitivityStep {
  long layer = 0;
  WeightTarget target = WeightTarget::kFloatWeights;
  int bit = 0;
  long word = 0;
  float accuracy_pct = 0.0f;  ///< after committing this flip (cumulative)
  float drop_pct = 0.0f;      ///< clean accuracy minus accuracy_pct
};

/// Greedy weight-domain search; `model` is never mutated. Candidates are
/// evaluated concurrently (deterministic slot writes); ties break toward
/// the earlier candidate, so the committed sequence is reproducible.
std::vector<SensitivityStep> GreedySensitivitySearch(
    const snn::Network& model, approx::Precision precision,
    const EvalFn& eval, const SensitivityOptions& options);

}  // namespace axsnn::faults
