// Fault models: how hardware corruption rewrites one stored word.
//
// The paper's threat model stops at input perturbation; this subsystem opens
// the non-input surface the related work demonstrates — NeuroAttack-style
// weight/threshold bit-flips (Venceslai et al. 2020) and the power-oriented
// neuron-parameter faults (Nagarajan et al. 2022). A fault here is a
// *deterministic, seedable* event: the same (model bytes, FaultSpec) pair
// always corrupts the same bits, at any pool size, kernel mode or shard
// split — the same determinism rail every other subsystem rides.
//
// Split of responsibilities:
//   FaultModel   — the per-word corruption op (flip / stuck-at / burst).
//   FaultSpec    — the declarative campaign parameter block: what kind of
//                  fault, which storage domain, how many sites, which seed.
//                  Lives in grid axes and attack params; Label() is folded
//                  into store keys so corrupted artifacts never alias clean
//                  ones.
//   ApplyFault   — (inject.hpp) resolves a spec against a concrete network:
//                  enumerates the addressable bit surface and drives the
//                  model over the drawn sites.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace axsnn::faults {

/// The corruption op applied at each faulted site.
enum class FaultKind {
  kNone,      ///< no-op placeholder (the clean cell of a fault axis)
  kBitFlip,   ///< XOR one bit per site
  kStuckAt0,  ///< clear one bit per site (stuck-at-ground cell)
  kStuckAt1,  ///< set one bit per site (stuck-at-supply cell)
  kWordBurst, ///< flip `burst` consecutive bits (row-hammer-style burst)
};

/// Which storage the fault targets.
enum class FaultDomain {
  kWeights,      ///< weight memory: fp32/fp16 words or int8 codes + scales
  kNeuronParams, ///< LIF Vth / leak registers (fp32 words)
  kActivations,  ///< transient activation state, injected mid-forward
};

/// Weight-domain refinement: which physical array inside weight storage.
enum class WeightTarget {
  kAny,          ///< every array the variant actually stores
  kFloatWeights, ///< the float weight words (fp32 bits, or fp16 half-words)
  kInt8Codes,    ///< the 8-bit integer codes of an int8-kernel snapshot
  kInt8Scales,   ///< the per-output-channel fp32 scale words of the snapshot
};

const char* FaultKindName(FaultKind k);
const char* FaultDomainName(FaultDomain d);
const char* WeightTargetName(WeightTarget t);

/// Declarative fault campaign cell. Everything the injector draws is a pure
/// function of this struct (plus the target network's storage layout), so a
/// spec is also a cache-key component: Label() renders every field.
struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  FaultDomain domain = FaultDomain::kWeights;
  WeightTarget target = WeightTarget::kAny;  // weight domain only
  long flips = 1;         ///< site count when ber == 0
  double ber = 0.0;       ///< bit-error rate; > 0 derives sites from surface
  int bit = -1;           ///< pinned bit position; -1 draws per site
  long layer = -1;        ///< restrict to one target-layer ordinal; -1 = all
  long burst = 8;         ///< kWordBurst: consecutive bits per site
  std::uint64_t seed = 1; ///< site/bit draw seed

  bool is_none() const { return kind == FaultKind::kNone; }

  /// Throws std::invalid_argument on out-of-range fields.
  void Validate() const;

  /// Deterministic cache-key rendering, e.g.
  /// "bitflip{dom=weights,tgt=any,flips=1,ber=0.001,bit=-1,layer=-1,seed=7}"
  /// ("none" for the clean spec; burst printed for kWordBurst only).
  std::string Label() const;
};

/// Per-word corruption op. `bits` is the word width (8/16/32), `bit` the
/// resolved in-range position for this site. Pure: all entropy is drawn by
/// the injector, so the same call always returns the same word — which is
/// what lets the activation hook re-apply the op per timestep.
class FaultModel {
 public:
  virtual ~FaultModel() = default;
  virtual FaultKind kind() const = 0;
  virtual std::uint32_t Corrupt(std::uint32_t word, int bits,
                                int bit) const = 0;
};

/// Builds the op for `spec.kind` (nullptr for kNone).
std::unique_ptr<FaultModel> MakeFaultModel(const FaultSpec& spec);

}  // namespace axsnn::faults
