// Fault injector: resolves a FaultSpec against a concrete network.
//
// The injector's job is to turn a declarative spec into mutated storage:
//  1. enumerate the addressable *bit surface* of the requested domain —
//     which words exist, at what width, in layer order:
//       weights        per Conv2d/Dense weight-layer ordinal:
//                        - int8-kernel variants: the snapshot's int8 codes
//                          (8-bit words) and per-channel fp32 scale words;
//                        - float variants: the weight tensor, addressed as
//                          fp32 words, or as binary16 half-words when the
//                          variant's precision is kFp16 (flipping bit 9 of
//                          a half is a different event than bit 22 of a
//                          float — the surface must match the storage the
//                          hardware would actually hold);
//       neuron params  per LIF-layer ordinal: the Vth and leak registers,
//                        two fp32 words per layer;
//       activations    no stored words — installs a Network post-layer hook
//                        that corrupts a drawn feature lane of a drawn
//                        layer's activation every timestep (dense path;
//                        temporal dispatchers fall back when hooked).
//  2. draw sites with Rng(spec.seed): ber > 0 derives the site count as
//     max(1, round(ber * surface_bits)), else spec.flips sites; each site
//     draws a word uniformly over the surface and a bit position (pinned by
//     spec.bit when >= 0, clamped to the word width);
//  3. apply FaultModel::Corrupt at each site.
//
// Determinism contract: the result is a pure function of (network storage
// layout + bytes, spec, precision). No wall clock, no global RNG, no
// iteration-order dependence on pool size or kernel mode. An empty surface
// (e.g. tgt=codes on an fp32 variant, or a layer ordinal past the end) is
// a documented no-op: the report shows 0 sites and the net is unchanged.
#pragma once

#include <vector>

#include "approx/precision.hpp"
#include "faults/fault_model.hpp"
#include "snn/network.hpp"

namespace axsnn::faults {

/// One applied corruption, for reports and the sensitivity search.
struct FaultSite {
  long layer = 0;       ///< target-domain layer ordinal
  WeightTarget target = WeightTarget::kFloatWeights;
  long word = 0;        ///< word index inside that (layer, target) array
  int bit = 0;          ///< corrupted bit position (burst start)
};

struct InjectionReport {
  long sites = 0;          ///< corruption ops actually applied
  long surface_words = 0;  ///< addressable words of the selected surface
  long surface_bits = 0;   ///< total bits (words weighted by width)
  bool activation_hook = false;  ///< spec targeted transient activations
  std::vector<FaultSite> applied;  ///< per-site coordinates, draw order
};

/// Applies `spec` to `net` in place. `precision` tells the injector how the
/// float weight words are stored (fp32 vs binary16 lattice); int8-kernel
/// layers are always addressed through their snapshot regardless.
InjectionReport ApplyFault(snn::Network& net, const FaultSpec& spec,
                           approx::Precision precision);

/// Clone-then-corrupt convenience: the const-model semantics every engine
/// integration uses (the trained checkpoint is never mutated).
snn::Network CorruptedClone(const snn::Network& net, const FaultSpec& spec,
                            approx::Precision precision,
                            InjectionReport* report = nullptr);

/// Flips one specific bit — the sensitivity-search primitive. `layer` and
/// `word` address the weight-domain surface of `net` exactly as ApplyFault
/// enumerates it. Throws when the coordinate does not exist.
void FlipBitAt(snn::Network& net, long layer, WeightTarget target, long word,
               int bit, approx::Precision precision);

/// The weight-domain surface of `net`, one entry per (layer ordinal,
/// target) array: {layer, target, word count, bits per word}. What the
/// sensitivity search iterates to build its candidate list.
struct SurfaceArray {
  long layer = 0;
  WeightTarget target = WeightTarget::kFloatWeights;
  long words = 0;
  int word_bits = 32;
};
std::vector<SurfaceArray> WeightSurface(snn::Network& net,
                                        approx::Precision precision);

}  // namespace axsnn::faults
