#include "faults/fault_model.hpp"

#include <sstream>

#include "tensor/check.hpp"

namespace axsnn::faults {

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kBitFlip:
      return "bitflip";
    case FaultKind::kStuckAt0:
      return "stuckat0";
    case FaultKind::kStuckAt1:
      return "stuckat1";
    case FaultKind::kWordBurst:
      return "burst";
  }
  return "?";
}

const char* FaultDomainName(FaultDomain d) {
  switch (d) {
    case FaultDomain::kWeights:
      return "weights";
    case FaultDomain::kNeuronParams:
      return "neuron";
    case FaultDomain::kActivations:
      return "activations";
  }
  return "?";
}

const char* WeightTargetName(WeightTarget t) {
  switch (t) {
    case WeightTarget::kAny:
      return "any";
    case WeightTarget::kFloatWeights:
      return "float";
    case WeightTarget::kInt8Codes:
      return "codes";
    case WeightTarget::kInt8Scales:
      return "scales";
  }
  return "?";
}

void FaultSpec::Validate() const {
  if (is_none()) return;
  AXSNN_CHECK(flips >= 0, "fault flips must be >= 0, got " << flips);
  AXSNN_CHECK(ber >= 0.0 && ber <= 1.0,
              "fault ber must be in [0, 1], got " << ber);
  AXSNN_CHECK(flips > 0 || ber > 0.0,
              "a non-none fault needs flips > 0 or ber > 0");
  AXSNN_CHECK(bit >= -1 && bit < 32,
              "fault bit must be -1 (draw) or in [0, 32), got " << bit);
  AXSNN_CHECK(layer >= -1, "fault layer must be -1 (all) or an ordinal");
  AXSNN_CHECK(kind != FaultKind::kWordBurst || (burst >= 1 && burst <= 32),
              "burst width must be in [1, 32], got " << burst);
  AXSNN_CHECK(domain != FaultDomain::kActivations || ber == 0.0,
              "activation faults are site-count based: use flips, not ber");
}

std::string FaultSpec::Label() const {
  if (is_none()) return "none";
  std::ostringstream out;
  out << FaultKindName(kind) << "{dom=" << FaultDomainName(domain);
  if (domain == FaultDomain::kWeights) out << ",tgt=" << WeightTargetName(target);
  out << ",flips=" << flips << ",ber=" << ber << ",bit=" << bit
      << ",layer=" << layer;
  if (kind == FaultKind::kWordBurst) out << ",burst=" << burst;
  out << ",seed=" << seed << "}";
  return out.str();
}

namespace {

class BitFlipModel final : public FaultModel {
 public:
  FaultKind kind() const override { return FaultKind::kBitFlip; }
  std::uint32_t Corrupt(std::uint32_t word, int /*bits*/,
                        int bit) const override {
    return word ^ (std::uint32_t{1} << bit);
  }
};

class StuckAtModel final : public FaultModel {
 public:
  explicit StuckAtModel(bool one) : one_(one) {}
  FaultKind kind() const override {
    return one_ ? FaultKind::kStuckAt1 : FaultKind::kStuckAt0;
  }
  std::uint32_t Corrupt(std::uint32_t word, int /*bits*/,
                        int bit) const override {
    const std::uint32_t mask = std::uint32_t{1} << bit;
    return one_ ? (word | mask) : (word & ~mask);
  }

 private:
  bool one_;
};

class WordBurstModel final : public FaultModel {
 public:
  explicit WordBurstModel(long burst) : burst_(burst) {}
  FaultKind kind() const override { return FaultKind::kWordBurst; }
  std::uint32_t Corrupt(std::uint32_t word, int bits,
                        int bit) const override {
    // Flip `burst_` consecutive bits starting at `bit`, wrapping inside the
    // word so every site corrupts the same number of cells.
    for (long i = 0; i < burst_; ++i) {
      const int b = static_cast<int>((bit + i) % bits);
      word ^= std::uint32_t{1} << b;
    }
    return word;
  }

 private:
  long burst_;
};

}  // namespace

std::unique_ptr<FaultModel> MakeFaultModel(const FaultSpec& spec) {
  switch (spec.kind) {
    case FaultKind::kNone:
      return nullptr;
    case FaultKind::kBitFlip:
      return std::make_unique<BitFlipModel>();
    case FaultKind::kStuckAt0:
      return std::make_unique<StuckAtModel>(false);
    case FaultKind::kStuckAt1:
      return std::make_unique<StuckAtModel>(true);
    case FaultKind::kWordBurst:
      return std::make_unique<WordBurstModel>(spec.burst);
  }
  AXSNN_CHECK(false, "unknown fault kind");
  return nullptr;
}

}  // namespace axsnn::faults
