#include "faults/inject.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>

#include "snn/conv2d.hpp"
#include "snn/dense.hpp"
#include "snn/lif_layer.hpp"
#include "tensor/check.hpp"
#include "tensor/random.hpp"

namespace axsnn::faults {
namespace {

/// How a surface word is encoded in memory.
enum class WordEnc { kF32, kF16, kI8 };

int WordBits(WordEnc enc) {
  switch (enc) {
    case WordEnc::kF32:
      return 32;
    case WordEnc::kF16:
      return 16;
    case WordEnc::kI8:
      return 8;
  }
  return 32;
}

/// One contiguous word array of the bit surface. Raw pointers into the
/// network (or a neuron staging buffer); valid for the injection call only.
struct SurfaceSpan {
  long layer = 0;
  WeightTarget target = WeightTarget::kFloatWeights;
  WordEnc enc = WordEnc::kF32;
  float* f = nullptr;        // kF32 / kF16 storage
  std::int8_t* q = nullptr;  // kI8 storage
  long count = 0;
};

bool WantTarget(WeightTarget filter, WeightTarget t) {
  return filter == WeightTarget::kAny || filter == t;
}

/// Weight-domain surface: per Conv2d/Dense ordinal, the arrays the variant
/// actually stores. Layer filter -1 keeps all ordinals.
std::vector<SurfaceSpan> WeightSpans(snn::Network& net, long layer_filter,
                                     WeightTarget target_filter,
                                     approx::Precision precision) {
  std::vector<SurfaceSpan> spans;
  long ordinal = 0;
  const WordEnc float_enc =
      precision == approx::Precision::kFp16 ? WordEnc::kF16 : WordEnc::kF32;
  for (std::size_t i = 0; i < net.size(); ++i) {
    Tensor* weight = nullptr;
    QuantizedTensor* snapshot = nullptr;
    if (auto* conv = dynamic_cast<snn::Conv2d*>(&net.layer(i))) {
      weight = &conv->weight();
      if (conv->int8_kernel()) snapshot = &conv->quantized_weight();
    } else if (auto* dense = dynamic_cast<snn::Dense*>(&net.layer(i))) {
      weight = &dense->weight();
      if (dense->int8_kernel()) snapshot = &dense->quantized_weight();
    } else {
      continue;
    }
    const long l = ordinal++;
    if (layer_filter >= 0 && l != layer_filter) continue;
    if (snapshot != nullptr) {
      // Integer execution: the hardware holds codes + scale words, not the
      // float master copy — that is the surface a fault lands on.
      if (WantTarget(target_filter, WeightTarget::kInt8Codes) &&
          !snapshot->empty()) {
        spans.push_back({l, WeightTarget::kInt8Codes, WordEnc::kI8, nullptr,
                         snapshot->mutable_flat().data(),
                         snapshot->numel()});
      }
      if (WantTarget(target_filter, WeightTarget::kInt8Scales) &&
          snapshot->rows() > 0) {
        spans.push_back({l, WeightTarget::kInt8Scales, WordEnc::kF32,
                         snapshot->mutable_scales().data(), nullptr,
                         snapshot->rows()});
      }
    } else if (WantTarget(target_filter, WeightTarget::kFloatWeights) &&
               weight->numel() > 0) {
      spans.push_back({l, WeightTarget::kFloatWeights, float_enc,
                       weight->data(), nullptr, weight->numel()});
    }
  }
  return spans;
}

/// Neuron-parameter staging: Vth and leak of each LIF, two fp32 words per
/// ordinal, mutated in a buffer and flushed via set_params_raw afterwards.
struct NeuronBuf {
  snn::LifLayer* lif = nullptr;
  float vals[2] = {0.0f, 0.0f};  // [0] = v_threshold, [1] = beta (leak)
};

std::vector<SurfaceSpan> NeuronSpans(snn::Network& net, long layer_filter,
                                     std::vector<NeuronBuf>& bufs) {
  bufs.clear();
  const std::vector<snn::LifLayer*> lifs = net.LifLayers();
  bufs.reserve(lifs.size());
  std::vector<SurfaceSpan> spans;
  for (std::size_t i = 0; i < lifs.size(); ++i) {
    const long l = static_cast<long>(i);
    if (layer_filter >= 0 && l != layer_filter) continue;
    NeuronBuf buf;
    buf.lif = lifs[i];
    buf.vals[0] = lifs[i]->params().v_threshold;
    buf.vals[1] = lifs[i]->params().beta;
    bufs.push_back(buf);
    spans.push_back({l, WeightTarget::kFloatWeights, WordEnc::kF32,
                     bufs.back().vals, nullptr, 2});
  }
  // bufs must not reallocate after spans captured pointers into it.
  return spans;
}

void CorruptWord(const SurfaceSpan& s, long w, int bit,
                 const FaultModel& model) {
  switch (s.enc) {
    case WordEnc::kF32: {
      const auto word = std::bit_cast<std::uint32_t>(s.f[w]);
      s.f[w] = std::bit_cast<float>(model.Corrupt(word, 32, bit));
      return;
    }
    case WordEnc::kF16: {
      // The stored word of an FP16 variant is the binary16 pattern; encode,
      // corrupt the half-word, decode. Values already on the fp16 lattice
      // round-trip exactly (Fp16Bits mirrors Fp16Round), so the only change
      // is the fault itself.
      const std::uint16_t half = approx::Fp16Bits(s.f[w]);
      const auto corrupted = static_cast<std::uint16_t>(
          model.Corrupt(half, 16, bit) & 0xffffu);
      s.f[w] = approx::Fp16FromBits(corrupted);
      return;
    }
    case WordEnc::kI8: {
      const auto byte = static_cast<std::uint8_t>(s.q[w]);
      auto code = static_cast<std::int8_t>(
          static_cast<std::uint8_t>(model.Corrupt(byte, 8, bit) & 0xffu));
      // The symmetric lattice never stores -128 (negation must stay exact
      // and the SIMD abs/sign kernels rely on it); a fault that produces it
      // lands on the nearest representable cell.
      if (code == std::int8_t{-128}) code = std::int8_t{-127};
      s.q[w] = code;
      return;
    }
  }
}

long SurfaceBits(const std::vector<SurfaceSpan>& spans) {
  long bits = 0;
  for (const SurfaceSpan& s : spans) bits += s.count * WordBits(s.enc);
  return bits;
}

long SurfaceWords(const std::vector<SurfaceSpan>& spans) {
  long words = 0;
  for (const SurfaceSpan& s : spans) words += s.count;
  return words;
}

/// Installs the transient-activation hook: `flips` sites, each a (feature
/// lane, bit) pair corrupting one lane of one layer's activation at every
/// (timestep, batch) plane. Lane selectors are drawn as raw 64-bit hashes
/// and reduced mod the runtime feature size, so the corruption is the same
/// per sample at any eval batch size.
InjectionReport InstallActivationHook(snn::Network& net,
                                      const FaultSpec& spec, Rng& rng) {
  AXSNN_CHECK(net.size() > 0, "activation fault on an empty network");
  const auto layer =
      spec.layer >= 0
          ? static_cast<std::size_t>(spec.layer) % net.size()
          : static_cast<std::size_t>(rng.UniformInt(net.size()));
  struct HookSite {
    std::uint64_t lane_hash;
    int bit;
  };
  std::vector<HookSite> sites;
  sites.reserve(static_cast<std::size_t>(spec.flips));
  InjectionReport rep;
  rep.activation_hook = true;
  for (long i = 0; i < spec.flips; ++i) {
    HookSite site{rng.NextU64(),
                  spec.bit >= 0 ? spec.bit % 32
                                : static_cast<int>(rng.UniformInt(32))};
    sites.push_back(site);
    rep.applied.push_back({static_cast<long>(layer),
                           WeightTarget::kFloatWeights, 0, site.bit});
  }
  rep.sites = spec.flips;
  // shared_ptr: Network::PostLayerHook is a copyable std::function.
  std::shared_ptr<FaultModel> model = MakeFaultModel(spec);
  net.set_post_layer_hook(
      [sites = std::move(sites), model = std::move(model),
       layer](std::size_t li, Tensor& act) {
        if (li != layer || act.rank() < 2) return;
        const long prefix = act.dim(0) * act.dim(1);  // T * B planes
        if (prefix <= 0) return;
        const long feat = act.numel() / prefix;
        if (feat <= 0) return;
        float* d = act.data();
        for (const HookSite& s : sites) {
          const long lane = static_cast<long>(
              s.lane_hash % static_cast<std::uint64_t>(feat));
          for (long p = 0; p < prefix; ++p) {
            float& v = d[p * feat + lane];
            v = std::bit_cast<float>(
                model->Corrupt(std::bit_cast<std::uint32_t>(v), 32, s.bit));
          }
        }
      });
  return rep;
}

}  // namespace

InjectionReport ApplyFault(snn::Network& net, const FaultSpec& spec,
                           approx::Precision precision) {
  spec.Validate();
  InjectionReport rep;
  if (spec.is_none()) return rep;
  Rng rng(spec.seed);
  if (spec.domain == FaultDomain::kActivations)
    return InstallActivationHook(net, spec, rng);

  std::vector<NeuronBuf> bufs;
  const std::vector<SurfaceSpan> spans =
      spec.domain == FaultDomain::kWeights
          ? WeightSpans(net, spec.layer, spec.target, precision)
          : NeuronSpans(net, spec.layer, bufs);
  rep.surface_words = SurfaceWords(spans);
  rep.surface_bits = SurfaceBits(spans);
  if (rep.surface_words == 0) return rep;  // empty surface: documented no-op

  const long sites =
      spec.ber > 0.0
          ? std::max<long>(1, std::llround(spec.ber *
                                           static_cast<double>(
                                               rep.surface_bits)))
          : spec.flips;
  const std::unique_ptr<FaultModel> model = MakeFaultModel(spec);
  for (long i = 0; i < sites; ++i) {
    long w = static_cast<long>(
        rng.UniformInt(static_cast<std::uint64_t>(rep.surface_words)));
    const SurfaceSpan* span = nullptr;
    for (const SurfaceSpan& s : spans) {
      if (w < s.count) {
        span = &s;
        break;
      }
      w -= s.count;
    }
    const int bits = WordBits(span->enc);
    const int bit = spec.bit >= 0 ? spec.bit % bits
                                  : static_cast<int>(rng.UniformInt(
                                        static_cast<std::uint64_t>(bits)));
    CorruptWord(*span, w, bit, *model);
    rep.applied.push_back({span->layer, span->target, w, bit});
  }
  rep.sites = sites;

  // Flush neuron staging buffers through the non-validating setter.
  for (NeuronBuf& buf : bufs) {
    snn::LifParams params = buf.lif->params();
    params.v_threshold = buf.vals[0];
    params.beta = buf.vals[1];
    buf.lif->set_params_raw(params);
  }
  return rep;
}

snn::Network CorruptedClone(const snn::Network& net, const FaultSpec& spec,
                            approx::Precision precision,
                            InjectionReport* report) {
  snn::Network copy = net.Clone();
  InjectionReport rep = ApplyFault(copy, spec, precision);
  if (report != nullptr) *report = std::move(rep);
  return copy;
}

void FlipBitAt(snn::Network& net, long layer, WeightTarget target, long word,
               int bit, approx::Precision precision) {
  AXSNN_CHECK(target != WeightTarget::kAny,
              "FlipBitAt needs a concrete target array");
  const std::vector<SurfaceSpan> spans =
      WeightSpans(net, layer, target, precision);
  AXSNN_CHECK(spans.size() == 1,
              "no such weight surface: layer " << layer << " target "
                                               << WeightTargetName(target));
  const SurfaceSpan& span = spans.front();
  AXSNN_CHECK(word >= 0 && word < span.count,
              "word " << word << " out of range for layer " << layer);
  FaultSpec flip;
  flip.kind = FaultKind::kBitFlip;
  const std::unique_ptr<FaultModel> model = MakeFaultModel(flip);
  CorruptWord(span, word, bit % WordBits(span.enc), *model);
}

std::vector<SurfaceArray> WeightSurface(snn::Network& net,
                                        approx::Precision precision) {
  std::vector<SurfaceArray> out;
  for (const SurfaceSpan& s :
       WeightSpans(net, -1, WeightTarget::kAny, precision)) {
    out.push_back({s.layer, s.target, s.count, WordBits(s.enc)});
  }
  return out;
}

}  // namespace axsnn::faults
