// Classification metrics used by the tests and example applications.
#pragma once

#include <span>
#include <vector>

namespace axsnn::eval {

/// Top-1 accuracy in [0, 1]; requires equal, non-zero lengths.
float Accuracy(std::span<const int> predictions, std::span<const int> labels);

/// KxK confusion matrix; entry [true][predicted] counts samples.
std::vector<std::vector<long>> ConfusionMatrix(
    std::span<const int> predictions, std::span<const int> labels,
    int num_classes);

/// Per-class recall in [0, 1]; classes with no samples report 0.
std::vector<float> PerClassRecall(std::span<const int> predictions,
                                  std::span<const int> labels,
                                  int num_classes);

/// The paper's robustness metric R(eps) = (1 - adv/|Dts|) * 100: the
/// percentage of test samples the attack failed to misclassify.
float RobustnessPct(std::span<const int> predictions,
                    std::span<const int> labels);

}  // namespace axsnn::eval
