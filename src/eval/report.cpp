#include "eval/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "tensor/check.hpp"

namespace axsnn::eval {

std::string FormatValue(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void PrintSeriesTable(std::ostream& os, const std::string& title,
                      const std::string& x_label,
                      const std::vector<double>& xs,
                      const std::vector<Series>& series) {
  os << "== " << title << " ==\n";
  os << std::left << std::setw(10) << x_label;
  for (const Series& s : series) {
    AXSNN_CHECK(s.values.size() == xs.size(),
                "series '" << s.name << "' length mismatch");
    os << std::right << std::setw(std::max<int>(10,
                                                static_cast<int>(
                                                    s.name.size()) + 2))
       << s.name;
  }
  os << '\n';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    os << std::left << std::setw(10) << FormatValue(xs[i], 2);
    for (const Series& s : series) {
      os << std::right << std::setw(std::max<int>(10,
                                                  static_cast<int>(
                                                      s.name.size()) + 2))
         << FormatValue(s.values[i]);
    }
    os << '\n';
  }
  os << '\n';
}

void PrintHeatmap(std::ostream& os, const std::string& title,
                  const std::string& row_label,
                  const std::vector<double>& row_values,
                  const std::string& col_label,
                  const std::vector<double>& col_values,
                  const std::vector<std::vector<double>>& cells) {
  AXSNN_CHECK(cells.size() == row_values.size(), "heatmap row count mismatch");
  os << "== " << title << " ==\n";
  os << "rows: " << row_label << ", cols: " << col_label << '\n';
  os << std::left << std::setw(10) << " ";
  for (double c : col_values)
    os << std::right << std::setw(8) << FormatValue(c, 2);
  os << '\n';
  for (std::size_t r = 0; r < cells.size(); ++r) {
    AXSNN_CHECK(cells[r].size() == col_values.size(),
                "heatmap column count mismatch in row " << r);
    os << std::left << std::setw(10) << FormatValue(row_values[r], 0);
    for (double v : cells[r]) os << std::right << std::setw(8) << FormatValue(v);
    os << '\n';
  }
  os << '\n';
}

void PrintTable(std::ostream& os, const std::string& title,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  os << "== " << title << " ==\n";
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    AXSNN_CHECK(row.size() == header.size(), "table row width mismatch");
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    os << '\n';
  };
  print_row(header);
  for (const auto& row : rows) print_row(row);
  os << '\n';
}

void PrintRunFooter(std::ostream& os, double sweep_seconds, long cells,
                    int pool_size) {
  os << "sweep wall-clock: " << sweep_seconds << " s (" << cells
     << " cells, pool size " << pool_size << ")\n";
}

}  // namespace axsnn::eval
