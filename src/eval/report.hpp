// Plain-text reporting helpers shared by the benchmark harnesses.
//
// Every bench prints the same artifact shape the paper reports: accuracy
// series over a perturbation-budget axis (Figs. 1-3), (Vth x T) heatmaps
// (Figs. 4-7a), grouped bars (Fig. 7b) and settings tables (Tables I-II).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace axsnn::eval {

/// A named series of values over a shared x-axis.
struct Series {
  std::string name;
  std::vector<double> values;
};

/// Prints
///   == title ==
///   x      name1  name2 ...
///   0.10   96.0   51.2  ...
void PrintSeriesTable(std::ostream& os, const std::string& title,
                      const std::string& x_label,
                      const std::vector<double>& xs,
                      const std::vector<Series>& series);

/// Prints a (rows x cols) matrix with labelled axes, e.g. the paper's
/// accuracy heatmaps (rows = time steps, cols = threshold voltage).
void PrintHeatmap(std::ostream& os, const std::string& title,
                  const std::string& row_label,
                  const std::vector<double>& row_values,
                  const std::string& col_label,
                  const std::vector<double>& col_values,
                  const std::vector<std::vector<double>>& cells);

/// Prints a generic table with a header row; columns are padded.
void PrintTable(std::ostream& os, const std::string& title,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);

/// Formats a double with the given precision (helper for table rows).
std::string FormatValue(double v, int precision = 1);

/// Prints the shared sweep footer
///   sweep wall-clock: 12.3 s (40 cells, pool size 4)
/// every grid-driving harness emits (hoisted so the format stays uniform).
void PrintRunFooter(std::ostream& os, double sweep_seconds, long cells,
                    int pool_size);

}  // namespace axsnn::eval
