#include "eval/metrics.hpp"

#include "tensor/check.hpp"

namespace axsnn::eval {

float Accuracy(std::span<const int> predictions, std::span<const int> labels) {
  AXSNN_CHECK(predictions.size() == labels.size() && !labels.empty(),
              "Accuracy needs equal, non-empty prediction/label spans");
  long correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (predictions[i] == labels[i]) ++correct;
  return static_cast<float>(correct) / static_cast<float>(labels.size());
}

std::vector<std::vector<long>> ConfusionMatrix(
    std::span<const int> predictions, std::span<const int> labels,
    int num_classes) {
  AXSNN_CHECK(predictions.size() == labels.size(), "span length mismatch");
  AXSNN_CHECK(num_classes > 0, "num_classes must be positive");
  std::vector<std::vector<long>> m(
      static_cast<std::size_t>(num_classes),
      std::vector<long>(static_cast<std::size_t>(num_classes), 0));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    AXSNN_CHECK(labels[i] >= 0 && labels[i] < num_classes,
                "label out of range");
    AXSNN_CHECK(predictions[i] >= 0 && predictions[i] < num_classes,
                "prediction out of range");
    ++m[static_cast<std::size_t>(labels[i])]
       [static_cast<std::size_t>(predictions[i])];
  }
  return m;
}

std::vector<float> PerClassRecall(std::span<const int> predictions,
                                  std::span<const int> labels,
                                  int num_classes) {
  const auto m = ConfusionMatrix(predictions, labels, num_classes);
  std::vector<float> recall(static_cast<std::size_t>(num_classes), 0.0f);
  for (int k = 0; k < num_classes; ++k) {
    long row_total = 0;
    for (long v : m[static_cast<std::size_t>(k)]) row_total += v;
    if (row_total > 0) {
      recall[static_cast<std::size_t>(k)] =
          static_cast<float>(m[static_cast<std::size_t>(k)]
                              [static_cast<std::size_t>(k)]) /
          static_cast<float>(row_total);
    }
  }
  return recall;
}

float RobustnessPct(std::span<const int> predictions,
                    std::span<const int> labels) {
  return 100.0f * Accuracy(predictions, labels);
}

}  // namespace axsnn::eval
