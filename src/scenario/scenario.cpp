#include "scenario/scenario.hpp"

#include <sstream>

#include "tensor/check.hpp"

namespace axsnn::scenario {

std::string AttackSpec::Label() const {
  if (params.empty()) return name;
  std::ostringstream os;
  os << name << '{';
  bool first = true;
  for (const auto& [key, value] : params) {
    if (!first) os << ',';
    first = false;
    os << key << '=' << value;
  }
  os << '}';
  return os.str();
}

std::size_t ScenarioGrid::CellCount() const {
  return v_thresholds.size() * time_steps.size() * attacks.size() *
         epsilons.size() * aqfs.size() * precisions.size() * levels.size() *
         kernel_modes.size() * faults.size();
}

std::size_t ScenarioGrid::Index(std::size_t vth_i, std::size_t time_i,
                                std::size_t attack_i, std::size_t eps_i,
                                std::size_t aqf_i, std::size_t precision_i,
                                std::size_t level_i, std::size_t kernel_i,
                                std::size_t fault_i) const {
  AXSNN_CHECK(vth_i < v_thresholds.size() && time_i < time_steps.size() &&
                  attack_i < attacks.size() && eps_i < epsilons.size() &&
                  aqf_i < aqfs.size() && precision_i < precisions.size() &&
                  level_i < levels.size() && kernel_i < kernel_modes.size() &&
                  fault_i < faults.size(),
              "scenario cell coordinate out of range");
  std::size_t index = vth_i;
  index = index * time_steps.size() + time_i;
  index = index * attacks.size() + attack_i;
  index = index * epsilons.size() + eps_i;
  index = index * aqfs.size() + aqf_i;
  index = index * precisions.size() + precision_i;
  index = index * levels.size() + level_i;
  index = index * kernel_modes.size() + kernel_i;
  index = index * faults.size() + fault_i;
  return index;
}

std::vector<ScenarioCell> ExpandScenarioGrid(const ScenarioGrid& grid,
                                             std::optional<long> time_override) {
  std::vector<ScenarioCell> cells;
  cells.reserve(grid.CellCount());
  for (std::size_t iv = 0; iv < grid.v_thresholds.size(); ++iv)
    for (std::size_t it = 0; it < grid.time_steps.size(); ++it)
      for (std::size_t ia = 0; ia < grid.attacks.size(); ++ia)
        for (std::size_t ie = 0; ie < grid.epsilons.size(); ++ie)
          for (std::size_t iq = 0; iq < grid.aqfs.size(); ++iq)
            for (std::size_t ip = 0; ip < grid.precisions.size(); ++ip)
              for (std::size_t il = 0; il < grid.levels.size(); ++il)
                for (std::size_t ik = 0; ik < grid.kernel_modes.size();
                     ++ik)
                  for (std::size_t ifl = 0; ifl < grid.faults.size();
                       ++ifl) {
                    ScenarioCell cell;
                    cell.vth_index = iv;
                    cell.time_index = it;
                    cell.attack_index = ia;
                    cell.eps_index = ie;
                    cell.aqf_index = iq;
                    cell.precision_index = ip;
                    cell.level_index = il;
                    cell.kernel_index = ik;
                    cell.fault_index = ifl;
                    cell.vth = grid.v_thresholds[iv];
                    cell.time_steps =
                        time_override.value_or(grid.time_steps[it]);
                    cell.epsilon = grid.epsilons[ie];
                    cell.precision = grid.precisions[ip];
                    cell.level = grid.levels[il];
                    cell.kernel_mode = grid.kernel_modes[ik];
                    cell.fault = grid.faults[ifl];
                    cells.push_back(cell);
                  }
  return cells;
}

void ValidateScenarioGrid(const ScenarioGrid& grid, bool for_events) {
  AXSNN_CHECK(!grid.v_thresholds.empty(), "empty Vth axis");
  AXSNN_CHECK(!grid.time_steps.empty(), "empty time-step axis");
  AXSNN_CHECK(!grid.attacks.empty(), "empty attack axis");
  AXSNN_CHECK(!grid.epsilons.empty(), "empty epsilon axis");
  AXSNN_CHECK(!grid.aqfs.empty(), "empty AQF axis");
  AXSNN_CHECK(!grid.precisions.empty(), "empty precision axis");
  AXSNN_CHECK(!grid.levels.empty(), "empty approximation-level axis");
  AXSNN_CHECK(!grid.kernel_modes.empty(), "empty kernel-mode axis");
  AXSNN_CHECK(!grid.faults.empty(),
              "empty fault axis (use the default single none entry for "
              "fault-free grids)");
  for (const faults::FaultSpec& fault : grid.faults)
    fault.Validate();  // malformed fault cells fail before any training

  for (const AttackSpec& spec : grid.attacks) {
    const attacks::Attack& attack = attacks::GetAttack(spec.name);
    (void)attack.ResolveParams(spec.params);  // typo'd params fail up front
    if (attack.corrupts_model())
      (void)attack.FaultFromParams(spec.params);  // and malformed specs
    if (for_events) {
      AXSNN_CHECK(attack.supports_events(),
                  "attack '" << attack.name()
                             << "' does not apply to event datasets");
    } else {
      AXSNN_CHECK(attack.supports_static(),
                  "attack '" << attack.name()
                             << "' does not apply to static image batches");
    }
  }

  if (for_events) {
    AXSNN_CHECK(grid.time_steps.size() == 1,
                "the DVS workbench fixes T via binning — use a single "
                "time_steps entry (its value is ignored)");
    AXSNN_CHECK(grid.epsilons.size() == 1,
                "event attacks have no epsilon budget — use a single "
                "epsilons entry (its value is ignored)");
  } else {
    for (const auto& aqf : grid.aqfs)
      AXSNN_CHECK(!aqf.has_value(),
                  "AQF filters event streams — static grids must leave "
                  "every aqfs entry disengaged");
  }
}

}  // namespace axsnn::scenario
