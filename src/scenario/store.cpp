#include "scenario/store.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "data/event_io.hpp"
#include "snn/lif_layer.hpp"
#include "tensor/check.hpp"
#include "tensor/serialize.hpp"

namespace axsnn::scenario {

namespace {

constexpr std::uint32_t kEnvelopeMagic = 0x41585354;  // "AXST"
constexpr std::uint32_t kEnvelopeVersion = 1;
/// Unit-journal sanity cap: a grid block never remotely approaches this.
constexpr std::int64_t kMaxUnitBlock = 1 << 26;

/// FNV-1a 64 over explicitly enumerated fields. Structs are never hashed
/// via memcpy — padding bytes are indeterminate.
class Fnv64 {
 public:
  void Bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  void U64(std::uint64_t v) { Bytes(&v, sizeof v); }
  void I64(long long v) { U64(static_cast<std::uint64_t>(v)); }
  void F32(float v) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    U64(bits);
  }
  void F64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    U64(bits);
  }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;
};

std::uint64_t FnvOfBytes(const std::string& bytes) {
  Fnv64 h;
  h.Bytes(bytes.data(), bytes.size());
  return h.value();
}

std::string Hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint32_t FloatBits(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

template <typename T>
void WritePod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void ReadPod(std::istream& is, T& v, const char* what) {
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is)
    throw std::runtime_error(std::string("axsnn: truncated store record: ") +
                             what);
}

// --- fingerprint helpers ---------------------------------------------------

void HashLif(Fnv64& h, const snn::LifParams& lif) {
  h.F32(lif.v_threshold);
  h.F32(lif.beta);
  h.F32(lif.v_reset);
  h.F32(lif.surrogate_alpha);
}

void HashTrainConfig(Fnv64& h, const snn::TrainConfig& cfg) {
  h.I64(cfg.epochs);
  h.I64(cfg.batch_size);
  h.F32(cfg.learning_rate);
  h.F32(cfg.beta1);
  h.F32(cfg.beta2);
  h.F32(cfg.adam_eps);
  h.F32(cfg.weight_decay);
  h.I64(cfg.time_steps);
  h.I64(static_cast<long>(cfg.encoding));
  h.U64(cfg.seed);
  h.I64(cfg.shuffle ? 1 : 0);
}

void HashTensor(Fnv64& h, const Tensor& t) {
  h.U64(t.rank());
  for (std::size_t d = 0; d < t.rank(); ++d) h.I64(t.dim(d));
  h.Bytes(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
}

void HashStaticDataset(Fnv64& h, const data::StaticDataset& ds) {
  HashTensor(h, ds.images);
  h.U64(ds.labels.size());
  for (int label : ds.labels) h.I64(label);
  h.I64(ds.num_classes);
}

void HashEventDataset(Fnv64& h, const data::EventDataset& ds) {
  h.I64(ds.width);
  h.I64(ds.height);
  h.F32(ds.duration_ms);
  h.I64(ds.num_classes);
  h.U64(ds.labels.size());
  for (int label : ds.labels) h.I64(label);
  h.U64(ds.streams.size());
  for (const data::EventStream& s : ds.streams) {
    h.I64(s.width);
    h.I64(s.height);
    h.F32(s.duration_ms);
    h.U64(s.events.size());
    for (const data::Event& e : s.events) {
      h.I64(e.x);
      h.I64(e.y);
      h.I64(e.polarity);
      h.F32(e.t);
    }
  }
}

std::uint64_t FingerprintStatic(const core::StaticWorkbench& bench) {
  Fnv64 h;
  h.Str("axsnn-static-workbench-v1");
  const core::StaticWorkbench::Options& o = bench.options();
  h.I64(o.net.height);
  h.I64(o.net.width);
  h.I64(o.net.channels);
  h.I64(o.net.classes);
  h.I64(o.net.conv1_channels);
  h.I64(o.net.conv2_channels);
  h.I64(o.net.conv3_channels);
  h.I64(o.net.hidden);
  HashLif(h, o.net.lif);
  h.U64(o.net.seed);
  HashTrainConfig(h, o.train);
  h.I64(o.train_time_steps_cap);
  h.I64(o.attack_time_steps_cap);
  h.I64(o.attack_steps);
  h.I64(static_cast<long>(o.eval_encoding));
  h.I64(o.eval_batch);
  h.F64(o.threshold_gain);
  h.I64(o.int8_kernels ? 1 : 0);
  // kernel_mode excluded: bit-identical execution axis by contract.
  h.U64(o.seed);
  HashStaticDataset(h, bench.train_set());
  HashStaticDataset(h, bench.test_set());
  return h.value();
}

std::uint64_t FingerprintDvs(const core::DvsWorkbench& bench) {
  Fnv64 h;
  h.Str("axsnn-dvs-workbench-v1");
  const core::DvsWorkbench::Options& o = bench.options();
  h.I64(o.net.height);
  h.I64(o.net.width);
  h.I64(o.net.channels);
  h.I64(o.net.classes);
  h.I64(o.net.conv1_channels);
  h.I64(o.net.conv2_channels);
  h.I64(o.net.hidden);
  h.F32(o.net.dropout_rate);
  HashLif(h, o.net.lif);
  h.U64(o.net.seed);
  HashTrainConfig(h, o.train);
  h.I64(o.time_bins);
  h.I64(o.sparse.max_iterations);
  h.I64(o.sparse.events_per_iteration);
  h.I64(o.sparse.time_bins);
  h.I64(o.sparse.min_spacing);
  h.U64(o.sparse.seed);
  h.F32(o.frame.period_ms);
  h.I64(o.frame.border);
  h.I64(o.frame.both_polarities ? 1 : 0);
  h.I64(o.eval_batch);
  h.F64(o.threshold_gain);
  h.I64(o.int8_kernels ? 1 : 0);
  // kernel_mode / event_path excluded: bit-identical execution axes.
  h.U64(o.seed);
  HashEventDataset(h, bench.train_set());
  HashEventDataset(h, bench.test_set());
  return h.value();
}

/// Digest of (workbench fingerprint, engine family, every grid axis) with
/// exact float/double bit patterns — two grids share a journal only when
/// every axis value matches to the bit.
std::uint64_t GridDigest(std::uint64_t fingerprint, const char* family,
                         const ScenarioGrid& grid) {
  Fnv64 h;
  h.U64(fingerprint);
  h.Str(family);
  h.U64(grid.v_thresholds.size());
  for (float vth : grid.v_thresholds) h.F32(vth);
  h.U64(grid.time_steps.size());
  for (long t : grid.time_steps) h.I64(t);
  h.U64(grid.attacks.size());
  for (const AttackSpec& attack : grid.attacks) h.Str(attack.Label());
  h.U64(grid.epsilons.size());
  for (double eps : grid.epsilons) h.F64(eps);
  h.U64(grid.aqfs.size());
  for (const std::optional<core::AqfConfig>& aqf : grid.aqfs) {
    h.I64(aqf.has_value() ? 1 : 0);
    if (aqf.has_value()) {
      h.F32(aqf->quantization_step_s);
      h.I64(aqf->spatial_window);
      h.I64(aqf->activity_threshold);
      h.F32(aqf->temporal_threshold_ms);
    }
  }
  h.U64(grid.precisions.size());
  for (approx::Precision p : grid.precisions) h.I64(static_cast<long>(p));
  h.U64(grid.levels.size());
  for (double level : grid.levels) h.F64(level);
  h.U64(grid.kernel_modes.size());
  for (const std::optional<kernels::KernelMode>& mode : grid.kernel_modes) {
    h.I64(mode.has_value() ? 1 : 0);
    if (mode.has_value()) h.I64(static_cast<long>(*mode));
  }
  // Fault axis: the label renders every spec field (kind, domain, target,
  // sites, seed...), so a corrupted unit's journal can never alias a clean
  // grid's — or a differently-faulted grid's — records.
  h.U64(grid.faults.size());
  for (const faults::FaultSpec& fault : grid.faults) h.Str(fault.Label());
  h.I64(grid.min_train_accuracy_pct.has_value() ? 1 : 0);
  if (grid.min_train_accuracy_pct.has_value())
    h.F32(*grid.min_train_accuracy_pct);
  return h.value();
}

// --- shared record payloads ------------------------------------------------

void WriteUnitPayload(std::ostream& os, const UnitRecord& record) {
  WritePod<std::uint8_t>(os, record.gated ? 1 : 0);
  WritePod<float>(os, record.train_accuracy_pct);
  WritePod<std::int64_t>(os, static_cast<std::int64_t>(record.robustness.size()));
  os.write(reinterpret_cast<const char*>(record.robustness.data()),
           static_cast<std::streamsize>(record.robustness.size() *
                                        sizeof(float)));
}

void ReadUnitPayload(std::istream& is, UnitRecord& record) {
  std::uint8_t gated = 0;
  ReadPod(is, gated, "unit gate flag");
  record.gated = gated != 0;
  ReadPod(is, record.train_accuracy_pct, "unit train accuracy");
  std::int64_t count = 0;
  ReadPod(is, count, "unit block size");
  if (count < 0 || count > kMaxUnitBlock)
    throw std::runtime_error("axsnn: implausible unit block size");
  record.robustness.resize(static_cast<std::size_t>(count));
  if (count > 0) {
    is.read(reinterpret_cast<char*>(record.robustness.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
    if (!is)
      throw std::runtime_error(
          "axsnn: truncated store record: unit robustness block");
  }
}

void WriteTotalsPayload(std::ostream& os, const GridTotals& totals) {
  WritePod<std::int64_t>(os, totals.trained_models);
  WritePod<std::int64_t>(os, totals.crafted_sets);
}

GridTotals ReadTotalsPayload(std::istream& is) {
  std::int64_t trained = 0;
  std::int64_t crafted = 0;
  ReadPod(is, trained, "grid totals trained");
  ReadPod(is, crafted, "grid totals crafted");
  if (trained < 0 || crafted < 0)
    throw std::runtime_error("axsnn: negative grid totals");
  return GridTotals{static_cast<long>(trained), static_cast<long>(crafted)};
}

/// Serializes a trained model as its state dict plus meta/calibration
/// tensors (shared layout for both workbench families).
template <typename TrainedModel>
std::map<std::string, Tensor> ModelState(const TrainedModel& model) {
  std::map<std::string, Tensor> state = model.net.StateDict();
  state.emplace("meta.train_acc", Tensor({1}, {model.train_accuracy_pct}));
  for (std::size_t i = 0; i < model.calibration.lif.size(); ++i) {
    const approx::LayerCalibration& lc = model.calibration.lif[i];
    std::ostringstream key;
    key << "calib." << i;
    state.emplace(key.str(),
                  Tensor({4}, {lc.mean_rate, lc.mean_membrane, lc.mean_drive,
                               lc.v_threshold}));
  }
  return state;
}

/// Restores the meta/calibration half of ModelState onto a rebuilt net
/// (the weights were already loaded via LoadStateDict).
template <typename TrainedModel>
void RestoreModelMeta(const std::map<std::string, Tensor>& state,
                      TrainedModel& model) {
  const Tensor& acc = state.at("meta.train_acc");
  if (acc.numel() != 1)
    throw std::runtime_error("axsnn: malformed model record: meta.train_acc");
  model.train_accuracy_pct = acc[0];
  model.calibration.lif.clear();
  const auto lif_layers = model.net.LifLayers();
  for (std::size_t i = 0; i < lif_layers.size(); ++i) {
    std::ostringstream key;
    key << "calib." << i;
    const Tensor& c = state.at(key.str());
    if (c.numel() != 4)
      throw std::runtime_error("axsnn: malformed model record: " + key.str());
    approx::LayerCalibration lc;
    lc.lif_name = lif_layers[i]->Name();
    lc.mean_rate = c[0];
    lc.mean_membrane = c[1];
    lc.mean_drive = c[2];
    lc.v_threshold = c[3];
    model.calibration.lif.push_back(lc);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ArtifactStore
// ---------------------------------------------------------------------------

ArtifactStore::ArtifactStore(std::string root) : root_(std::move(root)) {
  AXSNN_CHECK(!root_.empty(), "artifact store root must be non-empty");
  std::filesystem::create_directories(root_);
}

std::string ArtifactStore::PathFor(const std::string& key) const {
  return root_ + "/" + key + ".bin";
}

void ArtifactStore::Put(const std::string& key, std::uint32_t kind,
                        const std::function<void(std::ostream&)>& write) {
  std::ostringstream payload_os(std::ios::binary);
  write(payload_os);
  const std::string payload = payload_os.str();
  const std::uint64_t digest = FnvOfBytes(payload);

  std::ostringstream tmp_os;
  tmp_os << root_ << "/tmp." << ::getpid() << "."
         << tmp_seq_.fetch_add(1, std::memory_order_relaxed) << "." << key;
  const std::string tmp = tmp_os.str();
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os)
      throw std::runtime_error("axsnn: cannot open store temp file: " + tmp);
    WritePod<std::uint32_t>(os, kEnvelopeMagic);
    WritePod<std::uint32_t>(os, kEnvelopeVersion);
    WritePod<std::uint32_t>(os, kind);
    WritePod<std::uint32_t>(os, 0);  // reserved
    WritePod<std::uint64_t>(os, payload.size());
    WritePod<std::uint64_t>(os, digest);
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.flush();
    if (!os) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error("axsnn: short write to store temp file: " +
                               tmp);
    }
  }
  // Atomic commit: a reader sees either the previous complete artifact or
  // this one, never a partial file. Concurrent writers of one key both
  // wrote identical bytes (deterministic computations), so last-wins is
  // safe.
  std::error_code ec;
  std::filesystem::rename(tmp, PathFor(key), ec);
  if (ec) {
    std::error_code rm;
    std::filesystem::remove(tmp, rm);
    throw std::runtime_error("axsnn: cannot commit store entry " + key +
                             ": " + ec.message());
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
}

bool ArtifactStore::Get(const std::string& key, std::uint32_t kind,
                        const std::function<void(std::istream&)>& read) const {
  std::ifstream is(PathFor(key), std::ios::binary);
  if (!is) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  try {
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::uint32_t stored_kind = 0;
    std::uint32_t reserved = 0;
    std::uint64_t size = 0;
    std::uint64_t digest = 0;
    ReadPod(is, magic, "envelope magic");
    ReadPod(is, version, "envelope version");
    ReadPod(is, stored_kind, "envelope kind");
    ReadPod(is, reserved, "envelope reserved");
    ReadPod(is, size, "envelope payload size");
    ReadPod(is, digest, "envelope checksum");
    if (magic != kEnvelopeMagic)
      throw std::runtime_error("axsnn: bad store envelope magic");
    if (version != kEnvelopeVersion)
      throw std::runtime_error("axsnn: unsupported store envelope version");
    if (stored_kind != kind)
      throw std::runtime_error("axsnn: store entry kind mismatch");
    if (size > (1ull << 40))
      throw std::runtime_error("axsnn: implausible store payload size");
    std::string payload(static_cast<std::size_t>(size), '\0');
    if (size > 0) {
      is.read(payload.data(), static_cast<std::streamsize>(size));
      if (!is)
        throw std::runtime_error("axsnn: truncated store payload");
    }
    if (is.peek() != std::char_traits<char>::eof())
      throw std::runtime_error("axsnn: trailing bytes after store payload");
    if (FnvOfBytes(payload) != digest)
      throw std::runtime_error("axsnn: store payload checksum mismatch");
    std::istringstream payload_is(payload, std::ios::binary);
    read(payload_is);
  } catch (const std::exception&) {
    // Truncated, garbage, wrong-kind or otherwise unparseable: report a
    // corrupt miss so the caller recomputes (and overwrites) it.
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

// ---------------------------------------------------------------------------
// StaticScenarioStore
// ---------------------------------------------------------------------------

StaticScenarioStore::StaticScenarioStore(std::string root,
                                         const core::StaticWorkbench& bench)
    : store_(std::move(root)),
      bench_(bench),
      fingerprint_(FingerprintStatic(bench)) {}

std::string StaticScenarioStore::ModelKey(float vth, long time_steps) const {
  std::ostringstream os;
  os << "m_" << Hex(fingerprint_) << "_v" << Hex(FloatBits(vth)) << "_t"
     << time_steps;
  return os.str();
}

std::string StaticScenarioStore::CraftKey(float vth, long time_steps,
                                          const AttackSpec& attack,
                                          double epsilon) const {
  Fnv64 label;
  label.Str(attack.Label());
  std::ostringstream os;
  os << ModelKey(vth, time_steps) << "_a" << Hex(label.value()) << "_e"
     << Hex(DoubleBits(epsilon));
  return os.str();
}

std::string StaticScenarioStore::GridKey(const ScenarioGrid& grid) const {
  return "g_" + Hex(GridDigest(fingerprint_, "static", grid));
}

bool StaticScenarioStore::LoadModel(float vth, long time_steps,
                                    TrainedModel& out) const {
  return store_.Get(
      ModelKey(vth, time_steps), kArtifactStaticModel, [&](std::istream& is) {
        const std::map<std::string, Tensor> state = ReadTensorMap(is);
        snn::StaticNetOptions net_opts = bench_.options().net;
        net_opts.lif.v_threshold = vth;
        out.net = snn::BuildStaticNet(net_opts);
        out.net.LoadStateDict(state);
        out.v_threshold = vth;
        out.time_steps = time_steps;
        RestoreModelMeta(state, out);
      });
}

void StaticScenarioStore::SaveModel(const TrainedModel& model) {
  const std::map<std::string, Tensor> state = ModelState(model);
  store_.Put(ModelKey(model.v_threshold, model.time_steps),
             kArtifactStaticModel,
             [&](std::ostream& os) { WriteTensorMap(os, state); });
}

bool StaticScenarioStore::LoadCraft(const TrainedModel& model,
                                    const AttackSpec& attack, double epsilon,
                                    Tensor& out) const {
  return store_.Get(
      CraftKey(model.v_threshold, model.time_steps, attack, epsilon),
      kArtifactCraftTensor,
      [&](std::istream& is) { out = ReadTensor(is); });
}

void StaticScenarioStore::SaveCraft(const TrainedModel& model,
                                    const AttackSpec& attack, double epsilon,
                                    const Tensor& images) {
  store_.Put(CraftKey(model.v_threshold, model.time_steps, attack, epsilon),
             kArtifactCraftTensor,
             [&](std::ostream& os) { WriteTensor(os, images); });
}

bool StaticScenarioStore::LoadUnit(const std::string& grid_key, long unit,
                                   UnitRecord& out) const {
  return store_.Get(grid_key + "_u" + std::to_string(unit), kArtifactUnit,
                    [&](std::istream& is) { ReadUnitPayload(is, out); });
}

void StaticScenarioStore::SaveUnit(const std::string& grid_key, long unit,
                                   const UnitRecord& record) {
  store_.Put(grid_key + "_u" + std::to_string(unit), kArtifactUnit,
             [&](std::ostream& os) { WriteUnitPayload(os, record); });
}

GridTotals StaticScenarioStore::LoadTotals(const std::string& grid_key) const {
  GridTotals totals;
  store_.Get(grid_key + "_totals", kArtifactTotals,
             [&](std::istream& is) { totals = ReadTotalsPayload(is); });
  return totals;
}

void StaticScenarioStore::SaveTotals(const std::string& grid_key,
                                     const GridTotals& totals) {
  store_.Put(grid_key + "_totals", kArtifactTotals,
             [&](std::ostream& os) { WriteTotalsPayload(os, totals); });
}

// ---------------------------------------------------------------------------
// DvsScenarioStore
// ---------------------------------------------------------------------------

DvsScenarioStore::DvsScenarioStore(std::string root,
                                   const core::DvsWorkbench& bench)
    : store_(std::move(root)),
      bench_(bench),
      fingerprint_(FingerprintDvs(bench)) {}

std::string DvsScenarioStore::ModelKey(float vth) const {
  std::ostringstream os;
  os << "m_" << Hex(fingerprint_) << "_v" << Hex(FloatBits(vth)) << "_t"
     << bench_.options().time_bins;
  return os.str();
}

std::string DvsScenarioStore::CraftKey(float vth,
                                       const AttackSpec& attack) const {
  Fnv64 label;
  label.Str(attack.Label());
  std::ostringstream os;
  os << ModelKey(vth) << "_a" << Hex(label.value());
  return os.str();
}

std::string DvsScenarioStore::GridKey(const ScenarioGrid& grid) const {
  return "g_" + Hex(GridDigest(fingerprint_, "dvs", grid));
}

bool DvsScenarioStore::LoadModel(float vth, TrainedModel& out) const {
  return store_.Get(ModelKey(vth), kArtifactDvsModel, [&](std::istream& is) {
    const std::map<std::string, Tensor> state = ReadTensorMap(is);
    snn::DvsNetOptions net_opts = bench_.options().net;
    net_opts.lif.v_threshold = vth;
    net_opts.height = bench_.train_set().height;
    net_opts.width = bench_.train_set().width;
    out.net = snn::BuildDvsNet(net_opts);
    out.net.LoadStateDict(state);
    out.v_threshold = vth;
    out.time_bins = bench_.options().time_bins;
    RestoreModelMeta(state, out);
  });
}

void DvsScenarioStore::SaveModel(const TrainedModel& model) {
  const std::map<std::string, Tensor> state = ModelState(model);
  store_.Put(ModelKey(model.v_threshold), kArtifactDvsModel,
             [&](std::ostream& os) { WriteTensorMap(os, state); });
}

bool DvsScenarioStore::LoadCraft(const TrainedModel& model,
                                 const AttackSpec& attack,
                                 data::EventDataset& out) const {
  return store_.Get(CraftKey(model.v_threshold, attack), kArtifactCraftEvents,
                    [&](std::istream& is) { out = data::ReadEventDataset(is); });
}

void DvsScenarioStore::SaveCraft(const TrainedModel& model,
                                 const AttackSpec& attack,
                                 const data::EventDataset& streams) {
  store_.Put(CraftKey(model.v_threshold, attack), kArtifactCraftEvents,
             [&](std::ostream& os) { data::WriteEventDataset(os, streams); });
}

bool DvsScenarioStore::LoadUnit(const std::string& grid_key, long unit,
                                UnitRecord& out) const {
  return store_.Get(grid_key + "_u" + std::to_string(unit), kArtifactUnit,
                    [&](std::istream& is) { ReadUnitPayload(is, out); });
}

void DvsScenarioStore::SaveUnit(const std::string& grid_key, long unit,
                                const UnitRecord& record) {
  store_.Put(grid_key + "_u" + std::to_string(unit), kArtifactUnit,
             [&](std::ostream& os) { WriteUnitPayload(os, record); });
}

GridTotals DvsScenarioStore::LoadTotals(const std::string& grid_key) const {
  GridTotals totals;
  store_.Get(grid_key + "_totals", kArtifactTotals,
             [&](std::istream& is) { totals = ReadTotalsPayload(is); });
  return totals;
}

void DvsScenarioStore::SaveTotals(const std::string& grid_key,
                                  const GridTotals& totals) {
  store_.Put(grid_key + "_totals", kArtifactTotals,
             [&](std::ostream& os) { WriteTotalsPayload(os, totals); });
}

}  // namespace axsnn::scenario
