// Trained-model caches for the scenario engine.
//
// Training an accurate SNN is the dominant cost of every sweep, and grids
// routinely share structural cells: fig2's eight epsilon units share one
// (Vth, T) model, Table I's PGD and BIM searches share each structural
// cell, and the fig4-fig7a heatmaps share all 63. Training is deterministic
// per (vth, T, seed) — every RNG is freshly derived from those inputs — so
// a cache hit is bit-identical to retraining, and grid results stay
// independent of evaluation order and pool size.
//
// Keys use the exact float bit pattern of vth (no epsilon-comparison
// surprises) plus the workbench seed, so two workbenches with different
// seeds sharing one cache never collide.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "core/workbench.hpp"

namespace axsnn::scenario {

namespace detail {

/// Mutex-guarded map<Key, unique_ptr<Model>> with GetOrCompute semantics:
/// compute runs outside the lock (concurrent misses on *different* keys
/// proceed in parallel); a lost same-key race discards the duplicate —
/// every cached computation here (training, crafting) is deterministic,
/// so both results are identical. Also backs the engines' craft caches.
template <typename Key, typename Model>
class CacheTable {
 public:
  const Model& GetOrCompute(const Key& key,
                            const std::function<Model()>& compute) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = models_.find(key);
      if (it != models_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return *it->second;
      }
    }
    auto model = std::make_unique<Model>(compute());
    misses_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = models_.emplace(key, std::move(model));
    (void)inserted;
    return *it->second;
  }

  const Model* Find(const Key& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = models_.find(key);
    return it == models_.end() ? nullptr : it->second.get();
  }

  long hits() const { return hits_.load(std::memory_order_relaxed); }
  long misses() const { return misses_.load(std::memory_order_relaxed); }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return models_.size();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    models_.clear();
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Model>> models_;  // node-stable references
  std::atomic<long> hits_{0};
  std::atomic<long> misses_{0};
};

/// Exact bit pattern of a float, for collision-free cache keys.
std::uint32_t FloatKeyBits(float value);

}  // namespace detail

/// Cache of StaticWorkbench accurate models keyed (vth, T, seed).
class StaticModelCache {
 public:
  using TrainedModel = core::StaticWorkbench::TrainedModel;

  /// Returns the cached model, training via `train` on a miss. The
  /// returned reference stays valid until Clear().
  const TrainedModel& GetOrTrain(float vth, long time_steps,
                                 std::uint64_t seed,
                                 const std::function<TrainedModel()>& train) {
    return table_.GetOrCompute({detail::FloatKeyBits(vth), time_steps, seed},
                               train);
  }

  long hits() const { return table_.hits(); }
  long misses() const { return table_.misses(); }
  std::size_t size() const { return table_.size(); }
  void Clear() { table_.Clear(); }

 private:
  using Key = std::tuple<std::uint32_t, long, std::uint64_t>;
  detail::CacheTable<Key, TrainedModel> table_;
};

/// Cache of DvsWorkbench accurate models keyed (vth, time bins, seed).
class DvsModelCache {
 public:
  using TrainedModel = core::DvsWorkbench::TrainedModel;

  const TrainedModel& GetOrTrain(float vth, long time_bins,
                                 std::uint64_t seed,
                                 const std::function<TrainedModel()>& train) {
    return table_.GetOrCompute({detail::FloatKeyBits(vth), time_bins, seed},
                               train);
  }

  long hits() const { return table_.hits(); }
  long misses() const { return table_.misses(); }
  std::size_t size() const { return table_.size(); }
  void Clear() { table_.Clear(); }

 private:
  using Key = std::tuple<std::uint32_t, long, std::uint64_t>;
  detail::CacheTable<Key, TrainedModel> table_;
};

}  // namespace axsnn::scenario
