// Shard partitioning and run options for distributed scenario execution.
//
// A ScenarioGrid expands into work units in a fixed nesting order (see
// scenario.hpp); `--shard i/N` assigns unit u to shard u % N, so any N
// processes cover the grid exactly once with no coordination. Each shard
// journals its finished units to the shared on-disk store (store.hpp) and a
// final `--resume` pass over the whole grid replays all N journals in grid
// order — producing a report byte-identical to the single-process run.
//
// This header is intentionally tiny (no store/engine dependencies): the
// engines take RunOptions, the drivers take ShardRunnerOptions, and both
// sides share the strict `i/N` grammar below.
#pragma once

#include <optional>
#include <string>

namespace axsnn::scenario {

/// One shard of a deterministic unit partition: this process owns every
/// work unit u with u % count == index.
struct ShardSpec {
  long index = 0;
  long count = 1;

  bool Owns(long unit) const { return unit % count == index; }

  friend bool operator==(const ShardSpec&, const ShardSpec&) = default;
};

/// Parses the strict `i/N` shard grammar (both halves full-string integers
/// via runtime::ParseLongStrict, N > 0, 0 <= i < N). Returns nullopt for
/// anything else — "2/4abc", "0/0", "4/4", "-1/2", "1/2/3", "" all reject.
std::optional<ShardSpec> ParseShardSpec(const std::string& text);

/// Per-Run execution options for Static/DvsScenarioEngine::Run.
struct RunOptions {
  /// When set, only units owned by this shard compute; foreign units stay
  /// unevaluated (NaN robustness) unless replayed via `resume`.
  std::optional<ShardSpec> shard;
  /// Replay units already journaled in the attached store (set_store)
  /// instead of recomputing them. Requires a store. A resume pass with no
  /// shard is the merge step: it folds every shard's journal in grid order.
  bool resume = false;
};

/// Driver-facing argv bundle for the fig/table harnesses.
struct ShardRunnerOptions {
  std::optional<ShardSpec> shard;
  std::string cache_dir;  ///< empty: driver default (possibly no store)
  bool resume = false;
  std::string stats_out;  ///< empty: no machine-readable stats file

  /// Engine options implied by the CLI flags.
  RunOptions run_options() const { return RunOptions{shard, resume}; }
};

/// Parses `--shard i/N`, `--cache-dir DIR`, `--resume`, `--stats-out FILE`
/// from argv (argv[0] is skipped). Throws std::invalid_argument on unknown
/// flags, malformed shard specs, missing values, `--resume` without
/// `--cache-dir`, or a disallowed flag (`allow_shard` / `allow_resume`
/// gate drivers whose report layout cannot shard or resume).
ShardRunnerOptions ParseShardRunnerArgs(int argc, char** argv,
                                        bool allow_shard = true,
                                        bool allow_resume = true);

/// One-line usage suffix for driver error messages, matching the flags
/// ParseShardRunnerArgs accepts.
const char* ShardRunnerUsage();

}  // namespace axsnn::scenario
