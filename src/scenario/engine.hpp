// Scenario engine: executes a declarative ScenarioGrid on a workbench.
//
// The engine turns a grid into work units — one (structural cell, attack,
// epsilon) triple per unit — and runs them on the global runtime pool with
// grain 1, exactly like the hand-rolled sweep loops it replaces. Two caches
// make shared grids cheap:
//
//   * a trained-model cache (model_cache.hpp) keyed (vth, T, seed): grids —
//     and successive Run calls on one engine — sharing a structural cell
//     never retrain it;
//   * a crafted-dataset cache keyed (structural cell, attack label,
//     epsilon): successive grids reusing an attack (Table II's operating
//     points, Algorithm-1 searches over the same cell) never re-craft.
//
// Both caches promote to a shared on-disk artifact store (store.hpp) via
// set_store: trained models and crafted sets persist across processes, and
// every finished work unit journals its result block, so Run(grid, options)
// supports checkpoint/resume (replay journaled units, compute only the
// remainder) and shard fan-out (`--shard i/N` unit partitioning; a resume
// pass with no shard merges all journals in grid order — see shard.hpp).
//
// Determinism: training, crafting and evaluation are each deterministic in
// their seeds, every unit owns its output slots, and nested parallelism is
// throttled to inline by the pool — so Run results are bit-identical at any
// pool size, across cache/store hits and misses, and across any shard
// split. Hooks (set_train_fn / set_craft_fn) let harnesses splice in custom
// computations without touching the engine.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "core/workbench.hpp"
#include "scenario/model_cache.hpp"
#include "scenario/scenario.hpp"
#include "scenario/shard.hpp"

namespace axsnn::scenario {

class StaticScenarioStore;
class DvsScenarioStore;

/// Execution counters of one Run call.
struct ScenarioStats {
  double wall_seconds = 0.0;   ///< whole Run
  double train_seconds = 0.0;  ///< phase 1 (structural-cell training)
  double sweep_seconds = 0.0;  ///< phase 2 (craft + variant evaluation)
  long trained_models = 0;     ///< fresh training computations this call
  long train_cache_hits = 0;   ///< in-memory model-cache hits
  long crafted_sets = 0;       ///< fresh craft computations this call
  long craft_cache_hits = 0;   ///< in-memory craft-cache hits
  long gated_units = 0;        ///< units skipped by min_train_accuracy_pct
  /// Evaluations that ran on a corrupted clone (fault axis entries and
  /// corrupts_model() attacks — src/faults/). Zero on fault-free grids.
  long faulted_evals = 0;
  // Distributed-execution counters (zero without an attached store):
  long store_model_hits = 0;   ///< trained models deserialized from disk
  long store_craft_hits = 0;   ///< crafted sets deserialized from disk
  long replayed_units = 0;     ///< journaled units replayed (resume)
  /// Cumulative fresh computations across every run/shard that touched this
  /// grid's store journal. Without a store these equal trained_models /
  /// crafted_sets, so single-process reports are unchanged — and a merged
  /// shard run reports the same totals as the single-process run.
  long total_trained_models = 0;
  long total_crafted_sets = 0;
  /// Corrupted artifact envelopes the attached store has detected (and
  /// treated as recompute misses) over its lifetime; zero without a store.
  /// CI asserts 0 on clean-cache runs.
  long corrupt_entries = 0;
};

/// Grid results, aligned with ExpandScenarioGrid(grid) order.
struct ScenarioOutcome {
  ScenarioGrid grid;
  std::vector<ScenarioCell> cells;
  /// R(eps) [%] per cell; NaN for gated (unevaluated) cells.
  std::vector<float> robustness_pct;
  /// Train accuracy [%] of the cell's accurate model.
  std::vector<float> train_accuracy_pct;
  /// False for cells skipped by the quality gate.
  std::vector<char> evaluated;
  ScenarioStats stats;

  /// Robustness at one coordinate tuple (see ScenarioGrid::Index).
  float Robustness(std::size_t vth_i, std::size_t time_i,
                   std::size_t attack_i, std::size_t eps_i, std::size_t aqf_i,
                   std::size_t precision_i, std::size_t level_i,
                   std::size_t kernel_i, std::size_t fault_i) const {
    return robustness_pct[grid.Index(vth_i, time_i, attack_i, eps_i, aqf_i,
                                     precision_i, level_i, kernel_i,
                                     fault_i)];
  }

  /// Fault-free shorthand (fault index 0).
  float Robustness(std::size_t vth_i, std::size_t time_i,
                   std::size_t attack_i, std::size_t eps_i, std::size_t aqf_i,
                   std::size_t precision_i, std::size_t level_i,
                   std::size_t kernel_i) const {
    return Robustness(vth_i, time_i, attack_i, eps_i, aqf_i, precision_i,
                      level_i, kernel_i, 0);
  }
};

// ---------------------------------------------------------------------------
// Static-dataset engine
// ---------------------------------------------------------------------------

class StaticScenarioEngine {
 public:
  using TrainedModel = core::StaticWorkbench::TrainedModel;
  using TrainFn = std::function<TrainedModel(float vth, long time_steps)>;
  using CraftFn = std::function<Tensor(
      const TrainedModel& model, const AttackSpec& attack, float epsilon)>;

  explicit StaticScenarioEngine(const core::StaticWorkbench& bench);

  /// Replaces how structural cells train / attacks craft (default:
  /// bench.Train / registry-dispatched bench.Craft). Harness hook for
  /// custom computations; the store (set_store) wraps whatever is
  /// installed here.
  void set_train_fn(TrainFn fn);
  void set_craft_fn(CraftFn fn);

  /// Attaches a persistent on-disk store (borrowed; must outlive the
  /// engine's runs; nullptr detaches). Models and crafted sets then
  /// load-or-compute-and-save through it, and Run journals every finished
  /// work unit for checkpoint/resume and shard merging.
  void set_store(StaticScenarioStore* store) { store_ = store; }

  /// Disables the in-memory trained-model cache (every unit retrains) —
  /// the with/without comparison bench_micro_runtime records. On by
  /// default. The store is not consulted on the uncached path.
  void set_model_cache_enabled(bool enabled) { cache_enabled_ = enabled; }

  /// Trains (or fetches) the model of one structural cell through the
  /// cache — the Algorithm-1 serial path shares models with grids this way.
  /// Consults the attached store before computing.
  const TrainedModel& TrainCached(float vth, long time_steps);

  /// Executes the grid. Validates first (throws std::invalid_argument on
  /// unknown attacks/params or axis misuse).
  ScenarioOutcome Run(const ScenarioGrid& grid);

  /// Executes the grid with shard/resume options (shard.hpp). `resume`
  /// requires an attached store; units outside `options.shard` stay
  /// unevaluated unless replayed from the journal.
  ScenarioOutcome Run(const ScenarioGrid& grid, const RunOptions& options);

  StaticModelCache& model_cache() { return model_cache_; }
  const core::StaticWorkbench& bench() const { return bench_; }

  /// Drops cached crafted datasets (models stay; use model_cache().Clear()
  /// for those).
  void ClearCraftCache();

 private:
  const core::StaticWorkbench& bench_;
  TrainFn train_fn_;
  CraftFn craft_fn_;
  bool cache_enabled_ = true;
  StaticScenarioStore* store_ = nullptr;
  StaticModelCache model_cache_;
  detail::CacheTable<std::string, Tensor> craft_cache_;
  // Engine-cumulative counters (Run reports per-call diffs): fresh
  // train_fn_/craft_fn_ invocations and store deserializations.
  std::atomic<long> computed_trains_{0};
  std::atomic<long> computed_crafts_{0};
  std::atomic<long> store_model_hits_{0};
  std::atomic<long> store_craft_hits_{0};
};

// ---------------------------------------------------------------------------
// Neuromorphic engine
// ---------------------------------------------------------------------------

class DvsScenarioEngine {
 public:
  using TrainedModel = core::DvsWorkbench::TrainedModel;
  using TrainFn = std::function<TrainedModel(float vth)>;
  using CraftFn = std::function<data::EventDataset(const TrainedModel& model,
                                                   const AttackSpec& attack)>;

  explicit DvsScenarioEngine(const core::DvsWorkbench& bench);

  void set_train_fn(TrainFn fn);
  void set_craft_fn(CraftFn fn);
  void set_store(DvsScenarioStore* store) { store_ = store; }
  void set_model_cache_enabled(bool enabled) { cache_enabled_ = enabled; }

  const TrainedModel& TrainCached(float vth);

  /// Executes the grid (time_steps / epsilons must be single-entry; every
  /// cell resolves T to the workbench binning).
  ScenarioOutcome Run(const ScenarioGrid& grid);
  ScenarioOutcome Run(const ScenarioGrid& grid, const RunOptions& options);

  DvsModelCache& model_cache() { return model_cache_; }
  const core::DvsWorkbench& bench() const { return bench_; }
  void ClearCraftCache();

 private:
  const core::DvsWorkbench& bench_;
  TrainFn train_fn_;
  CraftFn craft_fn_;
  bool cache_enabled_ = true;
  DvsScenarioStore* store_ = nullptr;
  DvsModelCache model_cache_;
  detail::CacheTable<std::string, data::EventDataset> craft_cache_;
  std::atomic<long> computed_trains_{0};
  std::atomic<long> computed_crafts_{0};
  std::atomic<long> store_model_hits_{0};
  std::atomic<long> store_craft_hits_{0};
};

}  // namespace axsnn::scenario
