// Scenario engine: executes a declarative ScenarioGrid on a workbench.
//
// The engine turns a grid into work units — one (structural cell, attack,
// epsilon) triple per unit — and runs them on the global runtime pool with
// grain 1, exactly like the hand-rolled sweep loops it replaces. Two caches
// make shared grids cheap:
//
//   * a trained-model cache (model_cache.hpp) keyed (vth, T, seed): grids —
//     and successive Run calls on one engine — sharing a structural cell
//     never retrain it;
//   * a crafted-dataset cache keyed (structural cell, attack label,
//     epsilon): successive grids reusing an attack (Table II's operating
//     points, Algorithm-1 searches over the same cell) never re-craft.
//
// Determinism: training, crafting and evaluation are each deterministic in
// their seeds, every unit owns its output slots, and nested parallelism is
// throttled to inline by the pool — so Run results are bit-identical at any
// pool size and across cache hits/misses. Hooks (set_train_fn /
// set_craft_fn) let harnesses splice in persistent disk caches (see
// bench_common's heatmap cell cache) without touching the engine.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/workbench.hpp"
#include "scenario/model_cache.hpp"
#include "scenario/scenario.hpp"

namespace axsnn::scenario {

/// Execution counters of one Run call.
struct ScenarioStats {
  double wall_seconds = 0.0;   ///< whole Run
  double train_seconds = 0.0;  ///< phase 1 (structural-cell training)
  double sweep_seconds = 0.0;  ///< phase 2 (craft + variant evaluation)
  long trained_models = 0;     ///< training runs this call (cache misses)
  long train_cache_hits = 0;
  long crafted_sets = 0;       ///< craft runs this call (cache misses)
  long craft_cache_hits = 0;
  long gated_units = 0;        ///< units skipped by min_train_accuracy_pct
};

/// Grid results, aligned with ExpandScenarioGrid(grid) order.
struct ScenarioOutcome {
  ScenarioGrid grid;
  std::vector<ScenarioCell> cells;
  /// R(eps) [%] per cell; NaN for gated (unevaluated) cells.
  std::vector<float> robustness_pct;
  /// Train accuracy [%] of the cell's accurate model.
  std::vector<float> train_accuracy_pct;
  /// False for cells skipped by the quality gate.
  std::vector<char> evaluated;
  ScenarioStats stats;

  /// Robustness at one coordinate tuple (see ScenarioGrid::Index).
  float Robustness(std::size_t vth_i, std::size_t time_i,
                   std::size_t attack_i, std::size_t eps_i, std::size_t aqf_i,
                   std::size_t precision_i, std::size_t level_i,
                   std::size_t kernel_i) const {
    return robustness_pct[grid.Index(vth_i, time_i, attack_i, eps_i, aqf_i,
                                     precision_i, level_i, kernel_i)];
  }
};

// ---------------------------------------------------------------------------
// Static-dataset engine
// ---------------------------------------------------------------------------

class StaticScenarioEngine {
 public:
  using TrainedModel = core::StaticWorkbench::TrainedModel;
  using TrainFn = std::function<TrainedModel(float vth, long time_steps)>;
  using CraftFn = std::function<Tensor(
      const TrainedModel& model, const AttackSpec& attack, float epsilon)>;

  explicit StaticScenarioEngine(const core::StaticWorkbench& bench);

  /// Replaces how structural cells train / attacks craft (default:
  /// bench.Train / registry-dispatched bench.Craft). Harness hook for
  /// persistent disk caches.
  void set_train_fn(TrainFn fn);
  void set_craft_fn(CraftFn fn);

  /// Disables the in-memory trained-model cache (every unit retrains) —
  /// the with/without comparison bench_micro_runtime records. On by
  /// default.
  void set_model_cache_enabled(bool enabled) { cache_enabled_ = enabled; }

  /// Trains (or fetches) the model of one structural cell through the
  /// cache — the Algorithm-1 serial path shares models with grids this way.
  const TrainedModel& TrainCached(float vth, long time_steps);

  /// Executes the grid. Validates first (throws std::invalid_argument on
  /// unknown attacks/params or axis misuse).
  ScenarioOutcome Run(const ScenarioGrid& grid);

  StaticModelCache& model_cache() { return model_cache_; }
  const core::StaticWorkbench& bench() const { return bench_; }

  /// Drops cached crafted datasets (models stay; use model_cache().Clear()
  /// for those).
  void ClearCraftCache();

 private:
  const core::StaticWorkbench& bench_;
  TrainFn train_fn_;
  CraftFn craft_fn_;
  bool cache_enabled_ = true;
  StaticModelCache model_cache_;
  detail::CacheTable<std::string, Tensor> craft_cache_;
};

// ---------------------------------------------------------------------------
// Neuromorphic engine
// ---------------------------------------------------------------------------

class DvsScenarioEngine {
 public:
  using TrainedModel = core::DvsWorkbench::TrainedModel;
  using TrainFn = std::function<TrainedModel(float vth)>;
  using CraftFn = std::function<data::EventDataset(const TrainedModel& model,
                                                   const AttackSpec& attack)>;

  explicit DvsScenarioEngine(const core::DvsWorkbench& bench);

  void set_train_fn(TrainFn fn);
  void set_craft_fn(CraftFn fn);
  void set_model_cache_enabled(bool enabled) { cache_enabled_ = enabled; }

  const TrainedModel& TrainCached(float vth);

  /// Executes the grid (time_steps / epsilons must be single-entry; every
  /// cell resolves T to the workbench binning).
  ScenarioOutcome Run(const ScenarioGrid& grid);

  DvsModelCache& model_cache() { return model_cache_; }
  const core::DvsWorkbench& bench() const { return bench_; }
  void ClearCraftCache();

 private:
  const core::DvsWorkbench& bench_;
  TrainFn train_fn_;
  CraftFn craft_fn_;
  bool cache_enabled_ = true;
  DvsModelCache model_cache_;
  detail::CacheTable<std::string, data::EventDataset> craft_cache_;
};

}  // namespace axsnn::scenario
