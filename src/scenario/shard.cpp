#include "scenario/shard.hpp"

#include <stdexcept>
#include <string_view>

#include "runtime/thread_pool.hpp"

namespace axsnn::scenario {

std::optional<ShardSpec> ParseShardSpec(const std::string& text) {
  // Digits and one '/' only — stricter than ParseLongStrict alone, whose
  // strtol core skips leading whitespace and accepts signs.
  for (char c : text)
    if ((c < '0' || c > '9') && c != '/') return std::nullopt;
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) return std::nullopt;
  // ParseLongStrict validates the full substring, so a second '/' (as in
  // "1/2/3") or trailing garbage ("2/4abc") rejects the denominator.
  const std::optional<long> index =
      runtime::ParseLongStrict(text.substr(0, slash).c_str());
  const std::optional<long> count =
      runtime::ParseLongStrict(text.substr(slash + 1).c_str());
  if (!index.has_value() || !count.has_value()) return std::nullopt;
  if (*count <= 0 || *index < 0 || *index >= *count) return std::nullopt;
  return ShardSpec{*index, *count};
}

const char* ShardRunnerUsage() {
  return "[--cache-dir DIR] [--shard i/N] [--resume] [--stats-out FILE]";
}

ShardRunnerOptions ParseShardRunnerArgs(int argc, char** argv,
                                        bool allow_shard, bool allow_resume) {
  ShardRunnerOptions opts;
  const auto value_of = [&](int& i, std::string_view flag) -> std::string {
    if (i + 1 >= argc)
      throw std::invalid_argument(std::string(flag) + " requires a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--shard") {
      if (!allow_shard)
        throw std::invalid_argument("--shard is not supported by this driver");
      const std::string spec = value_of(i, arg);
      const std::optional<ShardSpec> parsed = ParseShardSpec(spec);
      if (!parsed.has_value())
        throw std::invalid_argument("--shard expects i/N with integers 0 <= "
                                    "i < N, got \"" +
                                    spec + "\"");
      opts.shard = *parsed;
    } else if (arg == "--cache-dir") {
      opts.cache_dir = value_of(i, arg);
      if (opts.cache_dir.empty())
        throw std::invalid_argument("--cache-dir requires a non-empty path");
    } else if (arg == "--resume") {
      if (!allow_resume)
        throw std::invalid_argument("--resume is not supported by this driver");
      opts.resume = true;
    } else if (arg == "--stats-out") {
      opts.stats_out = value_of(i, arg);
    } else {
      throw std::invalid_argument("unknown argument \"" + std::string(arg) +
                                  "\"");
    }
  }
  if (opts.resume && opts.cache_dir.empty())
    throw std::invalid_argument(
        "--resume replays a journal and needs --cache-dir");
  return opts;
}

}  // namespace axsnn::scenario
