// Declarative scenario grids — the data half of the scenario engine.
//
// The paper's Algorithm 1 and every figure/table harness sweep the same
// axes: structural parameters (Vth, T), an attack with its parameters, a
// perturbation budget, the approximation knobs (precision scale, level) and
// — orthogonally — the kernel implementation and the AQF defense. A
// ScenarioGrid names those axes once; the engine (engine.hpp) expands the
// cross product into cells, shares trained models and crafted datasets
// between cells, and fans the evaluation out on the runtime pool.
//
// Expansion order is part of the contract (drivers map results back to
// figures by index): axes nest outer-to-inner as
//
//   vth -> time -> attack -> epsilon -> aqf -> precision -> level -> kernel
//       -> fault
//
// so one "work unit" (a trained model + one crafted dataset) owns a
// contiguous block of cells. The fault axis (src/faults/) is innermost: a
// fault corrupts an evaluated variant, never the trained model or the
// crafted set, so every fault cell of a unit reuses the same artifacts.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "approx/precision.hpp"
#include "attacks/registry.hpp"
#include "core/aqf.hpp"
#include "faults/fault_model.hpp"
#include "kernels/dispatch.hpp"

namespace axsnn::scenario {

/// One attack-axis entry: a registry name plus parameter overrides.
struct AttackSpec {
  std::string name = "none";
  attacks::ParamMap params;

  /// "PGD" or "Sparse{max_iterations=4}" — deterministic (ParamMap is
  /// ordered), used for reports and cache keys.
  std::string Label() const;
};

/// The declarative sweep. Every axis must be non-empty; single-entry axes
/// pin a value. The DVS engine requires time_steps and epsilons to be
/// single-entry (binning fixes T; event attacks have no epsilon) and the
/// static engine requires every aqf entry to be disengaged (AQF filters
/// event streams only).
struct ScenarioGrid {
  std::vector<float> v_thresholds = {0.25f};
  std::vector<long> time_steps = {32};
  std::vector<AttackSpec> attacks = {AttackSpec{}};
  /// Effective l_inf budgets handed to Craft (callers apply any paper-axis
  /// compression themselves, see bench::kEpsilonScale).
  std::vector<double> epsilons = {0.0};
  std::vector<std::optional<core::AqfConfig>> aqfs = {std::nullopt};
  std::vector<approx::Precision> precisions = {approx::Precision::kFp32};
  std::vector<double> levels = {0.0};
  /// Kernel-implementation axis (bit-identical across entries — a perf /
  /// determinism-testing axis, never an accuracy one). nullopt defers to
  /// the workbench option.
  std::vector<std::optional<kernels::KernelMode>> kernel_modes = {
      std::nullopt};
  /// Fault axis (innermost): each entry corrupts a clone of the evaluated
  /// variant via faults::ApplyFault before measuring. The default single
  /// none entry keeps fault-free grids identical to the 8-axis layout. A
  /// fault cell's store key folds the fault label, so corrupted unit
  /// results never alias clean ones.
  std::vector<faults::FaultSpec> faults = {faults::FaultSpec{}};

  /// Algorithm 1 line 4: structural cells whose accurate model trains below
  /// this [%] are gated — their cells are skipped (robustness NaN,
  /// evaluated = false). Disengaged: evaluate everything.
  std::optional<float> min_train_accuracy_pct;

  /// Number of cells in the full cross product.
  std::size_t CellCount() const;

  /// Flat cell index for one coordinate tuple, in the documented nesting.
  std::size_t Index(std::size_t vth_i, std::size_t time_i,
                    std::size_t attack_i, std::size_t eps_i,
                    std::size_t aqf_i, std::size_t precision_i,
                    std::size_t level_i, std::size_t kernel_i,
                    std::size_t fault_i) const;

  /// Fault-free shorthand (fault index 0 — the clean cell of the default
  /// single-none fault axis). Keeps 8-axis drivers source-compatible.
  std::size_t Index(std::size_t vth_i, std::size_t time_i,
                    std::size_t attack_i, std::size_t eps_i,
                    std::size_t aqf_i, std::size_t precision_i,
                    std::size_t level_i, std::size_t kernel_i) const {
    return Index(vth_i, time_i, attack_i, eps_i, aqf_i, precision_i,
                 level_i, kernel_i, 0);
  }
};

/// One expanded cell: axis indices plus the resolved values (the AQF config
/// is reached through grid.aqfs[aqf_index]).
struct ScenarioCell {
  std::size_t vth_index = 0;
  std::size_t time_index = 0;
  std::size_t attack_index = 0;
  std::size_t eps_index = 0;
  std::size_t aqf_index = 0;
  std::size_t precision_index = 0;
  std::size_t level_index = 0;
  std::size_t kernel_index = 0;
  std::size_t fault_index = 0;

  float vth = 0.0f;
  long time_steps = 0;
  double epsilon = 0.0;
  approx::Precision precision = approx::Precision::kFp32;
  double level = 0.0;
  std::optional<kernels::KernelMode> kernel_mode;
  faults::FaultSpec fault;
};

/// Expands the grid in the documented nesting order. `time_override`
/// replaces every cell's resolved time_steps (the DVS engine passes its
/// binning T); indices still follow the declared axis.
std::vector<ScenarioCell> ExpandScenarioGrid(
    const ScenarioGrid& grid, std::optional<long> time_override = {});

/// Validates axes (non-empty), resolves every attack against the registry
/// (unknown names/params throw) and checks workbench applicability:
/// `for_events` selects event-dataset rules (attacks must support events,
/// single time/epsilon entries), otherwise static rules (attacks must
/// support static batches, every aqf disengaged). Throws
/// std::invalid_argument describing the violation.
void ValidateScenarioGrid(const ScenarioGrid& grid, bool for_events);

}  // namespace axsnn::scenario
