#include "scenario/engine.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::scenario {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t DoubleKeyBits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// Collision-free craft-cache key: structural cell + attack identity (the
/// deterministic label includes parameter overrides) + exact epsilon bits.
std::string CraftKey(float vth, long time_steps, const AttackSpec& attack,
                     double epsilon) {
  std::ostringstream os;
  os << 'v' << detail::FloatKeyBits(vth) << '|' << 't' << time_steps << '|'
     << attack.Label() << '|' << 'e' << DoubleKeyBits(epsilon);
  return os.str();
}

/// The per-unit variant list: the aqf x precision x level x kernel inner
/// block of the documented nesting, in cell order. The aqf coordinate is
/// not a variant property (the static engine forbids it, the DVS engine
/// evaluates one aqf slice at a time), so the list covers precision x level
/// x kernel and callers place it per aqf slice.
std::vector<core::VariantSpec> VariantBlock(const ScenarioGrid& grid) {
  std::vector<core::VariantSpec> specs;
  specs.reserve(grid.precisions.size() * grid.levels.size() *
                grid.kernel_modes.size());
  for (approx::Precision precision : grid.precisions)
    for (double level : grid.levels)
      for (const std::optional<kernels::KernelMode>& mode : grid.kernel_modes)
        specs.push_back({precision, level, mode});
  return specs;
}

}  // namespace

// ---------------------------------------------------------------------------
// StaticScenarioEngine
// ---------------------------------------------------------------------------

StaticScenarioEngine::StaticScenarioEngine(const core::StaticWorkbench& bench)
    : bench_(bench) {
  train_fn_ = [this](float vth, long t) { return bench_.Train(vth, t); };
  craft_fn_ = [this](const TrainedModel& model, const AttackSpec& attack,
                     float epsilon) {
    return bench_.Craft(model, attack.name, epsilon, attack.params);
  };
}

void StaticScenarioEngine::set_train_fn(TrainFn fn) {
  AXSNN_CHECK(fn != nullptr, "train hook must be callable");
  train_fn_ = std::move(fn);
}

void StaticScenarioEngine::set_craft_fn(CraftFn fn) {
  AXSNN_CHECK(fn != nullptr, "craft hook must be callable");
  craft_fn_ = std::move(fn);
}

const StaticScenarioEngine::TrainedModel& StaticScenarioEngine::TrainCached(
    float vth, long time_steps) {
  return model_cache_.GetOrTrain(
      vth, time_steps, bench_.options().seed,
      [&] { return train_fn_(vth, time_steps); });
}

void StaticScenarioEngine::ClearCraftCache() { craft_cache_.Clear(); }

ScenarioOutcome StaticScenarioEngine::Run(const ScenarioGrid& grid) {
  ValidateScenarioGrid(grid, /*for_events=*/false);

  ScenarioOutcome outcome;
  outcome.grid = grid;
  outcome.cells = ExpandScenarioGrid(grid);
  const std::size_t cell_count = outcome.cells.size();
  outcome.robustness_pct.assign(cell_count,
                                std::numeric_limits<float>::quiet_NaN());
  outcome.train_accuracy_pct.assign(cell_count, 0.0f);
  outcome.evaluated.assign(cell_count, 0);

  const auto run_start = Clock::now();
  const long train_hits0 = model_cache_.hits();
  const long train_misses0 = model_cache_.misses();
  const long craft_hits0 = craft_cache_.hits();
  const long craft_misses0 = craft_cache_.misses();
  std::atomic<long> uncached_trainings{0};
  std::atomic<long> gated_units{0};

  // Phase 1: train every unique structural cell, cells in parallel. With
  // the cache disabled units train for themselves in phase 2.
  const long vth_count = static_cast<long>(grid.v_thresholds.size());
  const long time_count = static_cast<long>(grid.time_steps.size());
  if (cache_enabled_) {
    runtime::ParallelFor(
        0, vth_count * time_count,
        [&](long idx) {
          const float vth =
              grid.v_thresholds[static_cast<std::size_t>(idx / time_count)];
          const long t =
              grid.time_steps[static_cast<std::size_t>(idx % time_count)];
          (void)TrainCached(vth, t);
        },
        /*grain=*/1);
  }
  outcome.stats.train_seconds = SecondsSince(run_start);

  // Phase 2: one work unit per (structural cell, attack, epsilon) — craft
  // once, then fan the variant block out through EvaluateVariants. Each
  // unit owns a contiguous slice of the outcome, so the fan-out is
  // bit-identical at any pool size.
  const auto sweep_start = Clock::now();
  const std::vector<core::VariantSpec> variants = VariantBlock(grid);
  const std::size_t block =
      grid.aqfs.size() * variants.size();  // cells per unit
  const long attack_count = static_cast<long>(grid.attacks.size());
  const long eps_count = static_cast<long>(grid.epsilons.size());
  const long unit_count = vth_count * time_count * attack_count * eps_count;

  runtime::ParallelFor(
      0, unit_count,
      [&](long unit) {
        long rest = unit;
        const std::size_t ie = static_cast<std::size_t>(rest % eps_count);
        rest /= eps_count;
        const std::size_t ia = static_cast<std::size_t>(rest % attack_count);
        rest /= attack_count;
        const std::size_t it = static_cast<std::size_t>(rest % time_count);
        const std::size_t iv = static_cast<std::size_t>(rest / time_count);

        const float vth = grid.v_thresholds[iv];
        const long t = grid.time_steps[it];
        const AttackSpec& attack = grid.attacks[ia];
        const double epsilon = grid.epsilons[ie];

        TrainedModel local;
        const TrainedModel* model = nullptr;
        if (cache_enabled_) {
          model = &TrainCached(vth, t);
        } else {
          local = train_fn_(vth, t);
          uncached_trainings.fetch_add(1, std::memory_order_relaxed);
          model = &local;
        }

        const std::size_t base = grid.Index(iv, it, ia, ie, 0, 0, 0, 0);
        for (std::size_t i = 0; i < block; ++i)
          outcome.train_accuracy_pct[base + i] = model->train_accuracy_pct;

        if (grid.min_train_accuracy_pct.has_value() &&
            model->train_accuracy_pct < *grid.min_train_accuracy_pct) {
          gated_units.fetch_add(1, std::memory_order_relaxed);
          return;  // robustness stays NaN, evaluated stays false
        }

        // Craft through the cache (persistent across Run calls).
        const Tensor& adversarial = craft_cache_.GetOrCompute(
            CraftKey(vth, t, attack, epsilon), [&] {
              return craft_fn_(*model, attack, static_cast<float>(epsilon));
            });

        const std::vector<float> robustness =
            bench_.EvaluateVariants(*model, adversarial, variants);
        for (std::size_t iq = 0; iq < grid.aqfs.size(); ++iq) {
          const std::size_t slice = base + iq * variants.size();
          for (std::size_t i = 0; i < variants.size(); ++i) {
            outcome.robustness_pct[slice + i] = robustness[i];
            outcome.evaluated[slice + i] = 1;
          }
        }
      },
      /*grain=*/1);

  outcome.stats.sweep_seconds = SecondsSince(sweep_start);
  outcome.stats.wall_seconds = SecondsSince(run_start);
  outcome.stats.train_cache_hits = model_cache_.hits() - train_hits0;
  outcome.stats.trained_models = model_cache_.misses() - train_misses0 +
                                 uncached_trainings.load();
  outcome.stats.craft_cache_hits = craft_cache_.hits() - craft_hits0;
  outcome.stats.crafted_sets = craft_cache_.misses() - craft_misses0;
  outcome.stats.gated_units = gated_units.load();
  return outcome;
}

// ---------------------------------------------------------------------------
// DvsScenarioEngine
// ---------------------------------------------------------------------------

DvsScenarioEngine::DvsScenarioEngine(const core::DvsWorkbench& bench)
    : bench_(bench) {
  train_fn_ = [this](float vth) { return bench_.Train(vth); };
  craft_fn_ = [this](const TrainedModel& model, const AttackSpec& attack) {
    return bench_.Craft(model, attack.name, attack.params);
  };
}

void DvsScenarioEngine::set_train_fn(TrainFn fn) {
  AXSNN_CHECK(fn != nullptr, "train hook must be callable");
  train_fn_ = std::move(fn);
}

void DvsScenarioEngine::set_craft_fn(CraftFn fn) {
  AXSNN_CHECK(fn != nullptr, "craft hook must be callable");
  craft_fn_ = std::move(fn);
}

const DvsScenarioEngine::TrainedModel& DvsScenarioEngine::TrainCached(
    float vth) {
  return model_cache_.GetOrTrain(vth, bench_.options().time_bins,
                                 bench_.options().seed,
                                 [&] { return train_fn_(vth); });
}

void DvsScenarioEngine::ClearCraftCache() { craft_cache_.Clear(); }

ScenarioOutcome DvsScenarioEngine::Run(const ScenarioGrid& grid) {
  ValidateScenarioGrid(grid, /*for_events=*/true);

  ScenarioOutcome outcome;
  outcome.grid = grid;
  outcome.cells =
      ExpandScenarioGrid(grid, /*time_override=*/bench_.options().time_bins);
  const std::size_t cell_count = outcome.cells.size();
  outcome.robustness_pct.assign(cell_count,
                                std::numeric_limits<float>::quiet_NaN());
  outcome.train_accuracy_pct.assign(cell_count, 0.0f);
  outcome.evaluated.assign(cell_count, 0);

  const auto run_start = Clock::now();
  const long train_hits0 = model_cache_.hits();
  const long train_misses0 = model_cache_.misses();
  const long craft_hits0 = craft_cache_.hits();
  const long craft_misses0 = craft_cache_.misses();
  std::atomic<long> uncached_trainings{0};
  std::atomic<long> gated_units{0};

  const long vth_count = static_cast<long>(grid.v_thresholds.size());
  if (cache_enabled_) {
    runtime::ParallelFor(
        0, vth_count,
        [&](long iv) {
          (void)TrainCached(grid.v_thresholds[static_cast<std::size_t>(iv)]);
        },
        /*grain=*/1);
  }
  outcome.stats.train_seconds = SecondsSince(run_start);

  // Phase 2: one unit per (vth, attack); AQF slices evaluate inside the
  // unit (filter + binning are shared per slice by EvaluateVariants).
  const auto sweep_start = Clock::now();
  const std::vector<core::VariantSpec> variants = VariantBlock(grid);
  const long attack_count = static_cast<long>(grid.attacks.size());
  const long unit_count = vth_count * attack_count;

  runtime::ParallelFor(
      0, unit_count,
      [&](long unit) {
        const std::size_t ia = static_cast<std::size_t>(unit % attack_count);
        const std::size_t iv = static_cast<std::size_t>(unit / attack_count);
        const float vth = grid.v_thresholds[iv];
        const AttackSpec& attack = grid.attacks[ia];

        TrainedModel local;
        const TrainedModel* model = nullptr;
        if (cache_enabled_) {
          model = &TrainCached(vth);
        } else {
          local = train_fn_(vth);
          uncached_trainings.fetch_add(1, std::memory_order_relaxed);
          model = &local;
        }

        const std::size_t base = grid.Index(iv, 0, ia, 0, 0, 0, 0, 0);
        const std::size_t block = grid.aqfs.size() * variants.size();
        for (std::size_t i = 0; i < block; ++i)
          outcome.train_accuracy_pct[base + i] = model->train_accuracy_pct;

        if (grid.min_train_accuracy_pct.has_value() &&
            model->train_accuracy_pct < *grid.min_train_accuracy_pct) {
          gated_units.fetch_add(1, std::memory_order_relaxed);
          return;
        }

        const data::EventDataset& adversarial = craft_cache_.GetOrCompute(
            CraftKey(vth, bench_.options().time_bins, attack, /*epsilon=*/0.0),
            [&] { return craft_fn_(*model, attack); });

        for (std::size_t iq = 0; iq < grid.aqfs.size(); ++iq) {
          const std::vector<float> robustness = bench_.EvaluateVariants(
              *model, adversarial, grid.aqfs[iq], variants);
          const std::size_t slice = base + iq * variants.size();
          for (std::size_t i = 0; i < variants.size(); ++i) {
            outcome.robustness_pct[slice + i] = robustness[i];
            outcome.evaluated[slice + i] = 1;
          }
        }
      },
      /*grain=*/1);

  outcome.stats.sweep_seconds = SecondsSince(sweep_start);
  outcome.stats.wall_seconds = SecondsSince(run_start);
  outcome.stats.train_cache_hits = model_cache_.hits() - train_hits0;
  outcome.stats.trained_models = model_cache_.misses() - train_misses0 +
                                 uncached_trainings.load();
  outcome.stats.craft_cache_hits = craft_cache_.hits() - craft_hits0;
  outcome.stats.crafted_sets = craft_cache_.misses() - craft_misses0;
  outcome.stats.gated_units = gated_units.load();
  return outcome;
}

}  // namespace axsnn::scenario
