#include "scenario/engine.hpp"

#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <utility>

#include "faults/inject.hpp"
#include "runtime/parallel_for.hpp"
#include "scenario/store.hpp"
#include "tensor/check.hpp"

namespace axsnn::scenario {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t DoubleKeyBits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// Collision-free craft-cache key: structural cell + attack identity (the
/// deterministic label includes parameter overrides) + exact epsilon bits.
std::string CraftKey(float vth, long time_steps, const AttackSpec& attack,
                     double epsilon) {
  std::ostringstream os;
  os << 'v' << detail::FloatKeyBits(vth) << '|' << 't' << time_steps << '|'
     << attack.Label() << '|' << 'e' << DoubleKeyBits(epsilon);
  return os.str();
}

/// The per-unit variant list: the aqf x precision x level x kernel inner
/// block of the documented nesting, in cell order. The aqf coordinate is
/// not a variant property (the static engine forbids it, the DVS engine
/// evaluates one aqf slice at a time), so the list covers precision x level
/// x kernel and callers place it per aqf slice.
std::vector<core::VariantSpec> VariantBlock(const ScenarioGrid& grid) {
  std::vector<core::VariantSpec> specs;
  specs.reserve(grid.precisions.size() * grid.levels.size() *
                grid.kernel_modes.size());
  for (approx::Precision precision : grid.precisions)
    for (double level : grid.levels)
      for (const std::optional<kernels::KernelMode>& mode : grid.kernel_modes)
        specs.push_back({precision, level, mode});
  return specs;
}

/// Attack-level fault: a corrupts_model() attack (bitflip, stuckat) derives
/// one spec from its params; perturbation attacks contribute none.
faults::FaultSpec AttackFault(const AttackSpec& attack) {
  const attacks::Attack& impl = attacks::GetAttack(attack.name);
  return impl.corrupts_model() ? impl.FaultFromParams(attack.params)
                               : faults::FaultSpec{};
}

/// True when a unit with this attack takes the fault-free fast path — the
/// single EvaluateVariants call of the 8-axis engine. Fault-free grids
/// (default single none fault axis, perturbation attack) must keep their
/// golden reports byte-identical, so that path is preserved verbatim.
bool FaultFreeUnit(const ScenarioGrid& grid,
                   const faults::FaultSpec& attack_fault) {
  return attack_fault.is_none() && grid.faults.size() == 1 &&
         grid.faults[0].is_none();
}

/// What Run does with one work unit.
enum class UnitPlan : char {
  kCompute,  ///< train/craft/evaluate (and journal when a store is attached)
  kSkip,     ///< owned by another shard; cells stay unevaluated
  kReplay,   ///< journaled result replays from the store
};

void ValidateRunOptions(const RunOptions& options, const void* store) {
  if (options.shard.has_value()) {
    AXSNN_CHECK(options.shard->count > 0 && options.shard->index >= 0 &&
                    options.shard->index < options.shard->count,
                "shard spec must satisfy 0 <= index < count, got "
                    << options.shard->index << "/" << options.shard->count);
  }
  AXSNN_CHECK(!options.resume || store != nullptr,
              "resume requires an attached scenario store (set_store)");
}

/// Copies a replayed journal record into the unit's outcome block.
void ApplyReplay(const UnitRecord& record, std::size_t base, std::size_t block,
                 ScenarioOutcome& outcome) {
  for (std::size_t i = 0; i < block; ++i)
    outcome.train_accuracy_pct[base + i] = record.train_accuracy_pct;
  if (record.gated) return;  // robustness stays NaN, evaluated stays false
  for (std::size_t i = 0; i < block; ++i) {
    outcome.robustness_pct[base + i] = record.robustness[i];
    outcome.evaluated[base + i] = 1;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// StaticScenarioEngine
// ---------------------------------------------------------------------------

StaticScenarioEngine::StaticScenarioEngine(const core::StaticWorkbench& bench)
    : bench_(bench) {
  train_fn_ = [this](float vth, long t) { return bench_.Train(vth, t); };
  craft_fn_ = [this](const TrainedModel& model, const AttackSpec& attack,
                     float epsilon) {
    return bench_.Craft(model, attack.name, epsilon, attack.params);
  };
}

void StaticScenarioEngine::set_train_fn(TrainFn fn) {
  AXSNN_CHECK(fn != nullptr, "train hook must be callable");
  train_fn_ = std::move(fn);
}

void StaticScenarioEngine::set_craft_fn(CraftFn fn) {
  AXSNN_CHECK(fn != nullptr, "craft hook must be callable");
  craft_fn_ = std::move(fn);
}

const StaticScenarioEngine::TrainedModel& StaticScenarioEngine::TrainCached(
    float vth, long time_steps) {
  return model_cache_.GetOrTrain(vth, time_steps, bench_.options().seed, [&] {
    if (store_ != nullptr) {
      TrainedModel from_disk;
      if (store_->LoadModel(vth, time_steps, from_disk)) {
        store_model_hits_.fetch_add(1, std::memory_order_relaxed);
        return from_disk;
      }
    }
    TrainedModel fresh = train_fn_(vth, time_steps);
    computed_trains_.fetch_add(1, std::memory_order_relaxed);
    if (store_ != nullptr) store_->SaveModel(fresh);
    return fresh;
  });
}

void StaticScenarioEngine::ClearCraftCache() { craft_cache_.Clear(); }

ScenarioOutcome StaticScenarioEngine::Run(const ScenarioGrid& grid) {
  return Run(grid, RunOptions{});
}

ScenarioOutcome StaticScenarioEngine::Run(const ScenarioGrid& grid,
                                          const RunOptions& options) {
  ValidateScenarioGrid(grid, /*for_events=*/false);
  ValidateRunOptions(options, store_);

  ScenarioOutcome outcome;
  outcome.grid = grid;
  outcome.cells = ExpandScenarioGrid(grid);
  const std::size_t cell_count = outcome.cells.size();
  outcome.robustness_pct.assign(cell_count,
                                std::numeric_limits<float>::quiet_NaN());
  outcome.train_accuracy_pct.assign(cell_count, 0.0f);
  outcome.evaluated.assign(cell_count, 0);

  const auto run_start = Clock::now();
  const long train_hits0 = model_cache_.hits();
  const long craft_hits0 = craft_cache_.hits();
  const long computed_trains0 =
      computed_trains_.load(std::memory_order_relaxed);
  const long computed_crafts0 =
      computed_crafts_.load(std::memory_order_relaxed);
  const long store_model_hits0 =
      store_model_hits_.load(std::memory_order_relaxed);
  const long store_craft_hits0 =
      store_craft_hits_.load(std::memory_order_relaxed);
  std::atomic<long> uncached_trainings{0};
  std::atomic<long> gated_units{0};
  std::atomic<long> replayed_units{0};
  std::atomic<long> faulted_evals{0};

  const std::vector<core::VariantSpec> variants = VariantBlock(grid);
  const std::size_t fault_count = grid.faults.size();
  const std::size_t block =
      grid.aqfs.size() * variants.size() * fault_count;  // cells per unit
  const long vth_count = static_cast<long>(grid.v_thresholds.size());
  const long time_count = static_cast<long>(grid.time_steps.size());
  const long attack_count = static_cast<long>(grid.attacks.size());
  const long eps_count = static_cast<long>(grid.epsilons.size());
  const long unit_count = vth_count * time_count * attack_count * eps_count;

  // Unit planning: shard partition (unit % N), then journal replay for
  // resumed runs. The replay probe is sequential disk I/O — cheap next to
  // training — and a record whose block size disagrees with this grid is
  // treated as absent (defensive; the grid key already pins the axes).
  const std::string grid_key =
      store_ != nullptr ? store_->GridKey(grid) : std::string();
  std::vector<UnitPlan> plan(static_cast<std::size_t>(unit_count),
                             UnitPlan::kCompute);
  std::vector<UnitRecord> replay(static_cast<std::size_t>(unit_count));
  for (long unit = 0; unit < unit_count; ++unit) {
    if (options.shard.has_value() && !options.shard->Owns(unit)) {
      plan[static_cast<std::size_t>(unit)] = UnitPlan::kSkip;
      continue;
    }
    if (!options.resume) continue;
    UnitRecord record;
    if (store_->LoadUnit(grid_key, unit, record) &&
        (record.gated || record.robustness.size() == block)) {
      plan[static_cast<std::size_t>(unit)] = UnitPlan::kReplay;
      replay[static_cast<std::size_t>(unit)] = std::move(record);
    }
  }

  // Phase 1: train every structural cell that still has a unit to compute,
  // cells in parallel. Replayed/foreign-shard units never touch a model, so
  // a warm resume trains nothing. With the cache disabled units train for
  // themselves in phase 2.
  if (cache_enabled_) {
    std::vector<long> needed_cells;
    std::vector<char> cell_needed(
        static_cast<std::size_t>(vth_count * time_count), 0);
    for (long unit = 0; unit < unit_count; ++unit) {
      if (plan[static_cast<std::size_t>(unit)] != UnitPlan::kCompute) continue;
      const long cell = unit / (attack_count * eps_count);
      if (!cell_needed[static_cast<std::size_t>(cell)]) {
        cell_needed[static_cast<std::size_t>(cell)] = 1;
        needed_cells.push_back(cell);
      }
    }
    runtime::ParallelFor(
        0, static_cast<long>(needed_cells.size()),
        [&](long i) {
          const long cell = needed_cells[static_cast<std::size_t>(i)];
          const float vth =
              grid.v_thresholds[static_cast<std::size_t>(cell / time_count)];
          const long t =
              grid.time_steps[static_cast<std::size_t>(cell % time_count)];
          (void)TrainCached(vth, t);
        },
        /*grain=*/1);
  }
  outcome.stats.train_seconds = SecondsSince(run_start);

  // Phase 2: one work unit per (structural cell, attack, epsilon) — craft
  // once, then fan the variant block out through EvaluateVariants. Each
  // unit owns a contiguous slice of the outcome, so the fan-out is
  // bit-identical at any pool size and across any shard split.
  const auto sweep_start = Clock::now();

  runtime::ParallelFor(
      0, unit_count,
      [&](long unit) {
        if (plan[static_cast<std::size_t>(unit)] == UnitPlan::kSkip) return;

        long rest = unit;
        const std::size_t ie = static_cast<std::size_t>(rest % eps_count);
        rest /= eps_count;
        const std::size_t ia = static_cast<std::size_t>(rest % attack_count);
        rest /= attack_count;
        const std::size_t it = static_cast<std::size_t>(rest % time_count);
        const std::size_t iv = static_cast<std::size_t>(rest / time_count);
        const std::size_t base = grid.Index(iv, it, ia, ie, 0, 0, 0, 0);

        if (plan[static_cast<std::size_t>(unit)] == UnitPlan::kReplay) {
          ApplyReplay(replay[static_cast<std::size_t>(unit)], base, block,
                      outcome);
          replayed_units.fetch_add(1, std::memory_order_relaxed);
          return;
        }

        const float vth = grid.v_thresholds[iv];
        const long t = grid.time_steps[it];
        const AttackSpec& attack = grid.attacks[ia];
        const double epsilon = grid.epsilons[ie];

        TrainedModel local;
        const TrainedModel* model = nullptr;
        if (cache_enabled_) {
          model = &TrainCached(vth, t);
        } else {
          local = train_fn_(vth, t);
          uncached_trainings.fetch_add(1, std::memory_order_relaxed);
          model = &local;
        }

        for (std::size_t i = 0; i < block; ++i)
          outcome.train_accuracy_pct[base + i] = model->train_accuracy_pct;

        if (grid.min_train_accuracy_pct.has_value() &&
            model->train_accuracy_pct < *grid.min_train_accuracy_pct) {
          gated_units.fetch_add(1, std::memory_order_relaxed);
          if (store_ != nullptr) {
            UnitRecord record;
            record.gated = true;
            record.train_accuracy_pct = model->train_accuracy_pct;
            store_->SaveUnit(grid_key, unit, record);
          }
          return;  // robustness stays NaN, evaluated stays false
        }

        // Craft through the in-memory cache (persistent across Run calls),
        // which itself consults the disk store before computing.
        const Tensor& adversarial = craft_cache_.GetOrCompute(
            CraftKey(vth, t, attack, epsilon), [&] {
              if (store_ != nullptr) {
                Tensor from_disk;
                if (store_->LoadCraft(*model, attack, epsilon, from_disk)) {
                  store_craft_hits_.fetch_add(1, std::memory_order_relaxed);
                  return from_disk;
                }
              }
              Tensor fresh =
                  craft_fn_(*model, attack, static_cast<float>(epsilon));
              computed_crafts_.fetch_add(1, std::memory_order_relaxed);
              if (store_ != nullptr)
                store_->SaveCraft(*model, attack, epsilon, fresh);
              return fresh;
            });

        // Fault-free units keep the single EvaluateVariants call (and its
        // bytes); fault units clone-then-corrupt every (variant, fault)
        // pair and evaluate it on the pool — each pair owns its slot, so
        // the fan-out stays bit-identical at any pool size. The attack's
        // fault (if any) applies before the axis fault, on the variant's
        // own precision surface.
        const faults::FaultSpec attack_fault = AttackFault(attack);
        std::vector<float> robustness;
        if (FaultFreeUnit(grid, attack_fault)) {
          robustness = bench_.EvaluateVariants(*model, adversarial, variants);
        } else {
          robustness.assign(variants.size() * fault_count, 0.0f);
          runtime::ParallelFor(
              0, static_cast<long>(robustness.size()),
              [&](long j) {
                const std::size_t ifl =
                    static_cast<std::size_t>(j) % fault_count;
                const std::size_t ivr =
                    static_cast<std::size_t>(j) / fault_count;
                const core::VariantSpec& vspec = variants[ivr];
                snn::Network ax = bench_.MakeAx(*model, vspec);
                bool faulted = false;
                if (!attack_fault.is_none()) {
                  faults::ApplyFault(ax, attack_fault, vspec.precision);
                  faulted = true;
                }
                const faults::FaultSpec& axis_fault = grid.faults[ifl];
                if (!axis_fault.is_none()) {
                  faults::ApplyFault(ax, axis_fault, vspec.precision);
                  faulted = true;
                }
                if (faulted)
                  faulted_evals.fetch_add(1, std::memory_order_relaxed);
                robustness[static_cast<std::size_t>(j)] =
                    bench_.AccuracyPct(ax, adversarial, model->time_steps);
              },
              /*grain=*/1);
        }
        // Both paths produce the variants x faults inner block (fast path:
        // fault_count == 1), replicated across the (disengaged) aqf axis.
        for (std::size_t iq = 0; iq < grid.aqfs.size(); ++iq) {
          const std::size_t slice = base + iq * robustness.size();
          for (std::size_t i = 0; i < robustness.size(); ++i) {
            outcome.robustness_pct[slice + i] = robustness[i];
            outcome.evaluated[slice + i] = 1;
          }
        }

        if (store_ != nullptr) {
          UnitRecord record;
          record.train_accuracy_pct = model->train_accuracy_pct;
          record.robustness.assign(
              outcome.robustness_pct.begin() + static_cast<long>(base),
              outcome.robustness_pct.begin() + static_cast<long>(base + block));
          store_->SaveUnit(grid_key, unit, record);
        }
      },
      /*grain=*/1);

  outcome.stats.sweep_seconds = SecondsSince(sweep_start);
  outcome.stats.wall_seconds = SecondsSince(run_start);
  outcome.stats.train_cache_hits = model_cache_.hits() - train_hits0;
  outcome.stats.trained_models =
      computed_trains_.load(std::memory_order_relaxed) - computed_trains0 +
      uncached_trainings.load();
  outcome.stats.craft_cache_hits = craft_cache_.hits() - craft_hits0;
  outcome.stats.crafted_sets =
      computed_crafts_.load(std::memory_order_relaxed) - computed_crafts0;
  outcome.stats.store_model_hits =
      store_model_hits_.load(std::memory_order_relaxed) - store_model_hits0;
  outcome.stats.store_craft_hits =
      store_craft_hits_.load(std::memory_order_relaxed) - store_craft_hits0;
  outcome.stats.gated_units = gated_units.load();
  outcome.stats.replayed_units = replayed_units.load();
  outcome.stats.faulted_evals = faulted_evals.load();
  outcome.stats.corrupt_entries =
      store_ != nullptr ? store_->artifacts().corrupt_entries() : 0;

  // Fold this run's fresh computations into the grid's cumulative journal
  // totals, so a merged shard run (or a warm rerun) reports the same
  // trained/crafted counters as the single-process cold run. Exact when
  // shards of one grid run sequentially (the CI recipe); concurrent shards
  // keep correct cells but may under-count the shared totals.
  if (store_ != nullptr) {
    GridTotals totals = store_->LoadTotals(grid_key);
    totals.trained_models += outcome.stats.trained_models;
    totals.crafted_sets += outcome.stats.crafted_sets;
    store_->SaveTotals(grid_key, totals);
    outcome.stats.total_trained_models = totals.trained_models;
    outcome.stats.total_crafted_sets = totals.crafted_sets;
  } else {
    outcome.stats.total_trained_models = outcome.stats.trained_models;
    outcome.stats.total_crafted_sets = outcome.stats.crafted_sets;
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// DvsScenarioEngine
// ---------------------------------------------------------------------------

DvsScenarioEngine::DvsScenarioEngine(const core::DvsWorkbench& bench)
    : bench_(bench) {
  train_fn_ = [this](float vth) { return bench_.Train(vth); };
  craft_fn_ = [this](const TrainedModel& model, const AttackSpec& attack) {
    return bench_.Craft(model, attack.name, attack.params);
  };
}

void DvsScenarioEngine::set_train_fn(TrainFn fn) {
  AXSNN_CHECK(fn != nullptr, "train hook must be callable");
  train_fn_ = std::move(fn);
}

void DvsScenarioEngine::set_craft_fn(CraftFn fn) {
  AXSNN_CHECK(fn != nullptr, "craft hook must be callable");
  craft_fn_ = std::move(fn);
}

const DvsScenarioEngine::TrainedModel& DvsScenarioEngine::TrainCached(
    float vth) {
  return model_cache_.GetOrTrain(
      vth, bench_.options().time_bins, bench_.options().seed, [&] {
        if (store_ != nullptr) {
          TrainedModel from_disk;
          if (store_->LoadModel(vth, from_disk)) {
            store_model_hits_.fetch_add(1, std::memory_order_relaxed);
            return from_disk;
          }
        }
        TrainedModel fresh = train_fn_(vth);
        computed_trains_.fetch_add(1, std::memory_order_relaxed);
        if (store_ != nullptr) store_->SaveModel(fresh);
        return fresh;
      });
}

void DvsScenarioEngine::ClearCraftCache() { craft_cache_.Clear(); }

ScenarioOutcome DvsScenarioEngine::Run(const ScenarioGrid& grid) {
  return Run(grid, RunOptions{});
}

ScenarioOutcome DvsScenarioEngine::Run(const ScenarioGrid& grid,
                                       const RunOptions& options) {
  ValidateScenarioGrid(grid, /*for_events=*/true);
  ValidateRunOptions(options, store_);

  ScenarioOutcome outcome;
  outcome.grid = grid;
  outcome.cells =
      ExpandScenarioGrid(grid, /*time_override=*/bench_.options().time_bins);
  const std::size_t cell_count = outcome.cells.size();
  outcome.robustness_pct.assign(cell_count,
                                std::numeric_limits<float>::quiet_NaN());
  outcome.train_accuracy_pct.assign(cell_count, 0.0f);
  outcome.evaluated.assign(cell_count, 0);

  const auto run_start = Clock::now();
  const long train_hits0 = model_cache_.hits();
  const long craft_hits0 = craft_cache_.hits();
  const long computed_trains0 =
      computed_trains_.load(std::memory_order_relaxed);
  const long computed_crafts0 =
      computed_crafts_.load(std::memory_order_relaxed);
  const long store_model_hits0 =
      store_model_hits_.load(std::memory_order_relaxed);
  const long store_craft_hits0 =
      store_craft_hits_.load(std::memory_order_relaxed);
  std::atomic<long> uncached_trainings{0};
  std::atomic<long> gated_units{0};
  std::atomic<long> replayed_units{0};
  std::atomic<long> faulted_evals{0};

  const std::vector<core::VariantSpec> variants = VariantBlock(grid);
  const std::size_t fault_count = grid.faults.size();
  const std::size_t block =
      grid.aqfs.size() * variants.size() * fault_count;
  const long vth_count = static_cast<long>(grid.v_thresholds.size());
  const long attack_count = static_cast<long>(grid.attacks.size());
  const long unit_count = vth_count * attack_count;

  const std::string grid_key =
      store_ != nullptr ? store_->GridKey(grid) : std::string();
  std::vector<UnitPlan> plan(static_cast<std::size_t>(unit_count),
                             UnitPlan::kCompute);
  std::vector<UnitRecord> replay(static_cast<std::size_t>(unit_count));
  for (long unit = 0; unit < unit_count; ++unit) {
    if (options.shard.has_value() && !options.shard->Owns(unit)) {
      plan[static_cast<std::size_t>(unit)] = UnitPlan::kSkip;
      continue;
    }
    if (!options.resume) continue;
    UnitRecord record;
    if (store_->LoadUnit(grid_key, unit, record) &&
        (record.gated || record.robustness.size() == block)) {
      plan[static_cast<std::size_t>(unit)] = UnitPlan::kReplay;
      replay[static_cast<std::size_t>(unit)] = std::move(record);
    }
  }

  if (cache_enabled_) {
    std::vector<long> needed_vths;
    std::vector<char> vth_needed(static_cast<std::size_t>(vth_count), 0);
    for (long unit = 0; unit < unit_count; ++unit) {
      if (plan[static_cast<std::size_t>(unit)] != UnitPlan::kCompute) continue;
      const long iv = unit / attack_count;
      if (!vth_needed[static_cast<std::size_t>(iv)]) {
        vth_needed[static_cast<std::size_t>(iv)] = 1;
        needed_vths.push_back(iv);
      }
    }
    runtime::ParallelFor(
        0, static_cast<long>(needed_vths.size()),
        [&](long i) {
          (void)TrainCached(grid.v_thresholds[static_cast<std::size_t>(
              needed_vths[static_cast<std::size_t>(i)])]);
        },
        /*grain=*/1);
  }
  outcome.stats.train_seconds = SecondsSince(run_start);

  // Phase 2: one unit per (vth, attack); AQF slices evaluate inside the
  // unit (filter + binning are shared per slice by EvaluateVariants).
  const auto sweep_start = Clock::now();

  runtime::ParallelFor(
      0, unit_count,
      [&](long unit) {
        if (plan[static_cast<std::size_t>(unit)] == UnitPlan::kSkip) return;

        const std::size_t ia = static_cast<std::size_t>(unit % attack_count);
        const std::size_t iv = static_cast<std::size_t>(unit / attack_count);
        const std::size_t base = grid.Index(iv, 0, ia, 0, 0, 0, 0, 0);

        if (plan[static_cast<std::size_t>(unit)] == UnitPlan::kReplay) {
          ApplyReplay(replay[static_cast<std::size_t>(unit)], base, block,
                      outcome);
          replayed_units.fetch_add(1, std::memory_order_relaxed);
          return;
        }

        const float vth = grid.v_thresholds[iv];
        const AttackSpec& attack = grid.attacks[ia];

        TrainedModel local;
        const TrainedModel* model = nullptr;
        if (cache_enabled_) {
          model = &TrainCached(vth);
        } else {
          local = train_fn_(vth);
          uncached_trainings.fetch_add(1, std::memory_order_relaxed);
          model = &local;
        }

        for (std::size_t i = 0; i < block; ++i)
          outcome.train_accuracy_pct[base + i] = model->train_accuracy_pct;

        if (grid.min_train_accuracy_pct.has_value() &&
            model->train_accuracy_pct < *grid.min_train_accuracy_pct) {
          gated_units.fetch_add(1, std::memory_order_relaxed);
          if (store_ != nullptr) {
            UnitRecord record;
            record.gated = true;
            record.train_accuracy_pct = model->train_accuracy_pct;
            store_->SaveUnit(grid_key, unit, record);
          }
          return;
        }

        const data::EventDataset& adversarial = craft_cache_.GetOrCompute(
            CraftKey(vth, bench_.options().time_bins, attack, /*epsilon=*/0.0),
            [&] {
              if (store_ != nullptr) {
                data::EventDataset from_disk;
                if (store_->LoadCraft(*model, attack, from_disk)) {
                  store_craft_hits_.fetch_add(1, std::memory_order_relaxed);
                  return from_disk;
                }
              }
              data::EventDataset fresh = craft_fn_(*model, attack);
              computed_crafts_.fetch_add(1, std::memory_order_relaxed);
              if (store_ != nullptr) store_->SaveCraft(*model, attack, fresh);
              return fresh;
            });

        // Same split as the static engine: fault-free units keep the
        // shared-binning EvaluateVariants call per AQF slice; fault units
        // corrupt a clone per (variant, fault) pair. AccuracyPct falls
        // back to the dense path for hooked (activation-fault) clones.
        const faults::FaultSpec attack_fault = AttackFault(attack);
        for (std::size_t iq = 0; iq < grid.aqfs.size(); ++iq) {
          std::vector<float> robustness;
          if (FaultFreeUnit(grid, attack_fault)) {
            robustness = bench_.EvaluateVariants(*model, adversarial,
                                                 grid.aqfs[iq], variants);
          } else {
            robustness.assign(variants.size() * fault_count, 0.0f);
            runtime::ParallelFor(
                0, static_cast<long>(robustness.size()),
                [&](long j) {
                  const std::size_t ifl =
                      static_cast<std::size_t>(j) % fault_count;
                  const std::size_t ivr =
                      static_cast<std::size_t>(j) / fault_count;
                  const core::VariantSpec& vspec = variants[ivr];
                  snn::Network ax = bench_.MakeAx(*model, vspec);
                  bool faulted = false;
                  if (!attack_fault.is_none()) {
                    faults::ApplyFault(ax, attack_fault, vspec.precision);
                    faulted = true;
                  }
                  const faults::FaultSpec& axis_fault = grid.faults[ifl];
                  if (!axis_fault.is_none()) {
                    faults::ApplyFault(ax, axis_fault, vspec.precision);
                    faulted = true;
                  }
                  if (faulted)
                    faulted_evals.fetch_add(1, std::memory_order_relaxed);
                  robustness[static_cast<std::size_t>(j)] = bench_.AccuracyPct(
                      ax, adversarial, grid.aqfs[iq]);
                },
                /*grain=*/1);
          }
          const std::size_t slice = base + iq * robustness.size();
          for (std::size_t i = 0; i < robustness.size(); ++i) {
            outcome.robustness_pct[slice + i] = robustness[i];
            outcome.evaluated[slice + i] = 1;
          }
        }

        if (store_ != nullptr) {
          UnitRecord record;
          record.train_accuracy_pct = model->train_accuracy_pct;
          record.robustness.assign(
              outcome.robustness_pct.begin() + static_cast<long>(base),
              outcome.robustness_pct.begin() + static_cast<long>(base + block));
          store_->SaveUnit(grid_key, unit, record);
        }
      },
      /*grain=*/1);

  outcome.stats.sweep_seconds = SecondsSince(sweep_start);
  outcome.stats.wall_seconds = SecondsSince(run_start);
  outcome.stats.train_cache_hits = model_cache_.hits() - train_hits0;
  outcome.stats.trained_models =
      computed_trains_.load(std::memory_order_relaxed) - computed_trains0 +
      uncached_trainings.load();
  outcome.stats.craft_cache_hits = craft_cache_.hits() - craft_hits0;
  outcome.stats.crafted_sets =
      computed_crafts_.load(std::memory_order_relaxed) - computed_crafts0;
  outcome.stats.store_model_hits =
      store_model_hits_.load(std::memory_order_relaxed) - store_model_hits0;
  outcome.stats.store_craft_hits =
      store_craft_hits_.load(std::memory_order_relaxed) - store_craft_hits0;
  outcome.stats.gated_units = gated_units.load();
  outcome.stats.replayed_units = replayed_units.load();
  outcome.stats.faulted_evals = faulted_evals.load();
  outcome.stats.corrupt_entries =
      store_ != nullptr ? store_->artifacts().corrupt_entries() : 0;

  if (store_ != nullptr) {
    GridTotals totals = store_->LoadTotals(grid_key);
    totals.trained_models += outcome.stats.trained_models;
    totals.crafted_sets += outcome.stats.crafted_sets;
    store_->SaveTotals(grid_key, totals);
    outcome.stats.total_trained_models = totals.trained_models;
    outcome.stats.total_crafted_sets = totals.crafted_sets;
  } else {
    outcome.stats.total_trained_models = outcome.stats.trained_models;
    outcome.stats.total_crafted_sets = outcome.stats.crafted_sets;
  }
  return outcome;
}

}  // namespace axsnn::scenario
