#include "scenario/model_cache.hpp"

#include <cstring>

namespace axsnn::scenario::detail {

std::uint32_t FloatKeyBits(float value) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

}  // namespace axsnn::scenario::detail
