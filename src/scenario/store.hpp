// Content-keyed on-disk artifact store for distributed scenario execution.
//
// Promotes the engines' in-memory model/craft caches (model_cache.hpp) to a
// shared filesystem store, so reruns, resumed runs and shard processes
// (shard.hpp) reuse each other's work:
//
//   * trained models    key = (workbench fingerprint, vth bits, T)
//   * crafted datasets  key = model key + (attack-label hash, epsilon bits)
//   * unit journal      key = (grid key, unit index) — one record per
//                       finished work unit (train accuracy, gate flag, the
//                       unit's robustness block), enabling checkpoint/resume
//   * grid totals       key = (grid key) — cumulative fresh trainings and
//                       crafts across every run that touched the grid, so a
//                       merged shard report prints the same counters as the
//                       single-process run
//
// The workbench fingerprint hashes every option and dataset byte that
// affects training, crafting or evaluation, so two workbenches sharing a
// directory can never serve each other stale artifacts. (The kernel-mode
// and event-path knobs are deliberately excluded: both are bit-identical
// execution axes by contract, pinned by the CI matrix legs.)
//
// Every value is one file: a small checksummed envelope (magic, version,
// payload kind, size, FNV-1a 64 digest) around a tensor/serialize or
// data/event_io payload, written to a temp file and atomically renamed into
// place — a reader never observes a half-written artifact, and concurrent
// writers of one key settle on one winner (both wrote identical bytes; the
// computations are deterministic). Any validation or parse failure counts
// the entry corrupt and reads as a miss: the engine recomputes and
// overwrites instead of crashing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/workbench.hpp"
#include "scenario/scenario.hpp"

namespace axsnn::scenario {

/// Envelope payload kinds. A kind mismatch (a craft key colliding with a
/// model file, say) reads as corrupt, never as a silently wrong payload.
inline constexpr std::uint32_t kArtifactStaticModel = 1;
inline constexpr std::uint32_t kArtifactDvsModel = 2;
inline constexpr std::uint32_t kArtifactCraftTensor = 3;
inline constexpr std::uint32_t kArtifactCraftEvents = 4;
inline constexpr std::uint32_t kArtifactUnit = 5;
inline constexpr std::uint32_t kArtifactTotals = 6;

/// Generic key -> checksummed-file store. Thread-safe; keys must be
/// filesystem-safe ([A-Za-z0-9_.-], the typed stores only emit those).
class ArtifactStore {
 public:
  /// Creates `root` (and parents) on demand.
  explicit ArtifactStore(std::string root);

  const std::string& root() const { return root_; }

  /// Final on-disk path of a key (exposed for tests and tooling).
  std::string PathFor(const std::string& key) const;

  /// Serializes via `write` and commits atomically (temp file + rename).
  /// Throws std::runtime_error when the filesystem rejects the write.
  void Put(const std::string& key, std::uint32_t kind,
           const std::function<void(std::ostream&)>& write);

  /// Validates the envelope (magic, version, kind, size, checksum) and
  /// deserializes via `read`. Returns false — a miss — when the key is
  /// absent, and also when the entry is truncated, corrupt, of another
  /// kind, or `read` throws (counted in corrupt_entries()).
  bool Get(const std::string& key, std::uint32_t kind,
           const std::function<void(std::istream&)>& read) const;

  long hits() const { return hits_.load(std::memory_order_relaxed); }
  long misses() const { return misses_.load(std::memory_order_relaxed); }
  long writes() const { return writes_.load(std::memory_order_relaxed); }
  long corrupt_entries() const {
    return corrupt_.load(std::memory_order_relaxed);
  }

 private:
  std::string root_;
  mutable std::atomic<long> hits_{0};
  mutable std::atomic<long> misses_{0};
  mutable std::atomic<long> corrupt_{0};
  std::atomic<long> writes_{0};
  std::atomic<long> tmp_seq_{0};
};

/// One journaled work unit: everything the engine writes into the unit's
/// contiguous cell block. `robustness` holds the full block in cell order
/// (empty when the unit was gated by min_train_accuracy_pct).
struct UnitRecord {
  bool gated = false;
  float train_accuracy_pct = 0.0f;
  std::vector<float> robustness;
};

/// Cumulative fresh-computation counters of a grid across runs and shards.
struct GridTotals {
  long trained_models = 0;
  long crafted_sets = 0;
};

// ---------------------------------------------------------------------------
// Typed stores
// ---------------------------------------------------------------------------

/// Store view for StaticWorkbench engines. Borrows the workbench (must
/// outlive the store); the constructor fingerprints its options + datasets.
class StaticScenarioStore {
 public:
  using TrainedModel = core::StaticWorkbench::TrainedModel;

  StaticScenarioStore(std::string root, const core::StaticWorkbench& bench);

  std::string ModelKey(float vth, long time_steps) const;
  std::string CraftKey(float vth, long time_steps, const AttackSpec& attack,
                       double epsilon) const;
  /// Deterministic digest of (fingerprint, every grid axis) — the namespace
  /// of the unit journal and totals record.
  std::string GridKey(const ScenarioGrid& grid) const;

  bool LoadModel(float vth, long time_steps, TrainedModel& out) const;
  void SaveModel(const TrainedModel& model);

  bool LoadCraft(const TrainedModel& model, const AttackSpec& attack,
                 double epsilon, Tensor& out) const;
  void SaveCraft(const TrainedModel& model, const AttackSpec& attack,
                 double epsilon, const Tensor& images);

  bool LoadUnit(const std::string& grid_key, long unit,
                UnitRecord& out) const;
  void SaveUnit(const std::string& grid_key, long unit,
                const UnitRecord& record);

  /// Zeros when the grid has no totals record yet.
  GridTotals LoadTotals(const std::string& grid_key) const;
  void SaveTotals(const std::string& grid_key, const GridTotals& totals);

  ArtifactStore& artifacts() { return store_; }
  const ArtifactStore& artifacts() const { return store_; }
  std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  ArtifactStore store_;
  const core::StaticWorkbench& bench_;
  std::uint64_t fingerprint_ = 0;
};

/// Store view for DvsWorkbench engines (crafts are event datasets; models
/// key on the workbench binning T).
class DvsScenarioStore {
 public:
  using TrainedModel = core::DvsWorkbench::TrainedModel;

  DvsScenarioStore(std::string root, const core::DvsWorkbench& bench);

  std::string ModelKey(float vth) const;
  std::string CraftKey(float vth, const AttackSpec& attack) const;
  std::string GridKey(const ScenarioGrid& grid) const;

  bool LoadModel(float vth, TrainedModel& out) const;
  void SaveModel(const TrainedModel& model);

  bool LoadCraft(const TrainedModel& model, const AttackSpec& attack,
                 data::EventDataset& out) const;
  void SaveCraft(const TrainedModel& model, const AttackSpec& attack,
                 const data::EventDataset& streams);

  bool LoadUnit(const std::string& grid_key, long unit,
                UnitRecord& out) const;
  void SaveUnit(const std::string& grid_key, long unit,
                const UnitRecord& record);

  GridTotals LoadTotals(const std::string& grid_key) const;
  void SaveTotals(const std::string& grid_key, const GridTotals& totals);

  ArtifactStore& artifacts() { return store_; }
  const ArtifactStore& artifacts() const { return store_; }
  std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  ArtifactStore store_;
  const core::DvsWorkbench& bench_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace axsnn::scenario
