#include "snn/encoding.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "kernels/spike_words.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::snn {

namespace {

/// [T, images.shape...] — the output shape of every encoder.
Shape TimeMajorShape(const Tensor& images, long time_steps) {
  AXSNN_CHECK(time_steps > 0, "time_steps must be positive");
  AXSNN_CHECK(images.rank() >= 2, "encoders expect [B, ...]");
  Shape out_shape;
  out_shape.reserve(images.rank() + 1);
  out_shape.push_back(time_steps);
  for (long d : images.shape()) out_shape.push_back(d);
  return out_shape;
}

void EncodeRateInto(const Tensor& images, long time_steps, Rng& rng,
                    Tensor& out) {
  out.ResizeTo(TimeMajorShape(images, time_steps));
  const long n = images.numel();
  const float* src = images.data();
  float* dst = out.data();
  // The Bernoulli draws walk the RNG stream in a fixed (t, pixel) order;
  // this stays sequential so the encoding is a pure function of the seed.
  for (long t = 0; t < time_steps; ++t) {
    float* frame = dst + t * n;
    for (long i = 0; i < n; ++i)
      frame[i] = rng.Bernoulli(src[i]) ? 1.0f : 0.0f;
  }
}

void EncodeDirectInto(const Tensor& images, long time_steps, Tensor& out) {
  out.ResizeTo(TimeMajorShape(images, time_steps));
  const long n = images.numel();
  const float* src = images.data();
  float* dst = out.data();
  for (long t = 0; t < time_steps; ++t)
    std::copy(src, src + n, dst + t * n);
}

void EncodeTtfsInto(const Tensor& images, long time_steps, Tensor& out) {
  out.ResizeTo(TimeMajorShape(images, time_steps));
  out.Zero();
  const long n = images.numel();
  const float* src = images.data();
  float* dst = out.data();
  for (long i = 0; i < n; ++i) {
    const float v = std::clamp(src[i], 0.0f, 1.0f);
    if (v <= 0.0f) continue;  // black pixels stay silent
    const long t = std::lround((1.0f - v) * static_cast<float>(time_steps - 1));
    dst[t * n + i] = 1.0f;
  }
}

}  // namespace

Tensor EncodeRate(const Tensor& images, long time_steps, Rng& rng) {
  Tensor out;
  EncodeRateInto(images, time_steps, rng, out);
  return out;
}

Tensor EncodeDirect(const Tensor& images, long time_steps) {
  Tensor out;
  EncodeDirectInto(images, time_steps, out);
  return out;
}

Tensor EncodeTtfs(const Tensor& images, long time_steps) {
  Tensor out;
  EncodeTtfsInto(images, time_steps, out);
  return out;
}

void EncodeInto(const Tensor& images, long time_steps, Encoding mode, Rng& rng,
                Tensor& out) {
  switch (mode) {
    case Encoding::kRate:
      EncodeRateInto(images, time_steps, rng, out);
      return;
    case Encoding::kDirect:
      EncodeDirectInto(images, time_steps, out);
      return;
    case Encoding::kTtfs:
      EncodeTtfsInto(images, time_steps, out);
      return;
  }
  AXSNN_CHECK(false, "unknown encoding mode");
}

Tensor Encode(const Tensor& images, long time_steps, Encoding mode, Rng& rng) {
  Tensor out;
  EncodeInto(images, time_steps, mode, rng, out);
  return out;
}

Tensor CollapseTimeGradient(const Tensor& grad_tbx) {
  AXSNN_CHECK(grad_tbx.rank() >= 2, "expected [T, B, ...] gradient");
  const long t_steps = grad_tbx.dim(0);
  const long n = grad_tbx.numel() / t_steps;
  Shape out_shape(grad_tbx.shape().begin() + 1, grad_tbx.shape().end());
  Tensor out(std::move(out_shape));
  const float* g = grad_tbx.data();
  float* o = out.data();
  for (long t = 0; t < t_steps; ++t) {
    const float* frame = g + t * n;
    for (long i = 0; i < n; ++i) o[i] += frame[i];
  }
  return out;
}

void TimeMajorInto(const Tensor& frames_btx, Tensor& out) {
  AXSNN_CHECK(frames_btx.rank() >= 3, "TimeMajor expects [B, T, ...]");
  AXSNN_CHECK(&out != &frames_btx &&
                  (frames_btx.numel() == 0 ||
                   out.data() != frames_btx.data()),
              "TimeMajorInto: out must not alias frames_btx");
  const long b = frames_btx.dim(0);
  const long t_steps = frames_btx.dim(1);
  AXSNN_CHECK(b > 0 && t_steps > 0,
              "TimeMajorInto: degenerate [B, T] dims " << b << "x" << t_steps);
  const long feat = frames_btx.numel() / (b * t_steps);
  Shape out_shape = frames_btx.shape();
  std::swap(out_shape[0], out_shape[1]);
  out.ResizeTo(std::move(out_shape));
  const float* src = frames_btx.data();
  float* dst = out.data();
  for (long i = 0; i < b; ++i)
    for (long t = 0; t < t_steps; ++t)
      std::copy(src + (i * t_steps + t) * feat,
                src + (i * t_steps + t + 1) * feat,
                dst + (t * b + i) * feat);
}

Tensor TimeMajor(const Tensor& frames_btx) {
  Tensor out;
  TimeMajorInto(frames_btx, out);
  return out;
}

bool TimeMajorPackInto(const Tensor& frames_btx,
                       kernels::SpikeStream& stream) {
  AXSNN_CHECK(frames_btx.rank() >= 3, "TimeMajorPackInto expects [B, T, ...]");
  const long b = frames_btx.dim(0);
  const long t_steps = frames_btx.dim(1);
  AXSNN_CHECK(b > 0 && t_steps > 0,
              "TimeMajorPackInto: degenerate [B, T] dims " << b << "x"
                                                           << t_steps);
  Shape sample_shape(frames_btx.shape().begin() + 2, frames_btx.shape().end());
  stream.Configure(t_steps, b, std::move(sample_shape));
  const long feat = stream.plane();
  const float* src = frames_btx.data();

  bool binary[runtime::kMaxChunks];
  const long grain = runtime::DefaultGrain(b);
  runtime::ParallelForChunks(
      0, b,
      [&](long chunk, long lo, long hi) {
        bool ok = true;
        for (long i = lo; i < hi; ++i) {
          for (long t = 0; t < t_steps; ++t) {
            const float* row = src + (i * t_steps + t) * feat;
            for (long j = 0; j < feat; ++j)
              if (row[j] != 0.0f && row[j] != 1.0f) ok = false;
            kernels::PackSpikeWords(row, feat, stream.SampleWords(t, i));
          }
        }
        binary[chunk] = ok;
      },
      grain);
  for (long c = 0; c < runtime::NumChunks(b, grain); ++c)
    if (!binary[c]) return false;
  stream.FinalizeCounts();
  return true;
}

}  // namespace axsnn::snn
