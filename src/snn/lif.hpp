// Leaky-integrate-and-fire (LIF) neuron model parameters.
//
// The paper treats the threshold voltage Vth and the number of time steps T
// as *structural parameters* of the SNN and sweeps both in its robustness
// study (Figs. 4–7), so they are first-class values here rather than
// compile-time constants.
#pragma once

#include "tensor/check.hpp"

namespace axsnn::snn {

/// Parameters of the standard LIF neuron used throughout the paper.
///
/// Dynamics per time step t (hard reset, as in the paper's Section II):
///   u[t] = beta * u[t-1] * (1 - s[t-1]) + I[t]
///   s[t] = 1 if u[t] >= v_threshold else 0
/// where u is the membrane potential, I the synaptic input current and s the
/// emitted spike. After a spike the membrane resets to `v_reset` (the
/// multiplicative (1 - s) term implements reset-to-zero; a nonzero v_reset
/// shifts the post-spike potential).
struct LifParams {
  /// Firing threshold voltage (the paper sweeps 0.25 … 2.25).
  float v_threshold = 1.0f;
  /// Membrane leak factor in (0, 1]; 1 = perfect integrator.
  float beta = 0.9f;
  /// Post-spike reset potential.
  float v_reset = 0.0f;
  /// Surrogate-gradient sharpness (fast sigmoid slope alpha).
  float surrogate_alpha = 2.0f;

  /// Validates parameter ranges; throws std::invalid_argument on misuse.
  void Validate() const {
    AXSNN_CHECK(v_threshold > 0.0f, "v_threshold must be positive");
    AXSNN_CHECK(beta > 0.0f && beta <= 1.0f, "beta must be in (0, 1]");
    AXSNN_CHECK(surrogate_alpha > 0.0f, "surrogate_alpha must be positive");
  }
};

/// Fast-sigmoid surrogate derivative of the Heaviside spike function,
///   d s / d u ≈ 1 / (1 + alpha * |u - vth|)^2,
/// evaluated at membrane potential `u` for threshold `vth`. This is the
/// standard choice for training SNNs with backpropagation-through-time and is
/// what our gradient-based attacks (PGD/BIM) differentiate through as well.
inline float SurrogateGrad(float u, float vth, float alpha) {
  const float d = 1.0f + alpha * (u > vth ? u - vth : vth - u);
  return 1.0f / (d * d);
}

}  // namespace axsnn::snn
