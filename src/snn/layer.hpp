// Layer abstraction for time-major spiking networks.
//
// All layers consume and produce *time-major* activations shaped
// [T, B, ...feature dims...]; stateless layers (conv, dense, pool) treat
// T*B as one large batch, while the LIF layer runs its membrane recursion
// across the leading time axis. Each layer caches what it needs during
// ForwardInto so that a subsequent Backward can run full
// backpropagation-through-time, including the gradient with respect to the
// *input* — which is what the gradient-based adversarial attacks consume.
//
// The forward path is allocation-free in steady state: ForwardInto writes
// into a caller-provided output tensor (resized in place, which reuses its
// heap block once capacities have warmed up), and Network::ForwardShared
// ping-pongs activations between two runtime::Workspace slots. The
// allocating Tensor Forward(x, train) remains as a convenience wrapper.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace axsnn::snn {

/// Abstract base class of all network layers.
///
/// Contract: Backward(g) must be called at most once after each forward pass
/// and receives dL/d(output); it accumulates parameter gradients internally
/// and returns dL/d(input) of the same shape as the forward input.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  Layer(const Layer&) = default;
  Layer& operator=(const Layer&) = default;

  /// Output shape produced for an input of shape `in`. Throws when `in` is
  /// not a shape this layer accepts.
  virtual Shape OutputShape(const Shape& in) const = 0;

  /// Runs the layer on a time-major activation, writing the result into
  /// `out` (resized by the implementation; contents fully overwritten).
  /// `out` must not alias `x`. `train` enables stochastic behaviour
  /// (dropout) and input caching for Backward. Inference passes
  /// (train == false) skip — and invalidate — the input-activation cache
  /// unless grad_cache() is set, so Backward after an uncached pass throws
  /// rather than differentiating a stale input; callers that backpropagate
  /// through inference-mode forwards (the gradient-based attacks) enable
  /// caching first via Network::SetGradCache / snn::GradCacheScope.
  virtual void ForwardInto(const Tensor& x, Tensor& out, bool train) = 0;

  /// Allocating convenience wrapper around ForwardInto.
  Tensor Forward(const Tensor& x, bool train) {
    Tensor out;
    ForwardInto(x, out, train);
    return out;
  }

  /// Backpropagates through the cached forward pass; returns dL/d(input).
  virtual Tensor Backward(const Tensor& grad_out) = 0;

  /// Trainable parameter tensors (may be empty). Order is stable and matches
  /// Grads().
  virtual std::vector<Tensor*> Params() { return {}; }

  /// Accumulated parameter gradients, aligned with Params().
  virtual std::vector<Tensor*> Grads() { return {}; }

  /// Clears accumulated parameter gradients.
  void ZeroGrad() {
    for (Tensor* g : Grads()) g->Zero();
  }

  /// Called after the layer's parameter tensors were overwritten in bulk
  /// (Network::LoadStateDict). Layers holding state *derived* from their
  /// parameters — e.g. the int8 weight snapshot of Conv2d/Dense — must
  /// invalidate it here; executing on a stale snapshot would silently
  /// ignore the new weights. Direct mutation through weight()/Params()
  /// accessors does not trigger this hook; such callers re-derive manually
  /// (as ApplyApproximation does by enabling int8 after its last edit).
  virtual void OnWeightsChanged() {}

  /// Gradient-cache switch for inference-mode passes: when set, layers keep
  /// their Backward caches on train == false forwards too (the attacks'
  /// threat model — craft on the accurate model in eval mode). Default off:
  /// pure inference (AccuracyStatic, sweeps) skips the per-layer input
  /// copies. Training passes (train == true) always cache.
  void set_grad_cache(bool on) { grad_cache_ = on; }
  bool grad_cache() const { return grad_cache_; }

  /// Short identifier used in diagnostics and state dicts, e.g. "conv1".
  virtual std::string Name() const = 0;

  /// Deep copy, preserving weights but not cached activations. Approximation
  /// experiments clone a trained network once per (precision, level) variant.
  virtual std::unique_ptr<Layer> Clone() const = 0;

 protected:
  /// Resizes `out` to OutputShape(x.shape()), memoizing the (input, output)
  /// shape pair so steady-state passes (same input shape every call) perform
  /// no shape computation and no allocation. ForwardInto implementations
  /// call this first.
  void SizeOutput(const Tensor& x, Tensor& out) {
    if (x.shape() != last_in_shape_) {
      last_out_shape_ = OutputShape(x.shape());
      last_in_shape_ = x.shape();  // copy-assign: reuses capacity
    }
    out.ResizeTo(last_out_shape_);
  }

 private:
  Shape last_in_shape_;   // memoized SizeOutput key
  Shape last_out_shape_;  // memoized SizeOutput value
  bool grad_cache_ = false;  // cache inputs on inference passes too
};

}  // namespace axsnn::snn
