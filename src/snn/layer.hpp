// Layer abstraction for time-major spiking networks.
//
// All layers consume and produce *time-major* activations shaped
// [T, B, ...feature dims...]; stateless layers (conv, dense, pool) treat
// T*B as one large batch, while the LIF layer runs its membrane recursion
// across the leading time axis. Each layer caches what it needs during
// ForwardInto so that a subsequent Backward can run full
// backpropagation-through-time, including the gradient with respect to the
// *input* — which is what the gradient-based adversarial attacks consume.
//
// The forward path is allocation-free in steady state: ForwardInto writes
// into a caller-provided output tensor (resized in place, which reuses its
// heap block once capacities have warmed up), and Network::ForwardShared
// ping-pongs activations between two runtime::Workspace slots. The
// allocating Tensor Forward(x, train) remains as a convenience wrapper.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernels/spike_words.hpp"
#include "runtime/aligned.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::snn {

/// Non-owning view of one timestep's bit-packed nonzero mask: `batch` rows
/// of `words_per_plane` words (spike_words.hpp layout) plus per-sample
/// popcounts. An invalid view (words == nullptr) means the mask is unknown
/// — consumers fall back to dense behaviour. The mask marks *nonzero*
/// elements of the accompanying float activation, which is exactly what
/// the kernel dispatchers' density decision and sparse gather consume
/// (kernels::PackedWords); values need not be binary.
struct SpikeView {
  const std::uint64_t* words = nullptr;
  const std::int32_t* counts = nullptr;
  long batch = 0;
  long plane = 0;
  long words_per_plane = 0;
  long total = 0;  ///< sum of counts; 0 == silent step
  bool valid() const { return words != nullptr; }
};

/// Owning per-step spike-plane buffer — the "lane" the event-driven runner
/// threads between layers so each layer's skip decision and sparse gather
/// read one shared popcount instead of re-probing the floats. Storage never
/// shrinks, so reconfiguring per step/batch is allocation-free in steady
/// state.
class SpikePlanes {
 public:
  /// Sizes the buffer for `batch` planes of `plane` elements each and marks
  /// the contents invalid until a producer fills them.
  void Configure(long batch, long plane) {
    batch_ = batch;
    plane_ = plane;
    wpp_ = kernels::SpikeWordCount(plane);
    const std::size_t n_words =
        static_cast<std::size_t>(batch) * static_cast<std::size_t>(wpp_);
    if (words_.size() < n_words) words_.resize(n_words);
    if (counts_.size() < static_cast<std::size_t>(batch))
      counts_.resize(static_cast<std::size_t>(batch));
    valid_ = false;
  }

  void Invalidate() { valid_ = false; }
  bool valid() const { return valid_; }
  long batch() const { return batch_; }
  long plane() const { return plane_; }

  /// All-zero mask (a silent plane).
  void ZeroFill() {
    std::fill(words_.begin(),
              words_.begin() + static_cast<std::ptrdiff_t>(batch_ * wpp_), 0);
    std::fill(counts_.begin(),
              counts_.begin() + static_cast<std::ptrdiff_t>(batch_), 0);
    total_ = 0;
    valid_ = true;
  }

  /// Packs the nonzero mask of `x` (batch rows of plane floats).
  void PackFrom(const float* x) {
    long total = 0;
    for (long i = 0; i < batch_; ++i) {
      const long c = kernels::PackSpikeWords(x + i * plane_, plane_,
                                             words_.data() + i * wpp_);
      counts_[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(c);
      total += c;
    }
    total_ = total;
    valid_ = true;
  }

  /// Copies another step's mask (identity layers: dropout in eval mode).
  void CopyFrom(const SpikeView& in) {
    std::copy(in.words, in.words + batch_ * wpp_, words_.data());
    std::copy(in.counts, in.counts + batch_, counts_.data());
    total_ = in.total;
    valid_ = true;
  }

  SpikeView View() const {
    SpikeView v;
    if (!valid_) return v;
    v.words = words_.data();
    v.counts = counts_.data();
    v.batch = batch_;
    v.plane = plane_;
    v.words_per_plane = wpp_;
    v.total = total_;
    return v;
  }

 private:
  long batch_ = 0;
  long plane_ = 0;
  long wpp_ = 0;
  long total_ = 0;
  bool valid_ = false;
  runtime::AlignedVector<std::uint64_t> words_;
  std::vector<std::int32_t> counts_;
};

/// Per-timestep forward context for the event-driven path (EventRunner).
struct StepContext {
  long t = 0;           ///< current timestep, 0-based
  long time_steps = 0;  ///< total steps in the run
  SpikeView in;         ///< packed mask of `x`, if the producer published one
  SpikePlanes* out = nullptr;  ///< where to publish this layer's output mask
  long* kernel_calls = nullptr;          ///< ++ per conv/dense kernel run
  long* kernel_calls_skipped = nullptr;  ///< ++ per skip-on-silent bias fill
};

/// Abstract base class of all network layers.
///
/// Contract: Backward(g) must be called at most once after each forward pass
/// and receives dL/d(output); it accumulates parameter gradients internally
/// and returns dL/d(input) of the same shape as the forward input.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  Layer(const Layer&) = default;
  Layer& operator=(const Layer&) = default;

  /// Output shape produced for an input of shape `in`. Throws when `in` is
  /// not a shape this layer accepts.
  virtual Shape OutputShape(const Shape& in) const = 0;

  /// Runs the layer on a time-major activation, writing the result into
  /// `out` (resized by the implementation; contents fully overwritten).
  /// `out` must not alias `x`. `train` enables stochastic behaviour
  /// (dropout) and input caching for Backward. Inference passes
  /// (train == false) skip — and invalidate — the input-activation cache
  /// unless grad_cache() is set, so Backward after an uncached pass throws
  /// rather than differentiating a stale input; callers that backpropagate
  /// through inference-mode forwards (the gradient-based attacks) enable
  /// caching first via Network::SetGradCache / snn::GradCacheScope.
  virtual void ForwardInto(const Tensor& x, Tensor& out, bool train) = 0;

  /// Allocating convenience wrapper around ForwardInto.
  Tensor Forward(const Tensor& x, bool train) {
    Tensor out;
    ForwardInto(x, out, train);
    return out;
  }

  /// Event-path stepped forward: processes one timestep's batch [B, ...]
  /// instead of the whole [T, B, ...] sequence. Must produce exactly the
  /// slice ForwardInto would have written for this step (the dense-path
  /// equivalence contract — pinned by tests/test_event_pipeline.cpp).
  /// `ctx.in` optionally carries the packed nonzero mask of `x` so the
  /// layer can skip work on silent steps and feed the sparse kernels
  /// without re-deriving the mask; when `ctx.in` is valid and silent
  /// (total == 0), implementations must not read x's *data* (the runner
  /// skips densifying silent steps — x then has the right shape but stale
  /// contents). Layers publish their own output mask into `ctx.out` when
  /// they can do so cheaply, or invalidate it. Bracketed by BeginStepped /
  /// EndStepped; only inference-mode behaviour (no dropout noise, no
  /// Backward caches — Backward after a stepped run throws).
  ///
  /// Default: run ForwardInto in inference mode on the step batch and
  /// publish no mask — correct for any stateless layer.
  virtual void ForwardStep(const Tensor& x, Tensor& out, StepContext& ctx) {
    ForwardInto(x, out, false);
    if (ctx.out != nullptr) ctx.out->Invalidate();
  }

  /// Bracket a stepped run (EventRunner): BeginStepped resets per-run
  /// stepped state (LIF membrane carries, silent-fill caches) before step
  /// t == 0; EndStepped runs after the last step.
  virtual void BeginStepped(long time_steps, long batch) {
    (void)time_steps;
    (void)batch;
  }
  virtual void EndStepped() {}

  /// Backpropagates through the cached forward pass; returns dL/d(input).
  virtual Tensor Backward(const Tensor& grad_out) = 0;

  /// Trainable parameter tensors (may be empty). Order is stable and matches
  /// Grads().
  virtual std::vector<Tensor*> Params() { return {}; }

  /// Accumulated parameter gradients, aligned with Params().
  virtual std::vector<Tensor*> Grads() { return {}; }

  /// Clears accumulated parameter gradients.
  void ZeroGrad() {
    for (Tensor* g : Grads()) g->Zero();
  }

  /// Called after the layer's parameter tensors were overwritten in bulk
  /// (Network::LoadStateDict). Layers holding state *derived* from their
  /// parameters — e.g. the int8 weight snapshot of Conv2d/Dense — must
  /// invalidate it here; executing on a stale snapshot would silently
  /// ignore the new weights. Direct mutation through weight()/Params()
  /// accessors does not trigger this hook; such callers re-derive manually
  /// (as ApplyApproximation does by enabling int8 after its last edit).
  virtual void OnWeightsChanged() {}

  /// Gradient-cache switch for inference-mode passes: when set, layers keep
  /// their Backward caches on train == false forwards too (the attacks'
  /// threat model — craft on the accurate model in eval mode). Default off:
  /// pure inference (AccuracyStatic, sweeps) skips the per-layer input
  /// copies. Training passes (train == true) always cache.
  void set_grad_cache(bool on) { grad_cache_ = on; }
  bool grad_cache() const { return grad_cache_; }

  /// Short identifier used in diagnostics and state dicts, e.g. "conv1".
  virtual std::string Name() const = 0;

  /// Deep copy, preserving weights but not cached activations. Approximation
  /// experiments clone a trained network once per (precision, level) variant.
  virtual std::unique_ptr<Layer> Clone() const = 0;

 protected:
  /// Resizes `out` to OutputShape(x.shape()), memoizing the (input, output)
  /// shape pair so steady-state passes (same input shape every call) perform
  /// no shape computation and no allocation. ForwardInto implementations
  /// call this first.
  void SizeOutput(const Tensor& x, Tensor& out) {
    if (x.shape() != last_in_shape_) {
      last_out_shape_ = OutputShape(x.shape());
      last_in_shape_ = x.shape();  // copy-assign: reuses capacity
    }
    out.ResizeTo(last_out_shape_);
  }

 private:
  Shape last_in_shape_;   // memoized SizeOutput key
  Shape last_out_shape_;  // memoized SizeOutput value
  bool grad_cache_ = false;  // cache inputs on inference passes too
};

}  // namespace axsnn::snn
