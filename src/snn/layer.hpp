// Layer abstraction for time-major spiking networks.
//
// All layers consume and produce *time-major* activations shaped
// [T, B, ...feature dims...]; stateless layers (conv, dense, pool) treat
// T*B as one large batch, while the LIF layer runs its membrane recursion
// across the leading time axis. Each layer caches what it needs during
// Forward so that a subsequent Backward can run full
// backpropagation-through-time, including the gradient with respect to the
// *input* — which is what the gradient-based adversarial attacks consume.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace axsnn::snn {

/// Abstract base class of all network layers.
///
/// Contract: Backward(g) must be called at most once after each Forward and
/// receives dL/d(output); it accumulates parameter gradients internally and
/// returns dL/d(input) of the same shape as the Forward input.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  Layer(const Layer&) = default;
  Layer& operator=(const Layer&) = default;

  /// Runs the layer on a time-major activation tensor.
  /// `train` enables stochastic behaviour (dropout) and gradient caching.
  virtual Tensor Forward(const Tensor& x, bool train) = 0;

  /// Backpropagates through the cached forward pass; returns dL/d(input).
  virtual Tensor Backward(const Tensor& grad_out) = 0;

  /// Trainable parameter tensors (may be empty). Order is stable and matches
  /// Grads().
  virtual std::vector<Tensor*> Params() { return {}; }

  /// Accumulated parameter gradients, aligned with Params().
  virtual std::vector<Tensor*> Grads() { return {}; }

  /// Clears accumulated parameter gradients.
  void ZeroGrad() {
    for (Tensor* g : Grads()) g->Zero();
  }

  /// Short identifier used in diagnostics and state dicts, e.g. "conv1".
  virtual std::string Name() const = 0;

  /// Deep copy, preserving weights but not cached activations. Approximation
  /// experiments clone a trained network once per (precision, level) variant.
  virtual std::unique_ptr<Layer> Clone() const = 0;
};

}  // namespace axsnn::snn
