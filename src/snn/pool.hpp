// Spatial pooling layers (average and max) over [*, C, H, W] activations.
//
// The paper's classifiers use pooling between convolution stages (2 pooling
// layers in the MNIST net, 3 in the DVS net). Average pooling of spike
// trains yields fractional firing rates, which downstream LIF layers
// integrate naturally; max pooling propagates the strongest spike.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "snn/layer.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::snn {

/// Non-overlapping average pooling with a square window.
class AvgPool2d final : public Layer {
 public:
  AvgPool2d(std::string name, long window);

  Shape OutputShape(const Shape& in) const override;
  void ForwardInto(const Tensor& x, Tensor& out, bool train) override;
  /// Event-path step: a silent input pools to an exactly-zero output (the
  /// dense path's +0 window sums), published as an all-zero mask without
  /// touching x's data; otherwise pools normally and packs the output's
  /// nonzero mask (fractional rates pack fine — the mask marks nonzeros,
  /// not binary spikes). Invalidates the Backward cache.
  void ForwardStep(const Tensor& x, Tensor& out, StepContext& ctx) override;
  void BeginStepped(long time_steps, long batch) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return name_; }
  std::unique_ptr<Layer> Clone() const override;

  long window() const { return window_; }

 private:
  std::string name_;
  long window_ = 2;
  Shape cached_in_shape_;
  // Silent-fill cache for the stepped path (see Conv2d).
  bool silent_filled_ = false;
  const float* silent_fill_data_ = nullptr;
  long silent_fill_numel_ = 0;
};

/// Non-overlapping max pooling with a square window.
class MaxPool2d final : public Layer {
 public:
  MaxPool2d(std::string name, long window);

  Shape OutputShape(const Shape& in) const override;
  void ForwardInto(const Tensor& x, Tensor& out, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return name_; }
  std::unique_ptr<Layer> Clone() const override;

  long window() const { return window_; }

 private:
  std::string name_;
  long window_ = 2;
  Shape cached_in_shape_;
  std::vector<long> argmax_;  // winning input offset per output element
};

}  // namespace axsnn::snn
