// Spatial pooling layers (average and max) over [*, C, H, W] activations.
//
// The paper's classifiers use pooling between convolution stages (2 pooling
// layers in the MNIST net, 3 in the DVS net). Average pooling of spike
// trains yields fractional firing rates, which downstream LIF layers
// integrate naturally; max pooling propagates the strongest spike.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "snn/layer.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::snn {

/// Non-overlapping average pooling with a square window.
class AvgPool2d final : public Layer {
 public:
  AvgPool2d(std::string name, long window);

  Shape OutputShape(const Shape& in) const override;
  void ForwardInto(const Tensor& x, Tensor& out, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return name_; }
  std::unique_ptr<Layer> Clone() const override;

  long window() const { return window_; }

 private:
  std::string name_;
  long window_ = 2;
  Shape cached_in_shape_;
};

/// Non-overlapping max pooling with a square window.
class MaxPool2d final : public Layer {
 public:
  MaxPool2d(std::string name, long window);

  Shape OutputShape(const Shape& in) const override;
  void ForwardInto(const Tensor& x, Tensor& out, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return name_; }
  std::unique_ptr<Layer> Clone() const override;

  long window() const { return window_; }

 private:
  std::string name_;
  long window_ = 2;
  Shape cached_in_shape_;
  std::vector<long> argmax_;  // winning input offset per output element
};

}  // namespace axsnn::snn
