#include "snn/models.hpp"

#include "snn/conv2d.hpp"
#include "snn/dense.hpp"
#include "snn/dropout.hpp"
#include "snn/lif_layer.hpp"
#include "snn/pool.hpp"
#include "tensor/check.hpp"

namespace axsnn::snn {

Network BuildStaticNet(const StaticNetOptions& opts) {
  AXSNN_CHECK(opts.height % 4 == 0 && opts.width % 4 == 0,
              "static net needs spatial dims divisible by 4 (two 2x pools)");
  opts.lif.Validate();
  Rng rng(opts.seed);
  Network net;
  net.Emplace<Conv2d>("conv1", opts.channels, opts.conv1_channels, 3L, 1L, rng);
  net.Emplace<LifLayer>("lif1", opts.lif);
  net.Emplace<AvgPool2d>("pool1", 2L);
  net.Emplace<Conv2d>("conv2", opts.conv1_channels, opts.conv2_channels, 3L,
                      1L, rng);
  net.Emplace<LifLayer>("lif2", opts.lif);
  net.Emplace<AvgPool2d>("pool2", 2L);
  net.Emplace<Conv2d>("conv3", opts.conv2_channels, opts.conv3_channels, 3L,
                      1L, rng);
  net.Emplace<LifLayer>("lif3", opts.lif);
  const long feat =
      opts.conv3_channels * (opts.height / 4) * (opts.width / 4);
  net.Emplace<Dense>("fc1", feat, opts.hidden, rng);
  net.Emplace<LifLayer>("lif4", opts.lif);
  net.Emplace<Dense>("fc2", opts.hidden, opts.classes, rng);
  return net;
}

Network BuildDvsNet(const DvsNetOptions& opts) {
  AXSNN_CHECK(opts.height % 8 == 0 && opts.width % 8 == 0,
              "DVS net needs spatial dims divisible by 8 (three 2x pools)");
  opts.lif.Validate();
  Rng rng(opts.seed);
  Network net;
  net.Emplace<Conv2d>("conv1", opts.channels, opts.conv1_channels, 3L, 1L, rng);
  net.Emplace<LifLayer>("lif1", opts.lif);
  net.Emplace<AvgPool2d>("pool1", 2L);
  net.Emplace<Conv2d>("conv2", opts.conv1_channels, opts.conv2_channels, 3L,
                      1L, rng);
  net.Emplace<LifLayer>("lif2", opts.lif);
  net.Emplace<AvgPool2d>("pool2", 2L);
  net.Emplace<AvgPool2d>("pool3", 2L);
  net.Emplace<Dropout>("drop1", opts.dropout_rate, opts.seed ^ 0xD50ULL);
  const long feat =
      opts.conv2_channels * (opts.height / 8) * (opts.width / 8);
  net.Emplace<Dense>("fc1", feat, opts.hidden, rng);
  net.Emplace<LifLayer>("lif3", opts.lif);
  net.Emplace<Dense>("fc2", opts.hidden, opts.classes, rng);
  return net;
}

}  // namespace axsnn::snn
