// Rate-readout and softmax cross-entropy loss for spiking classifiers.
//
// The network's final layer emits a time sequence [T, B, K]; classification
// uses the mean over time as logits (spike-count readout). The loss provides
// both the scalar objective and the gradient that seeds BPTT.
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace axsnn::snn {

/// Mean over the time axis: [T, B, K] -> [B, K].
Tensor ReadoutMean(const Tensor& seq_tbk);

/// Allocation-free variant of ReadoutMean: writes the [B, K] logits into
/// `out` (resized in place, storage reused across calls — the serving
/// front end and the batched prediction loops stage their readouts here).
/// Bit-identical to ReadoutMean: same accumulation order, same final scale.
/// `out` must not alias `seq_tbk`.
void ReadoutMeanInto(const Tensor& seq_tbk, Tensor& out);

/// Adjoint of ReadoutMean: spreads dL/d(logits) [B, K] uniformly over
/// `time_steps` -> [T, B, K].
Tensor ReadoutMeanBackward(const Tensor& grad_logits, long time_steps);

/// Result of a softmax cross-entropy evaluation.
struct LossResult {
  float loss = 0.0f;        ///< mean cross-entropy over the batch
  Tensor grad_logits;       ///< dL/d(logits), [B, K]
  long correct = 0;         ///< argmax(logits) == label count
};

/// Numerically stable softmax cross-entropy with integer class labels.
/// `logits` is [B, K]; `labels` holds B class ids in [0, K).
LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               std::span<const int> labels);

}  // namespace axsnn::snn
