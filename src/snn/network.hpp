// Sequential spiking network container.
//
// A Network is an ordered list of layers processing time-major activations.
// It provides:
//  * Forward/Backward over the whole stack (Backward returns dL/d(input),
//    which the gradient-based attacks consume directly);
//  * parameter/gradient aggregation for the optimizer;
//  * deep cloning and state-dict (de)serialization so approximation
//    experiments can derive many AxSNN variants from one trained checkpoint;
//  * structural-parameter editing (set every LIF layer's Vth and leak at
//    once) for the paper's (Vth, T) sweeps.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/workspace.hpp"
#include "snn/event_path.hpp"
#include "snn/layer.hpp"
#include "snn/lif.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::snn {

class LifLayer;

/// Ordered stack of layers; owns them.
class Network {
 public:
  Network() = default;

  // Move-only: layers own training caches that must not be shallow-shared.
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Appends a layer; returns a reference to the stored layer.
  Layer& Add(std::unique_ptr<Layer> layer);

  /// Constructs a layer in place, e.g. net.Emplace<Conv2d>("c1", 1, 8, 3, 1, rng).
  template <typename L, typename... Args>
  L& Emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    Add(std::move(layer));
    return ref;
  }

  /// Runs all layers on a time-major activation [T, B, ...], returning a
  /// fresh tensor (allocates). Prefer ForwardShared on hot paths.
  Tensor Forward(const Tensor& x, bool train = false);

  /// Allocation-free forward pass: activations ping-pong between two slots
  /// of the network's own Workspace, which is warmed up on the first call
  /// and reused across timesteps, mini-batches and attack iterations. The
  /// returned reference points into the workspace and is valid until the
  /// next forward pass on this network. `x` must not alias the workspace
  /// (i.e. never feed a previous ForwardShared result back in directly).
  const Tensor& ForwardShared(const Tensor& x, bool train = false);

  /// Backpropagates through the last Forward; returns dL/d(input).
  Tensor Backward(const Tensor& grad_out);

  /// Enables/disables gradient caching on inference-mode forwards for every
  /// layer (Layer::set_grad_cache). The gradient-based attacks switch this
  /// on around their craft loops — they backpropagate through train=false
  /// passes — and restore it so pure evaluation stays copy-free (use
  /// GradCacheScope rather than calling this directly).
  void SetGradCache(bool on);

  /// Current SetGradCache state (false for an empty network). All layers
  /// always share one value — SetGradCache is the only writer.
  bool GradCacheEnabled() const;

  /// Clears all parameter gradients.
  void ZeroGrad();

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// All trainable parameters (layer order, Params() order within a layer).
  std::vector<Tensor*> Params();
  /// Gradients aligned with Params().
  std::vector<Tensor*> Grads();

  /// Total number of trainable scalars.
  long ParameterCount() const;

  /// Pointers to every LIF layer in the stack (non-owning).
  std::vector<LifLayer*> LifLayers();
  std::vector<const LifLayer*> LifLayers() const;

  /// Overwrites the neuron parameters of every LIF layer — the paper's
  /// "structural parameter" knob (threshold voltage sweep).
  void SetLifParams(const LifParams& params);

  /// Temporal execution path preference for this network: kDense runs the
  /// [T, B, ...] frame-tensor pipeline, kEvent the compressed spike-stream
  /// one. Resolved against the AXSNN_EVENT_PATH env override / global mode
  /// at dispatch time (snn::ResolveEventPathMode); kAuto means dense.
  EventPathMode event_path() const { return event_path_; }
  void set_event_path(EventPathMode mode) { event_path_ = mode; }

  /// Transient-fault injection hook (src/faults/): called after every
  /// layer's ForwardInto with the layer index and the freshly written
  /// activation, which it may corrupt in place. Deliberately execution
  /// state, not model state: Clone() does NOT copy it (a clone restarts
  /// fault-free) and StateDict() never sees it. The hook fires on the
  /// dense path only; the temporal dispatchers fall back to dense when one
  /// is installed (snn/inference.cpp, core/workbench.cpp) so the corruption
  /// is never silently skipped by the event path.
  using PostLayerHook = std::function<void(std::size_t layer, Tensor& act)>;
  void set_post_layer_hook(PostLayerHook hook) {
    post_layer_hook_ = std::move(hook);
  }
  bool has_post_layer_hook() const {
    return static_cast<bool>(post_layer_hook_);
  }

  /// Deep copy: same weights, fresh caches. Does not copy the post-layer
  /// hook (see set_post_layer_hook).
  Network Clone() const;

  /// Weights keyed "layer_name.param_index" (e.g. "conv1.0" for the kernel).
  std::map<std::string, Tensor> StateDict() const;

  /// Restores weights saved by StateDict. Throws when a key is missing or a
  /// shape differs — a checkpoint must match the architecture exactly.
  void LoadStateDict(const std::map<std::string, Tensor>& state);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  runtime::Workspace workspace_;  // activation ping-pong for ForwardShared
  EventPathMode event_path_ = EventPathMode::kAuto;
  PostLayerHook post_layer_hook_;  // transient; never cloned/serialized
};

/// Scoped inference-pass gradient caching: the gradient-based attacks
/// backpropagate through train=false forwards, so the layers must keep
/// their Backward caches for the scope's duration. Restores the *prior*
/// state on exit (exception-safe), so a caller that already enabled
/// caching keeps it.
class GradCacheScope {
 public:
  explicit GradCacheScope(Network& net)
      : net_(net), saved_(net.GradCacheEnabled()) {
    net_.SetGradCache(true);
  }
  ~GradCacheScope() { net_.SetGradCache(saved_); }
  GradCacheScope(const GradCacheScope&) = delete;
  GradCacheScope& operator=(const GradCacheScope&) = delete;

 private:
  Network& net_;
  bool saved_;
};

}  // namespace axsnn::snn
