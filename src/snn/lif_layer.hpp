// Leaky-integrate-and-fire activation layer with surrogate-gradient BPTT.
//
// This is the only stateful-in-time layer: it runs the membrane recursion
//   u[t] = beta * u[t-1] * (1 - s[t-1]) + x[t],   s[t] = H(u[t] - Vth)
// across the leading time axis of a [T, B, F...] activation, and its
// Backward implements full backpropagation-through-time using the
// fast-sigmoid surrogate for dH/du. It also records the spike statistics
// (mean firing rate, mean membrane potential) that the Eq. (1)
// approximation-threshold rule consumes.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "snn/layer.hpp"
#include "snn/lif.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::snn {

/// LIF spiking nonlinearity over time-major activations [T, B, F...].
class LifLayer final : public Layer {
 public:
  LifLayer(std::string name, LifParams params);

  Shape OutputShape(const Shape& in) const override;
  void ForwardInto(const Tensor& x, Tensor& out, bool train) override;
  /// Event-path step: advances the membrane recursion one timestep from a
  /// per-neuron carry (bit-identical to the dense recursion — the carry
  /// holds exactly the post-reset membrane the dense loop would feed into
  /// step t). LIF is never skipped on silent steps: the leak and any bias
  /// currents from an upstream silent-filled conv/dense still integrate.
  /// Publishes the (binary) output spikes into ctx.out. Skips the spike
  /// statistics (Eq. (1) calibration runs on the dense path) and
  /// invalidates the BPTT caches, so Backward after a stepped run throws.
  void ForwardStep(const Tensor& x, Tensor& out, StepContext& ctx) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return name_; }
  std::unique_ptr<Layer> Clone() const override;

  const LifParams& params() const { return params_; }

  /// Replaces the neuron parameters (e.g. when sweeping Vth). Clears caches.
  void set_params(LifParams params);

  /// Fault-injection entry (src/faults/): replaces the neuron parameters
  /// WITHOUT range validation — a hardware bit-flip does not respect
  /// software invariants, and a corrupted Vth/leak must flow through the
  /// recursion as-is (every downstream op is well-defined float
  /// arithmetic, including NaN/inf). Clears caches like set_params.
  void set_params_raw(LifParams params);

  /// Mean spikes emitted per neuron per time step in the last Forward
  /// (Ns/T in Eq. (1) terms).
  float last_mean_rate() const { return last_mean_rate_; }

  /// Mean membrane potential observed in the last Forward (signed).
  float last_mean_membrane() const { return last_mean_membrane_; }

  /// Mean rectified membrane potential, mean(max(0, u)) — the excitatory
  /// drive. This is the Vm a spike-probability reading of Eq. (1) needs:
  /// trained networks often have negative *signed* mean membrane (strong
  /// inhibition), which would zero the min(1, Vm/Vth) term.
  float last_mean_drive() const { return last_mean_drive_; }

  /// Total spikes emitted in the last Forward (Ns summed over neurons).
  double last_total_spikes() const { return last_total_spikes_; }

 private:
  std::string name_;
  LifParams params_;
  Tensor cached_membrane_;  // u[t] before reset, same shape as input
  Tensor cached_spikes_;    // s[t]
  // Per-chunk (spikes, membrane, drive) partial sums, reused across passes
  // so the steady-state forward path performs no allocation.
  std::vector<std::array<double, 3>> stat_partials_;
  // Stepped-path carry: per-neuron post-reset membrane between timesteps
  // (s_prev > 0 ? v_reset : u_prev). Zeroed at step 0, reused across runs.
  std::vector<float> stepped_carry_;
  float last_mean_rate_ = 0.0f;
  float last_mean_membrane_ = 0.0f;
  float last_mean_drive_ = 0.0f;
  double last_total_spikes_ = 0.0;
};

}  // namespace axsnn::snn
