// Event-path mode knob: dense reference frames vs compressed spike streams.
//
// The temporal inference path has two executions of the same arithmetic:
//
//   dense — densify events into a [N, T, C, H, W] frame tensor, transpose
//           to time-major and run Network::ForwardShared over the whole
//           sequence. The pinned reference; every golden report was
//           produced by it.
//   event — bin events straight into bit-packed per-timestep word planes
//           (kernels::SpikeStream), step the network one timestep at a
//           time (snn::EventRunner), skip conv/dense entirely on silent
//           steps and feed the packed words to the sparse/SIMD kernel
//           paths without re-deriving them from floats.
//
// Both paths are bit-identical by contract (tests/test_event_pipeline.cpp
// and the fig7b golden diff pin it); the knob exists so CI can run every
// suite in both paths and so a regression can be bisected to the
// representation in one rerun.
//
// Mode precedence for one temporal evaluation — deliberately the same
// scheme as kernels::KernelMode:
//   1. a non-auto *global* mode (AXSNN_EVENT_PATH env var, or
//      SetGlobalEventPathMode) wins everywhere — the CI event-path leg
//      exports AXSNN_EVENT_PATH=on over the full suite;
//   2. otherwise a non-auto *config* mode (ApproxConfig::event_path ->
//      Network::set_event_path, DvsWorkbench::Options::event_path);
//   3. otherwise (auto) the dense reference path runs. Event execution is
//      opt-in: it requires binary activations entering the first layer
//      (spikes / binned events), which the DVS path guarantees and
//      arbitrary rate-coded tensors do not.
#pragma once

#include <optional>
#include <string_view>

namespace axsnn::snn {

/// Temporal execution selector; kAuto defers to the dense reference.
enum class EventPathMode { kAuto, kDense, kEvent };

/// "auto" / "dense" / "event".
const char* EventPathName(EventPathMode mode);

/// Inverse of EventPathName; also accepts the env spellings "on" (event)
/// and "off" (dense). nullopt for unknown names.
std::optional<EventPathMode> ParseEventPathMode(std::string_view name);

/// Process-global mode, initialized once from the AXSNN_EVENT_PATH
/// environment variable (unset / unparsable -> kAuto). A non-auto global
/// mode overrides every config setting (precedence rule 1 above).
EventPathMode GlobalEventPathMode();

/// Overrides the global mode at runtime (tests, benchmarks). Not
/// thread-safe against concurrent temporal evaluations.
void SetGlobalEventPathMode(EventPathMode mode);

/// Scoped global-mode override, restoring the prior mode on exit. The
/// differential tests pin each path with this.
class ScopedEventPathMode {
 public:
  explicit ScopedEventPathMode(EventPathMode mode)
      : saved_(GlobalEventPathMode()) {
    SetGlobalEventPathMode(mode);
  }
  ~ScopedEventPathMode() { SetGlobalEventPathMode(saved_); }
  ScopedEventPathMode(const ScopedEventPathMode&) = delete;
  ScopedEventPathMode& operator=(const ScopedEventPathMode&) = delete;

 private:
  EventPathMode saved_;
};

/// Applies the precedence rules: a non-auto global mode wins over
/// `requested`; kAuto resolves to kDense (the reference path).
EventPathMode ResolveEventPathMode(EventPathMode requested);

}  // namespace axsnn::snn
