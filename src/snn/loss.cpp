#include "snn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/check.hpp"

namespace axsnn::snn {

Tensor ReadoutMean(const Tensor& seq_tbk) {
  Tensor logits;
  ReadoutMeanInto(seq_tbk, logits);
  return logits;
}

void ReadoutMeanInto(const Tensor& seq_tbk, Tensor& out) {
  AXSNN_CHECK(seq_tbk.rank() == 3, "ReadoutMean expects [T, B, K]");
  AXSNN_CHECK(&seq_tbk != &out, "ReadoutMeanInto output aliases its input");
  const long t_steps = seq_tbk.dim(0);
  const long b = seq_tbk.dim(1);
  const long k = seq_tbk.dim(2);
  // Skip ResizeTo when the shape already matches: the temporary Shape it
  // takes would itself allocate, defeating the steady-state zero-alloc use.
  if (out.rank() != 2 || out.dim(0) != b || out.dim(1) != k)
    out.ResizeTo({b, k});
  const float* src = seq_tbk.data();
  float* dst = out.data();
  const float inv = 1.0f / static_cast<float>(t_steps);
  for (long i = 0; i < b * k; ++i) dst[i] = 0.0f;
  for (long t = 0; t < t_steps; ++t) {
    const float* frame = src + t * b * k;
    for (long i = 0; i < b * k; ++i) dst[i] += frame[i];
  }
  for (long i = 0; i < b * k; ++i) dst[i] *= inv;
}

Tensor ReadoutMeanBackward(const Tensor& grad_logits, long time_steps) {
  AXSNN_CHECK(grad_logits.rank() == 2, "expected [B, K] gradient");
  AXSNN_CHECK(time_steps > 0, "time_steps must be positive");
  const long b = grad_logits.dim(0);
  const long k = grad_logits.dim(1);
  Tensor out({time_steps, b, k});
  const float inv = 1.0f / static_cast<float>(time_steps);
  const float* g = grad_logits.data();
  float* o = out.data();
  for (long t = 0; t < time_steps; ++t)
    for (long i = 0; i < b * k; ++i) o[t * b * k + i] = g[i] * inv;
  return out;
}

LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               std::span<const int> labels) {
  AXSNN_CHECK(logits.rank() == 2, "SoftmaxCrossEntropy expects [B, K]");
  const long b = logits.dim(0);
  const long k = logits.dim(1);
  AXSNN_CHECK(static_cast<long>(labels.size()) == b,
              "label count " << labels.size() << " != batch " << b);

  LossResult result;
  result.grad_logits = Tensor({b, k});
  double total_loss = 0.0;

  const float* ld = logits.data();
  float* gd = result.grad_logits.data();
  const float inv_b = 1.0f / static_cast<float>(b);

  for (long i = 0; i < b; ++i) {
    const int label = labels[static_cast<std::size_t>(i)];
    AXSNN_CHECK(label >= 0 && label < k,
                "label " << label << " out of range [0, " << k << ")");
    const float* row = ld + i * k;
    const float m = *std::max_element(row, row + k);
    double denom = 0.0;
    for (long j = 0; j < k; ++j) denom += std::exp(static_cast<double>(row[j] - m));
    const double log_denom = std::log(denom);
    total_loss += log_denom - (row[label] - m);

    long arg = 0;
    for (long j = 1; j < k; ++j)
      if (row[j] > row[arg]) arg = j;
    if (arg == label) ++result.correct;

    float* grow = gd + i * k;
    for (long j = 0; j < k; ++j) {
      const float p = static_cast<float>(
          std::exp(static_cast<double>(row[j] - m) - log_denom));
      grow[j] = (p - (j == label ? 1.0f : 0.0f)) * inv_b;
    }
  }
  result.loss = static_cast<float>(total_loss / b);
  return result;
}

}  // namespace axsnn::snn
