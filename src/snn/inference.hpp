// Batched inference helpers shared by evaluation, attacks and defenses.
#pragma once

#include <cstdint>
#include <span>

#include "snn/encoding.hpp"
#include "snn/network.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::snn {

/// Logits [B, K] for a batch of static images [B, C, H, W].
Tensor LogitsStatic(Network& net, const Tensor& images, long time_steps,
                    Encoding mode, Rng& rng);

/// Logits [B, K] for a batch of pre-binned frames [B, T, C, H, W].
Tensor LogitsTemporal(Network& net, const Tensor& frames);

/// Top-1 accuracy in [0, 1] on static images, evaluated in mini-batches of
/// `batch_size` to bound peak memory. Deterministic given `seed`.
float AccuracyStatic(Network& net, const Tensor& images,
                     std::span<const int> labels, long time_steps,
                     Encoding mode, std::uint64_t seed, long batch_size = 64);

/// Top-1 accuracy in [0, 1] on temporal frames [N, T, C, H, W].
float AccuracyTemporal(Network& net, const Tensor& frames,
                       std::span<const int> labels, long batch_size = 32);

/// Predicted class ids for static images.
std::vector<int> PredictStatic(Network& net, const Tensor& images,
                               long time_steps, Encoding mode,
                               std::uint64_t seed, long batch_size = 64);

/// Predicted class ids for temporal frames.
std::vector<int> PredictTemporal(Network& net, const Tensor& frames,
                                 long batch_size = 32);

}  // namespace axsnn::snn
