#include "snn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <numeric>

#include "snn/loss.hpp"
#include "tensor/check.hpp"

namespace axsnn::snn {

AdamOptimizer::AdamOptimizer(std::vector<Tensor*> params,
                             const TrainConfig& cfg)
    : params_(std::move(params)),
      lr_(cfg.learning_rate),
      beta1_(cfg.beta1),
      beta2_(cfg.beta2),
      eps_(cfg.adam_eps),
      weight_decay_(cfg.weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor* p : params_) {
    m_.emplace_back(Tensor::Zeros(p->shape()));
    v_.emplace_back(Tensor::Zeros(p->shape()));
  }
}

void AdamOptimizer::Step(const std::vector<Tensor*>& grads) {
  AXSNN_CHECK(grads.size() == params_.size(),
              "optimizer gradient list mismatch");
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = *params_[i];
    const Tensor& g = *grads[i];
    AXSNN_CHECK(g.shape() == p.shape(), "gradient shape mismatch");
    float* pd = p.data();
    const float* gd = g.data();
    float* md = m_[i].data();
    float* vd = v_[i].data();
    const long n = p.numel();
    for (long j = 0; j < n; ++j) {
      const float grad = gd[j] + weight_decay_ * pd[j];
      md[j] = beta1_ * md[j] + (1.0f - beta1_) * grad;
      vd[j] = beta2_ * vd[j] + (1.0f - beta2_) * grad * grad;
      const float m_hat = md[j] / bias1;
      const float v_hat = vd[j] / bias2;
      pd[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

namespace {

/// Copies samples `idx[first..last)` of [N, ...] into a [count, ...] batch.
Tensor GatherBatch(const Tensor& data, std::span<const long> idx) {
  const long per_sample = data.numel() / data.dim(0);
  Shape shape = data.shape();
  shape[0] = static_cast<long>(idx.size());
  Tensor out(std::move(shape));
  for (std::size_t i = 0; i < idx.size(); ++i)
    std::copy(data.data() + idx[i] * per_sample,
              data.data() + (idx[i] + 1) * per_sample,
              out.data() + static_cast<long>(i) * per_sample);
  return out;
}

std::vector<int> GatherLabels(std::span<const int> labels,
                              std::span<const long> idx) {
  std::vector<int> out(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i)
    out[i] = labels[static_cast<std::size_t>(idx[i])];
  return out;
}

/// Shared mini-batch loop. `make_input` maps a gathered sample batch to the
/// time-major network input [T, B, ...].
template <typename MakeInput>
TrainResult RunTraining(Network& net, const Tensor& data,
                        std::span<const int> labels, const TrainConfig& cfg,
                        MakeInput&& make_input) {
  const long n = data.dim(0);
  AXSNN_CHECK(n == static_cast<long>(labels.size()),
              "sample/label count mismatch");
  AXSNN_CHECK(cfg.epochs > 0 && cfg.batch_size > 0 && cfg.time_steps > 0,
              "invalid training configuration");

  AdamOptimizer opt(net.Params(), cfg);
  Rng shuffle_rng(cfg.seed);

  std::vector<long> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0L);

  TrainResult result;
  for (long epoch = 0; epoch < cfg.epochs; ++epoch) {
    if (cfg.shuffle) {
      // Fisher–Yates with our deterministic RNG.
      for (long i = n - 1; i > 0; --i) {
        const long j = static_cast<long>(
            shuffle_rng.UniformInt(static_cast<std::uint64_t>(i + 1)));
        std::swap(order[static_cast<std::size_t>(i)],
                  order[static_cast<std::size_t>(j)]);
      }
    }

    double loss_sum = 0.0;
    long correct = 0;
    long batches = 0;
    for (long start = 0; start < n; start += cfg.batch_size) {
      const long count = std::min(cfg.batch_size, n - start);
      std::span<const long> idx(order.data() + start,
                                static_cast<std::size_t>(count));
      Tensor batch = GatherBatch(data, idx);
      std::vector<int> batch_labels = GatherLabels(labels, idx);

      Tensor input = make_input(batch, epoch, batches);
      const Tensor& seq = net.ForwardShared(input, /*train=*/true);
      Tensor logits = ReadoutMean(seq);
      LossResult lr = SoftmaxCrossEntropy(logits, batch_labels);

      net.ZeroGrad();
      Tensor grad_seq = ReadoutMeanBackward(lr.grad_logits, cfg.time_steps);
      net.Backward(grad_seq);
      opt.Step(net.Grads());

      loss_sum += lr.loss;
      correct += lr.correct;
      ++batches;
    }

    EpochStats stats;
    stats.mean_loss = static_cast<float>(loss_sum / std::max(1L, batches));
    stats.accuracy = static_cast<float>(correct) / static_cast<float>(n);
    result.epochs.push_back(stats);
    if (cfg.verbose) {
      std::cerr << "epoch " << (epoch + 1) << '/' << cfg.epochs
                << "  loss=" << stats.mean_loss
                << "  acc=" << stats.accuracy * 100.0f << "%\n";
    }
  }
  result.final_accuracy =
      result.epochs.empty() ? 0.0f : result.epochs.back().accuracy;
  return result;
}

}  // namespace

TrainResult FitStatic(Network& net, const Tensor& images,
                      std::span<const int> labels, const TrainConfig& cfg) {
  AXSNN_CHECK(images.rank() == 4, "FitStatic expects images [N, C, H, W]");
  Rng encode_rng(cfg.seed ^ 0xE4C0DEULL);
  return RunTraining(
      net, images, labels, cfg,
      [&](const Tensor& batch, long /*epoch*/, long /*batch_idx*/) {
        Rng rng = encode_rng.Fork(0);  // advance the stream deterministically
        encode_rng.NextU64();
        return Encode(batch, cfg.time_steps, cfg.encoding, rng);
      });
}

TrainResult FitTemporal(Network& net, const Tensor& frames,
                        std::span<const int> labels, const TrainConfig& cfg) {
  AXSNN_CHECK(frames.rank() == 5,
              "FitTemporal expects frames [N, T, C, H, W]");
  AXSNN_CHECK(frames.dim(1) == cfg.time_steps,
              "cfg.time_steps (" << cfg.time_steps
                                 << ") must equal the dataset frame count ("
                                 << frames.dim(1) << ')');
  return RunTraining(net, frames, labels, cfg,
                     [&](const Tensor& batch, long, long) {
                       return TimeMajor(batch);
                     });
}

}  // namespace axsnn::snn
