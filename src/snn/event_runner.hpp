// Event-driven temporal execution: one timestep at a time over a
// compressed spike stream.
//
// The dense path materializes the full [T, B, ...] activation between every
// pair of layers; EventRunner instead walks the stream step by step,
// carrying only one timestep of activations per layer plus the LIF membrane
// carries. Each layer's ForwardStep is required to reproduce exactly the
// corresponding time slice of its ForwardInto (see snn/layer.hpp), so the
// accumulated readout is bit-identical to
//
//   ReadoutMean(net.ForwardShared(dense_frames))
//
// while silent timesteps (per-step population count zero, read once from
// the stream — no per-kernel density probes) skip the conv/dense kernels
// entirely: weight layers write their cached bias fill, pooling/dropout
// write cached zeros, and only the LIF leak recursion still advances.
//
// Between layers the runner threads a pair of ping-ponged SpikePlanes
// lanes: each layer publishes its output's nonzero mask (bit-packed words +
// popcounts) so the next layer makes its silent decision from a shared
// popcount and feeds the words straight into the sparse gather
// (kernels::PackedWords) without re-deriving them from floats.
//
// Inference-only: stepped runs invalidate every Backward cache. One
// EventRunner owns its workspace and serves one network; clone the network
// (fresh runner) for concurrent sweep cells, as with Workspace.
#pragma once

#include <vector>

#include "kernels/spike_stream.hpp"
#include "runtime/workspace.hpp"
#include "snn/network.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::snn {

/// Counters from the last Run (reset per call).
struct EventRunStats {
  long time_steps = 0;
  long batch = 0;
  long silent_steps = 0;          // stream steps with zero spikes
  long kernel_calls = 0;          // weight-layer kernel invocations
  long kernel_calls_skipped = 0;  // silent-step bias fills instead
};

/// Steps a network over a SpikeStream, accumulating mean-over-time logits.
class EventRunner {
 public:
  explicit EventRunner(Network& net) : net_(net) {}

  EventRunner(EventRunner&&) = default;
  EventRunner& operator=(EventRunner&&) = delete;
  EventRunner(const EventRunner&) = delete;
  EventRunner& operator=(const EventRunner&) = delete;

  /// Runs all timesteps of `stream` through the network and returns the
  /// mean-over-time logits [B, K] — bit-identical to ReadoutMean over the
  /// dense path's output sequence. The reference points into the runner's
  /// workspace and is valid until the next Run.
  const Tensor& Run(const kernels::SpikeStream& stream);

  const EventRunStats& stats() const { return stats_; }

 private:
  Network& net_;
  // Slot 0: the densified input step; slot i+1: layer i's output step.
  // Every layer owns a dedicated slot so its buffer (and therefore its
  // silent-fill cache) survives across timesteps.
  runtime::Workspace ws_;
  Tensor logits_;
  SpikePlanes lanes_[2];  // inter-layer masks, ping-ponged per layer
  // Per-layer output plane sizes (elements per sample), learned on the
  // first timestep of the first run; lanes stay unconfigured until then.
  std::vector<long> planes_;
  bool planes_known_ = false;
  bool x0_zeroed_ = false;
  EventRunStats stats_;
};

}  // namespace axsnn::snn
