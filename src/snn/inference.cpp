#include "snn/inference.hpp"

#include <algorithm>
#include <optional>

#include "kernels/spike_stream.hpp"
#include "snn/event_path.hpp"
#include "snn/event_runner.hpp"
#include "snn/loss.hpp"
#include "tensor/check.hpp"

namespace axsnn::snn {

namespace {

/// Copies rows [start, start+count) of [N, ...] into `out` (resized; storage
/// reused across batches).
void SliceRowsInto(const Tensor& data, long start, long count, Tensor& out) {
  const long per_sample = data.numel() / data.dim(0);
  Shape shape = data.shape();
  shape[0] = count;
  out.ResizeTo(std::move(shape));
  std::copy(data.data() + start * per_sample,
            data.data() + (start + count) * per_sample, out.data());
}

void ArgmaxRowsAppend(const Tensor& logits, std::vector<int>& preds) {
  const long b = logits.dim(0);
  const long k = logits.dim(1);
  for (long i = 0; i < b; ++i) {
    const float* row = logits.data() + i * k;
    preds.push_back(static_cast<int>(std::max_element(row, row + k) - row));
  }
}

long CountCorrect(std::span<const int> preds, std::span<const int> labels) {
  AXSNN_CHECK(preds.size() == labels.size(), "prediction/label mismatch");
  long correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i)
    if (preds[i] == labels[i]) ++correct;
  return correct;
}

}  // namespace

Tensor LogitsStatic(Network& net, const Tensor& images, long time_steps,
                    Encoding mode, Rng& rng) {
  AXSNN_CHECK(images.rank() == 4, "LogitsStatic expects [B, C, H, W]");
  Tensor input = Encode(images, time_steps, mode, rng);
  const Tensor& seq = net.ForwardShared(input, /*train=*/false);
  return ReadoutMean(seq);
}

Tensor LogitsTemporal(Network& net, const Tensor& frames) {
  AXSNN_CHECK(frames.rank() == 5, "LogitsTemporal expects [B, T, C, H, W]");
  // A post-layer (fault) hook only fires on the dense ForwardInto chain, so
  // a hooked network must not ride the event runner — fall back to dense.
  if (!net.has_post_layer_hook() &&
      ResolveEventPathMode(net.event_path()) == EventPathMode::kEvent) {
    kernels::SpikeStream stream;
    if (TimeMajorPackInto(frames, stream)) {
      EventRunner runner(net);
      return runner.Run(stream);  // copy out of the runner's workspace
    }
    // Non-binary frames can't ride the spike stream; fall through dense.
  }
  Tensor input = TimeMajor(frames);
  const Tensor& seq = net.ForwardShared(input, /*train=*/false);
  return ReadoutMean(seq);
}

std::vector<int> PredictStatic(Network& net, const Tensor& images,
                               long time_steps, Encoding mode,
                               std::uint64_t seed, long batch_size) {
  AXSNN_CHECK(batch_size > 0, "batch_size must be positive");
  const long n = images.dim(0);
  Rng rng(seed);
  std::vector<int> preds;
  preds.reserve(static_cast<std::size_t>(n));
  // Staging buffers hoisted out of the loop: after the first (full-size)
  // batch, the whole evaluation loop performs no tensor allocation.
  Tensor batch;
  Tensor input;
  Tensor logits;
  for (long start = 0; start < n; start += batch_size) {
    const long count = std::min(batch_size, n - start);
    SliceRowsInto(images, start, count, batch);
    EncodeInto(batch, time_steps, mode, rng, input);
    const Tensor& seq = net.ForwardShared(input, /*train=*/false);
    ReadoutMeanInto(seq, logits);
    ArgmaxRowsAppend(logits, preds);
  }
  return preds;
}

std::vector<int> PredictTemporal(Network& net, const Tensor& frames,
                                 long batch_size) {
  AXSNN_CHECK(batch_size > 0, "batch_size must be positive");
  const long n = frames.dim(0);
  std::vector<int> preds;
  preds.reserve(static_cast<std::size_t>(n));
  Tensor batch;
  Tensor input;
  // Event path: the same batches go through the stepped spike-stream
  // runner instead — identical chunk boundaries, bit-identical logits, so
  // predictions match the dense loop exactly. Stream and runner storage is
  // reused across batches.
  const bool use_event =
      !net.has_post_layer_hook() &&  // hooks fire on the dense chain only
      ResolveEventPathMode(net.event_path()) == EventPathMode::kEvent;
  kernels::SpikeStream stream;
  std::optional<EventRunner> runner;
  if (use_event) runner.emplace(net);
  Tensor logits;
  for (long start = 0; start < n; start += batch_size) {
    const long count = std::min(batch_size, n - start);
    SliceRowsInto(frames, start, count, batch);
    if (use_event && TimeMajorPackInto(batch, stream)) {
      ArgmaxRowsAppend(runner->Run(stream), preds);
      continue;
    }
    TimeMajorInto(batch, input);
    const Tensor& seq = net.ForwardShared(input, /*train=*/false);
    ReadoutMeanInto(seq, logits);
    ArgmaxRowsAppend(logits, preds);
  }
  return preds;
}

float AccuracyStatic(Network& net, const Tensor& images,
                     std::span<const int> labels, long time_steps,
                     Encoding mode, std::uint64_t seed, long batch_size) {
  const auto preds =
      PredictStatic(net, images, time_steps, mode, seed, batch_size);
  const long correct = CountCorrect(preds, labels);
  return preds.empty()
             ? 0.0f
             : static_cast<float>(correct) / static_cast<float>(preds.size());
}

float AccuracyTemporal(Network& net, const Tensor& frames,
                       std::span<const int> labels, long batch_size) {
  const auto preds = PredictTemporal(net, frames, batch_size);
  const long correct = CountCorrect(preds, labels);
  return preds.empty()
             ? 0.0f
             : static_cast<float>(correct) / static_cast<float>(preds.size());
}

}  // namespace axsnn::snn
