#include "snn/inference.hpp"

#include <algorithm>

#include "snn/loss.hpp"
#include "tensor/check.hpp"

namespace axsnn::snn {

namespace {

/// Copies rows [start, start+count) of [N, ...] into a fresh batch tensor.
Tensor SliceRows(const Tensor& data, long start, long count) {
  const long per_sample = data.numel() / data.dim(0);
  Shape shape = data.shape();
  shape[0] = count;
  Tensor out(std::move(shape));
  std::copy(data.data() + start * per_sample,
            data.data() + (start + count) * per_sample, out.data());
  return out;
}

std::vector<int> ArgmaxRows(const Tensor& logits) {
  const long b = logits.dim(0);
  const long k = logits.dim(1);
  std::vector<int> out(static_cast<std::size_t>(b));
  for (long i = 0; i < b; ++i) {
    const float* row = logits.data() + i * k;
    out[static_cast<std::size_t>(i)] = static_cast<int>(
        std::max_element(row, row + k) - row);
  }
  return out;
}

}  // namespace

Tensor LogitsStatic(Network& net, const Tensor& images, long time_steps,
                    Encoding mode, Rng& rng) {
  AXSNN_CHECK(images.rank() == 4, "LogitsStatic expects [B, C, H, W]");
  Tensor input = Encode(images, time_steps, mode, rng);
  Tensor seq = net.Forward(input, /*train=*/false);
  return ReadoutMean(seq);
}

Tensor LogitsTemporal(Network& net, const Tensor& frames) {
  AXSNN_CHECK(frames.rank() == 5, "LogitsTemporal expects [B, T, C, H, W]");
  Tensor input = TimeMajor(frames);
  Tensor seq = net.Forward(input, /*train=*/false);
  return ReadoutMean(seq);
}

std::vector<int> PredictStatic(Network& net, const Tensor& images,
                               long time_steps, Encoding mode,
                               std::uint64_t seed, long batch_size) {
  AXSNN_CHECK(batch_size > 0, "batch_size must be positive");
  const long n = images.dim(0);
  Rng rng(seed);
  std::vector<int> preds;
  preds.reserve(static_cast<std::size_t>(n));
  for (long start = 0; start < n; start += batch_size) {
    const long count = std::min(batch_size, n - start);
    Tensor batch = SliceRows(images, start, count);
    Tensor logits = LogitsStatic(net, batch, time_steps, mode, rng);
    for (int p : ArgmaxRows(logits)) preds.push_back(p);
  }
  return preds;
}

std::vector<int> PredictTemporal(Network& net, const Tensor& frames,
                                 long batch_size) {
  AXSNN_CHECK(batch_size > 0, "batch_size must be positive");
  const long n = frames.dim(0);
  std::vector<int> preds;
  preds.reserve(static_cast<std::size_t>(n));
  for (long start = 0; start < n; start += batch_size) {
    const long count = std::min(batch_size, n - start);
    Tensor batch = SliceRows(frames, start, count);
    Tensor logits = LogitsTemporal(net, batch);
    for (int p : ArgmaxRows(logits)) preds.push_back(p);
  }
  return preds;
}

float AccuracyStatic(Network& net, const Tensor& images,
                     std::span<const int> labels, long time_steps,
                     Encoding mode, std::uint64_t seed, long batch_size) {
  const auto preds =
      PredictStatic(net, images, time_steps, mode, seed, batch_size);
  AXSNN_CHECK(preds.size() == labels.size(), "prediction/label mismatch");
  long correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i)
    if (preds[i] == labels[i]) ++correct;
  return preds.empty()
             ? 0.0f
             : static_cast<float>(correct) / static_cast<float>(preds.size());
}

float AccuracyTemporal(Network& net, const Tensor& frames,
                       std::span<const int> labels, long batch_size) {
  const auto preds = PredictTemporal(net, frames, batch_size);
  AXSNN_CHECK(preds.size() == labels.size(), "prediction/label mismatch");
  long correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i)
    if (preds[i] == labels[i]) ++correct;
  return preds.empty()
             ? 0.0f
             : static_cast<float>(correct) / static_cast<float>(preds.size());
}

}  // namespace axsnn::snn
