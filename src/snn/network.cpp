#include "snn/network.hpp"

#include <sstream>

#include "snn/lif_layer.hpp"
#include "tensor/check.hpp"

namespace axsnn::snn {

Layer& Network::Add(std::unique_ptr<Layer> layer) {
  AXSNN_CHECK(layer != nullptr, "cannot add a null layer");
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

Tensor Network::Forward(const Tensor& x, bool train) {
  return ForwardShared(x, train);  // copies the workspace result out
}

const Tensor& Network::ForwardShared(const Tensor& x, bool train) {
  AXSNN_CHECK(!layers_.empty(), "Forward on an empty network");
  // Ping-pong between two workspace slots: layer i reads slot (i+1)%2 (or x
  // for the first layer) and writes slot i%2, so input and output never
  // alias and both buffers are reused across calls.
  const Tensor* in = &x;
  Tensor* out = nullptr;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Tensor& buf = workspace_.Slot(i % 2);
    AXSNN_CHECK(in != &buf, "workspace slot aliases the layer input");
    layers_[i]->ForwardInto(*in, buf, train);
    if (post_layer_hook_) post_layer_hook_(i, buf);
    out = &buf;
    in = out;
  }
  return *out;
}

Tensor Network::Backward(const Tensor& grad_out) {
  AXSNN_CHECK(!layers_.empty(), "Backward on an empty network");
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->Backward(g);
  return g;
}

void Network::SetGradCache(bool on) {
  for (auto& layer : layers_) layer->set_grad_cache(on);
}

bool Network::GradCacheEnabled() const {
  return !layers_.empty() && layers_.front()->grad_cache();
}

void Network::ZeroGrad() {
  for (auto& layer : layers_) layer->ZeroGrad();
}

std::vector<Tensor*> Network::Params() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_)
    for (Tensor* p : layer->Params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> Network::Grads() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_)
    for (Tensor* g : layer->Grads()) out.push_back(g);
  return out;
}

long Network::ParameterCount() const {
  long n = 0;
  for (const auto& layer : layers_) {
    // Params() is non-const by design (optimizer mutates); cast for counting.
    for (Tensor* p : const_cast<Layer&>(*layer).Params()) n += p->numel();
  }
  return n;
}

std::vector<LifLayer*> Network::LifLayers() {
  std::vector<LifLayer*> out;
  for (auto& layer : layers_)
    if (auto* lif = dynamic_cast<LifLayer*>(layer.get())) out.push_back(lif);
  return out;
}

std::vector<const LifLayer*> Network::LifLayers() const {
  std::vector<const LifLayer*> out;
  for (const auto& layer : layers_)
    if (const auto* lif = dynamic_cast<const LifLayer*>(layer.get()))
      out.push_back(lif);
  return out;
}

void Network::SetLifParams(const LifParams& params) {
  for (LifLayer* lif : LifLayers()) lif->set_params(params);
}

Network Network::Clone() const {
  Network copy;
  for (const auto& layer : layers_) copy.Add(layer->Clone());
  copy.event_path_ = event_path_;
  return copy;
}

std::map<std::string, Tensor> Network::StateDict() const {
  std::map<std::string, Tensor> state;
  for (const auto& layer : layers_) {
    auto params = const_cast<Layer&>(*layer).Params();
    for (std::size_t i = 0; i < params.size(); ++i) {
      std::ostringstream key;
      key << layer->Name() << '.' << i;
      AXSNN_CHECK(state.find(key.str()) == state.end(),
                  "duplicate layer name in state dict: " << layer->Name());
      state.emplace(key.str(), *params[i]);
    }
  }
  return state;
}

void Network::LoadStateDict(const std::map<std::string, Tensor>& state) {
  for (auto& layer : layers_) {
    auto params = layer->Params();
    for (std::size_t i = 0; i < params.size(); ++i) {
      std::ostringstream key;
      key << layer->Name() << '.' << i;
      auto it = state.find(key.str());
      AXSNN_CHECK(it != state.end(),
                  "state dict missing key " << key.str());
      AXSNN_CHECK(it->second.shape() == params[i]->shape(),
                  "state dict shape mismatch for " << key.str());
      *params[i] = it->second;
    }
    // Derived parameter state (e.g. an int8 weight snapshot) is stale now.
    layer->OnWeightsChanged();
  }
}

}  // namespace axsnn::snn
