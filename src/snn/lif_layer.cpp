#include "snn/lif_layer.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::snn {

LifLayer::LifLayer(std::string name, LifParams params)
    : name_(std::move(name)), params_(params) {
  params_.Validate();
}

void LifLayer::set_params(LifParams params) {
  params.Validate();
  params_ = params;
  cached_membrane_ = Tensor();
  cached_spikes_ = Tensor();
}

void LifLayer::set_params_raw(LifParams params) {
  params_ = params;  // no Validate(): faulted values pass through verbatim
  cached_membrane_ = Tensor();
  cached_spikes_ = Tensor();
}

Shape LifLayer::OutputShape(const Shape& in) const {
  AXSNN_CHECK(in.size() >= 2, "LifLayer expects [T, B, F...]");
  return in;
}

void LifLayer::ForwardInto(const Tensor& x, Tensor& out, bool /*train*/) {
  SizeOutput(x, out);
  const long t_steps = x.dim(0);
  const long n = x.numel() / t_steps;  // neurons x batch

  cached_membrane_.ResizeTo(x.shape());
  cached_spikes_.ResizeTo(x.shape());

  const float* xd = x.data();
  float* ud = cached_membrane_.data();
  float* sd = cached_spikes_.data();
  float* od = out.data();
  const float beta = params_.beta;
  const float vth = params_.v_threshold;
  const float vreset = params_.v_reset;

  // The time recursion is sequential; parallelism is across neurons. The
  // spike statistics are reduced per fixed chunk and combined in chunk
  // order, so they are bit-identical at any pool size (and match the serial
  // left-to-right accumulation).
  const long grain = runtime::DefaultGrain(n);
  stat_partials_.resize(static_cast<std::size_t>(runtime::NumChunks(n, grain)));
  std::vector<std::array<double, 3>>& partials = stat_partials_;
  runtime::ParallelForChunks(
      0, n,
      [&](long chunk, long lo, long hi) {
        double spikes = 0.0;
        double membrane = 0.0;
        double drive = 0.0;
        for (long i = lo; i < hi; ++i) {
          float u_prev = 0.0f;
          float s_prev = 0.0f;
          for (long t = 0; t < t_steps; ++t) {
            const long off = t * n + i;
            // Hard reset: a spike at t-1 pulls the membrane back to v_reset.
            const float u_carry = s_prev > 0.0f ? vreset : u_prev;
            const float u_t = beta * u_carry + xd[off];
            const float s_t = u_t >= vth ? 1.0f : 0.0f;
            ud[off] = u_t;
            sd[off] = s_t;
            od[off] = s_t;
            spikes += s_t;
            membrane += u_t;
            if (u_t > 0.0f) drive += u_t;
            u_prev = u_t;
            s_prev = s_t;
          }
        }
        partials[static_cast<std::size_t>(chunk)] = {spikes, membrane, drive};
      },
      grain);

  double total_spikes = 0.0;
  double total_membrane = 0.0;
  double total_drive = 0.0;
  for (const auto& p : partials) {
    total_spikes += p[0];
    total_membrane += p[1];
    total_drive += p[2];
  }

  const double count = static_cast<double>(x.numel());
  last_total_spikes_ = total_spikes;
  last_mean_rate_ = static_cast<float>(total_spikes / count);
  last_mean_membrane_ = static_cast<float>(total_membrane / count);
  last_mean_drive_ = static_cast<float>(total_drive / count);
}

void LifLayer::ForwardStep(const Tensor& x, Tensor& out, StepContext& ctx) {
  out.ResizeTo(x.shape());
  const long n = x.numel();
  if (ctx.t == 0) {
    if (stepped_carry_.size() < static_cast<std::size_t>(n))
      stepped_carry_.resize(static_cast<std::size_t>(n));
    std::fill(stepped_carry_.begin(), stepped_carry_.begin() + n, 0.0f);
  }
  // Stepped runs never feed Backward: drop the BPTT caches so a Backward
  // call throws instead of differentiating a stale dense-path forward.
  cached_membrane_ = Tensor();
  cached_spikes_ = Tensor();

  const float* xd = x.data();
  float* od = out.data();
  float* cd = stepped_carry_.data();
  const float beta = params_.beta;
  const float vth = params_.v_threshold;
  const float vreset = params_.v_reset;
  // Same arithmetic op sequence as one t-iteration of the dense recursion:
  // cd[i] enters as (s_prev > 0 ? v_reset : u_prev) and leaves as the next
  // step's carry, so outputs are bit-identical to ForwardInto's slice t.
  runtime::ParallelFor(0, n, [&](long i) {
    const float u_t = beta * cd[i] + xd[i];
    const float s_t = u_t >= vth ? 1.0f : 0.0f;
    od[i] = s_t;
    cd[i] = s_t > 0.0f ? vreset : u_t;
  });

  if (ctx.out != nullptr) {
    if (ctx.out->batch() * ctx.out->plane() == n) {
      ctx.out->PackFrom(od);
    } else {
      ctx.out->Invalidate();
    }
  }
}

Tensor LifLayer::Backward(const Tensor& grad_out) {
  AXSNN_CHECK(!cached_membrane_.empty(),
              "LifLayer::Backward called before Forward");
  const Tensor& u = cached_membrane_;
  const Tensor& s = cached_spikes_;
  AXSNN_CHECK(grad_out.shape() == u.shape(),
              "LifLayer::Backward gradient shape mismatch");

  const long t_steps = u.dim(0);
  const long n = u.numel() / t_steps;
  Tensor grad_in(u.shape());

  const float* ud = u.data();
  const float* sd = s.data();
  const float* gd = grad_out.data();
  float* gi = grad_in.data();
  const float beta = params_.beta;
  const float vth = params_.v_threshold;
  const float alpha = params_.surrogate_alpha;

  // Reverse-time recursion per neuron. With hard reset,
  //   u[t+1] = beta * (1 - s[t]) * u[t] + beta * v_reset * s[t] + x[t+1]
  // so d u[t+1]/d u[t] = beta (1 - s[t]) and
  //    d u[t+1]/d s[t] = beta (v_reset - u[t]).
  runtime::ParallelFor(0, n, [&](long i) {
    float du_next = 0.0f;  // dL/du[t+1] flowing backwards
    for (long t = t_steps - 1; t >= 0; --t) {
      const long off = t * n + i;
      const float u_t = ud[off];
      const float s_t = sd[off];
      // Total gradient reaching the spike s[t]: from the layer output and
      // from the reset path of the next membrane update.
      const float ds = gd[off] + du_next * beta * (params_.v_reset - u_t);
      // Spike -> membrane via surrogate; plus the leak path from u[t+1].
      const float du =
          ds * SurrogateGrad(u_t, vth, alpha) + du_next * beta * (1.0f - s_t);
      gi[off] = du;  // du[t]/dx[t] = 1
      du_next = du;
    }
  });
  return grad_in;
}

std::unique_ptr<Layer> LifLayer::Clone() const {
  return std::make_unique<LifLayer>(name_, params_);
}

}  // namespace axsnn::snn
