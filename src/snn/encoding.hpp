// Input encoders: static images -> time-major spike/current tensors.
//
// The paper's static-dataset pipeline uses rate encoding ("activation
// activity corresponds to the mean firing rates of spikes over certain time
// steps", Section II). For the gradient-based attacks we additionally expose
// direct (constant-current) encoding: the analog image is injected at every
// time step, which makes the network a deterministic, differentiable
// function of the image — the expectation of the rate-encoded network — so
// PGD/BIM gradients are well defined. Evaluation can use either mode.
#pragma once

#include <vector>

#include "kernels/spike_stream.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::snn {

/// How static images become time-major network inputs.
enum class Encoding {
  kRate,    ///< Bernoulli spikes, P(spike at t) = pixel intensity.
  kDirect,  ///< The analog image injected identically at every time step.
  kTtfs,    ///< Time-to-first-spike: one spike per pixel, earlier = brighter.
};

/// Rate-encodes images [B, C, H, W] with values in [0, 1] into spikes
/// [T, B, C, H, W]. Each (t, pixel) draw is an independent Bernoulli with
/// the pixel intensity as probability; `rng` determines the draw.
Tensor EncodeRate(const Tensor& images, long time_steps, Rng& rng);

/// Replicates images [B, C, H, W] across time -> [T, B, C, H, W].
Tensor EncodeDirect(const Tensor& images, long time_steps);

/// Time-to-first-spike (latency) encoding: each pixel emits exactly one
/// spike at t = round((1 - intensity) * (T - 1)); black pixels (0) emit
/// nothing. This is the encoding studied by the paper's related work [5]
/// (Nomura et al., TCAS-II 2022) and is provided as an extension for
/// robustness studies across encodings.
Tensor EncodeTtfs(const Tensor& images, long time_steps);

/// Dispatches on `mode`.
Tensor Encode(const Tensor& images, long time_steps, Encoding mode, Rng& rng);

/// Allocation-free variant of Encode: writes the time-major encoding into
/// `out` (resized in place, reusing its storage across calls). `out` must
/// not alias `images`.
void EncodeInto(const Tensor& images, long time_steps, Encoding mode, Rng& rng,
                Tensor& out);

/// Reduces an input-space gradient [T, B, ...] (as returned by
/// Network::Backward) to an image-space gradient [B, ...] by summing over
/// time — the adjoint of EncodeDirect.
Tensor CollapseTimeGradient(const Tensor& grad_tbx);

/// Transposes per-sample frame stacks [B, T, C, H, W] (how event datasets
/// store them) into the time-major layout [T, B, C, H, W] the network wants.
Tensor TimeMajor(const Tensor& frames_btx);

/// Allocation-free variant of TimeMajor. `out` must not alias `frames_btx`
/// (checked — aliasing storage throws, as do degenerate [B, T] dims).
void TimeMajorInto(const Tensor& frames_btx, Tensor& out);

/// Packs per-sample frame stacks [B, T, <sample...>] straight into a
/// time-major compressed spike stream — the event-path twin of
/// TimeMajorInto, transposing and bit-packing in one pass without ever
/// materializing the [T, B, ...] dense tensor. Returns false (stream left
/// configured but contents unspecified) when any element is neither 0.0f
/// nor 1.0f; callers fall back to the dense path then.
bool TimeMajorPackInto(const Tensor& frames_btx, kernels::SpikeStream& stream);

}  // namespace axsnn::snn
