#include "snn/event_path.hpp"

#include <cstdlib>

namespace axsnn::snn {
namespace {

EventPathMode InitialGlobalMode() {
  const char* env = std::getenv("AXSNN_EVENT_PATH");
  if (env == nullptr) return EventPathMode::kAuto;
  return ParseEventPathMode(env).value_or(EventPathMode::kAuto);
}

EventPathMode& GlobalModeRef() {
  static EventPathMode mode = InitialGlobalMode();
  return mode;
}

}  // namespace

const char* EventPathName(EventPathMode mode) {
  switch (mode) {
    case EventPathMode::kAuto:
      return "auto";
    case EventPathMode::kDense:
      return "dense";
    case EventPathMode::kEvent:
      return "event";
  }
  return "auto";
}

std::optional<EventPathMode> ParseEventPathMode(std::string_view name) {
  if (name == "auto") return EventPathMode::kAuto;
  if (name == "dense" || name == "off") return EventPathMode::kDense;
  if (name == "event" || name == "on") return EventPathMode::kEvent;
  return std::nullopt;
}

EventPathMode GlobalEventPathMode() { return GlobalModeRef(); }

void SetGlobalEventPathMode(EventPathMode mode) { GlobalModeRef() = mode; }

EventPathMode ResolveEventPathMode(EventPathMode requested) {
  const EventPathMode global = GlobalEventPathMode();
  if (global != EventPathMode::kAuto) return global;
  if (requested != EventPathMode::kAuto) return requested;
  return EventPathMode::kDense;
}

}  // namespace axsnn::snn
