// 2-D convolution layer (stride 1, symmetric zero padding).
//
// Spiking networks apply the same synaptic weights at every time step, so the
// convolution treats the leading [T, B] axes of a time-major activation as
// one large batch. Backward accumulates weight/bias gradients summed over
// time and returns the input gradient, enabling both training (BPTT) and
// input-space adversarial attacks.
#pragma once

#include <memory>
#include <string>

#include "snn/layer.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::snn {

/// Convolution over [*, C_in, H, W] -> [*, C_out, H_out, W_out] where * is
/// the flattened [T, B] prefix. Weights are [C_out, C_in, K, K].
class Conv2d final : public Layer {
 public:
  /// Creates a convolution with Kaiming-uniform initialized weights.
  /// `pad` is symmetric zero padding (K=3, pad=1 keeps H, W unchanged).
  Conv2d(std::string name, long in_channels, long out_channels, long kernel,
         long pad, Rng& rng);

  Shape OutputShape(const Shape& in) const override;
  void ForwardInto(const Tensor& x, Tensor& out, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Tensor*> Params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> Grads() override { return {&dweight_, &dbias_}; }
  std::string Name() const override { return name_; }
  std::unique_ptr<Layer> Clone() const override;

  long in_channels() const { return in_channels_; }
  long out_channels() const { return out_channels_; }
  long kernel() const { return kernel_; }

  /// Direct weight access for quantization / approximation passes.
  Tensor& weight() { return weight_; }
  const Tensor& weight() const { return weight_; }
  Tensor& bias() { return bias_; }
  const Tensor& bias() const { return bias_; }

 private:
  std::string name_;
  long in_channels_ = 0;
  long out_channels_ = 0;
  long kernel_ = 0;
  long pad_ = 0;
  Tensor weight_;   // [C_out, C_in, K, K]
  Tensor bias_;     // [C_out]
  Tensor dweight_;
  Tensor dbias_;
  Tensor cached_input_;  // saved activation for Backward
};

}  // namespace axsnn::snn
