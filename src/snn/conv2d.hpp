// 2-D convolution layer (stride 1, symmetric zero padding).
//
// Spiking networks apply the same synaptic weights at every time step, so the
// convolution treats the leading [T, B] axes of a time-major activation as
// one large batch. Backward accumulates weight/bias gradients summed over
// time and returns the input gradient, enabling both training (BPTT) and
// input-space adversarial attacks.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "kernels/dispatch.hpp"
#include "runtime/workspace.hpp"
#include "snn/layer.hpp"
#include "tensor/quantized.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::snn {

/// Convolution over [*, C_in, H, W] -> [*, C_out, H_out, W_out] where * is
/// the flattened [T, B] prefix. Weights are [C_out, C_in, K, K].
class Conv2d final : public Layer {
 public:
  /// Creates a convolution with Kaiming-uniform initialized weights.
  /// `pad` is symmetric zero padding (K=3, pad=1 keeps H, W unchanged).
  Conv2d(std::string name, long in_channels, long out_channels, long kernel,
         long pad, Rng& rng);

  Shape OutputShape(const Shape& in) const override;
  void ForwardInto(const Tensor& x, Tensor& out, bool train) override;
  /// Event-path step: skip-on-silent (pure bias planes, cached across
  /// consecutive silent steps into the same buffer) and packed-word
  /// pass-through to the kernel dispatcher (kernels::PackedWords).
  void ForwardStep(const Tensor& x, Tensor& out, StepContext& ctx) override;
  void BeginStepped(long time_steps, long batch) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Tensor*> Params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> Grads() override { return {&dweight_, &dbias_}; }
  std::string Name() const override { return name_; }
  std::unique_ptr<Layer> Clone() const override;

  long in_channels() const { return in_channels_; }
  long out_channels() const { return out_channels_; }
  long kernel() const { return kernel_; }

  /// Direct weight access for quantization / approximation passes.
  Tensor& weight() { return weight_; }
  const Tensor& weight() const { return weight_; }
  Tensor& bias() { return bias_; }
  const Tensor& bias() const { return bias_; }

  /// Switches ForwardInto to the integer backend (approx/int8_backend.*):
  /// snapshots the *current* weights as int8 with per-output-channel scales
  /// (`row_scales`; empty derives them rowwise as max|row| / 127) and runs
  /// int32-accumulating kernels from then on. Call after the last weight
  /// edit — later mutations of weight() are not re-quantized. Backward still
  /// differentiates the float weights (attacks are crafted on the accurate
  /// model, so the int8 path only ever runs forward).
  void EnableInt8Kernel(std::span<const float> row_scales = {});
  /// Returns to the float forward path.
  void DisableInt8Kernel() { qweight_ = QuantizedTensor(); }
  bool int8_kernel() const { return !qweight_.empty(); }
  const QuantizedTensor& quantized_weight() const { return qweight_; }
  /// Mutable snapshot access for the fault injector (src/faults/), which
  /// flips bits of the stored int8 codes / scale words in place. The next
  /// forward reads the corrupted snapshot directly.
  QuantizedTensor& quantized_weight() { return qweight_; }

  /// Bulk weight reload: the int8 snapshot no longer matches — drop it
  /// (callers re-enable if they still want integer execution).
  void OnWeightsChanged() override { DisableInt8Kernel(); }

  /// Kernel-implementation knob (src/kernels/): kAuto probes activation
  /// density per call, the other values pin one path. A non-auto global
  /// mode (AXSNN_KERNEL_MODE) overrides this — see kernels/dispatch.hpp.
  void set_kernel_mode(kernels::KernelMode mode) { kernel_mode_ = mode; }
  kernels::KernelMode kernel_mode() const { return kernel_mode_; }

 private:
  std::string name_;
  long in_channels_ = 0;
  long out_channels_ = 0;
  long kernel_ = 0;
  long pad_ = 0;
  Tensor weight_;   // [C_out, C_in, K, K]
  Tensor bias_;     // [C_out]
  Tensor dweight_;
  Tensor dbias_;
  Tensor cached_input_;  // saved activation for Backward
  QuantizedTensor qweight_;  // int8 backend weights (empty = off)
  kernels::KernelMode kernel_mode_ = kernels::KernelMode::kAuto;
  runtime::LocalScratch scratch_;  // kernel packing/code buffers (not copied)
  // Silent-fill cache for the stepped path: consecutive silent steps write
  // the same bias planes into the same buffer, so only the first pays the
  // fill. Reset by BeginStepped and any non-silent step.
  bool silent_filled_ = false;
  const float* silent_fill_data_ = nullptr;
  long silent_fill_numel_ = 0;
};

}  // namespace axsnn::snn
