#include "snn/dropout.hpp"

#include <algorithm>

#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::snn {

Dropout::Dropout(std::string name, float rate, std::uint64_t seed)
    : name_(std::move(name)), rate_(rate), rng_(seed) {
  AXSNN_CHECK(rate >= 0.0f && rate < 1.0f, "dropout rate must be in [0, 1)");
}

Shape Dropout::OutputShape(const Shape& in) const {
  AXSNN_CHECK(in.size() >= 2, "Dropout expects [T, B, F...]");
  return in;
}

void Dropout::ForwardInto(const Tensor& x, Tensor& out, bool train) {
  SizeOutput(x, out);
  last_was_train_ = train;
  if (!train || rate_ == 0.0f) {
    std::copy(x.data(), x.data() + x.numel(), out.data());
    return;
  }

  const long t_steps = x.dim(0);
  const long slice = x.numel() / t_steps;  // one [B, F...] slice
  const float keep = 1.0f - rate_;
  const float scale = 1.0f / keep;

  // The mask draw is a sequential RNG walk; only its application fans out.
  mask_.ResizeTo({slice});
  for (long i = 0; i < slice; ++i)
    mask_[i] = rng_.Bernoulli(keep) ? scale : 0.0f;

  const float* xd = x.data();
  float* od = out.data();
  const float* md = mask_.data();
  runtime::ParallelFor(0, t_steps, [&](long t) {
    const float* xs = xd + t * slice;
    float* os = od + t * slice;
    for (long i = 0; i < slice; ++i) os[i] = xs[i] * md[i];
  });
}

void Dropout::BeginStepped(long time_steps, long batch) {
  (void)time_steps;
  (void)batch;
  silent_filled_ = false;
}

void Dropout::ForwardStep(const Tensor& x, Tensor& out, StepContext& ctx) {
  SizeOutput(x, out);
  last_was_train_ = false;
  const bool mask_covers =
      ctx.in.valid() && ctx.in.batch * ctx.in.plane == x.numel();
  const bool lane_fits =
      ctx.out != nullptr &&
      ctx.out->batch() * ctx.out->plane() == out.numel();
  if (mask_covers && ctx.in.total == 0) {
    // Inference dropout is the identity; a silent input copies to zeros.
    if (lane_fits) ctx.out->ZeroFill();
    else if (ctx.out != nullptr) ctx.out->Invalidate();
    if (silent_filled_ && silent_fill_data_ == out.data() &&
        silent_fill_numel_ == out.numel()) {
      return;
    }
    std::fill(out.data(), out.data() + out.numel(), 0.0f);
    silent_filled_ = true;
    silent_fill_data_ = out.data();
    silent_fill_numel_ = out.numel();
    return;
  }
  silent_filled_ = false;
  std::copy(x.data(), x.data() + x.numel(), out.data());
  if (ctx.out == nullptr) return;
  if (lane_fits && mask_covers && ctx.out->batch() == ctx.in.batch &&
      ctx.out->plane() == ctx.in.plane) {
    ctx.out->CopyFrom(ctx.in);
  } else if (lane_fits) {
    ctx.out->PackFrom(out.data());
  } else {
    ctx.out->Invalidate();
  }
}

Tensor Dropout::Backward(const Tensor& grad_out) {
  if (!last_was_train_ || rate_ == 0.0f) return grad_out;
  AXSNN_CHECK(!mask_.empty(), "Dropout::Backward called before Forward");
  const long t_steps = grad_out.dim(0);
  const long slice = grad_out.numel() / t_steps;
  AXSNN_CHECK(slice == mask_.numel(), "Dropout::Backward shape mismatch");
  Tensor grad_in = grad_out;
  float* gd = grad_in.data();
  const float* md = mask_.data();
  runtime::ParallelFor(0, t_steps, [&](long t) {
    float* slice_ptr = gd + t * slice;
    for (long i = 0; i < slice; ++i) slice_ptr[i] *= md[i];
  });
  return grad_in;
}

std::unique_ptr<Layer> Dropout::Clone() const {
  auto copy = std::make_unique<Dropout>(*this);
  copy->mask_ = Tensor();
  return copy;
}

}  // namespace axsnn::snn
