// The two classifier architectures evaluated in the paper, scaled to
// CPU-trainable sizes (channel counts reduced; depth and layer mix kept).
#pragma once

#include <cstdint>

#include "snn/lif.hpp"
#include "snn/network.hpp"

namespace axsnn::snn {

/// Options for the static-image (MNIST-class) network: a 7-layer SNN with
/// 3 convolutional, 2 pooling and 2 fully-connected layers (paper §V-A).
struct StaticNetOptions {
  long height = 16;
  long width = 16;
  long channels = 1;
  long classes = 10;
  long conv1_channels = 8;
  long conv2_channels = 16;
  long conv3_channels = 16;
  long hidden = 64;
  LifParams lif;
  std::uint64_t seed = 7;
};

/// Builds the static-image classifier:
/// Conv3x3 -> LIF -> AvgPool2 -> Conv3x3 -> LIF -> AvgPool2 -> Conv3x3 ->
/// LIF -> Dense -> LIF -> Dense (readout).
Network BuildStaticNet(const StaticNetOptions& opts);

/// Options for the DVS-Gesture-class network: an 8-layer SNN with 2
/// convolutional, 3 pooling, 1 dropout and 2 fully-connected layers
/// (paper §V-A).
struct DvsNetOptions {
  long height = 32;
  long width = 32;
  long channels = 2;  // event polarities
  long classes = 11;
  long conv1_channels = 12;
  long conv2_channels = 24;
  long hidden = 96;
  float dropout_rate = 0.25f;
  LifParams lif;
  std::uint64_t seed = 11;
};

/// Builds the DVS classifier:
/// Conv3x3 -> LIF -> AvgPool2 -> Conv3x3 -> LIF -> AvgPool2 -> AvgPool2 ->
/// Dropout -> Dense -> LIF -> Dense (readout).
Network BuildDvsNet(const DvsNetOptions& opts);

}  // namespace axsnn::snn
