#include "snn/dense.hpp"

#include <cmath>

#include "approx/int8_backend.hpp"
#include "kernels/dense_kernels.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::snn {

Dense::Dense(std::string name, long in_features, long out_features, Rng& rng)
    : name_(std::move(name)),
      in_features_(in_features),
      out_features_(out_features) {
  AXSNN_CHECK(in_features > 0 && out_features > 0,
              "Dense dimensions must be positive");
  const float bound = std::sqrt(6.0f / static_cast<float>(in_features));
  weight_ = Tensor::Uniform({out_features, in_features}, -bound, bound, rng);
  bias_ = Tensor::Zeros({out_features});
  dweight_ = Tensor::Zeros(weight_.shape());
  dbias_ = Tensor::Zeros(bias_.shape());
}

Shape Dense::OutputShape(const Shape& in) const {
  AXSNN_CHECK(!in.empty(), "Dense expects at least rank 1");
  const long numel = NumElements(in);
  // Accept [*, C, H, W] inputs too: anything after the [T, B] prefix is
  // flattened into features. We infer the prefix length from divisibility.
  AXSNN_CHECK(numel % in_features_ == 0,
              "Dense " << name_ << ": input numel " << numel
                       << " not divisible by in_features " << in_features_);
  const long n = numel / in_features_;
  // Output keeps the [T, B] prefix when present, else collapses to [n, F].
  if (in.size() >= 3) {
    AXSNN_CHECK(in[0] * in[1] == n,
                "Dense: [T, B] prefix does not match feature count");
    return {in[0], in[1], out_features_};
  }
  return {n, out_features_};
}

void Dense::EnableInt8Kernel(std::span<const float> row_scales) {
  qweight_ = QuantizedTensor::FromWeights(weight_, row_scales);
}

void Dense::ForwardInto(const Tensor& x, Tensor& out, bool train) {
  SizeOutput(x, out);
  if (train || grad_cache()) {
    cached_input_ = x;
  } else {
    cached_input_ = Tensor();  // invalidate: Backward must throw, not
  }                            // reuse a stale training-pass input
  if (!qweight_.empty()) {
    approx::Int8DenseForward(qweight_, bias_, x, out, kernel_mode_,
                             *scratch_);
    return;
  }
  kernels::DenseForward(weight_, bias_, x, out, kernel_mode_, *scratch_);
}

void Dense::BeginStepped(long time_steps, long batch) {
  (void)time_steps;
  (void)batch;
  silent_filled_ = false;
}

void Dense::ForwardStep(const Tensor& x, Tensor& out, StepContext& ctx) {
  AXSNN_CHECK(x.numel() % in_features_ == 0,
              "Dense " << name_ << ": step input numel " << x.numel()
                       << " not divisible by in_features " << in_features_);
  const long n = x.numel() / in_features_;
  out.ResizeTo({n, out_features_});
  cached_input_ = Tensor();  // stepped runs never feed Backward
  if (ctx.out != nullptr) ctx.out->Invalidate();  // dense output is dense

  // The packed rows are usable by the kernels only when the lane's plane
  // length equals the kernel's per-sample feature count (word-row padding
  // must line up); the silent check only needs the element counts to match.
  const bool mask_covers =
      ctx.in.valid() && ctx.in.batch * ctx.in.plane == x.numel();
  const bool mask_usable = mask_covers && ctx.in.plane == in_features_;
  if (mask_covers && ctx.in.total == 0) {
    // Skip-on-silent: pure bias rows (the sparse path's zero-gather result).
    if (ctx.kernel_calls_skipped != nullptr) ++*ctx.kernel_calls_skipped;
    if (silent_filled_ && silent_fill_data_ == out.data() &&
        silent_fill_numel_ == out.numel()) {
      return;
    }
    const float* bd = bias_.data();
    float* od = out.data();
    for (long s = 0; s < n; ++s) {
      float* os = od + s * out_features_;
      for (long o = 0; o < out_features_; ++o) os[o] = bd[o];
    }
    silent_filled_ = true;
    silent_fill_data_ = out.data();
    silent_fill_numel_ = out.numel();
    return;
  }
  silent_filled_ = false;
  if (ctx.kernel_calls != nullptr) ++*ctx.kernel_calls;

  kernels::PackedWords packed;
  const kernels::PackedWords* packed_p = nullptr;
  if (mask_usable) {
    packed.words = ctx.in.words;
    packed.nonzero = ctx.in.total;
    packed_p = &packed;
  }
  if (!qweight_.empty()) {
    approx::Int8DenseForward(qweight_, bias_, x, out, kernel_mode_, *scratch_,
                             packed_p);
    return;
  }
  kernels::DenseForward(weight_, bias_, x, out, kernel_mode_, *scratch_,
                        packed_p);
}

Tensor Dense::Backward(const Tensor& grad_out) {
  AXSNN_CHECK(!cached_input_.empty(), "Dense::Backward called before Forward");
  const Tensor& x = cached_input_;
  const long n = x.numel() / in_features_;
  AXSNN_CHECK(grad_out.numel() == n * out_features_,
              "Dense::Backward gradient shape mismatch");

  Tensor grad_in(x.shape());
  const float* xd = x.data();
  const float* wd = weight_.data();
  const float* gd = grad_out.data();
  float* gid = grad_in.data();
  float* gwd = dweight_.data();
  float* gbd = dbias_.data();

  // dW/db: each iteration owns one output row of dweight_.
  runtime::ParallelFor(0, out_features_, [&](long o) {
    float* gw = gwd + o * in_features_;
    double gb = 0.0;
    for (long s = 0; s < n; ++s) {
      const float g = gd[s * out_features_ + o];
      if (g == 0.0f) continue;
      gb += g;
      const float* xs = xd + s * in_features_;
      for (long i = 0; i < in_features_; ++i) gw[i] += g * xs[i];
    }
    gbd[o] += static_cast<float>(gb);
  });

  // dX: each iteration owns one sample row of grad_in.
  runtime::ParallelFor(0, n, [&](long s) {
    const float* gs = gd + s * out_features_;
    float* gi = gid + s * in_features_;
    for (long o = 0; o < out_features_; ++o) {
      const float g = gs[o];
      if (g == 0.0f) continue;
      const float* wr = wd + o * in_features_;
      for (long i = 0; i < in_features_; ++i) gi[i] += g * wr[i];
    }
  });
  return grad_in;
}

std::unique_ptr<Layer> Dense::Clone() const {
  auto copy = std::make_unique<Dense>(*this);
  copy->cached_input_ = Tensor();  // kernel scratch starts fresh by
  return copy;                     // LocalScratch copy; qweight_ is kept
}

}  // namespace axsnn::snn
