#include "snn/event_runner.hpp"

#include <algorithm>
#include <cstddef>

#include "tensor/check.hpp"

namespace axsnn::snn {

const Tensor& EventRunner::Run(const kernels::SpikeStream& stream) {
  AXSNN_CHECK(!stream.empty(), "EventRunner::Run on an empty stream");
  AXSNN_CHECK(net_.size() > 0, "EventRunner::Run on an empty network");
  const long t_steps = stream.time_steps();
  const long batch = stream.batch();
  const long n_layers = static_cast<long>(net_.size());

  stats_ = EventRunStats{};
  stats_.time_steps = t_steps;
  stats_.batch = batch;

  Shape in_shape;
  in_shape.reserve(1 + stream.sample_shape().size());
  in_shape.push_back(batch);
  for (long d : stream.sample_shape()) in_shape.push_back(d);
  Tensor& x0 = ws_.Acquire(0, in_shape);
  x0_zeroed_ = false;  // Acquire leaves contents unspecified

  if (planes_.size() != static_cast<std::size_t>(n_layers)) {
    planes_.assign(static_cast<std::size_t>(n_layers), 0);
    planes_known_ = false;
  }

  for (long i = 0; i < n_layers; ++i)
    net_.layer(static_cast<std::size_t>(i)).BeginStepped(t_steps, batch);

  Tensor* out = nullptr;
  for (long t = 0; t < t_steps; ++t) {
    const long total = stream.StepTotal(t);
    if (total == 0) {
      ++stats_.silent_steps;
      // A silent step's dense frame is all zeros; keep the buffer zeroed
      // across consecutive silent steps instead of refilling it. Layers
      // honoring the silent contract never read it anyway — this covers
      // layers that fall back to the default dense ForwardStep.
      if (!x0_zeroed_) {
        std::fill(x0.data(), x0.data() + x0.numel(), 0.0f);
        x0_zeroed_ = true;
      }
    } else {
      stream.DensifyStepInto(t, x0.data());
      x0_zeroed_ = false;
    }

    SpikeView in_view;
    in_view.words = stream.StepWords(t);
    in_view.counts = stream.StepCounts(t);
    in_view.batch = batch;
    in_view.plane = stream.plane();
    in_view.words_per_plane = stream.words_per_plane();
    in_view.total = total;

    const Tensor* in = &x0;
    for (long i = 0; i < n_layers; ++i) {
      // Dedicated output slot per layer: the buffer is stable across
      // timesteps, which is what makes the layers' silent-fill caches
      // ("this buffer already holds my bias fill") sound.
      Tensor& buf = ws_.Slot(static_cast<std::size_t>(i) + 1);
      SpikePlanes* out_lane = nullptr;
      if (planes_known_) {
        out_lane = &lanes_[i % 2];
        out_lane->Configure(batch, planes_[static_cast<std::size_t>(i)]);
      }
      StepContext ctx;
      ctx.t = t;
      ctx.time_steps = t_steps;
      ctx.in = in_view;
      ctx.out = out_lane;
      ctx.kernel_calls = &stats_.kernel_calls;
      ctx.kernel_calls_skipped = &stats_.kernel_calls_skipped;
      net_.layer(static_cast<std::size_t>(i)).ForwardStep(*in, buf, ctx);
      if (!planes_known_) {
        AXSNN_CHECK(buf.numel() % batch == 0,
                    "EventRunner: layer output not divisible by batch");
        planes_[static_cast<std::size_t>(i)] = buf.numel() / batch;
      }
      in_view = out_lane != nullptr ? out_lane->View() : SpikeView{};
      out = &buf;
      in = out;
    }
    // Lane geometry is known after the first timestep; from the next step
    // on every layer gets a configured output lane (skip + packed gather).
    planes_known_ = true;

    // Accumulate the readout exactly as loss.cpp's ReadoutMean does over
    // the dense output sequence: zero-init, += per ascending t, *= 1/T.
    if (t == 0) {
      logits_.ResizeTo(out->shape());
      std::fill(logits_.data(), logits_.data() + logits_.numel(), 0.0f);
    }
    AXSNN_CHECK(out->numel() == logits_.numel(),
                "EventRunner: readout shape changed across timesteps");
    const float* od = out->data();
    float* ld = logits_.data();
    const long k = logits_.numel();
    for (long j = 0; j < k; ++j) ld[j] += od[j];
  }

  const float inv = 1.0f / static_cast<float>(t_steps);
  float* ld = logits_.data();
  const long k = logits_.numel();
  for (long j = 0; j < k; ++j) ld[j] *= inv;

  for (long i = 0; i < n_layers; ++i)
    net_.layer(static_cast<std::size_t>(i)).EndStepped();
  return logits_;
}

}  // namespace axsnn::snn
