// Surrogate-gradient training loop (Adam + BPTT) for spiking networks.
//
// Implements the `trainAccurateSNN(v, ts, Dtr)` step of the paper's
// Algorithm 1: given structural parameters already baked into the network
// (Vth via LifParams, T via the config), it minimizes softmax cross-entropy
// on the spike-count readout with backpropagation-through-time.
//
// Two entry points cover the paper's two data modalities:
//  * FitStatic    — static images, (re-)encoded into spikes each batch;
//  * FitTemporal  — pre-binned event frames [N, T, C, H, W] (DVS data).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "snn/encoding.hpp"
#include "snn/network.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::snn {

/// Hyperparameters for one training run.
struct TrainConfig {
  long epochs = 6;
  long batch_size = 32;
  float learning_rate = 2e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float adam_eps = 1e-8f;
  float weight_decay = 0.0f;
  /// Time steps used while training (the paper's T; evaluation may use a
  /// larger T — rate statistics are stationary, see DESIGN.md scale note).
  long time_steps = 12;
  /// How static images are encoded each batch (ignored by FitTemporal).
  Encoding encoding = Encoding::kRate;
  std::uint64_t seed = 1;
  bool shuffle = true;
  /// When true, prints one line per epoch to stderr.
  bool verbose = false;
};

/// Loss/accuracy after each epoch.
struct EpochStats {
  float mean_loss = 0.0f;
  float accuracy = 0.0f;  // in [0, 1]
};

/// Outcome of a training run.
struct TrainResult {
  std::vector<EpochStats> epochs;
  /// Training accuracy of the final epoch, in [0, 1].
  float final_accuracy = 0.0f;
};

/// Adam optimizer over an externally owned parameter list.
class AdamOptimizer {
 public:
  AdamOptimizer(std::vector<Tensor*> params, const TrainConfig& cfg);

  /// Applies one update from gradients aligned with the parameter list.
  void Step(const std::vector<Tensor*>& grads);

 private:
  std::vector<Tensor*> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  long step_count_ = 0;
};

/// Trains on static images [N, C, H, W] with labels in [0, K).
TrainResult FitStatic(Network& net, const Tensor& images,
                      std::span<const int> labels, const TrainConfig& cfg);

/// Trains on pre-binned temporal frames [N, T, C, H, W]. cfg.time_steps must
/// equal the frame count T of the dataset.
TrainResult FitTemporal(Network& net, const Tensor& frames,
                        std::span<const int> labels, const TrainConfig& cfg);

}  // namespace axsnn::snn
