#include "snn/conv2d.hpp"

#include <algorithm>
#include <cmath>

#include "approx/int8_backend.hpp"
#include "kernels/conv2d_kernels.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::snn {

Conv2d::Conv2d(std::string name, long in_channels, long out_channels,
               long kernel, long pad, Rng& rng)
    : name_(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      pad_(pad) {
  AXSNN_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0,
              "Conv2d dimensions must be positive");
  AXSNN_CHECK(pad >= 0 && pad < kernel, "Conv2d pad must be in [0, kernel)");
  const float fan_in =
      static_cast<float>(in_channels * kernel * kernel);
  const float bound = std::sqrt(6.0f / fan_in);  // Kaiming-uniform
  weight_ = Tensor::Uniform({out_channels, in_channels, kernel, kernel},
                            -bound, bound, rng);
  bias_ = Tensor::Zeros({out_channels});
  dweight_ = Tensor::Zeros(weight_.shape());
  dbias_ = Tensor::Zeros(bias_.shape());
}

Shape Conv2d::OutputShape(const Shape& in) const {
  AXSNN_CHECK(in.size() >= 3, "Conv2d expects [*, C, H, W]");
  const std::size_t r = in.size();
  const long c_in = in[r - 3];
  const long h = in[r - 2];
  const long w = in[r - 1];
  AXSNN_CHECK(c_in == in_channels_,
              "Conv2d " << name_ << ": got " << c_in << " input channels, want "
                        << in_channels_);
  const long h_out = h + 2 * pad_ - kernel_ + 1;
  const long w_out = w + 2 * pad_ - kernel_ + 1;
  AXSNN_CHECK(h_out > 0 && w_out > 0, "Conv2d output would be empty");
  Shape out_shape(in.begin(), in.end() - 3);
  out_shape.push_back(out_channels_);
  out_shape.push_back(h_out);
  out_shape.push_back(w_out);
  return out_shape;
}

void Conv2d::EnableInt8Kernel(std::span<const float> row_scales) {
  qweight_ = QuantizedTensor::FromWeights(weight_, row_scales);
}

void Conv2d::ForwardInto(const Tensor& x, Tensor& out, bool train) {
  SizeOutput(x, out);
  if (train || grad_cache()) {
    cached_input_ = x;  // vector copy-assign: reuses capacity in steady state
  } else {
    // Invalidate, don't just skip: a stale cache from an earlier training
    // pass would let Backward silently differentiate the wrong activations
    // instead of throwing.
    cached_input_ = Tensor();
  }
  const kernels::Conv2dGeom geom{in_channels_, out_channels_, kernel_, pad_};
  if (!qweight_.empty()) {
    approx::Int8Conv2dForward(qweight_, bias_, x, out, geom, kernel_mode_,
                              *scratch_);
    return;
  }
  kernels::Conv2dForward(weight_, bias_, x, out, geom, kernel_mode_,
                         *scratch_);
}

void Conv2d::BeginStepped(long time_steps, long batch) {
  (void)time_steps;
  (void)batch;
  silent_filled_ = false;
}

void Conv2d::ForwardStep(const Tensor& x, Tensor& out, StepContext& ctx) {
  SizeOutput(x, out);
  cached_input_ = Tensor();  // stepped runs never feed Backward
  if (ctx.out != nullptr) ctx.out->Invalidate();  // conv output is dense

  const std::size_t xr = x.rank();
  const long x_sample = x.dim(xr - 3) * x.dim(xr - 2) * x.dim(xr - 1);
  // The packed rows are usable by the kernels only when the lane's plane
  // length equals the per-sample element count (word-row padding must line
  // up); the silent check only needs the element counts to match.
  const bool mask_covers =
      ctx.in.valid() && ctx.in.batch * ctx.in.plane == x.numel();
  const bool mask_usable = mask_covers && ctx.in.plane == x_sample;
  if (mask_covers && ctx.in.total == 0) {
    // Skip-on-silent: on an all-zero input every kernel mode produces the
    // pure bias planes (the sparse path's zero-gather result, inside the
    // pinned equivalence contract), so write them directly — and if the
    // previous step already left them in this buffer, skip even the fill.
    if (ctx.kernel_calls_skipped != nullptr) ++*ctx.kernel_calls_skipped;
    if (silent_filled_ && silent_fill_data_ == out.data() &&
        silent_fill_numel_ == out.numel()) {
      return;
    }
    const std::size_t r = out.rank();
    const long o_plane = out.dim(r - 2) * out.dim(r - 1);
    const long n = out.numel() / (out_channels_ * o_plane);
    const float* bd = bias_.data();
    float* od = out.data();
    for (long s = 0; s < n; ++s) {
      for (long co = 0; co < out_channels_; ++co) {
        float* op = od + (s * out_channels_ + co) * o_plane;
        std::fill(op, op + o_plane, bd[co]);
      }
    }
    silent_filled_ = true;
    silent_fill_data_ = out.data();
    silent_fill_numel_ = out.numel();
    return;
  }
  silent_filled_ = false;
  if (ctx.kernel_calls != nullptr) ++*ctx.kernel_calls;

  kernels::PackedWords packed;
  const kernels::PackedWords* packed_p = nullptr;
  if (mask_usable) {
    packed.words = ctx.in.words;
    packed.nonzero = ctx.in.total;
    packed_p = &packed;
  }
  const kernels::Conv2dGeom geom{in_channels_, out_channels_, kernel_, pad_};
  if (!qweight_.empty()) {
    approx::Int8Conv2dForward(qweight_, bias_, x, out, geom, kernel_mode_,
                              *scratch_, packed_p);
    return;
  }
  kernels::Conv2dForward(weight_, bias_, x, out, geom, kernel_mode_,
                         *scratch_, packed_p);
}

Tensor Conv2d::Backward(const Tensor& grad_out) {
  AXSNN_CHECK(!cached_input_.empty(),
              "Conv2d::Backward called before Forward");
  const Tensor& x = cached_input_;
  const std::size_t r = x.rank();
  const long c_in = x.dim(r - 3);
  const long h = x.dim(r - 2);
  const long w = x.dim(r - 1);
  const long n = x.numel() / (c_in * h * w);
  const long h_out = h + 2 * pad_ - kernel_ + 1;
  const long w_out = w + 2 * pad_ - kernel_ + 1;
  AXSNN_CHECK(grad_out.numel() == n * out_channels_ * h_out * w_out,
              "Conv2d::Backward gradient shape mismatch");

  Tensor grad_in(x.shape());

  const float* xd = x.data();
  const float* wd = weight_.data();
  const float* gd = grad_out.data();
  float* gid = grad_in.data();
  float* gwd = dweight_.data();
  float* gbd = dbias_.data();

  const long x_plane = h * w;
  const long x_sample = c_in * x_plane;
  const long o_plane = h_out * w_out;
  const long o_sample = out_channels_ * o_plane;
  const long w_per_out = in_channels_ * kernel_ * kernel_;

  // Weight/bias gradients: parallelize over output channels so each
  // iteration owns a disjoint slice of dweight_/dbias_ (no atomics needed).
  // The inner loop over ox is a contiguous dot product between a gradient
  // row and a shifted input row.
  runtime::ParallelFor(0, out_channels_, [&](long co) {
    float* gw = gwd + co * w_per_out;
    double gb = 0.0;
    for (long s = 0; s < n; ++s) {
      const float* xs = xd + s * x_sample;
      const float* gp = gd + s * o_sample + co * o_plane;
      for (long i = 0; i < o_plane; ++i) gb += gp[i];
      for (long ci = 0; ci < c_in; ++ci) {
        const float* xp = xs + ci * x_plane;
        float* gwp = gw + ci * kernel_ * kernel_;
        for (long ky = 0; ky < kernel_; ++ky) {
          for (long kx = 0; kx < kernel_; ++kx) {
            const long ox_lo = std::max(0L, pad_ - kx);
            const long ox_hi = std::min(w_out, w + pad_ - kx);
            float acc = 0.0f;
            for (long oy = 0; oy < h_out; ++oy) {
              const long iy = oy + ky - pad_;
              if (iy < 0 || iy >= h) continue;
              const float* xrow = xp + iy * w + (kx - pad_);
              const float* grow = gp + oy * w_out;
              for (long ox = ox_lo; ox < ox_hi; ++ox)
                acc += grow[ox] * xrow[ox];
            }
            gwp[ky * kernel_ + kx] += acc;
          }
        }
      }
    }
    gbd[co] += static_cast<float>(gb);
  });

  // Input gradient: parallelize over samples (disjoint grad_in slices);
  // contiguous saxpy over ox per (co, ci, ky, kx, oy).
  runtime::ParallelFor(0, n, [&](long s) {
    const float* gs = gd + s * o_sample;
    float* gi = gid + s * x_sample;
    for (long co = 0; co < out_channels_; ++co) {
      const float* wf = wd + co * w_per_out;
      const float* gp = gs + co * o_plane;
      for (long ci = 0; ci < c_in; ++ci) {
        float* gip = gi + ci * x_plane;
        const float* wp = wf + ci * kernel_ * kernel_;
        for (long ky = 0; ky < kernel_; ++ky) {
          for (long kx = 0; kx < kernel_; ++kx) {
            const float wv = wp[ky * kernel_ + kx];
            if (wv == 0.0f) continue;
            const long ox_lo = std::max(0L, pad_ - kx);
            const long ox_hi = std::min(w_out, w + pad_ - kx);
            for (long oy = 0; oy < h_out; ++oy) {
              const long iy = oy + ky - pad_;
              if (iy < 0 || iy >= h) continue;
              float* grow_in = gip + iy * w + (kx - pad_);
              const float* grow = gp + oy * w_out;
              for (long ox = ox_lo; ox < ox_hi; ++ox)
                grow_in[ox] += wv * grow[ox];
            }
          }
        }
      }
    }
  });
  return grad_in;
}

std::unique_ptr<Layer> Conv2d::Clone() const {
  auto copy = std::make_unique<Conv2d>(*this);
  copy->cached_input_ = Tensor();  // drop activation cache (kernel scratch
  return copy;                     // starts fresh by LocalScratch copy);
}                                  // qweight_ is kept

}  // namespace axsnn::snn
