#include "snn/pool.hpp"

#include <algorithm>

#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::snn {

namespace {

/// Splits [*, C, H, W] into (n = prod(*)·C plane count, H, W).
void PlaneDims(const Tensor& x, long window, long& planes, long& h, long& w) {
  AXSNN_CHECK(x.rank() >= 3, "pooling expects [*, C, H, W]");
  const std::size_t r = x.rank();
  h = x.dim(r - 2);
  w = x.dim(r - 1);
  AXSNN_CHECK(h % window == 0 && w % window == 0,
              "pooling window " << window << " must divide spatial dims " << h
                                << "x" << w);
  planes = x.numel() / (h * w);
}

Shape PooledShape(const Shape& in, long window) {
  AXSNN_CHECK(in.size() >= 3, "pooling expects [*, C, H, W]");
  const std::size_t r = in.size();
  AXSNN_CHECK(in[r - 2] % window == 0 && in[r - 1] % window == 0,
              "pooling window " << window << " must divide spatial dims "
                                << in[r - 2] << "x" << in[r - 1]);
  Shape s = in;
  s[r - 2] /= window;
  s[r - 1] /= window;
  return s;
}

}  // namespace

AvgPool2d::AvgPool2d(std::string name, long window)
    : name_(std::move(name)), window_(window) {
  AXSNN_CHECK(window >= 1, "pooling window must be >= 1");
}

Shape AvgPool2d::OutputShape(const Shape& in) const {
  return PooledShape(in, window_);
}

void AvgPool2d::ForwardInto(const Tensor& x, Tensor& out, bool /*train*/) {
  long planes = 0, h = 0, w = 0;
  PlaneDims(x, window_, planes, h, w);
  cached_in_shape_ = x.shape();
  const long ho = h / window_;
  const long wo = w / window_;
  SizeOutput(x, out);
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  const float* xd = x.data();
  float* od = out.data();
  runtime::ParallelFor(0, planes, [&](long p) {
    const float* xp = xd + p * h * w;
    float* op = od + p * ho * wo;
    for (long oy = 0; oy < ho; ++oy) {
      for (long ox = 0; ox < wo; ++ox) {
        float acc = 0.0f;
        for (long ky = 0; ky < window_; ++ky)
          for (long kx = 0; kx < window_; ++kx)
            acc += xp[(oy * window_ + ky) * w + ox * window_ + kx];
        op[oy * wo + ox] = acc * inv;
      }
    }
  });
}

void AvgPool2d::BeginStepped(long time_steps, long batch) {
  (void)time_steps;
  (void)batch;
  silent_filled_ = false;
}

void AvgPool2d::ForwardStep(const Tensor& x, Tensor& out, StepContext& ctx) {
  long planes = 0, h = 0, w = 0;
  PlaneDims(x, window_, planes, h, w);
  cached_in_shape_ = Shape();  // stepped runs never feed Backward
  SizeOutput(x, out);

  const bool mask_covers =
      ctx.in.valid() && ctx.in.batch * ctx.in.plane == x.numel();
  if (mask_covers && ctx.in.total == 0) {
    // Silent step: every window sum is +0.0f and +0 * inv stays +0.0f, so
    // the dense path's output is exactly zero — fill it without reading x.
    if (ctx.out != nullptr) ctx.out->ZeroFill();
    if (silent_filled_ && silent_fill_data_ == out.data() &&
        silent_fill_numel_ == out.numel()) {
      return;
    }
    std::fill(out.data(), out.data() + out.numel(), 0.0f);
    silent_filled_ = true;
    silent_fill_data_ = out.data();
    silent_fill_numel_ = out.numel();
    return;
  }
  silent_filled_ = false;

  const long ho = h / window_;
  const long wo = w / window_;
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  const float* xd = x.data();
  float* od = out.data();
  runtime::ParallelFor(0, planes, [&](long p) {
    const float* xp = xd + p * h * w;
    float* op = od + p * ho * wo;
    for (long oy = 0; oy < ho; ++oy) {
      for (long ox = 0; ox < wo; ++ox) {
        float acc = 0.0f;
        for (long ky = 0; ky < window_; ++ky)
          for (long kx = 0; kx < window_; ++kx)
            acc += xp[(oy * window_ + ky) * w + ox * window_ + kx];
        op[oy * wo + ox] = acc * inv;
      }
    }
  });
  // Pooled rates are fractional, not binary — the lane mask marks nonzeros,
  // which is all the downstream silent check and sparse gather need.
  if (ctx.out != nullptr) {
    if (ctx.out->batch() * ctx.out->plane() == out.numel()) {
      ctx.out->PackFrom(od);
    } else {
      ctx.out->Invalidate();
    }
  }
}

Tensor AvgPool2d::Backward(const Tensor& grad_out) {
  AXSNN_CHECK(!cached_in_shape_.empty(),
              "AvgPool2d::Backward called before Forward");
  Tensor grad_in(cached_in_shape_);
  const std::size_t r = cached_in_shape_.size();
  const long h = cached_in_shape_[r - 2];
  const long w = cached_in_shape_[r - 1];
  const long planes = grad_in.numel() / (h * w);
  const long ho = h / window_;
  const long wo = w / window_;
  AXSNN_CHECK(grad_out.numel() == planes * ho * wo,
              "AvgPool2d::Backward gradient shape mismatch");
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  const float* gd = grad_out.data();
  float* gi = grad_in.data();
  runtime::ParallelFor(0, planes, [&](long p) {
    const float* gp = gd + p * ho * wo;
    float* gip = gi + p * h * w;
    for (long oy = 0; oy < ho; ++oy) {
      for (long ox = 0; ox < wo; ++ox) {
        const float g = gp[oy * wo + ox] * inv;
        for (long ky = 0; ky < window_; ++ky)
          for (long kx = 0; kx < window_; ++kx)
            gip[(oy * window_ + ky) * w + ox * window_ + kx] = g;
      }
    }
  });
  return grad_in;
}

std::unique_ptr<Layer> AvgPool2d::Clone() const {
  return std::make_unique<AvgPool2d>(name_, window_);
}

MaxPool2d::MaxPool2d(std::string name, long window)
    : name_(std::move(name)), window_(window) {
  AXSNN_CHECK(window >= 1, "pooling window must be >= 1");
}

Shape MaxPool2d::OutputShape(const Shape& in) const {
  return PooledShape(in, window_);
}

void MaxPool2d::ForwardInto(const Tensor& x, Tensor& out, bool /*train*/) {
  long planes = 0, h = 0, w = 0;
  PlaneDims(x, window_, planes, h, w);
  cached_in_shape_ = x.shape();
  const long ho = h / window_;
  const long wo = w / window_;
  SizeOutput(x, out);
  argmax_.resize(static_cast<std::size_t>(out.numel()));
  const float* xd = x.data();
  float* od = out.data();
  runtime::ParallelFor(0, planes, [&](long p) {
    const float* xp = xd + p * h * w;
    float* op = od + p * ho * wo;
    long* am = argmax_.data() + p * ho * wo;
    for (long oy = 0; oy < ho; ++oy) {
      for (long ox = 0; ox < wo; ++ox) {
        float best = xp[(oy * window_) * w + ox * window_];
        long best_off = (oy * window_) * w + ox * window_;
        for (long ky = 0; ky < window_; ++ky) {
          for (long kx = 0; kx < window_; ++kx) {
            const long off = (oy * window_ + ky) * w + ox * window_ + kx;
            if (xp[off] > best) {
              best = xp[off];
              best_off = off;
            }
          }
        }
        op[oy * wo + ox] = best;
        am[oy * wo + ox] = best_off;
      }
    }
  });
}

Tensor MaxPool2d::Backward(const Tensor& grad_out) {
  AXSNN_CHECK(!cached_in_shape_.empty(),
              "MaxPool2d::Backward called before Forward");
  Tensor grad_in(cached_in_shape_);
  const std::size_t r = cached_in_shape_.size();
  const long h = cached_in_shape_[r - 2];
  const long w = cached_in_shape_[r - 1];
  const long planes = grad_in.numel() / (h * w);
  const long ho = h / window_;
  const long wo = w / window_;
  AXSNN_CHECK(grad_out.numel() == planes * ho * wo,
              "MaxPool2d::Backward gradient shape mismatch");
  const float* gd = grad_out.data();
  float* gi = grad_in.data();
  runtime::ParallelFor(0, planes, [&](long p) {
    const float* gp = gd + p * ho * wo;
    const long* am = argmax_.data() + p * ho * wo;
    float* gip = gi + p * h * w;
    for (long o = 0; o < ho * wo; ++o) gip[am[o]] += gp[o];
  });
  return grad_in;
}

std::unique_ptr<Layer> MaxPool2d::Clone() const {
  return std::make_unique<MaxPool2d>(name_, window_);
}

}  // namespace axsnn::snn
