// Fully-connected layer over the trailing feature axis.
//
// Input [*, F_in] -> output [*, F_out], where * is the flattened [T, B]
// prefix. Like Conv2d, the same synaptic weights are applied at every time
// step; Backward sums parameter gradients over time.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "kernels/dispatch.hpp"
#include "runtime/workspace.hpp"
#include "snn/layer.hpp"
#include "tensor/quantized.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::snn {

/// Fully-connected (linear) layer. Weights are [F_out, F_in].
class Dense final : public Layer {
 public:
  /// Creates a dense layer with Kaiming-uniform initialized weights.
  Dense(std::string name, long in_features, long out_features, Rng& rng);

  Shape OutputShape(const Shape& in) const override;
  void ForwardInto(const Tensor& x, Tensor& out, bool train) override;
  /// Event-path step: skip-on-silent (pure bias rows, cached across
  /// consecutive silent steps) and packed-word pass-through. Sizes out to
  /// [B, F_out] itself — the step batch has no [T, B] prefix, so the
  /// OutputShape prefix check does not apply.
  void ForwardStep(const Tensor& x, Tensor& out, StepContext& ctx) override;
  void BeginStepped(long time_steps, long batch) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Tensor*> Params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> Grads() override { return {&dweight_, &dbias_}; }
  std::string Name() const override { return name_; }
  std::unique_ptr<Layer> Clone() const override;

  long in_features() const { return in_features_; }
  long out_features() const { return out_features_; }

  Tensor& weight() { return weight_; }
  const Tensor& weight() const { return weight_; }
  Tensor& bias() { return bias_; }
  const Tensor& bias() const { return bias_; }

  /// Switches ForwardInto to the integer backend; same contract as
  /// Conv2d::EnableInt8Kernel (snapshot current weights, per-output-channel
  /// scales, int32 accumulation; Backward keeps using the float weights).
  void EnableInt8Kernel(std::span<const float> row_scales = {});
  /// Returns to the float forward path.
  void DisableInt8Kernel() { qweight_ = QuantizedTensor(); }
  bool int8_kernel() const { return !qweight_.empty(); }
  const QuantizedTensor& quantized_weight() const { return qweight_; }
  /// Mutable snapshot access for the fault injector (src/faults/); same
  /// contract as Conv2d::quantized_weight().
  QuantizedTensor& quantized_weight() { return qweight_; }

  /// Bulk weight reload: the int8 snapshot no longer matches — drop it
  /// (callers re-enable if they still want integer execution).
  void OnWeightsChanged() override { DisableInt8Kernel(); }

  /// Kernel-implementation knob (src/kernels/); same contract as
  /// Conv2d::set_kernel_mode.
  void set_kernel_mode(kernels::KernelMode mode) { kernel_mode_ = mode; }
  kernels::KernelMode kernel_mode() const { return kernel_mode_; }

 private:
  std::string name_;
  long in_features_ = 0;
  long out_features_ = 0;
  Tensor weight_;   // [F_out, F_in]
  Tensor bias_;     // [F_out]
  Tensor dweight_;
  Tensor dbias_;
  Tensor cached_input_;
  QuantizedTensor qweight_;  // int8 backend weights (empty = off)
  kernels::KernelMode kernel_mode_ = kernels::KernelMode::kAuto;
  runtime::LocalScratch scratch_;  // kernel packing/code buffers (not copied)
  // Silent-fill cache for the stepped path (see Conv2d).
  bool silent_filled_ = false;
  const float* silent_fill_data_ = nullptr;
  long silent_fill_numel_ = 0;
};

}  // namespace axsnn::snn
