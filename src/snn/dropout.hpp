// Inverted dropout for spiking activations.
//
// The DVS-Gesture classifier in the paper contains one dropout layer. The
// mask is drawn once per forward pass over the [B, F...] slice and shared
// across time steps, which matches how dropout is used in SNN training
// frameworks (a synapse is either present or absent for the whole stimulus
// presentation, not flickering per time step).
#pragma once

#include <memory>
#include <string>

#include "snn/layer.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::snn {

/// Inverted dropout; identity in inference mode.
class Dropout final : public Layer {
 public:
  /// `rate` is the drop probability in [0, 1). `seed` fixes the mask
  /// sequence so training runs are reproducible.
  Dropout(std::string name, float rate, std::uint64_t seed);

  Shape OutputShape(const Shape& in) const override;
  void ForwardInto(const Tensor& x, Tensor& out, bool train) override;
  /// Event-path step: inference dropout is the identity, so a silent input
  /// stays a silent all-zero output (written without reading x) and a live
  /// input is copied through with its spike mask forwarded unchanged.
  void ForwardStep(const Tensor& x, Tensor& out, StepContext& ctx) override;
  void BeginStepped(long time_steps, long batch) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return name_; }
  std::unique_ptr<Layer> Clone() const override;

  float rate() const { return rate_; }

 private:
  std::string name_;
  float rate_ = 0.0f;
  Rng rng_;
  Tensor mask_;  // [B, F...] scaled keep mask from the last training forward
  bool last_was_train_ = false;
  // Silent-fill cache for the stepped path (see Conv2d).
  bool silent_filled_ = false;
  const float* silent_fill_data_ = nullptr;
  long silent_fill_numel_ = 0;
};

}  // namespace axsnn::snn
