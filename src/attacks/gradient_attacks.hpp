// Gradient-based adversarial attacks on static inputs: PGD and BIM.
//
// Both craft l_inf-bounded perturbations of the analog image by iterating
// sign-of-gradient steps, exactly as in the paper's threat model (Section
// III): the adversary perturbs inputs at prediction time, within budget
// epsilon, using gradients of an *accurate* classifier (the approximate
// variant's internals are unknown to the adversary).
//
// Gradients flow through the full spatio-temporal unrolling of the SNN via
// surrogate-gradient BPTT. With rate encoding (the default, matching the
// paper's pipeline) the image enters as Bernoulli spike probabilities and the
// image-space gradient uses the straight-through estimator — summing the
// per-step input gradients, since E[spike_t] = pixel. This keeps the attack
// in the same partially-obfuscated-gradient regime as attacks on rate-coded
// SNN frameworks, which is what makes SNNs measurably more attack-resistant
// than ANNs in the paper's figures. kDirect gives the deterministic
// expectation path (stronger attack; useful for analysis).
#pragma once

#include <cstdint>
#include <span>

#include "snn/encoding.hpp"
#include "snn/network.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::attacks {

/// Configuration shared by PGD and BIM.
struct GradientAttackConfig {
  /// l_inf perturbation budget (images live in [0, 1]).
  float epsilon = 1.0f;
  /// Number of gradient iterations.
  long steps = 10;
  /// Per-step size; 0 selects the standard defaults
  /// (2.5 * eps / steps for PGD, eps / steps for BIM).
  float step_size = 0.0f;
  /// Time steps the attack unrolls the SNN for.
  long time_steps = 16;
  /// How the candidate image is encoded for each gradient query.
  snn::Encoding encoding = snn::Encoding::kRate;
  /// Seed for the PGD random start and the rate-encoding draws.
  std::uint64_t seed = 99;
  /// Mini-batch size used while attacking a dataset.
  long batch_size = 64;
};

/// Projected Gradient Descent (l_inf, random start inside the eps-ball).
/// Returns adversarial images of the same shape as `images` ([B, C, H, W],
/// clipped to the eps-ball around the originals and to [0, 1]).
Tensor PgdAttack(snn::Network& net, const Tensor& images,
                 std::span<const int> labels, const GradientAttackConfig& cfg);

/// Basic Iterative Method (l_inf, no random start, eps/steps step size).
Tensor BimAttack(snn::Network& net, const Tensor& images,
                 std::span<const int> labels, const GradientAttackConfig& cfg);

}  // namespace axsnn::attacks
