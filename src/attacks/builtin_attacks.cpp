// Registry adapters for the built-in attack families.
//
// Each adapter wraps one of the free-function attack implementations
// (gradient_attacks / neuromorphic_attacks / extra_neuromorphic) behind the
// polymorphic Attack interface: it declares the knobs of its config struct
// as a parameter schema, builds the config from (context, params), and —
// for the white-box attacks — clones the accurate network so crafting is
// const-correct and its gradient-cache scope stays local to the clone.
#include <cmath>

#include "attacks/extra_neuromorphic.hpp"
#include "attacks/gradient_attacks.hpp"
#include "attacks/neuromorphic_attacks.hpp"
#include "attacks/registry.hpp"

namespace axsnn::attacks {

namespace {

/// "No attack": the clean-data baseline of every sweep, as a first-class
/// scenario cell.
class NoneAttack final : public Attack {
 public:
  std::string name() const override { return "none"; }
  std::string description() const override {
    return "no perturbation; evaluates the clean test data";
  }
  bool supports_static() const override { return true; }
  bool supports_events() const override { return true; }

  Tensor CraftStatic(const snn::Network&, const Tensor& images,
                     std::span<const int>, const StaticCraftContext&,
                     const ParamMap& params) const override {
    (void)ResolveParams(params);
    return images;
  }

  data::EventDataset CraftEvents(const snn::Network&,
                                 const data::EventDataset& dataset,
                                 const EventCraftContext&,
                                 const ParamMap& params) const override {
    (void)ResolveParams(params);
    return dataset;
  }
};

/// Shared PGD/BIM adapter: both drive IterativeAttack with the same config
/// surface and differ only in the free function they call.
class GradientAttackBase : public Attack {
 public:
  std::vector<ParamSpec> param_schema() const override {
    return {{"steps", 0.0, "gradient iterations; 0 takes the workbench cap"},
            {"step_size", 0.0,
             "per-step size; 0 selects the standard default"}};
  }
  bool supports_static() const override { return true; }

  Tensor CraftStatic(const snn::Network& net, const Tensor& images,
                     std::span<const int> labels,
                     const StaticCraftContext& ctx,
                     const ParamMap& params) const override {
    const ParamMap p = ResolveParams(params);
    GradientAttackConfig cfg;
    cfg.epsilon = ctx.epsilon;
    cfg.steps = p.at("steps") > 0.0 ? static_cast<long>(p.at("steps"))
                                    : ctx.steps;
    cfg.step_size = static_cast<float>(p.at("step_size"));
    cfg.time_steps = ctx.time_steps;
    cfg.encoding = ctx.encoding;
    cfg.seed = ctx.seed;
    cfg.batch_size = ctx.batch_size;
    // Const-correctness: the craft loop backpropagates (and scopes the
    // layers' gradient caches) through a private clone, leaving the caller's
    // accurate model untouched. Clone() is exact, so the crafted images are
    // bit-identical to attacking the original.
    snn::Network local = net.Clone();
    return Run(local, images, labels, cfg);
  }

 protected:
  virtual Tensor Run(snn::Network& net, const Tensor& images,
                     std::span<const int> labels,
                     const GradientAttackConfig& cfg) const = 0;
};

class PgdRegistryAttack final : public GradientAttackBase {
 public:
  std::string name() const override { return "PGD"; }
  std::string description() const override {
    return "projected gradient descent (l_inf, random start)";
  }

 protected:
  Tensor Run(snn::Network& net, const Tensor& images,
             std::span<const int> labels,
             const GradientAttackConfig& cfg) const override {
    return PgdAttack(net, images, labels, cfg);
  }
};

class BimRegistryAttack final : public GradientAttackBase {
 public:
  std::string name() const override { return "BIM"; }
  std::string description() const override {
    return "basic iterative method (l_inf, no random start)";
  }

 protected:
  Tensor Run(snn::Network& net, const Tensor& images,
             std::span<const int> labels,
             const GradientAttackConfig& cfg) const override {
    return BimAttack(net, images, labels, cfg);
  }
};

class SparseRegistryAttack final : public Attack {
 public:
  std::string name() const override { return "Sparse"; }
  std::string description() const override {
    return "stealthy loss-guided event injection (DVS-Attacks)";
  }
  std::vector<ParamSpec> param_schema() const override {
    const SparseAttackConfig d;
    return {{"max_iterations", static_cast<double>(d.max_iterations),
             "loss-gradient iterations per stream"},
            {"events_per_iteration",
             static_cast<double>(d.events_per_iteration),
             "events injected per iteration"},
            {"min_spacing", static_cast<double>(d.min_spacing),
             "minimum Chebyshev spacing of same-bin injections"}};
  }
  bool supports_events() const override { return true; }

  data::EventDataset CraftEvents(const snn::Network& net,
                                 const data::EventDataset& dataset,
                                 const EventCraftContext& ctx,
                                 const ParamMap& params) const override {
    const ParamMap p = ResolveParams(params);
    SparseAttackConfig cfg;
    cfg.max_iterations = static_cast<long>(p.at("max_iterations"));
    cfg.events_per_iteration =
        static_cast<long>(p.at("events_per_iteration"));
    cfg.min_spacing = static_cast<long>(p.at("min_spacing"));
    cfg.time_bins = ctx.time_bins;
    cfg.seed = ctx.seed;
    // White-box: clone for const-correctness (SparseAttackDataset clones
    // again per worker chunk, so this adds one clone per craft).
    snn::Network local = net.Clone();
    return SparseAttackDataset(local, dataset, cfg);
  }
};

class FrameRegistryAttack final : public Attack {
 public:
  std::string name() const override { return "Frame"; }
  std::string description() const override {
    return "model-free bright border across the whole recording";
  }
  std::vector<ParamSpec> param_schema() const override {
    const FrameAttackConfig d;
    return {{"period_ms", d.period_ms, "interval between injected events"},
            {"border", static_cast<double>(d.border),
             "attacked border thickness in pixels"},
            {"both_polarities", d.both_polarities ? 1.0 : 0.0,
             "inject both polarities (1) or ON only (0)"}};
  }
  bool supports_events() const override { return true; }

  data::EventDataset CraftEvents(const snn::Network&,
                                 const data::EventDataset& dataset,
                                 const EventCraftContext&,
                                 const ParamMap& params) const override {
    const ParamMap p = ResolveParams(params);
    FrameAttackConfig cfg;
    cfg.period_ms = static_cast<float>(p.at("period_ms"));
    cfg.border = static_cast<long>(p.at("border"));
    cfg.both_polarities = p.at("both_polarities") != 0.0;
    return FrameAttackDataset(dataset, cfg);
  }
};

class CornerRegistryAttack final : public Attack {
 public:
  std::string name() const override { return "Corner"; }
  std::string description() const override {
    return "model-free event patches in the four sensor corners";
  }
  std::vector<ParamSpec> param_schema() const override {
    const CornerAttackConfig d;
    return {{"patch", static_cast<double>(d.patch),
             "corner patch side length in pixels"},
            {"period_ms", d.period_ms, "interval between injected events"},
            {"both_polarities", d.both_polarities ? 1.0 : 0.0,
             "inject both polarities (1) or ON only (0)"}};
  }
  bool supports_events() const override { return true; }

  data::EventDataset CraftEvents(const snn::Network&,
                                 const data::EventDataset& dataset,
                                 const EventCraftContext&,
                                 const ParamMap& params) const override {
    const ParamMap p = ResolveParams(params);
    CornerAttackConfig cfg;
    cfg.patch = static_cast<long>(p.at("patch"));
    cfg.period_ms = static_cast<float>(p.at("period_ms"));
    cfg.both_polarities = p.at("both_polarities") != 0.0;
    return CornerAttackDataset(dataset, cfg);
  }
};

class DashRegistryAttack final : public Attack {
 public:
  std::string name() const override { return "Dash"; }
  std::string description() const override {
    return "model-free event patch sweeping across the sensor";
  }
  std::vector<ParamSpec> param_schema() const override {
    const DashAttackConfig d;
    return {{"patch", static_cast<double>(d.patch),
             "patch side length in pixels"},
            {"speed_px_per_ms", d.speed_px_per_ms, "sweep speed"},
            {"period_ms", d.period_ms, "interval between injected events"},
            {"lane", d.lane, "vertical lane as a fraction of sensor height"}};
  }
  bool supports_events() const override { return true; }

  data::EventDataset CraftEvents(const snn::Network&,
                                 const data::EventDataset& dataset,
                                 const EventCraftContext&,
                                 const ParamMap& params) const override {
    const ParamMap p = ResolveParams(params);
    DashAttackConfig cfg;
    cfg.patch = static_cast<long>(p.at("patch"));
    cfg.speed_px_per_ms = static_cast<float>(p.at("speed_px_per_ms"));
    cfg.period_ms = static_cast<float>(p.at("period_ms"));
    cfg.lane = static_cast<float>(p.at("lane"));
    return DashAttackDataset(dataset, cfg);
  }
};

}  // namespace

// Defined in fault_attacks.cpp: the model-corruption family (bitflip,
// stuckat) registers behind the canonical seven input-perturbation attacks.
void RegisterFaultAttacks(AttackRegistry& registry);

void RegisterBuiltinAttacks(AttackRegistry& registry) {
  registry.Register(std::make_unique<NoneAttack>());
  registry.Register(std::make_unique<PgdRegistryAttack>());
  registry.Register(std::make_unique<BimRegistryAttack>());
  registry.Register(std::make_unique<SparseRegistryAttack>());
  registry.Register(std::make_unique<FrameRegistryAttack>());
  registry.Register(std::make_unique<CornerRegistryAttack>());
  registry.Register(std::make_unique<DashRegistryAttack>());
  RegisterFaultAttacks(registry);
}

}  // namespace axsnn::attacks
