// Fault attacks: the registry face of the fault-injection subsystem.
//
// `bitflip` and `stuckat` are attacks whose perturbation lands on the
// *victim model's storage* instead of the input (NeuroAttack's threat
// model). They slot into the same registry as the perturbation attacks so
// a ScenarioGrid can put "bitflip" in its attack axis unchanged; the craft
// hooks validate params and pass the clean data through, and the scenario
// engines recognise corrupts_model() and clone-then-corrupt every evaluated
// variant with FaultFromParams' spec. Because crafting stays a pass-
// through, cached crafted sets remain fault-free and shared with the clean
// cells — only the evaluation differs, and its store key folds the fault
// label (scenario/store.cpp).
//
// Params are doubles like every schema; enum-valued knobs take small
// integer codes, documented per entry and decoded in SpecFromParams.
#include <cmath>

#include "attacks/registry.hpp"
#include "faults/fault_model.hpp"
#include "tensor/check.hpp"

namespace axsnn::attacks {
namespace {

std::vector<ParamSpec> FaultParamSchema() {
  return {
      {"domain", 0.0, "0 = weights, 1 = neuron params, 2 = activations"},
      {"target", 0.0,
       "weight array: 0 = any, 1 = float words, 2 = int8 codes, "
       "3 = int8 scales"},
      {"flips", 1.0, "fault sites when ber == 0"},
      {"ber", 0.0, "bit-error rate; > 0 derives sites from the surface"},
      {"bit", -1.0, "pinned bit position; -1 draws per site"},
      {"layer", -1.0, "target-layer ordinal; -1 = all layers"},
      {"burst", 1.0, "flip this many consecutive bits per site (> 1)"},
      {"seed", 11.0, "site/bit draw seed"},
  };
}

faults::FaultDomain DecodeDomain(double v) {
  const long code = std::lround(v);
  AXSNN_CHECK(code >= 0 && code <= 2,
              "fault domain must be 0 (weights), 1 (neuron) or 2 "
              "(activations), got " << v);
  return static_cast<faults::FaultDomain>(code);
}

faults::WeightTarget DecodeTarget(double v) {
  const long code = std::lround(v);
  AXSNN_CHECK(code >= 0 && code <= 3,
              "fault target must be 0 (any), 1 (float), 2 (codes) or 3 "
              "(scales), got " << v);
  return static_cast<faults::WeightTarget>(code);
}

/// Shared param -> spec decoding; `kind` comes from the subclass (and
/// burst > 1 upgrades a bitflip to a word burst).
faults::FaultSpec SpecFromParams(const ParamMap& p, faults::FaultKind kind) {
  faults::FaultSpec spec;
  spec.kind = kind;
  spec.domain = DecodeDomain(p.at("domain"));
  spec.target = DecodeTarget(p.at("target"));
  spec.flips = std::lround(p.at("flips"));
  spec.ber = p.at("ber");
  spec.bit = static_cast<int>(std::lround(p.at("bit")));
  spec.layer = std::lround(p.at("layer"));
  spec.burst = std::lround(p.at("burst"));
  spec.seed = static_cast<std::uint64_t>(std::llround(p.at("seed")));
  if (kind == faults::FaultKind::kBitFlip && spec.burst > 1)
    spec.kind = faults::FaultKind::kWordBurst;
  spec.Validate();
  return spec;
}

/// Common base: pass-through crafting (params validated, data untouched),
/// both workbench families supported.
class FaultAttackBase : public Attack {
 public:
  bool supports_static() const override { return true; }
  bool supports_events() const override { return true; }
  bool corrupts_model() const override { return true; }
  std::vector<ParamSpec> param_schema() const override {
    return FaultParamSchema();
  }

  Tensor CraftStatic(const snn::Network&, const Tensor& images,
                     std::span<const int>, const StaticCraftContext&,
                     const ParamMap& params) const override {
    (void)FaultFromParams(params);  // validate eagerly, like every attack
    return images;
  }

  data::EventDataset CraftEvents(const snn::Network&,
                                 const data::EventDataset& dataset,
                                 const EventCraftContext&,
                                 const ParamMap& params) const override {
    (void)FaultFromParams(params);
    return dataset;
  }
};

class BitflipAttack final : public FaultAttackBase {
 public:
  std::string name() const override { return "bitflip"; }
  std::string description() const override {
    return "NeuroAttack-style bit-flips in model storage (weights / "
           "neuron params / activations); burst > 1 flips a word burst";
  }
  faults::FaultSpec FaultFromParams(const ParamMap& params) const override {
    return SpecFromParams(ResolveParams(params),
                          faults::FaultKind::kBitFlip);
  }
};

class StuckAtAttack final : public FaultAttackBase {
 public:
  std::string name() const override { return "stuckat"; }
  std::string description() const override {
    return "stuck-at faults in model storage: cells read as 0 or 1 "
           "regardless of the stored value (param stuck selects which)";
  }
  std::vector<ParamSpec> param_schema() const override {
    std::vector<ParamSpec> schema = FaultParamSchema();
    schema.push_back({"stuck", 0.0, "0 = stuck-at-0, 1 = stuck-at-1"});
    return schema;
  }
  faults::FaultSpec FaultFromParams(const ParamMap& params) const override {
    const ParamMap p = ResolveParams(params);
    const long stuck = std::lround(p.at("stuck"));
    AXSNN_CHECK(stuck == 0 || stuck == 1,
                "stuckat 'stuck' must be 0 or 1, got " << p.at("stuck"));
    return SpecFromParams(p, stuck == 1 ? faults::FaultKind::kStuckAt1
                                        : faults::FaultKind::kStuckAt0);
  }
};

}  // namespace

// Called from RegisterBuiltinAttacks (builtin_attacks.cpp) so the fault
// attacks are present on first registry access, after the canonical seven.
void RegisterFaultAttacks(AttackRegistry& registry) {
  registry.Register(std::make_unique<BitflipAttack>());
  registry.Register(std::make_unique<StuckAtAttack>());
}

}  // namespace axsnn::attacks
