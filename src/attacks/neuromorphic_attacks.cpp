#include "attacks/neuromorphic_attacks.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "runtime/parallel_for.hpp"
#include "snn/encoding.hpp"
#include "snn/loss.hpp"
#include "tensor/check.hpp"

namespace axsnn::attacks {

namespace {

/// A candidate injection site in frame space.
struct Candidate {
  float gain;  // loss gradient of switching this frame cell on
  long bin;
  long channel;  // 0 = OFF, 1 = ON
  long y;
  long x;
};

}  // namespace

data::EventStream SparseAttack(snn::Network& net,
                               const data::EventStream& stream, int label,
                               const SparseAttackConfig& cfg) {
  AXSNN_CHECK(cfg.max_iterations > 0 && cfg.events_per_iteration > 0 &&
                  cfg.time_bins > 0,
              "invalid sparse attack configuration");
  data::EventStream attacked = stream;
  Rng rng(cfg.seed);
  const float bin_ms =
      stream.duration_ms / static_cast<float>(cfg.time_bins);
  const std::vector<int> labels = {label};
  // The loop backpropagates through train=false forwards: keep the layers'
  // Backward caches alive for its duration (RAII — restores the prior
  // state even when a check throws mid-loop).
  snn::GradCacheScope grad_cache(net);

  for (long iter = 0; iter < cfg.max_iterations; ++iter) {
    // Frame the current stream and query the victim.
    Tensor frames = data::BinEvents(attacked, cfg.time_bins);  // [T,2,H,W]
    Tensor input = frames.Reshaped(
        {cfg.time_bins, 1, 2, stream.height, stream.width});
    const Tensor& seq = net.ForwardShared(input, /*train=*/false);
    Tensor logits = snn::ReadoutMean(seq);
    if (logits.Argmax() != label) break;  // already fooled — stay stealthy

    snn::LossResult loss = snn::SoftmaxCrossEntropy(logits, labels);
    net.ZeroGrad();
    Tensor grad_seq =
        snn::ReadoutMeanBackward(loss.grad_logits, cfg.time_bins);
    Tensor grad_input = net.Backward(grad_seq);  // [T,1,2,H,W]

    // Collect the empty frame cells whose activation would increase the
    // loss the most (positive gradient, no event there yet).
    std::vector<Candidate> candidates;
    const float* gd = grad_input.data();
    const float* fd = frames.data();
    const long plane = stream.height * stream.width;
    for (long t = 0; t < cfg.time_bins; ++t) {
      for (long c = 0; c < 2; ++c) {
        const long base = (t * 2 + c) * plane;
        for (long p = 0; p < plane; ++p) {
          const float g = gd[base + p];
          if (g > 0.0f && fd[base + p] == 0.0f) {
            candidates.push_back({g, t, c, p / stream.width,
                                  p % stream.width});
          }
        }
      }
    }
    if (candidates.empty()) break;

    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.gain > b.gain;
              });

    // Greedy selection under the stealthiness constraint: best-gain first,
    // skipping sites too close to an already chosen one in the same bin.
    std::vector<Candidate> chosen;
    chosen.reserve(static_cast<std::size_t>(cfg.events_per_iteration));
    for (const Candidate& c : candidates) {
      if (static_cast<long>(chosen.size()) >= cfg.events_per_iteration) break;
      bool too_close = false;
      for (const Candidate& k : chosen) {
        if (k.bin == c.bin &&
            std::max(std::labs(k.y - c.y), std::labs(k.x - c.x)) <
                cfg.min_spacing) {
          too_close = true;
          break;
        }
      }
      if (!too_close) chosen.push_back(c);
    }
    if (chosen.empty()) break;

    for (const Candidate& c : chosen) {
      // Place the event inside its bin with sub-bin jitter so the stream
      // stays plausibly asynchronous.
      const float t_ms = (static_cast<float>(c.bin) +
                          static_cast<float>(rng.Uniform(0.2, 0.8))) *
                         bin_ms;
      attacked.events.push_back({static_cast<std::int16_t>(c.x),
                                 static_cast<std::int16_t>(c.y),
                                 c.channel == 1 ? std::int8_t{1}
                                                : std::int8_t{-1},
                                 t_ms});
    }
  }

  std::sort(attacked.events.begin(), attacked.events.end(),
            [](const data::Event& a, const data::Event& b) {
              return a.t < b.t;
            });
  return attacked;
}

data::EventDataset SparseAttackDataset(snn::Network& net,
                                       const data::EventDataset& dataset,
                                       const SparseAttackConfig& cfg) {
  data::EventDataset out = dataset;
  const long n = dataset.size();
  // Each chunk drives its own network clone: forward caches are stateful.
  // Per-stream seeds make every stream's attack independent of the
  // partitioning, so results match the serial path at any pool size.
  runtime::ParallelForChunks(0, n, [&](long /*chunk*/, long lo, long hi) {
    snn::Network local = net.Clone();
    for (long i = lo; i < hi; ++i) {
      SparseAttackConfig per_stream = cfg;
      per_stream.seed = cfg.seed + static_cast<std::uint64_t>(i) * 0x9e37ULL;
      out.streams[static_cast<std::size_t>(i)] =
          SparseAttack(local, dataset.streams[static_cast<std::size_t>(i)],
                       dataset.labels[static_cast<std::size_t>(i)],
                       per_stream);
    }
  });
  return out;
}

data::EventStream FrameAttack(const data::EventStream& stream,
                              const FrameAttackConfig& cfg) {
  AXSNN_CHECK(cfg.period_ms > 0.0f, "period_ms must be positive");
  AXSNN_CHECK(cfg.border > 0, "border must be positive");
  data::EventStream attacked = stream;

  // Enumerate boundary pixels once.
  std::vector<std::pair<std::int16_t, std::int16_t>> boundary;
  for (long y = 0; y < stream.height; ++y) {
    for (long x = 0; x < stream.width; ++x) {
      const bool on_border = x < cfg.border || y < cfg.border ||
                             x >= stream.width - cfg.border ||
                             y >= stream.height - cfg.border;
      if (on_border)
        boundary.emplace_back(static_cast<std::int16_t>(x),
                              static_cast<std::int16_t>(y));
    }
  }

  for (float t = cfg.period_ms * 0.5f; t < stream.duration_ms;
       t += cfg.period_ms) {
    for (const auto& [x, y] : boundary) {
      attacked.events.push_back({x, y, std::int8_t{1}, t});
      if (cfg.both_polarities)
        attacked.events.push_back({x, y, std::int8_t{-1}, t});
    }
  }

  std::sort(attacked.events.begin(), attacked.events.end(),
            [](const data::Event& a, const data::Event& b) {
              return a.t < b.t;
            });
  return attacked;
}

data::EventDataset FrameAttackDataset(const data::EventDataset& dataset,
                                      const FrameAttackConfig& cfg) {
  data::EventDataset out = dataset;
  const long n = dataset.size();
  runtime::ParallelFor(0, n, [&](long i) {
    out.streams[static_cast<std::size_t>(i)] =
        FrameAttack(dataset.streams[static_cast<std::size_t>(i)], cfg);
  });
  return out;
}

}  // namespace axsnn::attacks
