#include "attacks/gradient_attacks.hpp"

#include <algorithm>
#include <cmath>

#include "snn/encoding.hpp"
#include "snn/loss.hpp"
#include "tensor/check.hpp"

namespace axsnn::attacks {

namespace {

/// One batched iterative-gradient attack (shared PGD/BIM core).
Tensor IterativeAttack(snn::Network& net, const Tensor& images,
                       std::span<const int> labels,
                       const GradientAttackConfig& cfg, bool random_start,
                       float default_step_factor) {
  AXSNN_CHECK(images.rank() == 4, "attack expects images [B, C, H, W]");
  AXSNN_CHECK(cfg.epsilon >= 0.0f, "epsilon must be non-negative");
  AXSNN_CHECK(cfg.steps > 0 && cfg.time_steps > 0 && cfg.batch_size > 0,
              "invalid attack configuration");
  const long n = images.dim(0);
  AXSNN_CHECK(n == static_cast<long>(labels.size()),
              "image/label count mismatch");

  if (cfg.epsilon == 0.0f) return images;  // empty budget: unperturbed

  const float alpha = cfg.step_size > 0.0f
                          ? cfg.step_size
                          : default_step_factor * cfg.epsilon /
                                static_cast<float>(cfg.steps);

  Tensor adversarial = images;
  const long per_sample = images.numel() / n;
  Rng rng(cfg.seed);
  Tensor input;  // encoded [T, B, ...] staging, reused across steps/batches
  // The craft loop backpropagates through train=false forwards: keep the
  // layers' Backward caches for its duration.
  snn::GradCacheScope grad_cache(net);

  for (long start = 0; start < n; start += cfg.batch_size) {
    const long count = std::min(cfg.batch_size, n - start);
    Shape batch_shape = images.shape();
    batch_shape[0] = count;

    Tensor x0(batch_shape);
    std::copy(images.data() + start * per_sample,
              images.data() + (start + count) * per_sample, x0.data());
    std::vector<int> batch_labels(labels.begin() + start,
                                  labels.begin() + start + count);

    Tensor x = x0;
    if (random_start) {
      for (float& v : x.flat())
        v += static_cast<float>(rng.Uniform(-cfg.epsilon, cfg.epsilon));
      x.Clamp(0.0f, 1.0f);
    }

    for (long step = 0; step < cfg.steps; ++step) {
      snn::EncodeInto(x, cfg.time_steps, cfg.encoding, rng, input);
      const Tensor& seq = net.ForwardShared(input, /*train=*/false);
      Tensor logits = snn::ReadoutMean(seq);
      snn::LossResult loss = snn::SoftmaxCrossEntropy(logits, batch_labels);

      net.ZeroGrad();
      Tensor grad_seq =
          snn::ReadoutMeanBackward(loss.grad_logits, cfg.time_steps);
      Tensor grad_input = net.Backward(grad_seq);
      Tensor grad_image = snn::CollapseTimeGradient(grad_input);

      // Ascent step on the sign of the gradient, then project back into the
      // eps-ball around x0 intersected with the valid pixel range.
      float* xd = x.data();
      const float* gd = grad_image.data();
      const float* x0d = x0.data();
      const long m = x.numel();
      for (long i = 0; i < m; ++i) {
        const float g = gd[i];
        const float stepv = g > 0.0f ? alpha : (g < 0.0f ? -alpha : 0.0f);
        float v = xd[i] + stepv;
        v = std::clamp(v, x0d[i] - cfg.epsilon, x0d[i] + cfg.epsilon);
        xd[i] = std::clamp(v, 0.0f, 1.0f);
      }
    }

    std::copy(x.data(), x.data() + count * per_sample,
              adversarial.data() + start * per_sample);
  }
  return adversarial;
}

}  // namespace

Tensor PgdAttack(snn::Network& net, const Tensor& images,
                 std::span<const int> labels,
                 const GradientAttackConfig& cfg) {
  return IterativeAttack(net, images, labels, cfg, /*random_start=*/true,
                         /*default_step_factor=*/2.5f);
}

Tensor BimAttack(snn::Network& net, const Tensor& images,
                 std::span<const int> labels,
                 const GradientAttackConfig& cfg) {
  return IterativeAttack(net, images, labels, cfg, /*random_start=*/false,
                         /*default_step_factor=*/1.0f);
}

}  // namespace axsnn::attacks
