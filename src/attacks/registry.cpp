#include "attacks/registry.hpp"

#include <sstream>

#include "tensor/check.hpp"

namespace axsnn::attacks {

// Defined in builtin_attacks.cpp. Called from Global()'s one-time
// initializer — an explicit call rather than per-TU static registrars, so
// the static-library linker can never drop a registration object file.
void RegisterBuiltinAttacks(AttackRegistry& registry);

Attack::~Attack() = default;

namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::ostringstream os;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) os << ", ";
    os << names[i];
  }
  return os.str();
}

}  // namespace

Tensor Attack::CraftStatic(const snn::Network&, const Tensor&,
                           std::span<const int>, const StaticCraftContext&,
                           const ParamMap&) const {
  AXSNN_CHECK(false, "attack '" << name()
                                << "' does not apply to static image "
                                   "batches (use an event workbench)");
  return {};
}

data::EventDataset Attack::CraftEvents(const snn::Network&,
                                       const data::EventDataset&,
                                       const EventCraftContext&,
                                       const ParamMap&) const {
  AXSNN_CHECK(false, "attack '" << name()
                                << "' does not apply to event datasets "
                                   "(use a static workbench)");
  return {};
}

faults::FaultSpec Attack::FaultFromParams(const ParamMap&) const {
  AXSNN_CHECK(false, "attack '" << name()
                                << "' does not corrupt the model (check "
                                   "corrupts_model() before asking for a "
                                   "fault spec)");
  return {};
}

ParamMap Attack::ResolveParams(const ParamMap& overrides) const {
  const std::vector<ParamSpec> schema = param_schema();
  ParamMap resolved;
  for (const ParamSpec& spec : schema)
    resolved.emplace(spec.name, spec.default_value);
  for (const auto& [key, value] : overrides) {
    auto it = resolved.find(key);
    if (it == resolved.end()) {
      std::ostringstream declared;
      for (std::size_t i = 0; i < schema.size(); ++i) {
        if (i) declared << ", ";
        declared << schema[i].name;
      }
      AXSNN_CHECK(false, "attack '"
                             << name() << "' has no parameter '" << key
                             << "' (declared: "
                             << (schema.empty() ? "<none>" : declared.str())
                             << ")");
    }
    it->second = value;
  }
  return resolved;
}

AttackRegistry& AttackRegistry::Global() {
  static AttackRegistry* registry = [] {
    auto* r = new AttackRegistry();
    RegisterBuiltinAttacks(*r);
    return r;
  }();
  return *registry;
}

void AttackRegistry::Register(std::unique_ptr<Attack> attack) {
  AXSNN_CHECK(attack != nullptr, "cannot register a null attack");
  const std::string name = attack->name();
  AXSNN_CHECK(!name.empty(), "attack name must be non-empty");
  std::lock_guard<std::mutex> lock(mu_);
  AXSNN_CHECK(by_name_.find(name) == by_name_.end(),
              "attack '" << name << "' is already registered");
  by_name_.emplace(name, attack.get());
  attacks_.push_back(std::move(attack));
}

const Attack& AttackRegistry::Get(std::string_view name) const {
  const Attack* attack = Find(name);
  if (attack == nullptr) {
    AXSNN_CHECK(false, "unknown attack '" << name << "' (registered: "
                                          << JoinNames(Names()) << ")");
  }
  return *attack;
}

const Attack* AttackRegistry::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

std::vector<std::string> AttackRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(attacks_.size());
  for (const auto& attack : attacks_) names.push_back(attack->name());
  return names;
}

const Attack& GetAttack(std::string_view name) {
  return AttackRegistry::Global().Get(name);
}

std::vector<std::string> RegisteredAttackNames() {
  return AttackRegistry::Global().Names();
}

}  // namespace axsnn::attacks
