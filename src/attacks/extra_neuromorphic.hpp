// Additional neuromorphic attacks from the DVS-Attacks suite (Marchisio et
// al., IJCNN 2021 — the paper's ref. [6]). The paper evaluates Sparse and
// Frame; Corner and Dash are the suite's other two members and are provided
// as extensions so defense evaluations can cover the full family.
#pragma once

#include "data/event.hpp"

namespace axsnn::attacks {

/// Corner Attack: injects events into the four sensor corners — less
/// conspicuous than the full-border Frame Attack but exploits the same
/// blind spot of frame-based preprocessing.
struct CornerAttackConfig {
  /// Side length of each corner patch in pixels.
  long patch = 3;
  /// Interval between injected events (ms).
  float period_ms = 2.0f;
  /// Inject both polarities (true) or ON only.
  bool both_polarities = true;
};

data::EventStream CornerAttack(const data::EventStream& stream,
                               const CornerAttackConfig& cfg);
data::EventDataset CornerAttackDataset(const data::EventDataset& dataset,
                                       const CornerAttackConfig& cfg);

/// Dash Attack: a small patch of events sweeping across the sensor like a
/// spurious object — spatio-temporally *correlated* noise, the hardest of
/// the suite for correlation filters such as AQF.
struct DashAttackConfig {
  /// Patch side length in pixels.
  long patch = 2;
  /// Sweep speed in pixels per millisecond.
  float speed_px_per_ms = 0.15f;
  /// Interval between injected events (ms).
  float period_ms = 1.0f;
  /// Vertical lane (fraction of sensor height) the dash sweeps along.
  float lane = 0.5f;
};

data::EventStream DashAttack(const data::EventStream& stream,
                             const DashAttackConfig& cfg);
data::EventDataset DashAttackDataset(const data::EventDataset& dataset,
                                     const DashAttackConfig& cfg);

}  // namespace axsnn::attacks
