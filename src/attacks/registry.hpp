// Pluggable attack registry: the open half of the scenario subsystem.
//
// The paper evaluates four attacks (PGD/BIM on static images, Sparse/Frame
// on event streams), but the SNN attack surface is a family, not a fixed
// list — "Is Spiking Secure?" (Marchisio et al.) alone catalogues several
// more, and defense studies routinely add their own. Hard-coding an enum
// switch per attack therefore scales linearly in edited call sites; this
// header replaces it with a polymorphic `Attack` interface plus a
// string-keyed registry, so a new attack is one self-contained registration
// and every workbench, scenario grid and search picks it up by name.
//
// Contracts:
//  * Attacks are stateless const objects; all per-call variation arrives
//    through the craft context (workbench-derived: epsilon, seeds, time
//    unrolling) and the ParamMap (attack-specific knobs, validated against
//    the attack's declared schema — unknown keys throw).
//  * `CraftStatic`/`CraftEvents` take the accurate model *const*: an
//    implementation that backpropagates clones the network first, keeping
//    its gradient-cache scoping RAII-local to the clone. Crafting can
//    therefore never mutate a trained model another scenario cell is using.
//  * Registration happens on first registry access (built-ins) or
//    explicitly via `AttackRegistry::Global().Register(...)` (extensions);
//    names are unique and lookups of unknown names throw with the list of
//    registered attacks.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "data/event.hpp"
#include "faults/fault_model.hpp"
#include "snn/encoding.hpp"
#include "snn/network.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::attacks {

/// Attack-specific parameters by name. All values are doubles; attacks
/// round/threshold as their schema documents. Ordered so rendered labels
/// are deterministic.
using ParamMap = std::map<std::string, double, std::less<>>;

/// One entry of an attack's declared parameter schema.
struct ParamSpec {
  std::string name;
  double default_value = 0.0;
  std::string doc;
};

/// Workbench-derived inputs of a static-batch craft (everything the legacy
/// `StaticWorkbench::Craft` wired from its Options).
struct StaticCraftContext {
  /// l_inf budget for gradient attacks (images live in [0, 1]).
  float epsilon = 0.0f;
  /// Gradient-iteration budget.
  long steps = 10;
  /// Time steps the attack unrolls the SNN for.
  long time_steps = 16;
  /// Input encoding for each gradient query.
  snn::Encoding encoding = snn::Encoding::kRate;
  std::uint64_t seed = 99;
  long batch_size = 64;
};

/// Workbench-derived inputs of an event-dataset craft.
struct EventCraftContext {
  /// Frame bins the victim/gradient model was trained with.
  long time_bins = 20;
  std::uint64_t seed = 77;
};

/// A named adversarial-perturbation family. Implementations are immutable
/// after construction and safe to share across threads.
class Attack {
 public:
  virtual ~Attack();

  /// Canonical display name ("PGD", "Sparse", ...) — also the registry key.
  virtual std::string name() const = 0;
  /// One-line description for docs/CLIs.
  virtual std::string description() const = 0;
  /// Declared parameters; overrides outside this schema are rejected.
  virtual std::vector<ParamSpec> param_schema() const { return {}; }

  /// Whether the attack applies to static image batches / event datasets.
  virtual bool supports_static() const { return false; }
  virtual bool supports_events() const { return false; }

  /// Crafts adversarial images from a clean [B, C, H, W] batch against the
  /// accurate model. Throws std::invalid_argument when the attack does not
  /// support static inputs.
  virtual Tensor CraftStatic(const snn::Network& net, const Tensor& images,
                             std::span<const int> labels,
                             const StaticCraftContext& ctx,
                             const ParamMap& params) const;

  /// Crafts an adversarial event dataset against the accurate model
  /// (model-free attacks ignore `net`). Throws std::invalid_argument when
  /// the attack does not support event inputs.
  virtual data::EventDataset CraftEvents(const snn::Network& net,
                                         const data::EventDataset& dataset,
                                         const EventCraftContext& ctx,
                                         const ParamMap& params) const;

  /// Model-corruption capability: a fault attack perturbs the *victim
  /// model* rather than the input. Its CraftStatic/CraftEvents pass the
  /// clean data through (validating params), and the scenario engines
  /// clone each evaluated variant and apply FaultFromParams' spec before
  /// measuring — clone-then-corrupt, so the const-model contract above
  /// still holds and cached crafted sets stay fault-free.
  virtual bool corrupts_model() const { return false; }

  /// The fault this attack's params describe. Only meaningful when
  /// corrupts_model(); the base implementation throws.
  virtual faults::FaultSpec FaultFromParams(const ParamMap& params) const;

  /// Validates `overrides` against the schema and fills missing entries
  /// with defaults. Unknown keys throw std::invalid_argument naming the
  /// declared parameters. Implementations call this first; scenario specs
  /// call it up front so a typo fails before any training happens.
  ParamMap ResolveParams(const ParamMap& overrides) const;
};

/// String-keyed attack registry. Built-in attacks (none, PGD, BIM, Sparse,
/// Frame, Corner, Dash) are registered on first access; extensions register
/// at startup or test setup. Lookups after registration are cheap and
/// thread-safe; concurrent Register calls are serialized.
class AttackRegistry {
 public:
  /// The process-wide registry, with built-ins already registered.
  static AttackRegistry& Global();

  /// Registers an attack under its name(); throws on duplicates.
  void Register(std::unique_ptr<Attack> attack);

  /// Lookup; throws std::invalid_argument listing every registered name
  /// when `name` is unknown.
  const Attack& Get(std::string_view name) const;

  /// Lookup; nullptr when unknown.
  const Attack* Find(std::string_view name) const;

  /// Registered names in registration order (built-ins first, in the
  /// canonical order above).
  std::vector<std::string> Names() const;

 private:
  AttackRegistry() = default;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Attack>> attacks_;  // registration order
  std::map<std::string, const Attack*, std::less<>> by_name_;
};

/// Shorthand for AttackRegistry::Global().Get(name).
const Attack& GetAttack(std::string_view name);

/// Shorthand for AttackRegistry::Global().Names().
std::vector<std::string> RegisteredAttackNames();

}  // namespace axsnn::attacks
