// Neuromorphic adversarial attacks on DVS event streams: Sparse and Frame.
//
// Gradient-based pixel attacks do not transfer to event data (Section II of
// the paper), so the neuromorphic experiments use the two attacks of
// Marchisio et al., "DVS-Attacks" (IJCNN 2021), which the paper adopts:
//
//  * Sparse Attack — stealthy, loss-guided: iteratively injects a small
//    number of events at the spatio-temporal locations whose frame-space
//    loss gradient is largest, until the classifier flips or the iteration
//    budget is exhausted.
//  * Frame Attack — simple but strong: injects events at every boundary
//    pixel of the sensor across the whole recording, corrupting each binned
//    frame with a bright border.
#pragma once

#include <cstdint>

#include "data/event.hpp"
#include "snn/network.hpp"

namespace axsnn::attacks {

/// Sparse attack parameters.
struct SparseAttackConfig {
  /// Maximum loss-gradient iterations per stream.
  long max_iterations = 12;
  /// Events injected per iteration.
  long events_per_iteration = 24;
  /// Time bins used to frame the stream for the victim / gradient model
  /// (must match the bins the classifier was trained with).
  long time_bins = 20;
  /// Minimum Chebyshev distance between events injected in the same
  /// iteration and bin — the attack's stealthiness constraint: spreading
  /// the perturbation keeps individual events visually inconspicuous.
  long min_spacing = 6;
  std::uint64_t seed = 77;
};

/// Crafts a sparse-attack perturbation of one stream against `net`
/// (white-box in frame space). `label` is the true class. The returned
/// stream contains the original events plus injected adversarial events.
data::EventStream SparseAttack(snn::Network& net,
                               const data::EventStream& stream, int label,
                               const SparseAttackConfig& cfg);

/// Attacks every stream of a dataset; parallel over streams.
data::EventDataset SparseAttackDataset(snn::Network& net,
                                       const data::EventDataset& dataset,
                                       const SparseAttackConfig& cfg);

/// Frame attack parameters.
struct FrameAttackConfig {
  /// Interval between injected boundary events (ms).
  float period_ms = 2.0f;
  /// Thickness of the attacked border in pixels.
  long border = 1;
  /// Inject both polarities (true) or ON only (false).
  bool both_polarities = true;
};

/// Injects boundary events across the whole recording. Model-free.
data::EventStream FrameAttack(const data::EventStream& stream,
                              const FrameAttackConfig& cfg);

/// Attacks every stream of a dataset.
data::EventDataset FrameAttackDataset(const data::EventDataset& dataset,
                                      const FrameAttackConfig& cfg);

}  // namespace axsnn::attacks
