#include "attacks/extra_neuromorphic.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/parallel_for.hpp"
#include "tensor/check.hpp"

namespace axsnn::attacks {

namespace {

void SortByTime(data::EventStream& s) {
  std::sort(s.events.begin(), s.events.end(),
            [](const data::Event& a, const data::Event& b) {
              return a.t < b.t;
            });
}

}  // namespace

data::EventStream CornerAttack(const data::EventStream& stream,
                               const CornerAttackConfig& cfg) {
  AXSNN_CHECK(cfg.patch > 0, "corner patch must be positive");
  AXSNN_CHECK(cfg.period_ms > 0.0f, "period_ms must be positive");
  data::EventStream attacked = stream;
  const long w = stream.width;
  const long h = stream.height;
  const long p = std::min({cfg.patch, w, h});

  std::vector<std::pair<std::int16_t, std::int16_t>> sites;
  for (long dy = 0; dy < p; ++dy) {
    for (long dx = 0; dx < p; ++dx) {
      sites.emplace_back(static_cast<std::int16_t>(dx),
                         static_cast<std::int16_t>(dy));
      sites.emplace_back(static_cast<std::int16_t>(w - 1 - dx),
                         static_cast<std::int16_t>(dy));
      sites.emplace_back(static_cast<std::int16_t>(dx),
                         static_cast<std::int16_t>(h - 1 - dy));
      sites.emplace_back(static_cast<std::int16_t>(w - 1 - dx),
                         static_cast<std::int16_t>(h - 1 - dy));
    }
  }

  for (float t = cfg.period_ms * 0.5f; t < stream.duration_ms;
       t += cfg.period_ms) {
    for (const auto& [x, y] : sites) {
      attacked.events.push_back({x, y, std::int8_t{1}, t});
      if (cfg.both_polarities)
        attacked.events.push_back({x, y, std::int8_t{-1}, t});
    }
  }
  SortByTime(attacked);
  return attacked;
}

data::EventDataset CornerAttackDataset(const data::EventDataset& dataset,
                                       const CornerAttackConfig& cfg) {
  data::EventDataset out = dataset;
  const long n = dataset.size();
  runtime::ParallelFor(0, n, [&](long i) {
    out.streams[static_cast<std::size_t>(i)] =
        CornerAttack(dataset.streams[static_cast<std::size_t>(i)], cfg);
  });
  return out;
}

data::EventStream DashAttack(const data::EventStream& stream,
                             const DashAttackConfig& cfg) {
  AXSNN_CHECK(cfg.patch > 0, "dash patch must be positive");
  AXSNN_CHECK(cfg.speed_px_per_ms > 0.0f, "dash speed must be positive");
  AXSNN_CHECK(cfg.period_ms > 0.0f, "period_ms must be positive");
  AXSNN_CHECK(cfg.lane >= 0.0f && cfg.lane <= 1.0f, "lane must be in [0,1]");
  data::EventStream attacked = stream;
  const long w = stream.width;
  const long h = stream.height;
  const long y0 = std::min<long>(
      h - cfg.patch,
      static_cast<long>(cfg.lane * static_cast<float>(h - cfg.patch)));

  for (float t = cfg.period_ms * 0.5f; t < stream.duration_ms;
       t += cfg.period_ms) {
    // The dash wraps around the sensor as it sweeps.
    const long x0 = static_cast<long>(t * cfg.speed_px_per_ms) %
                    std::max(1L, w - cfg.patch + 1);
    for (long dy = 0; dy < cfg.patch; ++dy) {
      for (long dx = 0; dx < cfg.patch; ++dx) {
        // Leading edge brightens (ON), trailing edge darkens (OFF) — the
        // signature of a genuine moving object, which is what makes the
        // dash hard to filter.
        attacked.events.push_back(
            {static_cast<std::int16_t>(x0 + dx),
             static_cast<std::int16_t>(y0 + dy),
             dx == cfg.patch - 1 ? std::int8_t{1} : std::int8_t{-1}, t});
      }
    }
  }
  SortByTime(attacked);
  return attacked;
}

data::EventDataset DashAttackDataset(const data::EventDataset& dataset,
                                     const DashAttackConfig& cfg) {
  data::EventDataset out = dataset;
  const long n = dataset.size();
  runtime::ParallelFor(0, n, [&](long i) {
    out.streams[static_cast<std::size_t>(i)] =
        DashAttack(dataset.streams[static_cast<std::size_t>(i)], cfg);
  });
  return out;
}

}  // namespace axsnn::attacks
