// Micro-benchmarks (google-benchmark) for the SNN compute kernels: the
// per-layer costs that dominate every experiment in this repo. Useful for
// tracking kernel regressions independently of the experiment harnesses.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "data/dvs_gesture.hpp"
#include "kernels/cpu_features.hpp"
#include "kernels/dispatch.hpp"
#include "snn/conv2d.hpp"
#include "snn/dense.hpp"
#include "snn/encoding.hpp"
#include "snn/lif_layer.hpp"
#include "snn/models.hpp"

namespace {

using namespace axsnn;

/// Spike-like activations at density_pct % (bench::MakeSpikes adapter for
/// google-benchmark's integer Args axis).
Tensor MakeSpikesPct(Shape shape, long density_pct, Rng& rng) {
  return bench::MakeSpikes(std::move(shape),
                           static_cast<float>(density_pct) / 100.0f, rng);
}

/// Mode axis for the dispatch benchmarks (KernelMode enumerator values).
constexpr long kModeNaive = static_cast<long>(kernels::KernelMode::kNaive);
constexpr long kModeGemm = static_cast<long>(kernels::KernelMode::kGemm);
constexpr long kModeSparse = static_cast<long>(kernels::KernelMode::kSparse);
constexpr long kModeSimd = static_cast<long>(kernels::KernelMode::kSimd);

/// Emitted once so benchmark logs say which ISA tier the simd rows ran on
/// (google-benchmark context lines prefix the output table).
const bool g_report_isa = [] {
  benchmark::AddCustomContext(
      "axsnn_simd_tier",
      kernels::SimdTierName(kernels::ActiveSimdTier()));
  return true;
}();

void BM_Conv2dForward(benchmark::State& state) {
  const long channels = state.range(0);
  Rng rng(1);
  snn::Conv2d conv("c", channels, channels * 2, 3, 1, rng);
  Tensor x = Tensor::Uniform({8, 8, channels, 16, 16}, 0.0f, 1.0f, rng);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_Conv2dForward)->Arg(4)->Arg(8)->Arg(16);

void BM_Conv2dForwardInt8(benchmark::State& state) {
  // Same workload as BM_Conv2dForward, executed on the int8 backend
  // (per-output-channel scales, int32 accumulation).
  const long channels = state.range(0);
  Rng rng(1);
  snn::Conv2d conv("c", channels, channels * 2, 3, 1, rng);
  conv.EnableInt8Kernel();
  Tensor x = Tensor::Uniform({8, 8, channels, 16, 16}, 0.0f, 1.0f, rng);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_Conv2dForwardInt8)->Arg(4)->Arg(8)->Arg(16);

void BM_Conv2dBackward(benchmark::State& state) {
  const long channels = state.range(0);
  Rng rng(2);
  snn::Conv2d conv("c", channels, channels * 2, 3, 1, rng);
  Tensor x = Tensor::Uniform({8, 8, channels, 16, 16}, 0.0f, 1.0f, rng);
  Tensor y = conv.Forward(x, true);
  Tensor g = Tensor::Uniform(y.shape(), -1.0f, 1.0f, rng);
  for (auto _ : state) {
    conv.ZeroGrad();
    Tensor gi = conv.Backward(g);
    benchmark::DoNotOptimize(gi.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_Conv2dBackward)->Arg(4)->Arg(8);

void BM_LifForward(benchmark::State& state) {
  const long t_steps = state.range(0);
  Rng rng(3);
  snn::LifParams params;
  snn::LifLayer lif("l", params);
  Tensor x = Tensor::Uniform({t_steps, 32, 1024}, 0.0f, 2.0f, rng);
  for (auto _ : state) {
    Tensor s = lif.Forward(x, false);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_LifForward)->Arg(16)->Arg(32)->Arg(80);

void BM_LifBackward(benchmark::State& state) {
  const long t_steps = state.range(0);
  Rng rng(4);
  snn::LifParams params;
  snn::LifLayer lif("l", params);
  Tensor x = Tensor::Uniform({t_steps, 32, 1024}, 0.0f, 2.0f, rng);
  lif.Forward(x, true);
  Tensor g = Tensor::Uniform(x.shape(), -1.0f, 1.0f, rng);
  for (auto _ : state) {
    Tensor gi = lif.Backward(g);
    benchmark::DoNotOptimize(gi.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_LifBackward)->Arg(16)->Arg(32);

void BM_DenseForward(benchmark::State& state) {
  Rng rng(5);
  snn::Dense fc("fc", 256, 64, rng);
  Tensor x = Tensor::Uniform({16, 32, 256}, 0.0f, 1.0f, rng);
  for (auto _ : state) {
    Tensor y = fc.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_DenseForward);

void BM_DenseForwardInt8(benchmark::State& state) {
  // Same workload as BM_DenseForward on the int8 backend.
  Rng rng(5);
  snn::Dense fc("fc", 256, 64, rng);
  fc.EnableInt8Kernel();
  Tensor x = Tensor::Uniform({16, 32, 256}, 0.0f, 1.0f, rng);
  for (auto _ : state) {
    Tensor y = fc.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_DenseForwardInt8);

void BM_Conv2dDispatch(benchmark::State& state) {
  // Kernel-dispatch sweep: range(0) = kernel mode, range(1) = spike
  // density [%]. Pins one path globally so the axes stay meaningful under
  // the CI kernel-mode matrix.
  kernels::ScopedKernelMode force(
      static_cast<kernels::KernelMode>(state.range(0)));
  Rng rng(7);
  snn::Conv2d conv("c", 8, 16, 3, 1, rng);
  Tensor x = MakeSpikesPct({8, 16, 8, 16, 16}, state.range(1), rng);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_Conv2dDispatch)
    ->Args({kModeNaive, 10})
    ->Args({kModeGemm, 10})
    ->Args({kModeSparse, 10})
    ->Args({kModeSimd, 10})
    ->Args({kModeNaive, 100})
    ->Args({kModeGemm, 100})
    ->Args({kModeSparse, 100})
    ->Args({kModeSimd, 100});

void BM_Conv2dDispatchInt8(benchmark::State& state) {
  // Same sweep on the int8 backend.
  kernels::ScopedKernelMode force(
      static_cast<kernels::KernelMode>(state.range(0)));
  Rng rng(7);
  snn::Conv2d conv("c", 8, 16, 3, 1, rng);
  conv.EnableInt8Kernel();
  Tensor x = MakeSpikesPct({8, 16, 8, 16, 16}, state.range(1), rng);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_Conv2dDispatchInt8)
    ->Args({kModeNaive, 10})
    ->Args({kModeGemm, 10})
    ->Args({kModeSparse, 10})
    ->Args({kModeSimd, 10})
    ->Args({kModeNaive, 100})
    ->Args({kModeSimd, 100});

void BM_DenseDispatch(benchmark::State& state) {
  kernels::ScopedKernelMode force(
      static_cast<kernels::KernelMode>(state.range(0)));
  Rng rng(7);
  snn::Dense fc("fc", 512, 128, rng);
  Tensor x = MakeSpikesPct({16, 64, 512}, state.range(1), rng);
  for (auto _ : state) {
    Tensor y = fc.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_DenseDispatch)
    ->Args({kModeNaive, 10})
    ->Args({kModeGemm, 10})
    ->Args({kModeSparse, 10})
    ->Args({kModeSimd, 10})
    ->Args({kModeGemm, 100})
    ->Args({kModeSimd, 100});

void BM_RateEncode(benchmark::State& state) {
  Rng rng(6);
  Tensor images = Tensor::Uniform({32, 1, 16, 16}, 0.0f, 1.0f, rng);
  for (auto _ : state) {
    Tensor spikes = snn::EncodeRate(images, 32, rng);
    benchmark::DoNotOptimize(spikes.data());
  }
  state.SetItemsProcessed(state.iterations() * images.numel() * 32);
}
BENCHMARK(BM_RateEncode);

void BM_DvsSimulation(benchmark::State& state) {
  data::DvsGestureOptions opts;
  Rng rng(7);
  for (auto _ : state) {
    data::EventStream s = data::SimulateGesture(0, opts, rng);
    benchmark::DoNotOptimize(s.events.data());
  }
}
BENCHMARK(BM_DvsSimulation);

void BM_EventBinning(benchmark::State& state) {
  data::DvsGestureOptions opts;
  Rng rng(8);
  data::EventStream s = data::SimulateGesture(3, opts, rng);
  for (auto _ : state) {
    Tensor frames = data::BinEvents(s, 24);
    benchmark::DoNotOptimize(frames.data());
  }
  state.SetItemsProcessed(state.iterations() * s.size());
}
BENCHMARK(BM_EventBinning);

void BM_StaticNetForward(benchmark::State& state) {
  snn::StaticNetOptions opts;
  snn::Network net = snn::BuildStaticNet(opts);
  Rng rng(9);
  Tensor x = Tensor::Uniform({12, 32, 1, 16, 16}, 0.0f, 1.0f, rng);
  for (auto _ : state) {
    Tensor y = net.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_StaticNetForward);

}  // namespace

BENCHMARK_MAIN();
