// Scenario-golden harness: a miniature declarative Fig.-2 grid whose
// rendered report is fully deterministic (seeded training, bit-identical
// kernels at any pool size, no timing lines). CI runs this binary and
// byte-diffs its stdout against bench/golden/scenario_fig2_mini.golden, so
// a refactor of the scenario engine, the attack registry or the workbench
// plumbing can never silently change experiment results.
//
// The distributed-execution flags extend the gate: CI also runs the grid as
// two shards into a shared --cache-dir, merges with --resume, and byte-
// diffs the merged report against the *same* golden — the report prints the
// journal's cumulative totals, which for a merged (or warm) run equal the
// single-process counters. The per-run counters land in --stats-out, where
// the cache-reuse gate asserts a warm rerun computes nothing.
//
// Regenerating the golden (only after an *intentional* numerical change):
//   ./bench_scenario_golden > ../bench/golden/scenario_fig2_mini.golden
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "eval/report.hpp"
#include "scenario/store.hpp"

using namespace axsnn;

int main(int argc, char** argv) {
  const scenario::ShardRunnerOptions cli = bench::ParseCliOrExit(argc, argv);
  core::StaticWorkbench workbench = bench::MiniFig2Workbench();
  scenario::StaticScenarioEngine engine(workbench);
  std::unique_ptr<scenario::StaticScenarioStore> store;
  if (!cli.cache_dir.empty()) {
    store = std::make_unique<scenario::StaticScenarioStore>(cli.cache_dir,
                                                            workbench);
    engine.set_store(store.get());
  }

  scenario::ScenarioGrid grid;
  grid.v_thresholds = {0.25f};
  grid.time_steps = {8};
  grid.attacks = {scenario::AttackSpec{"PGD", {}}};
  grid.epsilons = {0.0, 0.05, 0.1};
  grid.precisions = {approx::Precision::kFp32, approx::Precision::kInt8};
  grid.levels = {0.0, 0.01};

  const scenario::ScenarioOutcome outcome =
      engine.Run(grid, cli.run_options());

  std::cout << "== scenario golden: fig2 mini grid ==\n"
            << "cells: " << grid.CellCount()
            << ", trained models: " << outcome.stats.total_trained_models
            << ", crafted sets: " << outcome.stats.total_crafted_sets << "\n"
            << "train accuracy: "
            << eval::FormatValue(outcome.train_accuracy_pct.front(), 2)
            << "%\n";

  std::vector<eval::Series> series;
  for (std::size_t ip = 0; ip < grid.precisions.size(); ++ip) {
    for (std::size_t il = 0; il < grid.levels.size(); ++il) {
      eval::Series s{approx::PrecisionName(grid.precisions[ip]) + "/lvl=" +
                         eval::FormatValue(grid.levels[il], 2),
                     {}};
      for (std::size_t ie = 0; ie < grid.epsilons.size(); ++ie)
        s.values.push_back(outcome.Robustness(0, 0, 0, ie, 0, ip, il, 0));
      series.push_back(std::move(s));
    }
  }
  eval::PrintSeriesTable(std::cout,
                         "mini Fig. 2: PGD accuracy [%] by (precision, level)",
                         "eps", grid.epsilons, series);
  bench::WriteScenarioStats(cli.stats_out, outcome.stats);
  return 0;
}
