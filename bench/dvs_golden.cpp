// DVS-golden harness: a miniature Fig.-7b grid whose rendered report is
// fully deterministic (seeded synthetic gestures, seeded training, no
// timing lines). CI runs this binary under AXSNN_EVENT_PATH=off and =on
// and byte-diffs both outputs against bench/golden/fig7b_dvs_mini.golden:
// the dense reference path and the compressed spike-stream event path must
// produce the same report to the byte, so neither a temporal-pipeline
// refactor nor the skip-on-silent fast path can silently change results.
//
// Regenerating the golden (only after an *intentional* numerical change):
//   ./bench_dvs_golden > ../bench/golden/fig7b_dvs_mini.golden
#include <iostream>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "eval/report.hpp"

using namespace axsnn;

int main() {
  core::DvsWorkbench::Options opts;
  opts.train.epochs = 2;
  opts.time_bins = 8;
  opts.eval_batch = 16;
  core::DvsWorkbench workbench(bench::MakeDvsTrain(44), bench::MakeDvsTest(22),
                               opts);
  const core::DvsWorkbench::TrainedModel model = workbench.Train(1.0f);

  // No path-identifying output: the whole point is that the dense and event
  // path renditions of this report are byte-for-byte the same file.
  std::cout << "== dvs golden: fig7b mini grid ==\n"
            << "time bins: " << opts.time_bins << ", train accuracy: "
            << eval::FormatValue(model.train_accuracy_pct, 2) << "%\n";

  const data::EventDataset frame_attacked = workbench.Craft(model, "Frame");

  const std::vector<core::VariantSpec> specs = {
      {approx::Precision::kFp32, 0.0, std::nullopt},
      {approx::Precision::kFp32, 0.1, std::nullopt},
      {approx::Precision::kInt8, 0.0, std::nullopt},
      {approx::Precision::kInt8, 0.1, std::nullopt},
  };
  const std::vector<float> clean =
      workbench.EvaluateVariants(model, workbench.test_set(), std::nullopt,
                                 specs);
  const std::vector<float> attacked =
      workbench.EvaluateVariants(model, frame_attacked, std::nullopt, specs);

  std::vector<std::vector<std::string>> rows;
  const char* names[] = {"AccSNN/fp32", "AxSNN(0.1)/fp32", "AccSNN/int8",
                         "AxSNN(0.1)/int8"};
  for (std::size_t i = 0; i < specs.size(); ++i)
    rows.push_back({names[i], eval::FormatValue(clean[i]),
                    eval::FormatValue(attacked[i])});
  eval::PrintTable(std::cout,
                   "mini Fig. 7b: DVS accuracy [%] (clean / frame attack)",
                   {"variant", "no attack", "frame"}, rows);
  return 0;
}
