// Ablation — AQF parameter sensitivity (Algorithm 2's constants s, T1, T2).
//
// The paper fixes (s, T1, T2) = (2, 5, 50). This ablation measures, with
// event-level ground truth from the simulator, how those choices trade
// noise removal against signal retention: streams are generated noise-free,
// known noise events are injected, and the filter's per-event decisions are
// scored. No training needed — this isolates the filter itself.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/aqf.hpp"
#include "eval/report.hpp"

using namespace axsnn;

namespace {

/// Injected-noise ground truth for one stream.
struct LabelledStream {
  data::EventStream stream;    // signal + noise, time-sorted
  std::vector<char> is_noise;  // aligned with stream.events
};

LabelledStream MakeLabelled(int cls, std::uint64_t seed) {
  data::DvsGestureOptions opts;
  opts.noise_rate_hz = 0.0f;  // signal only from the simulator
  opts.seed = seed;
  Rng rng(seed);
  data::EventStream signal = data::SimulateGesture(cls, opts, rng);

  // Inject uniform uncorrelated noise: 15% of the signal volume.
  const long noise_count = signal.size() * 15 / 100;
  std::vector<std::pair<data::Event, char>> tagged;
  tagged.reserve(signal.events.size() + noise_count);
  for (const data::Event& e : signal.events) tagged.push_back({e, 0});
  for (long i = 0; i < noise_count; ++i) {
    data::Event e;
    e.x = static_cast<std::int16_t>(rng.UniformInt(opts.width));
    e.y = static_cast<std::int16_t>(rng.UniformInt(opts.height));
    e.polarity = rng.Bernoulli(0.5) ? 1 : -1;
    e.t = static_cast<float>(rng.Uniform(0.0, opts.duration_ms));
    tagged.push_back({e, 1});
  }
  std::sort(tagged.begin(), tagged.end(),
            [](const auto& a, const auto& b) { return a.first.t < b.first.t; });

  LabelledStream out;
  out.stream.width = opts.width;
  out.stream.height = opts.height;
  out.stream.duration_ms = opts.duration_ms;
  for (const auto& [e, noise] : tagged) {
    out.stream.events.push_back(e);
    out.is_noise.push_back(noise);
  }
  return out;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "AQF parameter ablation (s, T1, T2)",
      "the paper's (2, 5, 50) setting removes noise while retaining signal");

  // A pool of labelled streams across classes.
  std::vector<LabelledStream> streams;
  for (int cls = 0; cls < data::kGestureClasses; ++cls)
    streams.push_back(MakeLabelled(cls, 500 + cls));

  std::vector<std::vector<std::string>> rows;
  for (int s : {1, 2, 3}) {
    for (int t1 : {3, 5, 8}) {
      for (float t2 : {20.0f, 50.0f, 100.0f}) {
        core::AqfConfig cfg;
        cfg.spatial_window = s;
        cfg.activity_threshold = t1;
        cfg.temporal_threshold_ms = t2;
        cfg.quantization_step_s = 0.0f;

        long noise_total = 0, noise_removed = 0;
        long signal_total = 0, signal_kept = 0;
        for (const LabelledStream& ls : streams) {
          data::EventStream filtered = core::AqfFilter(ls.stream, cfg);
          // Count survivors per category by matching multiset membership.
          std::vector<data::Event> kept = filtered.events;
          for (std::size_t i = 0; i < ls.stream.events.size(); ++i) {
            const bool noise = ls.is_noise[i] != 0;
            auto it = std::find(kept.begin(), kept.end(),
                                ls.stream.events[i]);
            const bool survived = it != kept.end();
            if (survived) kept.erase(it);
            if (noise) {
              ++noise_total;
              if (!survived) ++noise_removed;
            } else {
              ++signal_total;
              if (survived) ++signal_kept;
            }
          }
        }
        rows.push_back(
            {std::to_string(s), std::to_string(t1),
             eval::FormatValue(t2, 0),
             eval::FormatValue(100.0 * noise_removed / noise_total),
             eval::FormatValue(100.0 * signal_kept / signal_total)});
      }
    }
  }

  eval::PrintTable(std::cout, "AQF ablation: per-event filter quality",
                   {"s", "T1", "T2 [ms]", "noise removed [%]",
                    "signal kept [%]"},
                   rows);
  std::cout << "paper setting: s=2, T1=5, T2=50\n";
  return 0;
}
