// Micro-benchmark for the runtime subsystem:
//  1. ParallelFor scaling — one conv-forward-heavy workload timed at pool
//     sizes 1, 2, 4 and hardware_concurrency;
//  2. allocation behaviour — heap allocations per forward pass for the
//     allocating Network::Forward vs the workspace-backed ForwardShared
//     (steady state), counted with an operator-new hook local to this
//     binary;
//  3. kernel backends — fp32 vs int8 (per-output-channel scales, int32
//     accumulation) forward throughput of the Conv2d and Dense kernels;
//  4. kernel dispatch — naive vs gemm vs sparse vs simd vs auto throughput
//     at a representative spike density (10% nonzeros), fp32 and int8, for
//     the sparsity-aware dispatch engine (src/kernels/). Also asserts the
//     dispatch contract that auto int8 is never slower than naive (within a
//     10% timing-noise margin) — the regression this harness exists to
//     catch; a violation fails the process;
//  4b. SIMD tier sweep — the same forced-simd workloads at every ISA tier
//      the machine supports (capped via ScopedSimdTier), recorded per tier
//      so BENCH_runtime.json baselines are comparable across runners;
//  5. scenario grids — wall-clock of a miniature fig2-style ScenarioGrid
//     with and without the engine's trained-model cache (the cache is what
//     makes grids sharing structural cells cheap);
//  5b. distributed scenario execution — the same miniature grid cold
//      (empty artifact store), warm (fresh process image, artifacts on
//      disk) and resumed (journal replay). Asserts the distributed-
//      execution contract that warm and resumed runs recompute nothing
//      (0 trainings, 0 crafts); a violation fails the process. The
//      resume-vs-cold ratio is the checkpoint/resume value proposition;
//  6. event pipeline — DVS end-to-end (events -> binning -> predictions)
//     wall-clock of the dense [N, T, C, H, W] reference path vs the
//     compressed spike-stream event path, swept over the silent-timestep
//     fraction (events time-compressed into the head of the recording), with
//     the runner's skip-rate counters. The event path's value proposition is
//     the >= 2x speedup at >= 90% silent steps recorded here.
//
// Prints a human-readable table and emits BENCH_runtime.json next to the
// working directory so baselines can be recorded in-tree.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "data/dvs_gesture.hpp"
#include "data/event.hpp"
#include "kernels/cpu_features.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/spike_stream.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "scenario/engine.hpp"
#include "scenario/store.hpp"
#include "snn/conv2d.hpp"
#include "snn/dense.hpp"
#include "snn/event_path.hpp"
#include "snn/event_runner.hpp"
#include "snn/inference.hpp"
#include "snn/models.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

// --- allocation counting (this translation unit only) ------------------------

namespace {
std::atomic<long> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// The workspace arenas allocate through the aligned overloads
// (runtime/aligned.hpp), which must be hooked too or their (first-pass)
// allocations would go uncounted.
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t al = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(al, (size + al - 1) & ~(al - 1))) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace axsnn {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

snn::Network MakeBenchNet() {
  snn::StaticNetOptions opts;
  opts.height = 16;
  opts.width = 16;
  return snn::BuildStaticNet(opts);
}

/// One forward workload: [T=8, B=16, 1, 16, 16] through the static net.
Tensor MakeBenchInput() {
  Rng rng(123);
  return Tensor::Uniform({8, 16, 1, 16, 16}, 0.0f, 1.0f, rng);
}

struct ScalingPoint {
  int threads;
  double seconds_per_pass;
};

std::vector<ScalingPoint> RunScaling(int repeats) {
  std::vector<int> sizes = {1, 2, 4};
  const int hw = runtime::DefaultThreadCount();
  if (hw > 4) sizes.push_back(hw);

  std::vector<ScalingPoint> points;
  snn::Network net = MakeBenchNet();
  Tensor x = MakeBenchInput();
  for (int threads : sizes) {
    runtime::SetGlobalThreads(threads);
    net.ForwardShared(x, false);  // warm up workspace + pool
    const auto start = Clock::now();
    for (int r = 0; r < repeats; ++r) net.ForwardShared(x, false);
    points.push_back({threads, SecondsSince(start) / repeats});
  }
  runtime::SetGlobalThreads(0);
  return points;
}

struct AllocationCounts {
  long allocating_forward;
  long shared_first_pass;
  long shared_steady_state;
};

AllocationCounts CountAllocations() {
  // Pool size 1 keeps the count deterministic (no worker-thread allocs).
  runtime::SetGlobalThreads(1);
  snn::Network net = MakeBenchNet();
  Tensor x = MakeBenchInput();
  AllocationCounts counts{};

  long before = g_allocations.load();
  Tensor y = net.Forward(x, false);
  counts.allocating_forward = g_allocations.load() - before;

  snn::Network shared_net = MakeBenchNet();
  before = g_allocations.load();
  shared_net.ForwardShared(x, false);
  counts.shared_first_pass = g_allocations.load() - before;

  before = g_allocations.load();
  for (int r = 0; r < 10; ++r) shared_net.ForwardShared(x, false);
  counts.shared_steady_state = (g_allocations.load() - before) / 10;

  runtime::SetGlobalThreads(0);
  return counts;
}

struct KernelTimings {
  double conv_fp32_ms;
  double conv_int8_ms;
  double dense_fp32_ms;
  double dense_int8_ms;
};

/// Times one layer's forward pass, steady-state (warmed output buffer).
template <typename LayerT>
double MsPerForward(LayerT& layer, const Tensor& x, int repeats) {
  Tensor out;
  layer.ForwardInto(x, out, false);  // warm up
  const auto start = Clock::now();
  for (int r = 0; r < repeats; ++r) layer.ForwardInto(x, out, false);
  return SecondsSince(start) / repeats * 1e3;
}

/// fp32 vs int8 forward timings for the conv/dense kernel shapes that
/// dominate the sweep experiments.
KernelTimings RunKernelComparison(int repeats) {
  KernelTimings t{};
  Rng rng(7);
  snn::Conv2d conv("c", 8, 16, 3, 1, rng);
  Tensor cx = Tensor::Uniform({8, 16, 8, 16, 16}, 0.0f, 1.0f, rng);
  t.conv_fp32_ms = MsPerForward(conv, cx, repeats);
  conv.EnableInt8Kernel();
  t.conv_int8_ms = MsPerForward(conv, cx, repeats);

  snn::Dense fc("fc", 512, 128, rng);
  Tensor dx = Tensor::Uniform({16, 64, 512}, 0.0f, 1.0f, rng);
  t.dense_fp32_ms = MsPerForward(fc, dx, repeats);
  fc.EnableInt8Kernel();
  t.dense_int8_ms = MsPerForward(fc, dx, repeats);
  return t;
}

/// Per-mode timings for one layer/precision.
struct ModeTimings {
  double naive_ms;
  double gemm_ms;
  double sparse_ms;
  double simd_ms;  // forced kSimd (degrades to naive on scalar machines)
  double auto_ms;  // what the dispatcher actually picks
  double best_speedup() const {
    return naive_ms / std::min({gemm_ms, sparse_ms, simd_ms});
  }
};

struct DispatchTimings {
  double density;
  ModeTimings conv_fp32;
  ModeTimings conv_int8;
  ModeTimings dense_fp32;
  ModeTimings dense_int8;
};

/// Forces each path via ScopedKernelMode (precedence rule 1), so the
/// comparison stays meaningful even when AXSNN_KERNEL_MODE is exported —
/// as the CI kernel-mode matrix does.
template <typename LayerT>
ModeTimings TimeModes(LayerT& layer, const Tensor& x, int repeats) {
  ModeTimings t{};
  {
    kernels::ScopedKernelMode force(kernels::KernelMode::kNaive);
    t.naive_ms = MsPerForward(layer, x, repeats);
  }
  {
    kernels::ScopedKernelMode force(kernels::KernelMode::kGemm);
    t.gemm_ms = MsPerForward(layer, x, repeats);
  }
  {
    kernels::ScopedKernelMode force(kernels::KernelMode::kSparse);
    t.sparse_ms = MsPerForward(layer, x, repeats);
  }
  {
    kernels::ScopedKernelMode force(kernels::KernelMode::kSimd);
    t.simd_ms = MsPerForward(layer, x, repeats);
  }
  {
    kernels::ScopedKernelMode force(kernels::KernelMode::kAuto);
    t.auto_ms = MsPerForward(layer, x, repeats);
  }
  return t;
}

/// Sparsity-aware dispatch engine: naive vs gemm vs sparse throughput on
/// the same conv/dense shapes as RunKernelComparison, but with spike-like
/// inputs at the representative SNN density of 10% nonzeros.
DispatchTimings RunDispatchComparison(int repeats) {
  DispatchTimings t{};
  t.density = 0.10;
  Rng rng(7);
  snn::Conv2d conv("c", 8, 16, 3, 1, rng);
  Tensor cx = bench::MakeSpikes({8, 16, 8, 16, 16},
                                static_cast<float>(t.density), rng);
  t.conv_fp32 = TimeModes(conv, cx, repeats);
  conv.EnableInt8Kernel();
  t.conv_int8 = TimeModes(conv, cx, repeats);

  snn::Dense fc("fc", 512, 128, rng);
  Tensor dx =
      bench::MakeSpikes({16, 64, 512}, static_cast<float>(t.density), rng);
  t.dense_fp32 = TimeModes(fc, dx, repeats);
  fc.EnableInt8Kernel();
  t.dense_int8 = TimeModes(fc, dx, repeats);
  return t;
}

/// Forced-simd timings at one ISA tier (the active tier after capping).
struct SimdTierPoint {
  const char* tier;
  double conv_fp32_ms;
  double conv_int8_ms;
  double dense_fp32_ms;
  double dense_int8_ms;
};

/// Times the RunDispatchComparison workloads with the kernel mode pinned to
/// simd at every tier this machine can run: the detected tier, each lower
/// cap, and scalar (where forced simd degrades to the naive reference).
/// One row per tier makes BENCH baselines comparable across runners whose
/// CPUs differ — a VNNI row from one machine lines up with the VNNI row of
/// another.
std::vector<SimdTierPoint> RunSimdTierSweep(int repeats) {
  using kernels::SimdTier;
  std::vector<SimdTierPoint> points;
  const int detected = static_cast<int>(kernels::ActiveSimdTier());
  for (SimdTier cap : {SimdTier::kVnni, SimdTier::kAvx2, SimdTier::kScalar}) {
    if (static_cast<int>(cap) > detected) continue;
    kernels::ScopedSimdTier scoped(cap);
    kernels::ScopedKernelMode force(kernels::KernelMode::kSimd);
    SimdTierPoint p{};
    p.tier = kernels::SimdTierName(kernels::ActiveSimdTier());
    Rng rng(7);
    snn::Conv2d conv("c", 8, 16, 3, 1, rng);
    Tensor cx = bench::MakeSpikes({8, 16, 8, 16, 16}, 0.10f, rng);
    p.conv_fp32_ms = MsPerForward(conv, cx, repeats);
    conv.EnableInt8Kernel();
    p.conv_int8_ms = MsPerForward(conv, cx, repeats);
    snn::Dense fc("fc", 512, 128, rng);
    Tensor dx = bench::MakeSpikes({16, 64, 512}, 0.10f, rng);
    p.dense_fp32_ms = MsPerForward(fc, dx, repeats);
    fc.EnableInt8Kernel();
    p.dense_int8_ms = MsPerForward(fc, dx, repeats);
    points.push_back(p);
  }
  return points;
}

struct ScenarioGridTimings {
  long cells = 0;
  long units = 0;
  double with_cache_s = 0.0;
  double without_cache_s = 0.0;
  long trained_with_cache = 0;
  long trained_without_cache = 0;
  long train_cache_hits = 0;
};

/// Times one miniature fig2-style grid (1 structural cell, PGD at two
/// epsilons, two approximation levels) with the trained-model cache on and
/// off. Training dominates, so the uncached run pays it once per work unit
/// while the cached run pays it once per structural cell — the wall-clock
/// ratio is the cache's whole value proposition for the fig4-fig7 heatmap
/// grids (63 shared cells, 2 attacks each).
ScenarioGridTimings RunScenarioComparison() {
  core::StaticWorkbench workbench = bench::MiniFig2Workbench();

  scenario::ScenarioGrid grid;
  grid.v_thresholds = {0.25f};
  grid.time_steps = {8};
  grid.attacks = {scenario::AttackSpec{"PGD", {}}};
  grid.epsilons = {0.025, 0.05};
  grid.levels = {0.0, 0.01};

  ScenarioGridTimings t;
  t.cells = static_cast<long>(grid.CellCount());
  t.units = static_cast<long>(grid.epsilons.size());

  scenario::StaticScenarioEngine cached(workbench);
  const auto cached_out = cached.Run(grid);
  t.with_cache_s = cached_out.stats.wall_seconds;
  t.trained_with_cache = cached_out.stats.trained_models;
  t.train_cache_hits = cached_out.stats.train_cache_hits;

  scenario::StaticScenarioEngine uncached(workbench);
  uncached.set_model_cache_enabled(false);
  const auto uncached_out = uncached.Run(grid);
  t.without_cache_s = uncached_out.stats.wall_seconds;
  t.trained_without_cache = uncached_out.stats.trained_models;
  return t;
}

struct ScenarioDistTimings {
  long cells = 0;
  long units = 0;
  double cold_s = 0.0;    // empty store: train + craft + evaluate + journal
  double warm_s = 0.0;    // fresh engine, artifacts on disk: deserialize + eval
  double resume_s = 0.0;  // fresh engine, --resume: pure journal replay
  long cold_trained = 0;
  long cold_crafted = 0;
  long warm_trained = 0;
  long warm_crafted = 0;
  long warm_model_hits = 0;
  long warm_craft_hits = 0;
  long resume_trained = 0;
  long resume_crafted = 0;
  long resume_replayed = 0;
  /// The distributed-execution contract: warm and resumed runs never
  /// retrain or re-craft.
  bool zero_work_ok() const {
    return warm_trained == 0 && warm_crafted == 0 && resume_trained == 0 &&
           resume_crafted == 0;
  }
};

/// Times the RunScenarioComparison grid against a persistent artifact
/// store: cold (empty directory), then warm and resumed — each with a
/// fresh engine and a fresh store object, so nothing survives in memory
/// and the run models a restarted process. Warm reloads models/crafts and
/// re-evaluates; resume replays the unit journal outright and is the
/// headline restart speedup.
ScenarioDistTimings RunScenarioDist() {
  const std::string dir = "axsnn_dist_store.tmp";
  std::filesystem::remove_all(dir);
  core::StaticWorkbench workbench = bench::MiniFig2Workbench();

  scenario::ScenarioGrid grid;
  grid.v_thresholds = {0.25f};
  grid.time_steps = {8};
  grid.attacks = {scenario::AttackSpec{"PGD", {}}};
  grid.epsilons = {0.025, 0.05};
  grid.levels = {0.0, 0.01};

  ScenarioDistTimings t;
  t.cells = static_cast<long>(grid.CellCount());
  t.units = static_cast<long>(grid.epsilons.size());

  {
    scenario::StaticScenarioStore store(dir, workbench);
    scenario::StaticScenarioEngine engine(workbench);
    engine.set_store(&store);
    const auto out = engine.Run(grid);
    t.cold_s = out.stats.wall_seconds;
    t.cold_trained = out.stats.trained_models;
    t.cold_crafted = out.stats.crafted_sets;
  }
  {
    scenario::StaticScenarioStore store(dir, workbench);
    scenario::StaticScenarioEngine engine(workbench);
    engine.set_store(&store);
    const auto out = engine.Run(grid);
    t.warm_s = out.stats.wall_seconds;
    t.warm_trained = out.stats.trained_models;
    t.warm_crafted = out.stats.crafted_sets;
    t.warm_model_hits = out.stats.store_model_hits;
    t.warm_craft_hits = out.stats.store_craft_hits;
  }
  {
    scenario::StaticScenarioStore store(dir, workbench);
    scenario::StaticScenarioEngine engine(workbench);
    engine.set_store(&store);
    scenario::RunOptions options;
    options.resume = true;
    const auto out = engine.Run(grid, options);
    t.resume_s = out.stats.wall_seconds;
    t.resume_trained = out.stats.trained_models;
    t.resume_crafted = out.stats.crafted_sets;
    t.resume_replayed = out.stats.replayed_units;
  }
  std::filesystem::remove_all(dir);
  return t;
}

/// One silent-fraction sweep point of the DVS end-to-end comparison.
struct EventPipelinePoint {
  double silent_fraction_target = 0.0;  // requested fraction of silent steps
  double silent_fraction_actual = 0.0;  // measured from the packed stream
  long kernel_calls = 0;                // weight-layer kernels actually run
  long kernel_calls_skipped = 0;        // silent-step bias fills instead
  double dense_ms = 0.0;                // events -> BinDataset -> predictions
  double event_ms = 0.0;                // events -> BinRangePacked -> runner
  double speedup() const { return dense_ms / event_ms; }
};

/// DVS end-to-end wall-clock, dense vs event path, at several silent-step
/// fractions. Silence is induced physically: every event timestamp is
/// compressed into the first (1 - f) of the recording, so binning yields a
/// silent tail of ~f*T steps — the regime event cameras actually produce
/// (bursty motion, long stillness). Both paths compute bit-identical
/// predictions (pinned by tests/test_event_pipeline.cpp); only wall-clock
/// differs.
std::vector<EventPipelinePoint> RunEventPipeline(int repeats_arg) {
  const long kBins = 64;
  const long kBatch = 8;
  const int reps = std::max(2, repeats_arg / 10);  // whole-dataset passes

  data::DvsGestureOptions dopts;
  dopts.count = 16;
  dopts.width = 16;
  dopts.height = 16;
  dopts.seed = 909;
  const data::EventDataset base = data::MakeSyntheticDvsGesture(dopts);

  snn::DvsNetOptions nopts;
  nopts.height = 16;
  nopts.width = 16;
  snn::Network net = snn::BuildDvsNet(nopts);

  std::vector<EventPipelinePoint> points;
  for (double f : {0.0, 0.5, 0.9, 0.99}) {
    data::EventDataset ds = base;
    const float keep = static_cast<float>(1.0 - f);
    for (data::EventStream& s : ds.streams)
      for (data::Event& e : s.events) e.t *= keep;

    EventPipelinePoint p;
    p.silent_fraction_target = f;

    {  // dense reference: bin the whole dataset, predict over frames
      snn::ScopedEventPathMode scoped(snn::EventPathMode::kDense);
      Tensor frames = data::BinDataset(ds, kBins);  // warm-up pass
      snn::PredictTemporal(net, frames, kBatch);
      const auto start = Clock::now();
      for (int r = 0; r < reps; ++r) {
        Tensor pass_frames = data::BinDataset(ds, kBins);
        snn::PredictTemporal(net, pass_frames, kBatch);
      }
      p.dense_ms = SecondsSince(start) / reps * 1e3;
    }

    {  // event path: stream one packed batch at a time through the runner
      kernels::SpikeStream stream;
      snn::EventRunner runner(net);
      std::vector<int> preds;
      const auto one_pass = [&](bool record) {
        preds.clear();
        long silent = 0;
        for (long start = 0; start < ds.size(); start += kBatch) {
          const long count = std::min(kBatch, ds.size() - start);
          data::BinRangePacked(ds, start, start + count, kBins, stream);
          const Tensor& logits = runner.Run(stream);
          const long k = logits.dim(1);
          for (long i = 0; i < count; ++i) {
            const float* row = logits.data() + i * k;
            preds.push_back(
                static_cast<int>(std::max_element(row, row + k) - row));
          }
          if (record) {
            silent += runner.stats().silent_steps;
            p.kernel_calls += runner.stats().kernel_calls;
            p.kernel_calls_skipped += runner.stats().kernel_calls_skipped;
          }
        }
        if (record) {
          const long batches = (ds.size() + kBatch - 1) / kBatch;
          p.silent_fraction_actual =
              static_cast<double>(silent) / static_cast<double>(kBins * batches);
        }
      };
      one_pass(/*record=*/true);  // warm-up + counter capture
      const auto start = Clock::now();
      for (int r = 0; r < reps; ++r) one_pass(/*record=*/false);
      p.event_ms = SecondsSince(start) / reps * 1e3;
    }
    points.push_back(p);
  }
  return points;
}

}  // namespace
}  // namespace axsnn

int main(int argc, char** argv) {
  int repeats = 50;
  if (argc > 1) {
    // Full-string validation: "50x" or "" must not silently become 0 repeats.
    const auto parsed = axsnn::runtime::ParseLongStrict(argv[1]);
    if (!parsed || *parsed <= 0 || *parsed > 1000000) {
      std::fprintf(stderr,
                   "usage: %s [repeats]  (positive integer, got \"%s\")\n",
                   argv[0], argv[1]);
      return 2;
    }
    repeats = static_cast<int>(*parsed);
  }

  std::printf("== runtime micro-benchmark ==\n");
  std::printf("hardware threads: %d\n", axsnn::runtime::DefaultThreadCount());
  const auto& cpu = axsnn::kernels::DetectCpuFeatures();
  const char* simd_tier =
      axsnn::kernels::SimdTierName(axsnn::kernels::ActiveSimdTier());
  std::printf(
      "simd tier: %s (cpuid: avx2=%d fma=%d avx_vnni=%d avx512_vnni=%d)\n",
      simd_tier, cpu.avx2, cpu.fma, cpu.avx_vnni, cpu.avx512_vnni);

  const auto scaling = axsnn::RunScaling(repeats);
  const double base = scaling.front().seconds_per_pass;
  std::printf("\npool scaling (forward pass [8,16,1,16,16], %d repeats):\n",
              repeats);
  std::printf("  threads   ms/pass   speedup\n");
  for (const auto& p : scaling)
    std::printf("  %7d   %7.3f   %6.2fx\n", p.threads,
                p.seconds_per_pass * 1e3, base / p.seconds_per_pass);

  const auto counts = axsnn::CountAllocations();
  std::printf("\nheap allocations per forward pass:\n");
  std::printf("  Forward (allocating):        %ld\n",
              counts.allocating_forward);
  std::printf("  ForwardShared (first pass):  %ld\n",
              counts.shared_first_pass);
  std::printf("  ForwardShared (steady):      %ld\n",
              counts.shared_steady_state);

  const auto kernels = axsnn::RunKernelComparison(repeats);
  std::printf("\nkernel backends (forward, ms/pass):\n");
  std::printf("  conv2d  fp32 %7.3f   int8 %7.3f   speedup %5.2fx\n",
              kernels.conv_fp32_ms, kernels.conv_int8_ms,
              kernels.conv_fp32_ms / kernels.conv_int8_ms);
  std::printf("  dense   fp32 %7.3f   int8 %7.3f   speedup %5.2fx\n",
              kernels.dense_fp32_ms, kernels.dense_int8_ms,
              kernels.dense_fp32_ms / kernels.dense_int8_ms);

  const auto dispatch = axsnn::RunDispatchComparison(repeats);
  std::printf("\nkernel dispatch at %.0f%% spike density (ms/pass):\n",
              dispatch.density * 100.0);
  const auto print_modes = [](const char* name, const auto& m) {
    std::printf("  %-11s naive %7.3f   gemm %7.3f   sparse %7.3f   "
                "simd %7.3f   auto %7.3f   best %5.2fx\n",
                name, m.naive_ms, m.gemm_ms, m.sparse_ms, m.simd_ms,
                m.auto_ms, m.best_speedup());
  };
  print_modes("conv2d fp32", dispatch.conv_fp32);
  print_modes("conv2d int8", dispatch.conv_int8);
  print_modes("dense  fp32", dispatch.dense_fp32);
  print_modes("dense  int8", dispatch.dense_int8);

  // Dispatch contract: on int8 layers the auto mode must never lose to the
  // naive reference — a regression here (e.g. the int32-im2col packing of
  // the old gemm path) is exactly what this harness guards. 10% margin
  // absorbs timer noise on shared runners.
  bool dispatch_ok = true;
  const auto check_auto = [&](const char* name, const auto& m) {
    const bool ok = m.auto_ms <= m.naive_ms * 1.10;
    if (!ok) dispatch_ok = false;
    std::printf("  assert %-11s auto %7.3f <= 1.10 * naive %7.3f : %s\n",
                name, m.auto_ms, m.naive_ms, ok ? "PASS" : "FAIL");
  };
  check_auto("conv2d int8", dispatch.conv_int8);
  check_auto("dense  int8", dispatch.dense_int8);

  const auto tiers = axsnn::RunSimdTierSweep(repeats);
  std::printf("\nsimd tier sweep (forced simd, ms/pass, 10%% density):\n");
  for (const auto& p : tiers)
    std::printf("  %-9s conv fp32 %7.3f   conv int8 %7.3f   "
                "dense fp32 %7.3f   dense int8 %7.3f\n",
                p.tier, p.conv_fp32_ms, p.conv_int8_ms, p.dense_fp32_ms,
                p.dense_int8_ms);

  const auto scenario_grid = axsnn::RunScenarioComparison();
  std::printf("\nscenario grid (%ld cells, %ld work units sharing one "
              "structural cell):\n",
              scenario_grid.cells, scenario_grid.units);
  std::printf("  model cache on    %7.3f s   (%ld training runs, %ld hits)\n",
              scenario_grid.with_cache_s, scenario_grid.trained_with_cache,
              scenario_grid.train_cache_hits);
  std::printf("  model cache off   %7.3f s   (%ld training runs)\n",
              scenario_grid.without_cache_s,
              scenario_grid.trained_without_cache);
  std::printf("  cache speedup     %7.2fx\n",
              scenario_grid.without_cache_s / scenario_grid.with_cache_s);

  const auto dist = axsnn::RunScenarioDist();
  std::printf("\nscenario dist (%ld cells, %ld units; persistent store, "
              "fresh engine per run):\n",
              dist.cells, dist.units);
  std::printf("  cold   (empty store)  %7.3f s   (%ld trainings, %ld crafts)\n",
              dist.cold_s, dist.cold_trained, dist.cold_crafted);
  std::printf("  warm   (store reuse)  %7.3f s   (%ld trainings, %ld crafts; "
              "%ld model + %ld craft store hits)\n",
              dist.warm_s, dist.warm_trained, dist.warm_crafted,
              dist.warm_model_hits, dist.warm_craft_hits);
  std::printf("  resume (journal)      %7.3f s   (%ld trainings, %ld crafts; "
              "%ld units replayed)\n",
              dist.resume_s, dist.resume_trained, dist.resume_crafted,
              dist.resume_replayed);
  std::printf("  warm speedup   %7.2fx\n", dist.cold_s / dist.warm_s);
  std::printf("  resume speedup %7.2fx\n", dist.cold_s / dist.resume_s);
  std::printf("  assert warm+resume recompute nothing : %s\n",
              dist.zero_work_ok() ? "PASS" : "FAIL");

  const auto event_pipeline = axsnn::RunEventPipeline(repeats);
  std::printf("\nevent pipeline, DVS end-to-end (16 streams, 64 bins, "
              "2x16x16; ms/dataset pass):\n");
  std::printf("  silent%%  actual%%   dense      event     speedup   "
              "kernels run/skipped\n");
  for (const auto& p : event_pipeline)
    std::printf("  %6.0f   %6.1f   %8.3f   %8.3f   %6.2fx   %ld/%ld\n",
                p.silent_fraction_target * 100.0,
                p.silent_fraction_actual * 100.0, p.dense_ms, p.event_ms,
                p.speedup(), p.kernel_calls, p.kernel_calls_skipped);

  if (FILE* f = std::fopen("BENCH_runtime.json", "w")) {
    std::fprintf(f, "{\n  \"workload\": \"static_net_forward[8,16,1,16,16]\",\n");
    std::fprintf(f, "  \"repeats\": %d,\n", repeats);
    std::fprintf(f, "  \"simd_tier\": \"%s\",\n", simd_tier);
    std::fprintf(f, "  \"pool_scaling\": [\n");
    for (std::size_t i = 0; i < scaling.size(); ++i)
      std::fprintf(f, "    {\"threads\": %d, \"ms_per_pass\": %.4f}%s\n",
                   scaling[i].threads, scaling[i].seconds_per_pass * 1e3,
                   i + 1 < scaling.size() ? "," : "");
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"allocations_per_forward\": {\n");
    std::fprintf(f, "    \"forward_allocating\": %ld,\n",
                 counts.allocating_forward);
    std::fprintf(f, "    \"forward_shared_first_pass\": %ld,\n",
                 counts.shared_first_pass);
    std::fprintf(f, "    \"forward_shared_steady_state\": %ld\n",
                 counts.shared_steady_state);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"int8_kernels\": {\n");
    std::fprintf(f, "    \"conv2d_fp32_ms\": %.4f,\n", kernels.conv_fp32_ms);
    std::fprintf(f, "    \"conv2d_int8_ms\": %.4f,\n", kernels.conv_int8_ms);
    std::fprintf(f, "    \"conv2d_speedup\": %.3f,\n",
                 kernels.conv_fp32_ms / kernels.conv_int8_ms);
    std::fprintf(f, "    \"dense_fp32_ms\": %.4f,\n", kernels.dense_fp32_ms);
    std::fprintf(f, "    \"dense_int8_ms\": %.4f,\n", kernels.dense_int8_ms);
    std::fprintf(f, "    \"dense_speedup\": %.3f\n",
                 kernels.dense_fp32_ms / kernels.dense_int8_ms);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"kernel_dispatch\": {\n");
    std::fprintf(f, "    \"spike_density\": %.2f,\n", dispatch.density);
    const auto emit_modes = [f](const char* name, const auto& m,
                                const char* tail) {
      std::fprintf(f,
                   "    \"%s\": {\"naive_ms\": %.4f, \"gemm_ms\": %.4f, "
                   "\"sparse_ms\": %.4f, \"simd_ms\": %.4f, "
                   "\"auto_ms\": %.4f, \"best_speedup\": %.3f}%s\n",
                   name, m.naive_ms, m.gemm_ms, m.sparse_ms, m.simd_ms,
                   m.auto_ms, m.best_speedup(), tail);
    };
    emit_modes("conv2d_fp32", dispatch.conv_fp32, ",");
    emit_modes("conv2d_int8", dispatch.conv_int8, ",");
    emit_modes("dense_fp32", dispatch.dense_fp32, ",");
    emit_modes("dense_int8", dispatch.dense_int8, ",");
    std::fprintf(f, "    \"int8_auto_never_slower_than_naive\": %s\n",
                 dispatch_ok ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"kernel_simd\": [\n");
    for (std::size_t i = 0; i < tiers.size(); ++i)
      std::fprintf(f,
                   "    {\"tier\": \"%s\", \"conv2d_fp32_ms\": %.4f, "
                   "\"conv2d_int8_ms\": %.4f, \"dense_fp32_ms\": %.4f, "
                   "\"dense_int8_ms\": %.4f}%s\n",
                   tiers[i].tier, tiers[i].conv_fp32_ms, tiers[i].conv_int8_ms,
                   tiers[i].dense_fp32_ms, tiers[i].dense_int8_ms,
                   i + 1 < tiers.size() ? "," : "");
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"scenario_grid\": {\n");
    std::fprintf(f, "    \"cells\": %ld,\n", scenario_grid.cells);
    std::fprintf(f, "    \"work_units\": %ld,\n", scenario_grid.units);
    std::fprintf(f, "    \"with_model_cache_s\": %.4f,\n",
                 scenario_grid.with_cache_s);
    std::fprintf(f, "    \"without_model_cache_s\": %.4f,\n",
                 scenario_grid.without_cache_s);
    std::fprintf(f, "    \"cache_speedup\": %.3f,\n",
                 scenario_grid.without_cache_s / scenario_grid.with_cache_s);
    std::fprintf(f, "    \"trained_with_cache\": %ld,\n",
                 scenario_grid.trained_with_cache);
    std::fprintf(f, "    \"trained_without_cache\": %ld\n",
                 scenario_grid.trained_without_cache);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"scenario_dist\": {\n");
    std::fprintf(f, "    \"cells\": %ld,\n", dist.cells);
    std::fprintf(f, "    \"work_units\": %ld,\n", dist.units);
    std::fprintf(f, "    \"cold_s\": %.4f,\n", dist.cold_s);
    std::fprintf(f, "    \"warm_s\": %.4f,\n", dist.warm_s);
    std::fprintf(f, "    \"resume_s\": %.4f,\n", dist.resume_s);
    std::fprintf(f, "    \"warm_speedup\": %.3f,\n", dist.cold_s / dist.warm_s);
    std::fprintf(f, "    \"resume_speedup\": %.3f,\n",
                 dist.cold_s / dist.resume_s);
    std::fprintf(f, "    \"cold_trained\": %ld,\n", dist.cold_trained);
    std::fprintf(f, "    \"cold_crafted\": %ld,\n", dist.cold_crafted);
    std::fprintf(f, "    \"warm_trained\": %ld,\n", dist.warm_trained);
    std::fprintf(f, "    \"warm_crafted\": %ld,\n", dist.warm_crafted);
    std::fprintf(f, "    \"resume_trained\": %ld,\n", dist.resume_trained);
    std::fprintf(f, "    \"resume_crafted\": %ld,\n", dist.resume_crafted);
    std::fprintf(f, "    \"resume_replayed_units\": %ld,\n",
                 dist.resume_replayed);
    std::fprintf(f, "    \"warm_and_resume_recompute_nothing\": %s\n",
                 dist.zero_work_ok() ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"event_pipeline\": {\n");
    std::fprintf(f, "    \"workload\": \"dvs_end_to_end[N=16,T=64,2x16x16]\",\n");
    std::fprintf(f, "    \"points\": [\n");
    double speedup_at_90 = 0.0;
    for (std::size_t i = 0; i < event_pipeline.size(); ++i) {
      const auto& p = event_pipeline[i];
      if (p.silent_fraction_target >= 0.9 && speedup_at_90 == 0.0)
        speedup_at_90 = p.speedup();
      std::fprintf(f,
                   "      {\"silent_fraction\": %.2f, "
                   "\"silent_fraction_actual\": %.4f, \"dense_ms\": %.4f, "
                   "\"event_ms\": %.4f, \"speedup\": %.3f, "
                   "\"kernel_calls\": %ld, \"kernel_calls_skipped\": %ld}%s\n",
                   p.silent_fraction_target, p.silent_fraction_actual,
                   p.dense_ms, p.event_ms, p.speedup(), p.kernel_calls,
                   p.kernel_calls_skipped,
                   i + 1 < event_pipeline.size() ? "," : "");
    }
    std::fprintf(f, "    ],\n");
    std::fprintf(f, "    \"speedup_at_90pct_silent\": %.3f\n", speedup_at_90);
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_runtime.json\n");
  }
  if (!dispatch_ok) {
    std::fprintf(stderr,
                 "FAIL: int8 auto dispatch slower than naive (see table)\n");
    return 1;
  }
  if (!dist.zero_work_ok()) {
    std::fprintf(stderr,
                 "FAIL: warm/resumed scenario run recomputed work "
                 "(see scenario dist table)\n");
    return 1;
  }
  return 0;
}
