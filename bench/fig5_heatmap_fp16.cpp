// Fig. 5 — Same experiment as Fig. 4 with FP16 precision scaling.
//
// Paper: FP16 recovers a few points over FP32 in the robust band (e.g.
// PGD accuracy loss 12% -> 7% at Vth 0.75, T 32).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  axsnn::bench::RunPrecisionHeatmap(
      axsnn::approx::Precision::kFp16, "Fig. 5 (FP16 heatmap)",
      "FP16 slightly improves the robust band over FP32",
      axsnn::bench::ParseCliOrExit(argc, argv));
  return 0;
}
