// Fig. 2 — Robustness of the MNIST-class classifier under PGD for
// approximation levels {0, 0.001, 0.01, 0.1, 1}.
//
// Paper: clean accuracy degrades with level (96 / 96 / 93 / 51 / 10 %), and
// under attack the ordering is preserved while every curve decays; level
// 1.0 sits at chance everywhere.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "eval/report.hpp"
#include "runtime/thread_pool.hpp"

using namespace axsnn;

int main() {
  bench::PrintBanner(
      "Fig. 2 (PGD vs approximation level)",
      "accuracy ordering 0 > 0.001 > 0.01 > 0.1 > 1 at every eps; level 1 "
      "is chance");
  std::cout << "runtime pool: " << runtime::GlobalPool().thread_count()
            << " thread(s)\n";

  core::StaticWorkbench workbench(bench::MakeStaticTrain(2048),
                                  bench::MakeStaticTest(512),
                                  bench::FigureOptions());
  auto model = workbench.Train(/*vth=*/0.25f, /*time_steps=*/32);
  std::cout << "trained AccSNN: train accuracy " << model.train_accuracy_pct
            << "%\n";

  const std::vector<double> levels = {0.0, 0.001, 0.01, 0.1, 1.0};
  std::vector<core::VariantSpec> specs;
  for (double level : levels)
    specs.push_back({approx::Precision::kFp32, level});

  const std::vector<double> eps_grid = bench::PaperEpsGrid();
  std::vector<eval::Series> series;
  for (double level : levels)
    series.push_back({"lvl=" + eval::FormatValue(level, 3), {}});

  const auto sweep_start = std::chrono::steady_clock::now();
  for (double paper_eps : eps_grid) {
    const float eps = static_cast<float>(paper_eps) * bench::kEpsilonScale;
    Tensor adversarial =
        workbench.Craft(model, core::AttackKind::kPgd, eps);
    // All approximation-level variants of this eps cell fan out on the pool.
    const std::vector<float> robustness =
        workbench.EvaluateVariants(model, adversarial, specs);
    for (std::size_t i = 0; i < robustness.size(); ++i)
      series[i].values.push_back(robustness[i]);
    std::cout << "paper eps " << paper_eps << " done\n";
  }
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  eval::PrintSeriesTable(std::cout,
                         "Fig. 2: PGD accuracy [%] by approximation level",
                         "eps", eps_grid, series);
  std::cout << "sweep wall-clock: " << sweep_seconds << " s ("
            << eps_grid.size() * levels.size() << " cells, pool size "
            << runtime::GlobalPool().thread_count() << ")\n";
  return 0;
}
