// Fig. 2 — Robustness of the MNIST-class classifier under PGD for
// approximation levels {0, 0.001, 0.01, 0.1, 1}.
//
// Paper: clean accuracy degrades with level (96 / 96 / 93 / 51 / 10 %), and
// under attack the ordering is preserved while every curve decays; level
// 1.0 sits at chance everywhere.
//
// Declarative form: one ScenarioGrid — (Vth 0.25, T 32) x PGD x the paper
// epsilon axis x five FP32 approximation levels — executed by the scenario
// engine (bench_common::RunEpsSweepFigure). The rendered report is
// byte-identical to the pre-engine hand-rolled sweep; CI pins a miniature
// version of this grid against a checked-in golden file.
#include "bench_common.hpp"
#include "eval/report.hpp"

using namespace axsnn;

int main(int argc, char** argv) {
  const scenario::ShardRunnerOptions cli = bench::ParseCliOrExit(argc, argv);
  bench::EpsSweepFigure figure;
  figure.artifact = "Fig. 2 (PGD vs approximation level)";
  figure.paper_claim =
      "accuracy ordering 0 > 0.001 > 0.01 > 0.1 > 1 at every eps; level 1 "
      "is chance";
  figure.attack = "PGD";
  figure.table_title = "Fig. 2: PGD accuracy [%] by approximation level";
  figure.levels = {0.0, 0.001, 0.01, 0.1, 1.0};
  for (double level : figure.levels)
    figure.series_names.push_back("lvl=" + eval::FormatValue(level, 3));
  bench::RunEpsSweepFigure(figure, cli);
  return 0;
}
