// Shared infrastructure for the experiment harnesses (one binary per paper
// figure/table — see DESIGN.md's per-experiment index).
//
// Epsilon-axis mapping: our PGD/BIM implementation drives loss through a
// full surrogate-gradient BPTT unrolling and is considerably stronger than
// the attack setup the paper reports (their AccSNN retains 88% accuracy at
// eps = 1.0 on [0, 1] images, which only a heavily obfuscated attack
// permits). To reproduce the paper's *curve shapes* — gradual degradation
// across the budget axis with a cliff at the end — the harnesses compress
// the axis by kEpsilonScale: a row labelled with the paper's eps value is
// measured at eps * kEpsilonScale. EXPERIMENTS.md documents this deviation.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/search.hpp"
#include "core/workbench.hpp"

namespace axsnn::bench {

/// Our effective epsilon = paper epsilon x this (see header comment).
inline constexpr float kEpsilonScale = 0.05f;

/// The paper's perturbation-budget axis (Figs. 1-3).
std::vector<double> PaperEpsGrid();

/// The paper's structural grids (Figs. 4-7a).
std::vector<float> VthGrid();   // 0.25 .. 2.25 step 0.25
std::vector<long> TimeGrid();   // 32 .. 80 step 8

/// Spike-like activations for the kernel-dispatch benchmarks: nonzero with
/// probability `density`, values in [0.25, 1) — the input regime the
/// sparse kernel path targets (mirrors MakeSpikes in tests/test_kernels.cpp).
Tensor MakeSpikes(Shape shape, float density, Rng& rng);

/// Deterministic dataset splits shared by every static bench.
data::StaticDataset MakeStaticTrain(long count);
data::StaticDataset MakeStaticTest(long count);

/// Deterministic event-dataset splits for the DVS benches.
data::EventDataset MakeDvsTrain(long count);
data::EventDataset MakeDvsTest(long count);

/// Workbench options for the single-model figure benches (Figs. 1-3):
/// a larger training budget, giving the paper-level clean accuracy.
core::StaticWorkbench::Options FigureOptions();

/// Workbench options for the 63-cell heatmap sweeps (Figs. 4-7a): smaller
/// per-cell training budget; cells run in parallel.
core::StaticWorkbench::Options HeatmapOptions();

/// Workbench options for the DVS benches (Fig. 7b, Table II).
core::DvsWorkbench::Options DvsOptions();

// ---------------------------------------------------------------------------
// Heatmap cell cache
// ---------------------------------------------------------------------------
// Figs. 4, 5, 6 and 7a share the same 63 accurate models and adversarial
// test sets — only the precision scale of the derived AxSNN differs. The
// first heatmap bench to run trains and attacks each (Vth, T) cell and
// caches {weights, Eq.(1) calibration, PGD/BIM adversarial images} on disk;
// later benches reload in seconds. Remove the directory to force a rerun.

struct HeatmapCell {
  core::StaticWorkbench::TrainedModel model;
  Tensor pgd_images;  ///< adversarial test set, PGD at eps = paper 1.0
  Tensor bim_images;  ///< adversarial test set, BIM at eps = paper 1.0
};

/// Directory used for cell caching (created on demand).
std::string CacheDir();

/// Loads a cached cell; returns false when absent/corrupt.
bool LoadHeatmapCell(const core::StaticWorkbench& bench, float vth, long t,
                     HeatmapCell& cell);

/// Persists a cell.
void SaveHeatmapCell(const HeatmapCell& cell);

/// Trains + attacks one cell, using the cache when possible.
HeatmapCell MakeHeatmapCell(const core::StaticWorkbench& bench, float vth,
                            long t);

/// Runs `fn(cell, row, col)` over the full (TimeGrid x VthGrid) grid with
/// cells computed in parallel; `fn` must be thread-safe w.r.t. distinct
/// (row, col). Rows follow TimeGrid() order, columns VthGrid() order.
void ForEachHeatmapCell(
    const core::StaticWorkbench& bench,
    const std::function<void(HeatmapCell&, std::size_t, std::size_t)>& fn);

/// Prints the standard bench banner with reproduction context.
void PrintBanner(const std::string& artifact, const std::string& paper_claim);

/// Shared driver for Figs. 4-6: accuracy heatmaps of the AxSNN at
/// approximation level 0.01 and the given precision scale, under PGD and
/// BIM at paper eps 1.0, over the (Vth x T) grid. Prints two heatmaps.
void RunPrecisionHeatmap(approx::Precision precision,
                         const std::string& figure_name,
                         const std::string& paper_claim);

}  // namespace axsnn::bench
