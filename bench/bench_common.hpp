// Shared infrastructure for the experiment harnesses (one binary per paper
// figure/table — see DESIGN.md's per-experiment index).
//
// Epsilon-axis mapping: our PGD/BIM implementation drives loss through a
// full surrogate-gradient BPTT unrolling and is considerably stronger than
// the attack setup the paper reports (their AccSNN retains 88% accuracy at
// eps = 1.0 on [0, 1] images, which only a heavily obfuscated attack
// permits). To reproduce the paper's *curve shapes* — gradual degradation
// across the budget axis with a cliff at the end — the harnesses compress
// the axis by kEpsilonScale: a row labelled with the paper's eps value is
// measured at eps * kEpsilonScale. EXPERIMENTS.md documents this deviation.
#pragma once

#include <string>
#include <vector>

#include "core/search.hpp"
#include "core/workbench.hpp"
#include "scenario/engine.hpp"

namespace axsnn::bench {

/// Our effective epsilon = paper epsilon x this (see header comment).
inline constexpr float kEpsilonScale = 0.05f;

/// The paper's perturbation-budget axis (Figs. 1-3).
std::vector<double> PaperEpsGrid();

/// The paper's structural grids (Figs. 4-7a).
std::vector<float> VthGrid();   // 0.25 .. 2.25 step 0.25
std::vector<long> TimeGrid();   // 32 .. 80 step 8

/// Spike-like activations for the kernel-dispatch benchmarks: nonzero with
/// probability `density`, values in [0.25, 1) — the input regime the
/// sparse kernel path targets (mirrors MakeSpikes in tests/test_kernels.cpp).
Tensor MakeSpikes(Shape shape, float density, Rng& rng);

/// Deterministic dataset splits shared by every static bench.
data::StaticDataset MakeStaticTrain(long count);
data::StaticDataset MakeStaticTest(long count);

/// Deterministic event-dataset splits for the DVS benches.
data::EventDataset MakeDvsTrain(long count);
data::EventDataset MakeDvsTest(long count);

/// Workbench options for the single-model figure benches (Figs. 1-3):
/// a larger training budget, giving the paper-level clean accuracy.
core::StaticWorkbench::Options FigureOptions();

/// Workbench options for the 63-cell heatmap sweeps (Figs. 4-7a): smaller
/// per-cell training budget; cells run in parallel.
core::StaticWorkbench::Options HeatmapOptions();

/// Workbench options for the DVS benches (Fig. 7b, Table II).
core::DvsWorkbench::Options DvsOptions();

/// The miniature fig2-style workbench (2-epoch training on 192 synthetic
/// digits, 3-step PGD, T caps 6) shared by the scenario-golden CI gate and
/// the micro_runtime scenario section — and mirrored, to stay
/// self-contained, by the golden determinism tests. Seconds to train, yet
/// it exercises the full train -> craft -> variant-evaluation pipeline.
core::StaticWorkbench MiniFig2Workbench();

/// Default artifact-store directory of the heatmap benches (created on
/// demand). Figs. 4, 5, 6 and 7a share the same 63 accurate models and
/// adversarial test sets — only the precision scale of the derived AxSNN
/// differs — so those drivers attach a scenario::StaticScenarioStore here
/// by default (override with --cache-dir): the first bench to run trains
/// and attacks each (Vth, T) cell, later benches reload in seconds. The
/// store is content-keyed by the workbench fingerprint, so it never serves
/// artifacts across option changes; remove the directory to force a rerun.
std::string CacheDir();

/// Prints the standard bench banner with reproduction context.
void PrintBanner(const std::string& artifact, const std::string& paper_claim);

/// Parses the distributed-execution flags (--cache-dir / --shard / --resume
/// / --stats-out; see scenario/shard.hpp) for a bench main(). On a bad
/// argument: prints the error plus a usage line to stderr and exits 2.
/// Drivers whose report layout cannot be partial (the table benches) pass
/// allow_shard/allow_resume = false and accept --cache-dir only.
scenario::ShardRunnerOptions ParseCliOrExit(int argc, char** argv,
                                            bool allow_shard = true,
                                            bool allow_resume = true);

/// Writes the distributed-execution counters of one Run as a small JSON
/// object (trained_models_run, crafted_sets_run, store hits, replayed
/// units, cumulative totals) — the machine-readable side channel the CI
/// cache-reuse and shard gates assert on. No-op when `path` is empty.
void WriteScenarioStats(const std::string& path,
                        const scenario::ScenarioStats& stats);

/// A Figs. 1-3 style experiment, declaratively: one accurate model
/// (Vth 0.25, T 32, FigureOptions training budget), one gradient attack
/// swept over the paper's epsilon axis, and one FP32 variant series per
/// approximation level. `series_names` aligns with `levels`.
struct EpsSweepFigure {
  std::string artifact;     ///< banner line, e.g. "Fig. 2 (PGD vs ...)"
  std::string paper_claim;  ///< banner claim
  std::string attack;       ///< registry name: "PGD" / "BIM" / ...
  std::string table_title;  ///< PrintSeriesTable title
  std::vector<std::string> series_names;
  std::vector<double> levels;
};

/// Runs the figure on the scenario engine and prints the standard report
/// (banner, pool size, train accuracy, per-eps progress, series table,
/// sweep footer). `cli` (--cache-dir/--shard/--resume/--stats-out) attaches
/// a persistent store when a cache dir is given; sharded runs print partial
/// tables — the merge pass (--resume, no --shard) prints the full report.
void RunEpsSweepFigure(const EpsSweepFigure& figure,
                       const scenario::ShardRunnerOptions& cli = {});

/// Shared driver for Figs. 4-6: accuracy heatmaps of the AxSNN at
/// approximation level 0.01 and the given precision scale, under PGD and
/// BIM at paper eps 1.0, over the (Vth x T) grid — one declarative
/// ScenarioGrid over the store-cached cells (CacheDir() unless `cli`
/// overrides). Prints two heatmaps.
void RunPrecisionHeatmap(approx::Precision precision,
                         const std::string& figure_name,
                         const std::string& paper_claim,
                         const scenario::ShardRunnerOptions& cli = {});

}  // namespace axsnn::bench
