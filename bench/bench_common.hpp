// Shared infrastructure for the experiment harnesses (one binary per paper
// figure/table — see DESIGN.md's per-experiment index).
//
// Epsilon-axis mapping: our PGD/BIM implementation drives loss through a
// full surrogate-gradient BPTT unrolling and is considerably stronger than
// the attack setup the paper reports (their AccSNN retains 88% accuracy at
// eps = 1.0 on [0, 1] images, which only a heavily obfuscated attack
// permits). To reproduce the paper's *curve shapes* — gradual degradation
// across the budget axis with a cliff at the end — the harnesses compress
// the axis by kEpsilonScale: a row labelled with the paper's eps value is
// measured at eps * kEpsilonScale. EXPERIMENTS.md documents this deviation.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/search.hpp"
#include "core/workbench.hpp"
#include "scenario/engine.hpp"

namespace axsnn::bench {

/// Our effective epsilon = paper epsilon x this (see header comment).
inline constexpr float kEpsilonScale = 0.05f;

/// The paper's perturbation-budget axis (Figs. 1-3).
std::vector<double> PaperEpsGrid();

/// The paper's structural grids (Figs. 4-7a).
std::vector<float> VthGrid();   // 0.25 .. 2.25 step 0.25
std::vector<long> TimeGrid();   // 32 .. 80 step 8

/// Spike-like activations for the kernel-dispatch benchmarks: nonzero with
/// probability `density`, values in [0.25, 1) — the input regime the
/// sparse kernel path targets (mirrors MakeSpikes in tests/test_kernels.cpp).
Tensor MakeSpikes(Shape shape, float density, Rng& rng);

/// Deterministic dataset splits shared by every static bench.
data::StaticDataset MakeStaticTrain(long count);
data::StaticDataset MakeStaticTest(long count);

/// Deterministic event-dataset splits for the DVS benches.
data::EventDataset MakeDvsTrain(long count);
data::EventDataset MakeDvsTest(long count);

/// Workbench options for the single-model figure benches (Figs. 1-3):
/// a larger training budget, giving the paper-level clean accuracy.
core::StaticWorkbench::Options FigureOptions();

/// Workbench options for the 63-cell heatmap sweeps (Figs. 4-7a): smaller
/// per-cell training budget; cells run in parallel.
core::StaticWorkbench::Options HeatmapOptions();

/// Workbench options for the DVS benches (Fig. 7b, Table II).
core::DvsWorkbench::Options DvsOptions();

/// The miniature fig2-style workbench (2-epoch training on 192 synthetic
/// digits, 3-step PGD, T caps 6) shared by the scenario-golden CI gate and
/// the micro_runtime scenario section — and mirrored, to stay
/// self-contained, by the golden determinism tests. Seconds to train, yet
/// it exercises the full train -> craft -> variant-evaluation pipeline.
core::StaticWorkbench MiniFig2Workbench();

// ---------------------------------------------------------------------------
// Heatmap cell cache
// ---------------------------------------------------------------------------
// Figs. 4, 5, 6 and 7a share the same 63 accurate models and adversarial
// test sets — only the precision scale of the derived AxSNN differs. The
// first heatmap bench to run trains and attacks each (Vth, T) cell and
// caches {weights, Eq.(1) calibration, PGD/BIM adversarial images} on disk;
// later benches reload in seconds. Remove the directory to force a rerun.

struct HeatmapCell {
  core::StaticWorkbench::TrainedModel model;
  Tensor pgd_images;  ///< adversarial test set, PGD at eps = paper 1.0
  Tensor bim_images;  ///< adversarial test set, BIM at eps = paper 1.0
};

/// Directory used for cell caching (created on demand).
std::string CacheDir();

/// Loads a cached cell; returns false when absent/corrupt.
bool LoadHeatmapCell(const core::StaticWorkbench& bench, float vth, long t,
                     HeatmapCell& cell);

/// Persists a cell.
void SaveHeatmapCell(const HeatmapCell& cell);

/// Trains + attacks one cell, using the cache when possible.
HeatmapCell MakeHeatmapCell(const core::StaticWorkbench& bench, float vth,
                            long t);

/// Splices the persistent heatmap disk cache into a scenario engine: the
/// train hook runs MakeHeatmapCell (load-or-train+attack, saved to disk)
/// and parks the cell's pre-crafted adversarial sets here; the craft hook
/// serves them back by attack name ("PGD" / "BIM"; "none" returns the
/// clean test images — any other attack, or a non-paper epsilon, is a
/// programming error and throws). The store must outlive the engine runs
/// it feeds.
class HeatmapCellStore {
 public:
  explicit HeatmapCellStore(const core::StaticWorkbench& bench)
      : bench_(bench) {}

  /// Installs the train/craft hooks on `engine`.
  void Attach(scenario::StaticScenarioEngine& engine);

 private:
  core::StaticWorkbench::TrainedModel Train(float vth, long t);
  Tensor Images(const core::StaticWorkbench::TrainedModel& model,
                const scenario::AttackSpec& attack, float epsilon) const;

  const core::StaticWorkbench& bench_;
  mutable std::mutex mu_;
  /// (vth bits as int, T) -> (pgd images, bim images)
  std::map<std::pair<int, long>, std::pair<Tensor, Tensor>> images_;
};

/// Prints the standard bench banner with reproduction context.
void PrintBanner(const std::string& artifact, const std::string& paper_claim);

/// A Figs. 1-3 style experiment, declaratively: one accurate model
/// (Vth 0.25, T 32, FigureOptions training budget), one gradient attack
/// swept over the paper's epsilon axis, and one FP32 variant series per
/// approximation level. `series_names` aligns with `levels`.
struct EpsSweepFigure {
  std::string artifact;     ///< banner line, e.g. "Fig. 2 (PGD vs ...)"
  std::string paper_claim;  ///< banner claim
  std::string attack;       ///< registry name: "PGD" / "BIM" / ...
  std::string table_title;  ///< PrintSeriesTable title
  std::vector<std::string> series_names;
  std::vector<double> levels;
};

/// Runs the figure on the scenario engine and prints the standard report
/// (banner, pool size, train accuracy, per-eps progress, series table,
/// sweep footer).
void RunEpsSweepFigure(const EpsSweepFigure& figure);

/// Shared driver for Figs. 4-6: accuracy heatmaps of the AxSNN at
/// approximation level 0.01 and the given precision scale, under PGD and
/// BIM at paper eps 1.0, over the (Vth x T) grid — one declarative
/// ScenarioGrid over the disk-cached cells. Prints two heatmaps.
void RunPrecisionHeatmap(approx::Precision precision,
                         const std::string& figure_name,
                         const std::string& paper_claim);

}  // namespace axsnn::bench
