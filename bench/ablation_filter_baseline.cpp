// Ablation — what AQF's additions buy over the classical background
// activity filter (BAF), across the full DVS-Attacks family (Sparse, Frame,
// plus the Corner and Dash extensions).
//
// BAF is the plain spatio-temporal correlation test; AQF adds timestamp
// quantization, hyperactivity flagging and polarity-aware support. The
// hyperactivity rule is what defeats Frame/Corner (continuously firing
// pixels self-support under BAF); the Dash attack is spatio-temporally
// correlated and stresses both filters.
#include <iostream>

#include "attacks/extra_neuromorphic.hpp"
#include "bench_common.hpp"
#include "core/baf.hpp"
#include "eval/report.hpp"

using namespace axsnn;

int main() {
  bench::PrintBanner(
      "Filter ablation: AQF vs BAF across the DVS-Attacks family",
      "AQF's hyperactivity rule defeats border-style attacks BAF passes "
      "through");

  // Lighter budget than the figure benches: the comparison is qualitative
  // (which attacks each filter neutralizes), not an accuracy benchmark.
  core::DvsWorkbench::Options opts = bench::DvsOptions();
  opts.train.epochs = 10;
  core::DvsWorkbench workbench(bench::MakeDvsTrain(330),
                               bench::MakeDvsTest(110), opts);
  auto model = workbench.Train(/*vth=*/1.0f);
  std::cout << "trained AccSNN: train accuracy " << model.train_accuracy_pct
            << "%\n";

  // Attacked test sets (Sparse needs the model; the rest are model-free).
  data::EventDataset sparse =
      workbench.Craft(model, core::AttackKind::kSparse);
  data::EventDataset frame = workbench.Craft(model, core::AttackKind::kFrame);
  attacks::CornerAttackConfig corner_cfg;
  data::EventDataset corner =
      attacks::CornerAttackDataset(workbench.test_set(), corner_cfg);
  attacks::DashAttackConfig dash_cfg;
  data::EventDataset dash =
      attacks::DashAttackDataset(workbench.test_set(), dash_cfg);

  core::AqfConfig aqf;  // paper defaults
  core::BafConfig baf;  // same (s, T2); no quantization/hyperactivity

  std::vector<std::vector<std::string>> rows;
  auto evaluate = [&](const std::string& name,
                      const data::EventDataset& attacked) {
    const float none = workbench.AccuracyPct(model.net, attacked);
    data::EventDataset baf_filtered = core::BafFilterDataset(attacked, baf);
    const float with_baf = workbench.AccuracyPct(model.net, baf_filtered);
    const float with_aqf = workbench.AccuracyPct(model.net, attacked, aqf);
    rows.push_back({name, eval::FormatValue(none),
                    eval::FormatValue(with_baf), eval::FormatValue(with_aqf)});
  };
  evaluate("clean", workbench.test_set());
  evaluate("sparse", sparse);
  evaluate("frame", frame);
  evaluate("corner", corner);
  evaluate("dash", dash);

  eval::PrintTable(std::cout,
                   "AccSNN accuracy [%] under filters (AQF vs BAF baseline)",
                   {"attack", "no filter", "BAF", "AQF"}, rows);
  return 0;
}
