// Fig. 3 — Robustness of the MNIST-class classifier under BIM for
// approximation levels {0, 0.001, 0.01, 0.1, 1}; the BIM counterpart of
// Fig. 2 with the same qualitative ordering. Declaratively, it *is* Fig. 2
// with the attack axis set to "BIM" — exactly what the scenario grid
// expresses.
#include "bench_common.hpp"
#include "eval/report.hpp"

using namespace axsnn;

int main(int argc, char** argv) {
  const scenario::ShardRunnerOptions cli = bench::ParseCliOrExit(argc, argv);
  bench::EpsSweepFigure figure;
  figure.artifact = "Fig. 3 (BIM vs approximation level)";
  figure.paper_claim =
      "same ordering as Fig. 2 under BIM; AccSNN 96->82% across the axis, "
      "AxSNN(0.01) 93->71%";
  figure.attack = "BIM";
  figure.table_title = "Fig. 3: BIM accuracy [%] by approximation level";
  figure.levels = {0.0, 0.001, 0.01, 0.1, 1.0};
  for (double level : figure.levels)
    figure.series_names.push_back("lvl=" + eval::FormatValue(level, 3));
  bench::RunEpsSweepFigure(figure, cli);
  return 0;
}
