// Ablation — the energy motivation behind AxSNNs (paper Section I, citing
// Sen et al. [2]: weight approximation buys ~4x energy at iso-accuracy).
//
// Sweeps the approximation level and precision scale, reporting the
// spike-driven synaptic-op energy of each variant relative to the FP32
// accurate network, alongside its clean accuracy.
#include <iostream>

#include "approx/energy.hpp"
#include "bench_common.hpp"
#include "eval/report.hpp"
#include "snn/encoding.hpp"

using namespace axsnn;

int main() {
  bench::PrintBanner(
      "Energy ablation (the 4x claim of ref. [2])",
      "approximation reduces synaptic-op energy ~4x at moderate accuracy "
      "cost; INT8 precision scaling compounds it");

  core::StaticWorkbench workbench(bench::MakeStaticTrain(1024),
                                  bench::MakeStaticTest(256),
                                  bench::FigureOptions());
  auto model = workbench.Train(/*vth=*/0.25f, /*time_steps=*/32);

  // Energy probe: one rate-encoded batch of clean test images.
  Rng rng(99);
  Shape probe_shape = workbench.test_set().images.shape();
  probe_shape[0] = 64;
  Tensor probe_images(probe_shape);
  std::copy(workbench.test_set().images.data(),
            workbench.test_set().images.data() + probe_images.numel(),
            probe_images.data());
  Tensor probe = snn::EncodeRate(probe_images, model.time_steps, rng);

  approx::EnergyReport base =
      approx::EstimateEnergy(model.net, probe, approx::Precision::kFp32);
  std::cout << "AccSNN FP32 energy: " << base.total_energy
            << " MAC-equivalents/sample over T=" << model.time_steps << "\n";

  std::vector<std::vector<std::string>> rows;
  for (approx::Precision precision :
       {approx::Precision::kFp32, approx::Precision::kFp16,
        approx::Precision::kInt8}) {
    for (double level : {0.0, 0.001, 0.01, 0.05, 0.1, 0.2}) {
      snn::Network ax = workbench.MakeAx(model, level, precision);
      approx::EnergyReport e = approx::EstimateEnergy(ax, probe, precision);
      const float acc = workbench.AccuracyPct(
          ax, workbench.test_set().images, model.time_steps);
      rows.push_back({approx::PrecisionName(precision),
                      eval::FormatValue(level, 3),
                      eval::FormatValue(acc),
                      eval::FormatValue(base.total_energy / e.total_energy, 2),
                      eval::FormatValue(base.total_ops / e.total_ops, 2)});
    }
  }

  eval::PrintTable(std::cout,
                   "Energy vs approximation level (relative to FP32 AccSNN)",
                   {"precision", "level", "clean acc [%]", "energy saving x",
                    "op saving x"},
                   rows);
  return 0;
}
