// Table II — AQF-based adversarial defense on the DVS-Gesture-class task:
// recovered accuracy Ar and accuracy loss Al (vs the clean AccSNN baseline)
// for the precision-scaled AxSNN with AQF filtering, at the paper's
// (qt, ath) operating points, under the Sparse and Frame attacks.
//
// Paper rows (Vth = 1.0):
//   Sparse: (0.015, 0.1) -> Ar 90.0 / Al 2.0;  (0.01, 0.15) -> 88.4 / 3.6;
//           (0.0, 0.001) -> 84.3 / 7.7
//   Frame:  (0.015, 0.1) -> Ar 91.1 / Al 1.0;  (0.01, 0.15) -> 89.9 / 2.1;
//           (0.0, 0.001) -> 88.2 / 3.8
//
// Declarative form: a reference grid (attack axis {none, Sparse, Frame},
// level 0, no AQF) plus one zipped grid per operating point — the paper's
// (qt, ath) pairs vary jointly, not as a cross product. All grids run on
// one engine, so the model trains once and each attack crafts once.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "eval/report.hpp"
#include "scenario/store.hpp"

using namespace axsnn;

int main(int argc, char** argv) {
  // Multiple zipped grids share one report, so the table accepts
  // --cache-dir only (no --shard/--resume): with a cache dir, the model and
  // both crafted attacks persist and a rerun is pure evaluation.
  const scenario::ShardRunnerOptions cli = bench::ParseCliOrExit(
      argc, argv, /*allow_shard=*/false, /*allow_resume=*/false);
  bench::PrintBanner(
      "Table II (AQF defense: recovered accuracy)",
      "AQF recovers sparse/frame-attacked AxSNN accuracy to within a few "
      "points of the clean baseline");

  core::DvsWorkbench workbench(bench::MakeDvsTrain(550),
                               bench::MakeDvsTest(110), bench::DvsOptions());
  scenario::DvsScenarioEngine engine(workbench);
  std::unique_ptr<scenario::DvsScenarioStore> store;
  if (!cli.cache_dir.empty()) {
    store =
        std::make_unique<scenario::DvsScenarioStore>(cli.cache_dir, workbench);
    engine.set_store(store.get());
  }

  // Reference grid: the clean baseline and the undefended accuracies of the
  // accurate model (level 0) under each attack.
  scenario::ScenarioGrid reference;
  reference.v_thresholds = {1.0f};
  reference.attacks = {scenario::AttackSpec{"none", {}},
                       scenario::AttackSpec{"Sparse", {}},
                       scenario::AttackSpec{"Frame", {}}};
  reference.levels = {0.0};
  const scenario::ScenarioOutcome ref = engine.Run(reference);
  const float baseline = ref.Robustness(0, 0, 0, 0, 0, 0, 0, 0);
  std::cout << "AccSNN baseline (clean, no defense): " << baseline << "%\n";

  // The paper's (qt, ath) operating points.
  struct OperatingPoint {
    float qt_s;
    double level;
  };
  const std::vector<OperatingPoint> points = {
      {0.015f, 0.1}, {0.01f, 0.15}, {0.0f, 0.001}};

  std::vector<std::vector<std::string>> rows;
  const std::vector<std::string> attack_names = {"Sparse", "Frame"};
  for (std::size_t attack_i = 0; attack_i < attack_names.size(); ++attack_i) {
    const std::string& attack_name = attack_names[attack_i];
    const float undefended = ref.Robustness(0, 0, attack_i + 1, 0, 0, 0, 0, 0);
    std::cout << attack_name << " undefended AccSNN accuracy: " << undefended
              << "%\n";
    for (const OperatingPoint& p : points) {
      // One zipped (qt, ath) grid; the engine's caches make it a pure
      // evaluation (model + crafted attack are already in memory).
      scenario::ScenarioGrid grid;
      grid.v_thresholds = {1.0f};
      grid.attacks = {scenario::AttackSpec{attack_name, {}}};
      grid.levels = {p.level};
      core::AqfConfig aqf;
      aqf.quantization_step_s = p.qt_s;
      grid.aqfs = {aqf};
      const scenario::ScenarioOutcome out = engine.Run(grid);
      const float recovered = out.Robustness(0, 0, 0, 0, 0, 0, 0, 0);
      rows.push_back({attack_name,
                      '(' + eval::FormatValue(p.qt_s, 3) + ", " +
                          eval::FormatValue(p.level, 3) + ')',
                      eval::FormatValue(recovered),
                      eval::FormatValue(baseline - recovered)});
    }
  }

  eval::PrintTable(
      std::cout,
      "Table II: AQF recovery, AxSNN (Vth=1.0) on DVS gestures",
      {"attack", "(qt, ath)", "Ar [%]", "Al [%]"}, rows);
  return 0;
}
