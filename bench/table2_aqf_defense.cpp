// Table II — AQF-based adversarial defense on the DVS-Gesture-class task:
// recovered accuracy Ar and accuracy loss Al (vs the clean AccSNN baseline)
// for the precision-scaled AxSNN with AQF filtering, at the paper's
// (qt, ath) operating points, under the Sparse and Frame attacks.
//
// Paper rows (Vth = 1.0):
//   Sparse: (0.015, 0.1) -> Ar 90.0 / Al 2.0;  (0.01, 0.15) -> 88.4 / 3.6;
//           (0.0, 0.001) -> 84.3 / 7.7
//   Frame:  (0.015, 0.1) -> Ar 91.1 / Al 1.0;  (0.01, 0.15) -> 89.9 / 2.1;
//           (0.0, 0.001) -> 88.2 / 3.8
#include <iostream>

#include "bench_common.hpp"
#include "eval/report.hpp"

using namespace axsnn;

int main() {
  bench::PrintBanner(
      "Table II (AQF defense: recovered accuracy)",
      "AQF recovers sparse/frame-attacked AxSNN accuracy to within a few "
      "points of the clean baseline");

  core::DvsWorkbench workbench(bench::MakeDvsTrain(550),
                               bench::MakeDvsTest(110), bench::DvsOptions());
  auto model = workbench.Train(/*vth=*/1.0f);
  const float baseline = workbench.AccuracyPct(model.net, workbench.test_set());
  std::cout << "AccSNN baseline (clean, no defense): " << baseline << "%\n";

  data::EventDataset sparse = workbench.Craft(model, core::AttackKind::kSparse);
  data::EventDataset frame = workbench.Craft(model, core::AttackKind::kFrame);

  // The paper's (qt, ath) operating points.
  struct OperatingPoint {
    float qt_s;
    double level;
  };
  const std::vector<OperatingPoint> points = {
      {0.015f, 0.1}, {0.01f, 0.15}, {0.0f, 0.001}};

  std::vector<std::vector<std::string>> rows;
  auto run = [&](const std::string& attack_name,
                 const data::EventDataset& attacked) {
    // Undefended reference for context.
    const float undefended = workbench.AccuracyPct(model.net, attacked);
    std::cout << attack_name << " undefended AccSNN accuracy: " << undefended
              << "%\n";
    for (const OperatingPoint& p : points) {
      snn::Network ax = workbench.MakeAx(model, p.level,
                                         approx::Precision::kFp32);
      core::AqfConfig aqf;
      aqf.quantization_step_s = p.qt_s;
      const float recovered = workbench.AccuracyPct(ax, attacked, aqf);
      rows.push_back({attack_name,
                      '(' + eval::FormatValue(p.qt_s, 3) + ", " +
                          eval::FormatValue(p.level, 3) + ')',
                      eval::FormatValue(recovered),
                      eval::FormatValue(baseline - recovered)});
    }
  };
  run("Sparse", sparse);
  run("Frame", frame);

  eval::PrintTable(
      std::cout,
      "Table II: AQF recovery, AxSNN (Vth=1.0) on DVS gestures",
      {"attack", "(qt, ath)", "Ar [%]", "Al [%]"}, rows);
  return 0;
}
