#include "bench_common.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>

#include "eval/report.hpp"
#include "runtime/thread_pool.hpp"
#include "scenario/store.hpp"
#include "tensor/check.hpp"

namespace axsnn::bench {

std::vector<double> PaperEpsGrid() {
  return {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0, 1.5};
}

Tensor MakeSpikes(Shape shape, float density, Rng& rng) {
  Tensor gate = Tensor::Uniform(shape, 0.0f, 1.0f, rng);
  Tensor vals = Tensor::Uniform(shape, 0.25f, 1.0f, rng);
  Tensor x(std::move(shape));
  for (long i = 0; i < x.numel(); ++i)
    x[i] = gate[i] < density ? vals[i] : 0.0f;
  return x;
}

std::vector<float> VthGrid() {
  std::vector<float> v;
  for (float x = 0.25f; x <= 2.26f; x += 0.25f) v.push_back(x);
  return v;
}

std::vector<long> TimeGrid() {
  std::vector<long> t;
  for (long x = 32; x <= 80; x += 8) t.push_back(x);
  return t;
}

data::StaticDataset MakeStaticTrain(long count) {
  data::SyntheticMnistOptions opts;
  opts.count = count;
  opts.seed = 1001;
  return data::MakeSyntheticMnist(opts);
}

data::StaticDataset MakeStaticTest(long count) {
  data::SyntheticMnistOptions opts;
  opts.count = count;
  opts.seed = 2002;
  return data::MakeSyntheticMnist(opts);
}

data::EventDataset MakeDvsTrain(long count) {
  data::DvsGestureOptions opts;
  opts.count = count;
  opts.seed = 3003;
  return data::MakeSyntheticDvsGesture(opts);
}

data::EventDataset MakeDvsTest(long count) {
  data::DvsGestureOptions opts;
  opts.count = count;
  opts.seed = 4004;
  return data::MakeSyntheticDvsGesture(opts);
}

core::StaticWorkbench::Options FigureOptions() {
  core::StaticWorkbench::Options opts;
  opts.train.epochs = 6;
  opts.train.batch_size = 32;
  opts.train_time_steps_cap = 12;
  opts.attack_time_steps_cap = 8;
  opts.attack_steps = 10;
  // Eq. (1) gain recalibrated at this training budget so the published
  // level bands hold (level 0.1 ~ half accuracy, level 1.0 ~ chance).
  opts.threshold_gain = 2.5;
  return opts;
}

core::StaticWorkbench::Options HeatmapOptions() {
  core::StaticWorkbench::Options opts;
  opts.train.epochs = 3;
  opts.train.batch_size = 48;
  opts.train_time_steps_cap = 10;
  opts.attack_time_steps_cap = 8;
  opts.attack_steps = 6;
  opts.eval_batch = 96;
  return opts;
}

core::DvsWorkbench::Options DvsOptions() {
  core::DvsWorkbench::Options opts;
  opts.train.epochs = 16;
  opts.time_bins = 24;
  return opts;
}

core::StaticWorkbench MiniFig2Workbench() {
  core::StaticWorkbench::Options opts;
  opts.net.lif.v_threshold = 0.25f;
  opts.train.epochs = 2;
  opts.train.batch_size = 32;
  opts.train_time_steps_cap = 6;
  opts.attack_time_steps_cap = 6;
  opts.attack_steps = 3;
  opts.eval_batch = 64;

  data::SyntheticMnistOptions d;
  d.count = 192;
  d.seed = 51;
  data::StaticDataset train = data::MakeSyntheticMnist(d);
  d.count = 48;
  d.seed = 52;
  data::StaticDataset test = data::MakeSyntheticMnist(d);
  return core::StaticWorkbench(std::move(train), std::move(test), opts);
}

std::string CacheDir() {
  const std::string dir = "axsnn_bench_cache";
  std::filesystem::create_directories(dir);
  return dir;
}

void PrintBanner(const std::string& artifact, const std::string& paper_claim) {
  std::cout << "#############################################################\n"
            << "# Reproduction: Security-Aware Approximate Spiking Neural\n"
            << "# Networks (DATE 2023) — " << artifact << "\n"
            << "# Paper claim: " << paper_claim << "\n"
            << "# Substrate: synthetic datasets, CPU SNN trainer; epsilon\n"
            << "# axis compressed by x" << kEpsilonScale
            << " (see EXPERIMENTS.md).\n"
            << "#############################################################\n";
}

scenario::ShardRunnerOptions ParseCliOrExit(int argc, char** argv,
                                            bool allow_shard,
                                            bool allow_resume) {
  try {
    return scenario::ParseShardRunnerArgs(argc, argv, allow_shard,
                                          allow_resume);
  } catch (const std::exception& e) {
    std::cerr << argv[0] << ": " << e.what() << "\nusage: " << argv[0] << " "
              << (allow_shard ? scenario::ShardRunnerUsage()
                              : "[--cache-dir DIR] [--stats-out FILE]")
              << "\n";
    std::exit(2);
  }
}

void WriteScenarioStats(const std::string& path,
                        const scenario::ScenarioStats& stats) {
  if (path.empty()) return;
  std::ofstream os(path);
  AXSNN_CHECK(os.good(), "cannot open stats output file " << path);
  os << "{\n"
     << "  \"trained_models_run\": " << stats.trained_models << ",\n"
     << "  \"crafted_sets_run\": " << stats.crafted_sets << ",\n"
     << "  \"store_model_hits\": " << stats.store_model_hits << ",\n"
     << "  \"store_craft_hits\": " << stats.store_craft_hits << ",\n"
     << "  \"replayed_units\": " << stats.replayed_units << ",\n"
     << "  \"gated_units\": " << stats.gated_units << ",\n"
     << "  \"faulted_evals\": " << stats.faulted_evals << ",\n"
     << "  \"corrupt_entries\": " << stats.corrupt_entries << ",\n"
     << "  \"total_trained_models\": " << stats.total_trained_models << ",\n"
     << "  \"total_crafted_sets\": " << stats.total_crafted_sets << "\n"
     << "}\n";
  AXSNN_CHECK(os.good(), "failed writing stats output file " << path);
}

void RunEpsSweepFigure(const EpsSweepFigure& figure,
                       const scenario::ShardRunnerOptions& cli) {
  PrintBanner(figure.artifact, figure.paper_claim);
  std::cout << "runtime pool: " << runtime::GlobalPool()->thread_count()
            << " thread(s)\n";

  core::StaticWorkbench workbench(MakeStaticTrain(2048), MakeStaticTest(512),
                                  FigureOptions());
  scenario::StaticScenarioEngine engine(workbench);
  std::unique_ptr<scenario::StaticScenarioStore> store;
  if (!cli.cache_dir.empty()) {
    store = std::make_unique<scenario::StaticScenarioStore>(cli.cache_dir,
                                                            workbench);
    engine.set_store(store.get());
  }

  const std::vector<double> eps_grid = PaperEpsGrid();
  scenario::ScenarioGrid grid;
  grid.v_thresholds = {0.25f};
  grid.time_steps = {32};
  grid.attacks = {scenario::AttackSpec{figure.attack, {}}};
  grid.epsilons.clear();
  for (double paper_eps : eps_grid) {
    // Multiply in float exactly like the pre-engine harnesses, so crafted
    // sets (and the golden fig2 report) stay bit-identical.
    grid.epsilons.push_back(
        static_cast<double>(static_cast<float>(paper_eps) * kEpsilonScale));
  }
  grid.levels = figure.levels;

  const scenario::ScenarioOutcome outcome =
      engine.Run(grid, cli.run_options());

  std::cout << "trained AccSNN: train accuracy "
            << outcome.train_accuracy_pct.front() << "%\n";
  for (double paper_eps : eps_grid)
    std::cout << "paper eps " << paper_eps << " done\n";

  std::vector<eval::Series> series;
  for (std::size_t il = 0; il < figure.levels.size(); ++il) {
    eval::Series s{figure.series_names[il], {}};
    for (std::size_t ie = 0; ie < eps_grid.size(); ++ie)
      s.values.push_back(outcome.Robustness(0, 0, 0, ie, 0, 0, il, 0));
    series.push_back(std::move(s));
  }
  eval::PrintSeriesTable(std::cout, figure.table_title, "eps", eps_grid,
                         series);
  eval::PrintRunFooter(std::cout, outcome.stats.sweep_seconds,
                       static_cast<long>(grid.CellCount()),
                       runtime::GlobalPool()->thread_count());
  WriteScenarioStats(cli.stats_out, outcome.stats);
}

void RunPrecisionHeatmap(approx::Precision precision,
                         const std::string& figure_name,
                         const std::string& paper_claim,
                         const scenario::ShardRunnerOptions& cli) {
  PrintBanner(figure_name, paper_claim);
  core::StaticWorkbench workbench(MakeStaticTrain(384), MakeStaticTest(192),
                                  HeatmapOptions());
  scenario::StaticScenarioEngine engine(workbench);
  // Figs. 4-6 always persist their cells: the three precision sweeps share
  // all 63 models and both adversarial sets through the store.
  scenario::StaticScenarioStore store(
      cli.cache_dir.empty() ? CacheDir() : cli.cache_dir, workbench);
  engine.set_store(&store);

  scenario::ScenarioGrid grid;
  grid.v_thresholds = VthGrid();
  grid.time_steps = TimeGrid();
  grid.attacks = {scenario::AttackSpec{"PGD", {}},
                  scenario::AttackSpec{"BIM", {}}};
  grid.epsilons = {1.0 * kEpsilonScale};  // paper eps 1.0
  grid.precisions = {precision};
  grid.levels = {0.01};

  const scenario::ScenarioOutcome outcome =
      engine.Run(grid, cli.run_options());

  const auto vths = VthGrid();
  const auto times = TimeGrid();
  std::vector<std::vector<double>> pgd(times.size(),
                                       std::vector<double>(vths.size()));
  std::vector<std::vector<double>> bim = pgd;
  for (std::size_t row = 0; row < times.size(); ++row) {
    for (std::size_t col = 0; col < vths.size(); ++col) {
      pgd[row][col] = outcome.Robustness(col, row, 0, 0, 0, 0, 0, 0);
      bim[row][col] = outcome.Robustness(col, row, 1, 0, 0, 0, 0, 0);
    }
  }

  std::vector<double> time_labels(times.begin(), times.end());
  std::vector<double> vth_labels(vths.begin(), vths.end());
  eval::PrintHeatmap(std::cout, figure_name + " (a): PGD accuracy [%]",
                     "timesteps", time_labels, "Vth", vth_labels, pgd);
  eval::PrintHeatmap(std::cout, figure_name + " (b): BIM accuracy [%]",
                     "timesteps", time_labels, "Vth", vth_labels, bim);
  WriteScenarioStats(cli.stats_out, outcome.stats);
}

}  // namespace axsnn::bench
