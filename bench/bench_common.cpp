#include "bench_common.hpp"

#include <filesystem>
#include <iostream>
#include <sstream>

#include "eval/report.hpp"
#include "runtime/thread_pool.hpp"
#include "snn/lif_layer.hpp"
#include "tensor/check.hpp"
#include "tensor/serialize.hpp"

namespace axsnn::bench {

std::vector<double> PaperEpsGrid() {
  return {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0, 1.5};
}

Tensor MakeSpikes(Shape shape, float density, Rng& rng) {
  Tensor gate = Tensor::Uniform(shape, 0.0f, 1.0f, rng);
  Tensor vals = Tensor::Uniform(shape, 0.25f, 1.0f, rng);
  Tensor x(std::move(shape));
  for (long i = 0; i < x.numel(); ++i)
    x[i] = gate[i] < density ? vals[i] : 0.0f;
  return x;
}

std::vector<float> VthGrid() {
  std::vector<float> v;
  for (float x = 0.25f; x <= 2.26f; x += 0.25f) v.push_back(x);
  return v;
}

std::vector<long> TimeGrid() {
  std::vector<long> t;
  for (long x = 32; x <= 80; x += 8) t.push_back(x);
  return t;
}

data::StaticDataset MakeStaticTrain(long count) {
  data::SyntheticMnistOptions opts;
  opts.count = count;
  opts.seed = 1001;
  return data::MakeSyntheticMnist(opts);
}

data::StaticDataset MakeStaticTest(long count) {
  data::SyntheticMnistOptions opts;
  opts.count = count;
  opts.seed = 2002;
  return data::MakeSyntheticMnist(opts);
}

data::EventDataset MakeDvsTrain(long count) {
  data::DvsGestureOptions opts;
  opts.count = count;
  opts.seed = 3003;
  return data::MakeSyntheticDvsGesture(opts);
}

data::EventDataset MakeDvsTest(long count) {
  data::DvsGestureOptions opts;
  opts.count = count;
  opts.seed = 4004;
  return data::MakeSyntheticDvsGesture(opts);
}

core::StaticWorkbench::Options FigureOptions() {
  core::StaticWorkbench::Options opts;
  opts.train.epochs = 6;
  opts.train.batch_size = 32;
  opts.train_time_steps_cap = 12;
  opts.attack_time_steps_cap = 8;
  opts.attack_steps = 10;
  // Eq. (1) gain recalibrated at this training budget so the published
  // level bands hold (level 0.1 ~ half accuracy, level 1.0 ~ chance).
  opts.threshold_gain = 2.5;
  return opts;
}

core::StaticWorkbench::Options HeatmapOptions() {
  core::StaticWorkbench::Options opts;
  opts.train.epochs = 3;
  opts.train.batch_size = 48;
  opts.train_time_steps_cap = 10;
  opts.attack_time_steps_cap = 8;
  opts.attack_steps = 6;
  opts.eval_batch = 96;
  return opts;
}

core::DvsWorkbench::Options DvsOptions() {
  core::DvsWorkbench::Options opts;
  opts.train.epochs = 16;
  opts.time_bins = 24;
  return opts;
}

core::StaticWorkbench MiniFig2Workbench() {
  core::StaticWorkbench::Options opts;
  opts.net.lif.v_threshold = 0.25f;
  opts.train.epochs = 2;
  opts.train.batch_size = 32;
  opts.train_time_steps_cap = 6;
  opts.attack_time_steps_cap = 6;
  opts.attack_steps = 3;
  opts.eval_batch = 64;

  data::SyntheticMnistOptions d;
  d.count = 192;
  d.seed = 51;
  data::StaticDataset train = data::MakeSyntheticMnist(d);
  d.count = 48;
  d.seed = 52;
  data::StaticDataset test = data::MakeSyntheticMnist(d);
  return core::StaticWorkbench(std::move(train), std::move(test), opts);
}

std::string CacheDir() {
  const std::string dir = "axsnn_bench_cache";
  std::filesystem::create_directories(dir);
  return dir;
}

namespace {

std::string CellPath(float vth, long t) {
  std::ostringstream os;
  os << CacheDir() << "/cell_v" << static_cast<int>(vth * 100) << "_t" << t
     << ".bin";
  return os.str();
}

}  // namespace

bool LoadHeatmapCell(const core::StaticWorkbench& bench, float vth, long t,
                     HeatmapCell& cell) {
  const std::string path = CellPath(vth, t);
  if (!std::filesystem::exists(path)) return false;
  try {
    auto state = LoadTensorMap(path);
    // Rebuild the architecture at this Vth, then restore the weights.
    snn::StaticNetOptions net_opts = bench.options().net;
    net_opts.lif.v_threshold = vth;
    cell.model.net = snn::BuildStaticNet(net_opts);
    cell.model.net.LoadStateDict(state);
    cell.model.v_threshold = vth;
    cell.model.time_steps = t;
    cell.model.train_accuracy_pct = state.at("meta.train_acc")[0];
    cell.model.calibration.lif.clear();
    const auto lif_layers = cell.model.net.LifLayers();
    for (std::size_t i = 0; i < lif_layers.size(); ++i) {
      std::ostringstream key;
      key << "calib." << i;
      const Tensor& c = state.at(key.str());
      approx::LayerCalibration lc;
      lc.lif_name = lif_layers[i]->Name();
      lc.mean_rate = c[0];
      lc.mean_membrane = c[1];
      lc.mean_drive = c[2];
      lc.v_threshold = c[3];
      cell.model.calibration.lif.push_back(lc);
    }
    cell.pgd_images = state.at("adv.pgd");
    cell.bim_images = state.at("adv.bim");
    return true;
  } catch (const std::exception&) {
    return false;  // corrupt/old cache: recompute
  }
}

void SaveHeatmapCell(const HeatmapCell& cell) {
  auto state = cell.model.net.StateDict();
  state.emplace("meta.train_acc",
                Tensor({1}, {cell.model.train_accuracy_pct}));
  for (std::size_t i = 0; i < cell.model.calibration.lif.size(); ++i) {
    const approx::LayerCalibration& lc = cell.model.calibration.lif[i];
    std::ostringstream key;
    key << "calib." << i;
    state.emplace(key.str(),
                  Tensor({4}, {lc.mean_rate, lc.mean_membrane, lc.mean_drive,
                               lc.v_threshold}));
  }
  state.emplace("adv.pgd", cell.pgd_images);
  state.emplace("adv.bim", cell.bim_images);
  SaveTensorMap(CellPath(cell.model.v_threshold, cell.model.time_steps),
                state);
}

HeatmapCell MakeHeatmapCell(const core::StaticWorkbench& bench, float vth,
                            long t) {
  HeatmapCell cell;
  if (LoadHeatmapCell(bench, vth, t, cell)) return cell;
  cell.model = bench.Train(vth, t);
  const float eps = static_cast<float>(1.0 * kEpsilonScale);  // paper eps 1.0
  cell.pgd_images = bench.Craft(cell.model, core::AttackKind::kPgd, eps);
  cell.bim_images = bench.Craft(cell.model, core::AttackKind::kBim, eps);
  SaveHeatmapCell(cell);
  return cell;
}

void HeatmapCellStore::Attach(scenario::StaticScenarioEngine& engine) {
  engine.set_train_fn([this](float vth, long t) { return Train(vth, t); });
  engine.set_craft_fn(
      [this](const core::StaticWorkbench::TrainedModel& model,
             const scenario::AttackSpec& attack, float epsilon) {
        return Images(model, attack, epsilon);
      });
}

core::StaticWorkbench::TrainedModel HeatmapCellStore::Train(float vth,
                                                            long t) {
  HeatmapCell cell = MakeHeatmapCell(bench_, vth, t);
  {
    std::lock_guard<std::mutex> lock(mu_);
    images_.emplace(std::make_pair(static_cast<int>(vth * 100), t),
                    std::make_pair(std::move(cell.pgd_images),
                                   std::move(cell.bim_images)));
  }
  return std::move(cell.model);
}

Tensor HeatmapCellStore::Images(
    const core::StaticWorkbench::TrainedModel& model,
    const scenario::AttackSpec& attack, float epsilon) const {
  if (attack.name == "none") return bench_.test_set().images;
  AXSNN_CHECK(attack.name == "PGD" || attack.name == "BIM",
              "heatmap cell cache holds PGD/BIM sets only, not '"
                  << attack.name << "'");
  const float cached_eps = static_cast<float>(1.0 * kEpsilonScale);
  AXSNN_CHECK(epsilon == cached_eps,
              "heatmap cells are crafted at paper eps 1.0");
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = images_.find(
      {static_cast<int>(model.v_threshold * 100), model.time_steps});
  AXSNN_CHECK(it != images_.end(),
              "heatmap cell images missing — craft hook called before the "
              "train hook for this structural cell");
  return attack.name == "PGD" ? it->second.first : it->second.second;
}

void PrintBanner(const std::string& artifact, const std::string& paper_claim) {
  std::cout << "#############################################################\n"
            << "# Reproduction: Security-Aware Approximate Spiking Neural\n"
            << "# Networks (DATE 2023) — " << artifact << "\n"
            << "# Paper claim: " << paper_claim << "\n"
            << "# Substrate: synthetic datasets, CPU SNN trainer; epsilon\n"
            << "# axis compressed by x" << kEpsilonScale
            << " (see EXPERIMENTS.md).\n"
            << "#############################################################\n";
}

void RunEpsSweepFigure(const EpsSweepFigure& figure) {
  PrintBanner(figure.artifact, figure.paper_claim);
  std::cout << "runtime pool: " << runtime::GlobalPool()->thread_count()
            << " thread(s)\n";

  core::StaticWorkbench workbench(MakeStaticTrain(2048), MakeStaticTest(512),
                                  FigureOptions());
  scenario::StaticScenarioEngine engine(workbench);

  const std::vector<double> eps_grid = PaperEpsGrid();
  scenario::ScenarioGrid grid;
  grid.v_thresholds = {0.25f};
  grid.time_steps = {32};
  grid.attacks = {scenario::AttackSpec{figure.attack, {}}};
  grid.epsilons.clear();
  for (double paper_eps : eps_grid) {
    // Multiply in float exactly like the pre-engine harnesses, so crafted
    // sets (and the golden fig2 report) stay bit-identical.
    grid.epsilons.push_back(
        static_cast<double>(static_cast<float>(paper_eps) * kEpsilonScale));
  }
  grid.levels = figure.levels;

  const scenario::ScenarioOutcome outcome = engine.Run(grid);

  std::cout << "trained AccSNN: train accuracy "
            << outcome.train_accuracy_pct.front() << "%\n";
  for (double paper_eps : eps_grid)
    std::cout << "paper eps " << paper_eps << " done\n";

  std::vector<eval::Series> series;
  for (std::size_t il = 0; il < figure.levels.size(); ++il) {
    eval::Series s{figure.series_names[il], {}};
    for (std::size_t ie = 0; ie < eps_grid.size(); ++ie)
      s.values.push_back(outcome.Robustness(0, 0, 0, ie, 0, 0, il, 0));
    series.push_back(std::move(s));
  }
  eval::PrintSeriesTable(std::cout, figure.table_title, "eps", eps_grid,
                         series);
  eval::PrintRunFooter(std::cout, outcome.stats.sweep_seconds,
                       static_cast<long>(grid.CellCount()),
                       runtime::GlobalPool()->thread_count());
}

void RunPrecisionHeatmap(approx::Precision precision,
                         const std::string& figure_name,
                         const std::string& paper_claim) {
  PrintBanner(figure_name, paper_claim);
  core::StaticWorkbench workbench(MakeStaticTrain(384), MakeStaticTest(192),
                                  HeatmapOptions());
  scenario::StaticScenarioEngine engine(workbench);
  HeatmapCellStore store(workbench);
  store.Attach(engine);

  scenario::ScenarioGrid grid;
  grid.v_thresholds = VthGrid();
  grid.time_steps = TimeGrid();
  grid.attacks = {scenario::AttackSpec{"PGD", {}},
                  scenario::AttackSpec{"BIM", {}}};
  grid.epsilons = {1.0 * kEpsilonScale};  // paper eps 1.0
  grid.precisions = {precision};
  grid.levels = {0.01};

  const scenario::ScenarioOutcome outcome = engine.Run(grid);

  const auto vths = VthGrid();
  const auto times = TimeGrid();
  std::vector<std::vector<double>> pgd(times.size(),
                                       std::vector<double>(vths.size()));
  std::vector<std::vector<double>> bim = pgd;
  for (std::size_t row = 0; row < times.size(); ++row) {
    for (std::size_t col = 0; col < vths.size(); ++col) {
      pgd[row][col] = outcome.Robustness(col, row, 0, 0, 0, 0, 0, 0);
      bim[row][col] = outcome.Robustness(col, row, 1, 0, 0, 0, 0, 0);
    }
  }

  std::vector<double> time_labels(times.begin(), times.end());
  std::vector<double> vth_labels(vths.begin(), vths.end());
  eval::PrintHeatmap(std::cout, figure_name + " (a): PGD accuracy [%]",
                     "timesteps", time_labels, "Vth", vth_labels, pgd);
  eval::PrintHeatmap(std::cout, figure_name + " (b): BIM accuracy [%]",
                     "timesteps", time_labels, "Vth", vth_labels, bim);
}

}  // namespace axsnn::bench
