#include "bench_common.hpp"

#include <filesystem>
#include <functional>
#include <iostream>
#include <sstream>

#include "eval/report.hpp"
#include "runtime/parallel_for.hpp"
#include "snn/lif_layer.hpp"
#include "tensor/serialize.hpp"

namespace axsnn::bench {

std::vector<double> PaperEpsGrid() {
  return {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0, 1.5};
}

Tensor MakeSpikes(Shape shape, float density, Rng& rng) {
  Tensor gate = Tensor::Uniform(shape, 0.0f, 1.0f, rng);
  Tensor vals = Tensor::Uniform(shape, 0.25f, 1.0f, rng);
  Tensor x(std::move(shape));
  for (long i = 0; i < x.numel(); ++i)
    x[i] = gate[i] < density ? vals[i] : 0.0f;
  return x;
}

std::vector<float> VthGrid() {
  std::vector<float> v;
  for (float x = 0.25f; x <= 2.26f; x += 0.25f) v.push_back(x);
  return v;
}

std::vector<long> TimeGrid() {
  std::vector<long> t;
  for (long x = 32; x <= 80; x += 8) t.push_back(x);
  return t;
}

data::StaticDataset MakeStaticTrain(long count) {
  data::SyntheticMnistOptions opts;
  opts.count = count;
  opts.seed = 1001;
  return data::MakeSyntheticMnist(opts);
}

data::StaticDataset MakeStaticTest(long count) {
  data::SyntheticMnistOptions opts;
  opts.count = count;
  opts.seed = 2002;
  return data::MakeSyntheticMnist(opts);
}

data::EventDataset MakeDvsTrain(long count) {
  data::DvsGestureOptions opts;
  opts.count = count;
  opts.seed = 3003;
  return data::MakeSyntheticDvsGesture(opts);
}

data::EventDataset MakeDvsTest(long count) {
  data::DvsGestureOptions opts;
  opts.count = count;
  opts.seed = 4004;
  return data::MakeSyntheticDvsGesture(opts);
}

core::StaticWorkbench::Options FigureOptions() {
  core::StaticWorkbench::Options opts;
  opts.train.epochs = 6;
  opts.train.batch_size = 32;
  opts.train_time_steps_cap = 12;
  opts.attack_time_steps_cap = 8;
  opts.attack_steps = 10;
  // Eq. (1) gain recalibrated at this training budget so the published
  // level bands hold (level 0.1 ~ half accuracy, level 1.0 ~ chance).
  opts.threshold_gain = 2.5;
  return opts;
}

core::StaticWorkbench::Options HeatmapOptions() {
  core::StaticWorkbench::Options opts;
  opts.train.epochs = 3;
  opts.train.batch_size = 48;
  opts.train_time_steps_cap = 10;
  opts.attack_time_steps_cap = 8;
  opts.attack_steps = 6;
  opts.eval_batch = 96;
  return opts;
}

core::DvsWorkbench::Options DvsOptions() {
  core::DvsWorkbench::Options opts;
  opts.train.epochs = 16;
  opts.time_bins = 24;
  return opts;
}

std::string CacheDir() {
  const std::string dir = "axsnn_bench_cache";
  std::filesystem::create_directories(dir);
  return dir;
}

namespace {

std::string CellPath(float vth, long t) {
  std::ostringstream os;
  os << CacheDir() << "/cell_v" << static_cast<int>(vth * 100) << "_t" << t
     << ".bin";
  return os.str();
}

}  // namespace

bool LoadHeatmapCell(const core::StaticWorkbench& bench, float vth, long t,
                     HeatmapCell& cell) {
  const std::string path = CellPath(vth, t);
  if (!std::filesystem::exists(path)) return false;
  try {
    auto state = LoadTensorMap(path);
    // Rebuild the architecture at this Vth, then restore the weights.
    snn::StaticNetOptions net_opts = bench.options().net;
    net_opts.lif.v_threshold = vth;
    cell.model.net = snn::BuildStaticNet(net_opts);
    cell.model.net.LoadStateDict(state);
    cell.model.v_threshold = vth;
    cell.model.time_steps = t;
    cell.model.train_accuracy_pct = state.at("meta.train_acc")[0];
    cell.model.calibration.lif.clear();
    const auto lif_layers = cell.model.net.LifLayers();
    for (std::size_t i = 0; i < lif_layers.size(); ++i) {
      std::ostringstream key;
      key << "calib." << i;
      const Tensor& c = state.at(key.str());
      approx::LayerCalibration lc;
      lc.lif_name = lif_layers[i]->Name();
      lc.mean_rate = c[0];
      lc.mean_membrane = c[1];
      lc.mean_drive = c[2];
      lc.v_threshold = c[3];
      cell.model.calibration.lif.push_back(lc);
    }
    cell.pgd_images = state.at("adv.pgd");
    cell.bim_images = state.at("adv.bim");
    return true;
  } catch (const std::exception&) {
    return false;  // corrupt/old cache: recompute
  }
}

void SaveHeatmapCell(const HeatmapCell& cell) {
  auto state = cell.model.net.StateDict();
  state.emplace("meta.train_acc",
                Tensor({1}, {cell.model.train_accuracy_pct}));
  for (std::size_t i = 0; i < cell.model.calibration.lif.size(); ++i) {
    const approx::LayerCalibration& lc = cell.model.calibration.lif[i];
    std::ostringstream key;
    key << "calib." << i;
    state.emplace(key.str(),
                  Tensor({4}, {lc.mean_rate, lc.mean_membrane, lc.mean_drive,
                               lc.v_threshold}));
  }
  state.emplace("adv.pgd", cell.pgd_images);
  state.emplace("adv.bim", cell.bim_images);
  SaveTensorMap(CellPath(cell.model.v_threshold, cell.model.time_steps),
                state);
}

HeatmapCell MakeHeatmapCell(const core::StaticWorkbench& bench, float vth,
                            long t) {
  HeatmapCell cell;
  if (LoadHeatmapCell(bench, vth, t, cell)) return cell;
  cell.model = bench.Train(vth, t);
  const float eps = static_cast<float>(1.0 * kEpsilonScale);  // paper eps 1.0
  cell.pgd_images = bench.Craft(cell.model, core::AttackKind::kPgd, eps);
  cell.bim_images = bench.Craft(cell.model, core::AttackKind::kBim, eps);
  SaveHeatmapCell(cell);
  return cell;
}

void ForEachHeatmapCell(
    const core::StaticWorkbench& bench,
    const std::function<void(HeatmapCell&, std::size_t, std::size_t)>& fn) {
  const auto vths = VthGrid();
  const auto times = TimeGrid();
  const long total = static_cast<long>(vths.size() * times.size());
  // Cells are independent; outer parallelism wins because each cell's inner
  // loops are small (the pool throttles nested parallelism to inline, which
  // is intended). grain 1 = one sweep cell per pool task.
  runtime::ParallelFor(
      0, total,
      [&](long idx) {
        const std::size_t row = static_cast<std::size_t>(idx) / vths.size();
        const std::size_t col = static_cast<std::size_t>(idx) % vths.size();
        HeatmapCell cell = MakeHeatmapCell(bench, vths[col], times[row]);
        fn(cell, row, col);
      },
      /*grain=*/1);
}

void PrintBanner(const std::string& artifact, const std::string& paper_claim) {
  std::cout << "#############################################################\n"
            << "# Reproduction: Security-Aware Approximate Spiking Neural\n"
            << "# Networks (DATE 2023) — " << artifact << "\n"
            << "# Paper claim: " << paper_claim << "\n"
            << "# Substrate: synthetic datasets, CPU SNN trainer; epsilon\n"
            << "# axis compressed by x" << kEpsilonScale
            << " (see EXPERIMENTS.md).\n"
            << "#############################################################\n";
}

void RunPrecisionHeatmap(approx::Precision precision,
                         const std::string& figure_name,
                         const std::string& paper_claim) {
  PrintBanner(figure_name, paper_claim);
  core::StaticWorkbench workbench(MakeStaticTrain(384), MakeStaticTest(192),
                                  HeatmapOptions());
  const auto vths = VthGrid();
  const auto times = TimeGrid();
  std::vector<std::vector<double>> pgd(times.size(),
                                       std::vector<double>(vths.size()));
  std::vector<std::vector<double>> bim = pgd;

  ForEachHeatmapCell(workbench, [&](HeatmapCell& cell, std::size_t row,
                                    std::size_t col) {
    snn::Network ax = workbench.MakeAx(cell.model, 0.01, precision);
    pgd[row][col] = workbench.AccuracyPct(ax, cell.pgd_images,
                                          cell.model.time_steps);
    bim[row][col] = workbench.AccuracyPct(ax, cell.bim_images,
                                          cell.model.time_steps);
  });

  std::vector<double> time_labels(times.begin(), times.end());
  std::vector<double> vth_labels(vths.begin(), vths.end());
  eval::PrintHeatmap(std::cout, figure_name + " (a): PGD accuracy [%]",
                     "timesteps", time_labels, "Vth", vth_labels, pgd);
  eval::PrintHeatmap(std::cout, figure_name + " (b): BIM accuracy [%]",
                     "timesteps", time_labels, "Vth", vth_labels, bim);
}

}  // namespace axsnn::bench
