// Fig. 7a — Clean accuracy of the *accurate* SNN (no attack, no
// approximation) over the (Vth x T) grid: the baseline against which the
// precision-scaled heatmaps (Figs. 4-6) are compared.
//
// Paper: broad high-accuracy plateau (94-99%) with degradation in the
// high-Vth corner where spiking activity dies out.
//
// Declarative form: the Figs. 4-6 grid with attack "none" and level 0 (the
// identity variant), over the same store-cached structural cells.
#include <iostream>

#include "bench_common.hpp"
#include "eval/report.hpp"
#include "scenario/store.hpp"

using namespace axsnn;

int main(int argc, char** argv) {
  const scenario::ShardRunnerOptions cli = bench::ParseCliOrExit(argc, argv);
  bench::PrintBanner("Fig. 7a (AccSNN clean-accuracy heatmap)",
                     "high plateau, collapse at very high Vth");
  core::StaticWorkbench workbench(bench::MakeStaticTrain(384),
                                  bench::MakeStaticTest(192),
                                  bench::HeatmapOptions());
  scenario::StaticScenarioEngine engine(workbench);
  // Shares the 63 trained models with Figs. 4-6 through the artifact store.
  scenario::StaticScenarioStore store(
      cli.cache_dir.empty() ? bench::CacheDir() : cli.cache_dir, workbench);
  engine.set_store(&store);

  scenario::ScenarioGrid grid;
  grid.v_thresholds = bench::VthGrid();
  grid.time_steps = bench::TimeGrid();
  grid.attacks = {scenario::AttackSpec{"none", {}}};
  grid.levels = {0.0};  // FP32 level 0 == the accurate model

  const scenario::ScenarioOutcome outcome =
      engine.Run(grid, cli.run_options());

  const auto vths = bench::VthGrid();
  const auto times = bench::TimeGrid();
  std::vector<std::vector<double>> clean(times.size(),
                                         std::vector<double>(vths.size()));
  for (std::size_t row = 0; row < times.size(); ++row)
    for (std::size_t col = 0; col < vths.size(); ++col)
      clean[row][col] = outcome.Robustness(col, row, 0, 0, 0, 0, 0, 0);

  std::vector<double> time_labels(times.begin(), times.end());
  std::vector<double> vth_labels(vths.begin(), vths.end());
  eval::PrintHeatmap(std::cout, "Fig. 7a: AccSNN clean accuracy [%]",
                     "timesteps", time_labels, "Vth", vth_labels, clean);
  bench::WriteScenarioStats(cli.stats_out, outcome.stats);
  return 0;
}
