// Fig. 7a — Clean accuracy of the *accurate* SNN (no attack, no
// approximation) over the (Vth x T) grid: the baseline against which the
// precision-scaled heatmaps (Figs. 4-6) are compared.
//
// Paper: broad high-accuracy plateau (94-99%) with degradation in the
// high-Vth corner where spiking activity dies out.
#include <iostream>

#include "bench_common.hpp"
#include "eval/report.hpp"

using namespace axsnn;

int main() {
  bench::PrintBanner("Fig. 7a (AccSNN clean-accuracy heatmap)",
                     "high plateau, collapse at very high Vth");
  core::StaticWorkbench workbench(bench::MakeStaticTrain(384),
                                  bench::MakeStaticTest(192),
                                  bench::HeatmapOptions());
  const auto vths = bench::VthGrid();
  const auto times = bench::TimeGrid();
  std::vector<std::vector<double>> clean(times.size(),
                                         std::vector<double>(vths.size()));

  bench::ForEachHeatmapCell(
      workbench,
      [&](bench::HeatmapCell& cell, std::size_t row, std::size_t col) {
        clean[row][col] = workbench.AccuracyPct(
            cell.model.net, workbench.test_set().images,
            cell.model.time_steps);
      });

  std::vector<double> time_labels(times.begin(), times.end());
  std::vector<double> vth_labels(vths.begin(), vths.end());
  eval::PrintHeatmap(std::cout, "Fig. 7a: AccSNN clean accuracy [%]",
                     "timesteps", time_labels, "Vth", vth_labels, clean);
  return 0;
}
