// Serving front-end benchmark + CI smoke gate.
//
// Measures the batched InferenceServer (src/serve/) on the 16x16 static
// net: closed-loop producers drive the server at micro-batch caps
// 1/2/4/8/16 and the harness reports per-request p50/p99 latency, QPS and
// the realized mean batch size. Two correctness segments ride along and
// make the binary self-asserting (nonzero exit on violation), so CI runs
// it as a smoke leg:
//  * bit-identity: batched serving must match N sequential single-sample
//    forwards bit for bit at every kernel mode;
//  * hot-swap: sustained traffic across repeated SwapModel calls must see
//    zero dropped, zero failed and zero corrupted responses — every reply
//    bitwise matches the model of the epoch that served it.
//
// Results are merged into BENCH_runtime.json (cwd) as a "serving" section,
// replacing any previous one.
//
// Usage: bench_serving [requests_per_point] [producers]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "kernels/dispatch.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/server.hpp"
#include "snn/loss.hpp"
#include "snn/models.hpp"
#include "tensor/random.hpp"

namespace axsnn {
namespace {

using Clock = std::chrono::steady_clock;

constexpr long kTimeSteps = 6;
constexpr int kServeWorkers = 2;

snn::Network MakeServeNet(std::uint64_t seed = 7) {
  snn::StaticNetOptions opts;
  opts.height = 16;
  opts.width = 16;
  opts.seed = seed;
  return snn::BuildStaticNet(opts);
}

void FillRequest(serve::InferRequest& req, std::uint64_t image_seed) {
  Rng rng(image_seed);
  Tensor image = Tensor::Uniform({1, 16, 16}, 0.0f, 1.0f, rng);
  serve::EncodeStaticRequest(req, image, kTimeSteps, snn::Encoding::kRate,
                             /*seed=*/image_seed * 31 + 1);
}

/// Reference: the request served alone (batch of one) on `net`.
Tensor SequentialLogits(snn::Network& net, const Tensor& frames) {
  Shape batched = frames.shape();
  batched.insert(batched.begin() + 1, 1);
  const Tensor& seq = net.ForwardShared(frames.Reshaped(batched), false);
  Tensor logits = snn::ReadoutMean(seq);  // [1, K]
  return logits.Reshaped({logits.dim(1)});
}

bool BitIdentical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

// --- latency / QPS vs micro-batch size --------------------------------------

struct LatencyPoint {
  long max_batch = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch = 0.0;
};

LatencyPoint RunLatencyPoint(const snn::Network& model, long max_batch,
                             long requests, int producers) {
  serve::ServerOptions opts;
  opts.workers = kServeWorkers;
  opts.max_batch = max_batch;
  opts.max_delay = std::chrono::microseconds(100);
  serve::InferenceServer server(model, opts);

  // Closed loop with a pipeline: each producer keeps `depth` requests in
  // flight so total concurrency scales with the batch cap under test.
  const long depth = std::max<long>(1, max_batch);
  const long per_producer = (requests + producers - 1) / producers;
  const long rounds = (per_producer + depth - 1) / depth;

  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(producers));
  std::vector<std::thread> threads;
  const auto wall_start = Clock::now();
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      auto& lats = latencies[static_cast<std::size_t>(p)];
      lats.reserve(static_cast<std::size_t>(rounds * depth));
      std::vector<serve::InferRequest> reqs(static_cast<std::size_t>(depth));
      std::vector<Clock::time_point> submitted(
          static_cast<std::size_t>(depth));
      for (std::size_t d = 0; d < reqs.size(); ++d)
        FillRequest(reqs[d], static_cast<std::uint64_t>(p * 1000 + d));
      for (long r = 0; r < rounds; ++r) {
        for (std::size_t d = 0; d < reqs.size(); ++d) {
          submitted[d] = Clock::now();
          server.Submit(reqs[d]);
        }
        for (std::size_t d = 0; d < reqs.size(); ++d) {
          reqs[d].Wait();
          lats.push_back(std::chrono::duration<double, std::milli>(
                             Clock::now() - submitted[d])
                             .count());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  server.Drain();

  std::vector<double> all;
  for (auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
  std::sort(all.begin(), all.end());

  LatencyPoint point;
  point.max_batch = max_batch;
  point.qps = static_cast<double>(all.size()) / wall_s;
  point.p50_ms = all[all.size() / 2];
  point.p99_ms = all[(all.size() * 99) / 100];
  point.mean_batch = server.stats().mean_batch();
  return point;
}

// --- bit-identity across kernel modes ----------------------------------------

struct ModeIdentity {
  const char* name;
  bool identical;
};

std::vector<ModeIdentity> RunBitIdentity(const snn::Network& model) {
  const struct {
    kernels::KernelMode mode;
    const char* name;
  } kModes[] = {
      {kernels::KernelMode::kAuto, "auto"},
      {kernels::KernelMode::kNaive, "naive"},
      {kernels::KernelMode::kGemm, "gemm"},
      {kernels::KernelMode::kSparse, "sparse"},
      {kernels::KernelMode::kSimd, "simd"},
  };
  constexpr int kRequests = 32;

  std::vector<ModeIdentity> results;
  for (const auto& m : kModes) {
    kernels::ScopedKernelMode scoped(m.mode);
    snn::Network reference = model.Clone();
    std::vector<serve::InferRequest> requests(kRequests);
    std::vector<Tensor> expected;
    for (int i = 0; i < kRequests; ++i) {
      FillRequest(requests[i], 500 + static_cast<std::uint64_t>(i));
      expected.push_back(SequentialLogits(reference, requests[i].frames));
    }

    serve::ServerOptions opts;
    opts.workers = kServeWorkers;
    opts.max_batch = 8;
    opts.max_delay = std::chrono::microseconds(500);
    serve::InferenceServer server(model, opts);
    for (auto& req : requests) server.Submit(req);
    for (auto& req : requests) req.Wait();

    bool identical = true;
    for (int i = 0; i < kRequests; ++i)
      identical &= requests[i].ok() &&
                   BitIdentical(requests[i].logits, expected[i]);
    results.push_back({m.name, identical});
  }
  return results;
}

// --- hot swap under sustained load -------------------------------------------

struct HotSwapResult {
  long requests = 0;
  long swaps = 0;
  long failed = 0;
  long dropped = 0;
  long mismatched = 0;
  long epochs_observed = 0;
};

HotSwapResult RunHotSwap(const snn::Network& model_a,
                         const snn::Network& model_b) {
  constexpr int kProducers = 2;
  constexpr int kSlots = 8;
  constexpr int kRounds = 16;
  constexpr int kSwaps = 8;

  snn::Network ref_a = model_a.Clone();
  snn::Network ref_b = model_b.Clone();
  Tensor expected_a[kProducers][kSlots];
  Tensor expected_b[kProducers][kSlots];
  serve::InferRequest requests[kProducers][kSlots];
  for (int p = 0; p < kProducers; ++p) {
    for (int s = 0; s < kSlots; ++s) {
      FillRequest(requests[p][s], static_cast<std::uint64_t>(p * 100 + s));
      expected_a[p][s] = SequentialLogits(ref_a, requests[p][s].frames);
      expected_b[p][s] = SequentialLogits(ref_b, requests[p][s].frames);
    }
  }

  serve::ServerOptions opts;
  opts.workers = kServeWorkers;
  opts.max_batch = 4;
  opts.max_delay = std::chrono::microseconds(100);
  serve::InferenceServer server(model_a, opts);

  std::atomic<long> mismatched{0};
  std::mutex epochs_mutex;
  std::set<std::uint64_t> epochs;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int round = 0; round < kRounds; ++round) {
        for (int s = 0; s < kSlots; ++s) server.Submit(requests[p][s]);
        for (int s = 0; s < kSlots; ++s) {
          auto& req = requests[p][s];
          req.Wait();
          if (!req.ok()) continue;  // counted via server stats
          // Epoch 1 + odd epochs serve model A; swaps alternate to B first.
          const Tensor& want = (req.model_epoch() % 2 == 1)
                                   ? expected_a[p][s]
                                   : expected_b[p][s];
          if (!BitIdentical(req.logits, want)) mismatched.fetch_add(1);
          std::lock_guard<std::mutex> lock(epochs_mutex);
          epochs.insert(req.model_epoch());
        }
      }
    });
  }
  for (int i = 0; i < kSwaps; ++i) {
    server.SwapModel((i % 2 == 0) ? model_b : model_a);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  for (auto& t : producers) t.join();
  server.Drain();

  const auto stats = server.stats();
  HotSwapResult result;
  result.requests = static_cast<long>(stats.submitted);
  result.swaps = kSwaps;
  result.failed = static_cast<long>(stats.failed);
  result.dropped =
      static_cast<long>(stats.submitted - stats.completed - stats.failed);
  result.mismatched = mismatched.load();
  result.epochs_observed = static_cast<long>(epochs.size());
  return result;
}

// --- BENCH_runtime.json merge ------------------------------------------------

std::string ReadFileOrEmpty(const char* path) {
  std::string content;
  if (FILE* f = std::fopen(path, "rb")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
      content.append(buf, n);
    std::fclose(f);
  }
  return content;
}

/// Inserts/replaces the top-level "serving" section. The file is our own
/// writer's output (micro_runtime.cpp emits it), so plain string surgery —
/// truncate before the existing "serving" key or the final brace — is safe.
void MergeServingSection(const std::string& section) {
  std::string existing = ReadFileOrEmpty("BENCH_runtime.json");
  std::string out;
  const std::size_t serving = existing.find("\"serving\"");
  if (serving != std::string::npos) {
    const std::size_t comma = existing.rfind(',', serving);
    out = existing.substr(0, comma != std::string::npos ? comma : serving);
  } else if (const std::size_t brace = existing.rfind('}');
             brace != std::string::npos) {
    out = existing.substr(0, brace);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' '))
      out.pop_back();
  } else {
    out = "{";
  }
  out += ",\n  \"serving\": ";
  // A previously empty/missing file leaves a bare "{" — drop the comma.
  if (out.compare(0, 2, "{,") == 0) out.erase(1, 1);
  out += section;
  out += "\n}\n";
  if (FILE* f = std::fopen("BENCH_runtime.json", "w")) {
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_runtime.json (serving section)\n");
  }
}

}  // namespace
}  // namespace axsnn

int main(int argc, char** argv) {
  long requests_per_point = 256;
  int producers = 4;
  if (argc > 1) {
    const auto parsed = axsnn::runtime::ParseLongStrict(argv[1]);
    if (!parsed || *parsed <= 0) {
      std::fprintf(stderr,
                   "usage: %s [requests_per_point] [producers]  (positive "
                   "integers, got \"%s\")\n",
                   argv[0], argv[1]);
      return 2;
    }
    requests_per_point = *parsed;
  }
  if (argc > 2) {
    const auto parsed = axsnn::runtime::ParseLongStrict(argv[2]);
    if (!parsed || *parsed <= 0 || *parsed > 64) {
      std::fprintf(stderr,
                   "usage: %s [requests_per_point] [producers]  (producers in "
                   "[1, 64], got \"%s\")\n",
                   argv[0], argv[2]);
      return 2;
    }
    producers = static_cast<int>(*parsed);
  }

  std::printf("== serving benchmark ==\n");
  std::printf("workload: static_net[1x16x16, T=%ld], %d serving workers, %d "
              "producers, %ld requests/point\n",
              axsnn::kTimeSteps, axsnn::kServeWorkers, producers,
              requests_per_point);

  const axsnn::snn::Network model = axsnn::MakeServeNet();
  bool ok = true;

  std::printf("\nlatency / throughput vs micro-batch cap:\n");
  std::printf("  max_batch       qps    p50_ms    p99_ms   mean_batch\n");
  std::vector<axsnn::LatencyPoint> points;
  for (long max_batch : {1L, 2L, 4L, 8L, 16L}) {
    points.push_back(axsnn::RunLatencyPoint(model, max_batch,
                                            requests_per_point, producers));
    const auto& p = points.back();
    std::printf("  %9ld  %8.1f  %8.3f  %8.3f   %9.2f\n", p.max_batch, p.qps,
                p.p50_ms, p.p99_ms, p.mean_batch);
    if (!(p.qps > 0.0)) {
      std::printf("  ERROR: qps must be positive\n");
      ok = false;
    }
  }

  std::printf("\nbatched vs sequential bit-identity per kernel mode:\n");
  const auto identity = axsnn::RunBitIdentity(model);
  for (const auto& m : identity) {
    std::printf("  %-6s  %s\n", m.name, m.identical ? "identical" : "DIVERGED");
    ok &= m.identical;
  }

  std::printf("\nhot swap under sustained load:\n");
  const auto swap = axsnn::RunHotSwap(model, axsnn::MakeServeNet(99));
  std::printf(
      "  requests %ld  swaps %ld  failed %ld  dropped %ld  mismatched %ld  "
      "epochs_observed %ld\n",
      swap.requests, swap.swaps, swap.failed, swap.dropped, swap.mismatched,
      swap.epochs_observed);
  if (swap.failed != 0 || swap.dropped != 0 || swap.mismatched != 0) {
    std::printf("  ERROR: hot swap dropped/failed/corrupted responses\n");
    ok = false;
  }

  // --- JSON section ---------------------------------------------------------
  std::string section;
  char buf[256];
  section += "{\n    \"workload\": \"static_net[1x16x16,T=6] batched "
             "ForwardShared\",\n";
  std::snprintf(buf, sizeof(buf),
                "    \"producers\": %d,\n    \"requests_per_point\": %ld,\n"
                "    \"workers\": %d,\n",
                producers, requests_per_point, axsnn::kServeWorkers);
  section += buf;
  section += "    \"latency_qps\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::snprintf(buf, sizeof(buf),
                  "      {\"max_batch\": %ld, \"qps\": %.1f, \"p50_ms\": "
                  "%.4f, \"p99_ms\": %.4f, \"mean_batch\": %.2f}%s\n",
                  p.max_batch, p.qps, p.p50_ms, p.p99_ms, p.mean_batch,
                  i + 1 < points.size() ? "," : "");
    section += buf;
  }
  section += "    ],\n    \"bitwise_identical_modes\": {";
  for (std::size_t i = 0; i < identity.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "\"%s\": %s%s", identity[i].name,
                  identity[i].identical ? "true" : "false",
                  i + 1 < identity.size() ? ", " : "");
    section += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "},\n    \"hot_swap\": {\"requests\": %ld, \"swaps\": %ld, "
                "\"failed\": %ld, \"dropped\": %ld, \"mismatched\": %ld, "
                "\"epochs_observed\": %ld}\n  }",
                swap.requests, swap.swaps, swap.failed, swap.dropped,
                swap.mismatched, swap.epochs_observed);
  section += buf;
  axsnn::MergeServingSection(section);

  if (!ok) {
    std::printf("\nFAILED: serving invariants violated\n");
    return 1;
  }
  std::printf("\nall serving invariants hold\n");
  return 0;
}
