// Fig. 4 — Accuracy of the AxSNN (approximation level 0.01, precision scale
// FP32) under PGD and BIM at paper eps 1.0, over the (Vth x T) grid.
//
// Paper: accuracy varies strongly across the grid; a robust band exists at
// moderate Vth (0.5-1.25) and degenerates at Vth >= 1.75 where LIF neurons
// barely fire.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  axsnn::bench::RunPrecisionHeatmap(
      axsnn::approx::Precision::kFp32, "Fig. 4 (FP32 heatmap)",
      "robust band at moderate Vth; collapse at Vth >= 1.75 and high T",
      axsnn::bench::ParseCliOrExit(argc, argv));
  return 0;
}
