// Fig. 1 — Motivational case study: AccSNN vs AxSNN (approximation level
// 0.1) under a PGD attack across the perturbation-budget axis.
//
// Paper: at eps = 0 the AccSNN/AxSNN accuracies are 97%/52%; the AxSNN curve
// stays far below the AccSNN curve across the whole axis, and both collapse
// at the end of it.
#include <iostream>

#include "bench_common.hpp"
#include "eval/report.hpp"

using namespace axsnn;

int main() {
  bench::PrintBanner(
      "Fig. 1 (motivation: AccSNN vs AxSNN level 0.1 under PGD)",
      "AxSNN is drastically less robust: 97%/52% clean, 95%/40% @ paper "
      "eps 0.5");

  core::StaticWorkbench workbench(bench::MakeStaticTrain(2048),
                                  bench::MakeStaticTest(512),
                                  bench::FigureOptions());
  auto model = workbench.Train(/*vth=*/0.25f, /*time_steps=*/32);
  std::cout << "trained AccSNN (Vth=0.25, T=32): train accuracy "
            << model.train_accuracy_pct << "%\n";

  snn::Network axsnn =
      workbench.MakeAx(model, /*level=*/0.1, approx::Precision::kFp32);

  const std::vector<double> eps_grid = bench::PaperEpsGrid();
  eval::Series acc_series{"AccSNN", {}};
  eval::Series ax_series{"AxSNN(0.1)", {}};
  for (double paper_eps : eps_grid) {
    const float eps = static_cast<float>(paper_eps) * bench::kEpsilonScale;
    Tensor adversarial =
        workbench.Craft(model, core::AttackKind::kPgd, eps);
    acc_series.values.push_back(
        workbench.AccuracyPct(model.net, adversarial, model.time_steps));
    ax_series.values.push_back(
        workbench.AccuracyPct(axsnn, adversarial, model.time_steps));
    std::cout << "paper eps " << paper_eps << " done\n";
  }

  eval::PrintSeriesTable(
      std::cout,
      "Fig. 1: accuracy [%] vs perturbation budget (paper eps axis)",
      "eps", eps_grid, {acc_series, ax_series});
  return 0;
}
