// Fig. 1 — Motivational case study: AccSNN vs AxSNN (approximation level
// 0.1) under a PGD attack across the perturbation-budget axis.
//
// Paper: at eps = 0 the AccSNN/AxSNN accuracies are 97%/52%; the AxSNN curve
// stays far below the AccSNN curve across the whole axis, and both collapse
// at the end of it.
//
// Declarative form: the same grid as Fig. 2 with a two-entry level axis —
// level 0 *is* the accurate model (FP32 quantization is the identity and
// level 0 prunes nothing), so the AccSNN series is just another variant
// cell.
#include "bench_common.hpp"

using namespace axsnn;

int main(int argc, char** argv) {
  const scenario::ShardRunnerOptions cli = bench::ParseCliOrExit(argc, argv);
  bench::EpsSweepFigure figure;
  figure.artifact = "Fig. 1 (motivation: AccSNN vs AxSNN level 0.1 under PGD)";
  figure.paper_claim =
      "AxSNN is drastically less robust: 97%/52% clean, 95%/40% @ paper "
      "eps 0.5";
  figure.attack = "PGD";
  figure.table_title =
      "Fig. 1: accuracy [%] vs perturbation budget (paper eps axis)";
  figure.levels = {0.0, 0.1};
  figure.series_names = {"AccSNN", "AxSNN(0.1)"};
  bench::RunEpsSweepFigure(figure, cli);
  return 0;
}
