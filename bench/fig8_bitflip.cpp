// Fig. 8 (extension): bit-flip robustness across the approximate lattice.
//
// The paper's threat model perturbs inputs; this harness opens the storage
// surface instead — NeuroAttack-style deterministic bit-flip campaigns
// (src/faults/) swept as a first-class scenario-grid axis. One mini grid:
//
//   attacks     none | bitflip{flips=12}   (registry fault attack: the
//                                           adversary flips weight bits
//                                           instead of perturbing pixels)
//   precisions  fp32 | fp16 | int8          (the approximate lattice)
//   faults      none | BER 5e-4 | BER 5e-3 | int8 scale corruption
//                                           (the fault grid axis: evaluated
//                                           variant corrupted per cell)
//
// so every robustness row answers "how much accuracy does this precision
// tier give up under this corruption budget". The fp16 rows flip binary16
// half-words, the int8 rows flip 8-bit codes — and the last fault column
// pins exponent-bit corruption of the per-channel fp32 scale words, the
// int8 snapshot's highest-leverage storage.
//
// The report is fully deterministic (seeded training, seeded site draws,
// bit-identical kernels at any pool size), so CI byte-diffs it against
// bench/golden/fig8_bitflip_mini.golden — including a two-shard fan-out
// merged with --resume, which must reproduce the single-process bytes.
//
// Regenerating the golden (only after an *intentional* numerical change):
//   ./bench_fig8_bitflip > ../bench/golden/fig8_bitflip_mini.golden
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "eval/report.hpp"
#include "faults/campaign.hpp"
#include "scenario/store.hpp"

using namespace axsnn;

int main(int argc, char** argv) {
  const scenario::ShardRunnerOptions cli = bench::ParseCliOrExit(argc, argv);
  core::StaticWorkbench workbench = bench::MiniFig2Workbench();
  scenario::StaticScenarioEngine engine(workbench);
  std::unique_ptr<scenario::StaticScenarioStore> store;
  if (!cli.cache_dir.empty()) {
    store = std::make_unique<scenario::StaticScenarioStore>(cli.cache_dir,
                                                            workbench);
    engine.set_store(store.get());
  }

  scenario::ScenarioGrid grid;
  grid.v_thresholds = {0.25f};
  grid.time_steps = {8};
  grid.attacks = {scenario::AttackSpec{"none", {}},
                  scenario::AttackSpec{"bitflip", {{"flips", 12}, {"seed", 3}}}};
  grid.epsilons = {0.0};
  grid.precisions = {approx::Precision::kFp32, approx::Precision::kFp16,
                     approx::Precision::kInt8};
  grid.levels = {0.0};

  faults::FaultSpec ber_low;
  ber_low.kind = faults::FaultKind::kBitFlip;
  ber_low.ber = 5e-4;
  ber_low.seed = 101;
  faults::FaultSpec ber_high = ber_low;
  ber_high.ber = 5e-3;
  // Per-channel scale corruption: exponent bit 23 of the int8 snapshot's
  // fp32 scale words (a no-op on the float variants — empty surface).
  faults::FaultSpec scale_hit;
  scale_hit.kind = faults::FaultKind::kBitFlip;
  scale_hit.target = faults::WeightTarget::kInt8Scales;
  scale_hit.flips = 4;
  scale_hit.bit = 23;
  scale_hit.seed = 7;
  grid.faults = {faults::FaultSpec{}, ber_low, ber_high, scale_hit};

  const scenario::ScenarioOutcome outcome =
      engine.Run(grid, cli.run_options());

  std::cout << "== fig8: bit-flip robustness across the approximate lattice ==\n"
            << "cells: " << grid.CellCount()
            << ", trained models: " << outcome.stats.total_trained_models
            << ", crafted sets: " << outcome.stats.total_crafted_sets << "\n"
            << "train accuracy: "
            << eval::FormatValue(outcome.train_accuracy_pct.front(), 2)
            << "%\n";
  for (std::size_t ifl = 0; ifl < grid.faults.size(); ++ifl)
    std::cout << "fault[" << ifl << "] = " << grid.faults[ifl].Label() << "\n";

  for (std::size_t ia = 0; ia < grid.attacks.size(); ++ia) {
    std::vector<double> xs;
    for (std::size_t ifl = 0; ifl < grid.faults.size(); ++ifl)
      xs.push_back(static_cast<double>(ifl));
    std::vector<eval::Series> series;
    for (std::size_t ip = 0; ip < grid.precisions.size(); ++ip) {
      eval::Series s{approx::PrecisionName(grid.precisions[ip]), {}};
      for (std::size_t ifl = 0; ifl < grid.faults.size(); ++ifl)
        s.values.push_back(outcome.Robustness(0, 0, ia, 0, 0, ip, 0, 0, ifl));
      series.push_back(std::move(s));
    }
    eval::PrintSeriesTable(std::cout,
                           "mini Fig. 8 (" + grid.attacks[ia].Label() +
                               "): accuracy [%] by (precision, fault)",
                           "fault", xs, series);
  }

  // NeuroAttack-style greedy ranking on the int8 variant: which storage
  // bits hurt most, most damaging first. Deterministic in (model bytes,
  // seed), so it reproduces byte-identically on every shard/merge run.
  const auto& model = engine.TrainCached(0.25f, 8);
  const Tensor& images = workbench.test_set().images;
  const faults::EvalFn eval_fn = [&](snn::Network& victim) {
    return workbench.AccuracyPct(victim, images, model.time_steps);
  };
  core::VariantSpec int8_spec;
  int8_spec.precision = approx::Precision::kInt8;
  snn::Network ax = workbench.MakeAx(model, int8_spec);
  const float clean = workbench.AccuracyPct(ax, images, model.time_steps);

  faults::SensitivityOptions sopts;
  sopts.rounds = 3;
  sopts.seed = 5;
  const std::vector<faults::SensitivityStep> steps =
      faults::GreedySensitivitySearch(ax, approx::Precision::kInt8, eval_fn,
                                      sopts);
  std::cout << "== greedy sensitivity ranking (int8 variant) ==\n"
            << "clean accuracy: " << eval::FormatValue(clean, 2) << "%\n";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const faults::SensitivityStep& s = steps[i];
    std::cout << "flip " << (i + 1) << ": layer=" << s.layer
              << " target=" << faults::WeightTargetName(s.target)
              << " bit=" << s.bit << " word=" << s.word << " -> accuracy "
              << eval::FormatValue(s.accuracy_pct, 2) << "% (drop "
              << eval::FormatValue(s.drop_pct, 2) << "%)\n";
  }

  bench::WriteScenarioStats(cli.stats_out, outcome.stats);
  return 0;
}
