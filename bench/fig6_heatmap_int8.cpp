// Fig. 6 — Same experiment as Fig. 4 with INT8 precision scaling.
//
// Paper: INT8 gives the best robustness of the three scales in the robust
// band (PGD accuracy loss 4% at Vth 0.75, T 32 vs 12% for FP32).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  axsnn::bench::RunPrecisionHeatmap(
      axsnn::approx::Precision::kInt8, "Fig. 6 (INT8 heatmap)",
      "INT8 is the most robust precision scale in the robust band",
      axsnn::bench::ParseCliOrExit(argc, argv));
  return 0;
}
