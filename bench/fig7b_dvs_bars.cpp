// Fig. 7b — DVS-Gesture bar chart: AccSNN and AxSNN accuracy with no
// attack, under the Sparse attack, and under the Frame attack (no defense).
//
// Paper: AccSNN 92% clean; both models collapse under both neuromorphic
// attacks (AccSNN to 12%/10%, AxSNN similar) — motivating the AQF defense
// evaluated in Table II.
#include <iostream>

#include "bench_common.hpp"
#include "eval/report.hpp"

using namespace axsnn;

int main() {
  bench::PrintBanner(
      "Fig. 7b (DVS gesture: attacks without defense)",
      "clean 92%; sparse/frame attacks collapse both AccSNN and AxSNN");

  core::DvsWorkbench workbench(bench::MakeDvsTrain(550),
                               bench::MakeDvsTest(110), bench::DvsOptions());
  auto model = workbench.Train(/*vth=*/1.0f);
  std::cout << "trained AccSNN (Vth=1.0, " << workbench.options().time_bins
            << " time bins): train accuracy " << model.train_accuracy_pct
            << "%\n";

  snn::Network axsnn =
      workbench.MakeAx(model, /*level=*/0.1, approx::Precision::kFp32);

  data::EventDataset clean = workbench.test_set();
  data::EventDataset sparse = workbench.Craft(model, core::AttackKind::kSparse);
  data::EventDataset frame = workbench.Craft(model, core::AttackKind::kFrame);

  std::vector<std::vector<std::string>> rows;
  auto add_row = [&](const std::string& name, snn::Network& net) {
    rows.push_back({name,
                    eval::FormatValue(workbench.AccuracyPct(net, clean)),
                    eval::FormatValue(workbench.AccuracyPct(net, sparse)),
                    eval::FormatValue(workbench.AccuracyPct(net, frame))});
  };
  add_row("AccSNN", model.net);
  add_row("AxSNN(0.1)", axsnn);

  eval::PrintTable(std::cout,
                   "Fig. 7b: DVS128-Gesture-class accuracy [%] (no defense)",
                   {"model", "no attack", "sparse", "frame"}, rows);
  return 0;
}
