// Fig. 7b — DVS-Gesture bar chart: AccSNN and AxSNN accuracy with no
// attack, under the Sparse attack, and under the Frame attack (no defense).
//
// Paper: AccSNN 92% clean; both models collapse under both neuromorphic
// attacks (AccSNN to 12%/10%, AxSNN similar) — motivating the AQF defense
// evaluated in Table II.
//
// Declarative form: one DVS ScenarioGrid — attack axis {none, Sparse,
// Frame} x level axis {0, 0.1} (level 0 is the accurate model) — with the
// engine training once and crafting each attack once.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "eval/report.hpp"
#include "scenario/store.hpp"

using namespace axsnn;

int main(int argc, char** argv) {
  const scenario::ShardRunnerOptions cli = bench::ParseCliOrExit(argc, argv);
  bench::PrintBanner(
      "Fig. 7b (DVS gesture: attacks without defense)",
      "clean 92%; sparse/frame attacks collapse both AccSNN and AxSNN");

  core::DvsWorkbench workbench(bench::MakeDvsTrain(550),
                               bench::MakeDvsTest(110), bench::DvsOptions());
  scenario::DvsScenarioEngine engine(workbench);
  std::unique_ptr<scenario::DvsScenarioStore> store;
  if (!cli.cache_dir.empty()) {
    store =
        std::make_unique<scenario::DvsScenarioStore>(cli.cache_dir, workbench);
    engine.set_store(store.get());
  }

  scenario::ScenarioGrid grid;
  grid.v_thresholds = {1.0f};
  grid.attacks = {scenario::AttackSpec{"none", {}},
                  scenario::AttackSpec{"Sparse", {}},
                  scenario::AttackSpec{"Frame", {}}};
  grid.levels = {0.0, 0.1};  // AccSNN, AxSNN(0.1)

  const scenario::ScenarioOutcome outcome =
      engine.Run(grid, cli.run_options());
  std::cout << "trained AccSNN (Vth=1.0, " << workbench.options().time_bins
            << " time bins): train accuracy "
            << outcome.train_accuracy_pct.front() << "%\n";

  std::vector<std::vector<std::string>> rows;
  const auto add_row = [&](const std::string& name, std::size_t level_i) {
    std::vector<std::string> row = {name};
    for (std::size_t attack_i = 0; attack_i < grid.attacks.size(); ++attack_i)
      row.push_back(eval::FormatValue(
          outcome.Robustness(0, 0, attack_i, 0, 0, 0, level_i, 0)));
    rows.push_back(std::move(row));
  };
  add_row("AccSNN", 0);
  add_row("AxSNN(0.1)", 1);

  eval::PrintTable(std::cout,
                   "Fig. 7b: DVS128-Gesture-class accuracy [%] (no defense)",
                   {"model", "no attack", "sparse", "frame"}, rows);
  bench::WriteScenarioStats(cli.stats_out, outcome.stats);
  return 0;
}
