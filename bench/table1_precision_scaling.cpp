// Table I — Best robustness settings found by Algorithm 1 for the
// precision-scaled AxSNN classifier at the paper's three structural cells,
// under PGD and BIM at paper eps 1.0.
//
// Paper rows:
//   (0.25,32) PGD -> (FP32, 0.01)  88%   BIM -> (INT8, 0.009) 80%
//   (0.75,32) PGD -> (INT8, 0.011) 92%   BIM -> (FP16, 0.013) 91%
//   (1.0,48)  PGD -> (FP32, 0.01)  97%   BIM -> (INT8, 0.0125) 96%
//
// Each row is one Algorithm-1 search; in whole-grid mode the search runs
// its declarative ScenarioGrid on the shared engine, whose trained-model
// cache lets the PGD and BIM searches of one structural cell train it only
// once (6 searches, 3 trainings).
#include <iostream>
#include <memory>
#include <sstream>

#include "bench_common.hpp"
#include "eval/report.hpp"
#include "scenario/store.hpp"

using namespace axsnn;

int main(int argc, char** argv) {
  // The table is a sequence of searches, not one grid, so it accepts
  // --cache-dir only (no --shard/--resume): with a cache dir, the three
  // structural models persist and a rerun skips all training.
  const scenario::ShardRunnerOptions cli = bench::ParseCliOrExit(
      argc, argv, /*allow_shard=*/false, /*allow_resume=*/false);
  bench::PrintBanner(
      "Table I (Algorithm 1: best precision-scaling settings)",
      "per-(Vth,T) best (precision, level) keeps 80-97% accuracy under "
      "attack");

  core::StaticWorkbench workbench(bench::MakeStaticTrain(1024),
                                  bench::MakeStaticTest(256),
                                  bench::FigureOptions());
  scenario::StaticScenarioEngine engine(workbench);
  std::unique_ptr<scenario::StaticScenarioStore> store;
  if (!cli.cache_dir.empty()) {
    store = std::make_unique<scenario::StaticScenarioStore>(cli.cache_dir,
                                                            workbench);
    engine.set_store(store.get());
  }

  const std::vector<std::pair<float, long>> cells = {
      {0.25f, 32}, {0.75f, 32}, {1.0f, 48}};
  const std::vector<core::AttackKind> attacks = {core::AttackKind::kPgd,
                                                 core::AttackKind::kBim};

  std::vector<std::vector<std::string>> rows;
  for (const auto& [vth, t] : cells) {
    for (core::AttackKind attack : attacks) {
      core::SearchSpace space;
      space.v_thresholds = {vth};
      space.time_steps = {t};
      space.precisions = {approx::Precision::kInt8, approx::Precision::kFp16,
                          approx::Precision::kFp32};
      space.approx_levels = {0.009, 0.01, 0.011, 0.0125, 0.013};
      core::SearchConfig cfg;
      cfg.attack = attack;
      cfg.epsilon = 1.0f * bench::kEpsilonScale;  // paper eps 1.0
      cfg.quality_constraint_pct = 60.0f;
      cfg.return_first = false;  // evaluate the grid, report the best
      core::SearchOutcome outcome =
          core::PrecisionScalingSearch(workbench, space, cfg, &engine);

      std::ostringstream cell_name;
      cell_name << '(' << vth << ',' << t << ')';
      rows.push_back(
          {cell_name.str(), core::AttackName(attack),
           '(' + approx::PrecisionName(outcome.best.precision) + ", " +
               eval::FormatValue(outcome.best.level, 4) + ')',
           eval::FormatValue(outcome.best.robustness_pct)});
      std::cout << cell_name.str() << ' ' << core::AttackName(attack)
                << ": evaluated " << outcome.trace.size()
                << " candidates\n";
    }
  }

  eval::PrintTable(std::cout,
                   "Table I: best robustness settings (paper eps 1.0)",
                   {"(Vth,T)", "attack", "(precision, ath)", "accuracy [%]"},
                   rows);
  return 0;
}
