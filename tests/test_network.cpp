// Tests for the Network container, encoders, loss/readout and trainer.
#include <gtest/gtest.h>

#include "snn/conv2d.hpp"
#include "snn/dense.hpp"
#include "snn/encoding.hpp"
#include "snn/inference.hpp"
#include "snn/lif_layer.hpp"
#include "snn/loss.hpp"
#include "snn/models.hpp"
#include "snn/network.hpp"
#include "snn/pool.hpp"
#include "snn/trainer.hpp"
#include "test_util.hpp"

namespace axsnn::snn {
namespace {

Network TinyNet(std::uint64_t seed = 1) {
  Rng rng(seed);
  LifParams lif;
  lif.v_threshold = 0.5f;
  Network net;
  net.Emplace<Dense>("fc1", 4, 8, rng);
  net.Emplace<LifLayer>("lif1", lif);
  net.Emplace<Dense>("fc2", 8, 3, rng);
  return net;
}

TEST(Network, ForwardBackwardShapes) {
  Network net = TinyNet();
  net.SetGradCache(true);  // Backward through a train=false pass
  Rng rng(2);
  Tensor x = Tensor::Uniform({5, 2, 4}, 0.0f, 1.0f, rng);
  Tensor y = net.Forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{5, 2, 3}));
  Tensor g = Tensor::Ones({5, 2, 3});
  Tensor gi = net.Backward(g);
  EXPECT_EQ(gi.shape(), x.shape());
}

TEST(Network, EmptyNetworkThrows) {
  Network net;
  EXPECT_THROW(net.Forward(Tensor({1, 1}), false), std::invalid_argument);
  EXPECT_THROW(net.Backward(Tensor({1, 1})), std::invalid_argument);
  EXPECT_THROW(net.Add(nullptr), std::invalid_argument);
}

TEST(Network, ParamsAndGradsAligned) {
  Network net = TinyNet();
  auto params = net.Params();
  auto grads = net.Grads();
  ASSERT_EQ(params.size(), grads.size());
  ASSERT_EQ(params.size(), 4u);  // two dense layers x (weight, bias)
  for (std::size_t i = 0; i < params.size(); ++i)
    EXPECT_EQ(params[i]->shape(), grads[i]->shape());
  EXPECT_EQ(net.ParameterCount(), 4 * 8 + 8 + 8 * 3 + 3);
}

TEST(Network, CloneSharesNothing) {
  Network net = TinyNet();
  Network copy = net.Clone();
  copy.Params()[0]->Fill(0.0f);
  EXPECT_NE(net.Params()[0]->Sum(), 0.0f);
  // Same topology.
  EXPECT_EQ(copy.size(), net.size());
  EXPECT_EQ(copy.ParameterCount(), net.ParameterCount());
}

TEST(Network, CloneProducesIdenticalOutputs) {
  Network net = TinyNet(7);
  Network copy = net.Clone();
  Rng rng(3);
  Tensor x = Tensor::Uniform({4, 2, 4}, 0.0f, 1.0f, rng);
  EXPECT_TRUE(net.Forward(x, false).AllClose(copy.Forward(x, false), 0.0f));
}

TEST(Network, StateDictRoundTrip) {
  Network net = TinyNet(11);
  auto state = net.StateDict();
  EXPECT_EQ(state.size(), 4u);
  Network other = TinyNet(99);  // different init
  other.LoadStateDict(state);
  Rng rng(4);
  Tensor x = Tensor::Uniform({3, 1, 4}, 0.0f, 1.0f, rng);
  EXPECT_TRUE(net.Forward(x, false).AllClose(other.Forward(x, false), 0.0f));
}

TEST(Network, LoadStateDictRejectsMissingKey) {
  Network net = TinyNet();
  std::map<std::string, Tensor> empty;
  EXPECT_THROW(net.LoadStateDict(empty), std::invalid_argument);
}

TEST(Network, SetLifParamsAppliesEverywhere) {
  StaticNetOptions opts;
  Network net = BuildStaticNet(opts);
  LifParams p;
  p.v_threshold = 1.75f;
  net.SetLifParams(p);
  for (const LifLayer* lif : net.LifLayers())
    EXPECT_FLOAT_EQ(lif->params().v_threshold, 1.75f);
  EXPECT_EQ(net.LifLayers().size(), 4u);
}

TEST(Models, StaticNetTopology) {
  StaticNetOptions opts;
  Network net = BuildStaticNet(opts);
  EXPECT_EQ(net.size(), 11u);  // 3 conv + 4 lif + 2 pool + 2 fc
  Rng rng(5);
  Tensor x = Tensor::Uniform({2, 3, 1, 16, 16}, 0.0f, 1.0f, rng);
  Tensor y = net.Forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 10}));
  EXPECT_THROW(BuildStaticNet({.height = 15}), std::invalid_argument);
}

TEST(Models, DvsNetTopology) {
  DvsNetOptions opts;
  Network net = BuildDvsNet(opts);
  EXPECT_EQ(net.size(), 11u);  // 2 conv + 3 lif + 3 pool + dropout + 2 fc
  Rng rng(6);
  Tensor x = Tensor::Uniform({2, 2, 2, 32, 32}, 0.0f, 1.0f, rng);
  Tensor y = net.Forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 2, 11}));
}

TEST(Encoding, RateMatchesIntensityInExpectation) {
  Rng rng(7);
  Tensor images({1, 1, 2, 2}, {0.0f, 0.25f, 0.75f, 1.0f});
  const long T = 4000;
  Tensor spikes = EncodeRate(images, T, rng);
  EXPECT_EQ(spikes.shape(), (Shape{T, 1, 1, 2, 2}));
  double sums[4] = {0, 0, 0, 0};
  for (long t = 0; t < T; ++t)
    for (long i = 0; i < 4; ++i) sums[i] += spikes[t * 4 + i];
  EXPECT_EQ(sums[0], 0.0);
  EXPECT_NEAR(sums[1] / T, 0.25, 0.03);
  EXPECT_NEAR(sums[2] / T, 0.75, 0.03);
  EXPECT_EQ(sums[3], static_cast<double>(T));
}

TEST(Encoding, DirectReplicates) {
  Tensor images({2, 1, 1, 2}, {0.1f, 0.9f, 0.4f, 0.6f});
  Tensor direct = EncodeDirect(images, 3);
  for (long t = 0; t < 3; ++t)
    for (long i = 0; i < 4; ++i)
      EXPECT_EQ(direct[t * 4 + i], images[i]);
}

TEST(Encoding, CollapseTimeGradientSums) {
  Tensor g({2, 1, 3}, {1, 2, 3, 10, 20, 30});
  Tensor c = CollapseTimeGradient(g);
  EXPECT_EQ(c.shape(), (Shape{1, 3}));
  EXPECT_TRUE(c.AllClose(Tensor({1, 3}, {11, 22, 33})));
}

TEST(Encoding, TimeMajorTransposes) {
  Tensor btx({2, 3, 2}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  Tensor tbx = TimeMajor(btx);
  EXPECT_EQ(tbx.shape(), (Shape{3, 2, 2}));
  // sample 1, time 2 of [B,T,F] = values {10, 11} -> position [2][1] in [T,B,F]
  EXPECT_FLOAT_EQ(tbx(2, 1, 0), 10.0f);
  EXPECT_FLOAT_EQ(tbx(2, 1, 1), 11.0f);
}

TEST(Loss, ReadoutMeanAveragesOverTime) {
  Tensor seq({2, 1, 2}, {1, 3, 3, 5});
  Tensor logits = ReadoutMean(seq);
  EXPECT_TRUE(logits.AllClose(Tensor({1, 2}, {2, 4})));
  Tensor back = ReadoutMeanBackward(Tensor({1, 2}, {2, 4}), 2);
  EXPECT_TRUE(back.AllClose(Tensor({2, 1, 2}, {1, 2, 1, 2})));
}

TEST(Loss, SoftmaxCrossEntropyKnownValues) {
  Tensor logits({1, 2}, {0.0f, 0.0f});
  const int labels[] = {0};
  LossResult r = SoftmaxCrossEntropy(logits, labels);
  EXPECT_NEAR(r.loss, std::log(2.0f), 1e-5f);
  EXPECT_NEAR(r.grad_logits(0, 0), -0.5f, 1e-5f);
  EXPECT_NEAR(r.grad_logits(0, 1), 0.5f, 1e-5f);
  EXPECT_EQ(r.correct, 1);  // argmax tie -> first index wins
}

TEST(Loss, GradientSumsToZeroPerRow) {
  Rng rng(8);
  Tensor logits = Tensor::Normal({5, 7}, 0.0f, 2.0f, rng);
  std::vector<int> labels = {0, 3, 6, 2, 1};
  LossResult r = SoftmaxCrossEntropy(logits, labels);
  for (long i = 0; i < 5; ++i) {
    double row = 0.0;
    for (long k = 0; k < 7; ++k) row += r.grad_logits(i, k);
    EXPECT_NEAR(row, 0.0, 1e-5);
  }
}

TEST(Loss, RejectsBadLabels) {
  Tensor logits({1, 3});
  const int bad[] = {3};
  EXPECT_THROW(SoftmaxCrossEntropy(logits, bad), std::invalid_argument);
  const int neg[] = {-1};
  EXPECT_THROW(SoftmaxCrossEntropy(logits, neg), std::invalid_argument);
}

TEST(Loss, NumericallyStableForLargeLogits) {
  Tensor logits({1, 2}, {1000.0f, -1000.0f});
  const int labels[] = {0};
  LossResult r = SoftmaxCrossEntropy(logits, labels);
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_NEAR(r.loss, 0.0f, 1e-4f);
}

TEST(Trainer, AdamReducesQuadraticLoss) {
  // Minimize ||w||^2 via gradients 2w.
  Tensor w({4}, {1.0f, -2.0f, 3.0f, -4.0f});
  TrainConfig cfg;
  cfg.learning_rate = 0.1f;
  AdamOptimizer opt({&w}, cfg);
  for (int i = 0; i < 200; ++i) {
    Tensor g = w;
    g.Scale(2.0f);
    opt.Step({&g});
  }
  EXPECT_LT(w.MeanAbs(), 0.05f);
}

TEST(Trainer, FitStaticLearnsToSeparateTwoClasses) {
  // Two trivially separable classes: bright top half vs bright bottom half.
  const long n = 64;
  Tensor images({n, 1, 4, 4});
  std::vector<int> labels(n);
  for (long i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(i % 2);
    for (long y = 0; y < 4; ++y)
      for (long x = 0; x < 4; ++x)
        images(i, 0, y, x) =
            (labels[i] == 0) == (y < 2) ? 0.9f : 0.05f;
  }
  Rng rng(9);
  LifParams lif;
  lif.v_threshold = 0.5f;
  Network net;
  net.Emplace<Dense>("fc1", 16, 12, rng);
  net.Emplace<LifLayer>("lif1", lif);
  net.Emplace<Dense>("fc2", 12, 2, rng);

  TrainConfig cfg;
  cfg.epochs = 12;
  cfg.batch_size = 16;
  cfg.time_steps = 6;
  TrainResult result = FitStatic(net, images, labels, cfg);
  EXPECT_GT(result.final_accuracy, 0.95f);
  EXPECT_EQ(result.epochs.size(), 12u);
  // Loss decreased from the first epoch.
  EXPECT_LT(result.epochs.back().mean_loss, result.epochs.front().mean_loss);
}

TEST(Trainer, FitTemporalValidatesFrameCount) {
  Network net = TinyNet();
  Tensor frames({4, 6, 4});  // wrong rank
  std::vector<int> labels(4, 0);
  TrainConfig cfg;
  EXPECT_THROW(FitTemporal(net, frames, labels, cfg), std::invalid_argument);
}

TEST(Inference, PredictionsMatchAccuracy) {
  Network net = TinyNet(21);
  Rng rng(10);
  Tensor images = Tensor::Uniform({10, 1, 2, 2}, 0.0f, 1.0f, rng);
  // Tiny dense-only net expects 4 features; reshape path exercises Dense
  // flattening.
  std::vector<int> labels(10, 0);
  auto preds = PredictStatic(net, images, 4, Encoding::kRate, 77, 4);
  float acc = AccuracyStatic(net, images, labels, 4, Encoding::kRate, 77, 4);
  long correct = 0;
  for (int p : preds) correct += (p == 0) ? 1 : 0;
  EXPECT_FLOAT_EQ(acc, static_cast<float>(correct) / 10.0f);
}

TEST(Inference, DeterministicGivenSeed) {
  Network net = TinyNet(22);
  Rng rng(11);
  Tensor images = Tensor::Uniform({6, 1, 2, 2}, 0.0f, 1.0f, rng);
  auto a = PredictStatic(net, images, 8, Encoding::kRate, 5, 3);
  auto b = PredictStatic(net, images, 8, Encoding::kRate, 5, 3);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace axsnn::snn
