// Tests for the adversarial attacks: PGD/BIM budget compliance and
// effectiveness, sparse/frame neuromorphic attack properties.
#include <cmath>

#include <gtest/gtest.h>

#include "attacks/gradient_attacks.hpp"
#include "attacks/neuromorphic_attacks.hpp"
#include "data/dvs_gesture.hpp"
#include "data/synthetic_mnist.hpp"
#include "snn/dense.hpp"
#include "snn/inference.hpp"
#include "snn/lif_layer.hpp"
#include "snn/models.hpp"
#include "snn/trainer.hpp"

namespace axsnn::attacks {
namespace {

/// Small trained classifier over the synthetic digits (shared by tests).
struct Victim {
  snn::Network net;
  data::StaticDataset test;
};

Victim MakeVictim() {
  data::SyntheticMnistOptions d;
  d.count = 512;
  d.seed = 1;
  data::StaticDataset train = data::MakeSyntheticMnist(d);
  d.count = 128;
  d.seed = 2;
  Victim v{snn::Network{}, data::MakeSyntheticMnist(d)};
  snn::StaticNetOptions no;
  no.lif.v_threshold = 0.25f;
  v.net = snn::BuildStaticNet(no);
  snn::TrainConfig tc;
  tc.epochs = 3;
  tc.time_steps = 8;
  snn::FitStatic(v.net, train.images, train.labels, tc);
  return v;
}

Victim& SharedVictim() {
  static Victim v = MakeVictim();
  return v;
}

TEST(PgdAttack, RespectsEpsilonBallAndPixelRange) {
  Victim& v = SharedVictim();
  GradientAttackConfig cfg;
  cfg.epsilon = 0.05f;
  cfg.steps = 5;
  cfg.time_steps = 6;
  Tensor adv = PgdAttack(v.net, v.test.images, v.test.labels, cfg);
  ASSERT_EQ(adv.shape(), v.test.images.shape());
  for (long i = 0; i < adv.numel(); ++i) {
    EXPECT_LE(std::fabs(adv[i] - v.test.images[i]), cfg.epsilon + 1e-5f);
    EXPECT_GE(adv[i], 0.0f);
    EXPECT_LE(adv[i], 1.0f);
  }
}

TEST(PgdAttack, ZeroEpsilonReturnsClean) {
  Victim& v = SharedVictim();
  GradientAttackConfig cfg;
  cfg.epsilon = 0.0f;
  Tensor adv = PgdAttack(v.net, v.test.images, v.test.labels, cfg);
  EXPECT_TRUE(adv.AllClose(v.test.images, 0.0f));
}

TEST(PgdAttack, ReducesAccuracy) {
  Victim& v = SharedVictim();
  const float clean = snn::AccuracyStatic(v.net, v.test.images, v.test.labels,
                                          16, snn::Encoding::kRate, 42);
  GradientAttackConfig cfg;
  cfg.epsilon = 0.08f;
  cfg.steps = 10;
  cfg.time_steps = 8;
  Tensor adv = PgdAttack(v.net, v.test.images, v.test.labels, cfg);
  const float attacked = snn::AccuracyStatic(v.net, adv, v.test.labels, 16,
                                             snn::Encoding::kRate, 42);
  EXPECT_LT(attacked, clean - 0.15f)
      << "clean " << clean << " vs attacked " << attacked;
}

TEST(PgdAttack, StrongerWithLargerBudget) {
  Victim& v = SharedVictim();
  GradientAttackConfig weak;
  weak.epsilon = 0.01f;
  weak.steps = 5;
  weak.time_steps = 6;
  GradientAttackConfig strong = weak;
  strong.epsilon = 0.1f;
  Tensor adv_w = PgdAttack(v.net, v.test.images, v.test.labels, weak);
  Tensor adv_s = PgdAttack(v.net, v.test.images, v.test.labels, strong);
  const float acc_w = snn::AccuracyStatic(v.net, adv_w, v.test.labels, 16,
                                          snn::Encoding::kRate, 42);
  const float acc_s = snn::AccuracyStatic(v.net, adv_s, v.test.labels, 16,
                                          snn::Encoding::kRate, 42);
  EXPECT_LE(acc_s, acc_w);
}

TEST(BimAttack, RespectsBudgetAndDeterministic) {
  Victim& v = SharedVictim();
  GradientAttackConfig cfg;
  cfg.epsilon = 0.04f;
  cfg.steps = 5;
  cfg.time_steps = 6;
  cfg.encoding = snn::Encoding::kDirect;  // deterministic gradient path
  Tensor a = BimAttack(v.net, v.test.images, v.test.labels, cfg);
  Tensor b = BimAttack(v.net, v.test.images, v.test.labels, cfg);
  EXPECT_TRUE(a.AllClose(b, 0.0f));  // no random start, deterministic grads
  for (long i = 0; i < a.numel(); ++i)
    EXPECT_LE(std::fabs(a[i] - v.test.images[i]), cfg.epsilon + 1e-5f);
}

TEST(BimAttack, FirstStepWithinEpsOverSteps) {
  Victim& v = SharedVictim();
  GradientAttackConfig cfg;
  cfg.epsilon = 0.1f;
  cfg.steps = 1;
  cfg.time_steps = 6;
  cfg.encoding = snn::Encoding::kDirect;
  Tensor adv = BimAttack(v.net, v.test.images, v.test.labels, cfg);
  // One BIM step moves each pixel by at most eps/steps = 0.1.
  for (long i = 0; i < adv.numel(); ++i)
    EXPECT_LE(std::fabs(adv[i] - v.test.images[i]), 0.1f + 1e-5f);
}

TEST(GradientAttack, InvalidConfigThrows) {
  Victim& v = SharedVictim();
  GradientAttackConfig cfg;
  cfg.steps = 0;
  EXPECT_THROW(PgdAttack(v.net, v.test.images, v.test.labels, cfg),
               std::invalid_argument);
  cfg.steps = 5;
  cfg.epsilon = -1.0f;
  EXPECT_THROW(PgdAttack(v.net, v.test.images, v.test.labels, cfg),
               std::invalid_argument);
}

// --- Neuromorphic attacks --------------------------------------------------

struct DvsVictim {
  snn::Network net;
  data::EventDataset test;
  long time_bins = 16;
};

DvsVictim& SharedDvsVictim() {
  static DvsVictim v = [] {
    data::DvsGestureOptions d;
    d.count = 110;
    d.seed = 1;
    data::EventDataset train = data::MakeSyntheticDvsGesture(d);
    d.count = 33;
    d.seed = 2;
    DvsVictim out{snn::Network{}, data::MakeSyntheticDvsGesture(d), 16};
    snn::DvsNetOptions no;
    out.net = snn::BuildDvsNet(no);
    Tensor frames = data::BinDataset(train, out.time_bins);
    snn::TrainConfig tc;
    tc.epochs = 10;
    tc.time_steps = out.time_bins;
    snn::FitTemporal(out.net, frames, train.labels, tc);
    return out;
  }();
  return v;
}

TEST(SparseAttack, OnlyAddsEvents) {
  DvsVictim& v = SharedDvsVictim();
  SparseAttackConfig cfg;
  cfg.time_bins = v.time_bins;
  cfg.max_iterations = 3;
  data::EventStream attacked =
      SparseAttack(v.net, v.test.streams[0], v.test.labels[0], cfg);
  EXPECT_GE(attacked.size(), v.test.streams[0].size());
  // All original events are still present (attack only injects).
  // Injected events are in-range.
  for (const data::Event& e : attacked.events) {
    EXPECT_GE(e.x, 0);
    EXPECT_LT(e.x, attacked.width);
    EXPECT_GE(e.t, 0.0f);
    EXPECT_LE(e.t, attacked.duration_ms);
  }
}

TEST(SparseAttack, InjectionBudgetBounded) {
  DvsVictim& v = SharedDvsVictim();
  SparseAttackConfig cfg;
  cfg.time_bins = v.time_bins;
  cfg.max_iterations = 4;
  cfg.events_per_iteration = 10;
  data::EventStream attacked =
      SparseAttack(v.net, v.test.streams[1], v.test.labels[1], cfg);
  EXPECT_LE(attacked.size() - v.test.streams[1].size(),
            cfg.max_iterations * cfg.events_per_iteration);
}

TEST(SparseAttack, RespectsSpacingConstraint) {
  DvsVictim& v = SharedDvsVictim();
  SparseAttackConfig cfg;
  cfg.time_bins = v.time_bins;
  cfg.max_iterations = 1;
  cfg.events_per_iteration = 16;
  cfg.min_spacing = 5;
  data::EventStream attacked =
      SparseAttack(v.net, v.test.streams[2], v.test.labels[2], cfg);
  // Collect only the injected events (those not in the original stream).
  std::vector<data::Event> injected;
  std::vector<data::Event> original = v.test.streams[2].events;
  for (const data::Event& e : attacked.events) {
    auto it = std::find(original.begin(), original.end(), e);
    if (it != original.end())
      original.erase(it);
    else
      injected.push_back(e);
  }
  const float bin_ms = attacked.duration_ms / cfg.time_bins;
  for (std::size_t i = 0; i < injected.size(); ++i)
    for (std::size_t j = i + 1; j < injected.size(); ++j) {
      if (static_cast<long>(injected[i].t / bin_ms) !=
          static_cast<long>(injected[j].t / bin_ms))
        continue;
      const long dist = std::max(std::labs(injected[i].x - injected[j].x),
                                 std::labs(injected[i].y - injected[j].y));
      EXPECT_GE(dist, cfg.min_spacing);
    }
}

TEST(SparseAttack, DatasetAttackDropsAccuracy) {
  DvsVictim& v = SharedDvsVictim();
  Tensor clean_frames = data::BinDataset(v.test, v.time_bins);
  const float clean =
      snn::AccuracyTemporal(v.net, clean_frames, v.test.labels);
  SparseAttackConfig cfg;
  cfg.time_bins = v.time_bins;
  data::EventDataset attacked = SparseAttackDataset(v.net, v.test, cfg);
  Tensor adv_frames = data::BinDataset(attacked, v.time_bins);
  const float adv = snn::AccuracyTemporal(v.net, adv_frames, v.test.labels);
  EXPECT_LT(adv, clean - 0.3f) << "clean " << clean << " adv " << adv;
}

TEST(FrameAttack, AddsBoundaryEventsEverywhere) {
  data::EventStream s;
  s.width = 8;
  s.height = 8;
  s.duration_ms = 20.0f;
  FrameAttackConfig cfg;
  cfg.period_ms = 5.0f;
  data::EventStream attacked = FrameAttack(s, cfg);
  // 28 boundary pixels x 4 ticks x 2 polarities.
  EXPECT_EQ(attacked.size(), 28 * 4 * 2);
  for (const data::Event& e : attacked.events) {
    const bool on_border =
        e.x == 0 || e.y == 0 || e.x == 7 || e.y == 7;
    EXPECT_TRUE(on_border);
  }
}

TEST(FrameAttack, PreservesOriginalEvents) {
  data::EventStream s;
  s.width = 8;
  s.height = 8;
  s.duration_ms = 20.0f;
  s.events = {{4, 4, 1, 3.0f}};
  FrameAttackConfig cfg;
  data::EventStream attacked = FrameAttack(s, cfg);
  const long interior = std::count_if(
      attacked.events.begin(), attacked.events.end(),
      [](const data::Event& e) { return e.x == 4 && e.y == 4; });
  EXPECT_EQ(interior, 1);
}

TEST(FrameAttack, WiderBorderAttacksMorePixels) {
  data::EventStream s;
  s.width = 8;
  s.height = 8;
  s.duration_ms = 10.0f;
  FrameAttackConfig one;
  one.period_ms = 5.0f;
  FrameAttackConfig two = one;
  two.border = 2;
  EXPECT_GT(FrameAttack(s, two).size(), FrameAttack(s, one).size());
}

TEST(FrameAttack, DropsAccuracy) {
  DvsVictim& v = SharedDvsVictim();
  Tensor clean_frames = data::BinDataset(v.test, v.time_bins);
  const float clean =
      snn::AccuracyTemporal(v.net, clean_frames, v.test.labels);
  FrameAttackConfig cfg;
  data::EventDataset attacked = FrameAttackDataset(v.test, cfg);
  Tensor adv_frames = data::BinDataset(attacked, v.time_bins);
  const float adv = snn::AccuracyTemporal(v.net, adv_frames, v.test.labels);
  EXPECT_LT(adv, clean - 0.15f);
}

// --- Parameterized budget sweep: attacks never exceed the eps ball ---------

class EpsilonSweepTest : public ::testing::TestWithParam<float> {};

TEST_P(EpsilonSweepTest, PerturbationWithinBudget) {
  Victim& v = SharedVictim();
  GradientAttackConfig cfg;
  cfg.epsilon = GetParam();
  cfg.steps = 4;
  cfg.time_steps = 4;
  Tensor adv = PgdAttack(v.net, v.test.images, v.test.labels, cfg);
  float max_delta = 0.0f;
  for (long i = 0; i < adv.numel(); ++i)
    max_delta = std::max(max_delta, std::fabs(adv[i] - v.test.images[i]));
  EXPECT_LE(max_delta, cfg.epsilon + 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Budgets, EpsilonSweepTest,
                         ::testing::Values(0.01f, 0.03f, 0.05f, 0.1f, 0.15f));

}  // namespace
}  // namespace axsnn::attacks
