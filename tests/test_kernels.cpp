// Differential kernel-equivalence suite for the sparsity-aware dispatch
// engine (src/kernels/): every kernel flavour (naive / gemm / sparse /
// simd) must produce the *same* result for the same inputs — bit-identical
// for fp32 naive/gemm/sparse (identical per-element accumulation order, see
// kernels/*.hpp), bit-identical for every int8 flavour including simd
// (integer accumulation is exact and the requantize rounds identically —
// kernels/simd_kernels.hpp), and within a documented accumulation-order
// tolerance for fp32 simd (FMA fuses the rounding; that is why auto never
// selects it).
//
// The suite sweeps shapes (1x1 kernels, pad 0 and kernel-1, H=W=1, single
// channels, odd sizes), spike densities 0 / 1% / 50% / 100%, and pool sizes
// 1 and 4, then pins the end-to-end guarantee with a golden determinism
// test: a fig2-style mini sweep whose report is byte-identical across every
// kernel mode and pool size, so Algorithm-1 search results can never depend
// on the dispatch decision.
//
// Modes are forced through SetGlobalKernelMode (precedence rule 1), so the
// comparisons stay meaningful even when CI exports AXSNN_KERNEL_MODE.
#include <bit>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "approx/approximation.hpp"
#include "approx/int8_backend.hpp"
#include "core/workbench.hpp"
#include "data/synthetic_mnist.hpp"
#include "eval/report.hpp"
#include "kernels/conv2d_kernels.hpp"
#include "kernels/cpu_features.hpp"
#include "kernels/dense_kernels.hpp"
#include "kernels/dispatch.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/workspace.hpp"
#include "snn/dense.hpp"
#include "snn/models.hpp"
#include "tensor/quantized.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace axsnn {
namespace {

using kernels::KernelMode;
// Forces one kernel path globally for a scope (and shields the test from
// any AXSNN_KERNEL_MODE the environment exports).
using kernels::ScopedKernelMode;

/// Pool-size override for a scope; restores the default on exit.
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) { runtime::SetGlobalThreads(threads); }
  ~ScopedThreads() { runtime::SetGlobalThreads(0); }
};

/// Spike-like activation tensor: each element is nonzero with probability
/// `density`, drawn from [0.25, 1) so values are representative of rate
/// coding (and never denormal).
Tensor MakeSpikes(Shape shape, float density, Rng& rng) {
  Tensor gate = Tensor::Uniform(shape, 0.0f, 1.0f, rng);
  Tensor vals = Tensor::Uniform(shape, 0.25f, 1.0f, rng);
  Tensor x(std::move(shape));
  for (long i = 0; i < x.numel(); ++i)
    x[i] = gate[i] < density ? vals[i] : 0.0f;
  return x;
}

/// Weights with ~25% exact zeros, mimicking Eq.-(1) pruning.
Tensor MakePrunedWeights(Shape shape, Rng& rng) {
  Tensor gate = Tensor::Uniform(shape, 0.0f, 1.0f, rng);
  Tensor w = Tensor::Normal(std::move(shape), 0.0f, 0.5f, rng);
  for (long i = 0; i < w.numel(); ++i)
    if (gate[i] < 0.25f) w[i] = 0.0f;
  return w;
}

/// ULP distance between two floats (max() for sign mismatch / non-finite).
long UlpDistance(float a, float b) {
  if (a == b) return 0;
  if (!std::isfinite(a) || !std::isfinite(b)) return 1L << 30;
  const auto ia = std::bit_cast<std::int32_t>(a);
  const auto ib = std::bit_cast<std::int32_t>(b);
  if ((ia < 0) != (ib < 0)) return 1L << 30;
  return std::labs(static_cast<long>(ia) - static_cast<long>(ib));
}

void ExpectBitIdentical(const Tensor& got, const Tensor& want,
                        const char* what) {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  for (long i = 0; i < got.numel(); ++i)
    ASSERT_EQ(got[i], want[i]) << what << " diverges at flat index " << i;
}

void ExpectWithinOneUlp(const Tensor& got, const Tensor& want,
                        const char* what) {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  for (long i = 0; i < got.numel(); ++i)
    ASSERT_LE(UlpDistance(got[i], want[i]), 1)
        << what << " diverges at flat index " << i << ": " << got[i]
        << " vs " << want[i];
}

/// The fp32 SIMD contract (kernels/simd_kernels.hpp): same math, different
/// accumulation rounding (FMA fusion, 8-lane splits). Bounded by normal
/// accumulation error at these fan-ins, nowhere near bit-identical — which
/// is exactly why auto never picks the path.
void ExpectWithinAccumTolerance(const Tensor& got, const Tensor& want,
                                const char* what) {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  for (long i = 0; i < got.numel(); ++i)
    ASSERT_NEAR(got[i], want[i], 1e-4f + 1e-4f * std::fabs(want[i]))
        << what << " diverges at flat index " << i;
}

/// True when the machine + build can run the AVX2 tier at all; the simd
/// sweeps additionally pin the scalar degrade with ScopedSimdTier.
bool SimdTierAvailable() {
  return kernels::ActiveSimdTier() != kernels::SimdTier::kScalar;
}

// --- conv2d differential sweep ----------------------------------------------

struct ConvCase {
  long n, c_in, c_out, h, w, k, pad;
};

const ConvCase kConvCases[] = {
    {2, 3, 4, 5, 7, 3, 1},  // odd spatial sizes, typical pad
    {1, 1, 2, 4, 4, 1, 0},  // 1x1 kernel, single input channel
    {2, 2, 3, 6, 5, 3, 0},  // pad 0
    {1, 2, 2, 5, 5, 3, 2},  // pad = kernel-1 (full padding)
    {3, 4, 3, 1, 1, 1, 0},  // H = W = 1
    {1, 1, 1, 3, 3, 3, 2},  // single in/out channel, pad = kernel-1
};

const float kDensities[] = {0.0f, 0.01f, 0.5f, 1.0f};

Tensor RunConv(const ConvCase& c, const Tensor& w, const Tensor& b,
               const Tensor& x, KernelMode mode) {
  ScopedKernelMode force(mode);
  runtime::Workspace scratch;
  const long h_out = c.h + 2 * c.pad - c.k + 1;
  const long w_out = c.w + 2 * c.pad - c.k + 1;
  Tensor out({c.n, c.c_out, h_out, w_out});
  const kernels::Conv2dGeom geom{c.c_in, c.c_out, c.k, c.pad};
  kernels::Conv2dForward(w, b, x, out, geom, mode, scratch);
  return out;
}

TEST(KernelEquivalence, Conv2dFp32BitIdenticalAcrossModes) {
  Rng rng(40);
  for (int threads : {1, 4}) {
    ScopedThreads pool(threads);
    for (const ConvCase& c : kConvCases) {
      Tensor w = MakePrunedWeights({c.c_out, c.c_in, c.k, c.k}, rng);
      Tensor b = Tensor::Normal({c.c_out}, 0.0f, 0.1f, rng);
      for (float density : kDensities) {
        SCOPED_TRACE(::testing::Message()
                     << "threads=" << threads << " c_in=" << c.c_in
                     << " c_out=" << c.c_out << " h=" << c.h << " w=" << c.w
                     << " k=" << c.k << " pad=" << c.pad
                     << " density=" << density);
        Tensor x = MakeSpikes({c.n, c.c_in, c.h, c.w}, density, rng);
        Tensor naive = RunConv(c, w, b, x, KernelMode::kNaive);
        ExpectBitIdentical(RunConv(c, w, b, x, KernelMode::kGemm), naive,
                           "conv2d gemm");
        ExpectBitIdentical(RunConv(c, w, b, x, KernelMode::kSparse), naive,
                           "conv2d sparse");
        ExpectBitIdentical(RunConv(c, w, b, x, KernelMode::kAuto), naive,
                           "conv2d auto");
        if (SimdTierAvailable())
          ExpectWithinAccumTolerance(RunConv(c, w, b, x, KernelMode::kSimd),
                                     naive, "conv2d simd");
        {
          // Forced-ISA-off: simd must degrade to the scalar reference.
          kernels::ScopedSimdTier scalar(kernels::SimdTier::kScalar);
          ExpectBitIdentical(RunConv(c, w, b, x, KernelMode::kSimd), naive,
                             "conv2d simd (scalar degrade)");
        }
      }
    }
  }
}

Tensor RunConvInt8(const ConvCase& c, const QuantizedTensor& qw,
                   const Tensor& b, const Tensor& x, KernelMode mode) {
  ScopedKernelMode force(mode);
  runtime::Workspace scratch;
  std::vector<std::int32_t> qact;
  const float act_scale = approx::Int8QuantizeActivations(x, qact);
  const long h_out = c.h + 2 * c.pad - c.k + 1;
  const long w_out = c.w + 2 * c.pad - c.k + 1;
  Tensor out({c.n, c.c_out, h_out, w_out});
  const kernels::Conv2dGeom geom{c.c_in, c.c_out, c.k, c.pad};
  kernels::Int8Conv2dForward(qw, b, qact.data(), act_scale, c.n, c.h, c.w,
                             out, geom, mode, scratch);
  return out;
}

TEST(KernelEquivalence, Conv2dInt8WithinOneUlpAcrossModes) {
  Rng rng(41);
  for (int threads : {1, 4}) {
    ScopedThreads pool(threads);
    for (const ConvCase& c : kConvCases) {
      Tensor w = MakePrunedWeights({c.c_out, c.c_in, c.k, c.k}, rng);
      QuantizedTensor qw = QuantizedTensor::QuantizeRowwise(w);
      Tensor b = Tensor::Normal({c.c_out}, 0.0f, 0.1f, rng);
      for (float density : kDensities) {
        SCOPED_TRACE(::testing::Message()
                     << "threads=" << threads << " c_in=" << c.c_in
                     << " c_out=" << c.c_out << " h=" << c.h << " w=" << c.w
                     << " k=" << c.k << " pad=" << c.pad
                     << " density=" << density);
        Tensor x = MakeSpikes({c.n, c.c_in, c.h, c.w}, density, rng);
        Tensor naive = RunConvInt8(c, qw, b, x, KernelMode::kNaive);
        ExpectWithinOneUlp(RunConvInt8(c, qw, b, x, KernelMode::kGemm),
                           naive, "int8 conv2d gemm");
        ExpectWithinOneUlp(RunConvInt8(c, qw, b, x, KernelMode::kSparse),
                           naive, "int8 conv2d sparse");
        ExpectWithinOneUlp(RunConvInt8(c, qw, b, x, KernelMode::kAuto),
                           naive, "int8 conv2d auto");
        // int8 simd is bit-exact at every tier (the stronger contract in
        // kernels/simd_kernels.hpp), including the vnni->avx2 mask and the
        // forced-ISA-off scalar degrade.
        for (kernels::SimdTier cap :
             {kernels::SimdTier::kVnni, kernels::SimdTier::kAvx2,
              kernels::SimdTier::kScalar}) {
          kernels::ScopedSimdTier scoped(cap);
          ExpectBitIdentical(RunConvInt8(c, qw, b, x, KernelMode::kSimd),
                             naive, "int8 conv2d simd");
        }
      }
    }
  }
}

// --- dense differential sweep ------------------------------------------------

struct DenseCase {
  long n, f_in, f_out;
};

const DenseCase kDenseCases[] = {
    {1, 1, 1},    // degenerate single MAC
    {4, 7, 5},    // odd sizes below one register tile
    {9, 16, 3},   // ragged sample block (9 % kNr != 0)
    {5, 33, 9},   // ragged feature tile (9 % kMr != 0)
    {8, 64, 16},  // exact tiles
};

Tensor RunDense(const DenseCase& c, const Tensor& w, const Tensor& b,
                const Tensor& x, KernelMode mode) {
  ScopedKernelMode force(mode);
  runtime::Workspace scratch;
  Tensor out({c.n, c.f_out});
  kernels::DenseForward(w, b, x, out, mode, scratch);
  return out;
}

TEST(KernelEquivalence, DenseFp32BitIdenticalAcrossModes) {
  Rng rng(42);
  for (int threads : {1, 4}) {
    ScopedThreads pool(threads);
    for (const DenseCase& c : kDenseCases) {
      Tensor w = MakePrunedWeights({c.f_out, c.f_in}, rng);
      Tensor b = Tensor::Normal({c.f_out}, 0.0f, 0.1f, rng);
      for (float density : kDensities) {
        SCOPED_TRACE(::testing::Message()
                     << "threads=" << threads << " n=" << c.n
                     << " f_in=" << c.f_in << " f_out=" << c.f_out
                     << " density=" << density);
        Tensor x = MakeSpikes({c.n, c.f_in}, density, rng);
        Tensor naive = RunDense(c, w, b, x, KernelMode::kNaive);
        ExpectBitIdentical(RunDense(c, w, b, x, KernelMode::kGemm), naive,
                           "dense gemm");
        ExpectBitIdentical(RunDense(c, w, b, x, KernelMode::kSparse), naive,
                           "dense sparse");
        ExpectBitIdentical(RunDense(c, w, b, x, KernelMode::kAuto), naive,
                           "dense auto");
        if (SimdTierAvailable())
          ExpectWithinAccumTolerance(RunDense(c, w, b, x, KernelMode::kSimd),
                                     naive, "dense simd");
        {
          kernels::ScopedSimdTier scalar(kernels::SimdTier::kScalar);
          ExpectBitIdentical(RunDense(c, w, b, x, KernelMode::kSimd), naive,
                             "dense simd (scalar degrade)");
        }
      }
    }
  }
}

Tensor RunDenseInt8(const DenseCase& c, const QuantizedTensor& qw,
                    const Tensor& b, const Tensor& x, KernelMode mode) {
  ScopedKernelMode force(mode);
  runtime::Workspace scratch;
  std::vector<std::int8_t> qact;
  const float act_scale = approx::Int8QuantizeActivations(x, qact);
  Tensor out({c.n, c.f_out});
  kernels::Int8DenseForward(qw, b, qact.data(), act_scale, c.n, out, mode,
                            scratch);
  return out;
}

TEST(KernelEquivalence, DenseInt8WithinOneUlpAcrossModes) {
  Rng rng(43);
  for (int threads : {1, 4}) {
    ScopedThreads pool(threads);
    for (const DenseCase& c : kDenseCases) {
      Tensor w = MakePrunedWeights({c.f_out, c.f_in}, rng);
      QuantizedTensor qw = QuantizedTensor::QuantizeRowwise(w);
      Tensor b = Tensor::Normal({c.f_out}, 0.0f, 0.1f, rng);
      for (float density : kDensities) {
        SCOPED_TRACE(::testing::Message()
                     << "threads=" << threads << " n=" << c.n
                     << " f_in=" << c.f_in << " f_out=" << c.f_out
                     << " density=" << density);
        Tensor x = MakeSpikes({c.n, c.f_in}, density, rng);
        Tensor naive = RunDenseInt8(c, qw, b, x, KernelMode::kNaive);
        ExpectWithinOneUlp(RunDenseInt8(c, qw, b, x, KernelMode::kGemm),
                           naive, "int8 dense gemm");
        ExpectWithinOneUlp(RunDenseInt8(c, qw, b, x, KernelMode::kSparse),
                           naive, "int8 dense sparse");
        ExpectWithinOneUlp(RunDenseInt8(c, qw, b, x, KernelMode::kAuto),
                           naive, "int8 dense auto");
        for (kernels::SimdTier cap :
             {kernels::SimdTier::kVnni, kernels::SimdTier::kAvx2,
              kernels::SimdTier::kScalar}) {
          kernels::ScopedSimdTier scoped(cap);
          ExpectBitIdentical(RunDenseInt8(c, qw, b, x, KernelMode::kSimd),
                             naive, "int8 dense simd");
        }
      }
    }
  }
}

// --- dispatch unit tests -----------------------------------------------------

TEST(KernelDispatch, ModeNamesRoundTrip) {
  for (KernelMode m : {KernelMode::kAuto, KernelMode::kNaive,
                       KernelMode::kGemm, KernelMode::kSparse,
                       KernelMode::kSimd})
    EXPECT_EQ(kernels::ParseKernelMode(kernels::KernelModeName(m)), m);
  EXPECT_FALSE(kernels::ParseKernelMode("fast").has_value());
  EXPECT_FALSE(kernels::ParseKernelMode("").has_value());
}

TEST(KernelDispatch, DensityCountsNonzerosExactly) {
  const float x[] = {0.0f, 1.0f, 0.0f, -2.0f};
  EXPECT_FLOAT_EQ(kernels::Density(x, 4), 0.5f);
  EXPECT_FLOAT_EQ(kernels::Density(x, 0), 0.0f);
  const std::int8_t q[] = {0, 0, 0, 5};
  EXPECT_FLOAT_EQ(kernels::Density(q, 4), 0.25f);
}

TEST(KernelDispatch, ChooseByDensityProbesOnlyAuto) {
  using kernels::ChooseByDensity;
  const float max = kernels::kConvSparseDensityMax;
  EXPECT_EQ(ChooseByDensity(KernelMode::kAuto, max, max, KernelMode::kGemm),
            KernelMode::kSparse);  // at the threshold: sparse
  EXPECT_EQ(ChooseByDensity(KernelMode::kAuto, max + 0.01f, max,
                            KernelMode::kGemm),
            KernelMode::kGemm);  // above: the family's dense fallback
  EXPECT_EQ(ChooseByDensity(KernelMode::kAuto, max + 0.01f, max,
                            KernelMode::kNaive),
            KernelMode::kNaive);
  EXPECT_EQ(ChooseByDensity(KernelMode::kAuto, 0.0f, max, KernelMode::kGemm),
            KernelMode::kSparse);
  // Pinned modes pass through regardless of density.
  EXPECT_EQ(ChooseByDensity(KernelMode::kNaive, 0.0f, max, KernelMode::kGemm),
            KernelMode::kNaive);
  EXPECT_EQ(ChooseByDensity(KernelMode::kGemm, 0.0f, max, KernelMode::kGemm),
            KernelMode::kGemm);
}

TEST(KernelDispatch, GlobalModeOverridesRequested) {
  {
    ScopedKernelMode force(KernelMode::kGemm);
    EXPECT_EQ(kernels::ResolveKernelMode(KernelMode::kSparse),
              KernelMode::kGemm);
    EXPECT_EQ(kernels::ResolveKernelMode(KernelMode::kAuto),
              KernelMode::kGemm);
  }
  ScopedKernelMode neutral(KernelMode::kAuto);
  EXPECT_EQ(kernels::ResolveKernelMode(KernelMode::kSparse),
            KernelMode::kSparse);
  EXPECT_EQ(kernels::ResolveKernelMode(KernelMode::kAuto), KernelMode::kAuto);
}

TEST(KernelDispatch, ApproxConfigKnobReachesLayers) {
  // ApplyApproximation plumbs cfg.kernel_mode to every weight layer, and the
  // resulting networks produce identical logits in every mode.
  ScopedKernelMode neutral(KernelMode::kAuto);
  snn::StaticNetOptions opts;
  opts.height = 16;
  opts.width = 16;
  opts.conv1_channels = 4;
  opts.conv2_channels = 8;
  opts.conv3_channels = 8;
  opts.hidden = 32;
  snn::Network net = snn::BuildStaticNet(opts);
  Rng rng(44);
  Tensor input = Tensor::Uniform({4, 2, 1, 16, 16}, 0.0f, 1.0f, rng);
  approx::CalibrationStats stats = approx::Calibrate(net, input);

  std::vector<Tensor> outs;
  for (KernelMode mode : {KernelMode::kNaive, KernelMode::kGemm,
                          KernelMode::kSparse, KernelMode::kAuto}) {
    approx::ApproxConfig cfg;
    cfg.precision = approx::Precision::kInt8;
    cfg.level = 0.01;
    cfg.kernel_mode = mode;
    auto [ax, report] = approx::MakeApproximate(net, cfg, stats);
    (void)report;
    outs.push_back(ax.Forward(input, false));
  }
  for (std::size_t i = 1; i < outs.size(); ++i)
    ExpectWithinOneUlp(outs[i], outs[0], "ApproxConfig kernel_mode logits");
}

TEST(KernelDispatch, LayerKnobDefaultsToAutoAndSticks) {
  Rng rng(45);
  snn::Dense fc("fc", 4, 2, rng);
  EXPECT_EQ(fc.kernel_mode(), KernelMode::kAuto);
  fc.set_kernel_mode(KernelMode::kSparse);
  EXPECT_EQ(fc.kernel_mode(), KernelMode::kSparse);
}

// --- golden determinism: fig2-style mini sweep -------------------------------

TEST(GoldenDeterminism, SweepReportByteIdenticalAcrossModesAndPools) {
  // A miniature Fig.-2 sweep (train -> craft PGD -> evaluate variants) whose
  // rendered report must be byte-identical for every kernel mode x pool
  // size, so an Algorithm-1 search outcome can never depend on the dispatch
  // decision or the thread count.
  core::StaticWorkbench::Options opts;
  opts.net.lif.v_threshold = 0.25f;
  opts.train.epochs = 2;
  opts.train.batch_size = 32;
  opts.train_time_steps_cap = 6;
  opts.attack_time_steps_cap = 6;
  opts.attack_steps = 3;
  opts.eval_batch = 64;

  data::SyntheticMnistOptions d;
  d.count = 192;
  d.seed = 51;
  data::StaticDataset train = data::MakeSyntheticMnist(d);
  d.count = 48;
  d.seed = 52;
  data::StaticDataset test = data::MakeSyntheticMnist(d);
  core::StaticWorkbench bench(std::move(train), std::move(test), opts);

  auto model = bench.Train(0.25f, 8);
  Tensor adversarial = bench.Craft(model, core::AttackKind::kPgd, 0.1f);
  const std::vector<core::VariantSpec> specs = {
      {approx::Precision::kFp32, 0.0},
      {approx::Precision::kFp32, 0.01},
      {approx::Precision::kInt8, 0.01},
  };

  std::string golden;
  for (KernelMode mode : {KernelMode::kNaive, KernelMode::kGemm,
                          KernelMode::kSparse, KernelMode::kAuto}) {
    for (int threads : {1, 4}) {
      ScopedThreads pool(threads);
      ScopedKernelMode force(mode);
      const std::vector<float> robustness =
          bench.EvaluateVariants(model, adversarial, specs);
      ASSERT_EQ(robustness.size(), specs.size());

      std::vector<eval::Series> series;
      for (std::size_t i = 0; i < specs.size(); ++i)
        series.push_back({"variant" + std::to_string(i),
                          {static_cast<double>(robustness[i])}});
      std::ostringstream os;
      eval::PrintSeriesTable(os, "golden mini sweep", "eps", {0.1}, series);

      if (golden.empty()) {
        golden = os.str();
      } else {
        EXPECT_EQ(golden, os.str())
            << "report changed under kernel mode "
            << kernels::KernelModeName(mode) << ", pool size " << threads;
      }
    }
  }
}

}  // namespace
}  // namespace axsnn
