// Distributed scenario execution: the hardened tensor/serialize error
// surface, --shard/--resume argv parsing, the checksummed artifact store
// (round trip, kind mismatch, corruption-as-miss), and the engine-level
// contracts — warm reruns and resumed runs recompute nothing, shard
// fan-out + merge is bit-identical to a single-process run, corrupted
// entries fall back to recompute, gated units replay from the journal,
// and two different workbenches can never serve each other artifacts.
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/workbench.hpp"
#include "scenario/engine.hpp"
#include "scenario/shard.hpp"
#include "scenario/store.hpp"
#include "tensor/serialize.hpp"

namespace axsnn {
namespace {

/// Unique per-test store directory, removed on scope exit.
class ScopedDir {
 public:
  explicit ScopedDir(const std::string& tag)
      : path_((std::filesystem::temp_directory_path() /
               ("axsnn_test_store_" + tag))
                  .string()) {
    std::filesystem::remove_all(path_);
  }
  ~ScopedDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// --- serialize hardening ----------------------------------------------------

TEST(SerializeHardening, TruncatedStreamReportsByteOffset) {
  std::ostringstream os;
  WriteTensor(os, Tensor({2, 3}, {1, 2, 3, 4, 5, 6}));
  const std::string bytes = os.str();
  std::istringstream cut(bytes.substr(0, bytes.size() - 5));
  try {
    ReadTensor(cut);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated tensor stream"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos)
        << e.what();
  }
}

TEST(SerializeHardening, BadMagicReportsMalformedAtOffset) {
  std::istringstream garbage("not a tensor stream at all, honest");
  try {
    ReadTensor(garbage);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("malformed tensor stream"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos)
        << e.what();
  }
}

TEST(SerializeHardening, AbsurdRankRejectedBeforeAllocation) {
  // Hand-craft magic + version + rank 4096: must reject on the rank field,
  // not attempt to read 4096 dimensions.
  std::ostringstream os;
  const auto put_u32 = [&os](std::uint32_t v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put_u32(0x41585342u);  // "AXSB"
  put_u32(kSerializeVersion);
  put_u32(4096u);
  std::istringstream is(os.str());
  EXPECT_THROW(ReadTensor(is), std::runtime_error);
}

TEST(SerializeHardening, VersionMismatchRejected) {
  std::ostringstream os;
  WriteTensor(os, Tensor({1}, {42.0f}));
  std::string bytes = os.str();
  bytes[4] = static_cast<char>(kSerializeVersion + 1);  // bump version field
  std::istringstream is(bytes);
  try {
    ReadTensor(is);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

// --- shard spec / argv parsing ----------------------------------------------

TEST(ShardSpec, ParsesValidSpecsAndOwnership) {
  const auto spec = scenario::ParseShardSpec("1/3");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->index, 1);
  EXPECT_EQ(spec->count, 3);
  EXPECT_FALSE(spec->Owns(0));
  EXPECT_TRUE(spec->Owns(1));
  EXPECT_FALSE(spec->Owns(2));
  EXPECT_TRUE(spec->Owns(4));
  const auto sole = scenario::ParseShardSpec("0/1");
  ASSERT_TRUE(sole.has_value());
  EXPECT_TRUE(sole->Owns(17));
}

TEST(ShardSpec, RejectsMalformedSpecs) {
  for (const char* bad : {"", "3", "2/2", "-1/2", "1/0", "0/0", "2/4abc",
                          "abc/4", "1/2/3", "1/", "/2", "0x1/2", " 1/2"}) {
    EXPECT_FALSE(scenario::ParseShardSpec(bad).has_value())
        << "accepted \"" << bad << "\"";
  }
}

TEST(ShardRunnerArgs, ParsesFullFlagSet) {
  const char* argv[] = {"bench",    "--shard",     "1/4",
                        "--cache-dir", "/tmp/store", "--resume",
                        "--stats-out", "stats.json"};
  const auto opts = scenario::ParseShardRunnerArgs(
      static_cast<int>(std::size(argv)), const_cast<char**>(argv));
  ASSERT_TRUE(opts.shard.has_value());
  EXPECT_EQ(opts.shard->index, 1);
  EXPECT_EQ(opts.shard->count, 4);
  EXPECT_EQ(opts.cache_dir, "/tmp/store");
  EXPECT_TRUE(opts.resume);
  EXPECT_EQ(opts.stats_out, "stats.json");
  const scenario::RunOptions run = opts.run_options();
  EXPECT_TRUE(run.shard.has_value());
  EXPECT_TRUE(run.resume);
}

TEST(ShardRunnerArgs, RejectsBadArgv) {
  const auto parse = [](std::vector<const char*> args, bool allow_shard = true,
                        bool allow_resume = true) {
    args.insert(args.begin(), "bench");
    return scenario::ParseShardRunnerArgs(static_cast<int>(args.size()),
                                          const_cast<char**>(args.data()),
                                          allow_shard, allow_resume);
  };
  EXPECT_THROW(parse({"--shard", "2/2"}), std::invalid_argument);
  EXPECT_THROW(parse({"--shard"}), std::invalid_argument);
  EXPECT_THROW(parse({"--cache-dir"}), std::invalid_argument);
  EXPECT_THROW(parse({"--frobnicate"}), std::invalid_argument);
  // --resume without --cache-dir has no journal to replay.
  EXPECT_THROW(parse({"--resume"}), std::invalid_argument);
  // Drivers with non-partitionable reports opt out of shard/resume.
  EXPECT_THROW(parse({"--shard", "0/2"}, /*allow_shard=*/false),
               std::invalid_argument);
  EXPECT_THROW(parse({"--cache-dir", "d", "--resume"}, /*allow_shard=*/true,
                     /*allow_resume=*/false),
               std::invalid_argument);
}

// --- generic artifact store -------------------------------------------------

TEST(ArtifactStore, RoundTripAndCounters) {
  ScopedDir dir("roundtrip");
  scenario::ArtifactStore store(dir.path());
  const Tensor payload({2, 2}, {1, 2, 3, 4});
  store.Put("some_key", scenario::kArtifactCraftTensor,
            [&](std::ostream& os) { WriteTensor(os, payload); });
  EXPECT_EQ(store.writes(), 1);

  Tensor back;
  EXPECT_TRUE(store.Get("some_key", scenario::kArtifactCraftTensor,
                        [&](std::istream& is) { back = ReadTensor(is); }));
  ASSERT_EQ(back.numel(), 4);
  for (long i = 0; i < 4; ++i) EXPECT_EQ(back[i], payload[i]);
  EXPECT_EQ(store.hits(), 1);

  EXPECT_FALSE(store.Get("absent_key", scenario::kArtifactCraftTensor,
                         [](std::istream&) {}));
  EXPECT_EQ(store.misses(), 1);
  EXPECT_EQ(store.corrupt_entries(), 0);
}

TEST(ArtifactStore, KindMismatchReadsAsCorruptMiss) {
  ScopedDir dir("kind");
  scenario::ArtifactStore store(dir.path());
  store.Put("key", scenario::kArtifactCraftTensor,
            [](std::ostream& os) { WriteTensor(os, Tensor({1}, {7.0f})); });
  EXPECT_FALSE(store.Get("key", scenario::kArtifactStaticModel,
                         [](std::istream&) {}));
  EXPECT_EQ(store.corrupt_entries(), 1);
}

TEST(ArtifactStore, TruncatedAndGarbageEntriesReadAsCorruptMiss) {
  ScopedDir dir("corrupt");
  scenario::ArtifactStore store(dir.path());
  store.Put("key", scenario::kArtifactCraftTensor,
            [](std::ostream& os) { WriteTensor(os, Tensor({1}, {7.0f})); });

  // Truncate the committed file.
  const std::string path = store.PathFor("key");
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);
  EXPECT_FALSE(store.Get("key", scenario::kArtifactCraftTensor,
                         [](std::istream&) {}));
  EXPECT_EQ(store.corrupt_entries(), 1);

  // Flipped payload bytes fail the checksum.
  store.Put("key2", scenario::kArtifactCraftTensor,
            [](std::ostream& os) { WriteTensor(os, Tensor({1}, {7.0f})); });
  {
    std::fstream f(store.PathFor("key2"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-2, std::ios::end);
    f.put('\x5a');
  }
  EXPECT_FALSE(store.Get("key2", scenario::kArtifactCraftTensor,
                         [](std::istream&) {}));
  EXPECT_EQ(store.corrupt_entries(), 2);
}

// --- engine + store contracts -----------------------------------------------

core::StaticWorkbench& StoreMiniBench() {
  static core::StaticWorkbench* bench = [] {
    core::StaticWorkbench::Options opts;
    opts.net.lif.v_threshold = 0.25f;
    opts.train.epochs = 1;
    opts.train.batch_size = 32;
    opts.train_time_steps_cap = 4;
    opts.attack_time_steps_cap = 4;
    opts.attack_steps = 2;
    opts.eval_batch = 64;
    data::SyntheticMnistOptions d;
    d.count = 96;
    d.seed = 61;
    data::StaticDataset train = data::MakeSyntheticMnist(d);
    d.count = 24;
    d.seed = 62;
    data::StaticDataset test = data::MakeSyntheticMnist(d);
    return new core::StaticWorkbench(std::move(train), std::move(test), opts);
  }();
  return *bench;
}

scenario::ScenarioGrid StoreMiniGrid() {
  scenario::ScenarioGrid grid;
  grid.v_thresholds = {0.25f};
  grid.time_steps = {6};
  grid.attacks = {scenario::AttackSpec{"PGD", {}}};
  grid.epsilons = {0.025, 0.05, 0.075};  // three work units, one model
  grid.levels = {0.0, 0.01};
  return grid;
}

void ExpectSameCells(const scenario::ScenarioOutcome& a,
                     const scenario::ScenarioOutcome& b, const char* label) {
  ASSERT_EQ(a.robustness_pct.size(), b.robustness_pct.size());
  for (std::size_t i = 0; i < a.robustness_pct.size(); ++i) {
    EXPECT_EQ(a.robustness_pct[i], b.robustness_pct[i])
        << label << " changed cell " << i;
    EXPECT_EQ(a.evaluated[i], b.evaluated[i]) << label << " cell " << i;
    EXPECT_EQ(a.train_accuracy_pct[i], b.train_accuracy_pct[i])
        << label << " cell " << i;
  }
}

TEST(ScenarioStore, WarmRerunComputesNothingAndMatches) {
  ScopedDir dir("warm");
  const scenario::ScenarioGrid grid = StoreMiniGrid();

  scenario::StaticScenarioStore store1(dir.path(), StoreMiniBench());
  scenario::StaticScenarioEngine cold(StoreMiniBench());
  cold.set_store(&store1);
  const auto first = cold.Run(grid);
  EXPECT_EQ(first.stats.trained_models, 1);
  EXPECT_EQ(first.stats.crafted_sets, 3);
  EXPECT_EQ(first.stats.total_trained_models, 1);
  EXPECT_EQ(first.stats.total_crafted_sets, 3);

  // Fresh engine + fresh store object = a restarted process: everything
  // must come off disk, nothing recomputes, results are bit-identical.
  scenario::StaticScenarioStore store2(dir.path(), StoreMiniBench());
  scenario::StaticScenarioEngine warm(StoreMiniBench());
  warm.set_store(&store2);
  const auto second = warm.Run(grid);
  EXPECT_EQ(second.stats.trained_models, 0);
  EXPECT_EQ(second.stats.crafted_sets, 0);
  EXPECT_EQ(second.stats.store_model_hits, 1);
  EXPECT_EQ(second.stats.store_craft_hits, 3);
  EXPECT_EQ(second.stats.total_trained_models, 1);  // journal totals persist
  EXPECT_EQ(second.stats.total_crafted_sets, 3);
  ExpectSameCells(first, second, "warm store rerun");
}

TEST(ScenarioStore, ShardFanOutPlusMergeIsBitIdentical) {
  scenario::StaticScenarioEngine reference_engine(StoreMiniBench());
  const scenario::ScenarioGrid grid = StoreMiniGrid();
  const auto reference = reference_engine.Run(grid);

  for (long shards : {2L, 3L}) {
    ScopedDir dir("shards" + std::to_string(shards));
    // Each shard is a fresh process image; they share the store directory.
    for (long i = 0; i < shards; ++i) {
      scenario::StaticScenarioStore store(dir.path(), StoreMiniBench());
      scenario::StaticScenarioEngine engine(StoreMiniBench());
      engine.set_store(&store);
      scenario::RunOptions options;
      options.shard = scenario::ShardSpec{i, shards};
      const auto partial = engine.Run(grid, options);
      EXPECT_LE(partial.stats.trained_models, 1);
    }
    // Merge pass: resume with no shard replays every journaled unit.
    scenario::StaticScenarioStore store(dir.path(), StoreMiniBench());
    scenario::StaticScenarioEngine merge_engine(StoreMiniBench());
    merge_engine.set_store(&store);
    scenario::RunOptions options;
    options.resume = true;
    const auto merged = merge_engine.Run(grid, options);
    EXPECT_EQ(merged.stats.replayed_units, 3);
    EXPECT_EQ(merged.stats.trained_models, 0);
    EXPECT_EQ(merged.stats.crafted_sets, 0);
    // Sequential shards: journal totals equal the single-process counters.
    EXPECT_EQ(merged.stats.total_trained_models, reference.stats.trained_models)
        << shards << " shards";
    EXPECT_EQ(merged.stats.total_crafted_sets, reference.stats.crafted_sets)
        << shards << " shards";
    ExpectSameCells(reference, merged,
                    (std::to_string(shards) + "-shard merge").c_str());
  }
}

TEST(ScenarioStore, KilledRunResumesWithoutRecomputingFinishedUnits) {
  ScopedDir dir("resume");
  const scenario::ScenarioGrid grid = StoreMiniGrid();

  // "Killed" run: only shard 0/3 finished (unit 0 journaled), the rest of
  // the grid never ran.
  {
    scenario::StaticScenarioStore store(dir.path(), StoreMiniBench());
    scenario::StaticScenarioEngine engine(StoreMiniBench());
    engine.set_store(&store);
    scenario::RunOptions options;
    options.shard = scenario::ShardSpec{0, 3};
    (void)engine.Run(grid, options);
  }

  // Restarted run: replays the finished unit, computes the remaining two,
  // and matches a never-interrupted run exactly.
  scenario::StaticScenarioStore store(dir.path(), StoreMiniBench());
  scenario::StaticScenarioEngine engine(StoreMiniBench());
  engine.set_store(&store);
  scenario::RunOptions options;
  options.resume = true;
  const auto resumed = engine.Run(grid, options);
  EXPECT_EQ(resumed.stats.replayed_units, 1);
  EXPECT_EQ(resumed.stats.trained_models, 0);  // model persisted before kill
  EXPECT_EQ(resumed.stats.crafted_sets, 2);
  EXPECT_EQ(resumed.stats.total_trained_models, 1);
  EXPECT_EQ(resumed.stats.total_crafted_sets, 3);

  scenario::StaticScenarioEngine uninterrupted(StoreMiniBench());
  const auto reference = uninterrupted.Run(grid);
  ExpectSameCells(reference, resumed, "kill/resume");
}

TEST(ScenarioStore, CorruptedModelEntryRecomputesToSameResult) {
  ScopedDir dir("heal");
  const scenario::ScenarioGrid grid = StoreMiniGrid();

  scenario::StaticScenarioStore store1(dir.path(), StoreMiniBench());
  scenario::StaticScenarioEngine cold(StoreMiniBench());
  cold.set_store(&store1);
  const auto first = cold.Run(grid);

  // Smash the persisted model.
  const std::string model_path =
      store1.artifacts().PathFor(store1.ModelKey(0.25f, 6));
  ASSERT_TRUE(std::filesystem::exists(model_path));
  { std::ofstream(model_path, std::ios::trunc) << "garbage"; }

  scenario::StaticScenarioStore store2(dir.path(), StoreMiniBench());
  scenario::StaticScenarioEngine warm(StoreMiniBench());
  warm.set_store(&store2);
  const auto healed = warm.Run(grid);
  EXPECT_EQ(healed.stats.trained_models, 1);  // recomputed, not crashed
  EXPECT_EQ(store2.artifacts().corrupt_entries(), 1);
  EXPECT_EQ(healed.stats.crafted_sets, 0);  // crafts were intact
  ExpectSameCells(first, healed, "corrupt-entry recompute");

  // The recompute healed the store: a third run is pure reuse again.
  scenario::StaticScenarioStore store3(dir.path(), StoreMiniBench());
  scenario::StaticScenarioEngine again(StoreMiniBench());
  again.set_store(&store3);
  EXPECT_EQ(again.Run(grid).stats.trained_models, 0);
}

TEST(ScenarioStore, GatedUnitsJournalAndReplay) {
  ScopedDir dir("gated");
  scenario::ScenarioGrid grid = StoreMiniGrid();
  grid.min_train_accuracy_pct = 101.0f;  // gate everything

  scenario::StaticScenarioStore store1(dir.path(), StoreMiniBench());
  scenario::StaticScenarioEngine cold(StoreMiniBench());
  cold.set_store(&store1);
  const auto first = cold.Run(grid);
  EXPECT_EQ(first.stats.gated_units, 3);

  scenario::StaticScenarioStore store2(dir.path(), StoreMiniBench());
  scenario::StaticScenarioEngine resume_engine(StoreMiniBench());
  resume_engine.set_store(&store2);
  scenario::RunOptions options;
  options.resume = true;
  const auto replayed = resume_engine.Run(grid, options);
  EXPECT_EQ(replayed.stats.replayed_units, 3);
  EXPECT_EQ(replayed.stats.trained_models, 0);
  for (std::size_t i = 0; i < replayed.robustness_pct.size(); ++i) {
    EXPECT_FALSE(replayed.evaluated[i]);
    EXPECT_TRUE(std::isnan(replayed.robustness_pct[i]));
    EXPECT_GT(replayed.train_accuracy_pct[i], 0.0f);  // replayed from journal
  }
}

TEST(ScenarioStore, DifferentWorkbenchesNeverShareArtifacts) {
  ScopedDir dir("fingerprint");
  scenario::StaticScenarioStore store_a(dir.path(), StoreMiniBench());
  scenario::StaticScenarioEngine engine(StoreMiniBench());
  engine.set_store(&store_a);
  (void)engine.Run(StoreMiniGrid());

  // Same directory, different training budget: fingerprints differ, so the
  // persisted model is invisible — no stale-artifact reuse.
  core::StaticWorkbench::Options opts = StoreMiniBench().options();
  opts.train.epochs = 2;
  core::StaticWorkbench other(StoreMiniBench().train_set(),
                              StoreMiniBench().test_set(), opts);
  scenario::StaticScenarioStore store_b(dir.path(), other);
  EXPECT_NE(store_a.fingerprint(), store_b.fingerprint());
  EXPECT_NE(store_a.ModelKey(0.25f, 6), store_b.ModelKey(0.25f, 6));
  core::StaticWorkbench::TrainedModel out;
  EXPECT_FALSE(store_b.LoadModel(0.25f, 6, out));
}

TEST(ScenarioStore, ResumeWithoutStoreThrows) {
  scenario::StaticScenarioEngine engine(StoreMiniBench());
  scenario::RunOptions options;
  options.resume = true;
  EXPECT_THROW(engine.Run(StoreMiniGrid(), options), std::invalid_argument);
}

// --- DVS store --------------------------------------------------------------

core::DvsWorkbench& StoreMiniDvsBench() {
  static core::DvsWorkbench* bench = [] {
    data::DvsGestureOptions d;
    d.count = 60;
    d.seed = 19;
    data::EventDataset train = data::MakeSyntheticDvsGesture(d);
    d.count = 12;
    d.seed = 20;
    data::EventDataset test = data::MakeSyntheticDvsGesture(d);
    core::DvsWorkbench::Options opts;
    opts.train.epochs = 2;
    opts.time_bins = 8;
    opts.sparse.max_iterations = 2;
    return new core::DvsWorkbench(std::move(train), std::move(test), opts);
  }();
  return *bench;
}

TEST(DvsScenarioStore, WarmRerunComputesNothingAndMatches) {
  ScopedDir dir("dvs");
  scenario::ScenarioGrid grid;
  grid.v_thresholds = {1.0f};
  grid.attacks = {scenario::AttackSpec{"none", {}},
                  scenario::AttackSpec{"Sparse", {}}};
  grid.levels = {0.0, 0.1};

  scenario::DvsScenarioStore store1(dir.path(), StoreMiniDvsBench());
  scenario::DvsScenarioEngine cold(StoreMiniDvsBench());
  cold.set_store(&store1);
  const auto first = cold.Run(grid);
  EXPECT_EQ(first.stats.trained_models, 1);
  EXPECT_EQ(first.stats.crafted_sets, 2);  // "none" persists like any craft

  scenario::DvsScenarioStore store2(dir.path(), StoreMiniDvsBench());
  scenario::DvsScenarioEngine warm(StoreMiniDvsBench());
  warm.set_store(&store2);
  const auto second = warm.Run(grid);
  EXPECT_EQ(second.stats.trained_models, 0);
  EXPECT_EQ(second.stats.crafted_sets, 0);
  EXPECT_EQ(second.stats.store_model_hits, 1);
  EXPECT_EQ(second.stats.store_craft_hits, 2);
  ExpectSameCells(first, second, "DVS warm store rerun");
}

TEST(DvsScenarioStore, TwoShardMergeIsBitIdentical) {
  scenario::ScenarioGrid grid;
  grid.v_thresholds = {1.0f};
  grid.attacks = {scenario::AttackSpec{"none", {}},
                  scenario::AttackSpec{"Sparse", {}}};
  grid.levels = {0.0, 0.1};

  scenario::DvsScenarioEngine reference_engine(StoreMiniDvsBench());
  const auto reference = reference_engine.Run(grid);

  ScopedDir dir("dvs_shards");
  for (long i = 0; i < 2; ++i) {
    scenario::DvsScenarioStore store(dir.path(), StoreMiniDvsBench());
    scenario::DvsScenarioEngine engine(StoreMiniDvsBench());
    engine.set_store(&store);
    scenario::RunOptions options;
    options.shard = scenario::ShardSpec{i, 2};
    (void)engine.Run(grid, options);
  }
  scenario::DvsScenarioStore store(dir.path(), StoreMiniDvsBench());
  scenario::DvsScenarioEngine merge_engine(StoreMiniDvsBench());
  merge_engine.set_store(&store);
  scenario::RunOptions options;
  options.resume = true;
  const auto merged = merge_engine.Run(grid, options);
  EXPECT_EQ(merged.stats.replayed_units, 2);
  EXPECT_EQ(merged.stats.trained_models, 0);
  ExpectSameCells(reference, merged, "DVS 2-shard merge");
}

}  // namespace
}  // namespace axsnn
