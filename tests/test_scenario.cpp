// Scenario-subsystem tests: the attack registry (registration, lookup,
// param-schema validation), declarative grid expansion, the engine's
// trained-model cache semantics, pool-size determinism of a mini grid, the
// Algorithm-1 training gate, and registry-only attacks running end-to-end
// (a PGD parameter ladder on the static bench, Corner/Dash on the DVS
// bench) without any workbench enum involvement.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "attacks/registry.hpp"
#include "core/search.hpp"
#include "runtime/thread_pool.hpp"
#include "scenario/engine.hpp"

namespace axsnn {
namespace {

class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) { runtime::SetGlobalThreads(threads); }
  ~ScopedThreads() { runtime::SetGlobalThreads(0); }
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;
};

// --- registry ---------------------------------------------------------------

TEST(AttackRegistry, BuiltinsRegisteredInCanonicalOrder) {
  const std::vector<std::string> names = attacks::RegisteredAttackNames();
  ASSERT_GE(names.size(), 7u);
  EXPECT_EQ(names[0], "none");
  EXPECT_EQ(names[1], "PGD");
  EXPECT_EQ(names[2], "BIM");
  EXPECT_EQ(names[3], "Sparse");
  EXPECT_EQ(names[4], "Frame");
  EXPECT_EQ(names[5], "Corner");
  EXPECT_EQ(names[6], "Dash");
}

TEST(AttackRegistry, LookupRoundTripAndApplicability) {
  for (const std::string& name : attacks::RegisteredAttackNames()) {
    const attacks::Attack& attack = attacks::GetAttack(name);
    EXPECT_EQ(attack.name(), name);
    EXPECT_FALSE(attack.description().empty());
  }
  EXPECT_TRUE(attacks::GetAttack("PGD").supports_static());
  EXPECT_FALSE(attacks::GetAttack("PGD").supports_events());
  EXPECT_TRUE(attacks::GetAttack("Sparse").supports_events());
  EXPECT_FALSE(attacks::GetAttack("Sparse").supports_static());
  EXPECT_TRUE(attacks::GetAttack("none").supports_static());
  EXPECT_TRUE(attacks::GetAttack("none").supports_events());
}

TEST(AttackRegistry, UnknownNameThrowsListingRegistered) {
  EXPECT_EQ(attacks::AttackRegistry::Global().Find("NoSuchAttack"), nullptr);
  try {
    attacks::GetAttack("NoSuchAttack");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("NoSuchAttack"), std::string::npos);
    EXPECT_NE(message.find("PGD"), std::string::npos)
        << "error should list the registered attacks: " << message;
  }
}

class TestOnlyAttack final : public attacks::Attack {
 public:
  std::string name() const override { return "TestOnly"; }
  std::string description() const override { return "registry test dummy"; }
  bool supports_static() const override { return true; }
  Tensor CraftStatic(const snn::Network&, const Tensor& images,
                     std::span<const int>, const attacks::StaticCraftContext&,
                     const attacks::ParamMap& params) const override {
    (void)ResolveParams(params);
    return images;
  }
};

TEST(AttackRegistry, ExtensionRegistersOnceAndRejectsDuplicates) {
  auto& registry = attacks::AttackRegistry::Global();
  if (registry.Find("TestOnly") == nullptr)
    registry.Register(std::make_unique<TestOnlyAttack>());
  EXPECT_EQ(registry.Get("TestOnly").description(), "registry test dummy");
  EXPECT_THROW(registry.Register(std::make_unique<TestOnlyAttack>()),
               std::invalid_argument);
}

TEST(AttackParams, ResolveFillsDefaultsAndRejectsUnknownKeys) {
  const attacks::Attack& sparse = attacks::GetAttack("Sparse");
  const attacks::ParamMap resolved =
      sparse.ResolveParams({{"max_iterations", 4.0}});
  EXPECT_EQ(resolved.at("max_iterations"), 4.0);
  EXPECT_EQ(resolved.at("events_per_iteration"), 24.0);  // schema default
  EXPECT_EQ(resolved.at("min_spacing"), 6.0);
  try {
    sparse.ResolveParams({{"max_iters", 4.0}});  // typo
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("max_iters"), std::string::npos);
    EXPECT_NE(message.find("max_iterations"), std::string::npos)
        << "error should list the declared parameters: " << message;
  }
}

// --- grid expansion ---------------------------------------------------------

scenario::ScenarioGrid MakeWideGrid() {
  scenario::ScenarioGrid grid;
  grid.v_thresholds = {0.25f, 0.75f};
  grid.time_steps = {8, 16, 24};
  grid.attacks = {scenario::AttackSpec{"none", {}},
                  scenario::AttackSpec{"PGD", {}}};
  grid.epsilons = {0.0, 0.05};
  grid.precisions = {approx::Precision::kFp32, approx::Precision::kInt8};
  grid.levels = {0.0, 0.01, 0.1};
  grid.kernel_modes = {std::nullopt, kernels::KernelMode::kNaive};
  return grid;
}

TEST(ScenarioGrid, CellCountIsAxisProduct) {
  const scenario::ScenarioGrid grid = MakeWideGrid();
  EXPECT_EQ(grid.CellCount(), 2u * 3u * 2u * 2u * 1u * 2u * 3u * 2u);
  EXPECT_EQ(scenario::ExpandScenarioGrid(grid).size(), grid.CellCount());
}

TEST(ScenarioGrid, ExpansionOrderMatchesIndex) {
  const scenario::ScenarioGrid grid = MakeWideGrid();
  const auto cells = scenario::ExpandScenarioGrid(grid);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const scenario::ScenarioCell& c = cells[i];
    EXPECT_EQ(grid.Index(c.vth_index, c.time_index, c.attack_index,
                         c.eps_index, c.aqf_index, c.precision_index,
                         c.level_index, c.kernel_index),
              i);
    EXPECT_EQ(c.vth, grid.v_thresholds[c.vth_index]);
    EXPECT_EQ(c.time_steps, grid.time_steps[c.time_index]);
    EXPECT_EQ(c.level, grid.levels[c.level_index]);
  }
  EXPECT_THROW(grid.Index(2, 0, 0, 0, 0, 0, 0, 0), std::invalid_argument);
}

TEST(ScenarioGrid, ValidationCatchesMisuse) {
  scenario::ScenarioGrid grid;
  grid.attacks = {scenario::AttackSpec{"Sparse", {}}};
  // Event-only attack on a static grid.
  EXPECT_THROW(scenario::ValidateScenarioGrid(grid, /*for_events=*/false),
               std::invalid_argument);
  // Static-only attack on an event grid.
  grid.attacks = {scenario::AttackSpec{"PGD", {}}};
  EXPECT_THROW(scenario::ValidateScenarioGrid(grid, /*for_events=*/true),
               std::invalid_argument);
  // Unknown attack parameter fails up front.
  grid.attacks = {scenario::AttackSpec{"PGD", {{"stepz", 3.0}}}};
  EXPECT_THROW(scenario::ValidateScenarioGrid(grid, /*for_events=*/false),
               std::invalid_argument);
  // Empty axis.
  grid.attacks = {scenario::AttackSpec{"PGD", {}}};
  grid.levels.clear();
  EXPECT_THROW(scenario::ValidateScenarioGrid(grid, /*for_events=*/false),
               std::invalid_argument);
  // Multi-entry epsilon axis on an event grid.
  scenario::ScenarioGrid dvs;
  dvs.attacks = {scenario::AttackSpec{"Frame", {}}};
  dvs.epsilons = {0.0, 0.1};
  EXPECT_THROW(scenario::ValidateScenarioGrid(dvs, /*for_events=*/true),
               std::invalid_argument);
  // AQF on a static grid.
  scenario::ScenarioGrid with_aqf;
  with_aqf.aqfs = {core::AqfConfig{}};
  EXPECT_THROW(scenario::ValidateScenarioGrid(with_aqf, /*for_events=*/false),
               std::invalid_argument);
}

// --- engine -----------------------------------------------------------------

core::StaticWorkbench& SharedMiniBench() {
  static core::StaticWorkbench* bench = [] {
    core::StaticWorkbench::Options opts;
    opts.net.lif.v_threshold = 0.25f;
    opts.train.epochs = 2;
    opts.train.batch_size = 32;
    opts.train_time_steps_cap = 6;
    opts.attack_time_steps_cap = 6;
    opts.attack_steps = 3;
    opts.eval_batch = 64;
    data::SyntheticMnistOptions d;
    d.count = 192;
    d.seed = 51;
    data::StaticDataset train = data::MakeSyntheticMnist(d);
    d.count = 48;
    d.seed = 52;
    data::StaticDataset test = data::MakeSyntheticMnist(d);
    return new core::StaticWorkbench(std::move(train), std::move(test), opts);
  }();
  return *bench;
}

scenario::ScenarioGrid MiniStaticGrid() {
  scenario::ScenarioGrid grid;
  grid.v_thresholds = {0.25f};
  grid.time_steps = {8};
  grid.attacks = {scenario::AttackSpec{"PGD", {}}};
  grid.epsilons = {0.025, 0.05};  // two work units sharing one model
  grid.levels = {0.0, 0.01};
  return grid;
}

TEST(ScenarioEngine, ModelCacheHitSemantics) {
  scenario::StaticScenarioEngine engine(SharedMiniBench());
  const scenario::ScenarioGrid grid = MiniStaticGrid();

  const auto first = engine.Run(grid);
  // One structural cell: trained exactly once (phase 1), both work units
  // hit the cache.
  EXPECT_EQ(first.stats.trained_models, 1);
  EXPECT_EQ(first.stats.train_cache_hits, 2);
  EXPECT_EQ(first.stats.crafted_sets, 2);
  EXPECT_EQ(first.stats.craft_cache_hits, 0);

  const auto second = engine.Run(grid);
  // Re-running the same grid is pure evaluation: no training, no crafting.
  EXPECT_EQ(second.stats.trained_models, 0);
  EXPECT_EQ(second.stats.crafted_sets, 0);
  EXPECT_EQ(second.stats.craft_cache_hits, 2);
  ASSERT_EQ(first.robustness_pct.size(), second.robustness_pct.size());
  for (std::size_t i = 0; i < first.robustness_pct.size(); ++i)
    EXPECT_EQ(first.robustness_pct[i], second.robustness_pct[i])
        << "cache hit changed cell " << i;
  EXPECT_EQ(engine.model_cache().size(), 1u);
}

TEST(ScenarioEngine, CacheOffRetrainsPerUnitWithIdenticalResults) {
  scenario::StaticScenarioEngine cached(SharedMiniBench());
  scenario::StaticScenarioEngine uncached(SharedMiniBench());
  uncached.set_model_cache_enabled(false);
  const scenario::ScenarioGrid grid = MiniStaticGrid();

  const auto with_cache = cached.Run(grid);
  const auto without_cache = uncached.Run(grid);
  EXPECT_EQ(without_cache.stats.trained_models, 2);  // one per work unit
  ASSERT_EQ(with_cache.robustness_pct.size(),
            without_cache.robustness_pct.size());
  for (std::size_t i = 0; i < with_cache.robustness_pct.size(); ++i)
    EXPECT_EQ(with_cache.robustness_pct[i], without_cache.robustness_pct[i])
        << "model cache changed cell " << i;
}

TEST(ScenarioEngine, PoolSizeOneVersusNIsBitIdentical) {
  const scenario::ScenarioGrid grid = MiniStaticGrid();
  std::vector<float> reference;
  for (int threads : {1, 4}) {
    ScopedThreads pool(threads);
    scenario::StaticScenarioEngine engine(SharedMiniBench());
    const auto outcome = engine.Run(grid);
    if (reference.empty()) {
      reference = outcome.robustness_pct;
    } else {
      ASSERT_EQ(reference.size(), outcome.robustness_pct.size());
      for (std::size_t i = 0; i < reference.size(); ++i)
        EXPECT_EQ(reference[i], outcome.robustness_pct[i])
            << "pool size " << threads << " changed cell " << i;
    }
  }
}

TEST(ScenarioEngine, KernelModeAxisNeverChangesResults) {
  scenario::StaticScenarioEngine engine(SharedMiniBench());
  scenario::ScenarioGrid grid = MiniStaticGrid();
  grid.epsilons = {0.05};
  grid.kernel_modes = {std::nullopt, kernels::KernelMode::kNaive,
                       kernels::KernelMode::kGemm,
                       kernels::KernelMode::kSparse};
  const auto outcome = engine.Run(grid);
  for (std::size_t il = 0; il < grid.levels.size(); ++il) {
    const float reference = outcome.Robustness(0, 0, 0, 0, 0, 0, il, 0);
    for (std::size_t ik = 1; ik < grid.kernel_modes.size(); ++ik)
      EXPECT_EQ(outcome.Robustness(0, 0, 0, 0, 0, 0, il, ik), reference)
          << "kernel mode entry " << ik << " changed level " << il;
  }
}

TEST(ScenarioEngine, TrainingGateSkipsCells) {
  scenario::StaticScenarioEngine engine(SharedMiniBench());
  scenario::ScenarioGrid grid = MiniStaticGrid();
  grid.min_train_accuracy_pct = 101.0f;  // impossible
  const auto outcome = engine.Run(grid);
  EXPECT_EQ(outcome.stats.gated_units, 2);
  for (std::size_t i = 0; i < outcome.robustness_pct.size(); ++i) {
    EXPECT_FALSE(outcome.evaluated[i]);
    EXPECT_TRUE(std::isnan(outcome.robustness_pct[i]));
    EXPECT_GT(outcome.train_accuracy_pct[i], 0.0f);  // still recorded
  }
}

TEST(ScenarioEngine, RegistryOnlyPgdLadderRunsEndToEnd) {
  // A PGD parameter ladder — an attack variant the workbench enum cannot
  // express — straight through the registry: shorter ladders (fewer steps)
  // must run end-to-end and produce sane robustness values.
  scenario::StaticScenarioEngine engine(SharedMiniBench());
  scenario::ScenarioGrid grid;
  grid.v_thresholds = {0.25f};
  grid.time_steps = {8};
  grid.attacks = {scenario::AttackSpec{"PGD", {{"steps", 1.0}}},
                  scenario::AttackSpec{"PGD", {{"steps", 3.0}}}};
  grid.epsilons = {0.05};
  grid.levels = {0.0};
  const auto outcome = engine.Run(grid);
  ASSERT_EQ(outcome.robustness_pct.size(), 2u);
  for (float r : outcome.robustness_pct) {
    EXPECT_GE(r, 0.0f);
    EXPECT_LE(r, 100.0f);
  }
  EXPECT_EQ(outcome.stats.crafted_sets, 2);  // distinct params, no sharing
}

TEST(SearchOnEngine, WholeGridModeMatchesDirectEvaluation) {
  core::StaticWorkbench& bench = SharedMiniBench();
  core::SearchSpace space;
  space.v_thresholds = {0.25f};
  space.time_steps = {8};
  space.precisions = {approx::Precision::kFp32};
  space.approx_levels = {0.0, 0.01};
  core::SearchConfig cfg;
  cfg.attack = core::AttackKind::kPgd;
  cfg.epsilon = 0.05f;
  cfg.quality_constraint_pct = 5.0f;
  cfg.return_first = false;

  scenario::StaticScenarioEngine engine(bench);
  const core::SearchOutcome outcome =
      core::PrecisionScalingSearch(bench, space, cfg, &engine);
  ASSERT_EQ(outcome.trace.size(), 2u);

  // The engine-backed grid must reproduce a hand-rolled evaluation of the
  // same cells exactly.
  const auto& model = engine.TrainCached(0.25f, 8);
  Tensor adversarial = bench.Craft(model, "PGD", 0.05f);
  const std::vector<core::VariantSpec> specs = {
      {approx::Precision::kFp32, 0.0, std::nullopt},
      {approx::Precision::kFp32, 0.01, std::nullopt}};
  const std::vector<float> expected =
      bench.EvaluateVariants(model, adversarial, specs);
  EXPECT_EQ(outcome.trace[0].robustness_pct, expected[0]);
  EXPECT_EQ(outcome.trace[1].robustness_pct, expected[1]);
  EXPECT_EQ(outcome.trace[0].level, 0.0);
  EXPECT_EQ(outcome.trace[1].level, 0.01);
}

// --- neuromorphic: registry-only attacks end-to-end -------------------------

core::DvsWorkbench& SharedMiniDvsBench() {
  static core::DvsWorkbench* bench = [] {
    data::DvsGestureOptions d;
    d.count = 120;
    d.seed = 9;
    data::EventDataset train = data::MakeSyntheticDvsGesture(d);
    d.count = 24;
    d.seed = 10;
    data::EventDataset test = data::MakeSyntheticDvsGesture(d);
    core::DvsWorkbench::Options opts;
    opts.train.epochs = 4;
    opts.time_bins = 10;
    opts.sparse.max_iterations = 2;
    return new core::DvsWorkbench(std::move(train), std::move(test), opts);
  }();
  return *bench;
}

TEST(DvsScenario, CornerAndDashRunThroughRegistryOnly) {
  // Corner and Dash have no AttackKind enum case — they exist only in the
  // registry — yet a declarative grid sweeps them end-to-end.
  core::DvsWorkbench& bench = SharedMiniDvsBench();
  scenario::DvsScenarioEngine engine(bench);
  scenario::ScenarioGrid grid;
  grid.v_thresholds = {1.0f};
  grid.attacks = {scenario::AttackSpec{"none", {}},
                  scenario::AttackSpec{"Corner", {{"patch", 4.0}}},
                  scenario::AttackSpec{"Dash", {}}};
  grid.levels = {0.0};
  const auto outcome = engine.Run(grid);
  ASSERT_EQ(outcome.robustness_pct.size(), 3u);
  for (float r : outcome.robustness_pct) {
    EXPECT_GE(r, 0.0f);
    EXPECT_LE(r, 100.0f);
  }

  // The registry path injects events (string-keyed Craft, const model).
  const auto& model = engine.TrainCached(1.0f);
  const data::EventDataset corner = bench.Craft(model, "Corner");
  long clean_events = 0;
  long corner_events = 0;
  for (const auto& stream : bench.test_set().streams)
    clean_events += static_cast<long>(stream.events.size());
  for (const auto& stream : corner.streams)
    corner_events += static_cast<long>(stream.events.size());
  EXPECT_GT(corner_events, clean_events);
}

}  // namespace
}  // namespace axsnn
