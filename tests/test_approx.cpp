// Tests for precision scaling (FP16/INT8 quantizers), the Eq. (1)
// approximation pass, and the energy model.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "approx/approximation.hpp"
#include "approx/energy.hpp"
#include "approx/precision.hpp"
#include "snn/dense.hpp"
#include "snn/encoding.hpp"
#include "snn/lif_layer.hpp"
#include "snn/models.hpp"

namespace axsnn::approx {
namespace {

TEST(Precision, Names) {
  EXPECT_EQ(PrecisionName(Precision::kFp32), "FP32");
  EXPECT_EQ(PrecisionName(Precision::kFp16), "FP16");
  EXPECT_EQ(PrecisionName(Precision::kInt8), "INT8");
}

TEST(Fp16Round, ExactValuesPassThrough) {
  // Values exactly representable in binary16 are unchanged.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 0.25f, 1.5f, 2048.0f, -0.125f})
    EXPECT_EQ(Fp16Round(v), v);
}

TEST(Fp16Round, RoundsToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1 + 2^-10);
  // round-to-nearest-even picks 1.0 (even mantissa).
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(Fp16Round(halfway), 1.0f);
  // Slightly above halfway rounds up.
  const float above = 1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -13);
  EXPECT_EQ(Fp16Round(above), 1.0f + std::ldexp(1.0f, -10));
}

TEST(Fp16Round, ClampsOverflowToMaxHalf) {
  EXPECT_EQ(Fp16Round(1e6f), 65504.0f);
  EXPECT_EQ(Fp16Round(-1e6f), -65504.0f);
  EXPECT_EQ(Fp16Round(65504.0f), 65504.0f);
}

TEST(Fp16Round, OverflowBoundary) {
  // 65504 is the largest finite half; both signs pass through exactly.
  EXPECT_EQ(Fp16Round(65504.0f), 65504.0f);
  EXPECT_EQ(Fp16Round(-65504.0f), -65504.0f);
  // 65520 is the first float at or beyond the half overflow threshold
  // (halfway to 2^16); the conversion saturates instead of producing inf,
  // and the sign must be honoured on the negative side (regression test for
  // the dead `bit_cast<float>(sign) < 0` compare in the clamp branch).
  EXPECT_EQ(Fp16Round(65520.0f), 65504.0f);
  EXPECT_EQ(Fp16Round(-65520.0f), -65504.0f);
  // Just below the threshold still rounds down to the max finite half.
  EXPECT_EQ(Fp16Round(65519.0f), 65504.0f);
  EXPECT_EQ(Fp16Round(-65519.0f), -65504.0f);
}

TEST(Fp16Round, InfAndNanPassThrough) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(Fp16Round(inf), inf);
  EXPECT_EQ(Fp16Round(-inf), -inf);
  EXPECT_TRUE(std::isnan(Fp16Round(std::numeric_limits<float>::quiet_NaN())));
  EXPECT_TRUE(std::isnan(Fp16Round(-std::numeric_limits<float>::quiet_NaN())));
}

TEST(Fp16Round, FlushesTinyToSignedZero) {
  EXPECT_EQ(Fp16Round(1e-30f), 0.0f);
  EXPECT_EQ(Fp16Round(-1e-30f), 0.0f);
}

TEST(Fp16Round, HandlesDenormals) {
  // Smallest positive half denormal is 2^-24; half of it rounds to 0 or
  // 2^-24 and stays finite.
  const float denorm = std::ldexp(1.0f, -24);
  EXPECT_EQ(Fp16Round(denorm), denorm);
  const float half_denorm = std::ldexp(1.0f, -25);
  const float r = Fp16Round(half_denorm);
  EXPECT_TRUE(r == 0.0f || r == denorm);
}

TEST(Fp16Round, ErrorBoundedByHalfUlp) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.Uniform(-8.0, 8.0));
    const float q = Fp16Round(v);
    // binary16 has 11 significand bits: relative error <= 2^-11.
    EXPECT_LE(std::fabs(q - v), std::max(std::fabs(v), 0.01f) * 0.000489f)
        << "v=" << v << " q=" << q;
  }
}

TEST(QuantizeTensor, Fp32IsIdentity) {
  Rng rng(2);
  Tensor t = Tensor::Normal({64}, 0.0f, 1.0f, rng);
  Tensor original = t;
  QuantizeTensor(t, Precision::kFp32);
  EXPECT_TRUE(t.AllClose(original, 0.0f));
}

TEST(QuantizeTensor, Int8SymmetricProperties) {
  Tensor t({5}, {-1.0f, -0.5f, 0.0f, 0.5f, 1.0f});
  const float scale = QuantizeTensor(t, Precision::kInt8);
  EXPECT_FLOAT_EQ(scale, 1.0f / 127.0f);
  // Max magnitude is preserved exactly; zero stays zero.
  EXPECT_FLOAT_EQ(t[0], -1.0f);
  EXPECT_FLOAT_EQ(t[2], 0.0f);
  EXPECT_FLOAT_EQ(t[4], 1.0f);
  // All values are integer multiples of the scale.
  for (long i = 0; i < t.numel(); ++i) {
    const float steps = t[i] / scale;
    EXPECT_NEAR(steps, std::nearbyint(steps), 1e-3f);
  }
}

TEST(QuantizeTensor, Int8ErrorBounded) {
  Rng rng(3);
  Tensor t = Tensor::Uniform({256}, -2.0f, 2.0f, rng);
  Tensor original = t;
  const float scale = QuantizeTensor(t, Precision::kInt8);
  for (long i = 0; i < t.numel(); ++i)
    EXPECT_LE(std::fabs(t[i] - original[i]), scale * 0.5f + 1e-6f);
}

TEST(QuantizeTensor, Int8ZeroTensorStaysZero) {
  Tensor t({8});
  EXPECT_FLOAT_EQ(QuantizeTensor(t, Precision::kInt8), 1.0f);
  EXPECT_FLOAT_EQ(t.Sum(), 0.0f);
}

TEST(RelativeMacEnergy, OrderedByPrecision) {
  EXPECT_EQ(RelativeMacEnergy(Precision::kFp32), 1.0);
  EXPECT_LT(RelativeMacEnergy(Precision::kFp16),
            RelativeMacEnergy(Precision::kFp32));
  EXPECT_LT(RelativeMacEnergy(Precision::kInt8),
            RelativeMacEnergy(Precision::kFp16));
}

// --- Eq. (1) approximation pass --------------------------------------------

/// Builds the reference static classifier and calibrates it on random input.
struct CalibratedNet {
  snn::Network net;
  CalibrationStats stats;
};

CalibratedNet MakeCalibrated(float vth = 0.5f) {
  snn::StaticNetOptions opts;
  opts.lif.v_threshold = vth;
  CalibratedNet out{snn::BuildStaticNet(opts), {}};
  Rng rng(5);
  Tensor input = Tensor::Uniform({8, 4, 1, 16, 16}, 0.0f, 1.0f, rng);
  out.stats = Calibrate(out.net, input);
  return out;
}

TEST(Calibrate, CollectsOneEntryPerLifLayer) {
  CalibratedNet c = MakeCalibrated();
  EXPECT_EQ(c.stats.lif.size(), 4u);
  for (const LayerCalibration& l : c.stats.lif) {
    EXPECT_GE(l.mean_rate, 0.0f);
    EXPECT_LE(l.mean_rate, 1.0f);
    EXPECT_GE(l.mean_drive, 0.0f);
    EXPECT_FLOAT_EQ(l.v_threshold, 0.5f);
  }
}

TEST(ApplyApproximation, LevelZeroOnlyQuantizes) {
  CalibratedNet c = MakeCalibrated();
  ApproxConfig cfg;
  cfg.level = 0.0;
  cfg.precision = Precision::kFp32;
  ApproxReport report = ApplyApproximation(c.net, cfg, c.stats);
  EXPECT_EQ(report.pruned_fraction, 0.0);
  for (const LayerApproxReport& l : report.layers) EXPECT_EQ(l.pruned, 0);
}

TEST(ApplyApproximation, PrunedFractionMonotoneInLevel) {
  CalibratedNet c = MakeCalibrated();
  double last = -1.0;
  for (double level : {0.0, 0.001, 0.01, 0.1, 1.0}) {
    ApproxConfig cfg;
    cfg.level = level;
    auto [ax, report] = MakeApproximate(c.net, cfg, c.stats);
    EXPECT_GE(report.pruned_fraction, last)
        << "pruning not monotone at level " << level;
    last = report.pruned_fraction;
  }
  EXPECT_GT(last, 0.5);  // level 1.0 removes most connections
}

TEST(ApplyApproximation, PrunedWeightsAreZero) {
  CalibratedNet c = MakeCalibrated();
  ApproxConfig cfg;
  cfg.level = 0.1;
  auto [ax, report] = MakeApproximate(c.net, cfg, c.stats);
  // Count zeros in the approximate network's weights; must equal the report.
  long zeros = 0, report_pruned = 0;
  for (Tensor* p : ax.Params()) {
    if (p->rank() < 2) continue;  // skip biases
    for (long i = 0; i < p->numel(); ++i)
      if ((*p)[i] == 0.0f) ++zeros;
  }
  for (const auto& l : report.layers) report_pruned += l.pruned;
  EXPECT_GE(zeros, report_pruned);
}

TEST(ApplyApproximation, OriginalNetworkUntouchedByMakeApproximate) {
  CalibratedNet c = MakeCalibrated();
  const long count_before = c.net.Params()[0]->numel();
  Tensor first_before = *c.net.Params()[0];
  ApproxConfig cfg;
  cfg.level = 1.0;
  auto [ax, report] = MakeApproximate(c.net, cfg, c.stats);
  EXPECT_TRUE(c.net.Params()[0]->AllClose(first_before, 0.0f));
  EXPECT_EQ(c.net.Params()[0]->numel(), count_before);
}

TEST(ApplyApproximation, HigherGainPrunesMore) {
  CalibratedNet c = MakeCalibrated();
  ApproxConfig lo;
  lo.level = 0.05;
  lo.threshold_gain = 1.0;
  ApproxConfig hi = lo;
  hi.threshold_gain = 5.0;
  auto [ax1, r1] = MakeApproximate(c.net, lo, c.stats);
  auto [ax2, r2] = MakeApproximate(c.net, hi, c.stats);
  EXPECT_GT(r2.pruned_fraction, r1.pruned_fraction);
}

TEST(ApplyApproximation, Int8PrecisionAppliedToWeights) {
  CalibratedNet c = MakeCalibrated();
  ApproxConfig cfg;
  cfg.level = 0.0;
  cfg.precision = Precision::kInt8;
  ApplyApproximation(c.net, cfg, c.stats);
  // Every weight tensor must now be on an int8 lattice.
  for (Tensor* p : c.net.Params()) {
    if (p->numel() == 0) continue;
    float max_abs = 0.0f;
    for (long i = 0; i < p->numel(); ++i)
      max_abs = std::max(max_abs, std::fabs((*p)[i]));
    if (max_abs == 0.0f) continue;
    const float scale = max_abs / 127.0f;
    for (long i = 0; i < p->numel(); ++i) {
      const float steps = (*p)[i] / scale;
      EXPECT_NEAR(steps, std::nearbyint(steps), 1e-2f);
    }
  }
}

TEST(ApplyApproximation, RejectsInvalidConfig) {
  CalibratedNet c = MakeCalibrated();
  ApproxConfig cfg;
  cfg.level = -1.0;
  EXPECT_THROW(ApplyApproximation(c.net, cfg, c.stats),
               std::invalid_argument);
  cfg.level = 0.1;
  cfg.threshold_gain = 0.0;
  EXPECT_THROW(ApplyApproximation(c.net, cfg, c.stats),
               std::invalid_argument);
}

// --- Energy model ----------------------------------------------------------

TEST(Energy, ApproximationReducesEnergy) {
  CalibratedNet c = MakeCalibrated();
  Rng rng(6);
  Tensor probe = Tensor::Uniform({8, 2, 1, 16, 16}, 0.0f, 1.0f, rng);
  EnergyReport before = EstimateEnergy(c.net, probe, Precision::kFp32);
  ApproxConfig cfg;
  cfg.level = 0.1;
  auto [ax, report] = MakeApproximate(c.net, cfg, c.stats);
  EnergyReport after = EstimateEnergy(ax, probe, Precision::kFp32);
  EXPECT_LT(after.total_ops, before.total_ops);
  EXPECT_GT(before.total_ops, 0.0);
  // Energy scales with ops at fixed precision.
  EXPECT_NEAR(after.total_energy / before.total_energy,
              after.total_ops / before.total_ops, 1e-6);
}

TEST(Energy, Int8CheaperThanFp32AtSameOps) {
  CalibratedNet c = MakeCalibrated();
  Rng rng(7);
  Tensor probe = Tensor::Uniform({4, 2, 1, 16, 16}, 0.0f, 1.0f, rng);
  EnergyReport fp32 = EstimateEnergy(c.net, probe, Precision::kFp32);
  EnergyReport int8 = EstimateEnergy(c.net, probe, Precision::kInt8);
  EXPECT_NEAR(int8.total_ops, fp32.total_ops, fp32.total_ops * 1e-6);
  EXPECT_LT(int8.total_energy, fp32.total_energy * 0.1);
}

TEST(Energy, ReportsPerWeightLayer) {
  CalibratedNet c = MakeCalibrated();
  Rng rng(8);
  Tensor probe = Tensor::Uniform({4, 2, 1, 16, 16}, 0.0f, 1.0f, rng);
  EnergyReport r = EstimateEnergy(c.net, probe, Precision::kFp32);
  ASSERT_EQ(r.layers.size(), 5u);  // conv1..3, fc1, fc2
  for (const LayerEnergy& l : r.layers) {
    EXPECT_GE(l.synaptic_ops, 0.0);
    EXPECT_GE(l.nnz_fraction, 0.0);
    EXPECT_LE(l.nnz_fraction, 1.0);
  }
}

}  // namespace
}  // namespace axsnn::approx
