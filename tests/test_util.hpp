// Shared helpers for the axsnn test suite.
#pragma once

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "snn/layer.hpp"
#include "tensor/tensor.hpp"

namespace axsnn::testing {

/// Computes a scalar "probe loss" L = sum(out ⊙ probe) for gradient checks;
/// dL/d(out) = probe.
inline float ProbeLoss(const Tensor& out, const Tensor& probe) {
  EXPECT_EQ(out.shape(), probe.shape());
  double s = 0.0;
  for (long i = 0; i < out.numel(); ++i) s += out[i] * probe[i];
  return static_cast<float>(s);
}

/// Central-difference numerical gradient of `loss_fn` with respect to the
/// elements of `param`, compared against `analytic` with tolerance `tol`.
/// `loss_fn` must re-run the full forward pass each call.
inline void CheckGradient(Tensor& param, const Tensor& analytic,
                          const std::function<float()>& loss_fn, float eps,
                          float tol, long max_checks = 64) {
  ASSERT_EQ(param.shape(), analytic.shape());
  const long n = param.numel();
  const long stride = std::max(1L, n / max_checks);
  for (long i = 0; i < n; i += stride) {
    const float saved = param[i];
    param[i] = saved + eps;
    const float up = loss_fn();
    param[i] = saved - eps;
    const float down = loss_fn();
    param[i] = saved;
    const float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR(numeric, analytic[i], tol)
        << "gradient mismatch at flat index " << i;
  }
}

}  // namespace axsnn::testing
